// bench_cost_extension — EXTENSION beyond the paper: PPA per process cost.
//
// The paper argues layer-count reduction makes the FFET "cost-friendly"
// (Sec. IV conclusion, Figs. 12-13) but reports no cost numbers.  This
// bench attaches the relative BEOL cost model (src/tech/cost.h) to the
// Fig. 13 sweep and ranks configurations by performance-per-cost —
// quantifying the paper's qualitative claim.

#include <cstdio>

#include "bench_common.h"
#include "tech/cost.h"

using namespace ffet;

int main() {
  bench::print_title(
      "Cost extension",
      "PPA per relative process cost (quantifying 'cost-friendly design')");

  struct Row {
    const char* name;
    flow::FlowConfig cfg;
  };
  std::vector<Row> rows;
  rows.push_back({"4T CFET FM12", bench::cfet_config()});
  rows.push_back({"FFET FM12 (single-sided)", bench::ffet_fm12_config()});
  for (int n : {12, 8, 6, 5, 4, 3}) {
    static char names[8][32];
    static int idx = 0;
    std::snprintf(names[idx], sizeof names[idx], "FFET FM%dBM%d 50/50", n, n);
    rows.push_back({names[idx], bench::ffet_dual_config(0.5, n, n)});
    ++idx;
  }

  std::printf("\n%-28s %8s %8s %8s %10s %14s\n", "config", "cost", "f(GHz)",
              "P(uW)", "GHz/mW", "GHz/(mW*cost)");
  for (Row& row : rows) {
    row.cfg.target_freq_ghz = 1.5;
    row.cfg.utilization = 0.72;
    const auto ctx = flow::prepare_design(row.cfg);
    const auto cost = tech::relative_process_cost(ctx->tech());
    const flow::FlowResult r = flow::run_physical(*ctx, row.cfg);
    const double eff_per_cost =
        cost.total > 0 ? r.efficiency_ghz_per_mw / cost.total : 0.0;
    std::printf("%-28s %8.2f %8.3f %8.0f %10.3f %14.4f%s\n", row.name,
                cost.total, r.achieved_freq_ghz, r.power_uw,
                r.efficiency_ghz_per_mw, eff_per_cost,
                r.valid() ? "" : "  [INVALID]");
  }
  std::printf("\nreading: mid-stack FFET patterns (FM5-6/BM5-6) should take "
              "the best efficiency-per-cost, matching the paper's\n"
              "cost-friendly-design conclusion; the full 24-layer stack pays "
              "cost for capacity this block does not need.\n");
  return 0;
}
