// bench_scale.cpp — million-cell data-plane scaling sweep.
//
// The paper's block is one RISC-V core (~12k instances); the data-plane
// refactor (CSR pin table + interned/lazy names, flat RC arena, streaming
// DEF/SPEF) exists so the same flow holds up at SoC-tile scale.  This
// bench sweeps the replicated-tile workload mesh from ~10k to 1M+ cells
// and runs each point end-to-end through floorplan -> place -> CTS ->
// route -> extract -> STA, recording per-stage throughput (cells/second)
// and the process peak RSS.
//
// Always writes BENCH_scale.json (cwd).  The committed copy at the repo
// root is the reference series CI's trend machinery tracks; the rss_rise
// soft gate in `ffet_report trend --rss-rise` reads the kind=bench ledger
// lines this bench (via run_benches.sh) appends.
//
//   --quick   caps the sweep at the ~50k-cell point (CI smoke).
//
// Points use the anonymous workload mode: gates and internal nets carry no
// name bytes (objects answer to the synthesized `_i<N>`/`_n<N>` names), as
// a synthesized SoC-scale netlist would be consumed from a binary DB.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "liberty/characterize.h"
#include "netlist/workload.h"
#include "pnr/floorplan.h"
#include "stdcell/stdcell.h"
#include "tech/tech.h"

namespace {

using namespace ffet;

struct Point {
  int tile_cols = 1;
  int tile_rows = 1;
};

struct StageRate {
  const char* stage;
  double wall_ms = 0.0;
};

double stage_ms(const flow::FlowResult& res, const char* name) {
  double ms = 0.0;
  for (const flow::StageTiming& st : res.stage_times) {
    if (st.stage == name) ms += st.wall_ms;
  }
  return ms;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args =
      bench::parse_bench_args(argc, argv, "bench_scale");
  bench::print_title("SCALE", "data-plane scaling sweep (workload mesh, "
                              "~10k -> 1M+ cells)");

  // ~11k cells per tile (the paper-block ballpark); the mesh multiplies.
  netlist::WorkloadOptions wopt;
  wopt.num_gates = 10000;
  wopt.num_flops = 1000;
  wopt.num_inputs = 64;
  wopt.num_outputs = 64;
  wopt.anonymous = true;

  std::vector<Point> points = {{1, 1}, {2, 2}, {3, 3}, {7, 7}, {10, 10}};
  if (args.quick) points.resize(2);  // 11k + 44k: CI smoke

  flow::FlowConfig cfg;
  cfg.tech_kind = tech::TechKind::Ffet3p5T;
  cfg.front_layers = 12;
  cfg.back_layers = 12;
  cfg.backside_input_fraction = 0.5;
  cfg.utilization = 0.60;
  cfg.eco_passes = 0;
  cfg.threads = 0;  // auto (FFET_THREADS)

  bench::SweepTimer timer("bench_scale", static_cast<int>(points.size()),
                          cfg.threads);

  std::printf("\n  %-5s %9s | %11s %11s %11s %11s %11s | %9s %8s %5s\n",
              "mesh", "cells", "gen_c/s", "place_c/s", "route_c/s",
              "extract_c/s", "sta_c/s", "peak_rss", "B/cell", "ok");

  std::string json;
  json.reserve(4096);
  flow::JsonBuilder j(json);
  j.open_obj();
  j.field("bench", "bench_scale");
  j.field("design", "workload_mesh_11k_tile_anon_ffet_dual0.5_util0.60");
  j.field("quick", args.quick);
  j.open_array("points");

  bool all_valid = true;
  for (const Point& pt : points) {
    netlist::WorkloadOptions opt = wopt;
    opt.tile_cols = pt.tile_cols;
    opt.tile_rows = pt.tile_rows;

    // Mirror flow::prepare_design's tech/library construction, swapping
    // the RISC-V core for the mesh workload (synthesis untouched: the
    // sweep measures the physical data plane, not the sizer).
    tech::Technology tech =
        tech::make_ffet_3p5t().with_routing_limit(cfg.front_layers,
                                                  cfg.back_layers);
    stdcell::PinConfig pc;
    pc.backside_input_fraction = cfg.backside_input_fraction;
    auto ctx_tech = std::make_unique<tech::Technology>(std::move(tech));
    auto lib = std::make_unique<stdcell::Library>(
        stdcell::build_library(*ctx_tech, pc));
    liberty::characterize_library(*lib);

    const auto t0 = std::chrono::steady_clock::now();
    netlist::Netlist nl = netlist::generate_workload(*lib, opt);
    const double gen_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
    const double cells = static_cast<double>(nl.num_instances());

    flow::DesignContext ctx(cfg, std::move(ctx_tech), std::move(lib),
                            std::move(nl));
    const flow::FlowResult res = flow::run_physical(ctx, cfg);
    all_valid = all_valid && res.valid();

    const double place_ms =
        stage_ms(res, "placement") + stage_ms(res, "placement_drc");
    const double route_ms = stage_ms(res, "route");
    const double extract_ms = stage_ms(res, "extract");
    const double sta_ms =
        stage_ms(res, "sta_timing") + stage_ms(res, "sta_hold");
    const long long peak_kb =
        res.resource.peak_rss_kb > 0
            ? res.resource.peak_rss_kb
            : obs::sample_resources().peak_rss_kb;
    auto rate = [&](double ms) { return ms > 0.0 ? cells / (ms / 1000.0) : 0.0; };

    char mesh[16];
    std::snprintf(mesh, sizeof(mesh), "%dx%d", pt.tile_cols, pt.tile_rows);
    std::printf("  %-5s %9.0f | %11.0f %11.0f %11.0f %11.0f %11.0f | %8lld %8.1f %5s\n",
                mesh, cells, rate(gen_ms), rate(place_ms), rate(route_ms),
                rate(extract_ms), rate(sta_ms), peak_kb,
                static_cast<double>(peak_kb) * 1024.0 / cells,
                res.valid() ? "yes" : "NO");

    j.element();
    j.open_obj();
    j.field("tile_cols", pt.tile_cols);
    j.field("tile_rows", pt.tile_rows);
    j.field("cells", static_cast<long long>(cells));
    j.field("gen_cells_per_s", std::round(rate(gen_ms)));
    j.field("place_cells_per_s", std::round(rate(place_ms)));
    j.field("route_cells_per_s", std::round(rate(route_ms)));
    j.field("extract_cells_per_s", std::round(rate(extract_ms)));
    j.field("sta_cells_per_s", std::round(rate(sta_ms)));
    j.field("peak_rss_kb", peak_kb);
    j.field("rss_bytes_per_cell",
            std::round(static_cast<double>(peak_kb) * 1024.0 / cells * 10.0) /
                10.0);
    j.field("valid", res.valid());
    j.close_obj();
  }
  j.close_array();
  j.field("all_valid", all_valid);
  j.close_obj();
  json += '\n';

  if (std::FILE* f = std::fopen("BENCH_scale.json", "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    bench::print_note("scaling series written to BENCH_scale.json");
  }
  return all_valid ? 0 : 1;
}
