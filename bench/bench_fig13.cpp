// bench_fig13 — reproduces Fig. 13: power efficiency of FFET FP0.5BP0.5 as
// the routing-layer count is reduced from 12 to 3 per side, at 1.5 GHz
// target and 76 % utilization.
//
// Paper: power efficiency degrades by only 0.68 % from 12 to 5 layers per
// side — the cost-friendly-design headroom of the FFET architecture.

#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace ffet;

int main() {
  bench::print_title(
      "Fig. 13",
      "Power efficiency of FFET FP0.5BP0.5 vs routing layers per side");

  // Each layer count needs its own prepared design (the routing limit is
  // baked into the technology), so this is a ctx-free parallel sweep.
  std::vector<flow::FlowConfig> cfgs;
  for (int n = 12; n >= 3; --n) {
    flow::FlowConfig cfg = bench::ffet_dual_config(0.5, n, n);
    cfg.target_freq_ghz = 1.5;
    cfg.utilization = 0.76;
    cfgs.push_back(cfg);
  }
  bench::SweepTimer timer("bench_fig13", static_cast<int>(cfgs.size()));
  const std::vector<flow::FlowResult> results = flow::run_sweep(cfgs);

  double base_eff = 0.0;
  std::printf("\n%12s %12s %12s %16s %10s\n", "layers/side", "f(GHz)",
              "P(uW)", "eff (GHz/mW)", "vs 12L");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const int n = cfgs[i].front_layers;
    const flow::FlowResult& r = results[i];
    if (n == 12) base_eff = r.efficiency_ghz_per_mw;
    std::printf("%12d %12.3f %12.1f %16.3f %+9.2f%%%s\n", n,
                r.achieved_freq_ghz, r.power_uw, r.efficiency_ghz_per_mw,
                bench::pct(r.efficiency_ghz_per_mw, base_eff),
                r.valid() ? "" : "  [INVALID]");
  }
  std::printf("\npaper: only -0.68%% efficiency from 12 down to 5 layers per "
              "side.\n");
  return 0;
}
