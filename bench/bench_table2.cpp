// bench_table2 — reproduces Table II: the design-rule decks (per-layer
// pitches) of both technologies, plus the electrical constants our
// extraction derives from them.

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "tech/tech.h"

using namespace ffet;

namespace {

void print_stack(const tech::Technology& t) {
  std::printf("\n%s (pattern %s)\n", t.name().c_str(),
              t.routing_pattern().c_str());
  std::printf("%-6s %10s %6s %12s %12s %10s\n", "layer", "pitch(nm)", "dir",
              "R(ohm/um)", "C(fF/um)", "purpose");
  for (const tech::MetalLayer& l : t.layers()) {
    const char* purpose = l.purpose == tech::LayerPurpose::Signal ? "signal"
                          : l.purpose == tech::LayerPurpose::PowerOnly
                              ? "PDN-only"
                              : "cell-level";
    std::printf("%-6s %10lld %6s %12.3f %12.3f %10s\n", l.name.c_str(),
                static_cast<long long>(l.pitch),
                l.preferred_dir == geom::Dir::Horizontal ? "H" : "V",
                l.r_ohm_per_um, l.c_ff_per_um, purpose);
  }
}

}  // namespace

int main() {
  bench::print_title("Table II", "Design rules: BEOL metal layers");
  bench::SweepTimer timer("bench_table2", 7);  // 2 stacks + 5 limited variants
  bench::print_note(
      "pitches are the paper's published values (model inputs, exact by");
  bench::print_note(
      "construction); R/C are derived by the interconnect scaling model.");
  print_stack(tech::make_cfet_4t());
  print_stack(tech::make_ffet_3p5t());

  std::printf("\nlayer-limited variants (Table III / Fig. 12 DoEs):\n");
  for (const auto [f, b] : {std::pair{10, 2}, {8, 4}, {6, 6}, {5, 5}, {2, 2}}) {
    const tech::Technology t = tech::make_ffet_3p5t().with_routing_limit(f, b);
    std::printf("  %s: %d front + %d back signal routing layers\n",
                t.routing_pattern().c_str(),
                t.num_routing_layers(tech::Side::Front),
                t.num_routing_layers(tech::Side::Back));
  }
  return 0;
}
