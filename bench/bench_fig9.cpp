// bench_fig9 — reproduces Fig. 9: power-frequency relationship of the CFET
// vs FFET FM12 (both single-sided signals) at 76 % utilization, sweeping
// the synthesis target frequency from 500 MHz to 3 GHz.
//
// Paper headline: FFET FM12 achieves +25 % frequency and -11.9 % power at
// the same utilization.

#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace ffet;

int main() {
  bench::print_title("Fig. 9",
                     "Power-frequency: CFET vs FFET FM12 at 76% utilization");

  const std::vector<double> targets = {0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0};

  struct Point {
    double target, freq, power;
  };
  std::vector<Point> cfet_pts, ffet_pts;

  for (double tgt : targets) {
    flow::FlowConfig c = bench::cfet_config();
    c.target_freq_ghz = tgt;
    c.utilization = 0.76;
    const flow::FlowResult rc = flow::run_flow(c);
    cfet_pts.push_back({tgt, rc.achieved_freq_ghz, rc.power_uw});

    flow::FlowConfig f = bench::ffet_fm12_config();
    f.target_freq_ghz = tgt;
    f.utilization = 0.76;
    const flow::FlowResult rf = flow::run_flow(f);
    ffet_pts.push_back({tgt, rf.achieved_freq_ghz, rf.power_uw});
  }

  std::printf("\n%10s | %12s %12s | %12s %12s\n", "target", "CFET f(GHz)",
              "CFET P(uW)", "FFET f(GHz)", "FFET P(uW)");
  for (std::size_t i = 0; i < targets.size(); ++i) {
    std::printf("%9.2fG | %12.3f %12.1f | %12.3f %12.1f\n", targets[i],
                cfet_pts[i].freq, cfet_pts[i].power, ffet_pts[i].freq,
                ffet_pts[i].power);
  }

  // Max achieved frequency comparison.
  double cf_max = 0, ff_max = 0;
  for (const auto& p : cfet_pts) cf_max = std::max(cf_max, p.freq);
  for (const auto& p : ffet_pts) ff_max = std::max(ff_max, p.freq);
  std::printf("\n  frequency gain at max achieved: %+5.1f%%  (paper: +25%%)\n",
              bench::pct(ff_max, cf_max));

  // Power at comparable frequency: find the FFET point whose achieved
  // frequency is closest to each CFET point and compare power.
  double power_diff_sum = 0.0;
  int n = 0;
  for (const auto& cp : cfet_pts) {
    const Point* best = nullptr;
    for (const auto& fp : ffet_pts) {
      if (!best || std::abs(fp.freq - cp.freq) < std::abs(best->freq - cp.freq)) {
        best = &fp;
      }
    }
    if (best && std::abs(best->freq - cp.freq) / cp.freq < 0.15) {
      power_diff_sum += bench::pct(best->power, cp.power);
      ++n;
    }
  }
  if (n > 0) {
    std::printf("  power diff at iso-frequency   : %+5.1f%%  (paper: -11.9%%)\n",
                power_diff_sum / n);
  } else {
    std::printf("  (no iso-frequency pairs within 15%% — curves disjoint)\n");
  }
  return 0;
}
