// bench_common.h — shared helpers for the experiment-reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper: it runs
// the flow at the paper's configurations and prints the measured series
// next to the paper's reported numbers.  Absolute values are expected to
// differ (our substrate is a from-scratch simulator, not Innovus+StarRC on
// a proprietary PDK); the *shape* — who wins, by roughly what factor, where
// crossovers and saturation points sit — is the reproduction target.
// EXPERIMENTS.md records the paper-vs-measured comparison these benches
// print.

#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "flow/flow.h"
#include "runtime/thread_pool.h"

namespace ffet::bench {

inline void print_title(const std::string& id, const std::string& what) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), what.c_str());
  std::printf("================================================================\n");
}

inline void print_note(const std::string& s) {
  std::printf("  %s\n", s.c_str());
}

inline flow::FlowConfig cfet_config() {
  flow::FlowConfig cfg;
  cfg.tech_kind = tech::TechKind::Cfet4T;
  cfg.front_layers = 12;
  cfg.back_layers = 0;
  return cfg;
}

/// FFET with single-sided signals ("FFET FM12" in the paper).
inline flow::FlowConfig ffet_fm12_config() {
  flow::FlowConfig cfg;
  cfg.tech_kind = tech::TechKind::Ffet3p5T;
  cfg.front_layers = 12;
  cfg.back_layers = 0;
  cfg.backside_input_fraction = 0.0;
  return cfg;
}

/// FFET with dual-sided signals and the given pin/layer DoE.
inline flow::FlowConfig ffet_dual_config(double backside_fraction,
                                         int front_layers = 12,
                                         int back_layers = 12) {
  flow::FlowConfig cfg;
  cfg.tech_kind = tech::TechKind::Ffet3p5T;
  cfg.front_layers = front_layers;
  cfg.back_layers = back_layers;
  cfg.backside_input_fraction = backside_fraction;
  return cfg;
}

inline double pct(double ours, double base) {
  return base == 0.0 ? 0.0 : (ours - base) / base * 100.0;
}

/// Wall-clock instrumentation for the sweep benches.  On destruction it
/// prints the elapsed time and, when the FFET_BENCH_JSON environment
/// variable names a file, appends one machine-readable line:
///   {"bench":"...","seconds":...,"threads":...,"points":...}
/// run_benches.sh collects these lines into BENCH_sweeps.json.
class SweepTimer {
 public:
  /// `threads` follows the flow convention: 0 = auto (FFET_THREADS env or
  /// hardware concurrency) — record what the sweep actually used.
  SweepTimer(std::string bench, int points, int threads = 0)
      : bench_(std::move(bench)),
        points_(points),
        threads_(runtime::resolve_threads(threads)),
        start_(std::chrono::steady_clock::now()) {}

  SweepTimer(const SweepTimer&) = delete;
  SweepTimer& operator=(const SweepTimer&) = delete;

  ~SweepTimer() {
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    std::printf("\n  [timing] %s: %d sweep points in %.2f s (%d threads)\n",
                bench_.c_str(), points_, seconds, threads_);
    if (const char* path = std::getenv("FFET_BENCH_JSON")) {
      if (std::FILE* f = std::fopen(path, "a")) {
        std::fprintf(
            f,
            "{\"bench\":\"%s\",\"seconds\":%.3f,\"threads\":%d,\"points\":%d}\n",
            bench_.c_str(), seconds, threads_, points_);
        std::fclose(f);
      }
    }
  }

 private:
  std::string bench_;
  int points_;
  int threads_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ffet::bench
