// bench_common.h — shared helpers for the experiment-reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper: it runs
// the flow at the paper's configurations and prints the measured series
// next to the paper's reported numbers.  Absolute values are expected to
// differ (our substrate is a from-scratch simulator, not Innovus+StarRC on
// a proprietary PDK); the *shape* — who wins, by roughly what factor, where
// crossovers and saturation points sit — is the reproduction target.
// EXPERIMENTS.md records the paper-vs-measured comparison these benches
// print.

#pragma once

#include <cstdio>
#include <string>

#include "flow/flow.h"

namespace ffet::bench {

inline void print_title(const std::string& id, const std::string& what) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), what.c_str());
  std::printf("================================================================\n");
}

inline void print_note(const std::string& s) {
  std::printf("  %s\n", s.c_str());
}

inline flow::FlowConfig cfet_config() {
  flow::FlowConfig cfg;
  cfg.tech_kind = tech::TechKind::Cfet4T;
  cfg.front_layers = 12;
  cfg.back_layers = 0;
  return cfg;
}

/// FFET with single-sided signals ("FFET FM12" in the paper).
inline flow::FlowConfig ffet_fm12_config() {
  flow::FlowConfig cfg;
  cfg.tech_kind = tech::TechKind::Ffet3p5T;
  cfg.front_layers = 12;
  cfg.back_layers = 0;
  cfg.backside_input_fraction = 0.0;
  return cfg;
}

/// FFET with dual-sided signals and the given pin/layer DoE.
inline flow::FlowConfig ffet_dual_config(double backside_fraction,
                                         int front_layers = 12,
                                         int back_layers = 12) {
  flow::FlowConfig cfg;
  cfg.tech_kind = tech::TechKind::Ffet3p5T;
  cfg.front_layers = front_layers;
  cfg.back_layers = back_layers;
  cfg.backside_input_fraction = backside_fraction;
  return cfg;
}

inline double pct(double ours, double base) {
  return base == 0.0 ? 0.0 : (ours - base) / base * 100.0;
}

}  // namespace ffet::bench
