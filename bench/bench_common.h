// bench_common.h — shared helpers for the experiment-reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper: it runs
// the flow at the paper's configurations and prints the measured series
// next to the paper's reported numbers.  Absolute values are expected to
// differ (our substrate is a from-scratch simulator, not Innovus+StarRC on
// a proprietary PDK); the *shape* — who wins, by roughly what factor, where
// crossovers and saturation points sit — is the reproduction target.
// EXPERIMENTS.md records the paper-vs-measured comparison these benches
// print.

#pragma once

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "flow/flow.h"
#include "flow/report_json.h"
#include "obs/numfmt.h"
#include "obs/obs.h"
#include "runtime/thread_pool.h"

namespace ffet::bench {

/// Shared command-line handling for the bench binaries.
///   --quick         reduced sweep (each bench decides what that means)
///   --trace[=path]  enable span tracing; dump a Chrome trace-event JSON
///                   to `path` (default "trace_<bench>.json") at exit
/// Unknown arguments are ignored so benches stay forward-compatible with
/// run_benches.sh flags they don't care about.
struct BenchArgs {
  bool quick = false;
  bool trace = false;
  std::string trace_path;
};

inline BenchArgs parse_bench_args(int argc, char** argv,
                                  const std::string& bench) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--quick") == 0) {
      args.quick = true;
    } else if (std::strcmp(a, "--trace") == 0) {
      args.trace = true;
      args.trace_path = "trace_" + bench + ".json";
    } else if (std::strncmp(a, "--trace=", 8) == 0) {
      args.trace = true;
      args.trace_path = a + 8;
    }
  }
  if (args.trace) {
    obs::set_tracing(true);
    obs::dump_trace_at_exit(args.trace_path);
    std::printf("  [trace] writing Chrome trace to %s on exit\n",
                args.trace_path.c_str());
  }
  return args;
}

inline void print_title(const std::string& id, const std::string& what) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), what.c_str());
  std::printf("================================================================\n");
}

inline void print_note(const std::string& s) {
  std::printf("  %s\n", s.c_str());
}

inline flow::FlowConfig cfet_config() {
  flow::FlowConfig cfg;
  cfg.tech_kind = tech::TechKind::Cfet4T;
  cfg.front_layers = 12;
  cfg.back_layers = 0;
  return cfg;
}

/// FFET with single-sided signals ("FFET FM12" in the paper).
inline flow::FlowConfig ffet_fm12_config() {
  flow::FlowConfig cfg;
  cfg.tech_kind = tech::TechKind::Ffet3p5T;
  cfg.front_layers = 12;
  cfg.back_layers = 0;
  cfg.backside_input_fraction = 0.0;
  return cfg;
}

/// FFET with dual-sided signals and the given pin/layer DoE.
inline flow::FlowConfig ffet_dual_config(double backside_fraction,
                                         int front_layers = 12,
                                         int back_layers = 12) {
  flow::FlowConfig cfg;
  cfg.tech_kind = tech::TechKind::Ffet3p5T;
  cfg.front_layers = front_layers;
  cfg.back_layers = back_layers;
  cfg.backside_input_fraction = backside_fraction;
  return cfg;
}

inline double pct(double ours, double base) {
  return base == 0.0 ? 0.0 : (ours - base) / base * 100.0;
}

/// Wall-clock instrumentation for the sweep benches.  Construction turns
/// the obs metrics registry on (cheap — pure atomics) and clears the
/// per-point window; destruction prints the elapsed time plus per-point
/// min/mean/max, and, when the FFET_BENCH_JSON environment variable names
/// a file, appends one machine-readable line:
///   {"bench":"...","seconds":...,"threads":...,"points":...,
///    "point_ms_min":...,"point_ms_mean":...,"point_ms_max":...,
///    "peak_rss_kb":...,"stage_ms":{"floorplan":...,...}}
/// run_benches.sh collects these lines into BENCH_sweeps.json.  Per-point
/// and per-stage numbers come from the "flow.point.ms" /
/// "flow.stage.<name>.ms" histograms run_physical records; stage sums are
/// deltas against the construction-time snapshot so sequential timers in
/// one binary don't double-count.
class SweepTimer {
 public:
  /// `threads` follows the flow convention: 0 = auto (FFET_THREADS env or
  /// hardware concurrency) — record what the sweep actually used.
  SweepTimer(std::string bench, int points, int threads = 0)
      : bench_(std::move(bench)),
        points_(points),
        threads_(runtime::resolve_threads(threads)) {
    obs::init_from_env();
    obs::set_thread_name("main");
    // Benches default to metrics-on (per-point stats below are worth the
    // few atomics); FFET_METRICS=0 is the explicit opt-out.
    const char* menv = std::getenv("FFET_METRICS");
    if (menv == nullptr || std::strcmp(menv, "0") != 0) {
      obs::set_metrics(true);
    }
    obs::histogram("flow.point.ms").reset();  // own the per-point window
    baseline_ = obs::metrics_snapshot();
    start_ = std::chrono::steady_clock::now();
  }

  SweepTimer(const SweepTimer&) = delete;
  SweepTimer& operator=(const SweepTimer&) = delete;

  ~SweepTimer() {
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    std::printf("\n  [timing] %s: %d sweep points in %.2f s (%d threads)\n",
                bench_.c_str(), points_, seconds, threads_);

    const obs::Histogram& point = obs::histogram("flow.point.ms");
    if (point.count() > 0) {
      std::printf("  [points] per-point wall: min %.0f ms, mean %.0f ms, max %.0f ms (%llu points)\n",
                  point.min(), point.mean(), point.max(),
                  static_cast<unsigned long long>(point.count()));
    }

    if (const char* path = std::getenv("FFET_BENCH_JSON")) {
      std::string line;
      line.reserve(512);
      flow::JsonBuilder j(line);
      j.open_obj();
      j.field("bench", bench_);
      // Keep the historical 3-decimal resolution for total runtime.
      j.field("seconds", std::round(seconds * 1000.0) / 1000.0);
      j.field("threads", threads_);
      j.field("points", points_);
      if (point.count() > 0) {
        j.field("point_ms_min", point.min());
        j.field("point_ms_mean", point.mean());
        j.field("point_ms_max", point.max());
      }
      // Peak RSS of the whole bench process (absent with FFET_RESOURCE=0,
      // keeping those lines byte-identical to pre-probe builds).
      if (obs::resource_enabled()) {
        j.field("peak_rss_kb", obs::sample_resources().peak_rss_kb);
      }
      append_stage_ms(j);
      j.close_obj();
      line += '\n';
      if (std::FILE* f = std::fopen(path, "a")) {
        std::fwrite(line.data(), 1, line.size(), f);
        std::fclose(f);
      }
    }
  }

 private:
  /// Total wall ms spent per flow stage inside this timer's window, as a
  /// compact "stage_ms" object (delta of the stage histograms' sums).
  void append_stage_ms(flow::JsonBuilder& j) const {
    constexpr const char* kPrefix = "flow.stage.";
    constexpr std::size_t kPrefixLen = 11;
    constexpr const char* kSuffix = ".ms";
    std::vector<std::pair<std::string, double>> stages;
    for (const obs::MetricsSnapshot::Hist& h : obs::metrics_snapshot().histograms) {
      if (h.name.rfind(kPrefix, 0) != 0) continue;
      double sum = h.sum;
      for (const obs::MetricsSnapshot::Hist& b : baseline_.histograms) {
        if (b.name == h.name) {
          sum -= b.sum;
          break;
        }
      }
      if (sum <= 0.0) continue;
      std::string stage = h.name.substr(kPrefixLen);
      if (stage.size() > 3 && stage.rfind(kSuffix) == stage.size() - 3) {
        stage.resize(stage.size() - 3);
      }
      stages.emplace_back(std::move(stage), sum);
    }
    if (stages.empty()) return;
    j.open_nested("stage_ms");
    for (const auto& [stage, sum] : stages) j.field(stage.c_str(), sum);
    j.close_obj();
  }

  std::string bench_;
  int points_;
  int threads_;
  obs::MetricsSnapshot baseline_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ffet::bench
