// bench_router — microbenchmark of the dual-sided maze-routing kernel
// (not a paper experiment; the perf trajectory of src/pnr/router.cpp).
//
// Routes the RV32 core front+back at three gcell sizes with both engines
// (legacy full-grid Dijkstra vs. windowed A*), reporting routes/s, settled
// nodes per route, and negotiation pass counts, and cross-checking the QoR
// gate: the A* engine must be equal-or-better on hard overflow and total
// wirelength at every configuration.
//
// Always writes BENCH_router.json (cwd).  The committed copy at the repo
// root is the baseline the CI quick-bench step diffs against
// (scripts/check_bench.py router): `astar_settled_per_route` is
// machine-independent and gated at +20 %; `speedup` is normalized against
// the legacy engine measured in the same run, so it is load- and
// machine-insensitive, and gated at -20 %.
//
//   --quick   1 timing rep per configuration instead of 3

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "liberty/characterize.h"
#include "pnr/cts.h"
#include "pnr/floorplan.h"
#include "pnr/placement.h"
#include "pnr/powerplan.h"
#include "pnr/router.h"
#include "riscv/rv32.h"

using namespace ffet;

namespace {

struct EngineStat {
  double seconds = 0.0;  ///< best-of-reps wall time of route_design()
  double routes_per_s = 0.0;
  double settled_per_route = 0.0;
  int passes = 0;
  long window_expansions = 0;
  double wirelength_um = 0.0;
  int drv_wire = 0;
};

EngineStat run_engine(const netlist::Netlist& nl, const pnr::Floorplan& fp,
                      pnr::RouteEngine engine, int gcell_tracks, int reps) {
  pnr::RouteOptions ro;
  ro.engine = engine;
  ro.gcell_tracks = gcell_tracks;
  EngineStat st;
  st.seconds = 1e30;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const pnr::RouteResult rr = pnr::route_design(nl, fp, ro);
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (s < st.seconds) st.seconds = s;
    if (rep == 0) {
      const auto routes = static_cast<double>(rr.routes.size());
      st.settled_per_route =
          routes > 0.0 ? static_cast<double>(rr.settled_nodes) / routes : 0.0;
      st.passes = rr.rrr_passes;
      st.window_expansions = rr.window_expansions;
      st.wirelength_um = rr.total_wirelength_um();
      st.drv_wire = rr.drv_wire;
      st.routes_per_s = routes;  // numerator; divided below
    }
  }
  st.routes_per_s = st.seconds > 0.0 ? st.routes_per_s / st.seconds : 0.0;
  return st;
}

void append_engine_json(flow::JsonBuilder& j, const char* key,
                        const EngineStat& st) {
  j.open_nested(key);
  j.field("seconds", st.seconds);
  j.field("routes_per_s", st.routes_per_s);
  j.field("settled_per_route", st.settled_per_route);
  j.field("passes", st.passes);
  j.field("window_expansions", st.window_expansions);
  j.field("wirelength_um", st.wirelength_um);
  j.field("drv_wire", st.drv_wire);
  j.close_obj();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv, "router");
  const int reps = args.quick ? 1 : 3;

  bench::print_title("bench_router",
                     "maze-routing kernel: legacy Dijkstra vs. windowed A*");
  bench::print_note(
      "RV32 core (8 registers), FFET FP0.5BP0.5, dual-sided routing at "
      "70% utilization; best-of-" +
      std::to_string(reps) + " wall time per configuration.");

  // One placed design shared by every routing configuration (the gcell
  // size is a router parameter, not a placement one).
  tech::Technology tech = tech::make_ffet_3p5t();
  stdcell::PinConfig pins;
  pins.backside_input_fraction = 0.5;
  stdcell::Library lib = stdcell::build_library(tech, pins);
  liberty::characterize_library(lib);
  riscv::Rv32Options ropt;
  ropt.num_registers = 8;
  netlist::Netlist nl = riscv::build_rv32_core(lib, ropt);
  pnr::FloorplanOptions fo;
  fo.target_utilization = 0.7;
  const pnr::Floorplan fp = pnr::make_floorplan(nl, tech, fo);
  const pnr::PowerPlan pp = pnr::build_power_plan(nl, fp, lib);
  pnr::place(nl, fp, pp);
  pnr::build_clock_tree(nl, fp);

  std::printf(
      "\n  %-6s %-7s %10s %10s %14s %7s %6s %10s %5s\n", "gcell", "engine",
      "time_ms", "routes/s", "settled/route", "passes", "wexp", "wl_um",
      "drv");

  std::string json;
  json.reserve(2048);
  flow::JsonBuilder j(json);
  j.open_obj();
  j.field("bench", "bench_router");
  j.field("design", "rv32r8_ffet_dual0.5_util0.70");
  j.field("reps", reps);
  j.open_array("configs");

  bool qor_ok = true;
  double default_speedup = 0.0;
  for (const int gcell_tracks : {10, 15, 22}) {
    const EngineStat legacy = run_engine(nl, fp, pnr::RouteEngine::Legacy,
                                         gcell_tracks, reps);
    const EngineStat astar =
        run_engine(nl, fp, pnr::RouteEngine::Astar, gcell_tracks, reps);
    const double speedup =
        astar.seconds > 0.0 ? legacy.seconds / astar.seconds : 0.0;
    if (gcell_tracks == 15) default_speedup = speedup;
    std::printf("  %-6d %-7s %10.1f %10.0f %14.1f %7d %6ld %10.1f %5d\n",
                gcell_tracks, "legacy", legacy.seconds * 1e3,
                legacy.routes_per_s, legacy.settled_per_route, legacy.passes,
                legacy.window_expansions, legacy.wirelength_um,
                legacy.drv_wire);
    std::printf(
        "  %-6d %-7s %10.1f %10.0f %14.1f %7d %6ld %10.1f %5d  (%.2fx)\n",
        gcell_tracks, "astar", astar.seconds * 1e3, astar.routes_per_s,
        astar.settled_per_route, astar.passes, astar.window_expansions,
        astar.wirelength_um, astar.drv_wire, speedup);

    // QoR gate: equal-or-better hard overflow and wirelength.
    if (astar.drv_wire > legacy.drv_wire ||
        astar.wirelength_um > legacy.wirelength_um + 1e-6) {
      qor_ok = false;
      std::printf("  ** QoR REGRESSION at gcell_tracks=%d **\n", gcell_tracks);
    }

    j.element();
    j.open_obj();
    j.field("gcell_tracks", gcell_tracks);
    append_engine_json(j, "legacy", legacy);
    append_engine_json(j, "astar", astar);
    j.field("speedup", speedup);
    j.field("astar_settled_per_route", astar.settled_per_route);
    j.close_obj();
  }
  j.close_array();
  j.field("qor_ok", qor_ok);
  j.close_obj();
  json += '\n';

  if (std::FILE* f = std::fopen("BENCH_router.json", "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    bench::print_note("kernel timings written to BENCH_router.json");
  }

  std::printf("\n  speedup at default options (gcell_tracks=15): %.2fx %s\n",
              default_speedup, default_speedup >= 3.0 ? "(target: >=3x ok)"
                                                      : "(target: >=3x MISSED)");
  if (!qor_ok) {
    std::printf("  QoR gate FAILED: A* worse than legacy somewhere above\n");
    return 1;
  }
  return 0;
}
