// bench_router — microbenchmark of the dual-sided maze-routing kernel
// (not a paper experiment; the perf trajectory of src/pnr/router.cpp).
//
// Routes the RV32 core front+back at three gcell sizes with all three
// engines (legacy full-grid Dijkstra, stage-1 windowed A*, stage-2
// Steiner/region), reporting routes/s, settled nodes per route, and
// negotiation pass counts, and cross-checking the QoR gate: each newer
// engine must be equal-or-better on hard overflow and total wirelength at
// every configuration.
//
// Two gcell_tracks=10 configurations run with a reduced capacity_factor:
// "congested" sits at the negotiation breakpoint (legacy needs rip-up
// passes; the A* engines absorb the congestion with windowed detours) and
// gates the >= 1.8x stage-2 speedup; "stress" sits beyond the breakpoint
// (every engine negotiates for many passes, none converges to zero) and
// exercises the stage-2 congestion-region machinery, gated on QoR only —
// hard overflow and wirelength equal or lower, never speed.
//
// Always writes BENCH_router.json (cwd).  The committed copy at the repo
// root is the baseline the CI quick-bench step diffs against
// (scripts/check_bench.py router): `astar_settled_per_route` and
// `astar2_settled_per_route` are machine-independent and gated at +20 %;
// `speedup` (legacy/astar) and `speedup2` (astar/astar2) are normalized
// against engines measured in the same run, so they are load- and
// machine-insensitive, and gated at -20 % plus the 1.8x floor on
// congested configs.
//
//   --quick   1 timing rep per configuration instead of 3

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "liberty/characterize.h"
#include "pnr/cts.h"
#include "pnr/floorplan.h"
#include "pnr/placement.h"
#include "pnr/powerplan.h"
#include "pnr/router.h"
#include "riscv/rv32.h"

using namespace ffet;

namespace {

struct BenchConfig {
  int gcell_tracks = 15;
  double capacity_factor = 3.0;
  const char* label = "uncongested";
  bool congested = false;  ///< negotiation regime; speedup2 floor applies
};

struct EngineStat {
  double seconds = 0.0;  ///< best-of-reps wall time of route_design()
  double routes_per_s = 0.0;
  double settled_per_route = 0.0;
  int passes = 0;
  long window_expansions = 0;
  double wirelength_um = 0.0;
  int drv_wire = 0;
  long ripups = 0;
  long region_ripups = 0;
  long steiner_subnets = 0;
  long fastpath = 0;
};

EngineStat run_engine(const netlist::Netlist& nl, const pnr::Floorplan& fp,
                      pnr::RouteEngine engine, const BenchConfig& cfg,
                      int reps) {
  pnr::RouteOptions ro;
  ro.engine = engine;
  ro.gcell_tracks = cfg.gcell_tracks;
  ro.capacity_factor = cfg.capacity_factor;
  EngineStat st;
  st.seconds = 1e30;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const pnr::RouteResult rr = pnr::route_design(nl, fp, ro);
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (s < st.seconds) st.seconds = s;
    if (rep == 0) {
      const auto routes = static_cast<double>(rr.routes.size());
      st.settled_per_route =
          routes > 0.0 ? static_cast<double>(rr.settled_nodes) / routes : 0.0;
      st.passes = rr.rrr_passes;
      st.window_expansions = rr.window_expansions;
      st.wirelength_um = rr.total_wirelength_um();
      st.drv_wire = rr.drv_wire;
      st.ripups = rr.ripups_total;
      st.region_ripups = rr.region_ripups_total;
      st.steiner_subnets = rr.steiner_subnets;
      st.fastpath = rr.fastpath_routes;
      st.routes_per_s = routes;  // numerator; divided below
    }
  }
  st.routes_per_s = st.seconds > 0.0 ? st.routes_per_s / st.seconds : 0.0;
  return st;
}

void append_engine_json(flow::JsonBuilder& j, const char* key,
                        const EngineStat& st) {
  j.open_nested(key);
  j.field("seconds", st.seconds);
  j.field("routes_per_s", st.routes_per_s);
  j.field("settled_per_route", st.settled_per_route);
  j.field("passes", st.passes);
  j.field("window_expansions", st.window_expansions);
  j.field("wirelength_um", st.wirelength_um);
  j.field("drv_wire", st.drv_wire);
  j.field("ripups", st.ripups);
  j.field("region_ripups", st.region_ripups);
  j.field("steiner_subnets", st.steiner_subnets);
  j.field("fastpath", st.fastpath);
  j.close_obj();
}

void print_engine(const BenchConfig& cfg, const char* name,
                  const EngineStat& st, double speedup_vs_prev) {
  std::printf("  %-6d %-7s %10.1f %10.0f %14.1f %7d %7ld %10.1f %5d",
              cfg.gcell_tracks, name, st.seconds * 1e3, st.routes_per_s,
              st.settled_per_route, st.passes, st.ripups, st.wirelength_um,
              st.drv_wire);
  if (speedup_vs_prev > 0.0) std::printf("  (%.2fx)", speedup_vs_prev);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv, "router");
  const int reps = args.quick ? 1 : 3;

  bench::print_title("bench_router",
                     "maze-routing kernel: legacy vs. windowed A* vs. "
                     "Steiner/region stage 2");
  bench::print_note(
      "RV32 core (8 registers), FFET FP0.5BP0.5, dual-sided routing at "
      "70% utilization; best-of-" +
      std::to_string(reps) + " wall time per configuration.");

  // One placed design shared by every routing configuration (the gcell
  // size is a router parameter, not a placement one).
  tech::Technology tech = tech::make_ffet_3p5t();
  stdcell::PinConfig pins;
  pins.backside_input_fraction = 0.5;
  stdcell::Library lib = stdcell::build_library(tech, pins);
  liberty::characterize_library(lib);
  riscv::Rv32Options ropt;
  ropt.num_registers = 8;
  netlist::Netlist nl = riscv::build_rv32_core(lib, ropt);
  pnr::FloorplanOptions fo;
  fo.target_utilization = 0.7;
  const pnr::Floorplan fp = pnr::make_floorplan(nl, tech, fo);
  const pnr::PowerPlan pp = pnr::build_power_plan(nl, fp, lib);
  pnr::place(nl, fp, pp);
  pnr::build_clock_tree(nl, fp);

  std::printf("\n  %-6s %-7s %10s %10s %14s %7s %7s %10s %5s\n", "gcell",
              "engine", "time_ms", "routes/s", "settled/route", "passes",
              "ripups", "wl_um", "drv");

  std::string json;
  json.reserve(4096);
  flow::JsonBuilder j(json);
  j.open_obj();
  j.field("bench", "bench_router");
  j.field("design", "rv32r8_ffet_dual0.5_util0.70");
  j.field("reps", reps);
  j.open_array("configs");

  // Four capacity regimes at fixed placement:
  //   congested   — capacity at the negotiation breakpoint: the legacy
  //                 engine needs rip-up passes, the A* engines absorb the
  //                 congestion with windowed detours / fast-path rejections
  //                 (~2.3x the uncongested search effort).  The >= 1.8x
  //                 stage-2 floor is gated here.
  //   stress      — deep infeasibility (Fig. 12 beyond-breakpoint): every
  //                 engine negotiates for many passes and none reaches
  //                 zero overflow; gated on QoR only (hard overflow equal
  //                 or lower), not speed.
  //   uncongested — the initial route converges; measures raw kernel
  //                 throughput.
  const std::vector<BenchConfig> configs = {
      {10, 1.0, "congested", true},
      {10, 0.88, "stress", false},
      {15, 3.0, "uncongested", false},
      {22, 3.0, "uncongested", false},
  };

  bool qor_ok = true;
  double congested_speedup2 = 0.0;
  for (const BenchConfig& cfg : configs) {
    // The congested config carries an absolute speedup floor, so its
    // timings stay best-of-3 even in quick mode (engine runtimes there are
    // ~50-500 ms; one-shot timing noise would gate on luck).
    const int cfg_reps = cfg.congested ? std::max(reps, 3) : reps;
    const EngineStat legacy =
        run_engine(nl, fp, pnr::RouteEngine::Legacy, cfg, cfg_reps);
    const EngineStat astar =
        run_engine(nl, fp, pnr::RouteEngine::Astar, cfg, cfg_reps);
    const EngineStat astar2 =
        run_engine(nl, fp, pnr::RouteEngine::Astar2, cfg, cfg_reps);
    const double speedup =
        astar.seconds > 0.0 ? legacy.seconds / astar.seconds : 0.0;
    const double speedup2 =
        astar2.seconds > 0.0 ? astar.seconds / astar2.seconds : 0.0;
    if (cfg.congested) congested_speedup2 = speedup2;
    std::printf("  -- gcell_tracks=%d capacity_factor=%.2f (%s) --\n",
                cfg.gcell_tracks, cfg.capacity_factor, cfg.label);
    print_engine(cfg, "legacy", legacy, 0.0);
    print_engine(cfg, "astar", astar, speedup);
    print_engine(cfg, "astar2", astar2, speedup2);
    std::printf(
        "  %-6s %-7s regions=%ld steiner_subnets=%ld fastpath=%ld "
        "wexp=%ld\n",
        "", "", astar2.region_ripups, astar2.steiner_subnets, astar2.fastpath,
        astar2.window_expansions);

    // QoR gates, lexicographic: a newer engine must never add DRVs; when
    // DRVs tie, its wirelength must be within 0.1 % (under congestion the
    // engines trade sub-0.1 % wirelength for orders of magnitude of
    // speed — a strictly lower DRV count wins regardless of wirelength).
    auto qor_pair_ok = [](const EngineStat& older, const EngineStat& newer) {
      if (newer.drv_wire > older.drv_wire) return false;
      if (newer.drv_wire < older.drv_wire) return true;
      return newer.wirelength_um <= older.wirelength_um * 1.001 + 1e-6;
    };
    if (!qor_pair_ok(legacy, astar)) {
      qor_ok = false;
      std::printf("  ** QoR REGRESSION (astar vs legacy) at gcell_tracks=%d **\n",
                  cfg.gcell_tracks);
    }
    if (!qor_pair_ok(astar, astar2)) {
      qor_ok = false;
      std::printf(
          "  ** QoR REGRESSION (astar2 vs astar) at gcell_tracks=%d **\n",
          cfg.gcell_tracks);
    }

    j.element();
    j.open_obj();
    j.field("gcell_tracks", cfg.gcell_tracks);
    j.field("capacity_factor", cfg.capacity_factor);
    j.field("label", std::string(cfg.label));
    j.field("congested", cfg.congested);
    append_engine_json(j, "legacy", legacy);
    append_engine_json(j, "astar", astar);
    append_engine_json(j, "astar2", astar2);
    j.field("speedup", speedup);
    j.field("speedup2", speedup2);
    j.field("astar_settled_per_route", astar.settled_per_route);
    j.field("astar2_settled_per_route", astar2.settled_per_route);
    j.close_obj();
  }
  j.close_array();
  j.field("qor_ok", qor_ok);
  j.close_obj();
  json += '\n';

  if (std::FILE* f = std::fopen("BENCH_router.json", "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    bench::print_note("kernel timings written to BENCH_router.json");
  }

  std::printf(
      "\n  stage-2 speedup at the congested config (gcell_tracks=10): "
      "%.2fx %s\n",
      congested_speedup2,
      congested_speedup2 >= 1.8 ? "(target: >=1.8x ok)"
                                : "(target: >=1.8x MISSED)");
  if (congested_speedup2 < 1.8) qor_ok = false;
  if (!qor_ok) {
    std::printf("  gate FAILED: see regressions above\n");
    return 1;
  }
  return 0;
}
