// bench_table3 — reproduces Table III: input-pin-density × routing-layer
// co-optimization.  Each DoE limits the total routing-layer count to 12
// (FMx + BMy) and reports achieved frequency / power differences against
// the single-sided FFET FM12 baseline at the same utilization and target.
//
// Paper: FP0.5BP0.5 + FM6BM6 gains +10.6 % frequency at no power cost;
// FP0.7BP0.3 + FM8BM4 / FM7BM5 reach +12.8 % with +1.4 % power.

#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace ffet;

namespace {

struct Doe {
  double bp;
  int fm, bm;
  double paper_freq, paper_power;
};

// All rows of Table III.
const std::vector<Doe> kDoes = {
    {0.04, 10, 2, +5.3, -2.9}, {0.04, 9, 3, +5.3, -2.1},
    {0.16, 9, 3, +8.5, -0.7},  {0.16, 8, 4, +9.6, +0.7},
    {0.30, 9, 3, +8.5, -2.0},  {0.30, 8, 4, +12.8, +1.4},
    {0.30, 7, 5, +12.8, +1.4}, {0.40, 8, 4, +6.3, -4.3},
    {0.40, 7, 5, +8.5, -2.9},  {0.40, 6, 6, +7.4, -3.6},
    {0.50, 8, 4, +9.6, -1.4},  {0.50, 7, 5, +10.6, -0.7},
    {0.50, 6, 6, +10.6, -1.4},
};

}  // namespace

int main() {
  bench::print_title("Table III",
                     "Pin-density x routing-layer co-optimization vs FFET FM12");
  const double util = 0.72;
  const double target = 1.5;

  // One ctx-free sweep: the FM12 baseline first, then all 13 DoE rows.
  // Every point needs its own prepared design (pin config and layer limits
  // differ), so the per-point prepare_design runs inside the sweep.
  std::vector<flow::FlowConfig> cfgs;
  flow::FlowConfig base_cfg = bench::ffet_fm12_config();
  base_cfg.target_freq_ghz = target;
  base_cfg.utilization = util;
  cfgs.push_back(base_cfg);
  for (const Doe& d : kDoes) {
    flow::FlowConfig cfg = bench::ffet_dual_config(d.bp, d.fm, d.bm);
    cfg.target_freq_ghz = target;
    cfg.utilization = util;
    cfgs.push_back(cfg);
  }
  bench::SweepTimer timer("bench_table3", static_cast<int>(cfgs.size()));
  const std::vector<flow::FlowResult> results = flow::run_sweep(cfgs);

  const flow::FlowResult& base = results.front();
  std::printf("\nbaseline FFET FM12 @ util %.2f: f=%.3f GHz  P=%.1f uW  "
              "(valid=%s)\n",
              util, base.achieved_freq_ghz, base.power_uw,
              base.valid() ? "yes" : "NO");

  std::printf("\n%-14s %-10s %14s %20s %14s %20s\n", "Pin density",
              "Layers", "freq diff", "(paper)", "power diff", "(paper)");
  for (std::size_t i = 0; i < kDoes.size(); ++i) {
    const Doe& d = kDoes[i];
    const flow::FlowResult& r = results[i + 1];
    stdcell::PinConfig pc;
    pc.backside_input_fraction = d.bp;
    char layers[16];
    std::snprintf(layers, sizeof layers, "FM%dBM%d", d.fm, d.bm);
    std::printf("%-14s %-10s %+13.1f%% %19.1f%% %+13.1f%% %19.1f%%%s\n",
                pc.label().c_str(), layers,
                bench::pct(r.achieved_freq_ghz, base.achieved_freq_ghz),
                d.paper_freq, bench::pct(r.power_uw, base.power_uw),
                d.paper_power, r.valid() ? "" : "  [INVALID]");
  }
  return 0;
}
