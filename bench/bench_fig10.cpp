// bench_fig10 — reproduces Fig. 10: frequency-area relationship of the CFET
// vs FFET FM12 at 1.5 GHz synthesis target, sweeping utilization (area).
//
// Paper headline: FFET FM12 reaches +16.0 % frequency at the CFET's minimum
// core area and +23.4 % at respective maximum frequency.

#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace ffet;

namespace {

struct Point {
  double util, area, freq;
  bool valid;
};

// Utilization grid 0.46..0.86 step 0.05; integer index avoids the
// float-accumulation drift that can drop or duplicate the final point.
constexpr int kPoints = 9;

std::vector<Point> sweep(const flow::DesignContext& ctx,
                         flow::FlowConfig cfg) {
  std::vector<flow::FlowConfig> cfgs;
  for (int i = 0; i < kPoints; ++i) {
    cfg.utilization = 0.46 + 0.05 * i;
    cfgs.push_back(cfg);
  }
  const std::vector<flow::FlowResult> results = flow::run_sweep(ctx, cfgs);
  std::vector<Point> pts;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const flow::FlowResult& r = results[i];
    pts.push_back(
        {cfgs[i].utilization, r.core_area_um2, r.achieved_freq_ghz, r.valid()});
  }
  return pts;
}

}  // namespace

int main() {
  bench::print_title("Fig. 10",
                     "Frequency-area: CFET vs FFET FM12 at 1.5GHz target");
  bench::SweepTimer timer("bench_fig10", 2 * kPoints);

  flow::FlowConfig ccfg = bench::cfet_config();
  ccfg.target_freq_ghz = 1.5;
  auto cctx = flow::prepare_design(ccfg);
  flow::FlowConfig fcfg = bench::ffet_fm12_config();
  fcfg.target_freq_ghz = 1.5;
  auto fctx = flow::prepare_design(fcfg);

  const auto cfet = sweep(*cctx, ccfg);
  const auto ffet = sweep(*fctx, fcfg);

  std::printf("\n%6s | %12s %10s | %12s %10s\n", "util", "CFET area",
              "f(GHz)", "FFET area", "f(GHz)");
  for (std::size_t i = 0; i < cfet.size(); ++i) {
    std::printf("%6.2f | %10.1f%s %10.3f | %10.1f%s %10.3f\n", cfet[i].util,
                cfet[i].area, cfet[i].valid ? " " : "!", cfet[i].freq,
                ffet[i].area, ffet[i].valid ? " " : "!", ffet[i].freq);
  }
  std::printf("('!' marks invalid P&R points — excluded from comparisons)\n");

  // Respective max frequency.
  double cf_max = 0, ff_max = 0;
  double cfet_min_area = 1e18;
  for (const auto& p : cfet) {
    if (!p.valid) continue;
    cf_max = std::max(cf_max, p.freq);
    cfet_min_area = std::min(cfet_min_area, p.area);
  }
  for (const auto& p : ffet) {
    if (p.valid) ff_max = std::max(ff_max, p.freq);
  }
  std::printf("\n  freq gain at respective max freq: %+5.1f%%  (paper: +23.4%%)\n",
              bench::pct(ff_max, cf_max));

  // FFET frequency at the CFET's minimum core area (FFET run whose area is
  // closest to it from below or equal).
  double ffet_freq_at_area = 0.0;
  for (const auto& p : ffet) {
    if (p.valid && p.area <= cfet_min_area * 1.05) {
      ffet_freq_at_area = std::max(ffet_freq_at_area, p.freq);
    }
  }
  if (ffet_freq_at_area > 0) {
    std::printf(
        "  freq gain at CFET min core area : %+5.1f%%  (paper: +16.0%%)\n",
        bench::pct(ffet_freq_at_area, cf_max));
  }
  return 0;
}
