// bench_fig12 — reproduces Fig. 12: maximum utilization of FFET FP0.5BP0.5
// as the number of routing layers shrinks simultaneously on both sides.
//
// Paper: max utilization stays flat at 86 % (Power-Tap-Cell-limited, not
// routability-limited) until fewer than 4 layers per side, and still
// reaches 70 % with only 2 layers per side.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "runtime/thread_pool.h"

using namespace ffet;

namespace {

struct Row {
  int layers = 0;
  bool has_max = false;
  double max_util = 0.0;
  std::string limiter;
};

}  // namespace

int main() {
  bench::print_title(
      "Fig. 12",
      "Max utilization of FFET FP0.5BP0.5 vs routing layers per side");

  // One bisection per layer count; the bisections are independent, so they
  // run as parallel sweep points (each point prepares its own context — the
  // characterization cache makes the repeated library builds cheap).
  std::vector<int> layer_counts;
  for (int n = 12; n >= 2; --n) layer_counts.push_back(n);
  bench::SweepTimer timer("bench_fig12",
                          static_cast<int>(layer_counts.size()));

  std::vector<Row> rows(layer_counts.size());
  runtime::parallel_for(
      layer_counts.size(),
      [&](std::size_t i) {
        const int n = layer_counts[i];
        flow::FlowConfig cfg = bench::ffet_dual_config(0.5, n, n);
        cfg.target_freq_ghz = 1.5;
        cfg.threads = 1;  // the layer sweep owns the parallelism
        auto ctx = flow::prepare_design(cfg);
        Row& row = rows[i];
        row.layers = n;
        const auto max_util =
            flow::find_max_utilization(*ctx, cfg, 0.40, 0.96, 0.01);
        if (!max_util) return;
        row.has_max = true;
        row.max_util = *max_util;
        // Classify the limiter: run just above the max util and check which
        // criterion failed.
        cfg.utilization = std::min(0.96, *max_util + 0.02);
        const flow::FlowResult above = flow::run_physical(*ctx, cfg);
        row.limiter = !above.placement_legal ? "Power Tap Cells (placement)"
                                             : "routability (DRV)";
      },
      0, 1);

  std::printf("\n%12s %14s %s\n", "layers/side", "max util", "limited by");
  for (const Row& row : rows) {
    if (!row.has_max) {
      std::printf("%12d %14s %s\n", row.layers, "<0.40",
                  "routability collapse");
    } else {
      std::printf("%12d %14.2f %s\n", row.layers, row.max_util,
                  row.limiter.c_str());
    }
  }
  std::printf("\npaper: flat 0.86 (tap-limited) down to 4 layers/side; 0.70 "
              "at 2 layers/side.\n");
  return 0;
}
