// bench_fig12 — reproduces Fig. 12: maximum utilization of FFET FP0.5BP0.5
// as the number of routing layers shrinks simultaneously on both sides.
//
// Paper: max utilization stays flat at 86 % (Power-Tap-Cell-limited, not
// routability-limited) until fewer than 4 layers per side, and still
// reaches 70 % with only 2 layers per side.

#include <cstdio>

#include "bench_common.h"

using namespace ffet;

int main() {
  bench::print_title(
      "Fig. 12",
      "Max utilization of FFET FP0.5BP0.5 vs routing layers per side");

  std::printf("\n%12s %14s %s\n", "layers/side", "max util", "limited by");
  for (int n = 12; n >= 2; --n) {
    flow::FlowConfig cfg = bench::ffet_dual_config(0.5, n, n);
    cfg.target_freq_ghz = 1.5;
    auto ctx = flow::prepare_design(cfg);
    const auto max_util = flow::find_max_utilization(*ctx, cfg, 0.40, 0.96,
                                                     0.01);
    if (!max_util) {
      std::printf("%12d %14s %s\n", n, "<0.40", "routability collapse");
      continue;
    }
    // Classify the limiter: run just above the max util and check which
    // criterion failed.
    cfg.utilization = std::min(0.96, *max_util + 0.02);
    const flow::FlowResult above = flow::run_physical(*ctx, cfg);
    const char* limiter = !above.placement_legal
                              ? "Power Tap Cells (placement)"
                              : "routability (DRV)";
    std::printf("%12d %14.2f %s\n", n, *max_util, limiter);
  }
  std::printf("\npaper: flat 0.86 (tap-limited) down to 4 layers/side; 0.70 "
              "at 2 layers/side.\n");
  return 0;
}
