// bench_fig8 — reproduces Fig. 8: core area vs utilization.
//
//  (a) CFET vs FFET FM12BM12 (dual-sided signals, pins 50/50): FFET reaches
//      higher max utilization (paper: 86 %, limited by the Power Tap Cells)
//      and cuts core area 25.1 % at respective minimum area / 23.3 % at the
//      same utilization.
//  (b) layout DEFs at 84 % utilization (written next to the binary).
//  (c) CFET vs FFET FM12 (single-sided): FFET max utilization drops to 76 %
//      (pin-density-limited routability) and the area gain shrinks to
//      15.4 % at respective minimum area.

#include <cstdio>
#include <fstream>
#include <vector>

#include "bench_common.h"
#include "io/def.h"
#include "pnr/cts.h"
#include "pnr/floorplan.h"
#include "pnr/placement.h"
#include "pnr/powerplan.h"

using namespace ffet;

namespace {

struct Curve {
  std::string label;
  std::vector<std::pair<double, flow::FlowResult>> points;  // util -> result
  double max_util = 0.0;
  double min_area = 1e18;
};

// Utilization grid 0.46..0.90 step 0.04; integer index avoids the
// float-accumulation drift that can drop or duplicate the final point.
// --quick coarsens to step 0.08 (6 points) and skips the Fig. 8(b) DEFs.
constexpr int kPoints = 12;
int g_points = kPoints;
double g_step = 0.04;

Curve sweep(const flow::DesignContext& ctx, flow::FlowConfig cfg) {
  Curve c;
  c.label = cfg.label();
  std::vector<flow::FlowConfig> cfgs;
  for (int i = 0; i < g_points; ++i) {
    cfg.utilization = 0.46 + g_step * i;
    cfgs.push_back(cfg);
  }
  const std::vector<flow::FlowResult> results = flow::run_sweep(ctx, cfgs);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const double u = cfgs[i].utilization;
    const flow::FlowResult& r = results[i];
    c.points.push_back({u, r});
    if (r.valid()) {
      c.max_util = std::max(c.max_util, u);
      c.min_area = std::min(c.min_area, r.core_area_um2);
    }
  }
  return c;
}

void print_curve(const Curve& c) {
  std::printf("\n%s\n", c.label.c_str());
  std::printf("  %6s %12s %8s %6s %6s\n", "util", "area(um^2)", "valid",
              "plc", "drv");
  for (const auto& [u, r] : c.points) {
    std::printf("  %6.2f %12.1f %8s %6s %6d\n", u, r.core_area_um2,
                r.valid() ? "yes" : "NO", r.placement_legal ? "ok" : "viol",
                r.drv);
  }
  std::printf("  max valid utilization: %.2f   min valid area: %.1f um^2\n",
              c.max_util, c.min_area);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv, "bench_fig8");
  if (args.quick) {
    g_points = 6;
    g_step = 0.08;
  }
  bench::print_title("Fig. 8", "Core area vs utilization");
  bench::SweepTimer timer("bench_fig8", 3 * g_points);

  // --- (a) CFET vs FFET FM12BM12 -------------------------------------------
  auto cfet_ctx = flow::prepare_design(bench::cfet_config());
  auto ffet_dual_ctx = flow::prepare_design(bench::ffet_dual_config(0.5));
  const Curve cfet = sweep(*cfet_ctx, cfet_ctx->config);
  const Curve dual = sweep(*ffet_dual_ctx, ffet_dual_ctx->config);

  std::printf("\n--- Fig. 8(a): CFET vs FFET FM12BM12 ---\n");
  print_curve(cfet);
  print_curve(dual);
  std::printf(
      "\n  area cut at respective min area : %5.1f%%   (paper: 25.1%%)\n",
      bench::pct(cfet.min_area, dual.min_area));
  // Same utilization: compare at the highest util valid for both.
  const double same_u = std::min(cfet.max_util, dual.max_util);
  double a_c = 0, a_f = 0;
  for (const auto& [u, r] : cfet.points) {
    if (u <= same_u && r.valid()) a_c = r.core_area_um2;
  }
  for (const auto& [u, r] : dual.points) {
    if (u <= same_u && r.valid()) a_f = r.core_area_um2;
  }
  std::printf("  area cut at same utilization    : %5.1f%%   (paper: 23.3%%)\n",
              bench::pct(a_c, a_f));
  std::printf("  FFET max utilization            : %5.2f    (paper: 0.86, "
              "tap-cell-limited)\n",
              dual.max_util);
  std::printf("  CFET max utilization            : %5.2f    (paper: ~0.84)\n",
              cfet.max_util);

  // --- (b) layout DEFs at 84% ------------------------------------------------
  if (!args.quick) {
    flow::FlowConfig cfg = ffet_dual_ctx->config;
    cfg.utilization = 0.84;
    netlist::Netlist nl = ffet_dual_ctx->netlist;
    pnr::FloorplanOptions fo;
    fo.target_utilization = cfg.utilization;
    const pnr::Floorplan fp =
        pnr::make_floorplan(nl, ffet_dual_ctx->tech(), fo);
    const pnr::PowerPlan pp =
        pnr::build_power_plan(nl, fp, *ffet_dual_ctx->library);
    pnr::place(nl, fp, pp);
    pnr::build_clock_tree(nl, fp);
    const pnr::RouteResult rr = pnr::route_design(nl, fp);
    for (tech::Side s : {tech::Side::Front, tech::Side::Back}) {
      const io::Def def = io::build_def(nl, rr, s);
      const std::string path = std::string("fig8b_ffet_") +
                               (s == tech::Side::Front ? "front" : "back") +
                               ".def";
      std::ofstream os(path);
      io::write_def(def, os);
      std::printf("\n  Fig. 8(b): wrote %s (%zu components, %zu nets)\n",
                  path.c_str(), def.components.size(), def.nets.size());
    }
  }

  // --- (c) CFET vs FFET FM12 ---------------------------------------------------
  auto ffet_single_ctx = flow::prepare_design(bench::ffet_fm12_config());
  const Curve single = sweep(*ffet_single_ctx, ffet_single_ctx->config);
  std::printf("\n--- Fig. 8(c): CFET vs FFET FM12 (single-sided) ---\n");
  print_curve(single);
  std::printf(
      "\n  FFET FM12 max utilization       : %5.2f    (paper: 0.76, "
      "routability-limited)\n",
      single.max_util);
  std::printf(
      "  area cut at respective min area : %5.1f%%   (paper: 15.4%%)\n",
      bench::pct(cfet.min_area, single.min_area));
  return 0;
}
