// bench_ablation — ablation studies of the model's calibrated mechanisms
// (DESIGN.md §6): switch each one off or sweep it, and show which paper
// result it carries.  A reviewer's tool: it demonstrates the results come
// from the mechanisms, not from output-side tuning.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "pnr/cts.h"
#include "pnr/floorplan.h"
#include "pnr/placement.h"
#include "pnr/powerplan.h"
#include "pnr/router.h"
#include "runtime/thread_pool.h"

using namespace ffet;

namespace {

/// Run physical-only stages with custom route options.
pnr::RouteResult route_with(const flow::DesignContext& ctx, double util,
                            const pnr::RouteOptions& ro, bool* placement_ok) {
  netlist::Netlist nl = ctx.netlist;
  pnr::FloorplanOptions fo;
  fo.target_utilization = util;
  const pnr::Floorplan fp = pnr::make_floorplan(nl, ctx.tech(), fo);
  const pnr::PowerPlan pp = pnr::build_power_plan(nl, fp, *ctx.library);
  const pnr::PlacementResult pres = pnr::place(nl, fp, pp);
  if (placement_ok) *placement_ok = pres.legal;
  pnr::build_clock_tree(nl, fp);
  return pnr::route_design(nl, fp, ro);
}

}  // namespace

int main() {
  bench::print_title("Ablation",
                     "Which mechanism carries which paper result");
  bench::SweepTimer timer("bench_ablation", 9);

  // --- 1. Pin-access limit: carries FFET FM12's 76% ceiling (Fig. 8c) ----
  {
    std::printf("\n[1] pin-access ceiling (FFET FM12 @ 82%% utilization)\n");
    auto ctx = flow::prepare_design(bench::ffet_fm12_config());
    pnr::RouteOptions with;  // defaults
    pnr::RouteOptions without;
    without.pin_access_limit_per_um2 = 1e9;  // off
    bool pl = false;
    // The two route runs differ only in options — independent, so they run
    // concurrently (each on its own private netlist copy).
    pnr::RouteResult r_on, r_off;
    runtime::parallel_invoke(
        0, [&] { r_on = route_with(*ctx, 0.82, with, &pl); },
        [&] { r_off = route_with(*ctx, 0.82, without, nullptr); });
    std::printf("    with limit   : DRV %d (%d pin-access) -> %s\n",
                r_on.drv_estimate, r_on.drv_pin_access,
                r_on.valid ? "valid" : "INVALID");
    std::printf("    without limit: DRV %d -> %s\n", r_off.drv_estimate,
                r_off.valid ? "valid" : "INVALID");
    std::printf("    => the 76%% ceiling of Fig. 8(c) is the pin-density "
                "mechanism.\n");
  }

  // --- 2. Power Tap Cells: carry the 86% ceiling (Fig. 8a) ----------------
  {
    // 0.87 sits exactly between the bare density ceiling (0.875) and the
    // tap-reduced one (0.875 * 0.984 = 0.861): taps flip the verdict.
    std::printf("\n[2] Power Tap Cell blockage (FFET FP0.5BP0.5 @ 87%%)\n");
    auto ctx = flow::prepare_design(bench::ffet_dual_config(0.5));
    netlist::Netlist nl = ctx->netlist;
    pnr::FloorplanOptions fo;
    fo.target_utilization = 0.87;
    const pnr::Floorplan fp = pnr::make_floorplan(nl, ctx->tech(), fo);
    const pnr::PowerPlan pp = pnr::build_power_plan(nl, fp, *ctx->library);
    const pnr::PlacementResult with_taps = pnr::place(nl, fp, pp);
    // Without taps: empty power plan (no blockages).
    netlist::Netlist nl2 = ctx->netlist;
    const pnr::Floorplan fp2 = pnr::make_floorplan(nl2, ctx->tech(), fo);
    pnr::PowerPlan none;
    const pnr::PlacementResult without_taps = pnr::place(nl2, fp2, none);
    std::printf("    with taps    : %s (density %.3f)\n",
                with_taps.legal ? "legal" : "placement violations",
                with_taps.density);
    std::printf("    without taps : %s (density %.3f)\n",
                without_taps.legal ? "legal" : "placement violations",
                without_taps.density);
    std::printf("    => the 86%% ceiling of Fig. 8(a) is the tap-cell "
                "blockage.\n");
  }

  // --- 3. Dual-sided output pin: carries backside routing ------------------
  {
    std::printf("\n[3] capacity of the second side (FFET 50/50 pins)\n");
    auto ctx = flow::prepare_design(bench::ffet_dual_config(0.5));
    const auto r = route_with(*ctx, 0.72, {}, nullptr);
    std::printf("    frontside wire %.0f um, backside wire %.0f um "
                "(%.0f%% offloaded)\n",
                r.wirelength_front_um, r.wirelength_back_um,
                100.0 * r.wirelength_back_um /
                    (r.wirelength_front_um + r.wirelength_back_um));
  }

  // --- 4. Drain-Merge parasitics: carry Table I ---------------------------
  {
    std::printf("\n[4] n-p link parasitics (Table I mechanism)\n");
    tech::Technology ffet = tech::make_ffet_3p5t();
    tech::Technology cfet = tech::make_cfet_4t();
    std::printf("    CFET supervia : R %.0f ohm (par.eff %.2f), C %.3f fF\n",
                cfet.device().np_link_r_ohm,
                cfet.device().np_link_parallel_eff,
                cfet.device().np_link_c_ff);
    std::printf("    FFET DrainMrg : R %.0f ohm (par.eff %.2f), C %.3f fF\n",
                ffet.device().np_link_r_ohm,
                ffet.device().np_link_parallel_eff,
                ffet.device().np_link_c_ff);
    std::printf("    => zeroing the difference collapses Table I's timing "
                "deltas (see liberty tests).\n");
  }

  // --- 5. Router capacity factor sweep (Fig. 12 anchor) --------------------
  {
    std::printf("\n[5] capacity_factor sweep, FFET FP0.5BP0.5 FM2BM2 @ 70%%\n");
    flow::FlowConfig cfg = bench::ffet_dual_config(0.5, 2, 2);
    auto ctx = flow::prepare_design(cfg);
    const std::vector<double> cfs = {1.6, 2.4, 3.2, 4.0};
    std::vector<pnr::RouteResult> rs(cfs.size());
    runtime::parallel_for(
        cfs.size(),
        [&](std::size_t i) {
          pnr::RouteOptions ro;
          ro.capacity_factor = cfs[i];
          rs[i] = route_with(*ctx, 0.70, ro, nullptr);
        },
        0, 1);
    for (std::size_t i = 0; i < cfs.size(); ++i) {
      std::printf("    cf=%.1f: DRV %6d -> %s\n", cfs[i], rs[i].drv_estimate,
                  rs[i].valid ? "valid" : "INVALID");
    }
    std::printf("    => cf anchors where the 2-layer configuration stops "
                "closing (Fig. 12's 70%% point).\n");
  }
  return 0;
}
