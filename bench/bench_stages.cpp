// bench_stages — google-benchmark microbenchmarks of the flow stages, so
// regressions in the algorithmic kernels (placement, routing, extraction,
// STA) are measurable.  Not a paper experiment; a developer tool.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "io/def.h"
#include "pnr/cts.h"
#include "pnr/floorplan.h"
#include "pnr/placement.h"
#include "pnr/powerplan.h"

using namespace ffet;

namespace {

struct Prepared {
  std::unique_ptr<flow::DesignContext> ctx;
  Prepared() {
    flow::FlowConfig cfg = bench::ffet_dual_config(0.5);
    cfg.rv32_registers = 8;  // small core keeps iteration times sane
    ctx = flow::prepare_design(cfg);
  }
};

Prepared& prepared() {
  static Prepared p;
  return p;
}

void BM_Placement(benchmark::State& state) {
  auto& p = prepared();
  pnr::FloorplanOptions fo;
  fo.target_utilization = 0.7;
  for (auto _ : state) {
    netlist::Netlist nl = p.ctx->netlist;
    const pnr::Floorplan fp = pnr::make_floorplan(nl, p.ctx->tech(), fo);
    const pnr::PowerPlan pp = pnr::build_power_plan(nl, fp, *p.ctx->library);
    benchmark::DoNotOptimize(pnr::place(nl, fp, pp));
  }
}
BENCHMARK(BM_Placement)->Unit(benchmark::kMillisecond);

void BM_Routing(benchmark::State& state) {
  auto& p = prepared();
  netlist::Netlist nl = p.ctx->netlist;
  pnr::FloorplanOptions fo;
  fo.target_utilization = 0.7;
  const pnr::Floorplan fp = pnr::make_floorplan(nl, p.ctx->tech(), fo);
  const pnr::PowerPlan pp = pnr::build_power_plan(nl, fp, *p.ctx->library);
  pnr::place(nl, fp, pp);
  pnr::build_clock_tree(nl, fp);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pnr::route_design(nl, fp));
  }
}
BENCHMARK(BM_Routing)->Unit(benchmark::kMillisecond);

void BM_ExtractAndSta(benchmark::State& state) {
  auto& p = prepared();
  netlist::Netlist nl = p.ctx->netlist;
  pnr::FloorplanOptions fo;
  fo.target_utilization = 0.7;
  const pnr::Floorplan fp = pnr::make_floorplan(nl, p.ctx->tech(), fo);
  const pnr::PowerPlan pp = pnr::build_power_plan(nl, fp, *p.ctx->library);
  pnr::place(nl, fp, pp);
  const pnr::CtsResult cts = pnr::build_clock_tree(nl, fp);
  const pnr::RouteResult rr = pnr::route_design(nl, fp);
  const io::Def merged =
      io::merge_defs(io::build_def(nl, rr, tech::Side::Front),
                     io::build_def(nl, rr, tech::Side::Back));
  for (auto _ : state) {
    const extract::RcNetlist rc = extract::extract_rc(merged, nl, p.ctx->tech());
    sta::Sta sta(&nl, &rc);
    benchmark::DoNotOptimize(sta.analyze_timing(&cts.sink_latency_ps));
  }
}
BENCHMARK(BM_ExtractAndSta)->Unit(benchmark::kMillisecond);

void BM_FullPhysicalFlow(benchmark::State& state) {
  auto& p = prepared();
  flow::FlowConfig cfg = p.ctx->config;
  cfg.utilization = 0.7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow::run_physical(*p.ctx, cfg));
  }
}
BENCHMARK(BM_FullPhysicalFlow)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
