// bench_table1 — reproduces Table I: library characterization KPI
// differences of the 3.5T FFET libraries w.r.t. the 4T CFET (INV and BUF
// cells at drives D1/D2/D4).

#include <cstdio>
#include <map>
#include <string>

#include "bench_common.h"
#include "liberty/characterize.h"

using namespace ffet;

namespace {

struct PaperRow {
  double power, leak, rise, fall, rtrans, ftrans;
};

// Table I of the paper, in percent.
const std::map<std::string, PaperRow> kPaper = {
    {"INVD1", {+0.3, 0.0, -2.5, -8.1, -1.1, -4.0}},
    {"INVD2", {+0.3, 0.0, -2.8, -9.9, -1.2, -2.4}},
    {"INVD4", {+0.2, 0.0, +6.8, -13.6, -4.9, -3.4}},
    {"BUFD1", {-3.0, 0.0, -10.1, -10.7, -3.9, -5.1}},
    {"BUFD2", {-10.9, 0.0, -12.8, -14.4, -8.4, -6.5}},
    {"BUFD4", {-11.8, 0.0, -13.6, -15.8, +9.2, -9.7}},
};

}  // namespace

int main() {
  bench::print_title("Table I",
                     "Library characterization: KPI diff of FFET w.r.t CFET");
  bench::print_note("KPIs at a drive-proportional FO4-style operating point.");
  bench::print_note("columns: measured% (paper%)");

  tech::Technology ffet = tech::make_ffet_3p5t();
  tech::Technology cfet = tech::make_cfet_4t();
  stdcell::Library flib = stdcell::build_library(ffet);
  stdcell::Library clib = stdcell::build_library(cfet);
  liberty::characterize_library(flib);
  liberty::characterize_library(clib);

  std::printf(
      "\n%-8s %18s %18s %18s %18s %18s %18s\n", "Cell", "TransPower",
      "Leakage", "RiseTiming", "FallTiming", "RiseTrans", "FallTrans");
  for (const auto& [cell, paper] : kPaper) {
    const liberty::KpiDiff d =
        liberty::compare_cell(flib.at(cell), clib.at(cell));
    auto fmt = [](double measured, double expected) {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%+6.1f%% (%+5.1f%%)", measured,
                    expected);
      return std::string(buf);
    };
    std::printf("%-8s %18s %18s %18s %18s %18s %18s\n", cell.c_str(),
                fmt(d.transition_power_pct, paper.power).c_str(),
                fmt(d.leakage_power_pct, paper.leak).c_str(),
                fmt(d.rise_timing_pct, paper.rise).c_str(),
                fmt(d.fall_timing_pct, paper.fall).c_str(),
                fmt(d.rise_transition_pct, paper.rtrans).c_str(),
                fmt(d.fall_transition_pct, paper.ftrans).c_str());
  }

  std::printf("\nFull library sweep (all logic cells):\n");
  for (const liberty::KpiDiff& d : liberty::compare_libraries(flib, clib)) {
    std::printf(
        "  %-10s power %+6.1f%%  rise %+6.1f%%  fall %+6.1f%%  leak %+4.1f%%\n",
        d.cell.c_str(), d.transition_power_pct, d.rise_timing_pct,
        d.fall_timing_pct, d.leakage_power_pct);
  }
  return 0;
}
