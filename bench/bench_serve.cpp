// bench_serve — service overhead and scaling vs in-process sweeps.
//
// Runs the Fig. 8 utilization sweep (--quick grid by default here: the
// point of this bench is service mechanics, not the figure) three ways:
//
//   1. in-process flow::run_sweep          (the baseline everything else
//                                           in the repo uses)
//   2. through a local ffet_serve daemon with 2 / 4 / 8 workers, cold
//      cache — measures fork/IPC/protocol overhead and scaling
//   3. the same submission again, warm cache — measures pure service
//      round-trip (zero flow runs; asserts 100% cache hits)
//
// Every service configuration is gated on per-point QoR identity with the
// in-process baseline (report::diff_flow_reports in qor_only mode): a
// sharded fleet that returned even one bit-different PPA number would make
// the speedup meaningless.
//
// FFET_BENCH_JSON output (one line per mode) feeds run_benches.sh's
// BENCH_sweeps.json like the other sweep benches.

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "report/qor.h"
#include "report/serve_stats.h"
#include "serve/client.h"
#include "serve/server.h"

using namespace ffet;

namespace {

/// The bench sweep: the Fig. 8 --quick grid (3 curves x 6 utils) so the
/// numbers line up with the CI smoke; --quick here halves the grid again.
std::vector<flow::FlowConfig> sweep_configs(bool quick) {
  std::vector<flow::FlowConfig> sweep;
  const int points = quick ? 3 : 6;
  const double step = quick ? 0.16 : 0.08;
  for (flow::FlowConfig base :
       {bench::cfet_config(), bench::ffet_dual_config(0.5),
        bench::ffet_fm12_config()}) {
    for (int i = 0; i < points; ++i) {
      base.utilization = 0.46 + step * i;
      sweep.push_back(base);
    }
  }
  return sweep;
}

/// Parse a JSONL blob into records and QoR-diff it against the baseline.
/// Returns true when every point is bit-identical on the QoR axes.
bool qor_identical(const std::string& baseline_jsonl,
                   const std::string& candidate_jsonl, const char* what) {
  std::istringstream base_is(baseline_jsonl), cand_is(candidate_jsonl);
  const auto base = report::read_flow_reports(base_is);
  const auto cand = report::read_flow_reports(cand_is);
  report::DiffOptions opts;
  opts.qor_only = true;
  const report::DiffReport d = report::diff_flow_reports(base, cand, opts);
  if (d.regressions == 0 && d.deltas.empty()) return true;
  std::printf("  [FAIL] %s: %zu QoR delta(s) vs in-process baseline\n", what,
              d.deltas.size());
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args =
      bench::parse_bench_args(argc, argv, "bench_serve");
  bench::print_title("serve", "sweep service vs in-process run_sweep");

  const std::vector<flow::FlowConfig> sweep = sweep_configs(args.quick);
  std::printf("  sweep: %zu points\n", sweep.size());

  // ---- 1. in-process baseline ---------------------------------------------
  std::string baseline_jsonl;
  double baseline_s = 0.0;
  {
    bench::SweepTimer timer("bench_serve_inproc",
                            static_cast<int>(sweep.size()));
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<flow::FlowResult> results = flow::run_sweep(sweep);
    baseline_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    for (const flow::FlowResult& r : results) {
      baseline_jsonl += flow::flow_report_json(r);
      baseline_jsonl += '\n';
    }
  }
  std::printf("\n  in-process run_sweep: %.2f s\n", baseline_s);

  // ---- 2./3. through the service at each fleet size -----------------------
  bool all_identical = true;
  for (const int workers : {2, 4, 8}) {
    const std::string tag = "w" + std::to_string(workers);
    serve::ServeOptions opts;
    opts.socket_path = ".bench_serve_" + tag + ".sock";
    opts.cache_dir = ".bench_serve_cache_" + tag;  // fresh per fleet size
    opts.workers = workers;
    // Cold cache: wipe any leftovers from a previous bench run.
    std::remove(opts.socket_path.c_str());
    {
      const std::string rm = "rm -rf " + opts.cache_dir;
      if (std::system(rm.c_str()) != 0) { /* best effort */ }
    }

    serve::Server server(opts);
    std::string error;
    if (!server.start(&error)) {
      std::printf("  [FAIL] start(%d workers): %s\n", workers, error.c_str());
      return 1;
    }

    const auto run_once = [&](const char* mode, std::string* jsonl,
                              serve::SubmitStats* stats) -> double {
      std::vector<serve::ResultLine> results;
      const auto t0 = std::chrono::steady_clock::now();
      if (!serve::submit_sweep(opts.socket_path, sweep, &results, stats,
                               &error)) {
        std::printf("  [FAIL] submit (%s, %d workers): %s\n", mode, workers,
                    error.c_str());
        return -1.0;
      }
      const double s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      jsonl->clear();
      for (const serve::ResultLine& r : results) {
        *jsonl += r.line;
        *jsonl += '\n';
      }
      return s;
    };

    std::string cold_jsonl, warm_jsonl;
    serve::SubmitStats cold, warm;
    const double cold_s = run_once("cold", &cold_jsonl, &cold);
    const double warm_s = run_once("warm", &warm_jsonl, &warm);

    // Live introspection: the snapshot must parse and its histograms must
    // have seen the cold pass (every point crossed queue-wait and
    // cache-probe at least once).
    bool stats_ok = false;
    {
      std::string serr;
      if (const auto snap =
              report::parse_serve_stats(server.stats_json(), &serr)) {
        stats_ok = snap->phases.count("queue_wait") != 0 &&
                   snap->phases.at("queue_wait").count > 0 &&
                   snap->phases.count("cache_probe") != 0 &&
                   snap->phases.at("cache_probe").count > 0;
        if (!stats_ok) {
          std::printf("  [FAIL] %s stats: empty latency histograms\n",
                      tag.c_str());
        }
      } else {
        std::printf("  [FAIL] %s stats snapshot: %s\n", tag.c_str(),
                    serr.c_str());
      }
    }
    server.stop();
    if (cold_s < 0 || warm_s < 0) return 1;
    all_identical = all_identical && stats_ok;

    const bool cold_ok = qor_identical(baseline_jsonl, cold_jsonl, tag.c_str());
    const bool warm_ok = qor_identical(baseline_jsonl, warm_jsonl, tag.c_str());
    const bool cached_ok = warm.cache_hits == warm.points;
    if (!cached_ok) {
      std::printf("  [FAIL] %s warm pass: %lld/%lld cache hits\n", tag.c_str(),
                  warm.cache_hits, warm.points);
    }
    all_identical = all_identical && cold_ok && warm_ok && cached_ok;

    std::printf(
        "  %d workers: cold %.2f s (%.2fx vs in-process), warm %.3f s "
        "(%lld/%lld cached)%s\n",
        workers, cold_s, cold_s > 0 ? baseline_s / cold_s : 0.0, warm_s,
        warm.cache_hits, warm.points,
        cold_ok && warm_ok ? "" : "  QOR MISMATCH");

    if (const char* path = std::getenv("FFET_BENCH_JSON")) {
      std::string line;
      flow::JsonBuilder j(line);
      j.open_obj();
      j.field("bench", ("bench_serve_" + tag).c_str());
      j.field("seconds", cold_s);
      j.field("threads", workers);
      j.field("points", static_cast<long long>(sweep.size()));
      j.field("warm_seconds", warm_s);
      j.field("speedup_vs_inproc", cold_s > 0 ? baseline_s / cold_s : 0.0);
      j.close_obj();
      line += '\n';
      if (std::FILE* f = std::fopen(path, "a")) {
        std::fwrite(line.data(), 1, line.size(), f);
        std::fclose(f);
      }
    }
  }

  if (!all_identical) {
    std::printf("\n  RESULT: FAIL — service output diverged from in-process "
                "baseline\n");
    return 1;
  }
  std::printf("\n  RESULT: every fleet size QoR-identical to in-process, "
              "warm pass fully cached\n");
  return 0;
}
