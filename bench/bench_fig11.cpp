// bench_fig11 — reproduces Fig. 11: power-frequency clouds of five input-
// pin-density DoEs (FP0.96BP0.04 … FP0.5BP0.5), all with the FM12BM12
// routing pattern, sweeping utilization 46 %–76 % at 1.5 GHz target.
//
// Paper: FP0.5BP0.5 and FP0.6BP0.4 show the best power-frequency
// characteristics, FP0.7BP0.3 follows, FP0.84BP0.16 and FP0.96BP0.04 trail.

#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace ffet;

int main() {
  bench::print_title(
      "Fig. 11",
      "Power-frequency clouds across input-pin-density DoEs (FM12BM12)");

  const std::vector<double> backside = {0.04, 0.16, 0.3, 0.4, 0.5};
  // Utilization grid 0.46..0.76 step 0.06; integer index avoids the
  // float-accumulation drift that can drop or duplicate the final point.
  constexpr int kPoints = 6;
  struct Cloud {
    double bp;
    double mean_freq = 0, mean_power = 0;
    int n = 0;
  };
  std::vector<Cloud> clouds;
  bench::SweepTimer timer("bench_fig11",
                          static_cast<int>(backside.size()) * kPoints);

  std::printf("\n%-14s %6s %10s %10s %8s\n", "DoE", "util", "f(GHz)",
              "P(uW)", "valid");
  for (double bp : backside) {
    flow::FlowConfig cfg = bench::ffet_dual_config(bp);
    cfg.target_freq_ghz = 1.5;
    auto ctx = flow::prepare_design(cfg);
    Cloud c;
    c.bp = bp;
    stdcell::PinConfig pc;
    pc.backside_input_fraction = bp;
    std::vector<flow::FlowConfig> cfgs;
    for (int i = 0; i < kPoints; ++i) {
      cfg.utilization = 0.46 + 0.06 * i;
      cfgs.push_back(cfg);
    }
    const std::vector<flow::FlowResult> results = flow::run_sweep(*ctx, cfgs);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const flow::FlowResult& r = results[i];
      std::printf("%-14s %6.2f %10.3f %10.1f %8s\n", pc.label().c_str(),
                  cfgs[i].utilization, r.achieved_freq_ghz, r.power_uw,
                  r.valid() ? "yes" : "NO");
      if (r.valid()) {
        c.mean_freq += r.achieved_freq_ghz;
        c.mean_power += r.power_uw;
        ++c.n;
      }
    }
    if (c.n) {
      c.mean_freq /= c.n;
      c.mean_power /= c.n;
    }
    clouds.push_back(c);
  }

  std::printf("\ncloud centers (mean over valid utilization sweep):\n");
  std::printf("%-14s %12s %12s %16s\n", "DoE", "f(GHz)", "P(uW)",
              "f/P (GHz/mW)");
  for (const Cloud& c : clouds) {
    stdcell::PinConfig pc;
    pc.backside_input_fraction = c.bp;
    std::printf("%-14s %12.3f %12.1f %16.3f\n", pc.label().c_str(),
                c.mean_freq, c.mean_power,
                c.mean_power > 0 ? c.mean_freq / (c.mean_power / 1000.0) : 0);
  }
  std::printf("\npaper ordering: FP0.5BP0.5 ~ FP0.6BP0.4 best, FP0.7BP0.3 "
              "next, FP0.84BP0.16 and FP0.96BP0.04 trailing.\n");
  return 0;
}
