// bench_fig4 — reproduces Fig. 4: standard-cell area comparison between the
// 3.5T FFET and the 4T CFET, including the Split-Gate gains (MUX/DFF) and
// the extra-Drain-Merge losses (AOI22/OAI22).

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "stdcell/stdcell.h"

using namespace ffet;

int main() {
  bench::print_title("Fig. 4", "Standard cell area: 3.5T FFET vs 4T CFET");
  bench::print_note(
      "paper: ~12.5% mean scaling; extra gains in MUX/DFF (Split Gate);");
  bench::print_note("AOI22/OAI22 lose area to the extra Drain Merge.");

  tech::Technology ffet = tech::make_ffet_3p5t();
  tech::Technology cfet = tech::make_cfet_4t();
  const stdcell::Library flib = stdcell::build_library(ffet);
  const stdcell::Library clib = stdcell::build_library(cfet);

  std::printf("\n%-10s %12s %12s %10s %s\n", "Cell", "CFET um^2", "FFET um^2",
              "saving", "mechanism");
  double sum = 0.0;
  int n = 0;
  for (const auto& cell : flib.cells()) {
    if (cell->physical_only()) continue;
    const stdcell::CellType* other = clib.find(cell->name());
    if (!other) continue;
    const double saving = 1.0 - cell->area_um2() / other->area_um2();
    sum += saving;
    ++n;
    const char* why = "";
    if (cell->structure().split_gate_pairs > 0) why = "Split Gate gain";
    if (cell->structure().width_cpp_ffet > cell->structure().width_cpp_cfet) {
      why = "extra Drain Merge penalty";
    }
    std::printf("%-10s %12.5f %12.5f %9.1f%% %s\n", cell->name().c_str(),
                other->area_um2(), cell->area_um2(), saving * 100.0, why);
  }
  std::printf("\nmean cell-area saving: %.1f%%  (paper: ~12.5%%, more in "
              "MUX/DFF)\n",
              sum / n * 100.0);
  return 0;
}
