// bench_eco — post-route ECO timing closure at the Fig. 9 operating point.
//
// Runs the RV32 core at FFET FM12/BM12, 76 % utilization, twice on the same
// prepared design: once with eco_passes = 0 (the paper-reproduction
// baseline) and once with the ECO engine enabled, and reports
//
//   * pre-ECO vs post-ECO achieved frequency and total power (plus the
//     iso-frequency power of the optimized design — the "faster at ~equal
//     power" contract is judged at the pre-ECO frequency);
//   * the accepted/reverted transform mix (sizing, repeaters, dual-sided
//     pin flips);
//   * incremental-vs-full STA speedup measured inside the ECO inner loop.
//
// Always writes BENCH_eco.json (cwd).  The committed copy at the repo root
// is the baseline for the CI quick-bench step (scripts/check_bench.py eco),
// which gates post_freq >= pre_freq and sta_speedup >= 1 — both
// machine-independent (the speedup is a same-process ratio).
//
//   --quick   1 ECO pass instead of 2 (same design, same gates)

#include <cstdio>
#include <string>

#include "bench_common.h"

using namespace ffet;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv, "eco");
  const int eco_passes = args.quick ? 1 : 2;

  bench::print_title("bench_eco",
                     "post-route ECO: incremental STA + dual-sided optimizer");
  bench::print_note(
      "RV32 core, FFET FM12BM12 FP0.5BP0.5 at 76% utilization (Fig. 9 "
      "operating point); eco_passes=" +
      std::to_string(eco_passes) + ".");

  flow::FlowConfig cfg = bench::ffet_dual_config(0.5);
  cfg.utilization = 0.76;
  const auto ctx = flow::prepare_design(cfg);

  // Baseline: the untouched flow (eco_passes = 0, the default every
  // paper-reproduction bench runs with).
  const flow::FlowResult pre = flow::run_physical(*ctx, cfg);

  flow::FlowConfig ecfg = cfg;
  ecfg.eco_passes = eco_passes;
  const flow::FlowResult post = flow::run_physical(*ctx, ecfg);

  const double freq_gain = bench::pct(post.achieved_freq_ghz,
                                      pre.achieved_freq_ghz);
  const double iso_power_pct =
      bench::pct(post.eco_iso_power_uw, pre.power_uw);

  std::printf("\n  %-26s %12s %12s\n", "", "pre-ECO", "post-ECO");
  std::printf("  %-26s %12.3f %12.3f  (%+.1f%%)\n", "achieved freq (GHz)",
              pre.achieved_freq_ghz, post.achieved_freq_ghz, freq_gain);
  std::printf("  %-26s %12.1f %12.1f  (at achieved freq)\n",
              "total power (uW)", pre.power_uw, post.power_uw);
  std::printf("  %-26s %12s %12.1f  (%+.2f%% vs pre)\n",
              "iso-freq power (uW)", "-", post.eco_iso_power_uw,
              iso_power_pct);
  std::printf("  %-26s %12.1f %12.1f\n", "critical path (ps)",
              pre.critical_path_ps, post.critical_path_ps);
  std::printf("  %-26s %12d %12d\n", "DRV", pre.drv, post.drv);

  std::printf("\n  transforms: %d attempted, %d accepted (%d upsize, "
              "%d downsize, %d repeater, %d pin-flip), %d reverted\n",
              post.eco_attempted, post.eco_accepted, post.eco_upsized,
              post.eco_downsized, post.eco_buffers, post.eco_pin_flips,
              post.eco_reverted);
  std::printf("  incremental STA: %.2fx faster than full re-analysis in "
              "the ECO loop\n",
              post.eco_sta_speedup);

  const bool freq_ok = post.achieved_freq_ghz > pre.achieved_freq_ghz;
  const bool power_ok = post.eco_iso_power_uw <= 1.01 * pre.power_uw;
  const bool speedup_ok = post.eco_sta_speedup >= 1.0;
  std::printf("\n  gates: freq_improved=%s power_within_1pct=%s "
              "sta_speedup_ge_1=%s\n",
              freq_ok ? "ok" : "FAIL", power_ok ? "ok" : "FAIL",
              speedup_ok ? "ok" : "FAIL");

  std::string json;
  json.reserve(1024);
  flow::JsonBuilder j(json);
  j.open_obj();
  j.field("bench", "bench_eco");
  j.field("design", "rv32_ffet_fm12bm12_dual0.5_util0.76");
  j.field("eco_passes", eco_passes);
  j.open_nested("pre");
  j.field("freq_ghz", pre.achieved_freq_ghz);
  j.field("power_uw", pre.power_uw);
  j.field("critical_path_ps", pre.critical_path_ps);
  j.field("drv", pre.drv);
  j.close_obj();
  j.open_nested("post");
  j.field("freq_ghz", post.achieved_freq_ghz);
  j.field("power_uw", post.power_uw);
  j.field("iso_power_uw", post.eco_iso_power_uw);
  j.field("critical_path_ps", post.critical_path_ps);
  j.field("drv", post.drv);
  j.close_obj();
  j.field("freq_gain_pct", freq_gain);
  j.field("iso_power_increase_pct", iso_power_pct);
  j.field("sta_speedup", post.eco_sta_speedup);
  j.field("attempted", post.eco_attempted);
  j.field("accepted", post.eco_accepted);
  j.field("reverted", post.eco_reverted);
  j.field("upsized", post.eco_upsized);
  j.field("downsized", post.eco_downsized);
  j.field("buffers", post.eco_buffers);
  j.field("pin_flips", post.eco_pin_flips);
  j.field("gates_ok", freq_ok && power_ok && speedup_ok);
  j.close_obj();
  json += '\n';

  if (std::FILE* f = std::fopen("BENCH_eco.json", "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    bench::print_note("results written to BENCH_eco.json");
  }

  return (freq_ok && power_ok && speedup_ok) ? 0 : 1;
}
