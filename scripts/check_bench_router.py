#!/usr/bin/env python3
"""Regression gate for the maze-routing kernel (bench_router).

Usage: check_bench_router.py <baseline BENCH_router.json> <new BENCH_router.json>

Compares the fresh bench_router output against the committed baseline and
fails (exit 1) on a >20 % regression.  Only machine-portable metrics are
gated, so the gate is stable on noisy shared CI runners:

  * astar_settled_per_route — deterministic search-effort count; a rise
    means the windowed A* engine is doing more work per route (window
    policy, heuristic, or cost-cache regression);
  * speedup — A* wall time normalized against the *legacy engine measured
    in the same process on the same machine*, so absolute machine speed
    and CI load cancel out;
  * qor_ok — the bench's own equal-or-better check of hard overflow and
    wirelength (A* vs. legacy); any false fails outright.

Raw seconds/routes_per_s are reported for context but never gated.
"""

import json
import sys

TOLERANCE = 0.20  # >20 % regression fails


def load(path):
    with open(path) as f:
        data = json.load(f)
    return {c["gcell_tracks"]: c for c in data["configs"]}, data


def main():
    if len(sys.argv) != 3:
        sys.stderr.write(__doc__)
        return 2
    base_cfgs, base = load(sys.argv[1])
    new_cfgs, new = load(sys.argv[2])

    failures = []
    if not new.get("qor_ok", False):
        failures.append("qor_ok=false: A* worse than legacy on overflow/WL")

    for tracks, b in sorted(base_cfgs.items()):
        n = new_cfgs.get(tracks)
        if n is None:
            failures.append(f"gcell_tracks={tracks}: missing from new run")
            continue

        b_settled = b["astar_settled_per_route"]
        n_settled = n["astar_settled_per_route"]
        settled_ratio = n_settled / b_settled if b_settled > 0 else 1.0
        b_speedup = b["speedup"]
        n_speedup = n["speedup"]
        speedup_ratio = n_speedup / b_speedup if b_speedup > 0 else 1.0

        print(
            f"gcell_tracks={tracks}: settled/route {b_settled:.1f} -> "
            f"{n_settled:.1f} ({(settled_ratio - 1) * 100:+.1f}%), "
            f"speedup {b_speedup:.2f}x -> {n_speedup:.2f}x "
            f"({(speedup_ratio - 1) * 100:+.1f}%)"
        )
        if settled_ratio > 1.0 + TOLERANCE:
            failures.append(
                f"gcell_tracks={tracks}: settled/route regressed "
                f"{(settled_ratio - 1) * 100:.1f}% (> {TOLERANCE:.0%})"
            )
        if speedup_ratio < 1.0 - TOLERANCE:
            failures.append(
                f"gcell_tracks={tracks}: speedup vs legacy regressed "
                f"{(1 - speedup_ratio) * 100:.1f}% (> {TOLERANCE:.0%})"
            )

    if failures:
        print("\nFAIL: bench_router regression gate", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nOK: bench_router within tolerance of the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
