#!/usr/bin/env python3
"""Gate for the post-route ECO engine (bench_eco).

Usage: check_bench_eco.py <baseline BENCH_eco.json> <new BENCH_eco.json>

Unlike the router gate, the ECO gates are *absolute* properties of the new
run, not ratios against the baseline — the accept/revert loop must never
make the design slower, and the incremental STA must never be slower than
the full re-analysis it replaces.  The committed baseline is printed for
context only (it was produced with eco_passes=2; CI's quick run uses 1
pass, so the magnitudes legitimately differ).

Gated on the new run:

  * post.freq_ghz >= pre.freq_ghz — the ECO accept rule forbids WNS
    regressions, so a slowdown means the revert path is broken;
  * post.iso_power_uw <= 1.01 * pre.power_uw — the "faster at ~equal
    power" contract, judged at the pre-ECO frequency;
  * sta_speedup >= 1 — the incremental update must beat full re-analysis
    (a same-process ratio, so machine speed and CI load cancel out);
  * gates_ok — the bench's own verdict (same three checks, computed
    in-process before rounding).
"""

import json
import sys

ISO_POWER_TOLERANCE = 0.01  # post-ECO power at pre-ECO freq may rise <= 1 %


def load(path):
    with open(path) as f:
        return json.load(f)


def main():
    if len(sys.argv) != 3:
        sys.stderr.write(__doc__)
        return 2
    base = load(sys.argv[1])
    new = load(sys.argv[2])

    print(
        f"baseline (eco_passes={base['eco_passes']}): "
        f"{base['pre']['freq_ghz']:.3f} -> {base['post']['freq_ghz']:.3f} GHz "
        f"({base['freq_gain_pct']:+.1f}%), iso power "
        f"{base['iso_power_increase_pct']:+.2f}%, "
        f"STA speedup {base['sta_speedup']:.2f}x"
    )
    print(
        f"new      (eco_passes={new['eco_passes']}): "
        f"{new['pre']['freq_ghz']:.3f} -> {new['post']['freq_ghz']:.3f} GHz "
        f"({new['freq_gain_pct']:+.1f}%), iso power "
        f"{new['iso_power_increase_pct']:+.2f}%, "
        f"STA speedup {new['sta_speedup']:.2f}x"
    )
    print(
        f"new transforms: {new['attempted']} attempted, "
        f"{new['accepted']} accepted ({new['upsized']} upsize, "
        f"{new['downsized']} downsize, {new['buffers']} repeater, "
        f"{new['pin_flips']} pin-flip), {new['reverted']} reverted"
    )

    failures = []
    if new["post"]["freq_ghz"] < new["pre"]["freq_ghz"]:
        failures.append(
            f"post-ECO freq {new['post']['freq_ghz']:.4f} GHz below pre-ECO "
            f"{new['pre']['freq_ghz']:.4f} GHz (revert path broken?)"
        )
    iso_limit = (1.0 + ISO_POWER_TOLERANCE) * new["pre"]["power_uw"]
    if new["post"]["iso_power_uw"] > iso_limit:
        failures.append(
            f"iso-frequency power {new['post']['iso_power_uw']:.1f} uW "
            f"exceeds {iso_limit:.1f} uW "
            f"(pre {new['pre']['power_uw']:.1f} uW + {ISO_POWER_TOLERANCE:.0%})"
        )
    if new["sta_speedup"] < 1.0:
        failures.append(
            f"incremental STA slower than full re-analysis "
            f"(speedup {new['sta_speedup']:.2f}x < 1)"
        )
    if not new.get("gates_ok", False):
        failures.append("gates_ok=false: the bench's in-process gates failed")

    if failures:
        print("\nFAIL: bench_eco gate", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nOK: ECO improves frequency within the power budget and the "
          "incremental STA beats full re-analysis")
    return 0


if __name__ == "__main__":
    sys.exit(main())
