#!/usr/bin/env python3
"""Unified quick-bench gate — a thin wrapper over `ffet_report diff`.

Usage: check_bench.py <eco|router|flow> <baseline.json[l]> <new.json[l]>

The actual comparison logic lives in C++ (src/report/qor.cpp), next to the
emitters it parses, so the gate and the reports can never drift apart.
This wrapper only locates the binary:

  * $FFET_REPORT_BIN if set, else
  * ./build/examples/ffet_report (the default CMake layout).

Exit codes pass through from `ffet_report diff`: 0 pass, 1 regression,
2 malformed input / missing binary.

Modes:
  eco     — absolute gates on the new BENCH_eco.json (post freq >= pre,
            iso power within 1 %, incremental-STA speedup >= 1, gates_ok);
  router  — BENCH_router.json vs committed baseline (astar/astar2
            settled/route +20 %, speedup/speedup2 -20 %, >= 1.8x stage-2
            floor at congested configs, qor_ok);
  flow    — flow-report JSONL vs JSONL (schema ffet.flow_report.v1):
            frequency / power / wirelength / DRV / validity deltas.
"""

import os
import subprocess
import sys


def main():
    if len(sys.argv) != 4 or sys.argv[1] not in ("eco", "router", "flow"):
        sys.stderr.write(__doc__)
        return 2
    binary = os.environ.get("FFET_REPORT_BIN", "./build/examples/ffet_report")
    if not (os.path.isfile(binary) and os.access(binary, os.X_OK)):
        sys.stderr.write(
            f"check_bench.py: ffet_report binary not found at {binary!r} "
            "(build it, or set FFET_REPORT_BIN)\n"
        )
        return 2
    return subprocess.call(
        [binary, "diff", "--mode", sys.argv[1], sys.argv[2], sys.argv[3]]
    )


if __name__ == "__main__":
    sys.exit(main())
