// ISA-level verification of the structurally generated RV32I core, executed
// on the gate-level simulator.  Uses a reduced 8-register core for speed;
// one test builds the full 32-register core and spot-checks it.

#include <cstdint>

#include <gtest/gtest.h>

#include "riscv/encode.h"
#include "riscv/harness.h"
#include "riscv/rv32.h"
#include "tech/tech.h"

namespace ffet::riscv {
namespace {

namespace e = enc;
using u32 = std::uint32_t;

class Rv32Test : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tech_ = new tech::Technology(tech::make_ffet_3p5t());
    lib_ = new stdcell::Library(stdcell::build_library(*tech_));
    Rv32Options opt;
    opt.num_registers = 8;
    core_ = new netlist::Netlist(build_rv32_core(*lib_, opt));
  }
  static void TearDownTestSuite() {
    delete core_;
    delete lib_;
    delete tech_;
    core_ = nullptr;
    lib_ = nullptr;
    tech_ = nullptr;
  }

  /// Run `prog`, then return the word the program stored at `obs_addr`.
  u32 run_and_read(const std::vector<u32>& prog, int cycles,
                   u32 obs_addr = 0x100) {
    Rv32Harness h(core_);
    h.load_program(prog);
    h.reset();
    h.step(cycles);
    return h.read_mem(obs_addr);
  }

  static tech::Technology* tech_;
  static stdcell::Library* lib_;
  static netlist::Netlist* core_;
};

tech::Technology* Rv32Test::tech_ = nullptr;
stdcell::Library* Rv32Test::lib_ = nullptr;
netlist::Netlist* Rv32Test::core_ = nullptr;

TEST_F(Rv32Test, NetlistIsStructurallySound) {
  EXPECT_TRUE(core_->validate().empty());
  EXPECT_NO_THROW(core_->topo_order());
  const auto s = core_->stats();
  EXPECT_GT(s.num_instances, 1000);
  EXPECT_GT(s.num_sequential, 32 * 7);  // 7 registers + 32-bit PC
}

TEST_F(Rv32Test, ResetClearsPcAndAdvancesBy4) {
  Rv32Harness h(core_);
  h.load_program({e::nop(), e::nop(), e::nop()});
  h.reset();
  EXPECT_EQ(h.pc(), 0u);
  h.step();
  EXPECT_EQ(h.pc(), 4u);
  h.step();
  EXPECT_EQ(h.pc(), 8u);
}

TEST_F(Rv32Test, AddiAndSw) {
  const u32 got = run_and_read(
      {
          e::addi(1, 0, 42),       // x1 = 42
          e::addi(2, 1, -5),       // x2 = 37
          e::sw(2, 0, 0x100),      // mem[0x100] = x2
      },
      3);
  EXPECT_EQ(got, 37u);
}

TEST_F(Rv32Test, ArithmeticRType) {
  const u32 got = run_and_read(
      {
          e::addi(1, 0, 100),
          e::addi(2, 0, 7),
          e::sub(3, 1, 2),        // 93
          e::add(3, 3, 2),        // 100
          e::sw(3, 0, 0x100),
      },
      5);
  EXPECT_EQ(got, 100u);
}

TEST_F(Rv32Test, LogicOps) {
  const u32 got = run_and_read(
      {
          e::addi(1, 0, 0x5a5),       // x1
          e::addi(2, 0, 0x0ff),
          e::and_(3, 1, 2),           // 0x0a5
          e::or_(4, 1, 2),            // 0x5ff
          e::xor_(5, 1, 2),           // 0x55a
          e::sw(3, 0, 0x100),
          e::sw(4, 0, 0x104),
          e::sw(5, 0, 0x108),
      },
      8);
  EXPECT_EQ(got, 0x0a5u);
}

TEST_F(Rv32Test, LogicImmediates) {
  Rv32Harness h(core_);
  h.load_program({
      e::addi(1, 0, 0x5a5),
      e::andi(2, 1, 0x0f0),
      e::ori(3, 1, 0x00f),
      e::xori(4, 1, -1),  // bitwise not
      e::sw(2, 0, 0x100),
      e::sw(3, 0, 0x104),
      e::sw(4, 0, 0x108),
  });
  h.reset();
  h.step(7);
  EXPECT_EQ(h.read_mem(0x100), 0x0a0u);
  EXPECT_EQ(h.read_mem(0x104), 0x5afu);
  EXPECT_EQ(h.read_mem(0x108), ~0x5a5u);
}

TEST_F(Rv32Test, Shifts) {
  Rv32Harness h(core_);
  h.load_program({
      e::lui(1, 0x80000),      // x1 = 0x8000_0000
      e::addi(1, 1, 0x700),    // x1 = 0x8000_0700
      e::slli(2, 1, 4),
      e::srli(3, 1, 8),
      e::srai(4, 1, 8),
      e::sw(2, 0, 0x100),
      e::sw(3, 0, 0x104),
      e::sw(4, 0, 0x108),
  });
  h.reset();
  h.step(8);
  EXPECT_EQ(h.read_mem(0x100), 0x80000700u << 4);
  EXPECT_EQ(h.read_mem(0x104), 0x80000700u >> 8);
  EXPECT_EQ(h.read_mem(0x108),
            static_cast<u32>(static_cast<std::int32_t>(0x80000700u) >> 8));
}

TEST_F(Rv32Test, VariableShifts) {
  Rv32Harness h(core_);
  h.load_program({
      e::addi(1, 0, 0x123),
      e::addi(2, 0, 5),
      e::sll(3, 1, 2),
      e::srl(4, 3, 2),
      e::sw(3, 0, 0x100),
      e::sw(4, 0, 0x104),
  });
  h.reset();
  h.step(6);
  EXPECT_EQ(h.read_mem(0x100), 0x123u << 5);
  EXPECT_EQ(h.read_mem(0x104), 0x123u);
}

TEST_F(Rv32Test, SetLessThan) {
  Rv32Harness h(core_);
  h.load_program({
      e::addi(1, 0, -3),
      e::addi(2, 0, 5),
      e::slt(3, 1, 2),    // -3 < 5 signed -> 1
      e::sltu(4, 1, 2),   // 0xfffffffd < 5 unsigned -> 0
      e::slti(5, 2, 10),  // 5 < 10 -> 1
      e::sltiu(6, 2, 4),  // 5 < 4 -> 0
      e::sw(3, 0, 0x100),
      e::sw(4, 0, 0x104),
      e::sw(5, 0, 0x108),
      e::sw(6, 0, 0x10c),
  });
  h.reset();
  h.step(10);
  EXPECT_EQ(h.read_mem(0x100), 1u);
  EXPECT_EQ(h.read_mem(0x104), 0u);
  EXPECT_EQ(h.read_mem(0x108), 1u);
  EXPECT_EQ(h.read_mem(0x10c), 0u);
}

TEST_F(Rv32Test, LuiAuipc) {
  Rv32Harness h(core_);
  h.load_program({
      e::lui(1, 0x12345),
      e::auipc(2, 0x1),    // pc = 4 -> x2 = 0x1004
      e::sw(1, 0, 0x100),
      e::sw(2, 0, 0x104),
  });
  h.reset();
  h.step(4);
  EXPECT_EQ(h.read_mem(0x100), 0x12345000u);
  EXPECT_EQ(h.read_mem(0x104), 0x1004u);
}

TEST_F(Rv32Test, LoadStoreWord) {
  Rv32Harness h(core_);
  h.write_mem(0x200, 0xdeadbeef);
  h.load_program({
      e::addi(1, 0, 0x200),
      e::lw(2, 1, 0),
      e::sw(2, 1, 8),
  });
  h.reset();
  h.step(3);
  EXPECT_EQ(h.read_mem(0x208), 0xdeadbeefu);
}

TEST_F(Rv32Test, ByteAndHalfwordAccess) {
  Rv32Harness h(core_);
  h.write_mem(0x200, 0x8091a2b3);
  h.load_program({
      e::addi(1, 0, 0x200),
      e::lb(2, 1, 1),    // byte 1 = 0xa2 -> sign-extended 0xffffffa2
      e::lbu(3, 1, 3),   // byte 3 = 0x80 -> 0x80
      e::lh(4, 1, 2),    // half 1 = 0x8091 -> 0xffff8091
      e::lhu(5, 1, 0),   // half 0 = 0xa2b3
      e::sw(2, 0, 0x100),
      e::sw(3, 0, 0x104),
      e::sw(4, 0, 0x108),
      e::sw(5, 0, 0x10c),
      e::sb(3, 0, 0x110),     // store byte
      e::sh(5, 0, 0x114),     // store half
  });
  h.reset();
  h.step(11);
  EXPECT_EQ(h.read_mem(0x100), 0xffffffa2u);
  EXPECT_EQ(h.read_mem(0x104), 0x80u);
  EXPECT_EQ(h.read_mem(0x108), 0xffff8091u);
  EXPECT_EQ(h.read_mem(0x10c), 0xa2b3u);
  EXPECT_EQ(h.read_mem(0x110) & 0xff, 0x80u);
  EXPECT_EQ(h.read_mem(0x114) & 0xffff, 0xa2b3u);
}

TEST_F(Rv32Test, SubwordStoresMergeIntoWord) {
  Rv32Harness h(core_);
  h.write_mem(0x100, 0xaabbccdd);
  h.load_program({
      e::addi(1, 0, 0x11),
      e::sb(1, 0, 0x101),  // replace byte 1
  });
  h.reset();
  h.step(2);
  EXPECT_EQ(h.read_mem(0x100), 0xaabb11ddu);
}

TEST_F(Rv32Test, BranchesTakenAndNotTaken) {
  Rv32Harness h(core_);
  h.load_program({
      /* 0x00 */ e::addi(1, 0, 5),
      /* 0x04 */ e::addi(2, 0, 5),
      /* 0x08 */ e::beq(1, 2, 8),        // taken -> 0x10
      /* 0x0c */ e::addi(3, 0, 111),     // skipped
      /* 0x10 */ e::bne(1, 2, 8),        // not taken
      /* 0x14 */ e::addi(3, 3, 1),       // executed: x3 = 1
      /* 0x18 */ e::blt(0, 1, 8),        // 0 < 5 taken -> 0x20
      /* 0x1c */ e::addi(3, 0, 222),     // skipped
      /* 0x20 */ e::sw(3, 0, 0x100),
  });
  h.reset();
  h.step(7);
  EXPECT_EQ(h.read_mem(0x100), 1u);
}

TEST_F(Rv32Test, SignedVsUnsignedBranch) {
  Rv32Harness h(core_);
  h.load_program({
      /* 0x00 */ e::addi(1, 0, -1),      // 0xffffffff
      /* 0x04 */ e::addi(2, 0, 1),
      /* 0x08 */ e::bltu(2, 1, 8),       // 1 < 0xffffffff unsigned: taken
      /* 0x0c */ e::addi(3, 0, 99),      // skipped
      /* 0x10 */ e::blt(2, 1, 8),        // 1 < -1 signed: NOT taken
      /* 0x14 */ e::addi(3, 3, 7),       // x3 = 7
      /* 0x18 */ e::sw(3, 0, 0x100),
  });
  h.reset();
  h.step(6);
  EXPECT_EQ(h.read_mem(0x100), 7u);
}

TEST_F(Rv32Test, BackwardBranchLoop) {
  // Sum 1..5 with a loop.
  Rv32Harness h(core_);
  h.load_program({
      /* 0x00 */ e::addi(1, 0, 5),    // i = 5
      /* 0x04 */ e::addi(2, 0, 0),    // sum = 0
      /* 0x08 */ e::add(2, 2, 1),     // sum += i
      /* 0x0c */ e::addi(1, 1, -1),   // i--
      /* 0x10 */ e::bne(1, 0, -8),    // loop while i != 0
      /* 0x14 */ e::sw(2, 0, 0x100),
  });
  h.reset();
  h.step(2 + 5 * 3 + 1);
  EXPECT_EQ(h.read_mem(0x100), 15u);
}

TEST_F(Rv32Test, JalAndJalr) {
  Rv32Harness h(core_);
  h.load_program({
      /* 0x00 */ e::jal(1, 12),          // jump to 0x0c, x1 = 4
      /* 0x04 */ e::addi(2, 0, 111),     // skipped initially; ret lands here
      /* 0x08 */ e::jal(0, 12),          // jump to 0x14
      /* 0x0c */ e::addi(2, 0, 55),      // x2 = 55
      /* 0x10 */ e::jalr(3, 1, 0),       // return to x1 = 4, x3 = 0x14
      /* 0x14 */ e::sw(2, 0, 0x100),
      /* 0x18 */ e::sw(3, 0, 0x104),
      /* 0x1c */ e::sw(1, 0, 0x108),
  });
  h.reset();
  h.step(8);
  EXPECT_EQ(h.read_mem(0x100), 111u);   // executed after return
  EXPECT_EQ(h.read_mem(0x104), 0x14u);  // link register of jalr
  EXPECT_EQ(h.read_mem(0x108), 4u);     // link register of jal
}

TEST_F(Rv32Test, X0IsHardwiredZero) {
  Rv32Harness h(core_);
  h.load_program({
      e::addi(0, 0, 123),   // writes to x0 are discarded
      e::sw(0, 0, 0x100),
  });
  h.reset();
  h.write_mem(0x100, 77);
  h.step(2);
  EXPECT_EQ(h.read_mem(0x100), 0u);
}

TEST_F(Rv32Test, FibonacciProgram) {
  // fib(10) = 55, iteratively.
  Rv32Harness h(core_);
  h.load_program({
      /* 0x00 */ e::addi(1, 0, 0),     // a = 0
      /* 0x04 */ e::addi(2, 0, 1),     // b = 1
      /* 0x08 */ e::addi(3, 0, 10),    // n = 10
      /* 0x0c */ e::add(4, 1, 2),      // t = a + b
      /* 0x10 */ e::addi(1, 2, 0),     // a = b
      /* 0x14 */ e::addi(2, 4, 0),     // b = t
      /* 0x18 */ e::addi(3, 3, -1),    // n--
      /* 0x1c */ e::bne(3, 0, -16),    // loop
      /* 0x20 */ e::sw(1, 0, 0x100),   // result = a = fib(10)
  });
  h.reset();
  h.step(3 + 10 * 5 + 1);
  EXPECT_EQ(h.read_mem(0x100), 55u);
}

TEST(Rv32Full, ThirtyTwoRegisterCoreWorks) {
  tech::Technology t = tech::make_ffet_3p5t();
  stdcell::Library lib = stdcell::build_library(t);
  netlist::Netlist core = build_rv32_core(lib, {.num_registers = 32});
  EXPECT_TRUE(core.validate().empty());
  const auto s = core.stats();
  // A real block: thousands of instances, >1k flip-flops.
  EXPECT_GT(s.num_instances, 5000);
  EXPECT_GE(s.num_sequential, 31 * 32 + 32);

  Rv32Harness h(&core);
  h.load_program({
      e::addi(20, 0, 1000),   // high register numbers exercise full decode
      e::addi(31, 20, 234),
      e::sw(31, 0, 0x100),
  });
  h.reset();
  h.step(3);
  EXPECT_EQ(h.read_mem(0x100), 1234u);
}

TEST(Rv32M, MultiplierVariantsMatchReference) {
  tech::Technology t = tech::make_ffet_3p5t();
  stdcell::Library lib = stdcell::build_library(t);
  netlist::Netlist core =
      build_rv32_core(lib, {.num_registers = 8, .enable_m = true});
  EXPECT_TRUE(core.validate().empty());

  auto run_mul = [&](u32 (*op)(u32, u32, u32), std::uint32_t a,
                     std::uint32_t bval) {
    Rv32Harness h(&core);
    h.write_mem(0x200, a);
    h.write_mem(0x204, bval);
    h.load_program({
        e::lw(1, 0, 0x200),
        e::lw(2, 0, 0x204),
        op(3, 1, 2),
        e::sw(3, 0, 0x100),
    });
    h.reset();
    h.step(4);
    return h.read_mem(0x100);
  };

  const std::uint32_t cases[][2] = {
      {3, 5},
      {0xffffffff, 2},            // -1 * 2
      {0x80000000, 0x80000000},   // INT_MIN^2
      {1234567, 89012345},
      {0, 0xdeadbeef},
      {0xfffffffe, 0xffffffff},   // -2 * -1
  };
  for (const auto& c : cases) {
    const std::uint64_t au = c[0], bu = c[1];
    const std::int64_t as = static_cast<std::int32_t>(c[0]);
    const std::int64_t bs = static_cast<std::int32_t>(c[1]);
    EXPECT_EQ(run_mul(e::mul, c[0], c[1]),
              static_cast<std::uint32_t>(au * bu)) << c[0] << "*" << c[1];
    EXPECT_EQ(run_mul(e::mulhu, c[0], c[1]),
              static_cast<std::uint32_t>((au * bu) >> 32)) << "mulhu";
    EXPECT_EQ(run_mul(e::mulh, c[0], c[1]),
              static_cast<std::uint32_t>(
                  (static_cast<std::uint64_t>(as * bs)) >> 32)) << "mulh";
    EXPECT_EQ(run_mul(e::mulhsu, c[0], c[1]),
              static_cast<std::uint32_t>(
                  static_cast<std::uint64_t>(
                      as * static_cast<std::int64_t>(bu)) >> 32)) << "mulhsu";
  }
}

TEST(Rv32M, DisabledByDefault) {
  tech::Technology t = tech::make_ffet_3p5t();
  stdcell::Library lib = stdcell::build_library(t);
  const auto plain = build_rv32_core(lib, {.num_registers = 4});
  const auto with_m =
      build_rv32_core(lib, {.num_registers = 4, .enable_m = true});
  EXPECT_GT(with_m.num_instances(), plain.num_instances() + 3000)
      << "the multiplier should add thousands of gates";
}

TEST(Rv32Options, RejectsBadRegisterCount) {
  tech::Technology t = tech::make_ffet_3p5t();
  stdcell::Library lib = stdcell::build_library(t);
  EXPECT_THROW(build_rv32_core(lib, {.num_registers = 3}),
               std::invalid_argument);
  EXPECT_THROW(build_rv32_core(lib, {.num_registers = 0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace ffet::riscv
