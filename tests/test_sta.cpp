// Tests for static timing analysis and power analysis.

#include <gtest/gtest.h>

#include "liberty/characterize.h"
#include "netlist/builder.h"
#include "netlist/sim.h"
#include "sta/sta.h"

namespace ffet::sta {
namespace {

using netlist::Builder;
using netlist::Bus;
using netlist::NetId;

class StaTest : public ::testing::Test {
 protected:
  StaTest() : tech_(tech::make_ffet_3p5t()), lib_(stdcell::build_library(tech_)) {
    liberty::characterize_library(lib_);
  }
  tech::Technology tech_;
  stdcell::Library lib_;
};

TEST_F(StaTest, InverterChainDelayScalesWithLength) {
  auto chain_delay = [&](int n) {
    Builder b("chain", &lib_);
    NetId x = b.input("a");
    for (int i = 0; i < n; ++i) x = b.inv(x);
    b.output("z", x);
    netlist::Netlist nl = b.take();
    Sta sta(&nl, nullptr);
    return sta.analyze_timing().critical_path_ps;
  };
  const double d4 = chain_delay(4);
  const double d8 = chain_delay(8);
  const double d16 = chain_delay(16);
  EXPECT_GT(d8, d4);
  EXPECT_GT(d16, d8);
  // Roughly linear in stages.
  EXPECT_NEAR((d16 - d8) / (d8 - d4), 2.0, 0.5);
}

TEST_F(StaTest, RegisterToRegisterPathUsesSetupAndClkToQ) {
  Builder b("r2r", &lib_);
  const NetId clk = b.input("clk");
  b.netlist().mark_clock_net(clk);
  const NetId d0 = b.input("d");
  const NetId q0 = b.dff(d0, clk);
  NetId x = q0;
  for (int i = 0; i < 6; ++i) x = b.inv(x);
  const NetId q1 = b.dff(x, clk);
  b.output("q", q1);
  netlist::Netlist nl = b.take();
  Sta sta(&nl, nullptr);
  const TimingReport rep = sta.analyze_timing();
  EXPECT_GT(rep.endpoints, 0);
  // Path must exceed 6 inverter delays + clk->q + setup.
  const auto* dff = lib_.find("DFFD1");
  const double setup = dff->timing_model()->setup_ps;
  EXPECT_GT(rep.critical_path_ps, setup);
  EXPECT_GT(rep.achieved_freq_ghz, 0.0);
  EXPECT_LT(rep.achieved_freq_ghz, 100.0);
  EXPECT_FALSE(rep.critical_path.empty());
}

TEST_F(StaTest, SlackAgainstTarget) {
  Builder b("s", &lib_);
  const NetId a = b.input("a");
  b.output("z", b.inv(a));
  netlist::Netlist nl = b.take();
  Sta sta(&nl, nullptr);
  const TimingReport rep = sta.analyze_timing();
  EXPECT_GT(rep.slack_ps(1000.0), 0.0);   // 1 GHz: easy
  EXPECT_LT(rep.slack_ps(0.001), 0.0);    // 1 PHz: impossible
}

TEST_F(StaTest, ClockLatencyShiftsLaunchAndCapture) {
  Builder b("lat", &lib_);
  const NetId clk = b.input("clk");
  b.netlist().mark_clock_net(clk);
  const NetId d0 = b.input("d");
  const NetId q0 = b.dff(d0, clk);
  NetId x = b.inv(q0);
  const NetId q1 = b.dff(x, clk);
  b.output("q", q1);
  netlist::Netlist nl = b.take();

  const auto launch_id = nl.net(q0).driver.inst;
  const auto capture_id = nl.net(q1).driver.inst;

  Sta sta(&nl, nullptr);
  const double base = sta.analyze_timing().critical_path_ps;

  // Useful skew: giving the *capturing* FF extra latency relaxes the path.
  std::unordered_map<netlist::InstId, double> lat;
  lat[capture_id] = 20.0;
  lat[launch_id] = 0.0;
  Sta sta2(&nl, nullptr);
  const double relaxed = sta2.analyze_timing(&lat).critical_path_ps;
  EXPECT_LT(relaxed, base);

  // Extra launch latency tightens it.
  lat[capture_id] = 0.0;
  lat[launch_id] = 20.0;
  Sta sta3(&nl, nullptr);
  const double tightened = sta3.analyze_timing(&lat).critical_path_ps;
  EXPECT_GT(tightened, base);
}

TEST_F(StaTest, PowerScalesWithFrequencyAndActivity) {
  Builder b("p", &lib_);
  const NetId a = b.input("a");
  NetId x = a;
  for (int i = 0; i < 10; ++i) x = b.inv(x);
  b.output("z", x);
  netlist::Netlist nl = b.take();
  Sta sta(&nl, nullptr);
  sta.analyze_timing();

  const PowerReport p1 = sta.analyze_power(1.0);
  const PowerReport p2 = sta.analyze_power(2.0);
  EXPECT_GT(p1.total_uw(), 0.0);
  // Leakage is frequency-independent; dynamic power doubles.
  EXPECT_DOUBLE_EQ(p1.leakage_uw, p2.leakage_uw);
  EXPECT_NEAR(p2.switching_uw, 2.0 * p1.switching_uw, 1e-9);
  EXPECT_NEAR(p2.internal_uw, 2.0 * p1.internal_uw, 1e-9);

  const PowerReport quiet = sta.analyze_power(1.0, nullptr, 0.05);
  const PowerReport busy = sta.analyze_power(1.0, nullptr, 0.40);
  EXPECT_GT(busy.switching_uw, quiet.switching_uw);
}

TEST_F(StaTest, SimulatedToggleRatesDrivePower) {
  Builder b("act", &lib_);
  const NetId clk = b.input("clk");
  b.netlist().mark_clock_net(clk);
  const NetId d = b.wire("d");
  const NetId q = b.dff(d, clk);
  b.drive(d, "INVD1", {q});  // toggle flop: net q toggles every cycle
  b.output("q", q);
  netlist::Netlist nl = b.take();

  netlist::Simulator sim(&nl);
  sim.reset_activity();
  for (int i = 0; i < 32; ++i) sim.tick();
  std::vector<double> rates(static_cast<std::size_t>(nl.num_nets()), 0.0);
  for (int n = 0; n < nl.num_nets(); ++n) {
    rates[static_cast<std::size_t>(n)] =
        nl.net(n).is_clock ? 2.0 : sim.toggle_rate(n);
  }
  Sta sta(&nl, nullptr);
  sta.analyze_timing();
  const PowerReport measured = sta.analyze_power(1.0, &rates);
  const PowerReport idle = sta.analyze_power(
      1.0, nullptr, /*default_toggle=*/0.0);
  // With real activity the toggle flop burns more than the
  // zero-data-activity case (which still clocks).
  EXPECT_GT(measured.total_uw(), idle.total_uw());
}

TEST_F(StaTest, EfficiencyMetric) {
  PowerReport r;
  r.switching_uw = 500.0;
  r.internal_uw = 400.0;
  r.leakage_uw = 100.0;
  r.freq_ghz = 2.0;
  EXPECT_DOUBLE_EQ(r.total_uw(), 1000.0);
  EXPECT_DOUBLE_EQ(r.efficiency_ghz_per_mw(), 2.0);
}

TEST_F(StaTest, WireloadVsExtractedConsistency) {
  // Wireload STA must be finite and in the same decade as typical loads.
  Builder b("wl", &lib_);
  const NetId a = b.input("a");
  NetId x = b.inv(a);
  // Fanout-heavy node.
  std::vector<NetId> outs;
  for (int i = 0; i < 8; ++i) outs.push_back(b.inv(x));
  b.output("z", b.or_tree(outs));
  netlist::Netlist nl = b.take();
  Sta sta(&nl, nullptr);
  const TimingReport rep = sta.analyze_timing();
  EXPECT_GT(rep.critical_path_ps, 5.0);
  EXPECT_LT(rep.critical_path_ps, 2000.0);
}

TEST_F(StaTest, HoldAnalysisFindsShortPaths) {
  // A direct FF->FF connection (no logic) is the classic hold risk.
  Builder b("hold", &lib_);
  const NetId clk = b.input("clk");
  b.netlist().mark_clock_net(clk);
  const NetId d = b.input("d");
  const NetId q0 = b.dff(d, clk);
  const NetId q1 = b.dff(q0, clk);  // direct path
  b.output("q", q1);
  netlist::Netlist nl = b.take();
  Sta sta(&nl, nullptr);
  sta.analyze_timing();
  const HoldReport rep = sta.analyze_hold();
  // Min arrival = clk->q (several ps) > hold (a couple ps): positive slack.
  EXPECT_GT(rep.worst_slack_ps, 0.0);
  EXPECT_EQ(rep.violations, 0);
  EXPECT_FALSE(rep.worst_endpoint.empty());
}

TEST_F(StaTest, HoldViolationUnderLargeSkew) {
  Builder b("holdskew", &lib_);
  const NetId clk = b.input("clk");
  b.netlist().mark_clock_net(clk);
  const NetId d = b.input("d");
  const NetId q0 = b.dff(d, clk);
  const NetId q1 = b.dff(q0, clk);
  b.output("q", q1);
  netlist::Netlist nl = b.take();

  const auto launch = nl.net(q0).driver.inst;
  const auto capture = nl.net(q1).driver.inst;
  std::unordered_map<netlist::InstId, double> lat;
  lat[launch] = 0.0;
  lat[capture] = 100.0;  // capture clock arrives much later: hold hazard
  Sta sta(&nl, nullptr);
  sta.analyze_timing(&lat);
  const HoldReport rep = sta.analyze_hold(&lat);
  EXPECT_LT(rep.worst_slack_ps, 0.0);
  EXPECT_GT(rep.violations, 0);
}

TEST_F(StaTest, HoldSlackShrinksWithSkewOption) {
  Builder b("holdopt", &lib_);
  const NetId clk = b.input("clk");
  b.netlist().mark_clock_net(clk);
  const NetId q0 = b.dff(b.input("d"), clk);
  const NetId q1 = b.dff(b.inv(q0), clk);
  b.output("q", q1);
  netlist::Netlist nl = b.take();

  StaOptions tight;
  tight.clock_skew_ps = 0.0;
  Sta s1(&nl, nullptr, tight);
  s1.analyze_timing();
  const double slack0 = s1.analyze_hold().worst_slack_ps;

  StaOptions skewed;
  skewed.clock_skew_ps = 5.0;
  Sta s2(&nl, nullptr, skewed);
  s2.analyze_timing();
  const double slack5 = s2.analyze_hold().worst_slack_ps;
  EXPECT_NEAR(slack0 - slack5, 5.0, 1e-9);
}

}  // namespace
}  // namespace ffet::sta
