// Tests for the synthetic workload generator and the reporting module,
// including a full physical run over a generated circuit.

#include <gtest/gtest.h>

#include "liberty/characterize.h"
#include "netlist/workload.h"
#include "pnr/cts.h"
#include "pnr/floorplan.h"
#include "pnr/placement.h"
#include "pnr/powerplan.h"
#include "pnr/report.h"

namespace ffet::netlist {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest()
      : tech_(tech::make_ffet_3p5t()), lib_(stdcell::build_library(tech_)) {
    liberty::characterize_library(lib_);
  }
  tech::Technology tech_;
  stdcell::Library lib_;
};

TEST_F(WorkloadTest, GeneratesValidNetlist) {
  WorkloadOptions opt;
  opt.num_gates = 800;
  opt.num_flops = 100;
  const Netlist nl = generate_workload(lib_, opt);
  EXPECT_TRUE(nl.validate().empty());
  EXPECT_NO_THROW(nl.topo_order());
  const NetlistStats s = nl.stats();
  EXPECT_EQ(s.num_instances, 900);
  EXPECT_EQ(s.num_sequential, 100);
  EXPECT_TRUE(nl.find_port("clk").has_value());
  EXPECT_TRUE(nl.find_port("out0").has_value());
}

TEST_F(WorkloadTest, DeterministicPerSeed) {
  WorkloadOptions opt;
  opt.num_gates = 300;
  opt.seed = 42;
  const Netlist a = generate_workload(lib_, opt);
  const Netlist b = generate_workload(lib_, opt);
  ASSERT_EQ(a.num_instances(), b.num_instances());
  auto same_pins = [](const Netlist& x, const Netlist& y, int i) {
    const auto px = x.pin_nets(i);
    const auto py = y.pin_nets(i);
    return std::equal(px.begin(), px.end(), py.begin(), py.end());
  };
  for (int i = 0; i < a.num_instances(); ++i) {
    EXPECT_EQ(a.instance(i).type->name(), b.instance(i).type->name());
    EXPECT_TRUE(same_pins(a, b, i));
  }
  opt.seed = 43;
  const Netlist c = generate_workload(lib_, opt);
  bool differs = a.num_instances() != c.num_instances();
  for (int i = 0; !differs && i < a.num_instances(); ++i) {
    differs = a.instance(i).type->name() != c.instance(i).type->name() ||
              !same_pins(a, c, i);
  }
  EXPECT_TRUE(differs) << "different seeds should differ";
}

TEST_F(WorkloadTest, LocalityReducesWirelength) {
  // High-locality circuits should place with less wire than low-locality
  // ones of identical size — the knob works end to end.
  auto hpwl_for = [&](double locality) {
    WorkloadOptions opt;
    opt.num_gates = 1200;
    opt.num_flops = 120;
    opt.locality = locality;
    Netlist nl = generate_workload(lib_, opt);
    pnr::FloorplanOptions fo;
    fo.target_utilization = 0.6;
    const pnr::Floorplan fp = pnr::make_floorplan(nl, tech_, fo);
    const pnr::PowerPlan pp = pnr::build_power_plan(nl, fp, lib_);
    return pnr::place(nl, fp, pp).hpwl_um;
  };
  EXPECT_LT(hpwl_for(0.95), hpwl_for(0.1));
}

TEST_F(WorkloadTest, RejectsDegenerateOptions) {
  WorkloadOptions opt;
  opt.num_inputs = 1;
  EXPECT_THROW(generate_workload(lib_, opt), std::invalid_argument);
  opt.num_inputs = 8;
  opt.num_gates = 0;
  EXPECT_THROW(generate_workload(lib_, opt), std::invalid_argument);
}

TEST_F(WorkloadTest, FullPhysicalRunOnWorkload) {
  WorkloadOptions opt;
  opt.num_gates = 1000;
  opt.num_flops = 150;
  Netlist nl = generate_workload(lib_, opt);
  pnr::FloorplanOptions fo;
  fo.target_utilization = 0.65;
  const pnr::Floorplan fp = pnr::make_floorplan(nl, tech_, fo);
  const pnr::PowerPlan pp = pnr::build_power_plan(nl, fp, lib_);
  const pnr::PlacementResult pres = pnr::place(nl, fp, pp);
  EXPECT_TRUE(pres.legal);
  pnr::build_clock_tree(nl, fp);
  const pnr::RouteResult rr = pnr::route_design(nl, fp);
  EXPECT_GT(rr.nets_front, 500);

  // Report module over the same run.
  const pnr::CongestionMap cmap =
      pnr::build_congestion_map(rr, tech::Side::Front);
  EXPECT_GT(cmap.max_load, 0.0);
  EXPECT_GE(cmap.max_load, cmap.mean_load);
  const std::string art = pnr::render_heatmap(cmap.load);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), cmap.load.rows());

  const pnr::DensityMap dmap = pnr::build_density_map(nl, fp, 16);
  EXPECT_GT(dmap.mean_density, 0.2);
  EXPECT_LE(dmap.max_density, 1.5);  // center-binning quantization

  const std::string summary = pnr::routing_summary(rr);
  EXPECT_NE(summary.find("frontside"), std::string::npos);
  EXPECT_NE(summary.find("DRV"), std::string::npos);
}

}  // namespace
}  // namespace ffet::netlist
