// Reproduction tests: the paper's headline block-level relationships on the
// full 32-register RV32 core.  These are the slowest tests in the suite
// (seconds each) but they pin down the qualitative results every bench
// reports — if one of these breaks, the reproduction story broke.

#include <gtest/gtest.h>

#include "flow/flow.h"

namespace ffet::flow {
namespace {

class ReproductionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    FlowConfig c;
    c.tech_kind = tech::TechKind::Cfet4T;
    cfet_ = prepare_design(c).release();

    FlowConfig f1;
    f1.tech_kind = tech::TechKind::Ffet3p5T;
    f1.back_layers = 0;  // FFET FM12: single-sided signals
    ffet_single_ = prepare_design(f1).release();

    FlowConfig f2;
    f2.tech_kind = tech::TechKind::Ffet3p5T;
    f2.backside_input_fraction = 0.5;  // FFET FM12BM12 FP0.5BP0.5
    ffet_dual_ = prepare_design(f2).release();
  }
  static void TearDownTestSuite() {
    delete cfet_;
    delete ffet_single_;
    delete ffet_dual_;
    cfet_ = ffet_single_ = ffet_dual_ = nullptr;
  }

  static FlowResult at_util(const DesignContext& ctx, double util) {
    FlowConfig cfg = ctx.config;
    cfg.utilization = util;
    return run_physical(ctx, cfg);
  }

  static DesignContext* cfet_;
  static DesignContext* ffet_single_;
  static DesignContext* ffet_dual_;
};

DesignContext* ReproductionTest::cfet_ = nullptr;
DesignContext* ReproductionTest::ffet_single_ = nullptr;
DesignContext* ReproductionTest::ffet_dual_ = nullptr;

// Fig. 8(a): dual-sided FFET reaches ~86 % utilization, capped by the Power
// Tap Cells, and the CFET caps earlier (~84 %, nTSV).
TEST_F(ReproductionTest, Fig8a_UtilizationCeilings) {
  EXPECT_TRUE(at_util(*ffet_dual_, 0.86).valid());
  const FlowResult above = at_util(*ffet_dual_, 0.90);
  EXPECT_FALSE(above.placement_legal)
      << "above 86% the tap cells must cause placement violations";

  EXPECT_TRUE(at_util(*cfet_, 0.84).valid());
  EXPECT_FALSE(at_util(*cfet_, 0.88).placement_legal);
}

// Fig. 8(a): FFET core area reduction vs CFET at the same utilization
// (paper: 23.3 %; cell-level scaling ~12.5 % plus Split-Gate gains).
TEST_F(ReproductionTest, Fig8a_AreaReductionAtSameUtilization) {
  const FlowResult f = at_util(*ffet_dual_, 0.76);
  const FlowResult c = at_util(*cfet_, 0.76);
  ASSERT_TRUE(f.valid());
  ASSERT_TRUE(c.valid());
  const double reduction = 1.0 - f.core_area_um2 / c.core_area_um2;
  EXPECT_GT(reduction, 0.10);
  EXPECT_LT(reduction, 0.35);
}

// Fig. 8(c): FFET with frontside-only signals is routability-limited to
// ~76 % — the pin-density penalty of the smaller cells.
TEST_F(ReproductionTest, Fig8c_SingleSidedFfetPinLimited) {
  EXPECT_TRUE(at_util(*ffet_single_, 0.72).valid());
  EXPECT_TRUE(at_util(*ffet_single_, 0.76).valid());
  const FlowResult fail = at_util(*ffet_single_, 0.82);
  EXPECT_TRUE(fail.placement_legal)
      << "placement is fine — routability must be the limiter";
  EXPECT_FALSE(fail.route_valid);
  // And the same utilization is NOT routing-limited for CFET or for the
  // dual-sided FFET.
  EXPECT_TRUE(at_util(*cfet_, 0.82).route_valid);
  EXPECT_TRUE(at_util(*ffet_dual_, 0.82).route_valid);
}

// Fig. 9: at the same utilization FFET achieves higher frequency and lower
// power than CFET.
TEST_F(ReproductionTest, Fig9_FfetFasterAndMoreEfficient) {
  const FlowResult f = at_util(*ffet_single_, 0.72);
  const FlowResult c = at_util(*cfet_, 0.72);
  ASSERT_TRUE(f.valid());
  ASSERT_TRUE(c.valid());
  EXPECT_GT(f.achieved_freq_ghz, c.achieved_freq_ghz)
      << "FFET should beat CFET on frequency (paper: +25%)";
  // Power at the *achieved* frequency: compare efficiency instead of raw
  // power (FFET clocks faster).
  EXPECT_GT(f.efficiency_ghz_per_mw, c.efficiency_ghz_per_mw);
}

// Dual-sided routing moves a large share of wire to the backside and keeps
// frequency at least as good as single-sided.
TEST_F(ReproductionTest, DualSidedRelievesFrontsideWire) {
  const FlowResult dual = at_util(*ffet_dual_, 0.72);
  const FlowResult single = at_util(*ffet_single_, 0.72);
  ASSERT_TRUE(dual.valid());
  ASSERT_TRUE(single.valid());
  EXPECT_GT(dual.wirelength_back_um, 0.2 * dual.wirelength_front_um);
  EXPECT_LT(dual.wirelength_front_um, single.wirelength_front_um);
  EXPECT_GE(dual.achieved_freq_ghz, 0.92 * single.achieved_freq_ghz);
}

// Fig. 12: with 50/50 pins, reducing to 4 layers per side keeps the flow
// valid at 86 % (tap-limited, not routability-limited); at 2 layers per
// side high utilization fails on routability.
TEST_F(ReproductionTest, Fig12_LayerReductionHeadroom) {
  FlowConfig f4 = ffet_dual_->config;
  f4.front_layers = 4;
  f4.back_layers = 4;
  const auto ctx4 = prepare_design(f4);
  f4.utilization = 0.86;
  EXPECT_TRUE(run_physical(*ctx4, f4).valid())
      << "4 layers/side must still close at 86% (Fig. 12)";

  // 2 layers/side: the high-utilization band must no longer close reliably
  // (Fig. 12: max utilization drops to ~70%).  Wire congestion at this
  // capacity is threshold-noisy, so require failure somewhere in the band
  // rather than at one exact point.
  FlowConfig f2 = ffet_dual_->config;
  f2.front_layers = 2;
  f2.back_layers = 2;
  const auto ctx2 = prepare_design(f2);
  bool any_failure = false;
  for (double u : {0.80, 0.84, 0.86}) {
    f2.utilization = u;
    if (!run_physical(*ctx2, f2).route_valid) {
      any_failure = true;
      break;
    }
  }
  EXPECT_TRUE(any_failure)
      << "2 layers/side must fail routability in the 80-86% band (Fig. 12)";
}

// Fig. 13: power efficiency barely degrades from 12 to 6 layers per side.
TEST_F(ReproductionTest, Fig13_EfficiencyRobustToLayerCount) {
  FlowConfig base = ffet_dual_->config;
  base.utilization = 0.72;
  const FlowResult full = run_physical(*ffet_dual_, base);

  FlowConfig f6 = base;
  f6.front_layers = 6;
  f6.back_layers = 6;
  const auto ctx6 = prepare_design(f6);
  const FlowResult six = run_physical(*ctx6, f6);
  ASSERT_TRUE(full.valid());
  ASSERT_TRUE(six.valid());
  const double degradation =
      1.0 - six.efficiency_ghz_per_mw / full.efficiency_ghz_per_mw;
  EXPECT_LT(degradation, 0.10)
      << "paper: <1% efficiency loss down to 5 layers/side";
}

}  // namespace
}  // namespace ffet::flow
