// Unit tests for the dual-sided standard-cell library (Fig. 4 mechanisms,
// pin redistribution, boolean evaluation).

#include <cmath>

#include <gtest/gtest.h>

#include "stdcell/nldm.h"
#include "stdcell/stdcell.h"
#include "tech/tech.h"

namespace ffet::stdcell {
namespace {

class LibraryTest : public ::testing::Test {
 protected:
  tech::Technology cfet_ = tech::make_cfet_4t();
  tech::Technology ffet_ = tech::make_ffet_3p5t();
};

TEST_F(LibraryTest, CatalogueCovered) {
  const Library lib = build_library(ffet_);
  // The Fig. 4 cell set.
  for (const char* name :
       {"INVD1", "INVD2", "INVD4", "INVD8", "BUFD1", "BUFD2", "BUFD4",
        "BUFD8", "NAND2D1", "NOR2D1", "AND2D1", "OR2D1", "XOR2D1", "XNOR2D1",
        "AOI21D1", "OAI21D1", "AOI22D1", "OAI22D1", "MUX2D1", "DFFD1",
        "DFFRD1", "CLKBUFD2", "CLKBUFD4", "CLKBUFD8", "TIELOD1", "TIEHID1",
        "FILLER1", "TAPCELL"}) {
    EXPECT_NE(lib.find(name), nullptr) << name;
  }
}

TEST_F(LibraryTest, CfetHasNoTapCell) {
  const Library lib = build_library(cfet_);
  EXPECT_EQ(lib.find("TAPCELL"), nullptr);
  EXPECT_TRUE(lib.tap_cell_name().empty());
}

TEST_F(LibraryTest, SimpleCellsShrinkByHeightRatio) {
  const Library f = build_library(ffet_);
  const Library c = build_library(cfet_);
  for (const char* name : {"INVD1", "BUFD2", "NAND2D1", "NOR2D2", "XOR2D1",
                           "AOI21D1", "OAI21D1", "AND2D1"}) {
    const double ratio = f.at(name).area_um2() / c.at(name).area_um2();
    EXPECT_NEAR(ratio, 0.875, 1e-9) << name;  // exactly 3.5T / 4T
  }
}

TEST_F(LibraryTest, SplitGateCellsShrinkMore) {
  const Library f = build_library(ffet_);
  const Library c = build_library(cfet_);
  for (const char* name : {"MUX2D1", "DFFD1", "DFFRD1"}) {
    const double ratio = f.at(name).area_um2() / c.at(name).area_um2();
    EXPECT_LT(ratio, 0.875) << name << " should gain extra area from the "
                               "Split Gate (Fig. 4)";
  }
}

TEST_F(LibraryTest, Aoi22PaysExtraDrainMerge) {
  const Library f = build_library(ffet_);
  const Library c = build_library(cfet_);
  for (const char* name : {"AOI22D1", "OAI22D1"}) {
    const double ratio = f.at(name).area_um2() / c.at(name).area_um2();
    EXPECT_GT(ratio, 0.875) << name;
    // The paper admits these cells *waste* area: ratio above 1 is allowed.
    EXPECT_LT(ratio, 1.2) << name;
  }
}

TEST_F(LibraryTest, AverageAreaScalingAroundTwelvePercent) {
  const Library f = build_library(ffet_);
  const Library c = build_library(cfet_);
  double sum = 0.0;
  int n = 0;
  for (const auto& cell : f.cells()) {
    if (cell->physical_only()) continue;
    const CellType* other = c.find(cell->name());
    ASSERT_NE(other, nullptr) << cell->name();
    sum += 1.0 - cell->area_um2() / other->area_um2();
    ++n;
  }
  const double mean_saving = sum / n;
  EXPECT_GT(mean_saving, 0.10);  // "around 12.5% cell area scaling"
  EXPECT_LT(mean_saving, 0.20);
}

TEST_F(LibraryTest, CfetPinsAllFrontside) {
  const Library lib = build_library(cfet_);
  for (const auto& cell : lib.cells()) {
    for (const CellPin& p : cell->pins()) {
      EXPECT_EQ(p.side, PinSide::Front)
          << cell->name() << "/" << p.name;
    }
  }
}

TEST_F(LibraryTest, FfetOutputPinsAreDualSided) {
  const Library lib = build_library(ffet_);
  for (const auto& cell : lib.cells()) {
    if (cell->physical_only()) continue;
    const CellPin* out = cell->output_pin();
    ASSERT_NE(out, nullptr) << cell->name();
    EXPECT_EQ(out->side, PinSide::Both)
        << cell->name() << ": FFET output pins use the Drain Merge to reach "
                           "both FM0 and BM0 (Sec. III.A)";
  }
}

TEST_F(LibraryTest, CfetRejectsBacksidePins) {
  PinConfig cfg;
  cfg.backside_input_fraction = 0.3;
  EXPECT_THROW(build_library(cfet_, cfg), std::invalid_argument);
}

TEST_F(LibraryTest, ClockPinsStayFrontside) {
  PinConfig cfg;
  cfg.backside_input_fraction = 1.0;
  const Library lib = build_library(ffet_, cfg);
  for (const auto& cell : lib.cells()) {
    for (const CellPin& p : cell->pins()) {
      if (p.dir == PinDir::Clock) {
        EXPECT_EQ(p.side, PinSide::Front) << cell->name();
      }
    }
  }
}

// Pin redistribution: realized fraction tracks the request (paper DoEs:
// 4% to 50%).
class PinRedistribution : public ::testing::TestWithParam<double> {};

TEST_P(PinRedistribution, RealizedFractionMatchesRequest) {
  const double req = GetParam();
  tech::Technology ffet = tech::make_ffet_3p5t();
  PinConfig cfg;
  cfg.backside_input_fraction = req;
  const Library lib = build_library(ffet, cfg);
  const double got = lib.backside_input_pin_fraction();
  // Error-diffusion assignment: off by at most one pin over the library.
  int total_inputs = 0;
  for (const auto& c : lib.cells()) {
    if (c->physical_only()) continue;
    for (const CellPin& p : c->pins()) {
      if (p.dir == PinDir::Input) ++total_inputs;
    }
  }
  EXPECT_NEAR(got, req, 1.0 / total_inputs + 1e-9) << "requested " << req;
}

INSTANTIATE_TEST_SUITE_P(DoeRatios, PinRedistribution,
                         ::testing::Values(0.0, 0.04, 0.16, 0.3, 0.4, 0.5,
                                           0.75, 1.0));

TEST_F(LibraryTest, PinConfigLabels) {
  PinConfig a;
  EXPECT_EQ(a.label(), "FP1.0");
  PinConfig bl;
  bl.backside_input_fraction = 0.5;
  EXPECT_EQ(bl.label(), "FP0.5BP0.5");
  PinConfig c;
  c.backside_input_fraction = 0.04;
  EXPECT_EQ(c.label(), "FP0.96BP0.04");
}

TEST_F(LibraryTest, DeterministicConstruction) {
  PinConfig cfg;
  cfg.backside_input_fraction = 0.3;
  const Library a = build_library(ffet_, cfg);
  const Library b = build_library(ffet_, cfg);
  ASSERT_EQ(a.cells().size(), b.cells().size());
  for (std::size_t i = 0; i < a.cells().size(); ++i) {
    EXPECT_EQ(a.cells()[i]->name(), b.cells()[i]->name());
    const auto& pa = a.cells()[i]->pins();
    const auto& pb = b.cells()[i]->pins();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t p = 0; p < pa.size(); ++p) {
      EXPECT_EQ(pa[p].side, pb[p].side)
          << a.cells()[i]->name() << "/" << pa[p].name;
    }
  }
}

// --- boolean evaluation ----------------------------------------------------

TEST(Evaluate, TruthTables) {
  using V = std::vector<bool>;
  EXPECT_EQ(evaluate(Function::Inv, V{false}), true);
  EXPECT_EQ(evaluate(Function::Inv, V{true}), false);
  EXPECT_EQ(evaluate(Function::Nand2, V{true, true}), false);
  EXPECT_EQ(evaluate(Function::Nand2, V{true, false}), true);
  EXPECT_EQ(evaluate(Function::Nor2, V{false, false}), true);
  EXPECT_EQ(evaluate(Function::Xor2, V{true, false}), true);
  EXPECT_EQ(evaluate(Function::Xor2, V{true, true}), false);
  EXPECT_EQ(evaluate(Function::Xnor2, V{true, true}), true);
  EXPECT_EQ(evaluate(Function::Mux2, V{true, false, false}), true);
  EXPECT_EQ(evaluate(Function::Mux2, V{true, false, true}), false);
  EXPECT_EQ(evaluate(Function::TieLo, V{}), false);
  EXPECT_EQ(evaluate(Function::TieHi, V{}), true);
}

TEST(Evaluate, AoiOaiAgainstFormula) {
  for (int mask = 0; mask < 16; ++mask) {
    const bool a1 = mask & 1, a2 = mask & 2, b1 = mask & 4, b2 = mask & 8;
    EXPECT_EQ(evaluate(Function::Aoi22, {a1, a2, b1, b2}),
              !((a1 && a2) || (b1 && b2)));
    EXPECT_EQ(evaluate(Function::Oai22, {a1, a2, b1, b2}),
              !((a1 || a2) && (b1 || b2)));
  }
  for (int mask = 0; mask < 8; ++mask) {
    const bool a1 = mask & 1, a2 = mask & 2, bb = mask & 4;
    EXPECT_EQ(evaluate(Function::Aoi21, {a1, a2, bb}), !((a1 && a2) || bb));
    EXPECT_EQ(evaluate(Function::Oai21, {a1, a2, bb}), !((a1 || a2) && bb));
  }
}

TEST(Evaluate, RejectsWrongArityAndSequential) {
  EXPECT_EQ(evaluate(Function::Inv, {true, false}), std::nullopt);
  EXPECT_EQ(evaluate(Function::Dff, {true}), std::nullopt);
  EXPECT_EQ(evaluate(Function::Tap, {}), std::nullopt);
}

// --- NLDM table ----------------------------------------------------------

TEST(Nldm, BilinearInterpolation) {
  NldmTable t({10, 20}, {1, 3}, {1.0, 3.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(t.lookup(10, 1), 1.0);
  EXPECT_DOUBLE_EQ(t.lookup(20, 3), 4.0);
  EXPECT_DOUBLE_EQ(t.lookup(15, 2), 2.5);   // center
  EXPECT_DOUBLE_EQ(t.lookup(10, 2), 2.0);
}

TEST(Nldm, ClampsOutsideRange) {
  NldmTable t({10, 20}, {1, 3}, {1.0, 3.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(t.lookup(0, 0), 1.0);     // below both axes
  EXPECT_DOUBLE_EQ(t.lookup(100, 100), 4.0); // above both axes
  EXPECT_DOUBLE_EQ(t.lookup(15, 100), 3.5);
}

TEST(Nldm, SinglePointAndEmpty) {
  NldmTable empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_DOUBLE_EQ(empty.lookup(5, 5), 0.0);
  NldmTable single({10}, {1}, {7.5});
  EXPECT_DOUBLE_EQ(single.lookup(0, 100), 7.5);
}

}  // namespace
}  // namespace ffet::stdcell
