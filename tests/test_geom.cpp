// Unit tests for the geometry substrate.

#include <gtest/gtest.h>

#include "geom/geom.h"
#include "geom/grid.h"

namespace ffet::geom {
namespace {

TEST(Point, ArithmeticAndComparison) {
  const Point a{10, 20};
  const Point b{3, -5};
  EXPECT_EQ((a + b), (Point{13, 15}));
  EXPECT_EQ((a - b), (Point{7, 25}));
  EXPECT_TRUE(a == (Point{10, 20}));
  EXPECT_TRUE(b < a);
}

TEST(Point, ManhattanDistance) {
  EXPECT_EQ(manhattan({0, 0}, {0, 0}), 0);
  EXPECT_EQ(manhattan({0, 0}, {3, 4}), 7);
  EXPECT_EQ(manhattan({3, 4}, {0, 0}), 7);
  EXPECT_EQ(manhattan({-3, -4}, {3, 4}), 14);
}

TEST(UnitConversion, RoundTrips) {
  EXPECT_DOUBLE_EQ(to_um(1500), 1.5);
  EXPECT_EQ(from_um(1.5), 1500);
  EXPECT_EQ(from_um(-0.25), -250);
  EXPECT_EQ(from_um(to_um(123456)), 123456);
}

TEST(Rect, BasicProperties) {
  const Rect r = make_rect({100, 200}, 300, 400);
  EXPECT_EQ(r.width(), 300);
  EXPECT_EQ(r.height(), 400);
  EXPECT_TRUE(r.well_formed());
  EXPECT_FALSE(r.degenerate());
  EXPECT_EQ(r.center(), (Point{250, 400}));
  EXPECT_DOUBLE_EQ(r.area_um2(), 0.3 * 0.4);
}

TEST(Rect, DegenerateWireSegment) {
  const Rect seg{{0, 50}, {1000, 50}};
  EXPECT_TRUE(seg.well_formed());
  EXPECT_TRUE(seg.degenerate());
  EXPECT_EQ(seg.width(), 1000);
  EXPECT_EQ(seg.height(), 0);
}

TEST(Rect, ContainsPointInclusive) {
  const Rect r = make_rect({0, 0}, 10, 10);
  EXPECT_TRUE(r.contains(Point{0, 0}));
  EXPECT_TRUE(r.contains(Point{10, 10}));
  EXPECT_TRUE(r.contains(Point{5, 5}));
  EXPECT_FALSE(r.contains(Point{11, 5}));
  EXPECT_FALSE(r.contains(Point{5, -1}));
}

TEST(Rect, IntersectsVsOverlapsInterior) {
  const Rect a = make_rect({0, 0}, 10, 10);
  const Rect touching = make_rect({10, 0}, 10, 10);  // shares an edge
  const Rect apart = make_rect({11, 0}, 10, 10);
  const Rect inside = make_rect({2, 2}, 3, 3);
  EXPECT_TRUE(a.intersects(touching));
  EXPECT_FALSE(a.overlaps_interior(touching));  // abutment is legal placement
  EXPECT_FALSE(a.intersects(apart));
  EXPECT_TRUE(a.overlaps_interior(inside));
}

TEST(Rect, UnitedAndIntersected) {
  const Rect a = make_rect({0, 0}, 10, 10);
  const Rect b = make_rect({5, 5}, 10, 10);
  const Rect u = a.united(b);
  EXPECT_EQ(u, make_rect({0, 0}, 15, 15));
  const Rect i = a.intersected(b);
  EXPECT_EQ(i, make_rect({5, 5}, 5, 5));
}

TEST(Rect, TranslatedAndInflated) {
  const Rect r = make_rect({0, 0}, 10, 10);
  EXPECT_EQ(r.translated({5, -5}), make_rect({5, -5}, 10, 10));
  const Rect inf = r.inflated(2);
  EXPECT_EQ(inf, make_rect({-2, -2}, 14, 14));
}

TEST(Interval, OverlapSemantics) {
  const Interval a{0, 10};
  EXPECT_TRUE(a.intersects({10, 20}));
  EXPECT_FALSE(a.overlaps_interior({10, 20}));
  EXPECT_TRUE(a.overlaps_interior({9, 20}));
  EXPECT_TRUE(a.contains(0));
  EXPECT_TRUE(a.contains(10));
  EXPECT_FALSE(a.contains(11));
  EXPECT_EQ(a.intersected({5, 20}), (Interval{5, 10}));
}

TEST(Snap, DownUpWithOffset) {
  EXPECT_EQ(snap_down(95, 30), 90);
  EXPECT_EQ(snap_down(90, 30), 90);
  EXPECT_EQ(snap_up(91, 30), 120);
  EXPECT_EQ(snap_up(90, 30), 90);
  EXPECT_EQ(snap_down(95, 30, 5), 95);
  EXPECT_EQ(snap_down(94, 30, 5), 65);
  EXPECT_EQ(snap_down(-5, 30), -30);
  EXPECT_EQ(snap_up(-5, 30), 0);
}

TEST(Tracks, CountInSpan) {
  // Tracks at 0, 30, 60, 90 ...
  EXPECT_EQ(tracks_in_span(0, 90, 30), 4);
  EXPECT_EQ(tracks_in_span(1, 89, 30), 2);
  EXPECT_EQ(tracks_in_span(31, 59, 30), 0);
  EXPECT_EQ(tracks_in_span(30, 30, 30), 1);
  EXPECT_EQ(tracks_in_span(10, 5, 30), 0);   // empty span
  EXPECT_EQ(tracks_in_span(0, 100, 0), 0);   // invalid pitch
}

TEST(Grid2D, IndexingAndBounds) {
  Grid2D<int> g(4, 3, 7);
  EXPECT_EQ(g.cols(), 4);
  EXPECT_EQ(g.rows(), 3);
  EXPECT_EQ(g.size(), 12u);
  EXPECT_TRUE(g.in_bounds(3, 2));
  EXPECT_FALSE(g.in_bounds(4, 0));
  EXPECT_FALSE(g.in_bounds(0, -1));
  EXPECT_EQ(g.at(3, 2), 7);
  g.at(1, 2) = 42;
  EXPECT_EQ(g.at(1, 2), 42);
  const std::size_t idx = g.index(1, 2);
  EXPECT_EQ(g.col_of(idx), 1);
  EXPECT_EQ(g.row_of(idx), 2);
}

TEST(Grid2D, FillAndIteration) {
  Grid2D<double> g(5, 5);
  g.fill(1.5);
  double sum = 0;
  for (double v : g) sum += v;
  EXPECT_DOUBLE_EQ(sum, 25 * 1.5);
}

TEST(FormatUm, HumanReadable) {
  EXPECT_EQ(to_string_um(Point{1500, 2250}), "(1.500, 2.250) um");
}

}  // namespace
}  // namespace ffet::geom
