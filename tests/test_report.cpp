// Signoff reporting subsystem tests: the JSON value parser, the
// flow-report JSONL reader (round-trip against src/flow's emitter,
// malformed-line and unknown-field tolerance), the QoR diff engine's
// pairing/threshold semantics, and — over a real reduced flow — the
// multi-path timing report's bit-identity with the STA's critical path
// plus the per-net attribution invariants.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include <cstdio>
#include <fstream>

#include <sys/wait.h>
#include <unistd.h>

#include "flow/flow.h"
#include "flow/report_json.h"
#include "io/def.h"
#include "obs/obs.h"
#include "report/json.h"
#include "report/ledger.h"
#include "report/net_report.h"
#include "report/qor.h"
#include "report/serve_stats.h"
#include "report/snapshot.h"
#include "report/timing_report.h"
#include "sta/sta.h"

namespace ffet::report {
namespace {

// ---------------------------------------------------------------- parser

TEST(JsonParser, ScalarsNestingAndOrder) {
  std::string err;
  const std::optional<json::Value> doc = json::parse(
      R"({"a":1.5,"b":-2,"c":true,"d":"x\ny","e":[1,2,3],"f":{"g":3}})", &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const json::Value& v = *doc;
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.members.size(), 6u);
  EXPECT_EQ(v.members[0].first, "a");  // emission order preserved
  EXPECT_EQ(v.members[5].first, "f");
  EXPECT_DOUBLE_EQ(v.member_number("a"), 1.5);
  EXPECT_DOUBLE_EQ(v.member_number("b"), -2.0);
  EXPECT_TRUE(v.find("c")->bool_or(false));
  EXPECT_EQ(v.find("d")->str, "x\ny");
  ASSERT_EQ(v.find("e")->items.size(), 3u);
  EXPECT_DOUBLE_EQ(v.find("e")->items[2].number, 3.0);
  EXPECT_DOUBLE_EQ(v.find("f")->member_number("g"), 3.0);
}

TEST(JsonParser, UnicodeEscape) {
  std::string err;
  const std::optional<json::Value> doc =
      json::parse(R"({"k":"A\u00e9"})", &err);
  ASSERT_TRUE(doc.has_value()) << err;
  EXPECT_EQ(doc->find("k")->str, "A\xc3\xa9");  // UTF-8 re-encoding
}

TEST(JsonParser, RejectsMalformed) {
  std::string err;
  EXPECT_FALSE(json::parse(R"({"a":)", &err).has_value());
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(json::parse(R"({"a":1} trailing)", &err).has_value())
      << "trailing bytes must be rejected";
  EXPECT_FALSE(json::parse("", &err).has_value());
}

// ------------------------------------------------------ flow-report reader

/// A FlowResult with distinctive values in every section the reader maps.
flow::FlowResult make_result(double freq_ghz, double power_uw, int drv,
                             int eco_passes) {
  flow::FlowResult r;
  r.config.rv32_registers = 8;
  r.config.utilization = 0.65;
  r.config.eco_passes = eco_passes;
  r.placement_legal = true;
  r.route_valid = true;
  r.achieved_freq_ghz = freq_ghz;
  r.critical_path_ps = 1000.0 / freq_ghz;
  r.power_uw = power_uw;
  r.efficiency_ghz_per_mw = freq_ghz / (power_uw / 1000.0);
  r.drv = drv;
  r.drv_wire = drv;
  r.wirelength_front_um = 123.25;
  r.wirelength_back_um = 67.5;
  r.utilization = 0.645;
  r.core_area_um2 = 480.0;
  r.clock_skew_ps = 3.75;
  r.ir_drop_mv = 21.5;
  r.route_passes = 2;
  r.place_mean_displacement_um = 0.4;
  if (eco_passes > 0) {
    r.eco_passes_run = eco_passes;
    r.eco_attempted = 12;
    r.eco_accepted = 5;
    r.eco_reverted = 7;
    r.eco_buffers = 3;
    r.eco_pre_freq_ghz = freq_ghz * 0.97;
    r.eco_post_freq_ghz = freq_ghz;
    r.eco_pre_power_uw = power_uw * 0.98;
    r.eco_post_power_uw = power_uw;
    r.eco_iso_power_uw = power_uw * 0.99;
    r.eco_sta_speedup = 2.5;
  }
  r.stage_times = {{"floorplan", 1.5, 1.25}, {"route", 40.0, 38.5}};
  return r;
}

FlowRecord record_of(const flow::FlowResult& r) {
  std::istringstream is(flow::flow_report_json(r) + "\n");
  ReadStats stats;
  const std::vector<FlowRecord> recs = read_flow_reports(is, &stats);
  EXPECT_EQ(stats.parsed, 1);
  EXPECT_EQ(stats.malformed, 0);
  return recs.empty() ? FlowRecord{} : recs.front();
}

TEST(FlowReportReader, RoundTripsEveryMappedSection) {
  const flow::FlowResult r = make_result(1.25, 4000.0, 0, 2);
  const FlowRecord rec = record_of(r);

  EXPECT_EQ(rec.schema, "ffet.flow_report.v1");
  EXPECT_EQ(rec.label, r.config.label());
  EXPECT_TRUE(rec.valid);
  EXPECT_TRUE(rec.invalid_reason.empty());

  EXPECT_DOUBLE_EQ(rec.config.at("target_utilization"), 0.65);
  EXPECT_DOUBLE_EQ(rec.diagnostics.at("drv"), 0.0);
  EXPECT_DOUBLE_EQ(rec.diagnostics.at("clock_skew_ps"), 3.75);
  EXPECT_DOUBLE_EQ(rec.ppa.at("achieved_freq_ghz"), 1.25);
  EXPECT_DOUBLE_EQ(rec.ppa.at("power_uw"), 4000.0);
  EXPECT_DOUBLE_EQ(rec.ppa.at("wirelength_front_um"), 123.25);
  EXPECT_DOUBLE_EQ(rec.ppa.at("wirelength_back_um"), 67.5);

  ASSERT_TRUE(rec.has_eco);
  EXPECT_DOUBLE_EQ(rec.eco.at("passes_run"), 2.0);
  EXPECT_DOUBLE_EQ(rec.eco.at("sta_speedup"), 2.5);
  EXPECT_DOUBLE_EQ(rec.eco.at("post_freq_ghz"), 1.25);

  ASSERT_EQ(rec.stages.size(), 2u);
  EXPECT_EQ(rec.stages[0].stage, "floorplan");
  EXPECT_DOUBLE_EQ(rec.stages[1].wall_ms, 40.0);
  EXPECT_DOUBLE_EQ(rec.total_wall_ms(), 41.5);
  EXPECT_DOUBLE_EQ(rec.total_cpu_ms(), 39.75);
}

TEST(FlowReportReader, EcoSectionAbsentWhenEcoOff) {
  const FlowRecord rec = record_of(make_result(1.25, 4000.0, 0, 0));
  EXPECT_FALSE(rec.has_eco);
  EXPECT_TRUE(rec.eco.empty());
}

TEST(FlowReportReader, SkipsMalformedLinesAndKeepsTheRest) {
  const std::string good = flow::flow_report_json(make_result(1.0, 1000.0, 0, 0));
  std::istringstream is(good + "\nnot json at all\n" +
                        good.substr(0, good.size() / 2) + "\n\n" + good + "\n");
  ReadStats stats;
  const std::vector<FlowRecord> recs = read_flow_reports(is, &stats);
  EXPECT_EQ(recs.size(), 2u);
  EXPECT_EQ(stats.parsed, 2);
  EXPECT_EQ(stats.malformed, 2);
  EXPECT_EQ(stats.lines, 4);  // the blank line is not counted
}

TEST(FlowReportReader, ToleratesUnknownFields) {
  std::string line = flow::flow_report_json(make_result(1.0, 1000.0, 0, 0));
  // A future schema adds a numeric and a string field at top level.
  line.insert(line.size() - 1, R"(,"future_num":123,"future_str":"abc")");
  std::istringstream is(line + "\n");
  ReadStats stats;
  const std::vector<FlowRecord> recs = read_flow_reports(is, &stats);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_DOUBLE_EQ(recs[0].extra.at("future_num"), 123.0);
  EXPECT_EQ(stats.unknown_fields, 1);  // the string, counted but not fatal
  EXPECT_DOUBLE_EQ(recs[0].ppa.at("achieved_freq_ghz"), 1.0);
}

// ------------------------------------------------------------ diff engine

TEST(QorDiff, SelfDiffIsEmptyAndPasses) {
  const std::vector<FlowRecord> recs = {record_of(make_result(1.2, 4000.0, 0, 0)),
                                        record_of(make_result(0.9, 5000.0, 2, 2))};
  const DiffReport rep = diff_flow_reports(recs, recs);
  EXPECT_EQ(rep.pairs, 2);
  EXPECT_TRUE(rep.deltas.empty());
  EXPECT_EQ(rep.regressions, 0);
  EXPECT_TRUE(rep.ok());
}

TEST(QorDiff, EcoRunSurfacesFrequencyDeltaWithoutRegression) {
  const std::vector<FlowRecord> base = {record_of(make_result(1.00, 4000.0, 0, 0))};
  const std::vector<FlowRecord> now = {record_of(make_result(1.05, 4010.0, 0, 2))};
  const DiffReport rep = diff_flow_reports(base, now);
  const Delta* freq = nullptr;
  for (const Delta& d : rep.deltas) {
    if (d.metric == "ppa.achieved_freq_ghz") freq = &d;
  }
  ASSERT_NE(freq, nullptr) << "eco=2 vs eco=0 must flag the frequency delta";
  EXPECT_DOUBLE_EQ(freq->base, 1.00);
  EXPECT_DOUBLE_EQ(freq->now, 1.05);
  EXPECT_FALSE(freq->regression) << "a frequency gain is not a regression";
  EXPECT_TRUE(rep.ok());
}

TEST(QorDiff, FrequencyDropBeyondThresholdFails) {
  const std::vector<FlowRecord> base = {record_of(make_result(1.05, 4000.0, 0, 0))};
  const std::vector<FlowRecord> now = {record_of(make_result(1.00, 4000.0, 0, 0))};
  const DiffReport rep = diff_flow_reports(base, now);  // default: -1 % gate
  EXPECT_FALSE(rep.ok());
  // Loosening the threshold past the drop turns the same delta into a pass.
  DiffOptions loose;
  loose.freq_drop_pct = 10.0;
  EXPECT_TRUE(diff_flow_reports(base, now, loose).ok());
}

TEST(QorDiff, DrvIncreaseIsARegression) {
  const std::vector<FlowRecord> base = {record_of(make_result(1.0, 4000.0, 0, 0))};
  const std::vector<FlowRecord> now = {record_of(make_result(1.0, 4000.0, 3, 0))};
  const DiffReport rep = diff_flow_reports(base, now);
  EXPECT_FALSE(rep.ok());
  DiffOptions no_drv;
  no_drv.gate_drv = false;
  EXPECT_TRUE(diff_flow_reports(base, now, no_drv).ok());
}

TEST(QorDiff, ValidToInvalidIsARegression) {
  flow::FlowResult bad = make_result(1.0, 4000.0, 0, 0);
  bad.route_valid = false;
  bad.invalid_reason = "routing failed";
  const std::vector<FlowRecord> base = {record_of(make_result(1.0, 4000.0, 0, 0))};
  const std::vector<FlowRecord> now = {record_of(bad)};
  EXPECT_FALSE(diff_flow_reports(base, now).ok());
}

TEST(QorDiff, EcoPostBelowPreIsARegression) {
  flow::FlowResult broken = make_result(1.0, 4000.0, 0, 2);
  broken.eco_pre_freq_ghz = 1.10;  // revert path failed: ended slower
  broken.eco_post_freq_ghz = 1.00;
  const std::vector<FlowRecord> base = {record_of(make_result(1.0, 4000.0, 0, 0))};
  const DiffReport rep =
      diff_flow_reports(base, {record_of(broken)});
  EXPECT_FALSE(rep.ok());
  bool found = false;
  for (const Delta& d : rep.deltas) {
    if (d.metric == "eco.post_vs_pre_freq_ghz") found = d.regression;
  }
  EXPECT_TRUE(found);
}

TEST(QorDiff, FormatNamesRegressionsAndVerdict) {
  const std::vector<FlowRecord> base = {record_of(make_result(1.0, 4000.0, 0, 0))};
  const std::vector<FlowRecord> now = {record_of(make_result(1.0, 4200.0, 0, 0))};
  const DiffReport rep = diff_flow_reports(base, now);  // +5 % power, gate 2 %
  const std::string text = format_diff(rep);
  EXPECT_NE(text.find("ppa.power_uw"), std::string::npos);
  EXPECT_NE(text.find("REGRESSION"), std::string::npos);
  EXPECT_NE(text.find("FAIL"), std::string::npos);
  const std::string ok_text = format_diff(diff_flow_reports(base, base));
  EXPECT_NE(ok_text.find("no differences"), std::string::npos);
  EXPECT_NE(ok_text.find("OK"), std::string::npos);
}

// ------------------------------------------------------ resource fields

/// make_result plus a populated resource section and per-stage deltas.
flow::FlowResult make_resourceful_result() {
  flow::FlowResult r = make_result(1.25, 4000.0, 0, 0);
  r.resource.sampled = true;
  r.resource.peak_rss_kb = 123456;
  r.resource.current_rss_kb = 120000;
  r.resource.minor_faults = 7890;
  r.resource.major_faults = 3;
  r.resource.netlist_cells = 3660;
  r.resource.netlist_nets = 3506;
  r.resource.rc_nodes = 47988;
  r.resource.route_grid_nodes = 936;
  r.resource.def_components = 3660;
  r.resource.def_wires = 32760;
  r.stage_times = {{"floorplan", 1.5, 1.25, 128}, {"route", 40.0, 38.5, 4096}};
  return r;
}

TEST(FlowReportReader, RoundTripsResourceSectionByteStably) {
  const flow::FlowResult r = make_resourceful_result();
  EXPECT_EQ(flow::flow_report_json(r), flow::flow_report_json(r))
      << "the emitter must be byte-deterministic";

  const FlowRecord rec = record_of(r);
  EXPECT_DOUBLE_EQ(rec.resource.at("peak_rss_kb"), 123456.0);
  EXPECT_DOUBLE_EQ(rec.resource.at("current_rss_kb"), 120000.0);
  EXPECT_DOUBLE_EQ(rec.resource.at("minor_faults"), 7890.0);
  EXPECT_DOUBLE_EQ(rec.resource.at("major_faults"), 3.0);
  EXPECT_DOUBLE_EQ(rec.resource.at("rc_nodes"), 47988.0);
  EXPECT_DOUBLE_EQ(rec.resource.at("route_grid_nodes"), 936.0);
  ASSERT_EQ(rec.stages.size(), 2u);
  EXPECT_DOUBLE_EQ(rec.stages[0].rss_delta_kb, 128.0);
  EXPECT_DOUBLE_EQ(rec.stages[1].rss_delta_kb, 4096.0);
}

TEST(FlowReportReader, ResourceFieldsAbsentWhenProbeOff) {
  // A probe-off run must serialize byte-identically to a pre-probe build:
  // no "resource" section and no per-stage rss_delta_kb at all.
  const std::string off = flow::flow_report_json(make_result(1.25, 4000.0, 0, 0));
  EXPECT_EQ(off.find("resource"), std::string::npos);
  EXPECT_EQ(off.find("rss_delta_kb"), std::string::npos);
  EXPECT_EQ(off.find("peak_rss_kb"), std::string::npos);
  const FlowRecord rec = record_of(make_result(1.25, 4000.0, 0, 0));
  EXPECT_TRUE(rec.resource.empty());

  // And the probe-on emission differs from probe-off ONLY by resource
  // fields: stripping the resource object and the per-stage deltas from
  // the sampled line recovers the probe-off bytes exactly.
  std::string on = flow::flow_report_json(make_resourceful_result());
  const std::size_t rb = on.find(",\"resource\":{");
  ASSERT_NE(rb, std::string::npos);
  on.erase(rb, on.find("}", rb) - rb + 1);
  for (std::size_t p = on.find(",\"rss_delta_kb\":");
       p != std::string::npos; p = on.find(",\"rss_delta_kb\":")) {
    on.erase(p, on.find_first_of(",}", p + 1) - p);
  }
  EXPECT_EQ(on, off);
}

TEST(QorDiff, ResourceDeltasAreReportedButNeverGated) {
  flow::FlowResult base = make_resourceful_result();
  flow::FlowResult now = make_resourceful_result();
  now.resource.peak_rss_kb = base.resource.peak_rss_kb * 3;  // huge rise
  const DiffReport rep =
      diff_flow_reports({record_of(base)}, {record_of(now)});
  EXPECT_TRUE(rep.ok()) << "RSS is machine-dependent; diff must not gate it";
  bool saw = false;
  for (const Delta& d : rep.deltas) saw |= d.metric == "resource.peak_rss_kb";
  EXPECT_TRUE(saw) << "the delta itself must still be surfaced";
}

// ----------------------------------------------- serve attribution section

TEST(FlowReportReader, ServeSectionRoundTripsAndPlainLinesHaveNone) {
  const flow::FlowResult r = make_result(1.25, 4000.0, 0, 0);
  std::string line = flow::flow_report_json(r);
  ASSERT_EQ(line.find("\"serve\""), std::string::npos)
      << "attribution is daemon-injected, never emitted by the flow";

  flow::ServeAttribution attr;
  attr.queue_ms = 1.5;
  attr.cache_ms = 0.25;
  attr.run_ms = 104.0;
  attr.retries = 1;
  attr.worker_pid = 4242;
  attr.cache_hit = false;
  ASSERT_TRUE(flow::append_serve_report(line, attr));

  std::istringstream is(line + "\n");
  ReadStats stats;
  const std::vector<FlowRecord> recs = read_flow_reports(is, &stats);
  ASSERT_EQ(stats.parsed, 1);
  ASSERT_EQ(recs.size(), 1u);
  const FlowRecord& rec = recs[0];
  EXPECT_DOUBLE_EQ(rec.serve.at("queue_ms"), 1.5);
  EXPECT_DOUBLE_EQ(rec.serve.at("cache_ms"), 0.25);
  EXPECT_DOUBLE_EQ(rec.serve.at("run_ms"), 104.0);
  EXPECT_DOUBLE_EQ(rec.serve.at("retries"), 1.0);
  EXPECT_DOUBLE_EQ(rec.serve.at("worker_pid"), 4242.0);
  EXPECT_DOUBLE_EQ(rec.serve.at("cache_hit"), 0.0);
  // The annotation must not perturb any mapped QoR section.
  EXPECT_DOUBLE_EQ(rec.ppa.at("achieved_freq_ghz"), 1.25);

  // Non-object input is refused untouched.
  std::string not_json = "[1,2,3]";
  EXPECT_FALSE(flow::append_serve_report(not_json, attr));
  EXPECT_EQ(not_json, "[1,2,3]");
}

TEST(QorDiff, ServeDeltasAreReportedButNeverGatedAndSkippedInQorOnly) {
  const flow::FlowResult r = make_result(1.25, 4000.0, 0, 0);
  std::string base_line = flow::flow_report_json(r);
  std::string now_line = base_line;
  flow::ServeAttribution slow;
  slow.queue_ms = 0.5;
  slow.run_ms = 100.0;
  flow::ServeAttribution fast;
  fast.run_ms = 0.0;
  fast.cache_hit = true;
  ASSERT_TRUE(flow::append_serve_report(base_line, slow));
  ASSERT_TRUE(flow::append_serve_report(now_line, fast));

  std::istringstream bs(base_line + "\n"), ns(now_line + "\n");
  const auto base = read_flow_reports(bs);
  const auto now = read_flow_reports(ns);

  // Default diff: the serve.* drift is surfaced but can never regress —
  // service latency is machine- and load-dependent, like resource.*.
  const DiffReport rep = diff_flow_reports(base, now);
  EXPECT_TRUE(rep.ok());
  bool saw_run = false;
  for (const Delta& d : rep.deltas) saw_run |= d.metric == "serve.run_ms";
  EXPECT_TRUE(saw_run);

  // qor_only (the service-identity gate): serve.* is invisible, so a
  // cached replay diffs clean against the run that populated the cache.
  DiffOptions qopts;
  qopts.qor_only = true;
  const DiffReport qrep = diff_flow_reports(base, now, qopts);
  EXPECT_TRUE(qrep.ok());
  EXPECT_EQ(qrep.deltas.size(), 0u) << format_diff(qrep);
}

// ----------------------------------------------------------- serve stats

TEST(ServeStats, ParsesSnapshotAndFormatsTables) {
  const std::string json =
      "{\"schema\":\"ffet.serve_stats.v1\",\"pid\":777,\"uptime_ms\":2500.0,"
      "\"workers\":2,\"queue_depth\":1,\"in_flight\":3,\"cache_entries\":18,"
      "\"counters\":{\"requests\":4,\"points\":36,\"cache_hits\":18,"
      "\"cache_misses\":18,\"single_flight_joins\":0,\"flow_runs\":18,"
      "\"retries\":1,\"worker_deaths\":1,\"worker_restarts\":1},"
      "\"latency_ms\":{\"queue_wait\":{\"count\":18,\"sum\":90.0,"
      "\"min\":1.0,\"max\":20.0,\"mean\":5.0,\"p50\":4.0,\"p95\":18.0,"
      "\"p99\":19.5,\"buckets\":[[1,10],[2,6],[16,2]]},"
      "\"worker_run\":{\"count\":18,\"sum\":1800.0,\"min\":90.0,"
      "\"max\":130.0,\"mean\":100.0,\"p50\":99.0,\"p95\":120.0,"
      "\"p99\":128.0,\"buckets\":[[64,18]]}},"
      "\"worker_slots\":[{\"slot\":0,\"pid\":1001,\"state\":\"running\","
      "\"point\":\"rv32_u0.50\",\"jobs\":9,\"deaths\":0,\"uptime_ms\":2400.0},"
      "{\"slot\":1,\"pid\":1002,\"state\":\"idle\",\"point\":\"\",\"jobs\":9,"
      "\"deaths\":1,\"uptime_ms\":800.0}]}";
  std::string err;
  const auto snap = parse_serve_stats(json, &err);
  ASSERT_TRUE(snap.has_value()) << err;
  EXPECT_EQ(snap->pid, 777);
  EXPECT_EQ(snap->workers, 2);
  EXPECT_EQ(snap->queue_depth, 1);
  EXPECT_EQ(snap->in_flight, 3);
  EXPECT_EQ(snap->cache_entries, 18);
  EXPECT_EQ(snap->counters.at("flow_runs"), 18);
  ASSERT_EQ(snap->phase_order.size(), 2u);
  EXPECT_EQ(snap->phase_order[0], "queue_wait");  // document order kept
  const ServeStatsPhase& qw = snap->phases.at("queue_wait");
  EXPECT_EQ(qw.count, 18);
  EXPECT_DOUBLE_EQ(qw.p95, 18.0);
  ASSERT_EQ(qw.buckets.size(), 3u);
  EXPECT_DOUBLE_EQ(qw.buckets[2].first, 16.0);
  EXPECT_EQ(qw.buckets[2].second, 2);
  ASSERT_EQ(snap->slots.size(), 2u);
  EXPECT_EQ(snap->slots[0].state, "running");
  EXPECT_EQ(snap->slots[0].point, "rv32_u0.50");
  EXPECT_EQ(snap->slots[1].deaths, 1);

  const std::string pretty = format_serve_stats(*snap);
  EXPECT_NE(pretty.find("ffet_serve pid 777"), std::string::npos) << pretty;
  EXPECT_NE(pretty.find("cache_hits=18"), std::string::npos);
  EXPECT_NE(pretty.find("queue_wait"), std::string::npos);
  EXPECT_NE(pretty.find("worker slot 0"), std::string::npos);
  EXPECT_NE(pretty.find("rv32_u0.50"), std::string::npos);
  EXPECT_NE(pretty.find("deaths=1"), std::string::npos);
}

TEST(ServeStats, RejectsMalformedAndForeignSchemas) {
  std::string err;
  EXPECT_FALSE(parse_serve_stats("{not json", &err).has_value());
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(parse_serve_stats("[1,2]", &err).has_value());
  EXPECT_FALSE(
      parse_serve_stats("{\"schema\":\"ffet.flow_report.v1\"}", &err)
          .has_value());
  EXPECT_NE(err.find("ffet.serve_stats.v1"), std::string::npos);
  EXPECT_FALSE(parse_serve_stats("{}", &err).has_value())
      << "schema field is mandatory";
}

// --------------------------------------------------------------- ledger

LedgerEntry make_entry(double freq, double power, double wl, double drv,
                       long long ts, bool valid = true) {
  LedgerEntry e;
  e.kind = "flow";
  e.label = "unit";
  e.host = "testhost";
  e.timestamp_s = ts;
  e.threads = 2;
  e.valid = valid;
  e.metrics = {{"achieved_freq_ghz", freq}, {"power_uw", power},
               {"wirelength_um", wl},       {"drv", drv},
               {"runtime_ms", 50.0},        {"peak_rss_kb", 20000.0}};
  return e;
}

std::vector<LedgerEntry> reparse(const std::vector<LedgerEntry>& in,
                                 ReadStats* stats = nullptr) {
  std::string text;
  for (const LedgerEntry& e : in) text += ledger_entry_json(e) + "\n";
  std::istringstream is(text);
  return read_ledger(is, stats);
}

TEST(Ledger, JsonRoundTripsAndIsByteStable) {
  const LedgerEntry e = make_entry(1.25, 4000.5, 15000.25, 0, 1700000000);
  EXPECT_EQ(ledger_entry_json(e), ledger_entry_json(e));

  ReadStats stats;
  const std::vector<LedgerEntry> back = reparse({e}, &stats);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(stats.parsed, 1);
  EXPECT_EQ(back[0].schema, "ffet.ledger.v1");
  EXPECT_EQ(back[0].kind, "flow");
  EXPECT_EQ(back[0].label, "unit");
  EXPECT_EQ(back[0].host, "testhost");
  EXPECT_EQ(back[0].timestamp_s, 1700000000);
  EXPECT_EQ(back[0].threads, 2);
  EXPECT_TRUE(back[0].valid);
  EXPECT_DOUBLE_EQ(back[0].metrics.at("achieved_freq_ghz"), 1.25);
  EXPECT_DOUBLE_EQ(back[0].metrics.at("power_uw"), 4000.5);
  EXPECT_DOUBLE_EQ(back[0].metrics.at("wirelength_um"), 15000.25);
  // Emit -> parse -> emit is a fixed point (doubles via to_chars/from_chars).
  EXPECT_EQ(ledger_entry_json(back[0]), ledger_entry_json(e));
}

TEST(Ledger, ReaderSkipsMalformedLinesAndCountsThem) {
  const std::string good =
      ledger_entry_json(make_entry(1.0, 1000.0, 500.0, 0, 1));
  std::istringstream is(good + "\n" +
                        "{\"schema\":\"ffet.ledger.v1\",\"torn\n" +  // torn
                        "not json at all\n" +
                        "{\"schema\":\"other.v1\"}\n" +  // wrong schema
                        good + "\r\n");                  // CRLF tolerated
  ReadStats stats;
  const std::vector<LedgerEntry> entries = read_ledger(is, &stats);
  EXPECT_EQ(stats.lines, 5);
  EXPECT_EQ(stats.parsed, 2);
  EXPECT_EQ(stats.malformed, 3);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].label, entries[1].label);
}

TEST(Ledger, ReaderPreservesUnknownFields) {
  std::string line = ledger_entry_json(make_entry(1.0, 1000.0, 500.0, 0, 1));
  // Splice in a top-level numeric, an unknown metric, and a non-numeric.
  line.insert(line.size() - 1, ",\"future_number\":42,\"future_text\":\"x\"");
  const std::size_t m = line.find("\"metrics\":{") + 11;
  line.insert(m, "\"future_metric\":7,");
  std::istringstream is(line + "\n");
  ReadStats stats;
  const std::vector<LedgerEntry> entries = read_ledger(is, &stats);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_DOUBLE_EQ(entries[0].extra.at("future_number"), 42.0);
  EXPECT_DOUBLE_EQ(entries[0].metrics.at("future_metric"), 7.0);
  EXPECT_EQ(stats.unknown_fields, 1) << "only the non-numeric is uncounted";
}

TEST(Ledger, AppendCreatesParentDirectoryAndAppends) {
  const std::string dir = ::testing::TempDir() + "ffet_ledger_test";
  const std::string path = dir + "/ledger.jsonl";
  std::remove(path.c_str());
  std::string err;
  ASSERT_TRUE(append_ledger_line(path, "{\"schema\":\"ffet.ledger.v1\"}", &err))
      << err;
  ASSERT_TRUE(append_ledger_line(
      path, ledger_entry_json(make_entry(1.0, 1.0, 1.0, 0, 1)), &err))
      << err;
  ReadStats stats;
  const std::vector<LedgerEntry> entries = read_ledger_file(path, &stats, &err);
  EXPECT_TRUE(err.empty());
  EXPECT_EQ(stats.lines, 2);
  ASSERT_EQ(entries.size(), 2u);  // bare-schema line still parses
  std::remove(path.c_str());
}

// ---------------------------------------------------------------- trend

TEST(Trend, SingleRunIsANoteNotARegression) {
  const TrendReport rep =
      analyze_trend({make_entry(1.0, 1000.0, 500.0, 0, 1)});
  EXPECT_TRUE(rep.ok()) << "a label's first run must never fail CI";
  ASSERT_EQ(rep.notes.size(), 1u);
  EXPECT_NE(rep.notes[0].find("only 1 run"), std::string::npos);
}

TEST(Trend, IdenticalRunsAreClean) {
  // The CI self-check: N identical runs of a deterministic flow trend flat.
  std::vector<LedgerEntry> runs;
  for (int i = 0; i < 4; ++i) {
    runs.push_back(make_entry(1.25, 4000.0, 15000.0, 0, 100 + i));
  }
  const TrendReport rep = analyze_trend(runs);
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.regressions, 0);
  ASSERT_EQ(rep.series.size(), 1u);
  EXPECT_EQ(rep.series[0].runs, 4);
  const std::string text = format_trend(rep);
  EXPECT_NE(text.find("TREND OK"), std::string::npos);
  EXPECT_EQ(text.find("REGRESSION"), std::string::npos);
}

TEST(Trend, FrequencyDropBeyondThresholdRegresses) {
  std::vector<LedgerEntry> runs = {make_entry(1.00, 4000.0, 15000.0, 0, 1),
                                   make_entry(1.00, 4000.0, 15000.0, 0, 2),
                                   make_entry(0.97, 4000.0, 15000.0, 0, 3)};
  const TrendReport rep = analyze_trend(runs);  // default gate: 1 % drop
  EXPECT_FALSE(rep.ok());
  EXPECT_EQ(rep.regressions, 1);
  EXPECT_NE(format_trend(rep).find("REGRESSION"), std::string::npos);

  // Within threshold: a 0.5 % drop passes.
  runs.back().metrics["achieved_freq_ghz"] = 0.995;
  EXPECT_TRUE(analyze_trend(runs).ok());
}

TEST(Trend, DrvRiseAndValidityLossRegress) {
  std::vector<LedgerEntry> runs = {make_entry(1.0, 4000.0, 15000.0, 0, 1),
                                   make_entry(1.0, 4000.0, 15000.0, 0, 2),
                                   make_entry(1.0, 4000.0, 15000.0, 2, 3)};
  EXPECT_FALSE(analyze_trend(runs).ok()) << "any DRV rise regresses";

  runs[2].metrics["drv"] = 0;
  runs[2].valid = false;
  const TrendReport rep = analyze_trend(runs);
  EXPECT_FALSE(rep.ok()) << "valid -> invalid regresses";
  EXPECT_TRUE(rep.series[0].validity_regression);

  TrendOptions lax;
  lax.gate_validity = false;
  EXPECT_TRUE(analyze_trend(runs, lax).ok());
}

TEST(Trend, MedianWindowIgnoresOlderRuns) {
  // Power history 9000,9000,4000,4000,4100: with window=2 the baseline is
  // the recent 4000s and +2.5 % regresses; a full-history median would
  // hide it behind the old 9000s.
  std::vector<LedgerEntry> runs = {make_entry(1.0, 9000.0, 1.0, 0, 1),
                                   make_entry(1.0, 9000.0, 1.0, 0, 2),
                                   make_entry(1.0, 4000.0, 1.0, 0, 3),
                                   make_entry(1.0, 4000.0, 1.0, 0, 4),
                                   make_entry(1.0, 4100.0, 1.0, 0, 5)};
  TrendOptions o;
  o.window = 2;
  EXPECT_FALSE(analyze_trend(runs, o).ok());
  o.window = 4;
  EXPECT_TRUE(analyze_trend(runs, o).ok())
      << "median of {9000,9000,4000,4000} = 6500; 4100 is below it";
}

TEST(Trend, RssAndRuntimeAreUngatedByDefault) {
  std::vector<LedgerEntry> runs = {make_entry(1.0, 4000.0, 1.0, 0, 1),
                                   make_entry(1.0, 4000.0, 1.0, 0, 2)};
  runs[1].metrics["peak_rss_kb"] = 80000.0;  // 4x the baseline
  runs[1].metrics["runtime_ms"] = 500.0;     // 10x
  EXPECT_TRUE(analyze_trend(runs).ok())
      << "machine-dependent metrics must not gate by default";

  TrendOptions strict;
  strict.rss_rise_pct = 5.0;
  const TrendReport rep = analyze_trend(runs, strict);
  EXPECT_FALSE(rep.ok());
  ASSERT_EQ(rep.series.size(), 1u);
  bool rss_flagged = false;
  for (const TrendMetric& m : rep.series[0].metrics) {
    if (m.metric == "peak_rss_kb") rss_flagged = m.regression;
  }
  EXPECT_TRUE(rss_flagged);
}

TEST(Trend, GroupsByKindAndLabelWithFilters) {
  LedgerEntry bench = make_entry(0.0, 0.0, 0.0, 0, 1);
  bench.kind = "bench";
  bench.label = "bench_x";
  bench.metrics = {{"runtime_ms", 100.0}};
  const std::vector<LedgerEntry> runs = {
      make_entry(1.0, 4000.0, 1.0, 0, 1), bench,
      make_entry(1.0, 4000.0, 1.0, 0, 2)};
  EXPECT_EQ(analyze_trend(runs).series.size(), 2u);
  TrendOptions only_flow;
  only_flow.kind = "flow";
  const TrendReport rep = analyze_trend(runs, only_flow);
  ASSERT_EQ(rep.series.size(), 1u);
  EXPECT_EQ(rep.series[0].kind, "flow");
  TrendOptions none;
  none.label = "no-such-label";
  EXPECT_EQ(analyze_trend(runs, none).series.size(), 0u);
}

TEST(Trend, HistoryListsChronologicallyAndFilters) {
  const std::vector<LedgerEntry> runs = {make_entry(1.0, 4000.0, 1.0, 0, 11),
                                         make_entry(1.0, 4000.0, 1.0, 0, 22)};
  const std::string text = format_history(runs, "unit");
  EXPECT_LT(text.find("[11]"), text.find("[22]"));
  EXPECT_NE(text.find("achieved_freq_ghz=1"), std::string::npos);
  EXPECT_NE(format_history(runs, "absent").find("no ledger entries"),
            std::string::npos);
}

// ----------------------------------------- ledger emission from the flow

TEST(LedgerFlow, EmissionNeverPerturbsFlowResults) {
  // With the resource probe pinned off, the flow report is a pure function
  // of the config — running with the ledger enabled must produce the very
  // same bytes as running without it, plus exactly one ledger line.
#if defined(__unix__) || defined(__APPLE__)
  ::unsetenv("FFET_LEDGER");  // the "plain" run must really be ledger-free
#endif
  obs::set_resource(false);
  flow::FlowConfig cfg;
  cfg.tech_kind = tech::TechKind::Ffet3p5T;
  cfg.rv32_registers = 4;
  cfg.utilization = 0.65;
  cfg.front_layers = 4;
  cfg.back_layers = 4;

  const std::string ledger =
      ::testing::TempDir() + "ffet_test_flow_ledger.jsonl";
  std::remove(ledger.c_str());

  const auto ctx = flow::prepare_design(cfg);
  const flow::FlowResult plain = flow::run_physical(*ctx, cfg);

  flow::FlowConfig with_ledger = cfg;
  with_ledger.ledger_path = ledger;
  const auto ctx2 = flow::prepare_design(with_ledger);
  const flow::FlowResult recorded = flow::run_physical(*ctx2, with_ledger);
  obs::set_resource(true);

  // Wall-clock stage timings are noisy run to run regardless of the
  // ledger; everything else in the report must be byte-identical.
  flow::FlowResult plain_qor = plain;
  flow::FlowResult recorded_qor = recorded;
  plain_qor.stage_times.clear();
  recorded_qor.stage_times.clear();
  recorded_qor.config.ledger_path.clear();
  EXPECT_EQ(flow::flow_report_json(plain_qor),
            flow::flow_report_json(recorded_qor))
      << "ledger writes must not perturb the flow";

  ReadStats stats;
  std::string err;
  const std::vector<LedgerEntry> entries =
      read_ledger_file(ledger, &stats, &err);
  EXPECT_TRUE(err.empty()) << err;
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].kind, "flow");
  EXPECT_EQ(entries[0].label, cfg.label());
  EXPECT_TRUE(entries[0].valid == recorded.valid());
  EXPECT_DOUBLE_EQ(entries[0].metrics.at("achieved_freq_ghz"),
                   recorded.achieved_freq_ghz);
  EXPECT_DOUBLE_EQ(entries[0].metrics.at("power_uw"), recorded.power_uw);
  EXPECT_DOUBLE_EQ(
      entries[0].metrics.at("wirelength_um"),
      recorded.wirelength_front_um + recorded.wirelength_back_um);
  EXPECT_EQ(entries[0].metrics.count("peak_rss_kb"), 0u)
      << "probe off: no resource metrics in the ledger either";
  std::remove(ledger.c_str());
}

TEST(LedgerFlow, ResolveLedgerPathSemantics) {
  // Explicit path wins; FFET_LEDGER=0/empty disables; =1 -> default path.
  EXPECT_EQ(flow::resolve_ledger_path("x/y.jsonl"), "x/y.jsonl");
#if defined(__unix__) || defined(__APPLE__)
  ::setenv("FFET_LEDGER", "0", 1);
  EXPECT_EQ(flow::resolve_ledger_path(), "");
  ::setenv("FFET_LEDGER", "", 1);
  EXPECT_EQ(flow::resolve_ledger_path(), "");
  ::setenv("FFET_LEDGER", "1", 1);
  EXPECT_EQ(flow::resolve_ledger_path(), flow::kDefaultLedgerPath);
  ::setenv("FFET_LEDGER", "custom/path.jsonl", 1);
  EXPECT_EQ(flow::resolve_ledger_path(), "custom/path.jsonl");
  ::unsetenv("FFET_LEDGER");
  EXPECT_EQ(flow::resolve_ledger_path(), "");
#endif
}

// ------------------------------------------- reports over a real flow

class ReportFlowTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    flow::FlowConfig cfg;
    cfg.tech_kind = tech::TechKind::Ffet3p5T;
    cfg.backside_input_fraction = 0.5;
    cfg.rv32_registers = 8;  // reduced core, same as test_flow
    cfg.utilization = 0.65;
    snap_ = build_snapshot(cfg).release();
  }
  static void TearDownTestSuite() {
    delete snap_;
    snap_ = nullptr;
  }
  static Snapshot* snap_;
};

Snapshot* ReportFlowTest::snap_ = nullptr;

TEST_F(ReportFlowTest, WorstPathIsBitIdenticalToStaCriticalPath) {
  sta::Sta sta(&snap_->nl, &snap_->rc, snap_->sta_options);
  const sta::TimingReport timing =
      sta.analyze_timing(&snap_->cts.sink_latency_ps);

  TimingReportOptions opts;
  opts.top_k = 10;
  const std::vector<TimingPath> paths = build_timing_paths(
      sta, snap_->nl, &snap_->rc, &snap_->cts.sink_latency_ps, opts);

  ASSERT_GE(paths.size(), 10u) << "the reduced core has >= 10 endpoints";
  EXPECT_EQ(paths[0].path_names, timing.critical_path)
      << "worst path must render bit-identically to the STA's string";

  const std::vector<sta::PathEnd> ends =
      sta.worst_paths(static_cast<int>(paths.size()),
                      &snap_->cts.sink_latency_ps);
  std::vector<std::string> endpoints;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    EXPECT_EQ(paths[i].endpoint, sta.endpoint_name(ends[i]));
    EXPECT_EQ(paths[i].side_crossings, sta.path_side_crossings(ends[i]));
    EXPECT_FALSE(paths[i].stages.empty());
    // The stage-level crossing markers must sum to the path's count.
    int marked = 0;
    for (const PathStage& s : paths[i].stages) marked += s.crossing ? 1 : 0;
    EXPECT_EQ(marked, paths[i].side_crossings) << "path " << i;
    endpoints.push_back(paths[i].endpoint);
  }
  std::sort(endpoints.begin(), endpoints.end());
  EXPECT_EQ(std::unique(endpoints.begin(), endpoints.end()), endpoints.end())
      << "top-K endpoints are distinct by construction";

  // Slack convention: with no explicit period the worst endpoint sits at
  // exactly zero slack, everything else at >= 0.
  EXPECT_DOUBLE_EQ(paths[0].slack_ps, 0.0);
  for (const TimingPath& p : paths) EXPECT_GE(p.slack_ps, -1e-9);

  const std::string text = format_timing_report(paths, 0.0);
  EXPECT_NE(text.find("side-crossings"), std::string::npos);
  EXPECT_NE(text.find(paths[0].endpoint), std::string::npos);
}

TEST_F(ReportFlowTest, TimingReportIsDeterministic) {
  sta::Sta sta(&snap_->nl, &snap_->rc, snap_->sta_options);
  sta.analyze_timing(&snap_->cts.sink_latency_ps);
  TimingReportOptions opts;
  opts.top_k = 5;
  const auto a = build_timing_paths(sta, snap_->nl, &snap_->rc,
                                    &snap_->cts.sink_latency_ps, opts);
  const auto b = build_timing_paths(sta, snap_->nl, &snap_->rc,
                                    &snap_->cts.sink_latency_ps, opts);
  EXPECT_EQ(format_timing_report(a, 0.0), format_timing_report(b, 0.0));
}

TEST_F(ReportFlowTest, NetAttributionCoversRoutedDesign) {
  const std::string def_before = io::to_def_string(snap_->merged);
  const NetReport rep = build_net_report(snap_->nl, snap_->merged, snap_->rc);
  EXPECT_EQ(io::to_def_string(snap_->merged), def_before)
      << "building a report must not mutate the design";

  ASSERT_EQ(rep.nets.size(),
            static_cast<std::size_t>(snap_->nl.num_nets()));
  EXPECT_GT(rep.total_length_um, 0.0);
  EXPECT_GT(rep.total_elmore_ps, 0.0);
  EXPECT_GT(rep.total_vias, 0);

  // At 50/50 dual-sided pins, both sides carry wire and at least one net
  // is routed on both (its driver's Drain Merge feeds front and back).
  double front = 0.0, back = 0.0;
  bool any_dual = false;
  for (const NetAttribution& n : rep.nets) {
    front += n.length_front_um;
    back += n.length_back_um;
    any_dual = any_dual || n.dual_sided;
    // Per-layer split must reconcile with the side totals.
    double layer_sum = 0.0;
    for (const auto& [layer, um] : n.layer_um) layer_sum += um;
    EXPECT_NEAR(layer_sum, n.length_um(), 1e-6) << n.name;
  }
  EXPECT_GT(front, 0.0);
  EXPECT_GT(back, 0.0);
  EXPECT_TRUE(any_dual);

  EXPECT_GT(rep.length_hist.count, 0u);
  EXPECT_GT(rep.cap_hist.count, 0u);
  EXPECT_GT(rep.elmore_hist.count, 0u);

  const std::string summary = format_net_report(rep, 10);
  EXPECT_NE(summary.find("Net attribution"), std::string::npos);
  EXPECT_NE(summary.find("Top 10 nets by worst sink Elmore"),
            std::string::npos);
  const std::string detail =
      format_net_detail(rep, rep.nets.front().name);
  EXPECT_NE(detail.find(rep.nets.front().name), std::string::npos);
  EXPECT_NE(format_net_detail(rep, "no_such_net").find("not found"),
            std::string::npos);
}

// ------------------------------------------------- qor_only diff mode

TEST(QorDiff, QorOnlyIgnoresTimingsButGatesQorExactly) {
  // Two runs of the same point: identical QoR, different stage timings (a
  // rerun never reproduces wall clocks).  The default diff surfaces the
  // timing deltas; qor_only must report a clean pass — this is the mode
  // the serve smoke uses to compare a daemon run against an in-process
  // run.
  flow::FlowResult a = make_result(1.2, 4000.0, 0, 0);
  flow::FlowResult b = make_result(1.2, 4000.0, 0, 0);
  b.stage_times = {{"floorplan", 2.5, 2.0}, {"route", 55.0, 50.0}};
  const std::vector<FlowRecord> base = {record_of(a)};
  const std::vector<FlowRecord> now = {record_of(b)};

  EXPECT_FALSE(diff_flow_reports(base, now).deltas.empty());
  DiffOptions qor;
  qor.qor_only = true;
  const DiffReport rep = diff_flow_reports(base, now, qor);
  EXPECT_TRUE(rep.deltas.empty()) << format_diff(rep);
  EXPECT_TRUE(rep.ok());

  // A QoR drift far below the percent thresholds passes the default diff
  // but fails qor_only: identity mode gates on exact equality.
  flow::FlowResult c = make_result(1.2, 4002.0, 0, 0);  // +0.05 % power
  const std::vector<FlowRecord> drifted = {record_of(c)};
  EXPECT_TRUE(diff_flow_reports(base, drifted).ok());
  EXPECT_FALSE(diff_flow_reports(base, drifted, qor).ok());
}

// ------------------------------------------- multi-process ledger appends

TEST(Ledger, ForkedWritersInterleaveWithoutTearing) {
  // The serve daemon's forked workers all append to one ledger file; each
  // append must be one atomic O_APPEND write or concurrent lines shear
  // into fragments.  Fork real processes (threads share the file table
  // and would not exercise cross-process interleaving) and hammer one
  // path.
  const std::string dir = ::testing::TempDir() + "ffet_ledger_fork_test";
  const std::string path = dir + "/ledger.jsonl";
  std::remove(path.c_str());

  constexpr int kWriters = 6;
  constexpr int kLinesPerWriter = 40;
  std::vector<pid_t> pids;
  for (int w = 0; w < kWriters; ++w) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      for (int i = 0; i < kLinesPerWriter; ++i) {
        LedgerEntry e = make_entry(1.0 + w, 1000.0 + i, 500.0, 0, 1);
        e.label = "writer-" + std::to_string(w);
        // Pad the line through real metrics so a torn write could not
        // accidentally still parse.
        for (int m = 0; m < 8; ++m) {
          e.metrics["padding_metric_" + std::to_string(m)] = m * 1.25;
        }
        if (!append_ledger_line(path, ledger_entry_json(e))) _exit(2);
      }
      _exit(0);
    }
    pids.push_back(pid);
  }
  for (const pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0);
  }

  ReadStats stats;
  std::string err;
  const std::vector<LedgerEntry> entries = read_ledger_file(path, &stats, &err);
  EXPECT_TRUE(err.empty());
  EXPECT_EQ(stats.malformed, 0) << "a torn line means appends interleaved";
  ASSERT_EQ(entries.size(),
            static_cast<std::size_t>(kWriters * kLinesPerWriter));
  std::map<std::string, int> per_writer;
  for (const LedgerEntry& e : entries) ++per_writer[e.label];
  for (int w = 0; w < kWriters; ++w) {
    EXPECT_EQ(per_writer["writer-" + std::to_string(w)], kLinesPerWriter);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ffet::report
