// Signoff reporting subsystem tests: the JSON value parser, the
// flow-report JSONL reader (round-trip against src/flow's emitter,
// malformed-line and unknown-field tolerance), the QoR diff engine's
// pairing/threshold semantics, and — over a real reduced flow — the
// multi-path timing report's bit-identity with the STA's critical path
// plus the per-net attribution invariants.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "flow/flow.h"
#include "flow/report_json.h"
#include "io/def.h"
#include "report/json.h"
#include "report/net_report.h"
#include "report/qor.h"
#include "report/snapshot.h"
#include "report/timing_report.h"
#include "sta/sta.h"

namespace ffet::report {
namespace {

// ---------------------------------------------------------------- parser

TEST(JsonParser, ScalarsNestingAndOrder) {
  std::string err;
  const std::optional<json::Value> doc = json::parse(
      R"({"a":1.5,"b":-2,"c":true,"d":"x\ny","e":[1,2,3],"f":{"g":3}})", &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const json::Value& v = *doc;
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.members.size(), 6u);
  EXPECT_EQ(v.members[0].first, "a");  // emission order preserved
  EXPECT_EQ(v.members[5].first, "f");
  EXPECT_DOUBLE_EQ(v.member_number("a"), 1.5);
  EXPECT_DOUBLE_EQ(v.member_number("b"), -2.0);
  EXPECT_TRUE(v.find("c")->bool_or(false));
  EXPECT_EQ(v.find("d")->str, "x\ny");
  ASSERT_EQ(v.find("e")->items.size(), 3u);
  EXPECT_DOUBLE_EQ(v.find("e")->items[2].number, 3.0);
  EXPECT_DOUBLE_EQ(v.find("f")->member_number("g"), 3.0);
}

TEST(JsonParser, UnicodeEscape) {
  std::string err;
  const std::optional<json::Value> doc =
      json::parse(R"({"k":"A\u00e9"})", &err);
  ASSERT_TRUE(doc.has_value()) << err;
  EXPECT_EQ(doc->find("k")->str, "A\xc3\xa9");  // UTF-8 re-encoding
}

TEST(JsonParser, RejectsMalformed) {
  std::string err;
  EXPECT_FALSE(json::parse(R"({"a":)", &err).has_value());
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(json::parse(R"({"a":1} trailing)", &err).has_value())
      << "trailing bytes must be rejected";
  EXPECT_FALSE(json::parse("", &err).has_value());
}

// ------------------------------------------------------ flow-report reader

/// A FlowResult with distinctive values in every section the reader maps.
flow::FlowResult make_result(double freq_ghz, double power_uw, int drv,
                             int eco_passes) {
  flow::FlowResult r;
  r.config.rv32_registers = 8;
  r.config.utilization = 0.65;
  r.config.eco_passes = eco_passes;
  r.placement_legal = true;
  r.route_valid = true;
  r.achieved_freq_ghz = freq_ghz;
  r.critical_path_ps = 1000.0 / freq_ghz;
  r.power_uw = power_uw;
  r.efficiency_ghz_per_mw = freq_ghz / (power_uw / 1000.0);
  r.drv = drv;
  r.drv_wire = drv;
  r.wirelength_front_um = 123.25;
  r.wirelength_back_um = 67.5;
  r.utilization = 0.645;
  r.core_area_um2 = 480.0;
  r.clock_skew_ps = 3.75;
  r.ir_drop_mv = 21.5;
  r.route_passes = 2;
  r.place_mean_displacement_um = 0.4;
  if (eco_passes > 0) {
    r.eco_passes_run = eco_passes;
    r.eco_attempted = 12;
    r.eco_accepted = 5;
    r.eco_reverted = 7;
    r.eco_buffers = 3;
    r.eco_pre_freq_ghz = freq_ghz * 0.97;
    r.eco_post_freq_ghz = freq_ghz;
    r.eco_pre_power_uw = power_uw * 0.98;
    r.eco_post_power_uw = power_uw;
    r.eco_iso_power_uw = power_uw * 0.99;
    r.eco_sta_speedup = 2.5;
  }
  r.stage_times = {{"floorplan", 1.5, 1.25}, {"route", 40.0, 38.5}};
  return r;
}

FlowRecord record_of(const flow::FlowResult& r) {
  std::istringstream is(flow::flow_report_json(r) + "\n");
  ReadStats stats;
  const std::vector<FlowRecord> recs = read_flow_reports(is, &stats);
  EXPECT_EQ(stats.parsed, 1);
  EXPECT_EQ(stats.malformed, 0);
  return recs.empty() ? FlowRecord{} : recs.front();
}

TEST(FlowReportReader, RoundTripsEveryMappedSection) {
  const flow::FlowResult r = make_result(1.25, 4000.0, 0, 2);
  const FlowRecord rec = record_of(r);

  EXPECT_EQ(rec.schema, "ffet.flow_report.v1");
  EXPECT_EQ(rec.label, r.config.label());
  EXPECT_TRUE(rec.valid);
  EXPECT_TRUE(rec.invalid_reason.empty());

  EXPECT_DOUBLE_EQ(rec.config.at("target_utilization"), 0.65);
  EXPECT_DOUBLE_EQ(rec.diagnostics.at("drv"), 0.0);
  EXPECT_DOUBLE_EQ(rec.diagnostics.at("clock_skew_ps"), 3.75);
  EXPECT_DOUBLE_EQ(rec.ppa.at("achieved_freq_ghz"), 1.25);
  EXPECT_DOUBLE_EQ(rec.ppa.at("power_uw"), 4000.0);
  EXPECT_DOUBLE_EQ(rec.ppa.at("wirelength_front_um"), 123.25);
  EXPECT_DOUBLE_EQ(rec.ppa.at("wirelength_back_um"), 67.5);

  ASSERT_TRUE(rec.has_eco);
  EXPECT_DOUBLE_EQ(rec.eco.at("passes_run"), 2.0);
  EXPECT_DOUBLE_EQ(rec.eco.at("sta_speedup"), 2.5);
  EXPECT_DOUBLE_EQ(rec.eco.at("post_freq_ghz"), 1.25);

  ASSERT_EQ(rec.stages.size(), 2u);
  EXPECT_EQ(rec.stages[0].stage, "floorplan");
  EXPECT_DOUBLE_EQ(rec.stages[1].wall_ms, 40.0);
  EXPECT_DOUBLE_EQ(rec.total_wall_ms(), 41.5);
  EXPECT_DOUBLE_EQ(rec.total_cpu_ms(), 39.75);
}

TEST(FlowReportReader, EcoSectionAbsentWhenEcoOff) {
  const FlowRecord rec = record_of(make_result(1.25, 4000.0, 0, 0));
  EXPECT_FALSE(rec.has_eco);
  EXPECT_TRUE(rec.eco.empty());
}

TEST(FlowReportReader, SkipsMalformedLinesAndKeepsTheRest) {
  const std::string good = flow::flow_report_json(make_result(1.0, 1000.0, 0, 0));
  std::istringstream is(good + "\nnot json at all\n" +
                        good.substr(0, good.size() / 2) + "\n\n" + good + "\n");
  ReadStats stats;
  const std::vector<FlowRecord> recs = read_flow_reports(is, &stats);
  EXPECT_EQ(recs.size(), 2u);
  EXPECT_EQ(stats.parsed, 2);
  EXPECT_EQ(stats.malformed, 2);
  EXPECT_EQ(stats.lines, 4);  // the blank line is not counted
}

TEST(FlowReportReader, ToleratesUnknownFields) {
  std::string line = flow::flow_report_json(make_result(1.0, 1000.0, 0, 0));
  // A future schema adds a numeric and a string field at top level.
  line.insert(line.size() - 1, R"(,"future_num":123,"future_str":"abc")");
  std::istringstream is(line + "\n");
  ReadStats stats;
  const std::vector<FlowRecord> recs = read_flow_reports(is, &stats);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_DOUBLE_EQ(recs[0].extra.at("future_num"), 123.0);
  EXPECT_EQ(stats.unknown_fields, 1);  // the string, counted but not fatal
  EXPECT_DOUBLE_EQ(recs[0].ppa.at("achieved_freq_ghz"), 1.0);
}

// ------------------------------------------------------------ diff engine

TEST(QorDiff, SelfDiffIsEmptyAndPasses) {
  const std::vector<FlowRecord> recs = {record_of(make_result(1.2, 4000.0, 0, 0)),
                                        record_of(make_result(0.9, 5000.0, 2, 2))};
  const DiffReport rep = diff_flow_reports(recs, recs);
  EXPECT_EQ(rep.pairs, 2);
  EXPECT_TRUE(rep.deltas.empty());
  EXPECT_EQ(rep.regressions, 0);
  EXPECT_TRUE(rep.ok());
}

TEST(QorDiff, EcoRunSurfacesFrequencyDeltaWithoutRegression) {
  const std::vector<FlowRecord> base = {record_of(make_result(1.00, 4000.0, 0, 0))};
  const std::vector<FlowRecord> now = {record_of(make_result(1.05, 4010.0, 0, 2))};
  const DiffReport rep = diff_flow_reports(base, now);
  const Delta* freq = nullptr;
  for (const Delta& d : rep.deltas) {
    if (d.metric == "ppa.achieved_freq_ghz") freq = &d;
  }
  ASSERT_NE(freq, nullptr) << "eco=2 vs eco=0 must flag the frequency delta";
  EXPECT_DOUBLE_EQ(freq->base, 1.00);
  EXPECT_DOUBLE_EQ(freq->now, 1.05);
  EXPECT_FALSE(freq->regression) << "a frequency gain is not a regression";
  EXPECT_TRUE(rep.ok());
}

TEST(QorDiff, FrequencyDropBeyondThresholdFails) {
  const std::vector<FlowRecord> base = {record_of(make_result(1.05, 4000.0, 0, 0))};
  const std::vector<FlowRecord> now = {record_of(make_result(1.00, 4000.0, 0, 0))};
  const DiffReport rep = diff_flow_reports(base, now);  // default: -1 % gate
  EXPECT_FALSE(rep.ok());
  // Loosening the threshold past the drop turns the same delta into a pass.
  DiffOptions loose;
  loose.freq_drop_pct = 10.0;
  EXPECT_TRUE(diff_flow_reports(base, now, loose).ok());
}

TEST(QorDiff, DrvIncreaseIsARegression) {
  const std::vector<FlowRecord> base = {record_of(make_result(1.0, 4000.0, 0, 0))};
  const std::vector<FlowRecord> now = {record_of(make_result(1.0, 4000.0, 3, 0))};
  const DiffReport rep = diff_flow_reports(base, now);
  EXPECT_FALSE(rep.ok());
  DiffOptions no_drv;
  no_drv.gate_drv = false;
  EXPECT_TRUE(diff_flow_reports(base, now, no_drv).ok());
}

TEST(QorDiff, ValidToInvalidIsARegression) {
  flow::FlowResult bad = make_result(1.0, 4000.0, 0, 0);
  bad.route_valid = false;
  bad.invalid_reason = "routing failed";
  const std::vector<FlowRecord> base = {record_of(make_result(1.0, 4000.0, 0, 0))};
  const std::vector<FlowRecord> now = {record_of(bad)};
  EXPECT_FALSE(diff_flow_reports(base, now).ok());
}

TEST(QorDiff, EcoPostBelowPreIsARegression) {
  flow::FlowResult broken = make_result(1.0, 4000.0, 0, 2);
  broken.eco_pre_freq_ghz = 1.10;  // revert path failed: ended slower
  broken.eco_post_freq_ghz = 1.00;
  const std::vector<FlowRecord> base = {record_of(make_result(1.0, 4000.0, 0, 0))};
  const DiffReport rep =
      diff_flow_reports(base, {record_of(broken)});
  EXPECT_FALSE(rep.ok());
  bool found = false;
  for (const Delta& d : rep.deltas) {
    if (d.metric == "eco.post_vs_pre_freq_ghz") found = d.regression;
  }
  EXPECT_TRUE(found);
}

TEST(QorDiff, FormatNamesRegressionsAndVerdict) {
  const std::vector<FlowRecord> base = {record_of(make_result(1.0, 4000.0, 0, 0))};
  const std::vector<FlowRecord> now = {record_of(make_result(1.0, 4200.0, 0, 0))};
  const DiffReport rep = diff_flow_reports(base, now);  // +5 % power, gate 2 %
  const std::string text = format_diff(rep);
  EXPECT_NE(text.find("ppa.power_uw"), std::string::npos);
  EXPECT_NE(text.find("REGRESSION"), std::string::npos);
  EXPECT_NE(text.find("FAIL"), std::string::npos);
  const std::string ok_text = format_diff(diff_flow_reports(base, base));
  EXPECT_NE(ok_text.find("no differences"), std::string::npos);
  EXPECT_NE(ok_text.find("OK"), std::string::npos);
}

// ------------------------------------------- reports over a real flow

class ReportFlowTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    flow::FlowConfig cfg;
    cfg.tech_kind = tech::TechKind::Ffet3p5T;
    cfg.backside_input_fraction = 0.5;
    cfg.rv32_registers = 8;  // reduced core, same as test_flow
    cfg.utilization = 0.65;
    snap_ = build_snapshot(cfg).release();
  }
  static void TearDownTestSuite() {
    delete snap_;
    snap_ = nullptr;
  }
  static Snapshot* snap_;
};

Snapshot* ReportFlowTest::snap_ = nullptr;

TEST_F(ReportFlowTest, WorstPathIsBitIdenticalToStaCriticalPath) {
  sta::Sta sta(&snap_->nl, &snap_->rc, snap_->sta_options);
  const sta::TimingReport timing =
      sta.analyze_timing(&snap_->cts.sink_latency_ps);

  TimingReportOptions opts;
  opts.top_k = 10;
  const std::vector<TimingPath> paths = build_timing_paths(
      sta, snap_->nl, &snap_->rc, &snap_->cts.sink_latency_ps, opts);

  ASSERT_GE(paths.size(), 10u) << "the reduced core has >= 10 endpoints";
  EXPECT_EQ(paths[0].path_names, timing.critical_path)
      << "worst path must render bit-identically to the STA's string";

  const std::vector<sta::PathEnd> ends =
      sta.worst_paths(static_cast<int>(paths.size()),
                      &snap_->cts.sink_latency_ps);
  std::vector<std::string> endpoints;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    EXPECT_EQ(paths[i].endpoint, sta.endpoint_name(ends[i]));
    EXPECT_EQ(paths[i].side_crossings, sta.path_side_crossings(ends[i]));
    EXPECT_FALSE(paths[i].stages.empty());
    // The stage-level crossing markers must sum to the path's count.
    int marked = 0;
    for (const PathStage& s : paths[i].stages) marked += s.crossing ? 1 : 0;
    EXPECT_EQ(marked, paths[i].side_crossings) << "path " << i;
    endpoints.push_back(paths[i].endpoint);
  }
  std::sort(endpoints.begin(), endpoints.end());
  EXPECT_EQ(std::unique(endpoints.begin(), endpoints.end()), endpoints.end())
      << "top-K endpoints are distinct by construction";

  // Slack convention: with no explicit period the worst endpoint sits at
  // exactly zero slack, everything else at >= 0.
  EXPECT_DOUBLE_EQ(paths[0].slack_ps, 0.0);
  for (const TimingPath& p : paths) EXPECT_GE(p.slack_ps, -1e-9);

  const std::string text = format_timing_report(paths, 0.0);
  EXPECT_NE(text.find("side-crossings"), std::string::npos);
  EXPECT_NE(text.find(paths[0].endpoint), std::string::npos);
}

TEST_F(ReportFlowTest, TimingReportIsDeterministic) {
  sta::Sta sta(&snap_->nl, &snap_->rc, snap_->sta_options);
  sta.analyze_timing(&snap_->cts.sink_latency_ps);
  TimingReportOptions opts;
  opts.top_k = 5;
  const auto a = build_timing_paths(sta, snap_->nl, &snap_->rc,
                                    &snap_->cts.sink_latency_ps, opts);
  const auto b = build_timing_paths(sta, snap_->nl, &snap_->rc,
                                    &snap_->cts.sink_latency_ps, opts);
  EXPECT_EQ(format_timing_report(a, 0.0), format_timing_report(b, 0.0));
}

TEST_F(ReportFlowTest, NetAttributionCoversRoutedDesign) {
  const std::string def_before = io::to_def_string(snap_->merged);
  const NetReport rep = build_net_report(snap_->nl, snap_->merged, snap_->rc);
  EXPECT_EQ(io::to_def_string(snap_->merged), def_before)
      << "building a report must not mutate the design";

  ASSERT_EQ(rep.nets.size(),
            static_cast<std::size_t>(snap_->nl.num_nets()));
  EXPECT_GT(rep.total_length_um, 0.0);
  EXPECT_GT(rep.total_elmore_ps, 0.0);
  EXPECT_GT(rep.total_vias, 0);

  // At 50/50 dual-sided pins, both sides carry wire and at least one net
  // is routed on both (its driver's Drain Merge feeds front and back).
  double front = 0.0, back = 0.0;
  bool any_dual = false;
  for (const NetAttribution& n : rep.nets) {
    front += n.length_front_um;
    back += n.length_back_um;
    any_dual = any_dual || n.dual_sided;
    // Per-layer split must reconcile with the side totals.
    double layer_sum = 0.0;
    for (const auto& [layer, um] : n.layer_um) layer_sum += um;
    EXPECT_NEAR(layer_sum, n.length_um(), 1e-6) << n.name;
  }
  EXPECT_GT(front, 0.0);
  EXPECT_GT(back, 0.0);
  EXPECT_TRUE(any_dual);

  EXPECT_GT(rep.length_hist.count, 0u);
  EXPECT_GT(rep.cap_hist.count, 0u);
  EXPECT_GT(rep.elmore_hist.count, 0u);

  const std::string summary = format_net_report(rep, 10);
  EXPECT_NE(summary.find("Net attribution"), std::string::npos);
  EXPECT_NE(summary.find("Top 10 nets by worst sink Elmore"),
            std::string::npos);
  const std::string detail =
      format_net_detail(rep, rep.nets.front().name);
  EXPECT_NE(detail.find(rep.nets.front().name), std::string::npos);
  EXPECT_NE(format_net_detail(rep, "no_such_net").find("not found"),
            std::string::npos);
}

}  // namespace
}  // namespace ffet::report
