// Unit tests for the technology / virtual-PDK model (Table II rule decks).

#include <gtest/gtest.h>

#include "tech/tech.h"

namespace ffet::tech {
namespace {

TEST(TechFactory, BasicParameters) {
  const Technology cfet = make_cfet_4t();
  const Technology ffet = make_ffet_3p5t();

  EXPECT_EQ(cfet.kind(), TechKind::Cfet4T);
  EXPECT_EQ(ffet.kind(), TechKind::Ffet3p5T);
  EXPECT_EQ(cfet.cpp(), 50);
  EXPECT_EQ(ffet.cpp(), 50);
  EXPECT_EQ(cfet.track_pitch(), 30);
  EXPECT_EQ(cfet.cell_height(), 120);   // 4T
  EXPECT_EQ(ffet.cell_height(), 105);   // 3.5T
  EXPECT_DOUBLE_EQ(cfet.cell_height_tracks(), 4.0);
  EXPECT_DOUBLE_EQ(ffet.cell_height_tracks(), 3.5);
}

TEST(TechFactory, CellHeightRatioIsTwelvePointFivePercent) {
  const Technology cfet = make_cfet_4t();
  const Technology ffet = make_ffet_3p5t();
  const double ratio = static_cast<double>(ffet.cell_height()) /
                       static_cast<double>(cfet.cell_height());
  EXPECT_NEAR(1.0 - ratio, 0.125, 1e-12);
}

// Table II pitches, exact.
TEST(TableII, FrontsidePitchesIdenticalAcrossTechs) {
  const Technology cfet = make_cfet_4t();
  const Technology ffet = make_ffet_3p5t();
  const struct { const char* name; geom::Nm pitch; } expected[] = {
      {"FM0", 28}, {"FM1", 34}, {"FM2", 30}, {"FM3", 42}, {"FM4", 42},
      {"FM5", 76}, {"FM6", 76}, {"FM7", 76}, {"FM8", 76}, {"FM9", 76},
      {"FM10", 76}, {"FM11", 126}, {"FM12", 720},
  };
  for (const auto& e : expected) {
    ASSERT_NE(cfet.find_layer(e.name), nullptr) << e.name;
    ASSERT_NE(ffet.find_layer(e.name), nullptr) << e.name;
    EXPECT_EQ(cfet.find_layer(e.name)->pitch, e.pitch) << e.name;
    EXPECT_EQ(ffet.find_layer(e.name)->pitch, e.pitch) << e.name;
  }
}

TEST(TableII, CfetBacksideIsPdnOnly) {
  const Technology cfet = make_cfet_4t();
  const MetalLayer* bpr = cfet.find_layer("BPR");
  ASSERT_NE(bpr, nullptr);
  EXPECT_EQ(bpr->pitch, 120);
  EXPECT_EQ(bpr->purpose, LayerPurpose::PowerOnly);

  const MetalLayer* bm1 = cfet.find_layer("BM1");
  const MetalLayer* bm2 = cfet.find_layer("BM2");
  ASSERT_NE(bm1, nullptr);
  ASSERT_NE(bm2, nullptr);
  EXPECT_EQ(bm1->pitch, 3200);
  EXPECT_EQ(bm2->pitch, 2400);
  EXPECT_EQ(bm1->purpose, LayerPurpose::PowerOnly);
  EXPECT_EQ(bm2->purpose, LayerPurpose::PowerOnly);
  EXPECT_EQ(cfet.find_layer("BM3"), nullptr);
  EXPECT_EQ(cfet.num_routing_layers(Side::Back), 0);
  EXPECT_FALSE(cfet.supports_backside_pins());
}

TEST(TableII, FfetBacksideMirrorsFrontside) {
  const Technology ffet = make_ffet_3p5t();
  EXPECT_TRUE(ffet.supports_backside_pins());
  for (int i = 0; i <= 12; ++i) {
    const std::string f = "FM" + std::to_string(i);
    const std::string b = "BM" + std::to_string(i);
    const MetalLayer* fl = ffet.find_layer(f);
    const MetalLayer* bl = ffet.find_layer(b);
    ASSERT_NE(fl, nullptr) << f;
    ASSERT_NE(bl, nullptr) << b;
    EXPECT_EQ(fl->pitch, bl->pitch) << f;
    EXPECT_EQ(fl->purpose, bl->purpose) << f;
  }
  EXPECT_EQ(ffet.num_routing_layers(Side::Front), 12);
  EXPECT_EQ(ffet.num_routing_layers(Side::Back), 12);
}

TEST(Layers, M0IsCellLevelNotRouting) {
  const Technology ffet = make_ffet_3p5t();
  EXPECT_EQ(ffet.find_layer("FM0")->purpose, LayerPurpose::CellLevel);
  EXPECT_EQ(ffet.find_layer("BM0")->purpose, LayerPurpose::CellLevel);
  for (const MetalLayer* l : ffet.routing_layers(Side::Front)) {
    EXPECT_GE(l->index, 1);
  }
}

TEST(RoutingLimit, RestrictsStack) {
  const Technology full = make_ffet_3p5t();
  const Technology limited = full.with_routing_limit(6, 4);
  EXPECT_EQ(limited.num_routing_layers(Side::Front), 6);
  EXPECT_EQ(limited.num_routing_layers(Side::Back), 4);
  EXPECT_EQ(limited.max_routing_index(Side::Front), 6);
  EXPECT_EQ(limited.max_routing_index(Side::Back), 4);
  EXPECT_EQ(limited.routing_pattern(), "FM6BM4");
  // Cell-level M0 survives the limit.
  EXPECT_NE(limited.find_layer("FM0"), nullptr);
  EXPECT_NE(limited.find_layer("BM0"), nullptr);
  EXPECT_EQ(limited.find_layer("FM7"), nullptr);
  EXPECT_EQ(limited.find_layer("BM5"), nullptr);
}

TEST(RoutingLimit, CfetPatternHasNoBacksideSignals) {
  const Technology cfet = make_cfet_4t().with_routing_limit(12, 12);
  EXPECT_EQ(cfet.routing_pattern(), "FM12");
  EXPECT_EQ(cfet.num_routing_layers(Side::Back), 0);
}

TEST(Electricals, NarrowerPitchIsMoreResistive) {
  const WireElectricals m2 = derive_electricals(30);
  const WireElectricals m5 = derive_electricals(76);
  const WireElectricals m12 = derive_electricals(720);
  EXPECT_GT(m2.r_ohm_per_um, m5.r_ohm_per_um);
  EXPECT_GT(m5.r_ohm_per_um, m12.r_ohm_per_um);
  // Sanity of magnitudes at a 5 nm-class node.
  EXPECT_GT(m2.r_ohm_per_um, 50.0);
  EXPECT_LT(m2.r_ohm_per_um, 500.0);
  EXPECT_LT(m12.r_ohm_per_um, 1.0);
  // Capacitance per length nearly scale-invariant.
  EXPECT_NEAR(m2.c_ff_per_um, m12.c_ff_per_um, 0.1);
  EXPECT_GT(m2.c_ff_per_um, m12.c_ff_per_um);
}

TEST(Electricals, ViasMoreResistiveAtTightPitch) {
  EXPECT_GT(derive_electricals(28).via_down_r_ohm,
            derive_electricals(720).via_down_r_ohm);
}

TEST(Device, SharedIntrinsicTransistor) {
  const DeviceParams c = make_cfet_4t().device();
  const DeviceParams f = make_ffet_3p5t().device();
  // Same intrinsic transistor characteristics (Sec. IV).
  EXPECT_DOUBLE_EQ(c.nfet_r_per_fin_ohm, f.nfet_r_per_fin_ohm);
  EXPECT_DOUBLE_EQ(c.pfet_r_per_fin_ohm, f.pfet_r_per_fin_ohm);
  EXPECT_DOUBLE_EQ(c.gate_c_per_fin_ff, f.gate_c_per_fin_ff);
  EXPECT_DOUBLE_EQ(c.leakage_nw_per_fin, f.leakage_nw_per_fin);
  // Structure parasitics differ: the CFET supervia chain dominates the FFET
  // Drain Merge (Sec. II.B).
  EXPECT_GT(c.np_link_r_ohm, f.np_link_r_ohm);
  EXPECT_GT(c.np_link_c_ff, f.np_link_c_ff);
  EXPECT_GT(c.internal_track_c_ff_per_cpp, f.internal_track_c_ff_per_cpp);
}

TEST(PowerRules, TapCellsVsTsv) {
  const PowerPlanRules c = make_cfet_4t().power_rules();
  const PowerPlanRules f = make_ffet_3p5t().power_rules();
  EXPECT_EQ(c.stripe_pitch_cpp, 64);  // Sec. IV: 64 CPP power stripe pitch
  EXPECT_EQ(f.stripe_pitch_cpp, 64);
  EXPECT_EQ(c.tap_cell_width_cpp, 0);   // CFET: BPR + nTSV, no tap cells
  EXPECT_GT(f.tap_cell_width_cpp, 0);   // FFET: Power Tap Cells
  EXPECT_GT(c.tsv_blockage_fraction, 0.0);
  EXPECT_DOUBLE_EQ(f.tsv_blockage_fraction, 0.0);
}

TEST(Side, Opposite) {
  EXPECT_EQ(opposite(Side::Front), Side::Back);
  EXPECT_EQ(opposite(Side::Back), Side::Front);
  EXPECT_EQ(to_string(Side::Front), "front");
  EXPECT_EQ(to_string(TechKind::Ffet3p5T), "3.5T FFET");
}

}  // namespace
}  // namespace ffet::tech
