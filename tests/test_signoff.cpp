// Tests for the signoff-lite modules: placement DRC checking, the BEOL
// cost model, and corner-derated STA.

#include <gtest/gtest.h>

#include "liberty/characterize.h"
#include "netlist/builder.h"
#include "pnr/drc.h"
#include "pnr/floorplan.h"
#include "pnr/placement.h"
#include "pnr/powerplan.h"
#include "riscv/rv32.h"
#include "sta/sta.h"
#include "tech/cost.h"

namespace ffet {
namespace {

// --- DRC ---------------------------------------------------------------------

class DrcTest : public ::testing::Test {
 protected:
  DrcTest()
      : tech_(tech::make_ffet_3p5t()), lib_(stdcell::build_library(tech_)) {
    liberty::characterize_library(lib_);
  }
  tech::Technology tech_;
  stdcell::Library lib_;
};

TEST_F(DrcTest, LegalPlacementIsClean) {
  riscv::Rv32Options opt;
  opt.num_registers = 8;
  netlist::Netlist nl = riscv::build_rv32_core(lib_, opt);
  pnr::FloorplanOptions fo;
  fo.target_utilization = 0.65;
  const pnr::Floorplan fp = pnr::make_floorplan(nl, tech_, fo);
  const pnr::PowerPlan pp = pnr::build_power_plan(nl, fp, lib_);
  ASSERT_TRUE(pnr::place(nl, fp, pp).legal);
  const pnr::DrcReport rep = pnr::check_placement(nl, fp, pp);
  EXPECT_TRUE(rep.clean()) << rep.summary();
}

TEST_F(DrcTest, DetectsInjectedViolations) {
  netlist::Builder b("drc", &lib_);
  const netlist::NetId a = b.input("a");
  b.output("z", b.inv(b.inv(a)));
  netlist::Netlist nl = b.take();
  pnr::FloorplanOptions fo;
  fo.target_utilization = 0.3;
  const pnr::Floorplan fp = pnr::make_floorplan(nl, tech_, fo);
  const pnr::PowerPlan pp = pnr::build_power_plan(nl, fp, lib_);
  ASSERT_TRUE(pnr::place(nl, fp, pp).legal);

  // Inject: off-grid x, off-row y, overlap, outside core.
  netlist::Netlist bad = nl;
  bad.instance(0).pos.x += 7;  // off site grid
  pnr::DrcReport rep = pnr::check_placement(bad, fp, pp);
  EXPECT_GT(rep.count(pnr::DrcViolation::Kind::OffSiteGrid), 0);

  bad = nl;
  bad.instance(0).pos.y += 13;
  rep = pnr::check_placement(bad, fp, pp);
  EXPECT_GT(rep.count(pnr::DrcViolation::Kind::OffRowGrid), 0);

  bad = nl;
  bad.instance(0).pos = bad.instance(1).pos;  // exact overlap
  rep = pnr::check_placement(bad, fp, pp);
  EXPECT_GT(rep.count(pnr::DrcViolation::Kind::CellOverlap), 0);

  bad = nl;
  bad.instance(0).pos = {fp.core.hi.x + 100, 0};
  rep = pnr::check_placement(bad, fp, pp);
  EXPECT_GT(rep.count(pnr::DrcViolation::Kind::OutsideCore), 0);
  EXPECT_FALSE(rep.clean());
  EXPECT_NE(rep.summary().find("violation"), std::string::npos);
}

TEST_F(DrcTest, DetectsCellOnTapBlockage) {
  // Needs a core wide enough to contain a backside VSS stripe (128 CPP);
  // a small RV32 core suffices.
  riscv::Rv32Options opt;
  opt.num_registers = 4;
  netlist::Netlist nl = riscv::build_rv32_core(lib_, opt);
  pnr::FloorplanOptions fo;
  fo.target_utilization = 0.5;
  const pnr::Floorplan fp = pnr::make_floorplan(nl, tech_, fo);
  const pnr::PowerPlan pp = pnr::build_power_plan(nl, fp, lib_);
  ASSERT_FALSE(pp.blockages.empty());
  // Drop the movable cell exactly onto a tap blockage.
  nl.instance(0).pos = pp.blockages.front().lo;
  const pnr::DrcReport rep = pnr::check_placement(nl, fp, pp);
  EXPECT_GT(rep.count(pnr::DrcViolation::Kind::BlockageOverlap) +
                rep.count(pnr::DrcViolation::Kind::CellOverlap),
            0);
}

// --- cost model -----------------------------------------------------------------

TEST(CostModel, FfetCostsMoreThanCfetAtFullStack) {
  // Full dual-sided FFET carries 24 patterned layers vs CFET's 12 + PDN.
  const auto ffet = tech::relative_process_cost(tech::make_ffet_3p5t());
  const auto cfet = tech::relative_process_cost(tech::make_cfet_4t());
  EXPECT_GT(ffet.total, cfet.total);
  EXPECT_GT(ffet.backside_layers, cfet.backside_layers);
  EXPECT_GT(cfet.modules, 0.0);  // nTSV + BPR + backside PDN module
}

TEST(CostModel, LayerReductionCutsCost) {
  const tech::Technology full = tech::make_ffet_3p5t();
  const tech::Technology slim = full.with_routing_limit(6, 6);
  const tech::Technology slimmer = full.with_routing_limit(3, 3);
  const double c_full = tech::relative_process_cost(full).total;
  const double c_slim = tech::relative_process_cost(slim).total;
  const double c_slimmer = tech::relative_process_cost(slimmer).total;
  EXPECT_GT(c_full, c_slim);
  EXPECT_GT(c_slim, c_slimmer);
  // FM6BM6 should undercut even the CFET's full stack cost eventually.
  const double c_cfet = tech::relative_process_cost(tech::make_cfet_4t()).total;
  EXPECT_LT(c_slimmer, c_cfet);
}

TEST(CostModel, FinePitchLayersCostMore) {
  tech::CostModel m;
  const auto b = tech::relative_process_cost(tech::make_ffet_3p5t(), m);
  // 24 signal+cell layers between fine/mid/fat plus modules: sane range.
  EXPECT_GT(b.total, 1.5);
  EXPECT_LT(b.total, 4.0);
  EXPECT_EQ(b.num_layers, 26);  // FM0-12 + BM0-12
}

// --- corners ----------------------------------------------------------------------

class CornerTest : public ::testing::Test {
 protected:
  CornerTest()
      : tech_(tech::make_ffet_3p5t()), lib_(stdcell::build_library(tech_)) {
    liberty::characterize_library(lib_);
    netlist::Builder b("c", &lib_);
    const netlist::NetId clk = b.input("clk");
    b.netlist().mark_clock_net(clk);
    const netlist::NetId q0 = b.dff(b.input("d"), clk);
    netlist::NetId x = q0;
    for (int i = 0; i < 4; ++i) x = b.inv(x);
    b.output("q", b.dff(x, clk));
    nl_ = std::make_unique<netlist::Netlist>(b.take());
  }
  tech::Technology tech_;
  stdcell::Library lib_;
  std::unique_ptr<netlist::Netlist> nl_;
};

TEST_F(CornerTest, SlowCornerStretchesSetupPath) {
  sta::StaOptions typ;
  sta::StaOptions slow;
  slow.derate_late = 1.15;
  sta::Sta t(nl_.get(), nullptr, typ);
  sta::Sta s(nl_.get(), nullptr, slow);
  const double d_typ = t.analyze_timing().critical_path_ps;
  const double d_slow = s.analyze_timing().critical_path_ps;
  EXPECT_GT(d_slow, d_typ * 1.05);
  EXPECT_LT(d_slow, d_typ * 1.16);
}

TEST_F(CornerTest, FastCornerTightensHold) {
  sta::StaOptions typ;
  sta::StaOptions fast;
  fast.derate_early = 0.85;
  sta::Sta t(nl_.get(), nullptr, typ);
  t.analyze_timing();
  sta::Sta f(nl_.get(), nullptr, fast);
  f.analyze_timing();
  const double slack_typ = t.analyze_hold().worst_slack_ps;
  const double slack_fast = f.analyze_hold().worst_slack_ps;
  EXPECT_LT(slack_fast, slack_typ);
}

}  // namespace
}  // namespace ffet
