// Property-based tests: invariants swept over the full library / parameter
// grids with parameterized gtest.

#include <random>

#include <gtest/gtest.h>

#include "geom/geom.h"
#include "liberty/characterize.h"
#include "stdcell/nldm.h"
#include "stdcell/stdcell.h"
#include "tech/tech.h"

namespace ffet {
namespace {

// ---------------------------------------------------------------------------
// NLDM monotonicity over every characterized cell of both libraries.
// ---------------------------------------------------------------------------

struct LibHolder {
  tech::Technology tech;
  stdcell::Library lib;
  explicit LibHolder(tech::Technology t)
      : tech(std::move(t)), lib(stdcell::build_library(tech)) {
    liberty::characterize_library(lib);
  }
};

LibHolder& ffet_holder() {
  static LibHolder h(tech::make_ffet_3p5t());
  return h;
}
LibHolder& cfet_holder() {
  static LibHolder h(tech::make_cfet_4t());
  return h;
}

class NldmProperty
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(NldmProperty, DelayMonotoneInLoadAndSlew) {
  const auto [tech_name, cell_index] = GetParam();
  LibHolder& h = std::string(tech_name) == "ffet" ? ffet_holder()
                                                  : cfet_holder();
  const auto& cells = h.lib.cells();
  if (static_cast<std::size_t>(cell_index) >= cells.size()) GTEST_SKIP();
  const stdcell::CellType& cell = *cells[static_cast<std::size_t>(cell_index)];
  if (cell.physical_only() || !cell.timing_model() ||
      cell.timing_model()->arcs.empty()) {
    GTEST_SKIP();
  }
  for (const stdcell::TimingArc& arc : cell.timing_model()->arcs) {
    for (double slew : {3.0, 12.0, 60.0}) {
      double prev_r = -1, prev_f = -1;
      for (double load : {0.5, 2.0, 8.0, 24.0}) {
        const double r = arc.delay_rise.lookup(slew, load);
        const double f = arc.delay_fall.lookup(slew, load);
        EXPECT_GE(r, prev_r) << cell.name() << " slew=" << slew;
        EXPECT_GE(f, prev_f) << cell.name() << " slew=" << slew;
        EXPECT_GT(r, 0.0) << cell.name();
        EXPECT_GT(f, 0.0) << cell.name();
        prev_r = r;
        prev_f = f;
      }
    }
    for (double load : {1.0, 8.0}) {
      double prev = -1;
      for (double slew : {2.0, 10.0, 40.0, 150.0}) {
        const double d = arc.delay_rise.lookup(slew, load);
        EXPECT_GE(d, prev) << cell.name() << " load=" << load;
        prev = d;
      }
    }
    // Energies are positive and finite.
    EXPECT_GT(arc.energy_rise.lookup(10, 4), 0.0) << cell.name();
    EXPECT_LT(arc.energy_fall.lookup(160, 40), 1000.0) << cell.name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, NldmProperty,
    ::testing::Combine(::testing::Values("ffet", "cfet"),
                       ::testing::Range(0, 64)));

// ---------------------------------------------------------------------------
// Fig. 4 area law holds for every drive variant, not just D1.
// ---------------------------------------------------------------------------

class AreaLaw : public ::testing::TestWithParam<int> {};

TEST_P(AreaLaw, HeightRatioBoundsEveryCell) {
  const auto& f = ffet_holder().lib;
  const auto& c = cfet_holder().lib;
  const auto idx = static_cast<std::size_t>(GetParam());
  if (idx >= f.cells().size()) GTEST_SKIP();
  const stdcell::CellType& cell = *f.cells()[idx];
  if (cell.physical_only()) GTEST_SKIP();
  const stdcell::CellType* other = c.find(cell.name());
  if (!other) GTEST_SKIP();
  const double ratio = cell.area_um2() / other->area_um2();
  const auto& st = cell.structure();
  if (st.split_gate_pairs > 0) {
    EXPECT_LT(ratio, 0.875) << cell.name() << ": Split Gate must gain";
  } else if (st.width_cpp_ffet > st.width_cpp_cfet) {
    EXPECT_GT(ratio, 0.875) << cell.name() << ": Drain Merge must cost";
  } else {
    EXPECT_NEAR(ratio, 0.875, 1e-9) << cell.name();
  }
}

INSTANTIATE_TEST_SUITE_P(AllCells, AreaLaw, ::testing::Range(0, 64));

// ---------------------------------------------------------------------------
// Geometry: randomized snap/track properties (fixed seed).
// ---------------------------------------------------------------------------

TEST(GeomProperty, SnapInvariants) {
  std::mt19937 rng(1234);
  std::uniform_int_distribution<geom::Nm> val(-100000, 100000);
  std::uniform_int_distribution<geom::Nm> pitch_d(1, 500);
  for (int i = 0; i < 2000; ++i) {
    const geom::Nm v = val(rng);
    const geom::Nm p = pitch_d(rng);
    const geom::Nm down = geom::snap_down(v, p);
    const geom::Nm up = geom::snap_up(v, p);
    EXPECT_LE(down, v);
    EXPECT_GE(up, v);
    EXPECT_EQ((down % p + p) % p, 0);
    EXPECT_EQ((up % p + p) % p, 0);
    EXPECT_LT(v - down, p);
    EXPECT_LT(up - v, p);
  }
}

TEST(GeomProperty, TracksInSpanMatchesBruteForce) {
  std::mt19937 rng(99);
  std::uniform_int_distribution<geom::Nm> val(0, 2000);
  std::uniform_int_distribution<geom::Nm> pitch_d(1, 97);
  for (int i = 0; i < 500; ++i) {
    geom::Nm lo = val(rng), hi = val(rng);
    if (lo > hi) std::swap(lo, hi);
    const geom::Nm p = pitch_d(rng);
    int brute = 0;
    for (geom::Nm t = 0; t <= hi; t += p) {
      if (t >= lo) ++brute;
    }
    EXPECT_EQ(geom::tracks_in_span(lo, hi, p), brute)
        << lo << ".." << hi << " pitch " << p;
  }
}

TEST(GeomProperty, RectOperationsClosed) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<geom::Nm> val(-1000, 1000);
  for (int i = 0; i < 1000; ++i) {
    geom::Rect a{{val(rng), val(rng)}, {0, 0}};
    a.hi = {a.lo.x + std::abs(val(rng)), a.lo.y + std::abs(val(rng))};
    geom::Rect b{{val(rng), val(rng)}, {0, 0}};
    b.hi = {b.lo.x + std::abs(val(rng)), b.lo.y + std::abs(val(rng))};
    const geom::Rect u = a.united(b);
    EXPECT_TRUE(u.contains(a));
    EXPECT_TRUE(u.contains(b));
    if (a.intersects(b)) {
      const geom::Rect i2 = a.intersected(b);
      EXPECT_TRUE(i2.well_formed());
      EXPECT_TRUE(a.contains(i2));
      EXPECT_TRUE(b.contains(i2));
    }
    // Interior overlap implies intersection.
    if (a.overlaps_interior(b)) EXPECT_TRUE(a.intersects(b));
  }
}

// ---------------------------------------------------------------------------
// Characterization KPI invariants across the FFET/CFET pair for every cell.
// ---------------------------------------------------------------------------

TEST(KpiProperty, LeakageZeroAndTimingNotWorseAcrossLibrary) {
  const auto diffs =
      liberty::compare_libraries(ffet_holder().lib, cfet_holder().lib);
  ASSERT_GT(diffs.size(), 20u);
  for (const liberty::KpiDiff& d : diffs) {
    EXPECT_DOUBLE_EQ(d.leakage_power_pct, 0.0) << d.cell;
    // FFET never slower on the falling edge (the Drain-Merge advantage).
    EXPECT_LT(d.fall_timing_pct, 0.5) << d.cell;
    // Deltas stay physical (no runaway model behaviour).
    EXPECT_GT(d.fall_timing_pct, -40.0) << d.cell;
    EXPECT_LT(std::abs(d.transition_power_pct), 40.0) << d.cell;
  }
}

}  // namespace
}  // namespace ffet
