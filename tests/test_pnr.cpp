// Tests for the physical-implementation stack: floorplan, powerplan
// (Power Tap Cells / nTSV), placement + legalization, CTS, and the
// dual-sided router (Algorithm 1 invariants).

#include <cstdlib>
#include <functional>
#include <map>
#include <random>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "liberty/characterize.h"
#include "netlist/builder.h"
#include "pnr/cts.h"
#include "pnr/floorplan.h"
#include "pnr/placement.h"
#include "pnr/powerplan.h"
#include "pnr/region.h"
#include "pnr/router.h"
#include "pnr/steiner.h"
#include "pnr/track_assign.h"
#include "riscv/rv32.h"

namespace ffet::pnr {
namespace {

using netlist::Builder;
using netlist::Bus;
using netlist::NetId;

/// Shared fixture: a small RV32 core on each technology, characterized.
class PnrTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ffet_tech_ = new tech::Technology(tech::make_ffet_3p5t());
    cfet_tech_ = new tech::Technology(tech::make_cfet_4t());
    stdcell::PinConfig dual;
    dual.backside_input_fraction = 0.5;
    ffet_lib_ = new stdcell::Library(stdcell::build_library(*ffet_tech_, dual));
    cfet_lib_ = new stdcell::Library(stdcell::build_library(*cfet_tech_));
    liberty::characterize_library(*ffet_lib_);
    liberty::characterize_library(*cfet_lib_);
    riscv::Rv32Options opt;
    opt.num_registers = 8;
    ffet_core_ = new netlist::Netlist(riscv::build_rv32_core(*ffet_lib_, opt));
    cfet_core_ = new netlist::Netlist(riscv::build_rv32_core(*cfet_lib_, opt));
  }
  static void TearDownTestSuite() {
    delete ffet_core_;
    delete cfet_core_;
    delete ffet_lib_;
    delete cfet_lib_;
    delete ffet_tech_;
    delete cfet_tech_;
    ffet_core_ = cfet_core_ = nullptr;
    ffet_lib_ = cfet_lib_ = nullptr;
    ffet_tech_ = cfet_tech_ = nullptr;
  }

  static tech::Technology* ffet_tech_;
  static tech::Technology* cfet_tech_;
  static stdcell::Library* ffet_lib_;
  static stdcell::Library* cfet_lib_;
  static netlist::Netlist* ffet_core_;
  static netlist::Netlist* cfet_core_;
};

tech::Technology* PnrTest::ffet_tech_ = nullptr;
tech::Technology* PnrTest::cfet_tech_ = nullptr;
stdcell::Library* PnrTest::ffet_lib_ = nullptr;
stdcell::Library* PnrTest::cfet_lib_ = nullptr;
netlist::Netlist* PnrTest::ffet_core_ = nullptr;
netlist::Netlist* PnrTest::cfet_core_ = nullptr;

// --- floorplan ---------------------------------------------------------------

TEST_F(PnrTest, FloorplanMeetsTargetUtilization) {
  FloorplanOptions fo;
  fo.target_utilization = 0.7;
  const Floorplan fp = make_floorplan(*ffet_core_, *ffet_tech_, fo);
  EXPECT_GT(fp.num_rows(), 10);
  EXPECT_EQ(fp.row_height, ffet_tech_->cell_height());
  EXPECT_EQ(fp.site_width, ffet_tech_->cpp());
  // Snapping only lowers utilization (core grows to whole rows/stripes).
  EXPECT_LE(fp.achieved_utilization, 0.7 + 1e-9);
  EXPECT_GT(fp.achieved_utilization, 0.55);
  // Width snapped to the power-stripe pitch.
  const geom::Nm stripe =
      ffet_tech_->power_rules().stripe_pitch_cpp * ffet_tech_->cpp();
  EXPECT_EQ(fp.core.width() % stripe, 0);
}

TEST_F(PnrTest, FloorplanAspectRatio) {
  FloorplanOptions fo;
  fo.target_utilization = 0.6;
  fo.aspect_ratio = 2.0;
  const Floorplan fp = make_floorplan(*ffet_core_, *ffet_tech_, fo);
  const double ar = static_cast<double>(fp.core.width()) /
                    static_cast<double>(fp.core.height());
  // Width snaps to the 3.2 um power-stripe pitch, so small cores land on a
  // coarse AR grid; just require "clearly wider than tall, not extreme".
  EXPECT_GT(ar, 1.3);
  EXPECT_LT(ar, 3.0);
}

TEST_F(PnrTest, FloorplanRejectsBadOptions) {
  FloorplanOptions fo;
  fo.target_utilization = 0.0;
  EXPECT_THROW(make_floorplan(*ffet_core_, *ffet_tech_, fo),
               std::invalid_argument);
  fo.target_utilization = 1.2;
  EXPECT_THROW(make_floorplan(*ffet_core_, *ffet_tech_, fo),
               std::invalid_argument);
  fo.target_utilization = 0.5;
  fo.aspect_ratio = -1.0;
  EXPECT_THROW(make_floorplan(*ffet_core_, *ffet_tech_, fo),
               std::invalid_argument);
}

TEST_F(PnrTest, HigherUtilizationShrinksCore) {
  FloorplanOptions lo, hi;
  lo.target_utilization = 0.5;
  hi.target_utilization = 0.85;
  const double a_lo =
      make_floorplan(*ffet_core_, *ffet_tech_, lo).core_area_um2();
  const double a_hi =
      make_floorplan(*ffet_core_, *ffet_tech_, hi).core_area_um2();
  EXPECT_GT(a_lo, a_hi);
}

// --- powerplan ----------------------------------------------------------------

TEST_F(PnrTest, FfetPowerPlanPlacesTapCellsUnderVssStripes) {
  netlist::Netlist nl = *ffet_core_;
  FloorplanOptions fo;
  fo.target_utilization = 0.7;
  const Floorplan fp = make_floorplan(nl, *ffet_tech_, fo);
  const int before = nl.num_instances();
  const PowerPlan pp = build_power_plan(nl, fp, *ffet_lib_);

  // Interleaved stripes: |#VDD - #VSS| <= 1, same-type pitch 128 CPP.
  EXPECT_GE(pp.vdd_stripe_x.size(), 1u);
  EXPECT_GE(pp.vss_stripe_x.size(), 1u);
  EXPECT_LE(std::abs(static_cast<int>(pp.vdd_stripe_x.size()) -
                     static_cast<int>(pp.vss_stripe_x.size())),
            1);
  if (pp.vss_stripe_x.size() >= 2) {
    EXPECT_EQ(pp.vss_stripe_x[1] - pp.vss_stripe_x[0],
              128 * ffet_tech_->cpp());
  }

  // One tap per row per VSS stripe, all FIXED TAPCELLs.
  EXPECT_EQ(pp.tap_cells.size(),
            pp.vss_stripe_x.size() * static_cast<std::size_t>(fp.num_rows()));
  EXPECT_EQ(nl.num_instances(), before + static_cast<int>(pp.tap_cells.size()));
  for (netlist::InstId id : pp.tap_cells) {
    EXPECT_TRUE(nl.instance(id).fixed);
    EXPECT_EQ(nl.instance(id).type->name(), "TAPCELL");
    EXPECT_TRUE(fp.core.contains(nl.instance(id).bbox()));
  }
  EXPECT_GT(pp.blocked_site_fraction, 0.005);
  EXPECT_LT(pp.blocked_site_fraction, 0.05);
}

TEST_F(PnrTest, CfetPowerPlanUsesTsvBlockagesNotTaps) {
  netlist::Netlist nl = *cfet_core_;
  FloorplanOptions fo;
  fo.target_utilization = 0.7;
  const Floorplan fp = make_floorplan(nl, *cfet_tech_, fo);
  const int before = nl.num_instances();
  const PowerPlan pp = build_power_plan(nl, fp, *cfet_lib_);
  EXPECT_TRUE(pp.tap_cells.empty());
  EXPECT_EQ(nl.num_instances(), before);  // nothing added
  EXPECT_FALSE(pp.blockages.empty());
  // nTSV fraction ~4% (tech rule), realized within rounding.
  EXPECT_NEAR(pp.blocked_site_fraction,
              cfet_tech_->power_rules().tsv_blockage_fraction, 0.01);
}

TEST_F(PnrTest, IrDropScalesWithPower) {
  netlist::Netlist nl = *ffet_core_;
  FloorplanOptions fo;
  fo.target_utilization = 0.7;
  const Floorplan fp = make_floorplan(nl, *ffet_tech_, fo);
  const PowerPlan pp = build_power_plan(nl, fp, *ffet_lib_);
  const double low = pp.estimate_ir_drop_mv(1000.0);
  const double high = pp.estimate_ir_drop_mv(4000.0);
  EXPECT_GT(low, 0.0);
  EXPECT_NEAR(high / low, 4.0, 1e-6);
  // A few-mW block should see millivolt-class IR drop, not volts.
  EXPECT_LT(high, 70.0);
}

// --- placement -----------------------------------------------------------------

TEST_F(PnrTest, PlacementLegalizesWithoutOverlaps) {
  netlist::Netlist nl = *ffet_core_;
  FloorplanOptions fo;
  fo.target_utilization = 0.7;
  const Floorplan fp = make_floorplan(nl, *ffet_tech_, fo);
  const PowerPlan pp = build_power_plan(nl, fp, *ffet_lib_);
  const PlacementResult res = place(nl, fp, pp);
  ASSERT_TRUE(res.legal) << res.message;
  EXPECT_EQ(res.violations, 0);
  EXPECT_GT(res.hpwl_um, 0.0);

  // No interior overlaps between any two instances (incl. taps), cells in
  // rows, inside the core.
  std::vector<geom::Rect> boxes;
  for (netlist::InstId i = 0; i < nl.num_instances(); ++i) {
    const geom::Rect b = nl.instance(i).bbox();
    EXPECT_TRUE(fp.core.contains(b)) << nl.instance_name(i);
    EXPECT_EQ(b.lo.y % fp.row_height, 0) << nl.instance_name(i);
    EXPECT_EQ(b.lo.x % fp.site_width, 0) << nl.instance_name(i);
    boxes.push_back(b);
  }
  // Overlap scan via row bucketing (O(n^2) within rows is fine here).
  std::map<geom::Nm, std::vector<geom::Rect>> by_row;
  for (const auto& b : boxes) by_row[b.lo.y].push_back(b);
  for (auto& [y, v] : by_row) {
    std::sort(v.begin(), v.end(),
              [](const geom::Rect& a, const geom::Rect& b) {
                return a.lo.x < b.lo.x;
              });
    for (std::size_t i = 0; i + 1 < v.size(); ++i) {
      EXPECT_LE(v[i].hi.x, v[i + 1].lo.x)
          << "overlap in row y=" << y << " near x=" << v[i].hi.x;
    }
  }
}

TEST_F(PnrTest, PlacementRefusesOverMaxDensity) {
  netlist::Netlist nl = *ffet_core_;
  FloorplanOptions fo;
  fo.target_utilization = 0.93;  // above the closable ceiling
  const Floorplan fp = make_floorplan(nl, *ffet_tech_, fo);
  const PowerPlan pp = build_power_plan(nl, fp, *ffet_lib_);
  const PlacementResult res = place(nl, fp, pp);
  EXPECT_FALSE(res.legal);
  EXPECT_GT(res.violations, 0);
}

TEST_F(PnrTest, PlacementDeterministicForSameSeed) {
  auto run = [&](unsigned seed) {
    netlist::Netlist nl = *ffet_core_;
    FloorplanOptions fo;
    fo.target_utilization = 0.65;
    const Floorplan fp = make_floorplan(nl, *ffet_tech_, fo);
    const PowerPlan pp = build_power_plan(nl, fp, *ffet_lib_);
    PlacementOptions po;
    po.seed = seed;
    place(nl, fp, pp, po);
    std::vector<geom::Point> pos;
    for (const auto& inst : nl.instances()) pos.push_back(inst.pos);
    return pos;
  };
  EXPECT_EQ(run(7), run(7));
}

TEST_F(PnrTest, PlacementBeatsRandomOnWirelength) {
  netlist::Netlist nl = *ffet_core_;
  FloorplanOptions fo;
  fo.target_utilization = 0.65;
  const Floorplan fp = make_floorplan(nl, *ffet_tech_, fo);
  const PowerPlan pp = build_power_plan(nl, fp, *ffet_lib_);

  // Baseline: seeded-random scatter (what global placement starts from).
  {
    std::mt19937 rng(99);
    std::uniform_real_distribution<double> u(0.0, 1.0);
    for (int i = 0; i < nl.num_instances(); ++i) {
      auto& inst = nl.instance(i);
      inst.pos = {static_cast<geom::Nm>(u(rng) * (fp.core.width() -
                                                  inst.type->width())),
                  static_cast<geom::Nm>(u(rng) * (fp.core.height() -
                                                  inst.type->height()))};
    }
  }
  const double random_hpwl = compute_hpwl_um(nl);
  const PlacementResult res = place(nl, fp, pp);
  ASSERT_TRUE(res.legal);
  // Global placement must recover substantial locality over random.
  EXPECT_LT(res.hpwl_um, 0.75 * random_hpwl);
}

// --- CTS ------------------------------------------------------------------------

TEST_F(PnrTest, ClockTreeCoversEverySequentialSink) {
  netlist::Netlist nl = *ffet_core_;
  FloorplanOptions fo;
  fo.target_utilization = 0.7;
  const Floorplan fp = make_floorplan(nl, *ffet_tech_, fo);
  const PowerPlan pp = build_power_plan(nl, fp, *ffet_lib_);
  place(nl, fp, pp);

  int num_ff = 0;
  for (const auto& inst : nl.instances()) {
    if (inst.type->sequential()) ++num_ff;
  }
  const CtsResult cts = build_clock_tree(nl, fp);
  EXPECT_GT(cts.num_buffers, 0);
  EXPECT_GT(cts.depth, 1);
  EXPECT_EQ(static_cast<int>(cts.sink_latency_ps.size()), num_ff);
  for (const auto& [inst, lat] : cts.sink_latency_ps) {
    EXPECT_GT(lat, 0.0);
    EXPECT_LT(lat, 500.0);
  }
  EXPECT_GE(cts.skew_ps, 0.0);
  EXPECT_LT(cts.skew_ps, cts.mean_latency_ps);
  // Netlist still structurally sound after the surgery.
  EXPECT_TRUE(nl.validate().empty());
  // Root clock net now drives exactly one sink: the root buffer.
  const auto clk = nl.find_net("clk");
  ASSERT_TRUE(clk.has_value());
  EXPECT_EQ(nl.net(*clk).sinks.size(), 1u);
  // All CTS nets are clock-marked.
  int clock_nets = 0;
  for (const auto& net : nl.nets()) {
    if (net.is_clock) ++clock_nets;
  }
  EXPECT_EQ(clock_nets, 1 + cts.num_buffers);
}

TEST_F(PnrTest, CtsNoSinksIsNoop) {
  Builder b("comb", ffet_lib_);
  b.output("z", b.inv(b.input("a")));
  netlist::Netlist nl = b.take();
  FloorplanOptions fo;
  fo.target_utilization = 0.5;
  const Floorplan fp = make_floorplan(nl, *ffet_tech_, fo);
  const CtsResult cts = build_clock_tree(nl, fp);
  EXPECT_EQ(cts.num_buffers, 0);
}

// --- routing: Algorithm 1 ---------------------------------------------------------

struct RoutedDesign {
  netlist::Netlist nl;
  Floorplan fp;
  RouteResult rr;
};

RoutedDesign route_core(const netlist::Netlist& core,
                        const tech::Technology& tech,
                        const stdcell::Library& lib, double util,
                        const RouteOptions& ro = {}) {
  RoutedDesign rd{core, {}, {}};
  FloorplanOptions fo;
  fo.target_utilization = util;
  rd.fp = make_floorplan(rd.nl, tech, fo);
  const PowerPlan pp = build_power_plan(rd.nl, rd.fp, lib);
  place(rd.nl, rd.fp, pp);
  build_clock_tree(rd.nl, rd.fp);
  rd.rr = route_design(rd.nl, rd.fp, ro);
  return rd;
}

/// Union-find connectivity over every route: source and all sinks in one
/// component (the invariant both maze engines must preserve).
void expect_all_sinks_connected(const netlist::Netlist& nl,
                                const RouteResult& rr) {
  for (const NetRoute& r : rr.routes) {
    if (r.edges.empty()) continue;
    std::map<int, int> parent;
    std::function<int(int)> find = [&](int x) {
      parent.try_emplace(x, x);
      while (parent[x] != x) x = parent[x] = parent[parent[x]];
      return x;
    };
    for (const GEdge& e : r.edges) parent[find(e.a)] = find(e.b);
    const int root = find(r.source_gcell);
    for (int s : r.sink_gcells) {
      EXPECT_EQ(find(s), root)
          << "disconnected sink in net " << nl.net_name(r.net);
    }
  }
}

TEST_F(PnrTest, Algorithm1DecomposesNetsBySinkSide) {
  const RoutedDesign rd = route_core(*ffet_core_, *ffet_tech_, *ffet_lib_, 0.6);
  const auto& nl = rd.nl;

  // Index routes by (net, side).
  std::set<std::pair<netlist::NetId, Side>> routed;
  for (const NetRoute& r : rd.rr.routes) {
    routed.insert({r.net, r.side});
  }

  int dual_sided_nets = 0;
  for (int n = 0; n < nl.num_nets(); ++n) {
    const netlist::Net& net = nl.net(n);
    if (net.driver.inst == netlist::kNoInst && net.port < 0) continue;
    // Output ports are frontside sinks when the net has a driver.
    bool want_front =
        net.port >= 0 && !nl.port(net.port).is_input &&
        net.driver.inst != netlist::kNoInst;
    bool want_back = false;
    for (const netlist::PinRef& s : net.sinks) {
      if (nl.pin_side(s) == stdcell::PinSide::Back) {
        want_back = true;
      } else {
        want_front = true;
      }
    }
    // Every sink side demanded must have a routed subnet, and no side
    // without sinks may carry one (Algorithm 1 lines 2-8).
    EXPECT_EQ(routed.contains({n, Side::Front}), want_front)
        << nl.net_name(n);
    EXPECT_EQ(routed.contains({n, Side::Back}), want_back) << nl.net_name(n);
    if (want_front && want_back) ++dual_sided_nets;
  }
  // The 50/50 library must actually produce dual-sided nets.
  EXPECT_GT(dual_sided_nets, 100);
  EXPECT_GT(rd.rr.wirelength_back_um, 0.0);
  EXPECT_GT(rd.rr.wirelength_front_um, 0.0);
}

TEST_F(PnrTest, CfetRoutesFrontOnly) {
  const RoutedDesign rd = route_core(*cfet_core_, *cfet_tech_, *cfet_lib_, 0.6);
  EXPECT_EQ(rd.rr.nets_back, 0);
  EXPECT_DOUBLE_EQ(rd.rr.wirelength_back_um, 0.0);
  for (const NetRoute& r : rd.rr.routes) {
    EXPECT_EQ(r.side, Side::Front);
  }
}

TEST_F(PnrTest, RoutesFormConnectedTrees) {
  const RoutedDesign rd = route_core(*ffet_core_, *ffet_tech_, *ffet_lib_, 0.6);
  for (const NetRoute& r : rd.rr.routes) {
    if (r.edges.empty()) continue;
    // Union-find connectivity: all edges + source + sinks in one component.
    std::map<int, int> parent;
    std::function<int(int)> find = [&](int x) {
      parent.try_emplace(x, x);
      while (parent[x] != x) x = parent[x] = parent[parent[x]];
      return x;
    };
    auto unite = [&](int a, int b) { parent[find(a)] = find(b); };
    for (const GEdge& e : r.edges) unite(e.a, e.b);
    const int root = find(r.source_gcell);
    for (int s : r.sink_gcells) {
      EXPECT_EQ(find(s), root)
          << "disconnected sink in net " << rd.nl.net_name(r.net);
    }
  }
}

TEST_F(PnrTest, BacksideSinksWithoutBacksideLayersThrow) {
  // FFET library with backside pins, but the routing stack stripped of all
  // backside layers: Algorithm 1 cannot place the backside subnet and the
  // flow (which forbids bridging cells) must refuse.
  tech::Technology limited = ffet_tech_->with_routing_limit(12, 0);
  const RoutedDesign* ignored = nullptr;
  (void)ignored;
  netlist::Netlist nl = *ffet_core_;
  FloorplanOptions fo;
  fo.target_utilization = 0.6;
  // Rebuild floorplan/placement against the limited tech but the library
  // still exposes backside pins.
  stdcell::PinConfig dual;
  dual.backside_input_fraction = 0.5;
  stdcell::Library lib2 = stdcell::build_library(limited, dual);
  liberty::characterize_library(lib2);
  riscv::Rv32Options opt;
  opt.num_registers = 4;
  netlist::Netlist nl2 = riscv::build_rv32_core(lib2, opt);
  const Floorplan fp = make_floorplan(nl2, limited, fo);
  const PowerPlan pp = build_power_plan(nl2, fp, lib2);
  place(nl2, fp, pp);
  EXPECT_THROW(route_design(nl2, fp), std::runtime_error);
}

TEST_F(PnrTest, DualSidedRoutingRelievesFrontside) {
  // Same design, FFET with all-front pins vs 50/50 pins: the dual-sided
  // library must shift a large share of wirelength to the backside.
  stdcell::Library front_lib = stdcell::build_library(*ffet_tech_, {});
  liberty::characterize_library(front_lib);
  riscv::Rv32Options opt;
  opt.num_registers = 8;
  netlist::Netlist front_core = riscv::build_rv32_core(front_lib, opt);

  const RoutedDesign all_front =
      route_core(front_core, *ffet_tech_, front_lib, 0.6);
  const RoutedDesign split = route_core(*ffet_core_, *ffet_tech_, *ffet_lib_, 0.6);
  EXPECT_DOUBLE_EQ(all_front.rr.wirelength_back_um, 0.0);
  EXPECT_GT(split.rr.wirelength_back_um,
            0.2 * split.rr.total_wirelength_um());
  EXPECT_LT(split.rr.wirelength_front_um, all_front.rr.wirelength_front_um);
}

TEST_F(PnrTest, FewerLayersMeansMoreCongestion) {
  netlist::Netlist nl = *ffet_core_;
  FloorplanOptions fo;
  fo.target_utilization = 0.8;
  const Floorplan fp = make_floorplan(nl, *ffet_tech_, fo);
  const PowerPlan pp = build_power_plan(nl, fp, *ffet_lib_);
  place(nl, fp, pp);
  build_clock_tree(nl, fp);
  const RouteResult full = route_design(nl, fp);

  // Re-route the same placement against a 3+3-layer stack.
  tech::Technology limited = ffet_tech_->with_routing_limit(3, 3);
  stdcell::PinConfig dual;
  dual.backside_input_fraction = 0.5;
  stdcell::Library lib2 = stdcell::build_library(limited, dual);
  liberty::characterize_library(lib2);
  riscv::Rv32Options opt;
  opt.num_registers = 8;
  netlist::Netlist nl2 = riscv::build_rv32_core(lib2, opt);
  const Floorplan fp2 = make_floorplan(nl2, limited, fo);
  const PowerPlan pp2 = build_power_plan(nl2, fp2, lib2);
  place(nl2, fp2, pp2);
  build_clock_tree(nl2, fp2);
  const RouteResult thin = route_design(nl2, fp2);

  EXPECT_GE(thin.drv_estimate, full.drv_estimate);
}

TEST_F(PnrTest, TrackAssignmentUniquePerEdge) {
  const RoutedDesign rd = route_core(*ffet_core_, *ffet_tech_, *ffet_lib_, 0.6);
  const int tracks = 64;  // generous bound: no overflow expected at 60%
  const TrackAssignment ta = assign_tracks(rd.rr, tracks);
  ASSERT_EQ(ta.track_of.size(), rd.rr.routes.size());
  EXPECT_EQ(ta.overflow_crossings, 0);
  EXPECT_GT(ta.max_tracks_seen, 1);
  EXPECT_LE(ta.max_tracks_seen, tracks);

  // Invariant: within one (side, edge), every crossing has a distinct
  // track.
  std::map<std::tuple<int, int, int>, std::set<int>> seen;
  for (std::size_t r = 0; r < rd.rr.routes.size(); ++r) {
    const NetRoute& route = rd.rr.routes[r];
    for (std::size_t e = 0; e < route.edges.size(); ++e) {
      const int a = std::min(route.edges[e].a, route.edges[e].b);
      const int b = std::max(route.edges[e].a, route.edges[e].b);
      const auto key = std::make_tuple(
          route.side == Side::Front ? 0 : 1, a, b);
      EXPECT_TRUE(seen[key].insert(ta.track_of[r][e]).second)
          << "track collision on edge " << a << "-" << b;
    }
  }
}

TEST_F(PnrTest, TrackOffsetsCenteredAndBounded) {
  const geom::Nm span = 450;
  for (int n : {2, 8, 32}) {
    geom::Nm lo = span, hi = -span, sum = 0;
    for (int t = 0; t < n; ++t) {
      const geom::Nm off = track_offset_nm(t, n, span);
      lo = std::min(lo, off);
      hi = std::max(hi, off);
      sum += off;
      EXPECT_LT(std::abs(off), span / 2) << "track " << t << "/" << n;
    }
    EXPECT_LT(std::abs(sum), n) << "offsets should be centered";
    EXPECT_LT(lo, 0);
    EXPECT_GT(hi, 0);
  }
  EXPECT_EQ(track_offset_nm(0, 1, span), 0);
}

TEST_F(PnrTest, TrackAssignmentReportsOverflowWhenBound) {
  const RoutedDesign rd = route_core(*ffet_core_, *ffet_tech_, *ffet_lib_, 0.6);
  const TrackAssignment tight = assign_tracks(rd.rr, 2);
  EXPECT_GT(tight.overflow_crossings, 0)
      << "a 2-track bound must overflow somewhere";
  EXPECT_LE(tight.max_tracks_seen, 2);
}

TEST_F(PnrTest, RouterDeterministic) {
  const RoutedDesign a = route_core(*ffet_core_, *ffet_tech_, *ffet_lib_, 0.6);
  const RoutedDesign b = route_core(*ffet_core_, *ffet_tech_, *ffet_lib_, 0.6);
  EXPECT_EQ(a.rr.drv_estimate, b.rr.drv_estimate);
  EXPECT_DOUBLE_EQ(a.rr.total_wirelength_um(), b.rr.total_wirelength_um());
  ASSERT_EQ(a.rr.routes.size(), b.rr.routes.size());
}

// --- routing: maze-search engines -------------------------------------------

TEST_F(PnrTest, AstarMatchesLegacyQor) {
  // The windowed A* engine must be QoR-equivalent to the legacy full-grid
  // Dijkstra on the seed designs: equal-or-better hard overflow and total
  // wirelength, every sink connected, and strictly less search effort.
  RouteOptions legacy_ro;
  legacy_ro.engine = RouteEngine::Legacy;
  RouteOptions astar_ro;
  astar_ro.engine = RouteEngine::Astar;

  struct Case {
    const netlist::Netlist* core;
    const tech::Technology* tech;
    const stdcell::Library* lib;
  };
  for (const Case& c : {Case{ffet_core_, ffet_tech_, ffet_lib_},
                        Case{cfet_core_, cfet_tech_, cfet_lib_}}) {
    const RoutedDesign l = route_core(*c.core, *c.tech, *c.lib, 0.6, legacy_ro);
    const RoutedDesign a = route_core(*c.core, *c.tech, *c.lib, 0.6, astar_ro);
    EXPECT_EQ(l.rr.engine_used, RouteEngine::Legacy);
    EXPECT_EQ(a.rr.engine_used, RouteEngine::Astar);
    EXPECT_LE(a.rr.drv_wire, l.rr.drv_wire);
    EXPECT_LE(a.rr.total_wirelength_um(), l.rr.total_wirelength_um() + 1e-6);
    ASSERT_EQ(a.rr.routes.size(), l.rr.routes.size());
    expect_all_sinks_connected(l.nl, l.rr);
    expect_all_sinks_connected(a.nl, a.rr);
    EXPECT_GT(a.rr.settled_nodes, 0);
    EXPECT_LT(a.rr.settled_nodes, l.rr.settled_nodes)
        << "windowed A* should settle fewer nodes than full-grid Dijkstra";
  }
}

TEST_F(PnrTest, AstarWindowExpandsUnderCongestion) {
  // A deliberately congested fixture: 2+2 routing layers at 80 %
  // utilization with the capacity fudge squeezed to 2.4 (the 8-register
  // core is otherwise too small to congest).  Windowed attempts admit only
  // hard-overflow-free paths, so saturated edges force window expansions
  // (x2, then full grid); the full-grid fallback still connects every
  // sink, and the A* result must remain equal-or-better than legacy on
  // hard overflow.
  tech::Technology limited = ffet_tech_->with_routing_limit(2, 2);
  stdcell::PinConfig dual;
  dual.backside_input_fraction = 0.5;
  stdcell::Library lib2 = stdcell::build_library(limited, dual);
  liberty::characterize_library(lib2);
  riscv::Rv32Options opt;
  opt.num_registers = 8;
  netlist::Netlist nl2 = riscv::build_rv32_core(lib2, opt);
  FloorplanOptions fo;
  fo.target_utilization = 0.8;
  const Floorplan fp2 = make_floorplan(nl2, limited, fo);
  const PowerPlan pp2 = build_power_plan(nl2, fp2, lib2);
  place(nl2, fp2, pp2);
  build_clock_tree(nl2, fp2);

  RouteOptions astar_ro;
  astar_ro.capacity_factor = 2.4;
  astar_ro.engine = RouteEngine::Astar;
  const RouteResult a = route_design(nl2, fp2, astar_ro);
  EXPECT_GT(a.window_expansions, 0)
      << "a saturated 2+2 stack must trigger window expansion";
  expect_all_sinks_connected(nl2, a);

  // Per-pass counters must sum to the totals.
  long settled = 0, wexp = 0;
  for (const RoutePassStat& ps : a.pass_stats) {
    settled += ps.settled_front + ps.settled_back;
    wexp += ps.window_expansions_front + ps.window_expansions_back;
  }
  EXPECT_EQ(settled, a.settled_nodes);
  EXPECT_EQ(wexp, a.window_expansions);

  RouteOptions legacy_ro;
  legacy_ro.capacity_factor = 2.4;
  legacy_ro.engine = RouteEngine::Legacy;
  const RouteResult l = route_design(nl2, fp2, legacy_ro);
  EXPECT_EQ(l.window_expansions, 0);
  EXPECT_LE(a.drv_wire, l.drv_wire);
}

TEST_F(PnrTest, RouterDeterministicAcrossThreadCounts) {
  // Algorithm 1 routes the two wafer sides independently, so threaded
  // passes (front/back concurrent) must be bit-identical to serial ones —
  // for both maze engines.
  for (const RouteEngine engine :
       {RouteEngine::Legacy, RouteEngine::Astar, RouteEngine::Astar2}) {
    RouteOptions ro;
    ro.engine = engine;
    ro.threads = 1;
    const RoutedDesign serial =
        route_core(*ffet_core_, *ffet_tech_, *ffet_lib_, 0.6, ro);
    ro.threads = 4;
    const RoutedDesign threaded =
        route_core(*ffet_core_, *ffet_tech_, *ffet_lib_, 0.6, ro);

    EXPECT_DOUBLE_EQ(serial.rr.total_wirelength_um(),
                     threaded.rr.total_wirelength_um());
    EXPECT_EQ(serial.rr.drv_estimate, threaded.rr.drv_estimate);
    EXPECT_EQ(serial.rr.settled_nodes, threaded.rr.settled_nodes);
    EXPECT_EQ(serial.rr.window_expansions, threaded.rr.window_expansions);
    EXPECT_EQ(serial.rr.region_ripups_total, threaded.rr.region_ripups_total);
    EXPECT_EQ(serial.rr.steiner_subnets, threaded.rr.steiner_subnets);
    ASSERT_EQ(serial.rr.routes.size(), threaded.rr.routes.size());
    for (std::size_t i = 0; i < serial.rr.routes.size(); ++i) {
      const NetRoute& s = serial.rr.routes[i];
      const NetRoute& t = threaded.rr.routes[i];
      EXPECT_EQ(s.net, t.net);
      EXPECT_EQ(s.side, t.side);
      EXPECT_EQ(s.edges, t.edges) << "route " << i << " differs";
    }
  }
}

TEST_F(PnrTest, RouteEngineEnvEscapeHatch) {
  // RouteEngine::Auto resolves FFET_ROUTE_ENGINE; each value must select
  // its kernel without touching any call site.
  setenv("FFET_ROUTE_ENGINE", "legacy", 1);
  const RoutedDesign l = route_core(*cfet_core_, *cfet_tech_, *cfet_lib_, 0.6);
  setenv("FFET_ROUTE_ENGINE", "astar", 1);
  const RoutedDesign a = route_core(*cfet_core_, *cfet_tech_, *cfet_lib_, 0.6);
  setenv("FFET_ROUTE_ENGINE", "astar2", 1);
  const RoutedDesign a2 =
      route_core(*cfet_core_, *cfet_tech_, *cfet_lib_, 0.6);
  unsetenv("FFET_ROUTE_ENGINE");
  EXPECT_EQ(l.rr.engine_used, RouteEngine::Legacy);
  EXPECT_EQ(a.rr.engine_used, RouteEngine::Astar);
  EXPECT_EQ(a2.rr.engine_used, RouteEngine::Astar2);
  // The stage-1 engines never decompose into 2-pin subnets; stage 2 always
  // does (every multi-gcell net contributes at least one).
  EXPECT_EQ(a.rr.steiner_subnets, 0);
  EXPECT_GT(a2.rr.steiner_subnets, 0);
  // Unset, Auto defaults to Astar2.
  const RoutedDesign d = route_core(*cfet_core_, *cfet_tech_, *cfet_lib_, 0.6);
  EXPECT_EQ(d.rr.engine_used, RouteEngine::Astar2);
}

// --- routing: stage 2 (Steiner / congestion regions) ------------------------

/// Manhattan distance helper for Steiner checks.
int manhattan(const SteinerPoint& a, const SteinerPoint& b) {
  return std::abs(a.c - b.c) + std::abs(a.r - b.r);
}

/// Sum of |terminal - terminal 0| — the star topology every tree must beat
/// or match.
long star_length(const std::vector<SteinerPoint>& terms) {
  long len = 0;
  for (const SteinerPoint& t : terms) len += manhattan(terms[0], t);
  return len;
}

/// Union-find over tree points: every terminal reachable through segs.
void expect_tree_connects_terminals(const SteinerTree& tree) {
  ASSERT_FALSE(tree.points.empty());
  ASSERT_EQ(tree.segs.size(), tree.points.size() - 1);
  std::vector<int> parent(tree.points.size());
  for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = int(i);
  std::function<int(int)> find = [&](int x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (const SteinerSeg& s : tree.segs) parent[find(s.a)] = find(s.b);
  const int root = find(0);
  for (int t = 0; t < tree.num_terminals; ++t) {
    EXPECT_EQ(find(t), root) << "terminal " << t << " disconnected";
  }
}

TEST(SteinerTest, TreeConnectsTerminalsAndBeatsStar) {
  // Deterministic pseudo-random terminal sets across all three topology
  // tiers (exact <=3, iterated 1-Steiner <=9, spanning fallback above).
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> coord(0, 40);
  for (const int n : {1, 2, 3, 5, 7, 9, 12, 20}) {
    for (int trial = 0; trial < 8; ++trial) {
      std::vector<SteinerPoint> terms;
      terms.reserve(n);
      for (int i = 0; i < n; ++i) terms.push_back({coord(rng), coord(rng)});
      const SteinerTree tree = build_steiner_tree(terms);
      ASSERT_EQ(tree.num_terminals, n);
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(tree.points[i], terms[i]) << "terminal order not preserved";
      }
      expect_tree_connects_terminals(tree);
      // The tree must never be longer than the star topology (source to
      // every sink directly) — the bound Algorithm 1's legacy tree growth
      // trivially meets, so stage 2 must meet it too.
      EXPECT_LE(tree.length(), star_length(terms)) << n << " terminals";
    }
  }
}

TEST(SteinerTest, ThreeTerminalMedianIsOptimal) {
  // For <=3 terminals the rectilinear Steiner minimum is the half-perimeter
  // of the bounding box (median-point construction); the builder must hit
  // it exactly.
  const std::vector<std::vector<SteinerPoint>> cases = {
      {{0, 0}, {10, 0}, {5, 8}},
      {{3, 7}, {3, 7}, {3, 7}},  // duplicates collapse
      {{0, 0}, {0, 9}, {9, 0}},
      {{2, 5}, {11, 1}, {7, 13}},
  };
  for (const auto& terms : cases) {
    int c_lo = terms[0].c, c_hi = terms[0].c;
    int r_lo = terms[0].r, r_hi = terms[0].r;
    for (const SteinerPoint& t : terms) {
      c_lo = std::min(c_lo, t.c);
      c_hi = std::max(c_hi, t.c);
      r_lo = std::min(r_lo, t.r);
      r_hi = std::max(r_hi, t.r);
    }
    const SteinerTree tree = build_steiner_tree(terms);
    expect_tree_connects_terminals(tree);
    EXPECT_EQ(tree.length(), (c_hi - c_lo) + (r_hi - r_lo));
  }
}

TEST(SteinerTest, DeterministicForSameTerminals) {
  std::mt19937 rng(19);
  std::uniform_int_distribution<int> coord(0, 30);
  std::vector<SteinerPoint> terms;
  for (int i = 0; i < 8; ++i) terms.push_back({coord(rng), coord(rng)});
  const SteinerTree a = build_steiner_tree(terms);
  const SteinerTree b = build_steiner_tree(terms);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i], b.points[i]);
  }
  ASSERT_EQ(a.segs.size(), b.segs.size());
  for (std::size_t i = 0; i < a.segs.size(); ++i) {
    EXPECT_EQ(a.segs[i].a, b.segs[i].a);
    EXPECT_EQ(a.segs[i].b, b.segs[i].b);
  }
}

TEST(RegionTest, ClustersDisjointHotSpotsSeparately) {
  // Two hot spots far apart on a 30x30 grid: two disjoint regions, each
  // expanded by the margin and holding its seed cells.
  const int cols = 30, rows = 30;
  auto node = [&](int c, int r) { return r * cols + c; };
  const std::vector<int> hot = {node(5, 5), node(6, 5), node(25, 24),
                                node(25, 25)};
  const auto regions = cluster_congestion_regions(hot, cols, rows,
                                                  /*merge_dist=*/2,
                                                  /*margin=*/3);
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_TRUE(regions[0].contains(5, 5));
  EXPECT_TRUE(regions[0].contains(6, 5));
  EXPECT_TRUE(regions[1].contains(25, 24));
  EXPECT_EQ(regions[0].cells, 2);
  EXPECT_EQ(regions[1].cells, 2);
  EXPECT_FALSE(regions_overlap(regions[0], regions[1]));
  // Margin expansion: 3 gcells beyond the seed bounding box.
  EXPECT_EQ(regions[0].c_lo, 2);
  EXPECT_EQ(regions[0].c_hi, 9);
  EXPECT_EQ(regions[0].r_lo, 2);
  EXPECT_EQ(regions[0].r_hi, 8);
  // Sorted by (r_lo, c_lo, ...).
  EXPECT_LT(regions[0].r_lo, regions[1].r_lo);
}

TEST(RegionTest, MarginClampsToGridAndNearbyCellsMerge) {
  const int cols = 12, rows = 12;
  auto node = [&](int c, int r) { return r * cols + c; };
  // A corner cell plus one within Chebyshev distance 2: one cluster, with
  // the margin clamped at the grid edge.
  const auto one = cluster_congestion_regions({node(0, 0), node(2, 1)}, cols,
                                              rows, 2, 3);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].c_lo, 0);
  EXPECT_EQ(one[0].r_lo, 0);
  EXPECT_EQ(one[0].c_hi, 5);
  EXPECT_EQ(one[0].r_hi, 4);
  EXPECT_EQ(one[0].cells, 2);

  // Two clusters beyond merge_dist but whose margin boxes overlap must
  // merge transitively into one region (regions stay pairwise disjoint).
  const auto merged = cluster_congestion_regions({node(1, 6), node(8, 6)},
                                                 cols, rows, 2, 4);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_TRUE(merged[0].contains(1, 6));
  EXPECT_TRUE(merged[0].contains(8, 6));
  EXPECT_EQ(merged[0].cells, 2);
}

TEST(RegionTest, DeterministicUnderInputOrderAndDuplicates) {
  const int cols = 40, rows = 20;
  auto node = [&](int c, int r) { return r * cols + c; };
  const std::vector<int> a = {node(3, 3),  node(4, 4),  node(30, 10),
                              node(31, 10), node(18, 2)};
  std::vector<int> b = {node(31, 10), node(18, 2), node(4, 4),
                        node(3, 3),  node(30, 10), node(3, 3)};
  const auto ra = cluster_congestion_regions(a, cols, rows);
  const auto rb = cluster_congestion_regions(b, cols, rows);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i], rb[i]) << "region " << i;
  }
  // Sorted output, pairwise disjoint.
  for (std::size_t i = 1; i < ra.size(); ++i) {
    EXPECT_FALSE(regions_overlap(ra[i - 1], ra[i]));
    EXPECT_LE(std::tie(ra[i - 1].r_lo, ra[i - 1].c_lo),
              std::tie(ra[i].r_lo, ra[i].c_lo));
  }
}

TEST_F(PnrTest, Astar2MatchesAstarQor) {
  // The stage-2 Steiner/region engine must be QoR-equivalent to stage-1 A*
  // on the seed designs: equal-or-better DRVs and total wirelength, every
  // sink connected, and the 2-pin fast path must actually fire (monotone
  // subnets skip the heap entirely).
  RouteOptions astar_ro;
  astar_ro.engine = RouteEngine::Astar;
  RouteOptions astar2_ro;
  astar2_ro.engine = RouteEngine::Astar2;

  struct Case {
    const netlist::Netlist* core;
    const tech::Technology* tech;
    const stdcell::Library* lib;
  };
  for (const Case& c : {Case{ffet_core_, ffet_tech_, ffet_lib_},
                        Case{cfet_core_, cfet_tech_, cfet_lib_}}) {
    const RoutedDesign a = route_core(*c.core, *c.tech, *c.lib, 0.6, astar_ro);
    const RoutedDesign s =
        route_core(*c.core, *c.tech, *c.lib, 0.6, astar2_ro);
    EXPECT_EQ(s.rr.engine_used, RouteEngine::Astar2);
    EXPECT_LE(s.rr.drv_wire, a.rr.drv_wire);
    EXPECT_LE(s.rr.total_wirelength_um(), a.rr.total_wirelength_um() + 1e-6);
    ASSERT_EQ(s.rr.routes.size(), a.rr.routes.size());
    expect_all_sinks_connected(s.nl, s.rr);
    EXPECT_GT(s.rr.steiner_subnets, 0);
    EXPECT_GT(s.rr.fastpath_routes, 0)
        << "uncongested subnets should take the monotone fast path";
    EXPECT_LT(s.rr.settled_nodes, a.rr.settled_nodes)
        << "the fast path should skip most heap searches";
  }
}

TEST_F(PnrTest, Astar2DeterministicUnderCongestion) {
  // The region rip-up machinery batches disjoint regions across the thread
  // pool; on the congested 2+2-layer fixture (capacity squeezed to 2.4)
  // the threaded schedule must still be bit-identical to the serial one —
  // frozen-snapshot searches plus the serial commit barrier make the result
  // a pure function of the overflow picture.
  tech::Technology limited = ffet_tech_->with_routing_limit(2, 2);
  stdcell::PinConfig dual;
  dual.backside_input_fraction = 0.5;
  stdcell::Library lib2 = stdcell::build_library(limited, dual);
  liberty::characterize_library(lib2);
  riscv::Rv32Options opt;
  opt.num_registers = 8;
  netlist::Netlist nl2 = riscv::build_rv32_core(lib2, opt);
  FloorplanOptions fo;
  fo.target_utilization = 0.8;
  const Floorplan fp2 = make_floorplan(nl2, limited, fo);
  const PowerPlan pp2 = build_power_plan(nl2, fp2, lib2);
  place(nl2, fp2, pp2);
  build_clock_tree(nl2, fp2);

  RouteOptions ro;
  ro.engine = RouteEngine::Astar2;
  ro.capacity_factor = 2.4;
  ro.threads = 1;
  const RouteResult serial = route_design(nl2, fp2, ro);
  ro.threads = 4;
  const RouteResult threaded = route_design(nl2, fp2, ro);

  expect_all_sinks_connected(nl2, serial);
  EXPECT_GT(serial.steiner_subnets, 0);
  EXPECT_DOUBLE_EQ(serial.total_wirelength_um(),
                   threaded.total_wirelength_um());
  EXPECT_EQ(serial.drv_wire, threaded.drv_wire);
  EXPECT_EQ(serial.settled_nodes, threaded.settled_nodes);
  EXPECT_EQ(serial.ripups_total, threaded.ripups_total);
  EXPECT_EQ(serial.region_ripups_total, threaded.region_ripups_total);
  EXPECT_EQ(serial.rrr_passes, threaded.rrr_passes);
  ASSERT_EQ(serial.routes.size(), threaded.routes.size());
  for (std::size_t i = 0; i < serial.routes.size(); ++i) {
    EXPECT_EQ(serial.routes[i].edges, threaded.routes[i].edges)
        << "route " << i << " differs between threads=1 and threads=4";
  }
}

}  // namespace
}  // namespace ffet::pnr
