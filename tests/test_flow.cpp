// End-to-end flow integration tests: the full Fig. 7 pipeline on a reduced
// RV32 core, checking cross-stage invariants and the paper's headline
// qualitative relationships at small scale.

#include <gtest/gtest.h>

#include "flow/flow.h"
#include "flow/report_json.h"

namespace ffet::flow {
namespace {

FlowConfig small_config() {
  FlowConfig cfg;
  cfg.rv32_registers = 8;  // reduced core: fast but structurally complete
  cfg.utilization = 0.65;
  cfg.target_freq_ghz = 1.5;
  return cfg;
}

class FlowTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    FlowConfig f = small_config();
    f.tech_kind = tech::TechKind::Ffet3p5T;
    f.backside_input_fraction = 0.5;
    ffet_ctx_ = prepare_design(f).release();

    FlowConfig c = small_config();
    c.tech_kind = tech::TechKind::Cfet4T;
    cfet_ctx_ = prepare_design(c).release();
  }
  static void TearDownTestSuite() {
    delete ffet_ctx_;
    delete cfet_ctx_;
    ffet_ctx_ = nullptr;
    cfet_ctx_ = nullptr;
  }

  static DesignContext* ffet_ctx_;
  static DesignContext* cfet_ctx_;
};

DesignContext* FlowTest::ffet_ctx_ = nullptr;
DesignContext* FlowTest::cfet_ctx_ = nullptr;

TEST_F(FlowTest, FfetFlowCompletesAndIsValid) {
  const FlowResult r = run_physical(*ffet_ctx_, ffet_ctx_->config);
  EXPECT_TRUE(r.placement_legal) << r.placement_violations;
  EXPECT_TRUE(r.route_valid) << "drv=" << r.drv;
  EXPECT_TRUE(r.valid());
  EXPECT_GT(r.core_area_um2, 1.0);
  EXPECT_GT(r.achieved_freq_ghz, 0.1);
  EXPECT_LT(r.achieved_freq_ghz, 20.0);
  EXPECT_GT(r.power_uw, 10.0);
  EXPECT_GT(r.num_tap_cells, 0);
  EXPECT_GT(r.clock_buffers, 0);
  EXPECT_GT(r.wirelength_back_um, 0.0) << "50/50 pins must route backside";
  EXPECT_GT(r.ir_drop_mv, 0.0);
  EXPECT_LT(r.ir_drop_mv, 70.0) << "IR drop should be a small fraction of VDD";
  EXPECT_EQ(r.placement_drc, 0) << "placer output must pass independent DRC";
  EXPECT_EQ(r.hold_violations, 0) << "hold slack " << r.hold_slack_ps;
  EXPECT_GT(r.hold_slack_ps, 0.0);
}

TEST_F(FlowTest, CfetFlowCompletesFrontsideOnly) {
  const FlowResult r = run_physical(*cfet_ctx_, cfet_ctx_->config);
  EXPECT_TRUE(r.valid());
  EXPECT_DOUBLE_EQ(r.wirelength_back_um, 0.0);
  EXPECT_EQ(r.num_tap_cells, 0);  // CFET: nTSV, not tap cells
}

TEST_F(FlowTest, FfetCoreSmallerThanCfetAtSameUtilization) {
  const FlowResult f = run_physical(*ffet_ctx_, ffet_ctx_->config);
  const FlowResult c = run_physical(*cfet_ctx_, cfet_ctx_->config);
  // Fig. 8: FFET post-P&R core area reduction at the same utilization.
  EXPECT_LT(f.core_area_um2, c.core_area_um2);
  const double reduction = 1.0 - f.core_area_um2 / c.core_area_um2;
  EXPECT_GT(reduction, 0.08);
  EXPECT_LT(reduction, 0.35);
}

TEST_F(FlowTest, DeterministicForSameConfig) {
  const FlowResult a = run_physical(*ffet_ctx_, ffet_ctx_->config);
  const FlowResult b = run_physical(*ffet_ctx_, ffet_ctx_->config);
  EXPECT_DOUBLE_EQ(a.achieved_freq_ghz, b.achieved_freq_ghz);
  EXPECT_DOUBLE_EQ(a.power_uw, b.power_uw);
  EXPECT_EQ(a.drv, b.drv);
  EXPECT_DOUBLE_EQ(a.hpwl_um, b.hpwl_um);
}

TEST_F(FlowTest, UtilizationSweepShrinksArea) {
  FlowConfig cfg = ffet_ctx_->config;
  cfg.utilization = 0.50;
  const FlowResult lo = run_physical(*ffet_ctx_, cfg);
  cfg.utilization = 0.80;
  const FlowResult hi = run_physical(*ffet_ctx_, cfg);
  EXPECT_GT(lo.core_area_um2, hi.core_area_um2);
}

TEST_F(FlowTest, ExcessUtilizationIsInvalid) {
  FlowConfig cfg = ffet_ctx_->config;
  cfg.utilization = 0.95;
  const FlowResult r = run_physical(*ffet_ctx_, cfg);
  EXPECT_FALSE(r.placement_legal);
  EXPECT_FALSE(r.valid());
}

TEST_F(FlowTest, FindMaxUtilizationBrackets) {
  const auto max_util = find_max_utilization(*ffet_ctx_, ffet_ctx_->config,
                                             0.45, 0.95, 0.02);
  ASSERT_TRUE(max_util.has_value());
  EXPECT_GT(*max_util, 0.5);
  EXPECT_LT(*max_util, 0.95);
  // Validity at the reported point.
  FlowConfig at = ffet_ctx_->config;
  at.utilization = *max_util;
  EXPECT_TRUE(run_physical(*ffet_ctx_, at).valid());
}

TEST_F(FlowTest, SimulatedActivityPowerDiffersFromDefault) {
  FlowConfig cfg = ffet_ctx_->config;
  const FlowResult base = run_physical(*ffet_ctx_, cfg);
  cfg.simulate_activity = true;
  cfg.activity_cycles = 48;
  const FlowResult sim = run_physical(*ffet_ctx_, cfg);
  EXPECT_GT(sim.power_uw, 0.0);
  EXPECT_NE(sim.power_uw, base.power_uw);
  // Frequencies identical: activity affects power only.
  EXPECT_DOUBLE_EQ(sim.achieved_freq_ghz, base.achieved_freq_ghz);
}

TEST_F(FlowTest, LabelsAreInformative) {
  FlowConfig cfg;
  cfg.tech_kind = tech::TechKind::Ffet3p5T;
  cfg.front_layers = 6;
  cfg.back_layers = 6;
  cfg.backside_input_fraction = 0.5;
  EXPECT_NE(cfg.label().find("FFET FM6BM6"), std::string::npos);
  EXPECT_NE(cfg.label().find("FP0.5BP0.5"), std::string::npos);
  FlowConfig c;
  c.tech_kind = tech::TechKind::Cfet4T;
  EXPECT_NE(c.label().find("CFET FM12"), std::string::npos);
  EXPECT_EQ(c.label().find("BM"), std::string::npos);
}

TEST_F(FlowTest, LabelEncodesEveryPpaChangingField) {
  FlowConfig base;
  const std::string ref = base.label();
  // Defaults stay byte-identical to the historical label (it keys the
  // characterization cache and the committed bench baselines).
  EXPECT_EQ(ref.find(" ar="), std::string::npos);
  EXPECT_EQ(ref.find(" regs="), std::string::npos);
  EXPECT_EQ(ref.find(" seed="), std::string::npos);
  EXPECT_EQ(ref.find(" act="), std::string::npos);
  EXPECT_EQ(ref.find(" eco="), std::string::npos);

  // Every PPA-changing knob must move the label, so two configs that can
  // produce different results never share a cache key.
  auto differs = [&](auto&& tweak) {
    FlowConfig c;
    tweak(c);
    return c.label() != ref;
  };
  EXPECT_TRUE(differs([](FlowConfig& c) { c.aspect_ratio = 2.0; }));
  EXPECT_TRUE(differs([](FlowConfig& c) { c.rv32_registers = 8; }));
  EXPECT_TRUE(differs([](FlowConfig& c) { c.seed = 3; }));
  EXPECT_TRUE(differs([](FlowConfig& c) { c.simulate_activity = true; }));
  EXPECT_TRUE(differs([](FlowConfig& c) { c.eco_passes = 1; }));
  EXPECT_TRUE(differs([](FlowConfig& c) { c.utilization = 0.55; }));
  EXPECT_TRUE(differs([](FlowConfig& c) { c.target_freq_ghz = 2.0; }));
  EXPECT_TRUE(differs([](FlowConfig& c) { c.front_layers = 6; }));
  EXPECT_TRUE(differs([](FlowConfig& c) { c.back_layers = 6; }));
  EXPECT_TRUE(
      differs([](FlowConfig& c) { c.backside_input_fraction = 0.5; }));
  EXPECT_TRUE(
      differs([](FlowConfig& c) { c.tech_kind = tech::TechKind::Cfet4T; }));

  FlowConfig eco;
  eco.eco_passes = 2;
  EXPECT_NE(eco.label().find("eco=2"), std::string::npos);
}

TEST_F(FlowTest, PreparedContextReflectsPinConfig) {
  EXPECT_NEAR(ffet_ctx_->realized_backside_pin_fraction, 0.5, 0.05);
  EXPECT_DOUBLE_EQ(cfet_ctx_->realized_backside_pin_fraction, 0.0);
  EXPECT_GT(ffet_ctx_->synth.est_freq_ghz, 0.0);
}

TEST_F(FlowTest, JsonReportWellFormed) {
  const FlowResult r = run_physical(*ffet_ctx_, ffet_ctx_->config);
  const std::string j = to_json(r);
  // Shape checks: one object, balanced braces, key fields present.
  EXPECT_EQ(std::count(j.begin(), j.end(), '{'), 1);
  EXPECT_EQ(std::count(j.begin(), j.end(), '}'), 1);
  for (const char* key :
       {"\"achieved_freq_ghz\"", "\"power_uw\"", "\"core_area_um2\"",
        "\"valid\"", "\"drv\"", "\"label\"", "\"hold_slack_ps\""}) {
    EXPECT_NE(j.find(key), std::string::npos) << key;
  }
  // Array form.
  const std::string arr = to_json(std::vector<FlowResult>{r, r});
  EXPECT_EQ(arr.front(), '[');
  EXPECT_EQ(arr.back(), ']');
  EXPECT_EQ(std::count(arr.begin(), arr.end(), '{'), 2);
}

}  // namespace
}  // namespace ffet::flow
