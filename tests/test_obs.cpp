// test_obs — the instrumentation layer: span tracer, metrics registry,
// deterministic serialization, and the zero-overhead disabled path.
//
// The obs state is process-global, so every test that enables tracing or
// metrics restores the disabled default before returning (ObsGuard).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/numfmt.h"
#include "obs/obs.h"
#include "runtime/thread_pool.h"

namespace ffet {
namespace {

/// Enable tracing/metrics for one test and restore the disabled default
/// (with cleared buffers) on scope exit.
class ObsGuard {
 public:
  ObsGuard(bool tracing, bool metrics) {
    obs::set_tracing(tracing);
    obs::set_metrics(metrics);
    obs::clear_trace();
    obs::reset_metrics();
  }
  ~ObsGuard() {
    obs::set_tracing(false);
    obs::set_metrics(false);
    obs::clear_trace();
    obs::reset_metrics();
  }
};

// --- spans ------------------------------------------------------------------

TEST(Trace, RecordsNestedSpansOnOneThread) {
  ObsGuard g(true, false);
  {
    FFET_TRACE_SCOPE("outer");
    FFET_TRACE_SCOPE("inner.", 42);
  }
  const auto events = obs::snapshot_trace();
  ASSERT_EQ(events.size(), 2u);
  // Same lane, sorted by start: outer begins first and contains inner.
  const auto& outer = events[0].name == "outer" ? events[0] : events[1];
  const auto& inner = events[0].name == "outer" ? events[1] : events[0];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(inner.name, "inner.42");
  EXPECT_EQ(outer.tid, inner.tid);
  EXPECT_LE(outer.start_ns, inner.start_ns);
  EXPECT_GE(outer.start_ns + outer.dur_ns, inner.start_ns + inner.dur_ns);
}

TEST(Trace, PoolWorkersGetNamedLanes) {
  ObsGuard g(true, false);
  {
    runtime::ThreadPool pool(2);
    for (int i = 0; i < 8; ++i) {
      pool.submit([] { FFET_TRACE_SCOPE("work"); });
    }
  }  // pool destructor drains every queued task and joins

  const auto events = obs::snapshot_trace();
  int worker_spans = 0;
  int task_spans = 0;
  for (const auto& e : events) {
    if (e.thread.rfind("pool.worker.", 0) == 0) {
      ++worker_spans;
      if (e.name == "pool.task") ++task_spans;
    }
  }
  // Every task span and every user span sits on a named worker lane.
  EXPECT_GE(task_spans, 8);
  EXPECT_GE(worker_spans, 16);
}

TEST(Trace, SpanNestsInsidePoolTaskSpan) {
  ObsGuard g(true, false);
  {
    runtime::ThreadPool pool(1);
    pool.submit([] { FFET_TRACE_SCOPE("user.work"); });
  }  // joined: both spans are recorded

  const auto events = obs::snapshot_trace();
  const obs::TraceEventView* task = nullptr;
  const obs::TraceEventView* user = nullptr;
  for (const auto& e : events) {
    if (e.name == "pool.task") task = &e;
    if (e.name == "user.work") user = &e;
  }
  ASSERT_NE(task, nullptr);
  ASSERT_NE(user, nullptr);
  EXPECT_EQ(task->tid, user->tid);
  EXPECT_LE(task->start_ns, user->start_ns);
  EXPECT_GE(task->start_ns + task->dur_ns, user->start_ns + user->dur_ns);
}

TEST(Trace, DisabledRecordsNothing) {
  ObsGuard g(false, false);
  {
    FFET_TRACE_SCOPE("invisible");
    FFET_TRACE_SCOPE("also.", 1, ".invisible");
  }
  EXPECT_TRUE(obs::snapshot_trace().empty());
}

TEST(Trace, JsonIsValidAndByteStable) {
  ObsGuard g(true, false);
  obs::set_thread_name("main");
  {
    FFET_TRACE_SCOPE("stage.a");
    FFET_TRACE_SCOPE("stage.b");
  }
  obs::set_tracing(false);  // freeze the buffers

  const std::string a = obs::trace_to_json();
  const std::string b = obs::trace_to_json();
  EXPECT_EQ(a, b) << "same trace must serialize to identical bytes";

  // Structural checks of the Chrome trace-event format.
  EXPECT_EQ(a.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(a.substr(a.size() - 3), "]}\n");
  EXPECT_NE(a.find("\"ph\":\"M\""), std::string::npos);  // lane metadata
  EXPECT_NE(a.find("\"ph\":\"X\""), std::string::npos);  // complete events
  EXPECT_NE(a.find("\"stage.a\""), std::string::npos);
  EXPECT_NE(a.find("\"main\""), std::string::npos);

  // Balanced braces/brackets outside strings => parseable structure.
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const char c = a[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(Trace, DumpWritesFile) {
  ObsGuard g(true, false);
  { FFET_TRACE_SCOPE("dumped"); }
  const std::string path = ::testing::TempDir() + "ffet_test_trace.json";
  ASSERT_TRUE(obs::dump_trace(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  ASSERT_GT(n, 0u);
  EXPECT_EQ(std::string(buf).rfind("{\"traceEvents\":[", 0), 0u);
}

// --- metrics ----------------------------------------------------------------

TEST(Metrics, HistogramBucketMath) {
  using H = obs::Histogram;
  // Bucket i spans [2^(i-9), 2^(i-8)); bucket 9 is [1, 2).
  EXPECT_EQ(H::bucket_index(1.0), 9);
  EXPECT_EQ(H::bucket_index(1.5), 9);
  EXPECT_EQ(H::bucket_index(2.0), 10);
  EXPECT_EQ(H::bucket_index(0.5), 8);
  EXPECT_EQ(H::bucket_index(1024.0), 19);
  // Clamping: zero/negatives below, huge values above.
  EXPECT_EQ(H::bucket_index(0.0), 0);
  EXPECT_EQ(H::bucket_index(-3.0), 0);
  EXPECT_EQ(H::bucket_index(1e300), H::kBuckets - 1);
  // Lower bounds are consistent with the index mapping.
  EXPECT_EQ(H::bucket_lower_bound(0), 0.0);
  EXPECT_EQ(H::bucket_lower_bound(9), 1.0);
  EXPECT_EQ(H::bucket_lower_bound(10), 2.0);
  for (int i = 1; i < H::kBuckets - 1; ++i) {
    const double lo = H::bucket_lower_bound(i);
    EXPECT_EQ(H::bucket_index(lo), i) << "lower bound of bucket " << i;
    EXPECT_EQ(H::bucket_index(std::nextafter(lo, 0.0)), i - 1);
  }
}

TEST(Metrics, HistogramObserveTracksExactStats) {
  ObsGuard g(false, true);
  obs::Histogram& h = obs::histogram("test.hist");
  h.observe(1.0);
  h.observe(3.0);
  h.observe(0.25);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 4.25);
  EXPECT_DOUBLE_EQ(h.min(), 0.25);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
  EXPECT_DOUBLE_EQ(h.mean(), 4.25 / 3.0);
  EXPECT_EQ(h.bucket(obs::Histogram::bucket_index(1.0)), 1u);
  EXPECT_EQ(h.bucket(obs::Histogram::bucket_index(3.0)), 1u);
  EXPECT_EQ(h.bucket(obs::Histogram::bucket_index(0.25)), 1u);
}

TEST(Metrics, HistogramSnapshotQuantiles) {
  obs::Histogram h;  // standalone: records regardless of the enable flags
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.5), 0.0);

  // A single observation is every quantile (the clamp to [min, max] makes
  // the in-bucket interpolation exact here).
  h.observe(5.0);
  {
    const obs::HistSnapshot s = h.snapshot();
    EXPECT_EQ(s.count, 1u);
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 5.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  }

  // A spread of values: quantiles are bucket estimates, so assert order
  // statistics and bounds rather than exact ranks.
  h.reset();
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  {
    const obs::HistSnapshot s = h.snapshot();
    EXPECT_EQ(s.count, 100u);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 100.0);
    EXPECT_DOUBLE_EQ(s.mean(), 50.5);
    const double p25 = s.quantile(0.25), p50 = s.quantile(0.5),
                 p95 = s.quantile(0.95);
    EXPECT_LE(p25, p50);
    EXPECT_LE(p50, p95);
    EXPECT_GE(p25, s.min);
    EXPECT_LE(p95, s.max);
    // p50 of 1..100 lands in the [32, 64) bucket.
    EXPECT_GE(p50, 32.0);
    EXPECT_LT(p50, 64.0);
  }

  // Open-ended top bucket is capped at the observed max, not infinity.
  h.reset();
  h.observe(1e300);
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(1.0), 1e300);
}

TEST(Trace, EpochOverridePinsACrossProcessTimeline) {
  // The service forks workers and ships the daemon's raw epoch in the job
  // frame; set_trace_epoch_raw_ns() must take effect exactly and restore
  // cleanly (steady_clock is machine-wide, so sharing the raw value aligns
  // both processes' span timestamps).
  const std::uint64_t saved = obs::trace_epoch_raw_ns();
  EXPECT_NE(saved, 0u);  // reading pins it
  obs::set_trace_epoch_raw_ns(saved > 1000000 ? saved - 1000000 : saved + 1);
  EXPECT_EQ(obs::trace_epoch_raw_ns(),
            saved > 1000000 ? saved - 1000000 : saved + 1);
  // trace_now_ns is relative to the (new) epoch and monotone.
  const std::uint64_t a = obs::trace_now_ns();
  const std::uint64_t b = obs::trace_now_ns();
  EXPECT_GE(b, a);
  // 0 is the "unpinned" sentinel on the wire; setting it must not leave the
  // epoch genuinely unpinned (a later lazy pin would tear the timeline).
  obs::set_trace_epoch_raw_ns(0);
  EXPECT_NE(obs::trace_epoch_raw_ns(), 0u);
  obs::set_trace_epoch_raw_ns(saved);
  EXPECT_EQ(obs::trace_epoch_raw_ns(), saved);
}

TEST(Metrics, ConcurrentRecordingIsExact) {
  ObsGuard g(false, true);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  obs::Counter& c = obs::counter("test.concurrent.counter");
  obs::Histogram& h = obs::histogram("test.concurrent.hist");
  obs::Gauge& gmax = obs::gauge("test.concurrent.max");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add(1);
        h.observe(1.0);
        gmax.set_max(static_cast<double>(t * kPerThread + i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(gmax.value(),
                   static_cast<double>(kThreads * kPerThread - 1));
}

TEST(Metrics, DisabledMacrosTouchNothing) {
  ObsGuard g(false, false);
  FFET_METRIC_ADD("test.disabled.counter", 7);
  FFET_METRIC_OBSERVE("test.disabled.hist", 3.5);
  FFET_METRIC_GAUGE_MAX("test.disabled.gauge", 9.0);
  const auto snap = obs::metrics_snapshot();
  for (const auto& [name, v] : snap.counters) {
    EXPECT_NE(name.rfind("test.disabled.", 0), 0u) << name;
  }
  for (const auto& h : snap.histograms) {
    EXPECT_NE(h.name.rfind("test.disabled.", 0), 0u) << h.name;
  }
}

TEST(Metrics, JsonIsDeterministic) {
  ObsGuard g(false, true);
  obs::counter("test.json.b").add(2);
  obs::counter("test.json.a").add(1);
  obs::histogram("test.json.h").observe(1.25);
  const std::string a = obs::metrics_to_json();
  const std::string b = obs::metrics_to_json();
  EXPECT_EQ(a, b);
  // Name-sorted: a before b.
  EXPECT_LT(a.find("test.json.a"), a.find("test.json.b"));
  EXPECT_NE(a.find("\"test.json.h\""), std::string::npos);
}

// --- numfmt -----------------------------------------------------------------

TEST(NumFmt, ToCharsRoundTripAndNonFinite) {
  EXPECT_EQ(obs::format_double(0.25), "0.25");
  EXPECT_EQ(obs::format_double(1.0), "1");
  EXPECT_EQ(obs::format_double(-3.5), "-3.5");
  EXPECT_EQ(obs::format_double(std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(obs::format_double(std::nan("")), "null");
  // Shortest-round-trip: the classic float-drift case stays compact.
  EXPECT_EQ(obs::format_double(0.1), "0.1");
}

TEST(NumFmt, EscapesJsonStrings) {
  std::string out;
  obs::append_escaped(out, "a\"b\\c\nd\te");
  EXPECT_EQ(out, "a\\\"b\\\\c\\nd\\te");
  out.clear();
  obs::append_escaped(out, std::string("\x01", 1));
  EXPECT_EQ(out, "\\u0001");
}

// --- resource probe ---------------------------------------------------------

/// Pin the resource probe for one test and restore the enabled default
/// (the probe, unlike tracing/metrics, defaults ON) on scope exit.
class ResourceGuard {
 public:
  explicit ResourceGuard(bool on) { obs::set_resource(on); }
  ~ResourceGuard() { obs::set_resource(true); }
};

TEST(Resource, SampleReportsPositiveRssWhenEnabled) {
  ResourceGuard g(true);
  const obs::ResourceSample s = obs::sample_resources();
#if defined(__linux__)
  EXPECT_GT(s.peak_rss_kb, 0);
  EXPECT_GT(s.current_rss_kb, 0);
  EXPECT_GE(s.peak_rss_kb, s.current_rss_kb) << "HWM is a high-water mark";
  EXPECT_GT(s.minor_faults, 0) << "any live process has reclaimed pages";
  EXPECT_GT(obs::sample_current_rss_kb(), 0);
#else
  // Non-Linux: the sources may be absent, but the call must not crash and
  // must never report negative values.
  EXPECT_GE(s.peak_rss_kb, 0);
  EXPECT_GE(s.current_rss_kb, 0);
#endif
}

TEST(Resource, PeakIsMonotonicAcrossAllocations) {
  ResourceGuard g(true);
  const obs::ResourceSample before = obs::sample_resources();
  // Touch a few MB so the high-water mark cannot shrink below it.
  std::vector<char> ballast(4 << 20, 1);
  EXPECT_GT(ballast[ballast.size() / 2], 0);
  const obs::ResourceSample after = obs::sample_resources();
  EXPECT_GE(after.peak_rss_kb, before.peak_rss_kb);
  EXPECT_GE(after.minor_faults, before.minor_faults);
}

TEST(Resource, DisabledSamplesAreAllZero) {
  ResourceGuard g(false);
  EXPECT_FALSE(obs::resource_enabled());
  const obs::ResourceSample s = obs::sample_resources();
  EXPECT_EQ(s.peak_rss_kb, 0);
  EXPECT_EQ(s.current_rss_kb, 0);
  EXPECT_EQ(s.minor_faults, 0);
  EXPECT_EQ(s.major_faults, 0);
  EXPECT_EQ(obs::sample_current_rss_kb(), 0);
}

TEST(Resource, ToggleIsRaceFreeUnderConcurrentSampling) {
  // TSan checks the relaxed-atomic enable flag against concurrent
  // samplers (the same contract the tracing/metrics flags have).
  ResourceGuard g(true);
  std::atomic<bool> stop{false};
  std::thread toggler([&] {
    for (int i = 0; i < 200; ++i) obs::set_resource(i % 2 == 0);
    stop.store(true);
  });
  long long sink = 0;
  while (!stop.load()) sink += obs::sample_current_rss_kb();
  toggler.join();
  EXPECT_GE(sink, 0);
}

}  // namespace
}  // namespace ffet
