// Unit tests for the analytic library characterizer — including the Table I
// relationships between the FFET and CFET libraries.

#include <gtest/gtest.h>

#include "liberty/characterize.h"
#include "stdcell/nldm.h"
#include "stdcell/stdcell.h"
#include "tech/tech.h"

namespace ffet::liberty {
namespace {

using stdcell::Library;
using stdcell::PinDir;

class CharacterizeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    characterize_library(ffet_lib_);
    characterize_library(cfet_lib_);
  }

  tech::Technology ffet_tech_ = tech::make_ffet_3p5t();
  tech::Technology cfet_tech_ = tech::make_cfet_4t();
  Library ffet_lib_ = stdcell::build_library(ffet_tech_);
  Library cfet_lib_ = stdcell::build_library(cfet_tech_);
};

TEST_F(CharacterizeTest, EveryLogicCellGetsModelAndPinCaps) {
  for (const auto& cell : ffet_lib_.cells()) {
    if (cell->physical_only()) continue;
    ASSERT_NE(cell->timing_model(), nullptr) << cell->name();
    EXPECT_GT(cell->timing_model()->leakage_nw, 0.0) << cell->name();
    for (const auto& pin : cell->pins()) {
      if (pin.dir == PinDir::Output) continue;
      EXPECT_GT(pin.cap_ff, 0.0) << cell->name() << "/" << pin.name;
      EXPECT_LT(pin.cap_ff, 20.0) << cell->name() << "/" << pin.name;
    }
  }
}

TEST_F(CharacterizeTest, OneArcPerDataInput) {
  const auto& nand2 = ffet_lib_.at("NAND2D1");
  EXPECT_EQ(nand2.timing_model()->arcs.size(), 2u);
  const auto& dff = ffet_lib_.at("DFFD1");
  // Sequential: only the CP->Q arc.
  EXPECT_EQ(dff.timing_model()->arcs.size(), 1u);
  EXPECT_GT(dff.timing_model()->setup_ps, 0.0);
  EXPECT_GT(dff.timing_model()->hold_ps, 0.0);
  EXPECT_GT(dff.timing_model()->setup_ps, dff.timing_model()->hold_ps);
}

TEST_F(CharacterizeTest, DelayIncreasesWithLoadAndSlew) {
  const auto k_light = measure_kpi(ffet_lib_.at("INVD1"), 5.0, 1.0);
  const auto k_heavy = measure_kpi(ffet_lib_.at("INVD1"), 5.0, 16.0);
  const auto k_slow = measure_kpi(ffet_lib_.at("INVD1"), 80.0, 1.0);
  EXPECT_GT(k_heavy.rise_delay_ps, k_light.rise_delay_ps);
  EXPECT_GT(k_heavy.fall_delay_ps, k_light.fall_delay_ps);
  EXPECT_GT(k_heavy.rise_trans_ps, k_light.rise_trans_ps);
  EXPECT_GT(k_slow.rise_delay_ps, k_light.rise_delay_ps);
}

TEST_F(CharacterizeTest, StrongerDrivesAreFasterAtFixedLoad) {
  const auto d1 = measure_kpi(ffet_lib_.at("INVD1"), 10.0, 8.0);
  const auto d2 = measure_kpi(ffet_lib_.at("INVD2"), 10.0, 8.0);
  const auto d4 = measure_kpi(ffet_lib_.at("INVD4"), 10.0, 8.0);
  EXPECT_GT(d1.fall_delay_ps, d2.fall_delay_ps);
  EXPECT_GT(d2.fall_delay_ps, d4.fall_delay_ps);
}

TEST_F(CharacterizeTest, DelayMagnitudesPlausibleFor5nm) {
  // An FO4-ish loaded inverter at a 5 nm-class node: a few ps to tens of ps.
  const auto k = measure_kpi(ffet_lib_.at("INVD1"), 10.0, 2.0);
  EXPECT_GT(k.fall_delay_ps, 1.0);
  EXPECT_LT(k.fall_delay_ps, 50.0);
}

// --- Table I relationships --------------------------------------------------

TEST_F(CharacterizeTest, TableI_LeakageIdentical) {
  for (const KpiDiff& d : compare_libraries(ffet_lib_, cfet_lib_)) {
    EXPECT_DOUBLE_EQ(d.leakage_power_pct, 0.0) << d.cell;
  }
}

TEST_F(CharacterizeTest, TableI_FfetTimingFasterForInvBuf) {
  for (const char* name : {"INVD1", "INVD2", "INVD4", "BUFD1", "BUFD2",
                           "BUFD4"}) {
    const KpiDiff d =
        compare_cell(ffet_lib_.at(name), cfet_lib_.at(name));
    EXPECT_LT(d.fall_timing_pct, 0.0) << name;
    EXPECT_LT(d.fall_timing_pct, -1.0) << name;
    EXPECT_GT(d.fall_timing_pct, -30.0) << name;
  }
}

TEST_F(CharacterizeTest, TableI_FallAdvantageExceedsRise) {
  // Paper: fall timing gains (-8..-16%) are larger than rise gains.
  for (const char* name : {"INVD1", "BUFD2", "BUFD4"}) {
    const KpiDiff d =
        compare_cell(ffet_lib_.at(name), cfet_lib_.at(name));
    EXPECT_LT(d.fall_timing_pct, d.rise_timing_pct) << name;
  }
}

TEST_F(CharacterizeTest, TableI_BufferAdvantageGrowsWithDrive) {
  const KpiDiff d1 = compare_cell(ffet_lib_.at("BUFD1"), cfet_lib_.at("BUFD1"));
  const KpiDiff d4 = compare_cell(ffet_lib_.at("BUFD4"), cfet_lib_.at("BUFD4"));
  EXPECT_LT(d4.fall_timing_pct, d1.fall_timing_pct)
      << "BUFD4 should gain more than BUFD1 (Table I trend)";
  const KpiDiff i1 = compare_cell(ffet_lib_.at("INVD1"), cfet_lib_.at("INVD1"));
  const KpiDiff i4 = compare_cell(ffet_lib_.at("INVD4"), cfet_lib_.at("INVD4"));
  EXPECT_LT(i4.fall_timing_pct, i1.fall_timing_pct);
  // Magnitudes in the paper's Table I band: single digits at D1, growing to
  // low teens at D4.
  EXPECT_NEAR(i1.fall_timing_pct, -8.0, 4.0);
  EXPECT_NEAR(i4.fall_timing_pct, -13.0, 5.0);
}

TEST_F(CharacterizeTest, TableI_InvPowerRoughlyNeutralBufPowerBetter) {
  // Paper: INV transition power +0.2..0.3% (slightly worse, dual-sided
  // output pin), BUF -3..-12% (better, smaller intra-cell parasitics).
  for (const char* name : {"INVD1", "INVD2", "INVD4"}) {
    const KpiDiff d =
        compare_cell(ffet_lib_.at(name), cfet_lib_.at(name));
    EXPECT_GT(d.transition_power_pct, -2.0) << name;
    EXPECT_LT(d.transition_power_pct, 3.0) << name;
  }
  for (const char* name : {"BUFD2", "BUFD4"}) {
    const KpiDiff d =
        compare_cell(ffet_lib_.at(name), cfet_lib_.at(name));
    EXPECT_LT(d.transition_power_pct, -0.5) << name;
  }
  // And the buffer advantage exceeds the inverter's at the same drive.
  EXPECT_LT(compare_cell(ffet_lib_.at("BUFD1"), cfet_lib_.at("BUFD1"))
                .transition_power_pct,
            compare_cell(ffet_lib_.at("INVD1"), cfet_lib_.at("INVD1"))
                    .transition_power_pct +
                0.5);
}

TEST_F(CharacterizeTest, TableI_TransitionsImprove) {
  for (const char* name : {"BUFD1", "BUFD2", "BUFD4"}) {
    const KpiDiff d =
        compare_cell(ffet_lib_.at(name), cfet_lib_.at(name));
    EXPECT_LT(d.fall_transition_pct, 0.0) << name;
  }
}

TEST_F(CharacterizeTest, CompareLibrariesCoversLogicCells) {
  const auto diffs = compare_libraries(ffet_lib_, cfet_lib_);
  EXPECT_GT(diffs.size(), 20u);
  for (const auto& d : diffs) {
    EXPECT_NE(d.cell.find("FILLER"), 0u);
    EXPECT_NE(d.cell, "TAPCELL");
  }
}

TEST_F(CharacterizeTest, RejectsDegenerateAxes) {
  CharacterizeOptions bad;
  bad.slew_axis_ps = {10.0};
  Library lib = stdcell::build_library(ffet_tech_);
  EXPECT_THROW(characterize_library(lib, bad), std::invalid_argument);
}

TEST_F(CharacterizeTest, PinConfigDoesNotChangeTiming) {
  // Paper Sec. IV: "the characteristics of the same cell remain the same
  // across different input pin configurations".
  stdcell::PinConfig cfg;
  cfg.backside_input_fraction = 0.5;
  Library redistributed = stdcell::build_library(ffet_tech_, cfg);
  characterize_library(redistributed);
  const auto base = measure_kpi(ffet_lib_.at("NAND2D1"), 10.0, 4.0);
  const auto redis = measure_kpi(redistributed.at("NAND2D1"), 10.0, 4.0);
  EXPECT_DOUBLE_EQ(base.rise_delay_ps, redis.rise_delay_ps);
  EXPECT_DOUBLE_EQ(base.transition_energy_fj, redis.transition_energy_fj);
}

}  // namespace
}  // namespace ffet::liberty
