// Tests for the post-route ECO engine (src/opt) and its supporting
// incremental primitives: the IncrementalLegalizer claim/release model and
// the run_eco accept/revert loop on a routed, extracted design.  The ECO
// loop is serial and all its primitives are thread-invariant, so the same
// inputs must produce bit-identical results at any thread count — checked
// here and run under TSan in CI.

#include <gtest/gtest.h>

#include <vector>

#include "extract/extract.h"
#include "io/def.h"
#include "liberty/characterize.h"
#include "netlist/builder.h"
#include "opt/eco.h"
#include "pnr/cts.h"
#include "pnr/floorplan.h"
#include "pnr/placement.h"
#include "pnr/powerplan.h"
#include "pnr/router.h"
#include "sta/sta.h"

namespace ffet::opt {
namespace {

using netlist::Builder;
using netlist::Bus;
using netlist::InstId;
using netlist::NetId;

/// Routed + extracted accumulator on the dual-sided library — everything
/// run_eco needs, built once per construction so two Fixtures are
/// bit-identical inputs.
struct Fixture {
  tech::Technology tech = tech::make_ffet_3p5t();
  stdcell::Library lib;
  netlist::Netlist nl;
  pnr::Floorplan fp;
  pnr::PowerPlan pp;
  pnr::CtsResult cts;
  pnr::RouteResult routes;
  extract::RcNetlist rc;

  static stdcell::Library make_lib(const tech::Technology& tech) {
    stdcell::PinConfig pins;
    pins.backside_input_fraction = 0.5;
    stdcell::Library lib = stdcell::build_library(tech, pins);
    liberty::characterize_library(lib);
    return lib;
  }

  static pnr::FloorplanOptions fopts() {
    pnr::FloorplanOptions fo;
    fo.target_utilization = 0.6;
    return fo;
  }

  static netlist::Netlist build_nl(const stdcell::Library& lib) {
    Builder b("acc", &lib);
    const NetId clk = b.input("clk");
    b.netlist().mark_clock_net(clk);
    const NetId rst_n = b.input("rst_n");
    const Bus din = b.input_bus("din", 8);
    const Bus acc_d = b.wires(8, "acc_d");
    const Bus acc_q = b.dffr_bus(acc_d, clk, rst_n);
    const auto [sum, carry] = b.add(acc_q, din, b.zero());
    for (int i = 0; i < 8; ++i) {
      b.drive(acc_d[static_cast<std::size_t>(i)], "BUFD1",
              {sum[static_cast<std::size_t>(i)]});
    }
    b.output_bus("acc", acc_q);
    b.output("carry", carry);
    NetId parity = acc_q[0];
    for (int i = 1; i < 8; ++i) {
      parity = b.xor2(parity, acc_q[static_cast<std::size_t>(i)]);
    }
    b.output("parity", parity);
    return b.take();
  }

  Fixture()
      : lib(make_lib(tech)), nl(build_nl(lib)),
        fp(pnr::make_floorplan(nl, tech, fopts())),
        pp(pnr::build_power_plan(nl, fp, lib)) {
    pnr::place(nl, fp, pp);
    cts = pnr::build_clock_tree(nl, fp);
    routes = pnr::route_design(nl, fp);
    const io::Def merged =
        io::merge_defs(io::build_def(nl, routes, tech::Side::Front),
                       io::build_def(nl, routes, tech::Side::Back));
    rc = extract::extract_rc(merged, nl, tech);
  }
};

TEST(IncrementalLegalizerTest, ReleaseClaimOccupyRoundTrip) {
  Fixture f;
  pnr::IncrementalLegalizer leg(f.nl, f.fp, f.pp);

  // Pick a placed movable cell; free its slot, then ask for the nearest
  // legal slot at the same spot — the just-freed span must come back.
  InstId victim = netlist::kNoInst;
  for (InstId i = 0; i < f.nl.num_instances(); ++i) {
    const netlist::Instance& inst = f.nl.instance(i);
    if (!inst.fixed && !inst.type->physical_only()) {
      victim = i;
      break;
    }
  }
  ASSERT_NE(victim, netlist::kNoInst);
  const netlist::Instance& inst = f.nl.instance(victim);
  const geom::Point home = inst.pos;
  const geom::Nm w = inst.type->width();

  leg.release(home, w);
  const auto back = leg.claim(w, home);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->x, home.x);
  EXPECT_EQ(back->y, home.y);

  // Occupied again now: the next claim at the same spot must land
  // somewhere else (or fail), never on the taken span.
  const auto other = leg.claim(w, home);
  if (other.has_value()) {
    EXPECT_FALSE(other->x == home.x && other->y == home.y);
    // Exact revert: release what we claimed, re-occupying leaves the model
    // consistent for a final claim round-trip.
    leg.release(*other, w);
    leg.occupy(*other, w);
  }
}

TEST(EcoTest, ImprovesTimingWithinPowerBudget) {
  Fixture f;
  EcoOptions eo;
  eo.passes = 2;
  EcoReport rep =
      run_eco(f.nl, f.fp, f.pp, f.routes, f.rc, f.cts.sink_latency_ps, eo);

  EXPECT_EQ(rep.passes_run, 2);
  EXPECT_EQ(rep.attempted, rep.accepted + rep.reverted);
  EXPECT_EQ(rep.accepted,
            rep.upsized + rep.downsized + rep.buffers + rep.pin_flips);
  // The accept rule forbids WNS regressions, so post <= pre always holds.
  EXPECT_LE(rep.post_wns_ps, rep.pre_wns_ps);
  EXPECT_GE(rep.post_freq_ghz, rep.pre_freq_ghz);
  // Every trial runs exactly one incremental update (+1 on revert).
  EXPECT_GE(rep.sta_updates, rep.attempted);
  EXPECT_GT(rep.full_sta_runs, 0);

  // The updated design must still be structurally sound and analyzable.
  EXPECT_TRUE(f.nl.validate().empty());
  sta::Sta check(&f.nl, &f.rc);
  const sta::TimingReport t = check.analyze_timing(&f.cts.sink_latency_ps);
  EXPECT_GT(t.achieved_freq_ghz, 0.0);
}

TEST(EcoTest, DeterministicAcrossThreadCounts) {
  Fixture a, b;
  EcoOptions e1, e4;
  e1.passes = 2;
  e1.threads = 1;
  e4.passes = 2;
  e4.threads = 4;
  const EcoReport r1 =
      run_eco(a.nl, a.fp, a.pp, a.routes, a.rc, a.cts.sink_latency_ps, e1);
  const EcoReport r4 =
      run_eco(b.nl, b.fp, b.pp, b.routes, b.rc, b.cts.sink_latency_ps, e4);

  EXPECT_EQ(r1.attempted, r4.attempted);
  EXPECT_EQ(r1.accepted, r4.accepted);
  EXPECT_EQ(r1.upsized, r4.upsized);
  EXPECT_EQ(r1.downsized, r4.downsized);
  EXPECT_EQ(r1.buffers, r4.buffers);
  EXPECT_EQ(r1.pin_flips, r4.pin_flips);
  EXPECT_EQ(r1.post_wns_ps, r4.post_wns_ps);  // bitwise
  EXPECT_EQ(r1.est_power_delta_uw, r4.est_power_delta_uw);

  // The optimized designs themselves must match, not just the reports.
  ASSERT_EQ(a.nl.num_instances(), b.nl.num_instances());
  for (InstId i = 0; i < a.nl.num_instances(); ++i) {
    EXPECT_EQ(a.nl.instance(i).type->name(), b.nl.instance(i).type->name());
    EXPECT_EQ(a.nl.instance(i).pos.x, b.nl.instance(i).pos.x);
    EXPECT_EQ(a.nl.instance(i).pos.y, b.nl.instance(i).pos.y);
  }
  EXPECT_EQ(a.routes.wirelength_front_um, b.routes.wirelength_front_um);
  EXPECT_EQ(a.routes.wirelength_back_um, b.routes.wirelength_back_um);
  EXPECT_EQ(a.routes.drv_estimate, b.routes.drv_estimate);
  ASSERT_EQ(a.rc.num_trees(), b.rc.num_trees());
  for (std::size_t n = 0; n < a.rc.num_trees(); ++n) {
    const netlist::NetId id = static_cast<netlist::NetId>(n);
    EXPECT_EQ(a.rc.tree(id).total_cap_ff, b.rc.tree(id).total_cap_ff) << n;
  }
}

TEST(EcoTest, AllRevertedTrialsRestoreStateBitExactly) {
  Fixture f;
  const Fixture pristine;  // identical construction = identical state

  EcoOptions eo;
  eo.passes = 2;
  eo.min_gain_ps = 1e9;          // no speed trial can ever be accepted
  eo.downsize_margin_ps = 1e9;   // and no downsize candidates exist
  const EcoReport rep =
      run_eco(f.nl, f.fp, f.pp, f.routes, f.rc, f.cts.sink_latency_ps, eo);

  EXPECT_EQ(rep.accepted, 0);
  EXPECT_GT(rep.attempted, 0);
  EXPECT_EQ(rep.reverted, rep.attempted);
  EXPECT_EQ(rep.post_wns_ps, rep.pre_wns_ps);  // bitwise

  // Every trial reverted, so the design must be byte-for-byte the
  // pristine one: netlist shape, placement, routes, and parasitics.
  ASSERT_EQ(f.nl.num_instances(), pristine.nl.num_instances());
  ASSERT_EQ(f.nl.num_nets(), pristine.nl.num_nets());
  for (InstId i = 0; i < f.nl.num_instances(); ++i) {
    EXPECT_EQ(f.nl.instance(i).type->name(), pristine.nl.instance(i).type->name())
        << i;
    EXPECT_EQ(f.nl.instance(i).pos.x, pristine.nl.instance(i).pos.x) << i;
    EXPECT_EQ(f.nl.instance(i).pos.y, pristine.nl.instance(i).pos.y) << i;
  }
  for (NetId n = 0; n < f.nl.num_nets(); ++n) {
    EXPECT_EQ(f.nl.net(n).sinks, pristine.nl.net(n).sinks) << n;
  }
  EXPECT_EQ(f.routes.wirelength_front_um, pristine.routes.wirelength_front_um);
  EXPECT_EQ(f.routes.wirelength_back_um, pristine.routes.wirelength_back_um);
  EXPECT_EQ(f.routes.drv_estimate, pristine.routes.drv_estimate);
  ASSERT_EQ(f.rc.num_trees(), pristine.rc.num_trees());
  for (std::size_t n = 0; n < f.rc.num_trees(); ++n) {
    const netlist::NetId id = static_cast<netlist::NetId>(n);
    const extract::RcTreeView fa = f.rc.tree(id);
    const extract::RcTreeView pa = pristine.rc.tree(id);
    EXPECT_EQ(fa.total_cap_ff, pa.total_cap_ff) << n;
    ASSERT_EQ(fa.sink_nodes.size(), pa.sink_nodes.size()) << n;
    for (std::size_t s = 0; s < fa.sink_nodes.size(); ++s) {
      EXPECT_EQ(fa.sink_nodes[s], pa.sink_nodes[s]) << n;
    }
  }
}

TEST(EcoTest, ZeroBudgetDoesNothing) {
  Fixture f;
  const double wl_front = f.routes.wirelength_front_um;
  const int insts = f.nl.num_instances();
  EcoOptions eo;
  eo.passes = 1;
  eo.max_transforms = 0;  // budget exhausted before the first trial
  const EcoReport rep =
      run_eco(f.nl, f.fp, f.pp, f.routes, f.rc, f.cts.sink_latency_ps, eo);
  EXPECT_EQ(rep.attempted, 0);
  EXPECT_EQ(rep.accepted, 0);
  EXPECT_EQ(f.nl.num_instances(), insts);
  EXPECT_EQ(f.routes.wirelength_front_um, wl_front);
  EXPECT_EQ(rep.post_wns_ps, rep.pre_wns_ps);
}

}  // namespace
}  // namespace ffet::opt
