// Tests for dual-sided RC extraction: tree structure, Elmore properties,
// the Drain-Merge front/back junction, and consistency with the merged DEF.

#include <gtest/gtest.h>

#include "extract/extract.h"
#include "liberty/characterize.h"
#include "netlist/builder.h"
#include "pnr/cts.h"
#include "pnr/floorplan.h"
#include "pnr/placement.h"
#include "pnr/powerplan.h"
#include "riscv/rv32.h"

namespace ffet::extract {
namespace {

class ExtractTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tech_ = new tech::Technology(tech::make_ffet_3p5t());
    stdcell::PinConfig dual;
    dual.backside_input_fraction = 0.5;
    lib_ = new stdcell::Library(stdcell::build_library(*tech_, dual));
    liberty::characterize_library(*lib_);
    riscv::Rv32Options opt;
    opt.num_registers = 4;
    nl_ = new netlist::Netlist(riscv::build_rv32_core(*lib_, opt));
    pnr::FloorplanOptions fo;
    fo.target_utilization = 0.6;
    const pnr::Floorplan fp = pnr::make_floorplan(*nl_, *tech_, fo);
    const pnr::PowerPlan pp = pnr::build_power_plan(*nl_, fp, *lib_);
    pnr::place(*nl_, fp, pp);
    pnr::build_clock_tree(*nl_, fp);
    const pnr::RouteResult rr = pnr::route_design(*nl_, fp);
    merged_ = new io::Def(
        io::merge_defs(io::build_def(*nl_, rr, tech::Side::Front),
                       io::build_def(*nl_, rr, tech::Side::Back)));
    rc_ = new RcNetlist(extract_rc(*merged_, *nl_, *tech_));
  }
  static void TearDownTestSuite() {
    delete rc_;
    delete merged_;
    delete nl_;
    delete lib_;
    delete tech_;
    rc_ = nullptr;
    merged_ = nullptr;
    nl_ = nullptr;
    lib_ = nullptr;
    tech_ = nullptr;
  }

  static tech::Technology* tech_;
  static stdcell::Library* lib_;
  static netlist::Netlist* nl_;
  static io::Def* merged_;
  static RcNetlist* rc_;
};

tech::Technology* ExtractTest::tech_ = nullptr;
stdcell::Library* ExtractTest::lib_ = nullptr;
netlist::Netlist* ExtractTest::nl_ = nullptr;
io::Def* ExtractTest::merged_ = nullptr;
RcNetlist* ExtractTest::rc_ = nullptr;

TEST_F(ExtractTest, OneTreePerNet) {
  ASSERT_EQ(rc_->num_trees(), static_cast<std::size_t>(nl_->num_nets()));
  for (int n = 0; n < nl_->num_nets(); ++n) {
    const RcTreeView t = rc_->tree(n);
    EXPECT_EQ(t.sink_nodes.size(), nl_->net(n).sinks.size());
  }
}

TEST_F(ExtractTest, TreesAreWellFormed) {
  for (int n = 0; n < nl_->num_nets(); ++n) {
    const RcTreeView t = rc_->tree(n);
    ASSERT_FALSE(t.nodes.empty());
    EXPECT_EQ(t.nodes[0].parent, -1);  // driver root
    for (std::size_t i = 1; i < t.nodes.size(); ++i) {
      // Parents exist; resistances positive.
      if (t.nodes[i].parent >= 0) {
        EXPECT_LT(t.nodes[i].parent, static_cast<int>(t.nodes.size()));
        EXPECT_GT(t.nodes[i].r_ohm, 0.0) << nl_->net_name(n);
      }
      EXPECT_GE(t.nodes[i].cap_ff, 0.0);
    }
    EXPECT_GE(t.total_cap_ff, t.wire_cap_ff - 1e-9);
  }
}

TEST_F(ExtractTest, ElmoreNonNegativeAndMonotoneAlongPaths) {
  for (int n = 0; n < nl_->num_nets(); ++n) {
    const RcTreeView t = rc_->tree(n);
    ASSERT_EQ(t.elmore_ps.size(), t.nodes.size());
    for (std::size_t i = 1; i < t.nodes.size(); ++i) {
      const int p = t.nodes[i].parent;
      if (p < 0) continue;
      // Elmore is non-decreasing from driver to leaves.
      EXPECT_GE(t.elmore_ps[i] + 1e-12, t.elmore_ps[static_cast<std::size_t>(p)])
          << nl_->net_name(n);
    }
  }
}

TEST_F(ExtractTest, TotalCapIncludesSinkPins) {
  for (int n = 0; n < nl_->num_nets(); ++n) {
    const netlist::Net& net = nl_->net(n);
    const RcTreeView t = rc_->tree(n);
    double pins = 0.0;
    for (const netlist::PinRef& s : net.sinks) pins += nl_->pin_cap_ff(s);
    EXPECT_GE(t.total_cap_ff + 1e-9, pins) << nl_->net_name(n);
    EXPECT_NEAR(t.total_cap_ff - t.wire_cap_ff, pins, 1e-6) << nl_->net_name(n);
  }
}

TEST_F(ExtractTest, DualSidedNetsJoinThroughDrainMerge) {
  // Find a net with both front and back wires in the merged DEF; its tree
  // must contain nodes on both sides, with the backside subtree reached
  // through a link whose resistance includes the Drain Merge.
  int checked = 0;
  for (const io::DefNet& dn : merged_->nets) {
    bool has_f = false, has_b = false;
    for (const io::DefWire& w : dn.wires) {
      (w.layer[0] == 'B' ? has_b : has_f) = true;
    }
    if (!has_f || !has_b) continue;
    const auto id = nl_->find_net(dn.name);
    ASSERT_TRUE(id.has_value());
    const RcTreeView t = rc_->tree(*id);
    bool node_f = false, node_b = false;
    for (const RcNode& nd : t.nodes) {
      (nd.side == tech::Side::Back ? node_b : node_f) = true;
    }
    EXPECT_TRUE(node_f && node_b) << dn.name;
    // Some node's resistance to parent carries the Drain Merge value.
    bool merge_seen = false;
    for (const RcNode& nd : t.nodes) {
      if (nd.r_ohm >= tech_->device().np_link_r_ohm) merge_seen = true;
    }
    EXPECT_TRUE(merge_seen) << dn.name;
    if (++checked > 20) break;
  }
  EXPECT_GT(checked, 5) << "expected plenty of dual-sided nets";
}

TEST_F(ExtractTest, LongerWiresMoreCapacitance) {
  // Across nets, wire cap correlates with DEF wirelength; spot-check the
  // extremes.
  double best_len = -1, worst_len = 1e18;
  double best_cap = 0, worst_cap = 0;
  for (const io::DefNet& dn : merged_->nets) {
    double len = 0;
    for (const io::DefWire& w : dn.wires) {
      len += geom::to_um(geom::manhattan(w.from, w.to));
    }
    const auto id = nl_->find_net(dn.name);
    if (!id) continue;
    const RcTreeView t = rc_->tree(*id);
    if (len > best_len) {
      best_len = len;
      best_cap = t.wire_cap_ff;
    }
    if (len < worst_len) {
      worst_len = len;
      worst_cap = t.wire_cap_ff;
    }
  }
  EXPECT_GT(best_len, worst_len);
  EXPECT_GT(best_cap, worst_cap);
}

TEST_F(ExtractTest, UnknownLayerRejected) {
  io::Def bad = *merged_;
  for (auto& n : bad.nets) {
    if (!n.wires.empty()) {
      n.wires[0].layer = "XM3";
      break;
    }
  }
  EXPECT_THROW(extract_rc(bad, *nl_, *tech_), std::runtime_error);
}

TEST_F(ExtractTest, AggregateStatisticsPositive) {
  EXPECT_GT(rc_->total_wire_cap_ff, 0.0);
  EXPECT_GT(rc_->total_wire_res_kohm, 0.0);
}

// Synthetic micro-check of Elmore numbers: a driver, one wire, one sink.
TEST(ExtractMicro, SingleWireElmoreMatchesHandComputation) {
  tech::Technology tech = tech::make_ffet_3p5t();
  stdcell::Library lib = stdcell::build_library(tech);
  liberty::characterize_library(lib);
  netlist::Builder b("micro", &lib);
  const netlist::NetId in = b.input("a");
  const netlist::NetId mid = b.inv(in);
  b.output("z", b.inv(mid));
  netlist::Netlist nl = b.take();
  // Manual placement: driver at origin, sink 9 gcells to the right.
  nl.instance(0).pos = {0, 0};
  nl.instance(1).pos = {4500, 0};

  // Hand-build a DEF with one FM2 wire of 4.5 um on the mid net.
  io::Def def;
  def.design = nl.name();
  io::DefNet dn;
  dn.name = nl.net_name(mid);
  dn.wires.push_back({"FM2", {0, 0}, {4500, 0}});
  def.nets.push_back(dn);

  const RcNetlist rc = extract_rc(def, nl, tech);
  const RcTreeView t = rc.tree(mid);
  const tech::MetalLayer* fm2 = tech.find_layer("FM2");
  const double len_um = 4.5;
  const double wire_c = len_um * fm2->c_ff_per_um;
  // Coupling adds a tiny amount even for a lone wire (its own length
  // registers in the density grid); base cap is a floor.
  EXPECT_GE(t.wire_cap_ff, wire_c - 1e-9);
  EXPECT_NEAR(t.wire_cap_ff, wire_c, 0.02 * wire_c);
  // Sink Elmore must exceed the pure wire RC floor and include hookups.
  ASSERT_EQ(t.sink_nodes.size(), 1u);
  EXPECT_GT(t.elmore_to_sink(0), 0.0);
}

}  // namespace
}  // namespace ffet::extract
