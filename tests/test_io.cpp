// Tests for the LEF/DEF exchange layer: per-side DEF building, the paper's
// two-DEF merge, writer/reader round-trips, and LEF pin-side encoding.

#include <sstream>

#include <gtest/gtest.h>

#include "io/def.h"
#include "pnr/track_assign.h"
#include "liberty/characterize.h"
#include "pnr/cts.h"
#include "pnr/floorplan.h"
#include "pnr/placement.h"
#include "pnr/powerplan.h"
#include "riscv/rv32.h"

namespace ffet::io {
namespace {

class IoTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tech_ = new tech::Technology(tech::make_ffet_3p5t());
    stdcell::PinConfig dual;
    dual.backside_input_fraction = 0.5;
    lib_ = new stdcell::Library(stdcell::build_library(*tech_, dual));
    liberty::characterize_library(*lib_);
    riscv::Rv32Options opt;
    opt.num_registers = 4;
    nl_ = new netlist::Netlist(riscv::build_rv32_core(*lib_, opt));
    pnr::FloorplanOptions fo;
    fo.target_utilization = 0.6;
    fp_ = new pnr::Floorplan(pnr::make_floorplan(*nl_, *tech_, fo));
    const pnr::PowerPlan pp = pnr::build_power_plan(*nl_, *fp_, *lib_);
    pnr::place(*nl_, *fp_, pp);
    pnr::build_clock_tree(*nl_, *fp_);
    rr_ = new pnr::RouteResult(pnr::route_design(*nl_, *fp_));
  }
  static void TearDownTestSuite() {
    delete rr_;
    delete fp_;
    delete nl_;
    delete lib_;
    delete tech_;
    rr_ = nullptr;
    fp_ = nullptr;
    nl_ = nullptr;
    lib_ = nullptr;
    tech_ = nullptr;
  }

  static tech::Technology* tech_;
  static stdcell::Library* lib_;
  static netlist::Netlist* nl_;
  static pnr::Floorplan* fp_;
  static pnr::RouteResult* rr_;
};

tech::Technology* IoTest::tech_ = nullptr;
stdcell::Library* IoTest::lib_ = nullptr;
netlist::Netlist* IoTest::nl_ = nullptr;
pnr::Floorplan* IoTest::fp_ = nullptr;
pnr::RouteResult* IoTest::rr_ = nullptr;

TEST_F(IoTest, PerSideDefsCarryOnlyThatSidesWires) {
  const Def front = build_def(*nl_, *rr_, tech::Side::Front);
  const Def back = build_def(*nl_, *rr_, tech::Side::Back);
  EXPECT_EQ(front.components.size(), back.components.size());
  EXPECT_EQ(front.nets.size(), back.nets.size());
  int front_wires = 0, back_wires = 0;
  for (const DefNet& n : front.nets) {
    for (const DefWire& w : n.wires) {
      EXPECT_EQ(w.layer[0], 'F') << w.layer;
      ++front_wires;
    }
  }
  for (const DefNet& n : back.nets) {
    for (const DefWire& w : n.wires) {
      EXPECT_EQ(w.layer[0], 'B') << w.layer;
      ++back_wires;
    }
  }
  EXPECT_GT(front_wires, 0);
  EXPECT_GT(back_wires, 0);  // 50/50 library: real backside signal wires
}

TEST_F(IoTest, MergeUnionsWires) {
  const Def front = build_def(*nl_, *rr_, tech::Side::Front);
  const Def back = build_def(*nl_, *rr_, tech::Side::Back);
  const Def merged = merge_defs(front, back);
  std::size_t fw = 0, bw = 0, mw = 0;
  for (const DefNet& n : front.nets) fw += n.wires.size();
  for (const DefNet& n : back.nets) bw += n.wires.size();
  for (const DefNet& n : merged.nets) mw += n.wires.size();
  EXPECT_EQ(mw, fw + bw);
  EXPECT_EQ(merged.components.size(), front.components.size());
}

TEST_F(IoTest, MergeRejectsMismatchedDesigns) {
  Def front = build_def(*nl_, *rr_, tech::Side::Front);
  Def back = build_def(*nl_, *rr_, tech::Side::Back);
  back.design = "other";
  EXPECT_THROW(merge_defs(front, back), std::invalid_argument);
  back.design = front.design;
  back.nets[0].name = "renamed_net";
  EXPECT_THROW(merge_defs(front, back), std::invalid_argument);
}

TEST_F(IoTest, DefWriterReaderRoundTrip) {
  const Def front = build_def(*nl_, *rr_, tech::Side::Front);
  const std::string text = to_def_string(front);
  const Def again = read_def_string(text);

  EXPECT_EQ(again.design, front.design);
  EXPECT_EQ(again.die, front.die);
  ASSERT_EQ(again.components.size(), front.components.size());
  for (std::size_t i = 0; i < front.components.size(); ++i) {
    EXPECT_EQ(again.components[i].name, front.components[i].name);
    EXPECT_EQ(again.components[i].cell, front.components[i].cell);
    EXPECT_EQ(again.components[i].pos, front.components[i].pos);
    EXPECT_EQ(again.components[i].fixed, front.components[i].fixed);
  }
  ASSERT_EQ(again.ports.size(), front.ports.size());
  ASSERT_EQ(again.nets.size(), front.nets.size());
  for (std::size_t i = 0; i < front.nets.size(); ++i) {
    EXPECT_EQ(again.nets[i].name, front.nets[i].name);
    ASSERT_EQ(again.nets[i].pins.size(), front.nets[i].pins.size());
    ASSERT_EQ(again.nets[i].wires.size(), front.nets[i].wires.size());
    for (std::size_t w = 0; w < front.nets[i].wires.size(); ++w) {
      EXPECT_EQ(again.nets[i].wires[w].layer, front.nets[i].wires[w].layer);
      EXPECT_EQ(again.nets[i].wires[w].from, front.nets[i].wires[w].from);
      EXPECT_EQ(again.nets[i].wires[w].to, front.nets[i].wires[w].to);
    }
  }
}

TEST_F(IoTest, MergedDefRoundTrips) {
  const Def merged = merge_defs(build_def(*nl_, *rr_, tech::Side::Front),
                                build_def(*nl_, *rr_, tech::Side::Back));
  const Def again = read_def_string(to_def_string(merged));
  std::size_t w1 = 0, w2 = 0;
  for (const auto& n : merged.nets) w1 += n.wires.size();
  for (const auto& n : again.nets) w2 += n.wires.size();
  EXPECT_EQ(w1, w2);
}

TEST_F(IoTest, ReaderRejectsGarbage) {
  EXPECT_THROW(read_def_string("VERSION"), std::runtime_error);
  EXPECT_THROW(read_def_string("hello world ;"), std::runtime_error);
  EXPECT_THROW(read_def_string(""), std::runtime_error);
}

TEST_F(IoTest, FixedComponentsSurvive) {
  const Def front = build_def(*nl_, *rr_, tech::Side::Front);
  int fixed = 0;
  for (const DefComponent& c : front.components) {
    if (c.fixed) {
      ++fixed;
      EXPECT_EQ(c.cell, "TAPCELL");
    }
  }
  EXPECT_GT(fixed, 0) << "power tap cells must appear as FIXED";
}

TEST_F(IoTest, TrackAssignedDefSpreadsCoincidentWires) {
  const Def plain = build_def(*nl_, *rr_, tech::Side::Front);
  const pnr::TrackAssignment ta = pnr::assign_tracks(*rr_, 48);
  const Def spread = build_def(*nl_, *rr_, tech::Side::Front, &ta, 48);

  auto coincident = [](const Def& d) {
    std::map<std::tuple<geom::Nm, geom::Nm, geom::Nm, geom::Nm>, int> seen;
    long dup = 0;
    for (const DefNet& n : d.nets) {
      for (const DefWire& w : n.wires) {
        if (++seen[{w.from.x, w.from.y, w.to.x, w.to.y}] > 1) ++dup;
      }
    }
    return dup;
  };
  EXPECT_LT(coincident(spread), coincident(plain) / 4)
      << "track offsets must de-overlap parallel runs";
  // Same wire count, still parses.
  std::size_t w1 = 0, w2 = 0;
  for (const auto& n : plain.nets) w1 += n.wires.size();
  for (const auto& n : spread.nets) w2 += n.wires.size();
  EXPECT_EQ(w1, w2);
  EXPECT_NO_THROW(read_def_string(to_def_string(spread)));
}

TEST_F(IoTest, LefEncodesPinSides) {
  const std::string lef = to_lef_string(*lib_);
  // Dual-sided output pins: the INVD1 output must expose ports on FM0 and
  // BM0.
  const auto macro_pos = lef.find("MACRO INVD1");
  ASSERT_NE(macro_pos, std::string::npos);
  const auto macro_end = lef.find("END INVD1");
  const std::string macro = lef.substr(macro_pos, macro_end - macro_pos);
  EXPECT_NE(macro.find("LAYER FM0"), std::string::npos);
  EXPECT_NE(macro.find("LAYER BM0"), std::string::npos);
  // Library-wide: some input pins on BM0 (50/50 split).
  EXPECT_NE(lef.find("USE CLOCK"), std::string::npos);
  EXPECT_NE(lef.find("SITE core"), std::string::npos);
}

TEST_F(IoTest, LefListsAllLayersAndMacros) {
  const std::string lef = to_lef_string(*lib_);
  for (const char* layer : {"LAYER FM0", "LAYER FM12", "LAYER BM0",
                            "LAYER BM12"}) {
    EXPECT_NE(lef.find(layer), std::string::npos) << layer;
  }
  for (const auto& cell : lib_->cells()) {
    EXPECT_NE(lef.find("MACRO " + cell->name()), std::string::npos)
        << cell->name();
  }
}

}  // namespace
}  // namespace ffet::io
