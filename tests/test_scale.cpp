// Tests for the million-cell data plane: CSR pin-table consistency on the
// seed design, synthesized-name round-trips in anonymous mode, and the
// streaming DEF/SPEF writers on a large generated mesh design.

#include <gtest/gtest.h>

#include "extract/extract.h"
#include "extract/spef.h"
#include "io/def.h"
#include "liberty/characterize.h"
#include "netlist/workload.h"
#include "pnr/cts.h"
#include "pnr/floorplan.h"
#include "pnr/placement.h"
#include "pnr/powerplan.h"
#include "pnr/router.h"
#include "riscv/rv32.h"
#include "stdcell/stdcell.h"
#include "tech/tech.h"

namespace ffet {
namespace {

using netlist::InstId;
using netlist::NetId;

// --- CSR pin table ---------------------------------------------------------

class PinTableTest : public ::testing::Test {
 protected:
  PinTableTest()
      : tech_(tech::make_ffet_3p5t()), lib_(stdcell::build_library(tech_)) {
    liberty::characterize_library(lib_);
  }
  tech::Technology tech_;
  stdcell::Library lib_;
};

// The CSR pin table must agree with the net-side connectivity on the seed
// design: every net's driver and sinks point back at pin slots whose
// pin_net is that net, and every connected pin slot is accounted for by
// exactly one net reference.
TEST_F(PinTableTest, CsrTableMatchesNetConnectivityOnSeedDesign) {
  riscv::Rv32Options opt;
  opt.num_registers = 8;
  const netlist::Netlist nl = riscv::build_rv32_core(lib_, opt);
  ASSERT_TRUE(nl.validate().empty());

  std::int64_t connected_slots = 0;
  for (InstId i = 0; i < nl.num_instances(); ++i) {
    const auto pins = nl.pin_nets(i);
    ASSERT_EQ(pins.size(), nl.instance(i).type->pins().size())
        << nl.instance_name(i);
    ASSERT_EQ(pins.size(), nl.pin_count(i));
    for (std::size_t p = 0; p < pins.size(); ++p) {
      EXPECT_EQ(pins[p], nl.pin_net(i, p));
      if (pins[p] != netlist::kNoNet) ++connected_slots;
    }
  }

  std::int64_t net_refs = 0;
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    const netlist::Net& net = nl.net(n);
    if (net.driver.inst != netlist::kNoInst) {
      EXPECT_EQ(nl.pin_net(net.driver.inst,
                           static_cast<std::size_t>(net.driver.pin)),
                n)
          << nl.net_name(n);
      ++net_refs;
    }
    for (const netlist::PinRef& s : net.sinks) {
      EXPECT_EQ(nl.pin_net(s.inst, static_cast<std::size_t>(s.pin)), n)
          << nl.net_name(n);
      ++net_refs;
    }
  }
  EXPECT_EQ(net_refs, connected_slots);
  EXPECT_EQ(nl.stats().num_pins, connected_slots);
}

// The pin table survives a netlist copy (the copy re-interns names and
// rebuilds the lookup maps over its own arena).
TEST_F(PinTableTest, CopyPreservesPinTableAndNames) {
  riscv::Rv32Options opt;
  opt.num_registers = 4;
  const netlist::Netlist nl = riscv::build_rv32_core(lib_, opt);
  const netlist::Netlist copy = nl;  // NOLINT(performance-unnecessary-copy)

  ASSERT_EQ(copy.num_instances(), nl.num_instances());
  ASSERT_EQ(copy.num_nets(), nl.num_nets());
  for (InstId i = 0; i < nl.num_instances(); ++i) {
    EXPECT_EQ(copy.instance_name(i), nl.instance_name(i));
    const auto a = nl.pin_nets(i);
    const auto b = copy.pin_nets(i);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t p = 0; p < a.size(); ++p) EXPECT_EQ(a[p], b[p]);
    // The copy's name map indexes its own arena.
    const auto found = copy.find_instance(nl.instance_name(i));
    ASSERT_TRUE(found.has_value()) << nl.instance_name(i);
    EXPECT_EQ(*found, i);
  }
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    EXPECT_EQ(copy.net_name(n), nl.net_name(n));
  }
}

// Anonymous instances/nets answer to their synthesized `_i<N>` / `_n<N>`
// spellings through the same lookup API named objects use, without
// storing any name bytes.
TEST_F(PinTableTest, SynthesizedNamesRoundTripInAnonymousMode) {
  netlist::WorkloadOptions opt;
  opt.num_gates = 500;
  opt.num_flops = 50;
  opt.anonymous = true;
  const netlist::Netlist nl = netlist::generate_workload(lib_, opt);
  ASSERT_TRUE(nl.validate().empty());

  int anonymous_seen = 0;
  for (InstId i = 0; i < nl.num_instances(); ++i) {
    const std::string name = nl.instance_name(i);
    const auto found = nl.find_instance(name);
    ASSERT_TRUE(found.has_value()) << name;
    EXPECT_EQ(*found, i) << name;
    if (!nl.instance_has_explicit_name(i)) {
      EXPECT_EQ(name, "_i" + std::to_string(i));
      ++anonymous_seen;
    }
  }
  EXPECT_GT(anonymous_seen, 500);

  for (NetId n = 0; n < nl.num_nets(); ++n) {
    const std::string name = nl.net_name(n);
    const auto found = nl.find_net(name);
    ASSERT_TRUE(found.has_value()) << name;
    EXPECT_EQ(*found, n) << name;
  }
  // Ports keep their explicit names even in anonymous mode.
  EXPECT_TRUE(nl.find_net("clk").has_value());
}

// --- streaming writers at scale --------------------------------------------

// One placed+routed mesh workload, shared by the streaming round-trip
// tests (route_design dominates the fixture cost).
class ScaleIoTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tech_ = new tech::Technology(tech::make_ffet_3p5t());
    stdcell::PinConfig dual;
    dual.backside_input_fraction = 0.5;
    lib_ = new stdcell::Library(stdcell::build_library(*tech_, dual));
    liberty::characterize_library(*lib_);

    netlist::WorkloadOptions opt;
    opt.num_gates = 2000;
    opt.num_flops = 200;
    opt.tile_cols = 2;
    opt.tile_rows = 2;
    opt.anonymous = true;
    nl_ = new netlist::Netlist(netlist::generate_workload(*lib_, opt));

    pnr::FloorplanOptions fo;
    fo.target_utilization = 0.6;
    const pnr::Floorplan fp = pnr::make_floorplan(*nl_, *tech_, fo);
    const pnr::PowerPlan pp = pnr::build_power_plan(*nl_, fp, *lib_);
    pnr::place(*nl_, fp, pp);
    pnr::build_clock_tree(*nl_, fp);
    const pnr::RouteResult rr = pnr::route_design(*nl_, fp);
    merged_ = new io::Def(
        io::merge_defs(io::build_def(*nl_, rr, tech::Side::Front),
                       io::build_def(*nl_, rr, tech::Side::Back)));
  }
  static void TearDownTestSuite() {
    delete merged_;
    delete nl_;
    delete lib_;
    delete tech_;
    merged_ = nullptr;
    nl_ = nullptr;
    lib_ = nullptr;
    tech_ = nullptr;
  }

  static tech::Technology* tech_;
  static stdcell::Library* lib_;
  static netlist::Netlist* nl_;
  static io::Def* merged_;
};

tech::Technology* ScaleIoTest::tech_ = nullptr;
stdcell::Library* ScaleIoTest::lib_ = nullptr;
netlist::Netlist* ScaleIoTest::nl_ = nullptr;
io::Def* ScaleIoTest::merged_ = nullptr;

// The buffered/to_chars DEF writer must round-trip through its own reader
// bit-identically (write -> read -> re-write) on a ~9k-cell mesh design
// whose instances and nets all carry synthesized names.
TEST_F(ScaleIoTest, DefStreamingRoundTripIsBitIdentical) {
  const std::string first = io::to_def_string(*merged_);
  EXPECT_GT(first.size(), 100000u);  // genuinely large
  const io::Def parsed = io::read_def_string(first);
  EXPECT_EQ(parsed.nets.size(), merged_->nets.size());
  const std::string second = io::to_def_string(parsed);
  ASSERT_EQ(second.size(), first.size());
  EXPECT_TRUE(second == first);
}

// Same bar for the SPEF path: the writer streams the arena-backed trees,
// the reader packs them back into an arena, and a re-emit of the parsed
// parasitics is byte-identical.
TEST_F(ScaleIoTest, SpefStreamingRoundTripIsBitIdentical) {
  const extract::RcNetlist rc = extract::extract_rc(*merged_, *nl_, *tech_);
  ASSERT_EQ(rc.num_trees(), static_cast<std::size_t>(nl_->num_nets()));

  const std::string first = extract::to_spef_string(rc, *nl_);
  EXPECT_GT(first.size(), 100000u);
  const extract::RcNetlist again = extract::read_spef_string(first, *nl_);
  ASSERT_EQ(again.num_trees(), rc.num_trees());
  const std::string second = extract::to_spef_string(again, *nl_);
  ASSERT_EQ(second.size(), first.size());
  EXPECT_TRUE(second == first);
}

}  // namespace
}  // namespace ffet
