// test_serve.cpp — the sweep-service subsystem.
//
// Covers, in rough dependency order:
//   * FlowConfig JSON round-trip (the wire format both binaries speak) and
//     its coupling to label(), the service cache key;
//   * the framed protocol over a real socketpair;
//   * the persistent result cache: persistence across daemon generations,
//     corruption tolerance, collision safety;
//   * the daemon end to end: QoR identity with in-process run_sweep,
//     all-cached resubmission, single-flight dedup of identical points;
//   * crash isolation: workers SIGKILLed externally and via the
//     deterministic FFET_SERVE_TEST_CRASH* hooks — retry-once semantics,
//     worker_died reporting, daemon survival.
//
// Every flow config here uses rv32_registers = 8: the service mechanics
// under test are register-count-independent and the small core keeps each
// flow run ~100 ms.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <csignal>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "flow/config_json.h"
#include "flow/flow.h"
#include "flow/report_json.h"
#include "report/json.h"
#include "report/qor.h"
#include "report/serve_stats.h"
#include "serve/cache.h"
#include "serve/client.h"
#include "serve/config_codec.h"
#include "serve/protocol.h"
#include "serve/server.h"

using namespace ffet;

namespace {

flow::FlowConfig small_config(double util = 0.5) {
  flow::FlowConfig cfg;
  cfg.rv32_registers = 8;
  cfg.utilization = util;
  return cfg;
}

/// A config with every field moved off its default — the round-trip test
/// must prove each one survives the wire.
flow::FlowConfig exotic_config() {
  flow::FlowConfig cfg;
  cfg.tech_kind = tech::TechKind::Cfet4T;
  cfg.front_layers = 10;
  cfg.back_layers = 7;
  cfg.backside_input_fraction = 0.375;
  cfg.target_freq_ghz = 2.25;
  cfg.utilization = 0.63;
  cfg.aspect_ratio = 1.5;
  cfg.rv32_registers = 12;
  cfg.seed = 77;
  cfg.simulate_activity = true;
  cfg.activity_cycles = 123;
  cfg.eco_passes = 2;
  cfg.threads = 3;
  cfg.trace_path = "t.json";
  cfg.flow_report_path = "r.jsonl";
  cfg.ledger_path = "l.jsonl";
  return cfg;
}

std::string run_sweep_jsonl(const std::vector<flow::FlowConfig>& sweep) {
  std::string jsonl;
  for (const flow::FlowResult& r : flow::run_sweep(sweep)) {
    jsonl += flow::flow_report_json(r);
    jsonl += '\n';
  }
  return jsonl;
}

std::string lines_jsonl(const std::vector<serve::ResultLine>& results) {
  std::string jsonl;
  for (const serve::ResultLine& r : results) {
    jsonl += r.line;
    jsonl += '\n';
  }
  return jsonl;
}

/// QoR-identity assertion between two flow-report JSONL blobs (the service
/// contract: per-point bit-identical config/validity/diagnostics/ppa/eco).
void expect_qor_identical(const std::string& base_jsonl,
                          const std::string& cand_jsonl) {
  std::istringstream bs(base_jsonl), cs(cand_jsonl);
  const auto base = report::read_flow_reports(bs);
  const auto cand = report::read_flow_reports(cs);
  ASSERT_EQ(base.size(), cand.size());
  report::DiffOptions opts;
  opts.qor_only = true;
  const report::DiffReport d = report::diff_flow_reports(base, cand, opts);
  EXPECT_EQ(d.deltas.size(), 0u) << report::format_diff(d);
  EXPECT_EQ(d.regressions, 0);
}

/// Unique-per-test scratch paths so parallel ctest shards don't collide.
std::string scratch(const std::string& stem) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  return "serve_scratch_" + std::string(info->test_suite_name()) + "_" +
         std::string(info->name()) + "_" + stem;
}

void rm_rf(const std::string& dir) {
  const std::string cmd = "rm -rf '" + dir + "'";
  if (std::system(cmd.c_str()) != 0) { /* best effort */ }
}

struct EnvGuard {
  std::string name;
  EnvGuard(const std::string& n, const std::string& value) : name(n) {
    ::setenv(name.c_str(), value.c_str(), 1);
  }
  ~EnvGuard() { ::unsetenv(name.c_str()); }
};

}  // namespace

// ---------------------------------------------------------------------------
// FlowConfig JSON round-trip
// ---------------------------------------------------------------------------

TEST(ConfigJson, RoundTripsEveryField) {
  const flow::FlowConfig cfg = exotic_config();
  const std::string json = flow::config_to_json(cfg);
  std::string error;
  const auto back = serve::configs_from_json_text("[" + json + "]", &error);
  ASSERT_TRUE(back.has_value()) << error;
  ASSERT_EQ(back->size(), 1u);
  const flow::FlowConfig& b = (*back)[0];
  EXPECT_EQ(b.tech_kind, cfg.tech_kind);
  EXPECT_EQ(b.front_layers, cfg.front_layers);
  EXPECT_EQ(b.back_layers, cfg.back_layers);
  EXPECT_EQ(b.backside_input_fraction, cfg.backside_input_fraction);
  EXPECT_EQ(b.target_freq_ghz, cfg.target_freq_ghz);
  EXPECT_EQ(b.utilization, cfg.utilization);
  EXPECT_EQ(b.aspect_ratio, cfg.aspect_ratio);
  EXPECT_EQ(b.rv32_registers, cfg.rv32_registers);
  EXPECT_EQ(b.seed, cfg.seed);
  EXPECT_EQ(b.simulate_activity, cfg.simulate_activity);
  EXPECT_EQ(b.activity_cycles, cfg.activity_cycles);
  EXPECT_EQ(b.eco_passes, cfg.eco_passes);
  EXPECT_EQ(b.threads, cfg.threads);
  EXPECT_EQ(b.trace_path, cfg.trace_path);
  EXPECT_EQ(b.flow_report_path, cfg.flow_report_path);
  EXPECT_EQ(b.ledger_path, cfg.ledger_path);
  // The service cache key must survive the wire byte-exactly.
  EXPECT_EQ(b.label(), cfg.label());
  // And a second serialization must be byte-stable (cache keys, dedup).
  EXPECT_EQ(flow::config_to_json(b), json);
}

TEST(ConfigJson, EveryLabelKnobSurvivesTheWire) {
  // label() is the cache key: for each config knob encoded in it, perturb
  // the knob and check (a) the label really changes — the knob is not
  // silently aliased — and (b) the perturbed config round-trips to the
  // same label.  The compile-time member census in config_json.cpp forces
  // this list to be revisited when FlowConfig grows a field.
  using Mut = void (*)(flow::FlowConfig&);
  const Mut mutations[] = {
      [](flow::FlowConfig& c) { c.tech_kind = tech::TechKind::Cfet4T; },
      [](flow::FlowConfig& c) { c.front_layers = 9; },
      [](flow::FlowConfig& c) { c.back_layers = 3; },
      [](flow::FlowConfig& c) { c.backside_input_fraction = 0.75; },
      [](flow::FlowConfig& c) { c.target_freq_ghz = 3.5; },
      [](flow::FlowConfig& c) { c.utilization = 0.81; },
      [](flow::FlowConfig& c) { c.rv32_registers = 24; },
      [](flow::FlowConfig& c) { c.seed = 99; },
      [](flow::FlowConfig& c) { c.eco_passes = 4; },
  };
  const flow::FlowConfig base;
  for (const Mut mutate : mutations) {
    flow::FlowConfig cfg;
    mutate(cfg);
    EXPECT_NE(cfg.label(), base.label());
    std::string error;
    const auto back = serve::configs_from_json_text(
        "[" + flow::config_to_json(cfg) + "]", &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ((*back)[0].label(), cfg.label());
  }
}

TEST(ConfigJson, UnknownFieldIsRejected) {
  std::string error;
  EXPECT_FALSE(serve::configs_from_json_text(
                   R"([{"utilization":0.5,"utilisation":0.6}])", &error)
                   .has_value());
  EXPECT_NE(error.find("utilisation"), std::string::npos);
}

TEST(ConfigJson, TypeMismatchIsRejected) {
  std::string error;
  EXPECT_FALSE(
      serve::configs_from_json_text(R"([{"utilization":"high"}])", &error)
          .has_value());
  EXPECT_FALSE(
      serve::configs_from_json_text(R"([{"tech":3.5}])", &error).has_value());
  EXPECT_FALSE(serve::configs_from_json_text(R"({"tech":"ffet"})", &error)
                   .has_value());  // object, not array
}

TEST(ConfigJson, AbsentFieldsKeepDefaults) {
  std::string error;
  const auto back = serve::configs_from_json_text(R"([{}])", &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ((*back)[0].label(), flow::FlowConfig{}.label());
}

// ---------------------------------------------------------------------------
// Protocol framing
// ---------------------------------------------------------------------------

TEST(Protocol, FrameRoundTripOverSocketpair) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const std::string payload(100000, 'x');  // bigger than one pipe buffer
  ASSERT_TRUE(serve::write_frame(sv[0], serve::FrameType::kSubmit, payload));
  ASSERT_TRUE(serve::write_frame(sv[0], serve::FrameType::kPing, ""));
  const auto f1 = serve::read_frame(sv[1]);
  ASSERT_TRUE(f1.has_value());
  EXPECT_EQ(f1->type, serve::FrameType::kSubmit);
  EXPECT_EQ(f1->payload, payload);
  const auto f2 = serve::read_frame(sv[1]);
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(f2->type, serve::FrameType::kPing);
  EXPECT_TRUE(f2->payload.empty());
  ::close(sv[0]);
  // Peer closed: EOF, not a hang or a garbage frame.
  EXPECT_FALSE(serve::read_frame(sv[1]).has_value());
  ::close(sv[1]);
}

TEST(Protocol, ResultAndJobPayloadsRoundTrip) {
  const std::string packed = serve::pack_result(
      42, serve::kFlagCached | serve::kFlagRetried, "{\"a\":1}");
  std::uint32_t index = 0, flags = 0;
  std::string line;
  ASSERT_TRUE(serve::unpack_result(packed, index, flags, line));
  EXPECT_EQ(index, 42u);
  EXPECT_EQ(flags, serve::kFlagCached | serve::kFlagRetried);
  EXPECT_EQ(line, "{\"a\":1}");
  EXPECT_FALSE(serve::unpack_result("short", index, flags, line));

  const std::string job = serve::pack_job(1, "{\"seed\":2}");
  std::uint32_t attempt = 0;
  std::uint64_t epoch = 99;
  std::string cfg, span_path;
  ASSERT_TRUE(serve::unpack_job(job, attempt, cfg, epoch, span_path));
  EXPECT_EQ(attempt, 1u);
  EXPECT_EQ(cfg, "{\"seed\":2}");
  EXPECT_EQ(epoch, 0u);
  EXPECT_TRUE(span_path.empty());

  // Traced job: the shared epoch and the span file path ride along.
  const std::string traced =
      serve::pack_job(0, "{\"seed\":3}", 123456789ull, "/tmp/span.7.json");
  ASSERT_TRUE(serve::unpack_job(traced, attempt, cfg, epoch, span_path));
  EXPECT_EQ(attempt, 0u);
  EXPECT_EQ(cfg, "{\"seed\":3}");
  EXPECT_EQ(epoch, 123456789ull);
  EXPECT_EQ(span_path, "/tmp/span.7.json");
  EXPECT_FALSE(serve::unpack_job("short", attempt, cfg, epoch, span_path));
}

TEST(Protocol, OversizedHeaderIsRejectedNotAllocated) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  // Hand-craft a header announcing a 1 GiB payload.
  unsigned char hdr[8] = {1, 0, 0, 0, 0, 0, 0, 0x40};
  ASSERT_EQ(::write(sv[0], hdr, sizeof(hdr)),
            static_cast<ssize_t>(sizeof(hdr)));
  EXPECT_FALSE(serve::read_frame(sv[1]).has_value());
  ::close(sv[0]);
  ::close(sv[1]);
}

// ---------------------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------------------

TEST(ResultCache, StoreLookupAndPersistAcrossGenerations) {
  const std::string dir = scratch("cache");
  rm_rf(dir);
  const std::string label = "FFET test label";
  const std::string line = "{\"label\":\"FFET test label\",\"x\":1}";
  {
    serve::ResultCache cache(dir);
    EXPECT_EQ(cache.load_index(), 0);
    std::string got;
    EXPECT_FALSE(cache.lookup(label, &got));
    EXPECT_TRUE(cache.store(label, line));
    EXPECT_TRUE(cache.lookup(label, &got));
    EXPECT_EQ(got, line);
    EXPECT_EQ(cache.entries(), 1);
  }
  {
    // A new daemon generation scans the same directory.
    serve::ResultCache cache(dir);
    EXPECT_EQ(cache.load_index(), 1);
    std::string got;
    EXPECT_TRUE(cache.lookup(label, &got));
    EXPECT_EQ(got, line);
  }
  rm_rf(dir);
}

TEST(ResultCache, CorruptAndForeignFilesAreSkippedNotServed) {
  const std::string dir = scratch("cache");
  rm_rf(dir);
  serve::ResultCache cache(dir);
  ASSERT_TRUE(cache.store("good", "{\"label\":\"good\"}"));
  // Torn write: not JSON at all.
  {
    std::ofstream f(dir + "/zz_torn.json");  // stray top-level file: ignored
    f << "{\"label\":\"good";
  }
  const std::string sub = dir + "/de";
  ASSERT_EQ(std::system(("mkdir -p '" + sub + "'").c_str()), 0);
  {
    std::ofstream f(sub + "/deadbeefdeadbeef.json");
    f << "{\"label\":\"good";  // truncated mid-string
  }
  {
    std::ofstream f(sub + "/deadbeefdeadbee0.json");
    f << "[1,2,3]";  // parseable but no label
  }
  serve::ResultCache fresh(dir);
  EXPECT_EQ(fresh.load_index(), 1);  // only the good entry
  EXPECT_GE(fresh.skipped_files(), 2);
  std::string got;
  EXPECT_TRUE(fresh.lookup("good", &got));
  rm_rf(dir);
}

TEST(ResultCache, HashCollisionDoesNotClobberOtherLabel) {
  const std::string dir = scratch("cache");
  rm_rf(dir);
  // Simulate an FNV-64 filename collision: plant label "other"'s entry at
  // exactly the file store("victim") hashes to.
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(serve::fnv1a64("victim")));
  const std::string sub = dir + "/" + std::string(hex, 2);
  ASSERT_EQ(std::system(("mkdir -p '" + sub + "'").c_str()), 0);
  const std::string other_line = "{\"label\":\"other\",\"x\":1}";
  {
    std::ofstream f(sub + "/" + hex + ".json");
    f << other_line << "\n";
  }
  serve::ResultCache cache(dir);
  EXPECT_EQ(cache.load_index(), 1);
  const std::string victim_line = "{\"label\":\"victim\",\"x\":2}";
  ASSERT_TRUE(cache.store("victim", victim_line));
  // Both labels survive a daemon restart: the colliding store diverted to
  // a suffixed sibling file instead of overwriting the other label.
  serve::ResultCache fresh(dir);
  EXPECT_EQ(fresh.load_index(), 2);
  std::string got;
  EXPECT_TRUE(fresh.lookup("other", &got));
  EXPECT_EQ(got, other_line);
  EXPECT_TRUE(fresh.lookup("victim", &got));
  EXPECT_EQ(got, victim_line);
  // Re-storing an already-diverted label updates its own file in place
  // rather than growing a new suffix each time.
  ASSERT_TRUE(fresh.store("victim", victim_line));
  serve::ResultCache again(dir);
  EXPECT_EQ(again.load_index(), 2);
  rm_rf(dir);
}

TEST(ResultCache, DisabledCacheNeverHits) {
  serve::ResultCache cache("");
  EXPECT_FALSE(cache.enabled());
  EXPECT_FALSE(cache.store("l", "{}"));
  std::string got;
  EXPECT_FALSE(cache.lookup("l", &got));
}

// ---------------------------------------------------------------------------
// End-to-end service
// ---------------------------------------------------------------------------

TEST(Serve, ShardedSweepIsQoRIdenticalToInProcessAndResubmitIsAllCached) {
  const std::string sock = scratch("sock");
  const std::string cache_dir = scratch("cache");
  rm_rf(cache_dir);
  std::remove(sock.c_str());

  std::vector<flow::FlowConfig> sweep;
  for (int i = 0; i < 4; ++i) sweep.push_back(small_config(0.46 + 0.08 * i));
  const std::string baseline = run_sweep_jsonl(sweep);

  serve::ServeOptions opts;
  opts.socket_path = sock;
  opts.cache_dir = cache_dir;
  opts.workers = 2;
  serve::Server server(opts);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  EXPECT_EQ(server.workers(), 2);
  EXPECT_EQ(server.worker_pids().size(), 2u);

  std::vector<serve::ResultLine> results;
  serve::SubmitStats stats;
  ASSERT_TRUE(serve::submit_sweep(sock, sweep, &results, &stats, &error))
      << error;
  ASSERT_EQ(results.size(), sweep.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].index, i);  // streamed in point order
    EXPECT_FALSE(results[i].cached);
    EXPECT_FALSE(results[i].worker_died);
  }
  expect_qor_identical(baseline, lines_jsonl(results));
  EXPECT_EQ(stats.ran, static_cast<long long>(sweep.size()));

  // Identical resubmission: served entirely from cache, zero flow runs.
  std::vector<serve::ResultLine> again;
  ASSERT_TRUE(serve::submit_sweep(sock, sweep, &again, &stats, &error))
      << error;
  EXPECT_EQ(stats.cache_hits, static_cast<long long>(sweep.size()));
  EXPECT_EQ(stats.ran, 0);
  for (const serve::ResultLine& r : again) EXPECT_TRUE(r.cached);
  // Cached lines are byte-identical to the first pass, not just QoR-equal.
  EXPECT_EQ(lines_jsonl(again), lines_jsonl(results));

  const serve::ServeStats ss = server.stats();
  EXPECT_EQ(ss.flow_runs, static_cast<long long>(sweep.size()));
  EXPECT_EQ(ss.cache_hits, static_cast<long long>(sweep.size()));
  EXPECT_EQ(ss.worker_deaths, 0);

  server.stop();
  rm_rf(cache_dir);
}

TEST(Serve, CachePersistsAcrossDaemonRestart) {
  const std::string sock = scratch("sock");
  const std::string cache_dir = scratch("cache");
  rm_rf(cache_dir);
  const std::vector<flow::FlowConfig> sweep = {small_config()};

  serve::ServeOptions opts;
  opts.socket_path = sock;
  opts.cache_dir = cache_dir;
  opts.workers = 1;
  std::string error;
  std::string first_line;
  {
    serve::Server server(opts);
    ASSERT_TRUE(server.start(&error)) << error;
    std::vector<serve::ResultLine> results;
    ASSERT_TRUE(serve::submit_sweep(sock, sweep, &results, nullptr, &error))
        << error;
    first_line = results[0].line;
    server.stop();
  }
  {
    serve::Server server(opts);
    ASSERT_TRUE(server.start(&error)) << error;
    EXPECT_EQ(server.cache_entries(), 1);
    std::vector<serve::ResultLine> results;
    serve::SubmitStats stats;
    ASSERT_TRUE(serve::submit_sweep(sock, sweep, &results, &stats, &error))
        << error;
    EXPECT_EQ(stats.cache_hits, 1);
    EXPECT_EQ(results[0].line, first_line);
    EXPECT_EQ(server.stats().flow_runs, 0);
    server.stop();
  }
  rm_rf(cache_dir);
}

TEST(Serve, IdenticalPointsInOneSweepSingleFlight) {
  const std::string sock = scratch("sock");
  std::remove(sock.c_str());
  // Three copies of one point; resolve() runs for all of them before any
  // completes (1 worker), so exactly one schedules and two join.
  const std::vector<flow::FlowConfig> sweep = {small_config(), small_config(),
                                               small_config()};

  serve::ServeOptions opts;
  opts.socket_path = sock;
  opts.cache_dir.clear();  // no cache: dedup must come from single-flight
  opts.workers = 1;
  serve::Server server(opts);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  std::vector<serve::ResultLine> results;
  serve::SubmitStats stats;
  ASSERT_TRUE(serve::submit_sweep(sock, sweep, &results, &stats, &error))
      << error;
  EXPECT_EQ(server.stats().flow_runs, 1);
  EXPECT_EQ(server.stats().single_flight_joins, 2);
  EXPECT_EQ(stats.joined, 2);
  // Joined points return the one run's exact line.
  EXPECT_EQ(results[1].line, results[0].line);
  EXPECT_EQ(results[2].line, results[0].line);
  EXPECT_TRUE(results[1].joined);
  server.stop();
}

// ---------------------------------------------------------------------------
// Crash isolation
// ---------------------------------------------------------------------------

TEST(Serve, SigkilledWorkerIsReapedPointRetriedDaemonSurvives) {
  const std::string sock = scratch("sock");
  std::remove(sock.c_str());

  // One worker, killed externally, makes the sequence deterministic: the
  // single monitor discovers the death on the first point, reaps, forks a
  // replacement and retries; the second point runs normally on the fresh
  // worker.
  const std::vector<flow::FlowConfig> sweep = {small_config(0.5),
                                               small_config(0.58)};
  const std::string baseline = run_sweep_jsonl(sweep);

  serve::ServeOptions opts;
  opts.socket_path = sock;
  opts.cache_dir.clear();
  opts.workers = 1;
  serve::Server server(opts);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  const std::vector<pid_t> pids = server.worker_pids();
  ASSERT_EQ(pids.size(), 1u);
  ASSERT_EQ(::kill(pids[0], SIGKILL), 0);

  std::vector<serve::ResultLine> results;
  serve::SubmitStats stats;
  ASSERT_TRUE(serve::submit_sweep(sock, sweep, &results, &stats, &error))
      << error;
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].retried);
  EXPECT_FALSE(results[0].worker_died);
  EXPECT_FALSE(results[1].retried);
  EXPECT_FALSE(results[1].worker_died);
  expect_qor_identical(baseline, lines_jsonl(results));

  const serve::ServeStats ss = server.stats();
  EXPECT_EQ(ss.worker_deaths, 1);
  EXPECT_EQ(ss.worker_restarts, 1);
  EXPECT_EQ(ss.retries, 1);
  // The daemon is fully alive: a fresh live worker, and the replacement is
  // a different process than the one we killed.
  const std::vector<pid_t> fresh = server.worker_pids();
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_NE(fresh[0], pids[0]);
  EXPECT_EQ(::kill(fresh[0], 0), 0);
  server.stop();
}

TEST(Serve, CrashOncePointIsRetriedOnFreshWorker) {
  const std::string sock = scratch("sock");
  std::remove(sock.c_str());
  // Poison the 0.58 point: its first attempt SIGKILLs the worker mid-run
  // (after the job was accepted — a real mid-flow crash, not a dead fd).
  EnvGuard crash("FFET_SERVE_TEST_CRASH", "util=0.58");

  const std::vector<flow::FlowConfig> sweep = {small_config(0.5),
                                               small_config(0.58)};

  serve::ServeOptions opts;
  opts.socket_path = sock;
  opts.cache_dir.clear();
  opts.workers = 2;
  serve::Server server(opts);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  std::vector<serve::ResultLine> results;
  serve::SubmitStats stats;
  ASSERT_TRUE(serve::submit_sweep(sock, sweep, &results, &stats, &error))
      << error;
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].retried);
  EXPECT_TRUE(results[1].retried);
  EXPECT_FALSE(results[1].worker_died);
  EXPECT_EQ(stats.retried, 1);
  EXPECT_EQ(stats.worker_died, 0);
  EXPECT_GE(server.stats().worker_deaths, 1);

  // The retried point's QoR matches an in-process run exactly — a crash
  // plus retry must not perturb determinism.
  expect_qor_identical(run_sweep_jsonl(sweep), lines_jsonl(results));
  server.stop();
}

TEST(Serve, CrashAlwaysPointIsReportedWorkerDiedOthersUnaffected) {
  const std::string sock = scratch("sock");
  std::remove(sock.c_str());
  EnvGuard crash("FFET_SERVE_TEST_CRASH_ALWAYS", "util=0.58");

  const std::vector<flow::FlowConfig> sweep = {small_config(0.5),
                                               small_config(0.58),
                                               small_config(0.66)};

  serve::ServeOptions opts;
  opts.socket_path = sock;
  opts.cache_dir = scratch("cache");
  rm_rf(opts.cache_dir);
  opts.workers = 2;
  serve::Server server(opts);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  std::vector<serve::ResultLine> results;
  serve::SubmitStats stats;
  ASSERT_TRUE(serve::submit_sweep(sock, sweep, &results, &stats, &error))
      << error;
  ASSERT_EQ(results.size(), 3u);
  EXPECT_FALSE(results[0].worker_died);
  EXPECT_TRUE(results[1].worker_died);
  EXPECT_FALSE(results[2].worker_died);
  EXPECT_EQ(stats.worker_died, 1);

  // The synthetic line is a well-formed invalid record naming worker_died.
  std::istringstream is(results[1].line);
  const auto recs = report::read_flow_reports(is);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_FALSE(recs[0].valid);
  EXPECT_NE(recs[0].invalid_reason.find("worker_died"), std::string::npos);
  // And it carries the point's own config label.
  EXPECT_EQ(recs[0].label, sweep[1].label());

  // A worker_died line is never cached: the poisoned point misses again.
  serve::SubmitStats again;
  ASSERT_TRUE(serve::submit_sweep(sock, sweep, &results, &again, &error))
      << error;
  EXPECT_EQ(again.cache_hits, 2);
  EXPECT_EQ(again.worker_died, 1);

  server.stop();
  rm_rf(opts.cache_dir);
}

TEST(Serve, PingAndShutdownRoundTrip) {
  const std::string sock = scratch("sock");
  std::remove(sock.c_str());
  serve::ServeOptions opts;
  opts.socket_path = sock;
  opts.cache_dir.clear();
  opts.workers = 1;
  serve::Server server(opts);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  EXPECT_TRUE(serve::ping(sock, &error)) << error;
  EXPECT_TRUE(serve::request_shutdown(sock, &error)) << error;
  server.wait();  // returns because of the shutdown request
  server.stop();
  // Socket is unlinked; a fresh ping now fails to connect.
  EXPECT_FALSE(serve::ping(sock, &error));
}

TEST(Serve, BadSubmissionGetsErrorNotHang) {
  const std::string sock = scratch("sock");
  std::remove(sock.c_str());
  serve::ServeOptions opts;
  opts.socket_path = sock;
  opts.cache_dir.clear();
  opts.workers = 1;
  serve::Server server(opts);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  const int fd = serve::connect_unix(sock, &error);
  ASSERT_GE(fd, 0) << error;
  ASSERT_TRUE(serve::write_frame(fd, serve::FrameType::kSubmit,
                                 "[{\"bogus_knob\":1}]"));
  const auto reply = serve::read_frame(fd);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, serve::FrameType::kError);
  EXPECT_NE(reply->payload.find("bogus_knob"), std::string::npos);
  ::close(fd);
  server.stop();
}

// ---------------------------------------------------------------------------
// Observability plane: STATS verb, cross-process tracing, attribution
// ---------------------------------------------------------------------------

TEST(ServeObs, StatsVerbReturnsParseableSnapshot) {
  const std::string sock = scratch("sock");
  const std::string cache_dir = scratch("cache");
  rm_rf(cache_dir);
  std::remove(sock.c_str());

  serve::ServeOptions opts;
  opts.socket_path = sock;
  opts.cache_dir = cache_dir;
  opts.workers = 1;
  serve::Server server(opts);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  const std::vector<flow::FlowConfig> sweep = {small_config(0.48),
                                               small_config(0.56)};
  std::vector<serve::ResultLine> results;
  ASSERT_TRUE(serve::submit_sweep(sock, sweep, &results, nullptr, &error))
      << error;

  // Over the wire: the kStats verb answers with the same JSON the in-process
  // accessor returns.
  std::string wire_json;
  ASSERT_TRUE(serve::query_stats(sock, &wire_json, &error)) << error;
  std::string perr;
  const auto snap = report::parse_serve_stats(wire_json, &perr);
  ASSERT_TRUE(snap.has_value()) << perr;

  EXPECT_EQ(snap->schema, "ffet.serve_stats.v1");
  EXPECT_EQ(snap->pid, static_cast<long long>(::getpid()));
  EXPECT_EQ(snap->workers, 1);
  EXPECT_GT(snap->uptime_ms, 0.0);
  EXPECT_EQ(snap->queue_depth, 0);
  EXPECT_EQ(snap->in_flight, 0);
  EXPECT_EQ(snap->cache_entries, 2);
  EXPECT_EQ(snap->counters.at("requests"), 1);
  EXPECT_EQ(snap->counters.at("points"), 2);
  EXPECT_EQ(snap->counters.at("cache_misses"), 2);
  EXPECT_EQ(snap->counters.at("flow_runs"), 2);
  EXPECT_EQ(snap->counters.at("worker_deaths"), 0);

  // All three phase histograms saw both points.
  ASSERT_EQ(snap->phase_order.size(), 3u);
  for (const char* phase : {"queue_wait", "cache_probe", "worker_run"}) {
    ASSERT_TRUE(snap->phases.count(phase)) << phase;
    const report::ServeStatsPhase& p = snap->phases.at(phase);
    EXPECT_EQ(p.count, 2) << phase;
    EXPECT_GE(p.max, p.min) << phase;
    EXPECT_GE(p.p95, p.p50) << phase;
    EXPECT_FALSE(p.buckets.empty()) << phase;
  }
  // worker_run of a real flow is not instantaneous.
  EXPECT_GT(snap->phases.at("worker_run").sum, 0.0);

  ASSERT_EQ(snap->slots.size(), 1u);
  EXPECT_GT(snap->slots[0].pid, 0);
  EXPECT_EQ(snap->slots[0].state, "idle");
  EXPECT_EQ(snap->slots[0].jobs, 2);
  EXPECT_EQ(snap->slots[0].deaths, 0);

  // Resubmission moves the cache counters, not the run counters.
  ASSERT_TRUE(serve::submit_sweep(sock, sweep, &results, nullptr, &error))
      << error;
  ASSERT_TRUE(serve::query_stats(sock, &wire_json, &error)) << error;
  const auto snap2 = report::parse_serve_stats(wire_json, &perr);
  ASSERT_TRUE(snap2.has_value()) << perr;
  EXPECT_EQ(snap2->counters.at("cache_hits"), 2);
  EXPECT_EQ(snap2->counters.at("flow_runs"), 2);
  // The human rendering carries the headline numbers.
  const std::string pretty = report::format_serve_stats(*snap2);
  EXPECT_NE(pretty.find("cache_hits=2"), std::string::npos) << pretty;
  EXPECT_NE(pretty.find("worker_run"), std::string::npos) << pretty;

  server.stop();
  rm_rf(cache_dir);
}

TEST(ServeObs, StatsUnderConcurrentLoad) {
  const std::string sock = scratch("sock");
  std::remove(sock.c_str());
  serve::ServeOptions opts;
  opts.socket_path = sock;
  opts.cache_dir.clear();
  opts.workers = 2;
  serve::Server server(opts);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // Three clients submit disjoint 3-point sweeps while a fourth thread
  // hammers the STATS verb: every snapshot must parse and the cumulative
  // counters must be monotone.
  constexpr int kClients = 3, kPointsEach = 3;
  std::atomic<int> done{0};
  std::atomic<bool> submit_ok{true};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      std::vector<flow::FlowConfig> sweep;
      for (int i = 0; i < kPointsEach; ++i) {
        sweep.push_back(small_config(0.40 + 0.02 * (t * kPointsEach + i)));
      }
      std::vector<serve::ResultLine> results;
      std::string err;
      if (!serve::submit_sweep(sock, sweep, &results, nullptr, &err) ||
          results.size() != sweep.size()) {
        submit_ok = false;
      }
      ++done;
    });
  }

  long long prev_points = 0, prev_runs = 0;
  int polls = 0, parse_failures = 0, monotone_violations = 0;
  while (done.load() < kClients) {
    std::string json, err, perr;
    if (!serve::query_stats(sock, &json, &err)) {
      ++parse_failures;
      continue;
    }
    const auto snap = report::parse_serve_stats(json, &perr);
    if (!snap) {
      ++parse_failures;
      continue;
    }
    ++polls;
    const long long points = snap->counters.at("points");
    const long long runs = snap->counters.at("flow_runs");
    if (points < prev_points || runs < prev_runs) ++monotone_violations;
    prev_points = points;
    prev_runs = runs;
    EXPECT_EQ(snap->slots.size(), 2u);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  for (std::thread& t : clients) t.join();
  EXPECT_TRUE(submit_ok.load());
  EXPECT_EQ(parse_failures, 0);
  EXPECT_EQ(monotone_violations, 0);
  EXPECT_GT(polls, 0);

  // Quiescent accounting: every point resolved exactly one way, and with
  // disjoint sweeps and no cache that way was a flow run.
  std::string json, perr;
  ASSERT_TRUE(serve::query_stats(sock, &json, &error)) << error;
  const auto fin = report::parse_serve_stats(json, &perr);
  ASSERT_TRUE(fin.has_value()) << perr;
  const long long total = kClients * kPointsEach;
  EXPECT_EQ(fin->counters.at("points"), total);
  EXPECT_EQ(fin->counters.at("cache_hits") +
                fin->counters.at("single_flight_joins") +
                fin->counters.at("cache_misses"),
            total);
  EXPECT_EQ(fin->counters.at("flow_runs"), total);
  EXPECT_EQ(fin->queue_depth, 0);
  EXPECT_EQ(fin->in_flight, 0);
  long long slot_jobs = 0;
  for (const report::ServeStatsSlot& s : fin->slots) slot_jobs += s.jobs;
  EXPECT_EQ(slot_jobs, total);

  server.stop();
}

TEST(ServeObs, CrossProcessTraceMergesWorkerSpans) {
  const std::string sock = scratch("sock");
  const std::string trace_path = scratch("trace.json");
  std::remove(sock.c_str());
  std::remove(trace_path.c_str());

  serve::ServeOptions opts;
  opts.socket_path = sock;
  opts.cache_dir.clear();
  opts.workers = 2;
  opts.trace_path = trace_path;
  std::string error;
  {
    serve::Server server(opts);
    ASSERT_TRUE(server.start(&error)) << error;
    // Enough distinct points to keep both workers busy.
    std::vector<flow::FlowConfig> sweep;
    for (int i = 0; i < 4; ++i) sweep.push_back(small_config(0.46 + 0.08 * i));
    std::vector<serve::ResultLine> results;
    ASSERT_TRUE(serve::submit_sweep(sock, sweep, &results, nullptr, &error,
                                    "trace-test-1"))
        << error;
    server.stop();  // merge happens at stop()
  }

  std::ifstream f(trace_path);
  ASSERT_TRUE(f.is_open()) << trace_path;
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string text = ss.str();

  std::string perr;
  const auto doc = report::json::parse(text, &perr);
  ASSERT_TRUE(doc.has_value()) << perr;
  const report::json::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  // ONE file, real pids: the daemon plus at least two worker processes.
  std::set<long long> span_pids;
  std::set<std::string> names;
  for (const report::json::Value& ev : events->items) {
    if (!ev.is_object()) continue;
    const report::json::Value* ph = ev.find("ph");
    if (ph == nullptr || !ph->is_string()) continue;
    if (const report::json::Value* name = ev.find("name");
        name != nullptr && name->is_string() && ph->str == "X") {
      names.insert(name->str);
      span_pids.insert(static_cast<long long>(ev.member_number("pid")));
      EXPECT_GE(ev.member_number("dur"), 0.0);
    }
  }
  EXPECT_TRUE(span_pids.count(static_cast<long long>(::getpid())));
  EXPECT_GE(span_pids.size(), 3u) << "daemon + 2 workers expected";

  // Daemon-side phase spans are labeled per point; the submit span carries
  // the client's trace id; worker spans include the flow stages themselves.
  bool has_queue_wait = false, has_cache_probe = false, has_worker_run = false,
       has_submit = false, has_flow_point = false;
  for (const std::string& n : names) {
    has_queue_wait = has_queue_wait || n.rfind("serve.queue_wait", 0) == 0;
    has_cache_probe = has_cache_probe || n.rfind("serve.cache_probe", 0) == 0;
    has_worker_run = has_worker_run || n.rfind("serve.worker_run", 0) == 0;
    has_submit = has_submit || n == "serve.submit trace-test-1";
    has_flow_point = has_flow_point || n == "flow.point";
  }
  EXPECT_TRUE(has_queue_wait);
  EXPECT_TRUE(has_cache_probe);
  EXPECT_TRUE(has_worker_run);
  EXPECT_TRUE(has_submit);
  EXPECT_TRUE(has_flow_point);
  EXPECT_NE(text.find("\"worker."), std::string::npos);

  std::remove(trace_path.c_str());
}

TEST(ServeObs, ServeAttributionInjectedWhenEnabled) {
  const std::string sock = scratch("sock");
  const std::string cache_dir = scratch("cache");
  const std::string ledger = scratch("ledger.jsonl");
  rm_rf(cache_dir);
  std::remove(sock.c_str());
  std::remove(ledger.c_str());

  serve::ServeOptions opts;
  opts.socket_path = sock;
  opts.cache_dir = cache_dir;
  opts.workers = 1;
  opts.attribution = true;
  opts.ledger_path = ledger;
  serve::Server server(opts);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  const std::vector<flow::FlowConfig> sweep = {small_config(0.5)};
  std::vector<serve::ResultLine> first, second;
  ASSERT_TRUE(serve::submit_sweep(sock, sweep, &first, nullptr, &error))
      << error;
  ASSERT_TRUE(serve::submit_sweep(sock, sweep, &second, nullptr, &error))
      << error;
  server.stop();

  // Both lines carry the gated "serve" object and still parse as
  // flow_report.v1; the run/cache split matches how each was served.
  const std::string jsonl = first[0].line + "\n" + second[0].line + "\n";
  std::istringstream is(jsonl);
  const auto recs = report::read_flow_reports(is);
  ASSERT_EQ(recs.size(), 2u);
  ASSERT_TRUE(recs[0].serve.count("run_ms"));
  EXPECT_GT(recs[0].serve.at("run_ms"), 0.0);
  EXPECT_EQ(recs[0].serve.at("cache_hit"), 0.0);
  EXPECT_GT(recs[0].serve.at("worker_pid"), 0.0);
  EXPECT_EQ(recs[0].serve.at("retries"), 0.0);
  EXPECT_EQ(recs[1].serve.at("cache_hit"), 1.0);
  EXPECT_EQ(recs[1].serve.at("run_ms"), 0.0);

  // Attribution is reported, never gated: the annotated lines remain
  // QoR-identical to an in-process run of the same point.
  expect_qor_identical(run_sweep_jsonl(sweep), jsonl.substr(0, jsonl.find('\n') + 1));

  // The serve ledger got one kind="serve" line per served point.
  std::ifstream lf(ledger);
  ASSERT_TRUE(lf.is_open());
  std::string line;
  int serve_lines = 0;
  while (std::getline(lf, line)) {
    if (line.find("\"kind\":\"serve\"") != std::string::npos) {
      ++serve_lines;
      EXPECT_NE(line.find("\"queue_ms\""), std::string::npos);
      EXPECT_NE(line.find("\"cache_hit\""), std::string::npos);
    }
  }
  EXPECT_EQ(serve_lines, 2);

  // Control: with the plane off (defaults), no "serve" key appears at all.
  const std::string sock2 = scratch("sock2");
  std::remove(sock2.c_str());
  serve::ServeOptions plain;
  plain.socket_path = sock2;
  plain.cache_dir.clear();
  plain.workers = 1;
  serve::Server server2(plain);
  ASSERT_TRUE(server2.start(&error)) << error;
  std::vector<serve::ResultLine> bare;
  ASSERT_TRUE(serve::submit_sweep(sock2, sweep, &bare, nullptr, &error))
      << error;
  EXPECT_EQ(bare[0].line.find("\"serve\""), std::string::npos);
  server2.stop();

  rm_rf(cache_dir);
  std::remove(ledger.c_str());
}
