// Tests for virtual synthesis: fanout buffering and target-frequency gate
// sizing.

#include <gtest/gtest.h>

#include "liberty/characterize.h"
#include "netlist/builder.h"
#include "netlist/sim.h"
#include "riscv/encode.h"
#include "riscv/harness.h"
#include "riscv/rv32.h"
#include "sta/sta.h"
#include "synth/synth.h"

namespace ffet::synth {
namespace {

using netlist::Builder;
using netlist::NetId;

class SynthTest : public ::testing::Test {
 protected:
  SynthTest() : tech_(tech::make_ffet_3p5t()), lib_(stdcell::build_library(tech_)) {
    liberty::characterize_library(lib_);
  }
  tech::Technology tech_;
  stdcell::Library lib_;
};

TEST_F(SynthTest, BuffersHighFanoutNets) {
  Builder b("fo", &lib_);
  const NetId a = b.input("a");
  const NetId x = b.inv(a);
  std::vector<NetId> leaves;
  for (int i = 0; i < 64; ++i) leaves.push_back(b.inv(x));
  b.output("z", b.or_tree(leaves));
  netlist::Netlist nl = b.take();

  SynthOptions so;
  so.target_freq_ghz = 0.1;  // trivially met: only buffering applies
  so.max_fanout = 12;
  const SynthReport rep = size_for_frequency(nl, so);
  EXPECT_GT(rep.buffers_added, 0);
  EXPECT_TRUE(rep.met);
  for (netlist::NetId n = 0; n < nl.num_nets(); ++n) {
    const netlist::Net& net = nl.net(n);
    if (net.is_clock) continue;
    EXPECT_LE(net.sinks.size(), 12u) << nl.net_name(n);
  }
  EXPECT_TRUE(nl.validate().empty());
}

TEST_F(SynthTest, BufferingPreservesFunction) {
  Builder b("fn", &lib_);
  const NetId a = b.input("a");
  const NetId c = b.input("b");
  const NetId x = b.and2(a, c);
  std::vector<NetId> xs;
  for (int i = 0; i < 40; ++i) xs.push_back(b.buf(x));
  b.output("z", b.and_tree(xs));
  netlist::Netlist nl = b.take();
  SynthOptions so;
  so.max_fanout = 8;
  size_for_frequency(nl, so);

  netlist::Simulator sim(&nl);
  for (int mask = 0; mask < 4; ++mask) {
    sim.set_input("a", mask & 1);
    sim.set_input("b", mask & 2);
    sim.evaluate();
    EXPECT_EQ(sim.output("z"), mask == 3);
  }
}

TEST_F(SynthTest, TighterTargetMeansMoreAreaAndHigherFreq) {
  riscv::Rv32Options opt;
  opt.num_registers = 8;

  netlist::Netlist slow = riscv::build_rv32_core(lib_, opt);
  SynthOptions so_slow;
  so_slow.target_freq_ghz = 0.3;
  const SynthReport rep_slow = size_for_frequency(slow, so_slow);

  netlist::Netlist fast = riscv::build_rv32_core(lib_, opt);
  SynthOptions so_fast;
  so_fast.target_freq_ghz = 3.0;
  const SynthReport rep_fast = size_for_frequency(fast, so_fast);

  EXPECT_GT(rep_fast.upsized, rep_slow.upsized);
  EXPECT_GT(fast.stats().total_cell_area_um2, slow.stats().total_cell_area_um2);
  EXPECT_GT(rep_fast.est_freq_ghz, rep_slow.est_freq_ghz * 1.05);
}

TEST_F(SynthTest, SizingPreservesRiscvFunction) {
  namespace e = riscv::enc;
  riscv::Rv32Options opt;
  opt.num_registers = 8;
  netlist::Netlist nl = riscv::build_rv32_core(lib_, opt);
  SynthOptions so;
  so.target_freq_ghz = 2.0;
  size_for_frequency(nl, so);
  EXPECT_TRUE(nl.validate().empty());

  riscv::Rv32Harness h(&nl);
  h.load_program({
      e::addi(1, 0, 21),
      e::add(1, 1, 1),
      e::sw(1, 0, 0x100),
  });
  h.reset();
  h.step(3);
  EXPECT_EQ(h.read_mem(0x100), 42u);
}

TEST_F(SynthTest, ReportsHonestWhenTargetUnreachable) {
  riscv::Rv32Options opt;
  opt.num_registers = 8;
  netlist::Netlist nl = riscv::build_rv32_core(lib_, opt);
  SynthOptions so;
  so.target_freq_ghz = 50.0;  // impossible
  const SynthReport rep = size_for_frequency(nl, so);
  EXPECT_FALSE(rep.met);
  EXPECT_GT(rep.est_freq_ghz, 0.0);
  EXPECT_LT(rep.est_freq_ghz, 50.0);
}

TEST_F(SynthTest, SizingIsIdempotentOnceMet) {
  Builder b("idem", &lib_);
  const NetId a = b.input("a");
  b.output("z", b.inv(b.inv(a)));
  netlist::Netlist nl = b.take();
  SynthOptions so;
  so.target_freq_ghz = 1.0;
  const SynthReport r1 = size_for_frequency(nl, so);
  EXPECT_TRUE(r1.met);
  const int n_before = nl.num_instances();
  const SynthReport r2 = size_for_frequency(nl, so);
  EXPECT_TRUE(r2.met);
  EXPECT_EQ(r2.upsized, 0);
  EXPECT_EQ(nl.num_instances(), n_before);
}

TEST_F(SynthTest, LongNetRepeatersSplitFarSinks) {
  Builder b("long", &lib_);
  const NetId a = b.input("a");
  const NetId x = b.inv(a);
  std::vector<NetId> sinks;
  for (int i = 0; i < 4; ++i) sinks.push_back(b.inv(x));
  b.output("z", b.or_tree(sinks));
  netlist::Netlist nl = b.take();
  // Hand placement: driver at origin, two sinks near, two sinks 30 um away.
  const auto driver = nl.net(x).driver.inst;
  nl.instance(driver).pos = {0, 0};
  int k = 0;
  for (const netlist::PinRef& s : nl.net(x).sinks) {
    nl.instance(s.inst).pos =
        (k++ < 2) ? geom::Point{1000, 0} : geom::Point{30000, 0};
  }
  // Downstream or-tree nets are also long under this hand placement, so
  // more than one repeater may appear; net x must get exactly one.
  const int inserted = buffer_long_nets(nl, 12.0);
  EXPECT_GE(inserted, 1);
  EXPECT_TRUE(nl.validate().empty());
  // The original net keeps the near sinks plus the repeater input.
  EXPECT_EQ(nl.net(x).sinks.size(), 3u);
  // No far sink remains more than the threshold from its (new) driver.
  for (int n = 0; n < nl.num_nets(); ++n) {
    const netlist::Net& net = nl.net(n);
    if (net.driver.inst == netlist::kNoInst || net.is_clock) continue;
    const geom::Point d = nl.pin_position(net.driver);
    for (const netlist::PinRef& s : net.sinks) {
      EXPECT_LE(geom::manhattan(d, nl.pin_position(s)), 2 * 15000)
          << nl.net_name(n);
    }
  }
}

TEST_F(SynthTest, HoldFixInsertsBuffersOnlyWhenViolating) {
  Builder b("hold", &lib_);
  const NetId clk = b.input("clk");
  b.netlist().mark_clock_net(clk);
  const NetId q0 = b.dff(b.input("d"), clk);
  const NetId q1 = b.dff(q0, clk);
  b.output("q", q1);
  netlist::Netlist nl = b.take();
  const auto launch = nl.net(q0).driver.inst;
  const auto capture = nl.net(q1).driver.inst;

  // No skew: nothing to fix.
  std::unordered_map<netlist::InstId, double> flat{{launch, 10.0},
                                                   {capture, 10.0}};
  netlist::Netlist a = nl;
  EXPECT_EQ(fix_hold(a, flat), 0);

  // Heavy capture skew: buffers inserted and the violation resolved.
  std::unordered_map<netlist::InstId, double> skewed{{launch, 0.0},
                                                     {capture, 60.0}};
  netlist::Netlist c = nl;
  const int added = fix_hold(c, skewed);
  EXPECT_GT(added, 0);
  EXPECT_TRUE(c.validate().empty());
  sta::StaOptions so;
  so.derate_early = 0.85;
  so.pi_reference_latency_ps = 30.0;
  sta::Sta sta(&c, nullptr, so);
  sta.analyze_timing(&skewed);
  EXPECT_EQ(sta.analyze_hold(&skewed).violations, 0);
}

}  // namespace
}  // namespace ffet::synth
