// Unit tests for the netlist database, builder DSL, and gate-level
// simulator.

#include <random>

#include <gtest/gtest.h>

#include "netlist/builder.h"
#include "netlist/netlist.h"
#include "netlist/sim.h"
#include "tech/tech.h"

namespace ffet::netlist {
namespace {

class NetlistTest : public ::testing::Test {
 protected:
  tech::Technology tech_ = tech::make_ffet_3p5t();
  stdcell::Library lib_ = stdcell::build_library(tech_);
};

TEST_F(NetlistTest, ConnectTracksDriversAndSinks) {
  Netlist nl("t", &lib_);
  const NetId a = nl.add_net("a");
  const NetId z = nl.add_net("z");
  const InstId inv = nl.add_instance("u1", "INVD1");
  nl.connect(inv, "I", a);
  nl.connect(inv, "ZN", z);
  EXPECT_EQ(nl.net(z).driver.inst, inv);
  ASSERT_EQ(nl.net(a).sinks.size(), 1u);
  EXPECT_EQ(nl.net(a).sinks[0].inst, inv);
}

TEST_F(NetlistTest, RejectsDoubleDriverAndDoubleConnect) {
  Netlist nl("t", &lib_);
  const NetId z = nl.add_net("z");
  const InstId u1 = nl.add_instance("u1", "INVD1");
  const InstId u2 = nl.add_instance("u2", "INVD1");
  nl.connect(u1, "ZN", z);
  EXPECT_THROW(nl.connect(u2, "ZN", z), std::invalid_argument);
  EXPECT_THROW(nl.connect(u1, "ZN", z), std::invalid_argument);
  EXPECT_THROW(nl.connect(u1, "NOPE", z), std::invalid_argument);
}

TEST_F(NetlistTest, RejectsDuplicateNames) {
  Netlist nl("t", &lib_);
  nl.add_net("n");
  EXPECT_THROW(nl.add_net("n"), std::invalid_argument);
  nl.add_instance("u", "INVD1");
  EXPECT_THROW(nl.add_instance("u", "BUFD1"), std::invalid_argument);
}

TEST_F(NetlistTest, ReconnectSinkMovesPin) {
  Netlist nl("t", &lib_);
  const NetId a = nl.add_net("a");
  const NetId bn = nl.add_net("b");
  const InstId inv = nl.add_instance("u1", "INVD1");
  nl.connect(inv, "I", a);
  nl.reconnect_sink(inv, "I", bn);
  EXPECT_TRUE(nl.net(a).sinks.empty());
  ASSERT_EQ(nl.net(bn).sinks.size(), 1u);
  EXPECT_EQ(nl.pin_net(inv, 0), bn);
}

TEST_F(NetlistTest, ResizeKeepsConnectivity) {
  Netlist nl("t", &lib_);
  const NetId a = nl.add_net("a");
  const NetId z = nl.add_net("z");
  const InstId inv = nl.add_instance("u1", "INVD1");
  nl.connect(inv, "I", a);
  nl.connect(inv, "ZN", z);
  nl.resize_instance(inv, &lib_.at("INVD4"));
  EXPECT_EQ(nl.instance(inv).type->name(), "INVD4");
  EXPECT_EQ(nl.net(z).driver.inst, inv);
  EXPECT_THROW(nl.resize_instance(inv, &lib_.at("BUFD1")),
               std::invalid_argument);
}

TEST_F(NetlistTest, ValidateFindsOpensAndUndriven) {
  Netlist nl("t", &lib_);
  const InstId inv = nl.add_instance("u1", "INVD1");
  const NetId z = nl.add_net("z");
  nl.connect(inv, "ZN", z);
  auto problems = nl.validate();  // input I open
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("open pin"), std::string::npos);

  Netlist nl2("t2", &lib_);
  const NetId u = nl2.add_net("u");
  const InstId inv2 = nl2.add_instance("u1", "INVD1");
  nl2.connect(inv2, "I", u);
  const NetId z2 = nl2.add_net("z2");
  nl2.connect(inv2, "ZN", z2);
  auto p2 = nl2.validate();
  ASSERT_EQ(p2.size(), 1u);
  EXPECT_NE(p2[0].find("undriven"), std::string::npos);
}

TEST_F(NetlistTest, StatsCountSequential) {
  Builder b("t", &lib_);
  const NetId clk = b.input("clk");
  const NetId d = b.input("d");
  const NetId q = b.dff(d, clk);
  b.output("q", b.inv(q));
  const Netlist nl = b.take();
  const NetlistStats s = nl.stats();
  EXPECT_EQ(s.num_instances, 2);
  EXPECT_EQ(s.num_sequential, 1);
  EXPECT_GT(s.total_cell_area_um2, 0.0);
}

TEST_F(NetlistTest, TopoOrderRespectsDependencies) {
  Builder b("t", &lib_);
  const NetId a = b.input("a");
  const NetId x = b.inv(a);
  const NetId y = b.inv(x);
  const NetId z = b.and2(x, y);
  b.output("z", z);
  const Netlist nl = b.take();
  const auto order = nl.topo_order();
  ASSERT_EQ(order.size(), 3u);
  std::vector<int> position(nl.num_instances(), -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    position[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  // Driver of z's inputs must precede the AND gate.
  const InstId and_inst = nl.net(z).driver.inst;
  const InstId x_inst = nl.net(x).driver.inst;
  const InstId y_inst = nl.net(y).driver.inst;
  EXPECT_LT(position[static_cast<std::size_t>(x_inst)],
            position[static_cast<std::size_t>(y_inst)]);
  EXPECT_LT(position[static_cast<std::size_t>(y_inst)],
            position[static_cast<std::size_t>(and_inst)]);
}

TEST_F(NetlistTest, TopoOrderDetectsCombinationalCycle) {
  Netlist nl("loop", &lib_);
  const NetId a = nl.add_net("a");
  const NetId bn = nl.add_net("b");
  const InstId u1 = nl.add_instance("u1", "INVD1");
  const InstId u2 = nl.add_instance("u2", "INVD1");
  nl.connect(u1, "I", a);
  nl.connect(u1, "ZN", bn);
  nl.connect(u2, "I", bn);
  nl.connect(u2, "ZN", a);
  EXPECT_THROW(nl.topo_order(), std::runtime_error);
}

TEST_F(NetlistTest, DffFeedbackIsNotACycle) {
  Builder b("t", &lib_);
  const NetId clk = b.input("clk");
  // Toggle flop: q = dff(!q).
  const NetId d = b.wire("d");
  const NetId q = b.dff(d, clk);
  b.drive(d, "INVD1", {q});
  b.output("q", q);
  const Netlist nl = b.take();
  EXPECT_NO_THROW(nl.topo_order());
}

// --- simulator ------------------------------------------------------------

TEST_F(NetlistTest, SimulatorCombinational) {
  Builder b("t", &lib_);
  const NetId a = b.input("a");
  const NetId c = b.input("b");
  b.output("and", b.and2(a, c));
  b.output("xor", b.xor2(a, c));
  b.output("aoi", b.aoi21(a, c, b.zero()));
  const Netlist nl = b.take();
  Simulator sim(&nl);
  for (int mask = 0; mask < 4; ++mask) {
    sim.set_input("a", mask & 1);
    sim.set_input("b", mask & 2);
    sim.evaluate();
    EXPECT_EQ(sim.output("and"), bool(mask == 3));
    EXPECT_EQ(sim.output("xor"), bool(mask == 1 || mask == 2));
    EXPECT_EQ(sim.output("aoi"), !bool(mask == 3));
  }
}

TEST_F(NetlistTest, SimulatorToggleFlop) {
  Builder b("t", &lib_);
  const NetId clk = b.input("clk");
  const NetId d = b.wire("d");
  const NetId q = b.dff(d, clk);
  b.drive(d, "INVD1", {q});
  b.output("q", q);
  const Netlist nl = b.take();
  Simulator sim(&nl);
  sim.evaluate();
  bool prev = sim.output("q");
  for (int i = 0; i < 5; ++i) {
    sim.tick();
    EXPECT_NE(sim.output("q"), prev);
    prev = sim.output("q");
  }
}

TEST_F(NetlistTest, SimulatorDffrReset) {
  Builder b("t", &lib_);
  const NetId clk = b.input("clk");
  const NetId rn = b.input("rn");
  const NetId q = b.dffr(b.one(), clk, rn);
  b.output("q", q);
  const Netlist nl = b.take();
  Simulator sim(&nl);
  sim.set_input("rn", true);
  sim.tick();
  EXPECT_TRUE(sim.output("q"));
  sim.set_input("rn", false);
  sim.evaluate();
  EXPECT_FALSE(sim.output("q"));  // async clear
  sim.tick();
  EXPECT_FALSE(sim.output("q"));
}

TEST_F(NetlistTest, SimulatorBusHelpersAndAdder) {
  Builder b("t", &lib_);
  const Bus a = b.input_bus("a", 8);
  const Bus c = b.input_bus("b", 8);
  const auto [sum, cout] = b.add(a, c, b.zero());
  b.output_bus("s", sum);
  b.output("cout", cout);
  const Netlist nl = b.take();
  Simulator sim(&nl);
  for (unsigned x : {0u, 1u, 37u, 200u, 255u}) {
    for (unsigned y : {0u, 5u, 100u, 255u}) {
      sim.set_bus("a", 8, x);
      sim.set_bus("b", 8, y);
      sim.evaluate();
      EXPECT_EQ(sim.read_bus("s", 8), (x + y) & 0xff) << x << "+" << y;
      EXPECT_EQ(sim.output("cout"), (x + y) > 255) << x << "+" << y;
    }
  }
}

TEST_F(NetlistTest, SimulatorSubAndShift) {
  Builder b("t", &lib_);
  const Bus a = b.input_bus("a", 8);
  const Bus c = b.input_bus("b", 8);
  const auto [diff, nb] = b.sub(a, c);
  b.output_bus("d", diff);
  b.output("noborrow", nb);
  const Bus amt = b.input_bus("amt", 3);
  b.output_bus("sl", b.shift_left(a, amt));
  b.output_bus("srl", b.shift_right(a, amt, b.zero()));
  b.output_bus("sra", b.shift_right(a, amt, b.one()));
  const Netlist nl = b.take();
  Simulator sim(&nl);
  for (unsigned x : {0u, 7u, 130u, 255u}) {
    for (unsigned y : {0u, 7u, 129u}) {
      sim.set_bus("a", 8, x);
      sim.set_bus("b", 8, y);
      for (unsigned s : {0u, 1u, 3u, 7u}) {
        sim.set_bus("amt", 3, s);
        sim.evaluate();
        EXPECT_EQ(sim.read_bus("d", 8), (x - y) & 0xff);
        EXPECT_EQ(sim.output("noborrow"), x >= y);
        EXPECT_EQ(sim.read_bus("sl", 8), (x << s) & 0xff);
        EXPECT_EQ(sim.read_bus("srl", 8), x >> s);
        const auto sx = static_cast<int8_t>(x);
        EXPECT_EQ(sim.read_bus("sra", 8),
                  static_cast<unsigned>(static_cast<int8_t>(sx >> s)) & 0xff);
      }
    }
  }
}

TEST_F(NetlistTest, FastAdderMatchesRippleAdder) {
  // Property: the Sklansky prefix adder is bit-exact with the ripple adder
  // over randomized operands and both carry-in values.
  Builder b("addcmp", &lib_);
  const Bus a = b.input_bus("a", 16);
  const Bus c = b.input_bus("b", 16);
  const NetId cin = b.input("cin");
  const auto [s1, co1] = b.add(a, c, cin);
  const auto [s2, co2] = b.add_fast(a, c, cin);
  b.output_bus("r1_", s1);
  b.output_bus("r2_", s2);
  b.output("co1", co1);
  b.output("co2", co2);
  const Netlist nl = b.take();
  Simulator sim(&nl);
  std::mt19937 rng(5);
  std::uniform_int_distribution<unsigned> v(0, 0xffff);
  for (int i = 0; i < 200; ++i) {
    const unsigned x = v(rng), y = v(rng);
    const bool carry = i % 2;
    sim.set_bus("a", 16, x);
    sim.set_bus("b", 16, y);
    sim.set_input("cin", carry);
    sim.evaluate();
    EXPECT_EQ(sim.read_bus("r1_", 16), sim.read_bus("r2_", 16))
        << x << "+" << y << "+" << carry;
    EXPECT_EQ(sim.output("co1"), sim.output("co2"));
    EXPECT_EQ(sim.read_bus("r2_", 16), (x + y + carry) & 0xffffu);
  }
}

TEST_F(NetlistTest, FastAdderIsShallower) {
  // The point of the prefix adder: logarithmic logic depth.
  auto depth_of = [&](bool fast) {
    Builder b("d", &lib_);
    const Bus a = b.input_bus("a", 32);
    const Bus c = b.input_bus("b", 32);
    const auto r = fast ? b.add_fast(a, c, b.zero()) : b.add(a, c, b.zero());
    b.output("co", r.second);
    Netlist nl = b.take();
    // Depth via longest path in topo order (unit gate delay).
    std::vector<int> depth(static_cast<std::size_t>(nl.num_instances()), 0);
    int max_depth = 0;
    for (InstId id : nl.topo_order()) {
      const Instance& inst = nl.instance(id);
      int d = 0;
      const auto pin_nets = nl.pin_nets(id);
      for (std::size_t p = 0; p < pin_nets.size(); ++p) {
        if (inst.type->pins()[p].dir != stdcell::PinDir::Input) continue;
        const NetId n = pin_nets[p];
        if (n == kNoNet) continue;
        const PinRef drv = nl.net(n).driver;
        if (drv.inst == kNoInst) continue;
        d = std::max(d, depth[static_cast<std::size_t>(drv.inst)]);
      }
      depth[static_cast<std::size_t>(id)] = d + 1;
      max_depth = std::max(max_depth, d + 1);
    }
    return max_depth;
  };
  const int ripple = depth_of(false);
  const int fast = depth_of(true);
  EXPECT_LT(fast, ripple / 3) << "prefix adder must be much shallower";
}

TEST_F(NetlistTest, WallaceMultiplierMatchesReference) {
  Builder b("mul", &lib_);
  const Bus a = b.input_bus("a", 12);
  const Bus c = b.input_bus("b", 12);
  b.output_bus("p", b.multiply(a, c));
  const Netlist nl = b.take();
  Simulator sim(&nl);
  std::mt19937 rng(11);
  std::uniform_int_distribution<unsigned> v(0, 0xfff);
  for (int i = 0; i < 100; ++i) {
    const unsigned x = v(rng), y = v(rng);
    sim.set_bus("a", 12, x);
    sim.set_bus("b", 12, y);
    sim.evaluate();
    EXPECT_EQ(sim.read_bus("p", 24),
              static_cast<std::uint64_t>(x) * y)
        << x << "*" << y;
  }
  // Corner cases.
  for (auto [x, y] : {std::pair{0u, 0u}, {0xfffu, 0xfffu}, {1u, 0xfffu}}) {
    sim.set_bus("a", 12, x);
    sim.set_bus("b", 12, y);
    sim.evaluate();
    EXPECT_EQ(sim.read_bus("p", 24), static_cast<std::uint64_t>(x) * y);
  }
}

TEST_F(NetlistTest, SimulatorTracksActivity) {
  Builder b("t", &lib_);
  const NetId clk = b.input("clk");
  const NetId d = b.wire("d");
  const NetId q = b.dff(d, clk);
  b.drive(d, "INVD1", {q});
  b.output("q", q);
  const Netlist nl = b.take();
  Simulator sim(&nl);
  sim.reset_activity();
  for (int i = 0; i < 10; ++i) sim.tick();
  EXPECT_EQ(sim.cycles(), 10u);
  const NetId qn = *nl.find_net(nl.net_name(q));
  EXPECT_NEAR(sim.toggle_rate(qn), 1.0, 0.01);  // toggles every cycle
}

}  // namespace
}  // namespace ffet::netlist
