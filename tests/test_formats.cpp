// Tests for the exchange formats: structural Verilog round-trip, the
// Liberty writer, and the SPEF writer.

#include <gtest/gtest.h>

#include "extract/spef.h"
#include "io/def.h"
#include "io/verilog.h"
#include "liberty/characterize.h"
#include "liberty/liberty_writer.h"
#include "netlist/builder.h"
#include "netlist/sim.h"
#include "pnr/cts.h"
#include "pnr/floorplan.h"
#include "pnr/placement.h"
#include "pnr/powerplan.h"
#include "riscv/encode.h"
#include "riscv/harness.h"
#include "riscv/rv32.h"

namespace ffet {
namespace {

class FormatsTest : public ::testing::Test {
 protected:
  FormatsTest()
      : tech_(tech::make_ffet_3p5t()), lib_(stdcell::build_library(tech_)) {
    liberty::characterize_library(lib_);
  }
  tech::Technology tech_;
  stdcell::Library lib_;
};

// --- Verilog ---------------------------------------------------------------

TEST_F(FormatsTest, VerilogRoundTripSmallDesign) {
  netlist::Builder b("adder4", &lib_);
  const netlist::Bus a = b.input_bus("a", 4);
  const netlist::Bus c = b.input_bus("b", 4);
  const auto [sum, cout] = b.add(a, c, b.zero());
  b.output_bus("s", sum);
  b.output("cout", cout);
  const netlist::Netlist original = b.take();

  const std::string text = io::to_verilog_string(original);
  EXPECT_NE(text.find("module adder4"), std::string::npos);
  EXPECT_NE(text.find("endmodule"), std::string::npos);

  const netlist::Netlist parsed = io::read_verilog_string(text, lib_);
  EXPECT_EQ(parsed.name(), original.name());
  EXPECT_EQ(parsed.num_instances(), original.num_instances());
  EXPECT_EQ(parsed.num_nets(), original.num_nets());
  EXPECT_EQ(parsed.num_ports(), original.num_ports());
  EXPECT_TRUE(parsed.validate().empty());

  // Functional equivalence via simulation.
  netlist::Simulator s1(&original), s2(&parsed);
  for (unsigned x : {0u, 3u, 9u, 15u}) {
    for (unsigned y : {0u, 7u, 15u}) {
      s1.set_bus("a", 4, x);
      s1.set_bus("b", 4, y);
      s1.evaluate();
      s2.set_bus("a", 4, x);
      s2.set_bus("b", 4, y);
      s2.evaluate();
      EXPECT_EQ(s1.read_bus("s", 4), s2.read_bus("s", 4)) << x << "+" << y;
      EXPECT_EQ(s1.output("cout"), s2.output("cout"));
    }
  }
}

TEST_F(FormatsTest, VerilogRoundTripRv32Core) {
  riscv::Rv32Options opt;
  opt.num_registers = 4;
  const netlist::Netlist core = riscv::build_rv32_core(lib_, opt);
  netlist::Netlist parsed =
      io::read_verilog_string(io::to_verilog_string(core), lib_);
  EXPECT_EQ(parsed.num_instances(), core.num_instances());
  EXPECT_TRUE(parsed.validate().empty());
  // The parsed core still executes programs (clock marking re-applied).
  parsed.mark_clock_net(*parsed.find_net("clk"));
  riscv::Rv32Harness h(&parsed);
  namespace e = riscv::enc;
  h.load_program({e::addi(1, 0, 33), e::addi(1, 1, 9), e::sw(1, 0, 0x40)});
  h.reset();
  h.step(3);
  EXPECT_EQ(h.read_mem(0x40), 42u);
}

TEST_F(FormatsTest, VerilogReaderRejectsBadInput) {
  EXPECT_THROW(io::read_verilog_string("module m (", lib_),
               std::runtime_error);
  EXPECT_THROW(io::read_verilog_string(
                   "module m (a); input a; BOGUS u1 (.I(a)); endmodule",
                   lib_),
               std::runtime_error);
  EXPECT_THROW(io::read_verilog_string(
                   "module m (a); input a; INVD1 u1 (.NOPE(a)); endmodule",
                   lib_),
               std::invalid_argument);
}

TEST_F(FormatsTest, VerilogHandlesComments) {
  const std::string text = R"(
    // leading comment
    module m (a, z);
      input a;   /* block
                    comment */
      output z;
      INVD1 u1 (.I(a), .ZN(z));
    endmodule
  )";
  const netlist::Netlist nl = io::read_verilog_string(text, lib_);
  EXPECT_EQ(nl.num_instances(), 1);
  EXPECT_TRUE(nl.validate().empty());
}

// --- Liberty -----------------------------------------------------------------

TEST_F(FormatsTest, LibertyWriterEmitsAllCellsAndTables) {
  const std::string lib_text = liberty::to_liberty_string(lib_);
  EXPECT_NE(lib_text.find("library (ffet3p5t)"), std::string::npos);
  EXPECT_NE(lib_text.find("lu_table_template"), std::string::npos);
  for (const auto& cell : lib_.cells()) {
    EXPECT_NE(lib_text.find("cell (" + cell->name() + ")"),
              std::string::npos)
        << cell->name();
  }
  // NLDM content present.
  EXPECT_NE(lib_text.find("cell_rise"), std::string::npos);
  EXPECT_NE(lib_text.find("fall_transition"), std::string::npos);
  EXPECT_NE(lib_text.find("internal_power"), std::string::npos);
  // The dual-sided pin annotation (front/back/both).
  EXPECT_NE(lib_text.find("ffet_pin_side : \"both\""), std::string::npos);
  // Balanced braces.
  const auto opens = std::count(lib_text.begin(), lib_text.end(), '{');
  const auto closes = std::count(lib_text.begin(), lib_text.end(), '}');
  EXPECT_EQ(opens, closes);
}

TEST_F(FormatsTest, LibertyWriterCfetHasNoBacksidePins) {
  tech::Technology cfet = tech::make_cfet_4t();
  stdcell::Library clib = stdcell::build_library(cfet);
  liberty::characterize_library(clib);
  const std::string text = liberty::to_liberty_string(clib);
  EXPECT_EQ(text.find("ffet_pin_side : \"both\""), std::string::npos);
  EXPECT_EQ(text.find("ffet_pin_side : \"back\""), std::string::npos);
}

// --- SPEF ---------------------------------------------------------------------

TEST_F(FormatsTest, SpefWriterStructure) {
  // Small routed design end to end.
  stdcell::PinConfig pc;
  pc.backside_input_fraction = 0.5;
  stdcell::Library dual = stdcell::build_library(tech_, pc);
  liberty::characterize_library(dual);
  riscv::Rv32Options opt;
  opt.num_registers = 4;
  netlist::Netlist nl = riscv::build_rv32_core(dual, opt);
  pnr::FloorplanOptions fo;
  fo.target_utilization = 0.6;
  const pnr::Floorplan fp = pnr::make_floorplan(nl, tech_, fo);
  const pnr::PowerPlan pp = pnr::build_power_plan(nl, fp, dual);
  pnr::place(nl, fp, pp);
  pnr::build_clock_tree(nl, fp);
  const pnr::RouteResult rr = pnr::route_design(nl, fp);
  const io::Def merged =
      io::merge_defs(io::build_def(nl, rr, tech::Side::Front),
                     io::build_def(nl, rr, tech::Side::Back));
  const extract::RcNetlist rc = extract::extract_rc(merged, nl, tech_);

  const std::string spef = extract::to_spef_string(rc, nl);
  EXPECT_NE(spef.find("*SPEF"), std::string::npos);
  EXPECT_NE(spef.find("*DESIGN \"rv32_core\""), std::string::npos);
  EXPECT_NE(spef.find("*D_NET"), std::string::npos);
  EXPECT_NE(spef.find("*RES"), std::string::npos);
  EXPECT_NE(spef.find("side=back"), std::string::npos)
      << "dual-sided parasitics must appear";
  // One D_NET per connected net.
  long d_nets = 0;
  for (std::size_t pos = 0; (pos = spef.find("*D_NET", pos)) != std::string::npos;
       pos += 6) {
    ++d_nets;
  }
  long connected = 0;
  for (const netlist::Net& n : nl.nets()) {
    if (n.driver.inst != netlist::kNoInst || !n.sinks.empty()) ++connected;
  }
  EXPECT_EQ(d_nets, connected);
}

TEST_F(FormatsTest, LefRoundTripReproducesGeometryAndPinSides) {
  stdcell::PinConfig pc;
  pc.backside_input_fraction = 0.3;
  const stdcell::Library original = stdcell::build_library(tech_, pc);
  const stdcell::Library parsed =
      io::read_lef_string(io::to_lef_string(original), tech_);

  ASSERT_EQ(parsed.cells().size(), original.cells().size());
  for (const auto& cell : original.cells()) {
    const stdcell::CellType* p = parsed.find(cell->name());
    ASSERT_NE(p, nullptr) << cell->name();
    EXPECT_EQ(p->width(), cell->width()) << cell->name();
    EXPECT_EQ(p->height(), cell->height()) << cell->name();
    EXPECT_EQ(p->function(), cell->function()) << cell->name();
    EXPECT_EQ(p->structure().drive, cell->structure().drive) << cell->name();
    ASSERT_EQ(p->pins().size(), cell->pins().size()) << cell->name();
    for (std::size_t i = 0; i < cell->pins().size(); ++i) {
      EXPECT_EQ(p->pins()[i].name, cell->pins()[i].name) << cell->name();
      EXPECT_EQ(p->pins()[i].dir, cell->pins()[i].dir)
          << cell->name() << "/" << cell->pins()[i].name;
      EXPECT_EQ(p->pins()[i].side, cell->pins()[i].side)
          << cell->name() << "/" << cell->pins()[i].name;
    }
  }
  EXPECT_EQ(parsed.tap_cell_name(), original.tap_cell_name());

  // The parsed library is physical-only but characterizable and usable for
  // netlist construction end to end.
  stdcell::Library lib2 =
      io::read_lef_string(io::to_lef_string(original), tech_);
  liberty::characterize_library(lib2);
  netlist::Builder b("onparsed", &lib2);
  b.output("z", b.inv(b.input("a")));
  EXPECT_TRUE(b.take().validate().empty());
}

TEST_F(FormatsTest, LefReaderRejectsGarbage) {
  EXPECT_THROW(io::read_lef_string("VERSION 5.8 ;", tech_),
               std::runtime_error);
  EXPECT_THROW(io::read_lef_string(
                   "MACRO WEIRDCELL\n  SIZE 0.1 BY 0.105 ;\nEND WEIRDCELL\n",
                   tech_),
               std::runtime_error);
}

TEST_F(FormatsTest, SpefRoundTripReproducesRc) {
  stdcell::PinConfig pc;
  pc.backside_input_fraction = 0.5;
  stdcell::Library dual = stdcell::build_library(tech_, pc);
  liberty::characterize_library(dual);
  riscv::Rv32Options opt;
  opt.num_registers = 4;
  netlist::Netlist nl = riscv::build_rv32_core(dual, opt);
  pnr::FloorplanOptions fo;
  fo.target_utilization = 0.6;
  const pnr::Floorplan fp = pnr::make_floorplan(nl, tech_, fo);
  const pnr::PowerPlan pp = pnr::build_power_plan(nl, fp, dual);
  pnr::place(nl, fp, pp);
  pnr::build_clock_tree(nl, fp);
  const pnr::RouteResult rr = pnr::route_design(nl, fp);
  const io::Def merged =
      io::merge_defs(io::build_def(nl, rr, tech::Side::Front),
                     io::build_def(nl, rr, tech::Side::Back));
  const extract::RcNetlist rc = extract::extract_rc(merged, nl, tech_);

  const extract::RcNetlist again =
      extract::read_spef_string(extract::to_spef_string(rc, nl), nl);
  ASSERT_EQ(again.num_trees(), rc.num_trees());
  EXPECT_NEAR(again.total_wire_cap_ff, rc.total_wire_cap_ff,
              1e-3 * rc.total_wire_cap_ff + 1e-6);
  int compared = 0;
  for (std::size_t n = 0; n < rc.num_trees(); ++n) {
    const auto a = rc.tree(static_cast<netlist::NetId>(n));
    const auto b = again.tree(static_cast<netlist::NetId>(n));
    EXPECT_NEAR(b.total_cap_ff, a.total_cap_ff, 1e-6 + 1e-4 * a.total_cap_ff)
        << nl.net_name(static_cast<netlist::NetId>(n));
    ASSERT_EQ(b.sink_nodes.size(), a.sink_nodes.size())
        << nl.net_name(static_cast<netlist::NetId>(n));
    for (std::size_t s = 0; s < a.sink_nodes.size(); ++s) {
      EXPECT_NEAR(b.elmore_to_sink(s), a.elmore_to_sink(s),
                  1e-6 + 1e-4 * a.elmore_to_sink(s))
          << nl.net_name(static_cast<netlist::NetId>(n));
      ++compared;
    }
  }
  EXPECT_GT(compared, 1000);
}

// The accumulator_* DEFs (examples/dual_sided_routing) round-trip: writing
// both sides' DEFs, reading them back, merging and re-extracting must give
// bitwise-identical RC trees — DEF text is the flow's extraction input, so
// any writer/reader loss would silently skew downstream timing.
TEST_F(FormatsTest, AccumulatorDefRoundTripReExtractsIdentically) {
  stdcell::PinConfig pc;
  pc.backside_input_fraction = 0.5;
  stdcell::Library dual = stdcell::build_library(tech_, pc);
  liberty::characterize_library(dual);

  netlist::Builder b("accumulator", &dual);
  const netlist::NetId clk = b.input("clk");
  b.netlist().mark_clock_net(clk);
  const netlist::NetId rst_n = b.input("rst_n");
  const netlist::Bus din = b.input_bus("din", 8);
  const netlist::Bus acc_d = b.wires(8, "acc_d");
  const netlist::Bus acc_q = b.dffr_bus(acc_d, clk, rst_n);
  const auto [sum, carry] = b.add(acc_q, din, b.zero());
  for (int i = 0; i < 8; ++i) {
    b.drive(acc_d[static_cast<std::size_t>(i)], "BUFD1",
            {sum[static_cast<std::size_t>(i)]});
  }
  b.output_bus("acc", acc_q);
  b.output("carry", carry);
  netlist::NetId parity = acc_q[0];
  for (int i = 1; i < 8; ++i) {
    parity = b.xor2(parity, acc_q[static_cast<std::size_t>(i)]);
  }
  b.output("parity", parity);
  netlist::Netlist nl = b.take();

  pnr::FloorplanOptions fo;
  fo.target_utilization = 0.6;
  const pnr::Floorplan fp = pnr::make_floorplan(nl, tech_, fo);
  const pnr::PowerPlan pp = pnr::build_power_plan(nl, fp, dual);
  pnr::place(nl, fp, pp);
  pnr::build_clock_tree(nl, fp);
  const pnr::RouteResult rr = pnr::route_design(nl, fp);

  const io::Def front = io::build_def(nl, rr, tech::Side::Front);
  const io::Def back = io::build_def(nl, rr, tech::Side::Back);
  const extract::RcNetlist rc =
      extract::extract_rc(io::merge_defs(front, back), nl, tech_);

  // Write → read each side, merge, re-extract.
  const io::Def front2 = io::read_def_string(io::to_def_string(front));
  const io::Def back2 = io::read_def_string(io::to_def_string(back));
  const extract::RcNetlist rc2 =
      extract::extract_rc(io::merge_defs(front2, back2), nl, tech_);

  ASSERT_EQ(rc2.num_trees(), rc.num_trees());
  EXPECT_EQ(rc2.total_wire_cap_ff, rc.total_wire_cap_ff);
  EXPECT_EQ(rc2.total_wire_res_kohm, rc.total_wire_res_kohm);
  bool saw_dual_sided = false;
  for (std::size_t n = 0; n < rc.num_trees(); ++n) {
    const netlist::NetId id = static_cast<netlist::NetId>(n);
    const std::string nname = nl.net_name(id);
    const extract::RcTreeView a = rc.tree(id);
    const extract::RcTreeView c = rc2.tree(id);
    ASSERT_EQ(c.nodes.size(), a.nodes.size()) << nname;
    EXPECT_EQ(c.total_cap_ff, a.total_cap_ff) << nname;
    EXPECT_EQ(c.wire_cap_ff, a.wire_cap_ff) << nname;
    bool has_f = false, has_b = false;
    for (std::size_t i = 0; i < a.nodes.size(); ++i) {
      EXPECT_EQ(c.nodes[i].parent, a.nodes[i].parent) << nname;
      EXPECT_EQ(c.nodes[i].r_ohm, a.nodes[i].r_ohm) << nname;
      EXPECT_EQ(c.nodes[i].cap_ff, a.nodes[i].cap_ff) << nname;
      EXPECT_EQ(c.nodes[i].side, a.nodes[i].side) << nname;
      EXPECT_EQ(c.elmore_ps[i], a.elmore_ps[i]) << nname;
      (a.nodes[i].side == tech::Side::Front ? has_f : has_b) = true;
    }
    ASSERT_EQ(c.sink_nodes.size(), a.sink_nodes.size()) << nname;
    for (std::size_t i = 0; i < a.sink_nodes.size(); ++i) {
      EXPECT_EQ(c.sink_nodes[i], a.sink_nodes[i]) << nname;
    }
    saw_dual_sided |= has_f && has_b;
  }
  EXPECT_TRUE(saw_dual_sided) << "fixture must exercise dual-sided trees";

  // And the SPEF emitted from the re-extracted parasitics reads back to
  // the same totals (write -> read -> compare, accumulator flavor of the
  // RV32 round-trip above).
  const extract::RcNetlist spef_rt =
      extract::read_spef_string(extract::to_spef_string(rc2, nl), nl);
  ASSERT_EQ(spef_rt.num_trees(), rc.num_trees());
  for (std::size_t n = 0; n < rc.num_trees(); ++n) {
    const netlist::NetId id = static_cast<netlist::NetId>(n);
    EXPECT_NEAR(spef_rt.tree(id).total_cap_ff, rc.tree(id).total_cap_ff,
                1e-6 + 1e-4 * rc.tree(id).total_cap_ff)
        << nl.net_name(id);
  }
}

TEST_F(FormatsTest, SpefReaderRejectsUnknownNet) {
  netlist::Builder b("x", &lib_);
  b.output("z", b.inv(b.input("a")));
  const netlist::Netlist nl = b.take();
  EXPECT_THROW(
      extract::read_spef_string("*D_NET bogus 1.0\n*END\n", nl),
      std::runtime_error);
}

}  // namespace
}  // namespace ffet
