// test_runtime — the work-stealing pool, parallel_for/parallel_invoke, and
// the determinism contract of the parallel flow stages: every parallel
// configuration must produce results bit-identical to the serial path.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "flow/flow.h"
#include "liberty/characterize.h"
#include "netlist/builder.h"
#include "pnr/cts.h"
#include "pnr/floorplan.h"
#include "pnr/placement.h"
#include "pnr/powerplan.h"
#include "pnr/router.h"
#include "runtime/thread_pool.h"
#include "stdcell/nldm.h"

namespace ffet {
namespace {

TEST(ResolveThreads, ExplicitRequestWins) {
  EXPECT_EQ(runtime::resolve_threads(3), 3);
  EXPECT_EQ(runtime::resolve_threads(1), 1);
}

TEST(ResolveThreads, EnvFallbackAndDefault) {
  ::setenv("FFET_THREADS", "5", 1);
  EXPECT_EQ(runtime::resolve_threads(0), 5);
  EXPECT_EQ(runtime::resolve_threads(2), 2);  // explicit still wins
  ::unsetenv("FFET_THREADS");
  EXPECT_GE(runtime::resolve_threads(0), 1);  // hardware concurrency
}

TEST(ThreadPool, DrainsAllTasksOnDestruction) {
  std::atomic<int> count{0};
  {
    runtime::ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
  }  // destructor joins only after the queues are empty
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  runtime::ThreadPool pool(0);
  ASSERT_EQ(pool.workers(), 0);
  int ran = 0;
  pool.submit([&ran] { ran = 1; });
  EXPECT_EQ(ran, 1);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  runtime::parallel_for(
      kN, [&](std::size_t i) { hits[i].fetch_add(1); }, 4, 7);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, SerialAtOneThreadPreservesOrder) {
  std::vector<std::size_t> seen;
  runtime::parallel_for(
      64, [&](std::size_t i) { seen.push_back(i); }, 1);
  ASSERT_EQ(seen.size(), 64u);
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      runtime::parallel_for(
          100,
          [](std::size_t i) {
            if (i == 37) throw std::runtime_error("boom");
          },
          4),
      std::runtime_error);
}

TEST(ParallelFor, NestedCallsComplete) {
  std::atomic<int> sum{0};
  runtime::parallel_for(
      8,
      [&](std::size_t) {
        runtime::parallel_for(
            16, [&](std::size_t) { sum.fetch_add(1); }, 4);
      },
      4);
  EXPECT_EQ(sum.load(), 8 * 16);
}

TEST(ParallelInvoke, RunsAllBranches) {
  int a = 0, b = 0, c = 0;
  runtime::parallel_invoke(4, [&] { a = 1; }, [&] { b = 2; }, [&] { c = 3; });
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
  EXPECT_EQ(c, 3);
}

/// The dual-sided accumulator from examples/dual_sided_routing.cpp: the
/// parity tree gives the nets sinks on both wafer sides, so the concurrent
/// per-side router actually has two non-trivial partitions to race.
netlist::Netlist build_accumulator(const stdcell::Library& lib) {
  netlist::Builder b("accumulator", &lib);
  const netlist::NetId clk = b.input("clk");
  b.netlist().mark_clock_net(clk);
  const netlist::NetId rst_n = b.input("rst_n");
  const netlist::Bus din = b.input_bus("din", 8);
  const netlist::Bus acc_d = b.wires(8, "acc_d");
  const netlist::Bus acc_q = b.dffr_bus(acc_d, clk, rst_n);
  const auto [sum, carry] = b.add(acc_q, din, b.zero());
  for (int i = 0; i < 8; ++i) {
    b.drive(acc_d[static_cast<std::size_t>(i)], "BUFD1",
            {sum[static_cast<std::size_t>(i)]});
  }
  b.output_bus("acc", acc_q);
  b.output("carry", carry);
  netlist::NetId parity = acc_q[0];
  for (int i = 1; i < 8; ++i) {
    parity = b.xor2(parity, acc_q[static_cast<std::size_t>(i)]);
  }
  b.output("parity", parity);
  return b.take();
}

TEST(Determinism, ConcurrentSideRoutingMatchesSerial) {
  tech::Technology tech = tech::make_ffet_3p5t();
  stdcell::PinConfig pins;
  pins.backside_input_fraction = 0.5;
  stdcell::Library lib = stdcell::build_library(tech, pins);
  liberty::characterize_library(lib);
  netlist::Netlist nl = build_accumulator(lib);

  pnr::FloorplanOptions fo;
  fo.target_utilization = 0.6;
  const pnr::Floorplan fp = pnr::make_floorplan(nl, tech, fo);
  const pnr::PowerPlan pp = pnr::build_power_plan(nl, fp, lib);
  pnr::place(nl, fp, pp);
  pnr::build_clock_tree(nl, fp);

  pnr::RouteOptions serial;
  serial.threads = 1;
  pnr::RouteOptions parallel;
  parallel.threads = 4;
  const pnr::RouteResult a = pnr::route_design(nl, fp, serial);
  const pnr::RouteResult b = pnr::route_design(nl, fp, parallel);

  ASSERT_EQ(a.routes.size(), b.routes.size());
  for (std::size_t i = 0; i < a.routes.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a.routes[i].net, b.routes[i].net);
    EXPECT_EQ(a.routes[i].side, b.routes[i].side);
    EXPECT_EQ(a.routes[i].edges, b.routes[i].edges);
    EXPECT_EQ(a.routes[i].sink_gcells, b.routes[i].sink_gcells);
    EXPECT_EQ(a.routes[i].source_gcell, b.routes[i].source_gcell);
    EXPECT_DOUBLE_EQ(a.routes[i].wirelength_um, b.routes[i].wirelength_um);
  }
  EXPECT_DOUBLE_EQ(a.wirelength_front_um, b.wirelength_front_um);
  EXPECT_DOUBLE_EQ(a.wirelength_back_um, b.wirelength_back_um);
  EXPECT_EQ(a.overflow_total, b.overflow_total);
  EXPECT_EQ(a.drv_estimate, b.drv_estimate);
  EXPECT_EQ(a.valid, b.valid);
}

TEST(Determinism, RunSweepMatchesSerialRunPhysical) {
  flow::FlowConfig base;
  base.rv32_registers = 8;  // small core keeps the sweep affordable
  base.target_freq_ghz = 1.5;
  base.threads = 1;
  const auto ctx = flow::prepare_design(base);

  std::vector<flow::FlowConfig> configs;
  for (double u : {0.55, 0.65, 0.75}) {
    flow::FlowConfig cfg = base;
    cfg.utilization = u;
    configs.push_back(cfg);
  }

  std::vector<flow::FlowResult> serial;
  for (const flow::FlowConfig& cfg : configs) {
    serial.push_back(flow::run_physical(*ctx, cfg));
  }
  const std::vector<flow::FlowResult> parallel =
      flow::run_sweep(*ctx, configs, 4);

  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_DOUBLE_EQ(parallel[i].achieved_freq_ghz,
                     serial[i].achieved_freq_ghz);
    EXPECT_DOUBLE_EQ(parallel[i].critical_path_ps,
                     serial[i].critical_path_ps);
    EXPECT_DOUBLE_EQ(parallel[i].power_uw, serial[i].power_uw);
    EXPECT_DOUBLE_EQ(parallel[i].hpwl_um, serial[i].hpwl_um);
    EXPECT_DOUBLE_EQ(parallel[i].hold_slack_ps, serial[i].hold_slack_ps);
    EXPECT_EQ(parallel[i].drv, serial[i].drv);
    EXPECT_EQ(parallel[i].placement_legal, serial[i].placement_legal);
    EXPECT_DOUBLE_EQ(parallel[i].wirelength_front_um,
                     serial[i].wirelength_front_um);
    EXPECT_DOUBLE_EQ(parallel[i].wirelength_back_um,
                     serial[i].wirelength_back_um);
  }
}

TEST(CharacterizationCache, SecondBuildHitsAndMatches) {
  liberty::clear_characterization_cache();
  tech::Technology tech = tech::make_ffet_3p5t();
  stdcell::Library first = stdcell::build_library(tech);
  liberty::characterize_library(first);
  stdcell::Library second = stdcell::build_library(tech);
  liberty::characterize_library(second);

  const liberty::CharacterizeCacheStats stats =
      liberty::characterization_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_GE(stats.hits, 1u);

  // The cached application must be indistinguishable from characterizing.
  for (const auto& cell : first.cells()) {
    const stdcell::CellType* other = second.find(cell->name());
    ASSERT_NE(other, nullptr);
    ASSERT_EQ(cell->pins().size(), other->pins().size());
    for (std::size_t p = 0; p < cell->pins().size(); ++p) {
      EXPECT_DOUBLE_EQ(cell->pins()[p].cap_ff, other->pins()[p].cap_ff);
    }
    const stdcell::TimingModel* ma = cell->timing_model();
    const stdcell::TimingModel* mb = other->timing_model();
    ASSERT_EQ(ma == nullptr, mb == nullptr);
    if (!ma) continue;
    EXPECT_DOUBLE_EQ(ma->leakage_nw, mb->leakage_nw);
    EXPECT_DOUBLE_EQ(ma->setup_ps, mb->setup_ps);
    ASSERT_EQ(ma->arcs.size(), mb->arcs.size());
    for (std::size_t a = 0; a < ma->arcs.size(); ++a) {
      EXPECT_EQ(ma->arcs[a].delay_rise.values(),
                mb->arcs[a].delay_rise.values());
      EXPECT_EQ(ma->arcs[a].energy_fall.values(),
                mb->arcs[a].energy_fall.values());
    }
  }

  // Different axes must not hit the same entry.
  liberty::CharacterizeOptions other_axes;
  other_axes.slew_axis_ps = {4, 8, 30};
  other_axes.load_axis_ff = {1, 5, 20};
  stdcell::Library third = stdcell::build_library(tech);
  liberty::characterize_library(third, other_axes);
  EXPECT_EQ(liberty::characterization_cache_stats().misses, 2u);
}

}  // namespace
}  // namespace ffet
