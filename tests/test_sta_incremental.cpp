// Tests for incremental STA (Sta::update_timing): after arbitrary dirtied
// pin/net sets — with and without real netlist mutations — the incremental
// re-propagation must be *bit-identical* to a fresh full analyze_timing on
// the same netlist state, while recomputing only the affected cone.  This
// binary also runs under TSan in CI at threads = 4.

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "liberty/characterize.h"
#include "netlist/builder.h"
#include "sta/sta.h"

namespace ffet::sta {
namespace {

using netlist::Builder;
using netlist::Bus;
using netlist::InstId;
using netlist::NetId;

class StaIncrementalTest : public ::testing::Test {
 protected:
  StaIncrementalTest()
      : tech_(tech::make_ffet_3p5t()), lib_(stdcell::build_library(tech_)) {
    liberty::characterize_library(lib_);
  }

  /// A register-bounded arithmetic block with reconvergence: wide enough
  /// that dirty cones are a strict subset of the design.
  netlist::Netlist make_design(int bits) {
    Builder b("incr", &lib_);
    const NetId clk = b.input("clk");
    b.netlist().mark_clock_net(clk);
    const Bus a = b.input_bus("a", bits);
    const Bus c = b.input_bus("b", bits);
    const Bus aq = b.dff_bus(a, clk);
    const Bus bq = b.dff_bus(c, clk);
    const auto [sum, carry] = b.add(aq, bq, b.zero());
    const Bus sq = b.dff_bus(sum, clk);
    NetId parity = sq[0];
    for (int i = 1; i < bits; ++i) {
      parity = b.xor2(parity, sq[static_cast<std::size_t>(i)]);
    }
    b.output("parity", parity);
    b.output("carry", b.dff(carry, clk));
    return b.take();
  }

  /// Bitwise equality of everything an analysis exposes: the report, the
  /// per-endpoint path delays, and the worst-path ordering.
  static void expect_bit_identical(const TimingReport& got,
                                   const TimingReport& want, Sta& got_sta,
                                   Sta& want_sta) {
    EXPECT_EQ(got.critical_path_ps, want.critical_path_ps);
    EXPECT_EQ(got.achieved_freq_ghz, want.achieved_freq_ghz);
    EXPECT_EQ(got.max_slew_ps, want.max_slew_ps);
    EXPECT_EQ(got.endpoints, want.endpoints);
    EXPECT_EQ(got.critical_path, want.critical_path);
    const auto gp = got_sta.worst_paths(got.endpoints);
    const auto wp = want_sta.worst_paths(want.endpoints);
    ASSERT_EQ(gp.size(), wp.size());
    for (std::size_t i = 0; i < gp.size(); ++i) {
      EXPECT_EQ(gp[i].endpoint, wp[i].endpoint) << "rank " << i;
      EXPECT_EQ(gp[i].is_port, wp[i].is_port) << "rank " << i;
      EXPECT_EQ(gp[i].path_ps, wp[i].path_ps) << "rank " << i;
    }
  }

  tech::Technology tech_;
  stdcell::Library lib_;
};

TEST_F(StaIncrementalTest, RandomDirtySetsWithoutMutationAreNoOps) {
  netlist::Netlist nl = make_design(8);
  StaOptions so;
  so.threads = 4;  // exercised under TSan in CI
  Sta sta(&nl, nullptr, so);
  const TimingReport full = sta.analyze_timing();

  std::mt19937 rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    DirtySet dirty;
    const int k = 1 + static_cast<int>(rng() % 5);
    for (int i = 0; i < k; ++i) {
      dirty.nets.push_back(static_cast<NetId>(rng() % nl.num_nets()));
      dirty.insts.push_back(static_cast<InstId>(rng() % nl.num_instances()));
    }
    const TimingReport upd = sta.update_timing(dirty);
    Sta fresh(&nl, nullptr, so);
    TimingReport ref = fresh.analyze_timing();
    expect_bit_identical(upd, ref, sta, fresh);
    EXPECT_EQ(upd.critical_path_ps, full.critical_path_ps);
    // Nothing actually changed: propagation must stop early, not sweep
    // the whole design.
    EXPECT_LT(sta.last_update_recomputed(), nl.num_instances());
  }
}

TEST_F(StaIncrementalTest, ResizeMutationsMatchFullAnalysis) {
  netlist::Netlist nl = make_design(8);
  StaOptions so;
  so.threads = 4;
  Sta sta(&nl, nullptr, so);
  sta.analyze_timing();

  std::mt19937 rng(11);
  int mutated = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const auto id = static_cast<InstId>(rng() % nl.num_instances());
    const netlist::Instance& inst = nl.instance(id);
    if (inst.type->sequential() || inst.type->physical_only()) continue;
    // Swap drive strength: D1 <-> D2 where the library has both.
    const std::string base(stdcell::to_string(inst.type->function()));
    const stdcell::CellType* other =
        lib_.find(base + (inst.type->structure().drive == 1 ? "D2" : "D1"));
    if (!other || other == inst.type) continue;
    nl.resize_instance(id, other);
    ++mutated;

    DirtySet dirty;
    dirty.insts.push_back(id);
    for (const NetId n : nl.pin_nets(id)) {
      if (n != netlist::kNoNet) dirty.nets.push_back(n);
    }
    const TimingReport upd = sta.update_timing(dirty);
    Sta fresh(&nl, nullptr, so);
    TimingReport ref = fresh.analyze_timing();
    expect_bit_identical(upd, ref, sta, fresh);
  }
  EXPECT_GT(mutated, 5);
}

TEST_F(StaIncrementalTest, StructuralBufferInsertMatchesFullAnalysis) {
  netlist::Netlist nl = make_design(6);
  Sta sta(&nl, nullptr);
  sta.analyze_timing();

  // Splice a buffer into the first multi-sink combinational net.
  const stdcell::CellType* buf = lib_.find("BUFD2");
  ASSERT_NE(buf, nullptr);
  NetId victim = netlist::kNoNet;
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    const netlist::Net& net = nl.net(n);
    if (net.is_clock || net.driver.inst == netlist::kNoInst) continue;
    if (net.sinks.size() >= 2) {
      victim = n;
      break;
    }
  }
  ASSERT_NE(victim, netlist::kNoNet);

  const NetId leaf = nl.add_net("eco_test_leaf");
  const InstId bid = nl.add_instance("eco_test_buf", buf);
  // Move every sink of the victim onto the new leaf, then drive the leaf
  // through the buffer.
  const std::vector<netlist::PinRef> sinks = nl.net(victim).sinks;
  for (const netlist::PinRef& s : sinks) {
    nl.reconnect_sink(s.inst, nl.instance(s.inst).type->pins()
                                  [static_cast<std::size_t>(s.pin)]
                                      .name,
                      leaf);
  }
  nl.connect(bid, "I", victim);
  nl.connect(bid, "Z", leaf);

  DirtySet dirty;
  dirty.nets = {victim, leaf};
  dirty.insts = {bid};
  dirty.structure_changed = true;
  const TimingReport upd = sta.update_timing(dirty);
  Sta fresh(&nl, nullptr);
  TimingReport ref = fresh.analyze_timing();
  expect_bit_identical(upd, ref, sta, fresh);
}

TEST_F(StaIncrementalTest, WorstPathsOrderingAndEndpointQueries) {
  netlist::Netlist nl = make_design(8);
  Sta sta(&nl, nullptr);
  const TimingReport rep = sta.analyze_timing();

  const auto paths = sta.worst_paths(rep.endpoints);
  ASSERT_EQ(static_cast<int>(paths.size()), rep.endpoints);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i - 1].path_ps, paths[i].path_ps) << "rank " << i;
  }
  // The head of the list carries the critical path's delay, and the
  // per-endpoint query agrees with the stored ranking.
  EXPECT_EQ(paths[0].path_ps + 0.0, paths[0].path_ps);
  for (const PathEnd& e : paths) {
    EXPECT_EQ(sta.endpoint_path_ps(e.endpoint, e.is_port), e.path_ps);
    const auto insts = sta.path_instances(e);
    ASSERT_FALSE(insts.empty());
    EXPECT_EQ(insts.back(), e.endpoint);
  }
  // worst_paths(k) is a prefix of worst_paths(all).
  const auto top3 = sta.worst_paths(3);
  ASSERT_EQ(top3.size(), 3u);
  for (std::size_t i = 0; i < top3.size(); ++i) {
    EXPECT_EQ(top3[i].endpoint, paths[i].endpoint);
    EXPECT_EQ(top3[i].path_ps, paths[i].path_ps);
  }
}

TEST_F(StaIncrementalTest, ThreadCountDoesNotChangeResults) {
  netlist::Netlist nl = make_design(8);
  StaOptions s1, s4;
  s1.threads = 1;
  s4.threads = 4;
  Sta a(&nl, nullptr, s1), b(&nl, nullptr, s4);
  const TimingReport r1 = a.analyze_timing();
  const TimingReport r4 = b.analyze_timing();
  EXPECT_EQ(r1.critical_path_ps, r4.critical_path_ps);
  EXPECT_EQ(r1.max_slew_ps, r4.max_slew_ps);
  EXPECT_EQ(r1.critical_path, r4.critical_path);

  DirtySet dirty;
  dirty.nets = {0, 1, 2};
  const TimingReport u1 = a.update_timing(dirty);
  const TimingReport u4 = b.update_timing(dirty);
  EXPECT_EQ(u1.critical_path_ps, u4.critical_path_ps);
  EXPECT_EQ(u1.critical_path, u4.critical_path);
}

}  // namespace
}  // namespace ffet::sta
