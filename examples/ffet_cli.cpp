// ffet_cli — command-line front end for the evaluation framework.
//
// Runs one flow configuration and prints the PPA summary; optionally dumps
// the design artifacts (LEF, Liberty, Verilog, per-side DEFs, merged DEF,
// SPEF) the way the paper's tool chain would exchange them.
//
//   ffet_cli [options]
//     --tech ffet|cfet          technology (default ffet)
//     --fm N                    frontside routing layers (default 12)
//     --bm N                    backside routing layers (default 12; 0 for
//                               single-sided; ignored for cfet)
//     --backside-pins F         input-pin DoE fraction 0..1 (default 0)
//     --util F                  placement utilization (default 0.7)
//     --freq F                  synthesis target GHz (default 1.5)
//     --registers N             RV32 register count (default 32)
//     --activity                simulate a workload for toggle rates
//     --dump PREFIX             write PREFIX.{lef,lib,v,front.def,back.def,
//                               merged.def,spef}
//     --max-util                search the maximum valid utilization
//     --congestion              print frontside/backside congestion maps

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "extract/spef.h"
#include "flow/flow.h"
#include "flow/version.h"
#include "io/def.h"
#include "io/verilog.h"
#include "liberty/liberty_writer.h"
#include "pnr/cts.h"
#include "pnr/floorplan.h"
#include "pnr/placement.h"
#include "pnr/powerplan.h"
#include "pnr/report.h"

using namespace ffet;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::printf("usage: %s [--tech ffet|cfet] [--fm N] [--bm N] "
              "[--backside-pins F] [--util F] [--freq F] [--registers N] "
              "[--activity] [--dump PREFIX] [--max-util] [--congestion] "
              "[--version]\n",
              argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  flow::FlowConfig cfg;
  cfg.tech_kind = tech::TechKind::Ffet3p5T;
  std::optional<std::string> dump;
  bool search_max_util = false;
  bool congestion = false;

  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::printf("missing value for %s\n", flag);
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      usage(argv[0]);
    } else if (!std::strcmp(argv[i], "--version")) {
      std::printf("ffet_cli %s\n", ffet::kVersion);
      return 0;
    } else if (!std::strcmp(argv[i], "--tech")) {
      const std::string v = need_value("--tech");
      if (v == "ffet") {
        cfg.tech_kind = tech::TechKind::Ffet3p5T;
      } else if (v == "cfet") {
        cfg.tech_kind = tech::TechKind::Cfet4T;
      } else {
        usage(argv[0]);
      }
    } else if (!std::strcmp(argv[i], "--fm")) {
      cfg.front_layers = std::atoi(need_value("--fm"));
    } else if (!std::strcmp(argv[i], "--bm")) {
      cfg.back_layers = std::atoi(need_value("--bm"));
    } else if (!std::strcmp(argv[i], "--backside-pins")) {
      cfg.backside_input_fraction = std::atof(need_value("--backside-pins"));
    } else if (!std::strcmp(argv[i], "--util")) {
      cfg.utilization = std::atof(need_value("--util"));
    } else if (!std::strcmp(argv[i], "--freq")) {
      cfg.target_freq_ghz = std::atof(need_value("--freq"));
    } else if (!std::strcmp(argv[i], "--registers")) {
      cfg.rv32_registers = std::atoi(need_value("--registers"));
    } else if (!std::strcmp(argv[i], "--activity")) {
      cfg.simulate_activity = true;
    } else if (!std::strcmp(argv[i], "--dump")) {
      dump = need_value("--dump");
    } else if (!std::strcmp(argv[i], "--max-util")) {
      search_max_util = true;
    } else if (!std::strcmp(argv[i], "--congestion")) {
      congestion = true;
    } else {
      usage(argv[0]);
    }
  }

  std::printf("config: %s\n", cfg.label().c_str());
  const auto ctx = flow::prepare_design(cfg);
  std::printf("design: %d instances, est. %.2f GHz after synthesis\n",
              ctx->netlist.num_instances(), ctx->synth.est_freq_ghz);

  if (search_max_util) {
    const auto mu = flow::find_max_utilization(*ctx, cfg);
    if (mu) {
      std::printf("max valid utilization: %.3f\n", *mu);
    } else {
      std::printf("no valid utilization found in [0.40, 0.98]\n");
    }
    return 0;
  }

  const flow::FlowResult r = flow::run_physical(*ctx, cfg);
  std::printf("\narea   : %.1f um^2 (%.1f x %.1f), util %.1f%%\n",
              r.core_area_um2, r.core_width_um, r.core_height_um,
              r.utilization * 100);
  std::printf("timing : %.3f GHz (crit %.1f ps, skew %.1f ps)\n",
              r.achieved_freq_ghz, r.critical_path_ps, r.clock_skew_ps);
  std::printf("power  : %.1f uW (sw %.1f / int %.1f / lkg %.1f), IR %.2f mV\n",
              r.power_uw, r.switching_uw, r.internal_uw, r.leakage_uw,
              r.ir_drop_mv);
  std::printf("route  : %.0f um F + %.0f um B, DRV %d -> %s\n",
              r.wirelength_front_um, r.wirelength_back_um, r.drv,
              r.valid() ? "VALID" : "INVALID");

  if (dump || congestion) {
    // Re-run the physical stages to get the intermediate artifacts.
    netlist::Netlist nl = ctx->netlist;
    pnr::FloorplanOptions fo;
    fo.target_utilization = cfg.utilization;
    fo.aspect_ratio = cfg.aspect_ratio;
    const pnr::Floorplan fp = pnr::make_floorplan(nl, ctx->tech(), fo);
    const pnr::PowerPlan pp = pnr::build_power_plan(nl, fp, *ctx->library);
    pnr::place(nl, fp, pp);
    pnr::build_clock_tree(nl, fp);
    const pnr::RouteResult rr = pnr::route_design(nl, fp);

    if (congestion) {
      std::printf("\nfrontside congestion:\n%s\n",
                  pnr::render_heatmap(
                      pnr::build_congestion_map(rr, tech::Side::Front).load)
                      .c_str());
      if (rr.nets_back > 0) {
        std::printf("backside congestion:\n%s\n",
                    pnr::render_heatmap(
                        pnr::build_congestion_map(rr, tech::Side::Back).load)
                        .c_str());
      }
      std::printf("%s\n", pnr::routing_summary(rr).c_str());
    }

    if (dump) {
      const std::string p = *dump;
      std::ofstream(p + ".lef") << io::to_lef_string(*ctx->library);
      std::ofstream(p + ".lib")
          << liberty::to_liberty_string(*ctx->library);
      std::ofstream(p + ".v") << io::to_verilog_string(ctx->netlist);
      const io::Def front = io::build_def(nl, rr, tech::Side::Front);
      const io::Def back = io::build_def(nl, rr, tech::Side::Back);
      const io::Def merged = io::merge_defs(front, back);
      std::ofstream(p + ".front.def") << io::to_def_string(front);
      std::ofstream(p + ".back.def") << io::to_def_string(back);
      std::ofstream(p + ".merged.def") << io::to_def_string(merged);
      const extract::RcNetlist rc =
          extract::extract_rc(merged, nl, ctx->tech());
      std::ofstream(p + ".spef") << extract::to_spef_string(rc, nl);
      std::printf("\nwrote %s.{lef,lib,v,front.def,back.def,merged.def,"
                  "spef}\n",
                  p.c_str());
    }
  }
  return r.valid() ? 0 : 1;
}
