// quickstart — the five-minute tour of the OpenFFET framework.
//
// Builds the 3.5T FFET technology and its dual-sided cell library, generates
// the 32-bit RISC-V benchmark core, and pushes it through the full physical
// flow of the paper (floorplan → powerplan with Power Tap Cells → placement
// → CTS → dual-sided routing → DEF merge → RC extraction → STA/power),
// printing the block-level PPA summary.
//
//   $ ./quickstart

#include <cstdio>

#include "flow/flow.h"

int main() {
  using namespace ffet;

  // Configure the run: FFET with dual-sided signals, input pins split
  // 50/50 between the wafer sides, 1.5 GHz synthesis target, 70 %
  // placement utilization.
  flow::FlowConfig cfg;
  cfg.tech_kind = tech::TechKind::Ffet3p5T;
  cfg.front_layers = 12;           // FM12
  cfg.back_layers = 12;            // BM12
  cfg.backside_input_fraction = 0.5;  // FP0.5 / BP0.5
  cfg.target_freq_ghz = 1.5;
  cfg.utilization = 0.70;

  std::printf("OpenFFET quickstart: %s\n", cfg.label().c_str());
  std::printf("preparing design (library, characterization, RV32 core, "
              "synthesis)...\n");
  const auto ctx = flow::prepare_design(cfg);
  std::printf("  library            : %s (%zu cells, %.0f%% backside input "
              "pins)\n",
              ctx->library->name().c_str(), ctx->library->cells().size(),
              ctx->realized_backside_pin_fraction * 100);
  const auto stats = ctx->netlist.stats();
  std::printf("  synthesized netlist: %d instances (%d flip-flops), "
              "%.1f um^2 cell area\n",
              stats.num_instances, stats.num_sequential,
              stats.total_cell_area_um2);

  std::printf("running physical flow...\n");
  const flow::FlowResult r = flow::run_physical(*ctx, cfg);

  std::printf("\n--- block-level PPA ---\n");
  std::printf("  core               : %.1f x %.1f um (%.1f um^2), util "
              "%.1f%%\n",
              r.core_width_um, r.core_height_um, r.core_area_um2,
              r.utilization * 100);
  std::printf("  placement          : %s (%d Power Tap Cells placed)\n",
              r.placement_legal ? "legal" : "VIOLATIONS", r.num_tap_cells);
  std::printf("  clock tree         : %d buffers, %.1f ps skew\n",
              r.clock_buffers, r.clock_skew_ps);
  std::printf("  routing            : %.0f um frontside + %.0f um backside "
              "wire, %d DRVs (%s)\n",
              r.wirelength_front_um, r.wirelength_back_um, r.drv,
              r.route_valid ? "valid" : "INVALID");
  std::printf("  timing             : %.3f GHz achieved (critical path "
              "%.1f ps)\n",
              r.achieved_freq_ghz, r.critical_path_ps);
  std::printf("  power              : %.1f uW total (switching %.1f + "
              "internal %.1f + leakage %.1f)\n",
              r.power_uw, r.switching_uw, r.internal_uw, r.leakage_uw);
  std::printf("  power integrity    : %.2f mV worst-case IR drop\n",
              r.ir_drop_mv);
  std::printf("  efficiency         : %.3f GHz/mW\n", r.efficiency_ghz_per_mw);
  return r.valid() ? 0 : 1;
}
