// dual_sided_routing — a close-up of the paper's core contribution.
//
// Walks Algorithm 1 on a small visible design: builds a circuit on the
// dual-sided FFET library, shows how each net decomposes into frontside and
// backside subnets by sink-pin side, routes both sides independently,
// writes the two DEFs, merges them (the paper's RC-extraction input), and
// extracts the dual-sided RC tree of one net end to end.
//
//   $ ./dual_sided_routing

#include <cstdio>
#include <map>
#include <fstream>

#include "extract/extract.h"
#include "io/def.h"
#include "liberty/characterize.h"
#include "netlist/builder.h"
#include "pnr/cts.h"
#include "pnr/floorplan.h"
#include "pnr/placement.h"
#include "pnr/powerplan.h"
#include "pnr/router.h"

int main() {
  using namespace ffet;

  // A dual-sided FFET library with half the input pins on the backside.
  tech::Technology tech = tech::make_ffet_3p5t();
  stdcell::PinConfig pins;
  pins.backside_input_fraction = 0.5;
  stdcell::Library lib = stdcell::build_library(tech, pins);
  liberty::characterize_library(lib);

  std::printf("dual-sided library (%s):\n", lib.name().c_str());
  for (const char* cell : {"INVD1", "NAND2D1", "AOI22D1", "DFFD1"}) {
    const stdcell::CellType& c = lib.at(cell);
    std::printf("  %-8s:", cell);
    for (const stdcell::CellPin& p : c.pins()) {
      std::printf(" %s[%s]", p.name.c_str(),
                  std::string(stdcell::to_string(p.side)).c_str());
    }
    std::printf("\n");
  }
  std::printf("  (every output pin is 'both': the Drain Merge reaches FM0 "
              "and BM0)\n\n");

  // A small arithmetic block: 8-bit accumulator.
  netlist::Builder b("accumulator", &lib);
  const netlist::NetId clk = b.input("clk");
  b.netlist().mark_clock_net(clk);
  const netlist::NetId rst_n = b.input("rst_n");
  const netlist::Bus din = b.input_bus("din", 8);
  const netlist::Bus acc_d = b.wires(8, "acc_d");
  const netlist::Bus acc_q = b.dffr_bus(acc_d, clk, rst_n);
  const auto [sum, carry] = b.add(acc_q, din, b.zero());
  for (int i = 0; i < 8; ++i) {
    b.drive(acc_d[static_cast<std::size_t>(i)], "BUFD1",
            {sum[static_cast<std::size_t>(i)]});
  }
  b.output_bus("acc", acc_q);
  b.output("carry", carry);
  // A parity tree over the accumulator: every q bit gains a second sink
  // whose input pin sits on the *other* side, so Algorithm 1 produces
  // genuinely dual-sided nets (source driving both wafer sides).
  netlist::NetId parity = acc_q[0];
  for (int i = 1; i < 8; ++i) {
    parity = b.xor2(parity, acc_q[static_cast<std::size_t>(i)]);
  }
  b.output("parity", parity);
  netlist::Netlist nl = b.take();
  std::printf("design: %d instances, %d nets\n", nl.num_instances(),
              nl.num_nets());

  // Physical flow up to routing.
  pnr::FloorplanOptions fo;
  fo.target_utilization = 0.6;
  const pnr::Floorplan fp = pnr::make_floorplan(nl, tech, fo);
  const pnr::PowerPlan pp = pnr::build_power_plan(nl, fp, lib);
  pnr::place(nl, fp, pp);
  pnr::build_clock_tree(nl, fp);
  const pnr::RouteResult rr = pnr::route_design(nl, fp);

  // Algorithm 1 decomposition summary.
  int front_only = 0, back_only = 0, both = 0;
  {
    std::map<netlist::NetId, std::pair<bool, bool>> sides;
    for (const pnr::NetRoute& r : rr.routes) {
      auto& s = sides[r.net];
      (r.side == tech::Side::Front ? s.first : s.second) = true;
    }
    for (const auto& [net, s] : sides) {
      if (s.first && s.second) ++both;
      else if (s.first) ++front_only;
      else ++back_only;
    }
  }
  std::printf("\nAlgorithm 1 decomposition:\n");
  std::printf("  frontside-only nets : %d\n", front_only);
  std::printf("  backside-only nets  : %d\n", back_only);
  std::printf("  dual-sided nets     : %d (source drives both sides via the "
              "dual-sided output pin)\n",
              both);
  std::printf("  wirelength          : %.1f um front / %.1f um back, %d "
              "DRVs\n",
              rr.wirelength_front_um, rr.wirelength_back_um, rr.drv_estimate);

  // Two DEFs -> merged DEF (the paper's extraction input).
  const io::Def front = io::build_def(nl, rr, tech::Side::Front);
  const io::Def back = io::build_def(nl, rr, tech::Side::Back);
  const io::Def merged = io::merge_defs(front, back);
  std::ofstream("accumulator_front.def") << io::to_def_string(front);
  std::ofstream("accumulator_back.def") << io::to_def_string(back);
  std::ofstream("accumulator_merged.def") << io::to_def_string(merged);
  std::printf("\nwrote accumulator_front.def / _back.def / _merged.def\n");

  // Extract one dual-sided net and print its RC tree.
  const extract::RcNetlist rc = extract::extract_rc(merged, nl, tech);
  for (const io::DefNet& dn : merged.nets) {
    bool has_f = false, has_b = false;
    for (const io::DefWire& w : dn.wires) {
      (w.layer[0] == 'B' ? has_b : has_f) = true;
    }
    if (!has_f || !has_b) continue;
    const auto id = nl.find_net(dn.name);
    const extract::RcTreeView t = rc.tree(*id);
    std::printf("\nRC tree of dual-sided net '%s': %zu nodes, %.3f fF total "
                "load\n",
                dn.name.c_str(), t.nodes.size(), t.total_cap_ff);
    for (std::size_t i = 0; i < t.nodes.size() && i < 12; ++i) {
      const auto& n = t.nodes[i];
      std::printf("  node %2zu [%5s] parent=%2d R=%7.1f ohm C=%6.3f fF "
                  "elmore=%6.2f ps\n",
                  i, std::string(tech::to_string(n.side)).c_str(), n.parent,
                  n.r_ohm, n.cap_ff, t.elmore_ps[i]);
    }
    break;
  }
  return 0;
}
