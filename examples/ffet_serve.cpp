// ffet_serve — the sweep-service daemon.
//
// Listens on a Unix-domain socket for framed sweep submissions (see
// src/serve/protocol.h), shards the points across a fleet of forked worker
// processes, streams one ffet.flow_report.v1 line back per point in
// submission order, and memoizes every completed point in a persistent
// result cache keyed on FlowConfig::label().  A second submission of the
// same sweep — even from a different client, even after a daemon restart —
// runs zero flows.
//
//   ffet_serve [--socket PATH] [--workers N] [--cache DIR|none]
//              [--log PATH] [--trace PATH] [--attrib] [--ledger PATH]
//              [--version]
//
// Worker count: --workers beats FFET_WORKERS beats the default of 2.
//
// Observability plane (all off by default):
//   --trace PATH   write ONE merged Chrome trace at shutdown covering the
//                  daemon and every worker process (real pids; workers ship
//                  span files the daemon merges).  FFET_TRACE=<path> means
//                  the same thing here — the daemon consumes the variable,
//                  so the in-process atexit dump never clobbers the merge.
//   --attrib       annotate every served flow_report line with a "serve"
//                  latency object (queue/cache/run ms, retries, worker pid,
//                  cache_hit) and append kind="serve" ledger lines.
//                  FFET_SERVE_ATTRIB=1 is the env spelling.
//   --ledger PATH  where those serve ledger lines go (defaults to the flow
//                  ledger resolution: FFET_LEDGER or .ffet_ledger.jsonl).
// SIGINT/SIGTERM (and a client's `ffet_submit --shutdown`) stop the daemon
// cleanly: workers are retired via shutdown(2)+SIGTERM and reaped, the
// socket unlinked.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "flow/version.h"
#include "serve/server.h"

using namespace ffet;

namespace {

serve::Server* g_server = nullptr;

void on_signal(int) {
  // Async-signal-safe enough for our purpose: stop() is NOT safe here, so
  // just ask wait() to return; main does the teardown.  Re-raise semantics
  // are unnecessary — a second signal while stopping kills us, fine.
  if (g_server) g_server->request_stop_from_signal();
}

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--socket PATH] [--workers N] [--cache DIR|none]\n"
               "       [--log PATH] [--trace PATH] [--attrib] [--ledger "
               "PATH] [--version]\n"
               "defaults: --socket .ffet_serve.sock --workers $FFET_WORKERS"
               "|2 --cache .ffet_serve_cache\n"
               "env: FFET_TRACE=<path> == --trace   FFET_SERVE_ATTRIB=1 == "
               "--attrib\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServeOptions opts;
  std::string log_path;
  // The daemon owns FFET_TRACE: consume it into the merged-trace path and
  // unset it, so neither the in-process atexit dump (which would overwrite
  // the merge) nor a forked worker inherits it.  --trace beats the env.
  if (const char* env_trace = std::getenv("FFET_TRACE");
      env_trace != nullptr && *env_trace != '\0') {
    opts.trace_path = env_trace;
    ::unsetenv("FFET_TRACE");
  }
  for (int i = 1; i < argc; ++i) {
    const auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--socket")) {
      opts.socket_path = need("--socket");
    } else if (!std::strcmp(argv[i], "--workers")) {
      opts.workers = std::atoi(need("--workers"));
      if (opts.workers <= 0) usage(argv[0]);
    } else if (!std::strcmp(argv[i], "--cache")) {
      const std::string v = need("--cache");
      opts.cache_dir = v == "none" ? std::string() : v;
    } else if (!std::strcmp(argv[i], "--log")) {
      log_path = need("--log");
    } else if (!std::strcmp(argv[i], "--trace")) {
      opts.trace_path = need("--trace");
    } else if (!std::strcmp(argv[i], "--attrib")) {
      opts.attribution = true;
    } else if (!std::strcmp(argv[i], "--ledger")) {
      opts.ledger_path = need("--ledger");
    } else if (!std::strcmp(argv[i], "--version")) {
      std::printf("ffet_serve %s\n", kVersion);
      return 0;
    } else {
      usage(argv[0]);
    }
  }

  std::FILE* log = nullptr;
  if (!log_path.empty()) {
    log = std::fopen(log_path.c_str(), "a");
    if (!log) {
      std::fprintf(stderr, "cannot open log file %s\n", log_path.c_str());
      return 2;
    }
    opts.log = log;
  }

  serve::Server server(opts);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "ffet_serve: %s\n", error.c_str());
    if (log) std::fclose(log);
    return 1;
  }
  g_server = &server;
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  server.wait();
  g_server = nullptr;
  server.stop();

  const serve::ServeStats st = server.stats();
  std::fprintf(stderr,
               "ffet_serve: served %lld request(s), %lld point(s) "
               "(%lld cached, %lld joined, %lld flow runs, %lld worker "
               "deaths)\n",
               st.requests, st.points, st.cache_hits, st.single_flight_joins,
               st.flow_runs, st.worker_deaths);
  if (log) std::fclose(log);
  return 0;
}
