// ffet_report — signoff reporting and QoR regression CLI.
//
// Three subcommands:
//
//   ffet_report timing [flow-opts] [--top K] [--period PS]
//       Re-run the physical flow for the given config, then print the
//       top-K worst endpoint paths stage by stage: arrival / slew / load /
//       fanout per pin, the wafer side of every pin, and explicit markers
//       where the path crosses front<->back through a dual-sided
//       Drain-Merge output pin.  The worst path's name chain is
//       bit-identical to the STA report's critical_path string.
//
//   ffet_report nets [flow-opts] [--top N] [--net NAME]
//       Per-net attribution over the merged DEF + RC extraction: routed
//       length per side and per layer, via count, wire R / total C, worst
//       sink Elmore and its design share, plus log-bucket histograms.
//
//   ffet_report diff [--mode flow|eco|router] [thresholds] BASE NEW
//       QoR diff / regression gate.  Mode "flow" compares two flow-report
//       JSONL files (FFET_FLOW_REPORT output) metric by metric with
//       configurable thresholds; "eco" and "router" run the bench gates
//       formerly implemented by scripts/check_bench_{eco,router}.py on two
//       BENCH_*.json files.  Exit 0 = pass, 1 = regression, 2 = bad input.
//
//   ffet_report history [LABEL] [--ledger PATH] [--kind flow|bench]
//       Chronological listing of the run ledger (ffet.ledger.v1 JSONL the
//       flow and run_benches.sh append to), optionally filtered to one
//       label.
//
//   ffet_report trend [LABEL] [--ledger PATH] [--kind flow|bench|serve]
//                     [--window N] [thresholds]
//       Per-label time series over the ledger: for every (kind, label)
//       group the latest run is gated against the median of the previous
//       N runs (default 5) with the same thresholds as `diff`.  Exit 0 =
//       no regression, 1 = regression, 2 = bad input.
//
//   ffet_report serve-stats FILE
//       Pretty-print an ffet.serve_stats.v1 snapshot (the output of
//       `ffet_submit --stats`; "-" reads stdin): daemon header, counters,
//       per-phase latency table, per-worker slot lines.  Exit 0 = ok,
//       2 = missing or malformed snapshot.
//
// Flow options (timing/nets): --tech ffet|cfet  --fm N  --bm N
//   --backside-pins F  --util F  --freq F  --registers N  --eco N
//   --seed N  --threads N

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "flow/flow.h"
#include "flow/version.h"
#include "report/ledger.h"
#include "report/net_report.h"
#include "report/qor.h"
#include "report/serve_stats.h"
#include "report/snapshot.h"
#include "report/timing_report.h"
#include "sta/sta.h"

using namespace ffet;

namespace {

// Usage goes to stderr and exits nonzero: an unknown subcommand or flag
// must never look like a successful (empty) report to a calling script.
[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s timing  [flow-opts] [--top K] [--period PS]\n"
      "       %s nets    [flow-opts] [--top N] [--net NAME]\n"
      "       %s diff    [--mode flow|eco|router] [--qor] [--freq-drop PCT]\n"
      "                  [--power-rise PCT] [--wl-rise PCT] [--runtime-rise "
      "PCT] BASE NEW\n"
      "       %s history [LABEL] [--ledger PATH] [--kind flow|bench|serve]\n"
      "       %s trend   [LABEL] [--ledger PATH] [--kind flow|bench|serve]\n"
      "                  [--window N] [--freq-drop PCT] [--power-rise PCT]\n"
      "                  [--wl-rise PCT] [--runtime-rise PCT] [--rss-rise "
      "PCT]\n"
      "       %s serve-stats FILE   (\"-\" reads stdin)\n"
      "       %s --version\n"
      "flow-opts: --tech ffet|cfet --fm N --bm N --backside-pins F --util F\n"
      "           --freq F --registers N --eco N --seed N --threads N\n",
      argv0, argv0, argv0, argv0, argv0, argv0, argv0);
  std::exit(2);
}

struct ArgReader {
  int argc;
  char** argv;
  int i = 2;  ///< argv[1] is the subcommand

  const char* need_value(const char* flag) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", flag);
      usage(argv[0]);
    }
    return argv[++i];
  }

  /// Consume one flow-config flag; false if argv[i] is not one.
  bool take_flow_flag(flow::FlowConfig& cfg) {
    char** a = argv;
    if (!std::strcmp(a[i], "--tech")) {
      const std::string v = need_value("--tech");
      if (v == "ffet") {
        cfg.tech_kind = tech::TechKind::Ffet3p5T;
      } else if (v == "cfet") {
        cfg.tech_kind = tech::TechKind::Cfet4T;
      } else {
        usage(a[0]);
      }
    } else if (!std::strcmp(a[i], "--fm")) {
      cfg.front_layers = std::atoi(need_value("--fm"));
    } else if (!std::strcmp(a[i], "--bm")) {
      cfg.back_layers = std::atoi(need_value("--bm"));
    } else if (!std::strcmp(a[i], "--backside-pins")) {
      cfg.backside_input_fraction = std::atof(need_value("--backside-pins"));
    } else if (!std::strcmp(a[i], "--util")) {
      cfg.utilization = std::atof(need_value("--util"));
    } else if (!std::strcmp(a[i], "--freq")) {
      cfg.target_freq_ghz = std::atof(need_value("--freq"));
    } else if (!std::strcmp(a[i], "--registers")) {
      cfg.rv32_registers = std::atoi(need_value("--registers"));
    } else if (!std::strcmp(a[i], "--eco")) {
      cfg.eco_passes = std::atoi(need_value("--eco"));
    } else if (!std::strcmp(a[i], "--seed")) {
      cfg.seed = static_cast<unsigned>(std::atoi(need_value("--seed")));
    } else if (!std::strcmp(a[i], "--threads")) {
      cfg.threads = std::atoi(need_value("--threads"));
    } else {
      return false;
    }
    return true;
  }
};

int cmd_timing(ArgReader& args) {
  flow::FlowConfig cfg;
  report::TimingReportOptions opts;
  for (; args.i < args.argc; ++args.i) {
    if (args.take_flow_flag(cfg)) continue;
    if (!std::strcmp(args.argv[args.i], "--top")) {
      opts.top_k = std::atoi(args.need_value("--top"));
    } else if (!std::strcmp(args.argv[args.i], "--period")) {
      opts.target_period_ps = std::atof(args.need_value("--period"));
    } else {
      usage(args.argv[0]);
    }
  }

  std::printf("config: %s\n", cfg.label().c_str());
  const auto snap = report::build_snapshot(cfg);
  sta::Sta sta(&snap->nl, &snap->rc, snap->sta_options);
  const sta::TimingReport timing =
      sta.analyze_timing(&snap->cts.sink_latency_ps);
  std::printf("signoff: %.3f GHz (critical path %.2f ps)%s\n\n",
              timing.achieved_freq_ghz, timing.critical_path_ps,
              snap->eco_ran ? "  [post-ECO]" : "");

  const auto paths = report::build_timing_paths(
      sta, snap->nl, &snap->rc, &snap->cts.sink_latency_ps, opts);
  const double period = opts.target_period_ps > 0.0
                            ? opts.target_period_ps
                            : timing.critical_path_ps;
  std::fputs(report::format_timing_report(paths, period).c_str(), stdout);

  if (!paths.empty() && paths[0].path_names != timing.critical_path) {
    std::printf("\nERROR: worst path disagrees with STA critical_path:\n"
                "  report: %s\n  sta:    %s\n",
                paths[0].path_names.c_str(), timing.critical_path.c_str());
    return 1;
  }
  std::printf("\nworst path verified against STA critical_path (%d paths)\n",
              static_cast<int>(paths.size()));
  return 0;
}

int cmd_nets(ArgReader& args) {
  flow::FlowConfig cfg;
  int top_n = 20;
  std::string net_name;
  for (; args.i < args.argc; ++args.i) {
    if (args.take_flow_flag(cfg)) continue;
    if (!std::strcmp(args.argv[args.i], "--top")) {
      top_n = std::atoi(args.need_value("--top"));
    } else if (!std::strcmp(args.argv[args.i], "--net")) {
      net_name = args.need_value("--net");
    } else {
      usage(args.argv[0]);
    }
  }

  std::printf("config: %s\n\n", cfg.label().c_str());
  const auto snap = report::build_snapshot(cfg);
  const report::NetReport rep =
      report::build_net_report(snap->nl, snap->merged, snap->rc);
  if (!net_name.empty()) {
    std::fputs(report::format_net_detail(rep, net_name).c_str(), stdout);
  } else {
    std::fputs(report::format_net_report(rep, top_n).c_str(), stdout);
  }
  return 0;
}

/// Whole-file read for the single-document bench JSONs.
bool read_file(const std::string& path, std::string& out) {
  std::ifstream f(path);
  if (!f) return false;
  std::ostringstream ss;
  ss << f.rdbuf();
  out = ss.str();
  return true;
}

int cmd_diff(ArgReader& args) {
  std::string mode = "flow";
  report::DiffOptions opts;
  std::vector<std::string> files;
  for (; args.i < args.argc; ++args.i) {
    if (!std::strcmp(args.argv[args.i], "--mode")) {
      mode = args.need_value("--mode");
    } else if (!std::strcmp(args.argv[args.i], "--freq-drop")) {
      opts.freq_drop_pct = std::atof(args.need_value("--freq-drop"));
    } else if (!std::strcmp(args.argv[args.i], "--power-rise")) {
      opts.power_rise_pct = std::atof(args.need_value("--power-rise"));
    } else if (!std::strcmp(args.argv[args.i], "--wl-rise")) {
      opts.wirelength_rise_pct = std::atof(args.need_value("--wl-rise"));
    } else if (!std::strcmp(args.argv[args.i], "--runtime-rise")) {
      opts.runtime_rise_pct = std::atof(args.need_value("--runtime-rise"));
    } else if (!std::strcmp(args.argv[args.i], "--qor")) {
      // QoR-identity mode for results streamed back from ffet_serve:
      // compare only the QoR sections, and gate on exact equality.
      opts.qor_only = true;
    } else if (args.argv[args.i][0] == '-' && args.argv[args.i][1] == '-') {
      usage(args.argv[0]);
    } else {
      files.push_back(args.argv[args.i]);
    }
  }
  if (files.size() != 2) usage(args.argv[0]);

  if (mode == "flow") {
    report::ReadStats bstats, nstats;
    std::string err;
    const auto base = report::read_flow_reports_file(files[0], &bstats, &err);
    if (!err.empty()) {
      std::printf("error: %s\n", err.c_str());
      return 2;
    }
    const auto now = report::read_flow_reports_file(files[1], &nstats, &err);
    if (!err.empty()) {
      std::printf("error: %s\n", err.c_str());
      return 2;
    }
    if (base.empty() || now.empty()) {
      std::printf("error: no parseable report lines (%s: %d/%d, %s: %d/%d)\n",
                  files[0].c_str(), bstats.parsed, bstats.lines,
                  files[1].c_str(), nstats.parsed, nstats.lines);
      return 2;
    }
    if (bstats.malformed || nstats.malformed) {
      std::printf("note: skipped %d malformed line(s) in base, %d in new\n",
                  bstats.malformed, nstats.malformed);
    }
    const report::DiffReport rep = report::diff_flow_reports(base, now, opts);
    std::fputs(report::format_diff(rep).c_str(), stdout);
    return rep.ok() ? 0 : 1;
  }

  if (mode != "eco" && mode != "router") usage(args.argv[0]);
  std::string btext, ntext;
  if (!read_file(files[0], btext)) {
    std::printf("error: cannot open %s\n", files[0].c_str());
    return 2;
  }
  if (!read_file(files[1], ntext)) {
    std::printf("error: cannot open %s\n", files[1].c_str());
    return 2;
  }
  std::string err;
  const auto bdoc = report::json::parse(btext, &err);
  if (!bdoc) {
    std::printf("error: %s: %s\n", files[0].c_str(), err.c_str());
    return 2;
  }
  const auto ndoc = report::json::parse(ntext, &err);
  if (!ndoc) {
    std::printf("error: %s: %s\n", files[1].c_str(), err.c_str());
    return 2;
  }
  std::string out;
  const int rc = mode == "eco" ? report::eco_gate(*bdoc, *ndoc, out)
                               : report::router_gate(*bdoc, *ndoc, out);
  std::fputs(out.c_str(), stdout);
  return rc;
}

/// Shared argument handling for `history` and `trend`: a positional LABEL,
/// --ledger PATH, --kind, plus (trend only) --window and the thresholds.
struct LedgerArgs {
  std::string path;
  report::TrendOptions opts;
};

bool parse_ledger_args(ArgReader& args, LedgerArgs& out, bool trend) {
  for (; args.i < args.argc; ++args.i) {
    char* arg = args.argv[args.i];
    if (!std::strcmp(arg, "--ledger")) {
      out.path = args.need_value("--ledger");
    } else if (!std::strcmp(arg, "--kind")) {
      out.opts.kind = args.need_value("--kind");
    } else if (trend && !std::strcmp(arg, "--window")) {
      out.opts.window = std::atoi(args.need_value("--window"));
    } else if (trend && !std::strcmp(arg, "--freq-drop")) {
      out.opts.freq_drop_pct = std::atof(args.need_value("--freq-drop"));
    } else if (trend && !std::strcmp(arg, "--power-rise")) {
      out.opts.power_rise_pct = std::atof(args.need_value("--power-rise"));
    } else if (trend && !std::strcmp(arg, "--wl-rise")) {
      out.opts.wirelength_rise_pct = std::atof(args.need_value("--wl-rise"));
    } else if (trend && !std::strcmp(arg, "--runtime-rise")) {
      out.opts.runtime_rise_pct = std::atof(args.need_value("--runtime-rise"));
    } else if (trend && !std::strcmp(arg, "--rss-rise")) {
      out.opts.rss_rise_pct = std::atof(args.need_value("--rss-rise"));
    } else if (arg[0] == '-' && arg[1] == '-') {
      return false;
    } else if (out.opts.label.empty()) {
      out.opts.label = arg;
    } else {
      return false;
    }
  }
  if (out.path.empty()) out.path = flow::resolve_ledger_path();
  if (out.path.empty()) out.path = flow::kDefaultLedgerPath;
  return true;
}

std::vector<report::LedgerEntry> load_ledger(const LedgerArgs& la, int& rc) {
  report::ReadStats stats;
  std::string err;
  const auto entries = report::read_ledger_file(la.path, &stats, &err);
  if (!err.empty()) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    rc = 2;
    return {};
  }
  if (stats.malformed) {
    std::printf("note: skipped %d malformed ledger line(s)\n", stats.malformed);
  }
  rc = 0;
  return entries;
}

int cmd_history(ArgReader& args) {
  LedgerArgs la;
  if (!parse_ledger_args(args, la, /*trend=*/false)) usage(args.argv[0]);
  int rc = 0;
  const auto entries = load_ledger(la, rc);
  if (rc) return rc;
  std::printf("ledger: %s (%d entries)\n", la.path.c_str(),
              static_cast<int>(entries.size()));
  std::fputs(report::format_history(entries, la.opts.label).c_str(), stdout);
  return 0;
}

int cmd_serve_stats(ArgReader& args) {
  std::string path;
  for (; args.i < args.argc; ++args.i) {
    if (args.argv[args.i][0] == '-' && args.argv[args.i][1] == '-') {
      usage(args.argv[0]);
    } else if (path.empty()) {
      path = args.argv[args.i];
    } else {
      usage(args.argv[0]);
    }
  }
  if (path.empty()) usage(args.argv[0]);

  std::string text;
  if (path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    text = ss.str();
  } else if (!read_file(path, text)) {
    // Exit 2 on a missing file, matching diff's stderr/exit-code
    // convention — a calling script must never mistake this for an empty
    // but healthy snapshot.
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return 2;
  }
  std::string err;
  const auto snap = report::parse_serve_stats(text, &err);
  if (!snap) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), err.c_str());
    return 2;
  }
  std::fputs(report::format_serve_stats(*snap).c_str(), stdout);
  return 0;
}

int cmd_trend(ArgReader& args) {
  LedgerArgs la;
  if (!parse_ledger_args(args, la, /*trend=*/true)) usage(args.argv[0]);
  int rc = 0;
  const auto entries = load_ledger(la, rc);
  if (rc) return rc;
  std::printf("ledger: %s (%d entries)\n", la.path.c_str(),
              static_cast<int>(entries.size()));
  const report::TrendReport rep = report::analyze_trend(entries, la.opts);
  std::fputs(report::format_trend(rep).c_str(), stdout);
  return rep.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  if (!std::strcmp(argv[1], "--version") || !std::strcmp(argv[1], "version")) {
    std::printf("ffet_report %s\n", ffet::kVersion);
    return 0;
  }
  ArgReader args{argc, argv};
  if (!std::strcmp(argv[1], "timing")) return cmd_timing(args);
  if (!std::strcmp(argv[1], "nets")) return cmd_nets(args);
  if (!std::strcmp(argv[1], "diff")) return cmd_diff(args);
  if (!std::strcmp(argv[1], "history")) return cmd_history(args);
  if (!std::strcmp(argv[1], "trend")) return cmd_trend(args);
  if (!std::strcmp(argv[1], "serve-stats")) return cmd_serve_stats(args);
  usage(argv[0]);
}
