// ffet_submit — client CLI for the ffet_serve sweep service.
//
//   ffet_submit [--socket PATH] [--out FILE] [--trace-id ID] SWEEP
//   ffet_submit --ping [--count N] | --shutdown [--socket PATH]
//   ffet_submit --stats [--watch] [--socket PATH] [--out FILE]
//
// SWEEP is one of:
//   --configs FILE     submit the JSON array of FlowConfig objects in FILE
//   --fig8-quick       the Fig. 8 --quick sweep (3 curves x 6 utilization
//                      points), the CI smoke workload
//   [flow-opts]        a single point built from --tech/--fm/--bm/... flags
//                      (the same flags ffet_report takes); flow-opts also
//                      override every point of --fig8-quick
//
// Results (one ffet.flow_report.v1 line per point, in sweep order) go to
// --out FILE or stdout, ready for `ffet_report diff --qor`.
//
//   --local            run the sweep in-process with flow::run_sweep
//                      instead of contacting a daemon — the baseline side
//                      of the service-vs-in-process identity check
//   --expect-cached    exit 3 unless every point was served from the
//                      daemon's cache (CI asserts the second submission of
//                      an identical sweep runs zero flows)
//   --trace-id ID      stamp the submission: the daemon names its request
//                      span after ID so a merged cross-process trace ties
//                      this client's points to their worker spans
//   --ping             one round trip; prints the RTT in ms.  --count N
//                      repeats N times and adds a min/avg/max summary
//   --stats            fetch the daemon's live ffet.serve_stats.v1 JSON
//                      snapshot (pretty-print with `ffet_report
//                      serve-stats`); --watch re-polls every 2 s, one
//                      snapshot line per poll, until the daemon goes away

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "flow/flow.h"
#include "flow/report_json.h"
#include "flow/version.h"
#include "serve/client.h"
#include "serve/config_codec.h"

using namespace ffet;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--socket PATH] [--out FILE] [--trace-id ID] [--configs "
      "FILE | --fig8-quick | flow-opts]\n"
      "       %s [--socket PATH] --ping [--count N] | --shutdown\n"
      "       %s [--socket PATH] [--out FILE] --stats [--watch]\n"
      "       %s --version\n"
      "options: --local (run in-process, no daemon)   --expect-cached\n"
      "flow-opts: --tech ffet|cfet --fm N --bm N --backside-pins F --util F\n"
      "           --freq F --registers N --eco N --seed N --threads N\n",
      argv0, argv0, argv0, argv0);
  std::exit(2);
}

/// The Fig. 8 --quick grid: CFET, FFET FM12BM12 (pins 50/50) and FFET FM12
/// single-sided, each at utilization 0.46 + 0.08*i for i in [0, 6).  Must
/// stay in lockstep with bench_fig8.cpp so the CI smoke exercises the same
/// points the bench does.
std::vector<flow::FlowConfig> fig8_quick_sweep() {
  flow::FlowConfig cfet;
  cfet.tech_kind = tech::TechKind::Cfet4T;
  cfet.front_layers = 12;
  cfet.back_layers = 0;

  flow::FlowConfig dual;
  dual.tech_kind = tech::TechKind::Ffet3p5T;
  dual.front_layers = 12;
  dual.back_layers = 12;
  dual.backside_input_fraction = 0.5;

  flow::FlowConfig single;
  single.tech_kind = tech::TechKind::Ffet3p5T;
  single.front_layers = 12;
  single.back_layers = 0;
  single.backside_input_fraction = 0.0;

  std::vector<flow::FlowConfig> sweep;
  for (flow::FlowConfig base : {cfet, dual, single}) {
    for (int i = 0; i < 6; ++i) {
      base.utilization = 0.46 + 0.08 * i;
      sweep.push_back(base);
    }
  }
  return sweep;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = ".ffet_serve.sock";
  std::string out_path;
  std::string configs_path;
  bool fig8_quick = false;
  bool local = false;
  bool expect_cached = false;
  bool do_ping = false;
  bool do_shutdown = false;
  bool do_stats = false;
  bool watch = false;
  int ping_count = 1;
  std::string trace_id;
  // Flow-opt overrides are applied on top of whatever SWEEP source is
  // chosen; `overridden` tracks whether they alone define a single point.
  flow::FlowConfig point;
  bool any_flow_opt = false;
  struct Override {
    void (*apply)(flow::FlowConfig&, const char*);
    const char* value;
  };
  std::vector<Override> overrides;

  for (int i = 1; i < argc; ++i) {
    const auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        usage(argv[0]);
      }
      return argv[++i];
    };
    const auto add = [&](void (*apply)(flow::FlowConfig&, const char*),
                         const char* flag) {
      overrides.push_back({apply, need(flag)});
      any_flow_opt = true;
    };
    if (!std::strcmp(argv[i], "--socket")) {
      socket_path = need("--socket");
    } else if (!std::strcmp(argv[i], "--out")) {
      out_path = need("--out");
    } else if (!std::strcmp(argv[i], "--configs")) {
      configs_path = need("--configs");
    } else if (!std::strcmp(argv[i], "--fig8-quick")) {
      fig8_quick = true;
    } else if (!std::strcmp(argv[i], "--local")) {
      local = true;
    } else if (!std::strcmp(argv[i], "--expect-cached")) {
      expect_cached = true;
    } else if (!std::strcmp(argv[i], "--ping")) {
      do_ping = true;
    } else if (!std::strcmp(argv[i], "--count")) {
      ping_count = std::atoi(need("--count"));
      if (ping_count < 1) ping_count = 1;
    } else if (!std::strcmp(argv[i], "--shutdown")) {
      do_shutdown = true;
    } else if (!std::strcmp(argv[i], "--stats")) {
      do_stats = true;
    } else if (!std::strcmp(argv[i], "--watch")) {
      watch = true;
    } else if (!std::strcmp(argv[i], "--trace-id")) {
      trace_id = need("--trace-id");
    } else if (!std::strcmp(argv[i], "--version")) {
      std::printf("ffet_submit %s\n", kVersion);
      return 0;
    } else if (!std::strcmp(argv[i], "--tech")) {
      add(
          [](flow::FlowConfig& c, const char* v) {
            if (!std::strcmp(v, "ffet")) {
              c.tech_kind = tech::TechKind::Ffet3p5T;
            } else if (!std::strcmp(v, "cfet")) {
              c.tech_kind = tech::TechKind::Cfet4T;
            } else {
              std::fprintf(stderr, "unknown tech \"%s\"\n", v);
              std::exit(2);
            }
          },
          "--tech");
    } else if (!std::strcmp(argv[i], "--fm")) {
      add([](flow::FlowConfig& c, const char* v) { c.front_layers = std::atoi(v); },
          "--fm");
    } else if (!std::strcmp(argv[i], "--bm")) {
      add([](flow::FlowConfig& c, const char* v) { c.back_layers = std::atoi(v); },
          "--bm");
    } else if (!std::strcmp(argv[i], "--backside-pins")) {
      add(
          [](flow::FlowConfig& c, const char* v) {
            c.backside_input_fraction = std::atof(v);
          },
          "--backside-pins");
    } else if (!std::strcmp(argv[i], "--util")) {
      add([](flow::FlowConfig& c, const char* v) { c.utilization = std::atof(v); },
          "--util");
    } else if (!std::strcmp(argv[i], "--freq")) {
      add(
          [](flow::FlowConfig& c, const char* v) {
            c.target_freq_ghz = std::atof(v);
          },
          "--freq");
    } else if (!std::strcmp(argv[i], "--registers")) {
      add(
          [](flow::FlowConfig& c, const char* v) {
            c.rv32_registers = std::atoi(v);
          },
          "--registers");
    } else if (!std::strcmp(argv[i], "--eco")) {
      add([](flow::FlowConfig& c, const char* v) { c.eco_passes = std::atoi(v); },
          "--eco");
    } else if (!std::strcmp(argv[i], "--seed")) {
      add([](flow::FlowConfig& c, const char* v) { c.seed = std::atoi(v); },
          "--seed");
    } else if (!std::strcmp(argv[i], "--threads")) {
      add([](flow::FlowConfig& c, const char* v) { c.threads = std::atoi(v); },
          "--threads");
    } else {
      usage(argv[0]);
    }
  }

  if (do_ping) {
    double min_ms = 0.0, max_ms = 0.0, sum_ms = 0.0;
    for (int n = 0; n < ping_count; ++n) {
      std::string error;
      double rtt_ms = 0.0;
      if (!serve::ping(socket_path, &error, &rtt_ms)) {
        std::fprintf(stderr, "ffet_submit: %s\n", error.c_str());
        return 1;
      }
      std::printf("ping ok  rtt %.3f ms\n", rtt_ms);
      if (n == 0 || rtt_ms < min_ms) min_ms = rtt_ms;
      if (rtt_ms > max_ms) max_ms = rtt_ms;
      sum_ms += rtt_ms;
    }
    if (ping_count > 1) {
      std::printf("rtt min/avg/max = %.3f/%.3f/%.3f ms over %d ping(s)\n",
                  min_ms, sum_ms / ping_count, max_ms, ping_count);
    }
    return 0;
  }
  if (do_shutdown) {
    std::string error;
    if (!serve::request_shutdown(socket_path, &error)) {
      std::fprintf(stderr, "ffet_submit: %s\n", error.c_str());
      return 1;
    }
    std::printf("shutdown ok\n");
    return 0;
  }
  if (do_stats) {
    std::FILE* out = stdout;
    if (!out_path.empty()) {
      out = std::fopen(out_path.c_str(), "w");
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 2;
      }
    }
    int rc = 0;
    do {
      std::string stats_json, error;
      if (!serve::query_stats(socket_path, &stats_json, &error)) {
        std::fprintf(stderr, "ffet_submit: %s\n", error.c_str());
        rc = 1;
        break;
      }
      std::fwrite(stats_json.data(), 1, stats_json.size(), out);
      std::fputc('\n', out);
      std::fflush(out);
      if (watch) std::this_thread::sleep_for(std::chrono::seconds(2));
    } while (watch);
    if (out != stdout) std::fclose(out);
    return rc;
  }

  // ---- assemble the sweep -------------------------------------------------
  std::vector<flow::FlowConfig> sweep;
  if (!configs_path.empty()) {
    std::ifstream f(configs_path);
    if (!f) {
      std::fprintf(stderr, "cannot read %s\n", configs_path.c_str());
      return 2;
    }
    std::stringstream ss;
    ss << f.rdbuf();
    std::string error;
    const auto parsed = serve::configs_from_json_text(ss.str(), &error);
    if (!parsed) {
      std::fprintf(stderr, "%s: %s\n", configs_path.c_str(), error.c_str());
      return 2;
    }
    sweep = *parsed;
  } else if (fig8_quick) {
    sweep = fig8_quick_sweep();
  } else if (any_flow_opt) {
    sweep.push_back(point);
  } else {
    std::fprintf(stderr, "no sweep given (--configs, --fig8-quick or "
                         "flow-opts)\n");
    usage(argv[0]);
  }
  for (flow::FlowConfig& cfg : sweep) {
    for (const Override& o : overrides) o.apply(cfg, o.value);
  }

  // ---- run it -------------------------------------------------------------
  std::FILE* out = stdout;
  if (!out_path.empty()) {
    out = std::fopen(out_path.c_str(), "w");
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 2;
    }
  }

  int rc = 0;
  if (local) {
    const std::vector<flow::FlowResult> results = flow::run_sweep(sweep);
    for (const flow::FlowResult& r : results) {
      const std::string line = flow::flow_report_json(r);
      std::fwrite(line.data(), 1, line.size(), out);
      std::fputc('\n', out);
    }
    std::fprintf(stderr, "ffet_submit: ran %zu point(s) in-process\n",
                 results.size());
  } else {
    std::vector<serve::ResultLine> results;
    serve::SubmitStats stats;
    std::string error;
    if (!serve::submit_sweep(socket_path, sweep, &results, &stats, &error,
                             trace_id)) {
      std::fprintf(stderr, "ffet_submit: %s\n", error.c_str());
      if (out != stdout) std::fclose(out);
      return 1;
    }
    for (const serve::ResultLine& r : results) {
      std::fwrite(r.line.data(), 1, r.line.size(), out);
      std::fputc('\n', out);
    }
    std::fprintf(stderr,
                 "ffet_submit: %lld point(s): %lld cached, %lld joined, "
                 "%lld ran, %lld retried, %lld worker_died\n",
                 stats.points, stats.cache_hits, stats.joined, stats.ran,
                 stats.retried, stats.worker_died);
    if (expect_cached && stats.cache_hits != stats.points) {
      std::fprintf(stderr,
                   "ffet_submit: --expect-cached: %lld of %lld point(s) "
                   "missed the cache\n",
                   stats.points - stats.cache_hits, stats.points);
      rc = 3;
    }
    for (const serve::ResultLine& r : results) {
      if (r.worker_died) {
        std::fprintf(stderr, "ffet_submit: point %u reported worker_died\n",
                     r.index);
        rc = rc == 0 ? 4 : rc;
      }
    }
  }
  if (out != stdout) std::fclose(out);
  return rc;
}
