// fir_filter — digital signal processing on the RV32M core.
//
// Builds the benchmark core WITH the optional RV32M multiplier
// (Rv32Options::enable_m), runs a 4-tap FIR filter over a sample stream on
// the gate-level simulator, verifies the outputs against a reference, and
// compares the physical footprint of the I-only vs IM cores through the
// flow.
//
//   $ ./fir_filter

#include <cstdio>
#include <vector>

#include "flow/flow.h"
#include "liberty/characterize.h"
#include "riscv/encode.h"
#include "riscv/harness.h"
#include "riscv/rv32.h"

int main() {
  using namespace ffet;
  namespace e = riscv::enc;

  tech::Technology tech = tech::make_ffet_3p5t();
  stdcell::PinConfig pc;
  pc.backside_input_fraction = 0.5;
  stdcell::Library lib = stdcell::build_library(tech, pc);
  liberty::characterize_library(lib);

  riscv::Rv32Options opt;
  opt.enable_m = true;
  netlist::Netlist core = riscv::build_rv32_core(lib, opt);
  std::printf("RV32IM core: %d instances (multiplier enabled)\n",
              core.num_instances());

  // 4-tap FIR: y[n] = sum_k h[k] * x[n-k]; coefficients and samples in
  // data memory.  x at 0x400 (8 samples), h at 0x300 (4 taps), y at 0x500.
  riscv::Rv32Harness h(&core);
  const std::vector<std::int32_t> taps = {3, -2, 5, 1};
  const std::vector<std::int32_t> xs = {10, -4, 7, 0, 13, -9, 2, 6};
  for (std::size_t i = 0; i < taps.size(); ++i) {
    h.write_mem(0x300 + 4 * static_cast<std::uint32_t>(i),
                static_cast<std::uint32_t>(taps[i]));
  }
  for (std::size_t i = 0; i < xs.size(); ++i) {
    h.write_mem(0x400 + 4 * static_cast<std::uint32_t>(i),
                static_cast<std::uint32_t>(xs[i]));
  }

  const std::vector<std::uint32_t> prog = {
      /* 0x00 */ e::addi(1, 0, 3),          // n = 3 (first full window)
      /* 0x04 */ e::addi(10, 0, 0),         // acc = 0      (outer)
      /* 0x08 */ e::addi(2, 0, 0),          // k = 0        (inner)
      /* 0x0c */ e::slli(3, 2, 2),          // k*4
      /* 0x10 */ e::addi(4, 0, 0x300),
      /* 0x14 */ e::add(4, 4, 3),
      /* 0x18 */ e::lw(5, 4, 0),            // h[k]
      /* 0x1c */ e::sub(6, 1, 2),           // n-k
      /* 0x20 */ e::slli(6, 6, 2),
      /* 0x24 */ e::addi(7, 0, 0x400),
      /* 0x28 */ e::add(7, 7, 6),
      /* 0x2c */ e::lw(8, 7, 0),            // x[n-k]
      /* 0x30 */ e::mul(9, 5, 8),           // h[k] * x[n-k]   (RV32M!)
      /* 0x34 */ e::add(10, 10, 9),         // acc +=
      /* 0x38 */ e::addi(2, 2, 1),          // k++
      /* 0x3c */ e::addi(11, 0, 4),
      /* 0x40 */ e::blt(2, 11, -52),        // k < 4 -> 0x0c
      /* 0x44 */ e::addi(12, 1, -3),        // out index = n-3
      /* 0x48 */ e::slli(12, 12, 2),
      /* 0x4c */ e::addi(13, 0, 0x500),
      /* 0x50 */ e::add(13, 13, 12),
      /* 0x54 */ e::sw(10, 13, 0),          // y[n-3] = acc
      /* 0x58 */ e::addi(1, 1, 1),          // n++
      /* 0x5c */ e::addi(11, 0, 8),
      /* 0x60 */ e::blt(1, 11, -92),        // n < 8 -> 0x04
      /* 0x64 */ e::jal(0, 0),              // halt
  };
  h.load_program(prog);
  h.reset();
  int cycles = 0;
  while (h.pc() != 0x64 && cycles < 5000) {
    h.step();
    ++cycles;
  }
  std::printf("FIR ran %d cycles\n", cycles);

  bool ok = true;
  std::printf("y = ");
  for (int n = 3; n < 8; ++n) {
    std::int32_t ref = 0;
    for (int k = 0; k < 4; ++k) ref += taps[static_cast<std::size_t>(k)] *
                                        xs[static_cast<std::size_t>(n - k)];
    const auto got = static_cast<std::int32_t>(
        h.read_mem(0x500 + 4 * static_cast<std::uint32_t>(n - 3)));
    std::printf("%d ", got);
    if (got != ref) {
      std::printf("(expected %d!) ", ref);
      ok = false;
    }
  }
  std::printf("%s\n", ok ? "(all correct ✓)" : "(MISMATCH)");

  // Physical cost of the multiplier: run both cores through the flow.
  std::printf("\nphysical footprint, RV32I vs RV32IM (util 0.70, 1.5 GHz):\n");
  for (bool with_m : {false, true}) {
    flow::FlowConfig cfg;
    cfg.tech_kind = tech::TechKind::Ffet3p5T;
    cfg.backside_input_fraction = 0.5;
    cfg.utilization = 0.70;
    // prepare_design builds its own core; emulate enable_m by swapping the
    // netlist in a prepared context.
    auto ctx = flow::prepare_design(cfg);
    if (with_m) {
      riscv::Rv32Options mo;
      mo.enable_m = true;
      ctx->netlist = riscv::build_rv32_core(*ctx->library, mo);
      synth::SynthOptions so;
      so.target_freq_ghz = cfg.target_freq_ghz;
      synth::size_for_frequency(ctx->netlist, so);
    }
    const flow::FlowResult r = flow::run_physical(*ctx, cfg);
    std::printf("  %-7s: %5d cells, %6.1f um^2, %.3f GHz, %6.0f uW (%s)\n",
                with_m ? "RV32IM" : "RV32I", r.num_instances, r.core_area_um2,
                r.achieved_freq_ghz, r.power_uw,
                r.valid() ? "valid" : "INVALID");
  }
  return ok ? 0 : 1;
}
