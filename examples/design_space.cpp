// design_space — a mini design-space exploration in the style of the
// paper's Sec. IV: compares the CFET baseline against FFET variants
// (single-sided, dual-sided full stack, and a cost-reduced 6+6-layer
// pattern) on the RV32 core and prints a PPA summary table.
//
//   $ ./design_space

#include <cstdio>
#include <vector>

#include "flow/flow.h"

int main() {
  using namespace ffet;

  struct Variant {
    const char* name;
    flow::FlowConfig cfg;
  };
  std::vector<Variant> variants;
  {
    flow::FlowConfig c;
    c.tech_kind = tech::TechKind::Cfet4T;
    variants.push_back({"4T CFET (baseline)", c});
  }
  {
    flow::FlowConfig c;
    c.tech_kind = tech::TechKind::Ffet3p5T;
    c.back_layers = 0;
    variants.push_back({"3.5T FFET FM12 (single-sided)", c});
  }
  {
    flow::FlowConfig c;
    c.tech_kind = tech::TechKind::Ffet3p5T;
    c.backside_input_fraction = 0.5;
    variants.push_back({"3.5T FFET FM12BM12 FP0.5BP0.5", c});
  }
  {
    flow::FlowConfig c;
    c.tech_kind = tech::TechKind::Ffet3p5T;
    c.front_layers = 6;
    c.back_layers = 6;
    c.backside_input_fraction = 0.5;
    variants.push_back({"3.5T FFET FM6BM6 FP0.5BP0.5 (cost-reduced)", c});
  }

  std::printf("design-space exploration @ 1.5 GHz target, util 0.70\n\n");
  std::printf("%-42s %10s %8s %8s %9s %8s %6s\n", "variant", "area um^2",
              "f (GHz)", "P (uW)", "GHz/mW", "WL um", "valid");

  // All four variants run as one parallel sweep (each prepares its own
  // design); rows print afterwards in variant order.
  std::vector<flow::FlowConfig> cfgs;
  for (const Variant& v : variants) {
    flow::FlowConfig cfg = v.cfg;
    cfg.target_freq_ghz = 1.5;
    cfg.utilization = 0.70;
    cfgs.push_back(cfg);
  }
  const std::vector<flow::FlowResult> results = flow::run_sweep(cfgs);

  double base_area = 0, base_freq = 0, base_power = 0;
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const Variant& v = variants[i];
    const flow::FlowResult& r = results[i];
    std::printf("%-42s %10.1f %8.3f %8.1f %9.3f %8.0f %6s\n", v.name,
                r.core_area_um2, r.achieved_freq_ghz, r.power_uw,
                r.efficiency_ghz_per_mw,
                r.wirelength_front_um + r.wirelength_back_um,
                r.valid() ? "yes" : "NO");
    if (base_area == 0) {
      base_area = r.core_area_um2;
      base_freq = r.achieved_freq_ghz;
      base_power = r.power_uw;
    } else {
      std::printf("%-42s %9.1f%% %+7.1f%% %+7.1f%%\n", "  vs CFET",
                  (r.core_area_um2 / base_area - 1) * 100,
                  (r.achieved_freq_ghz / base_freq - 1) * 100,
                  (r.power_uw / base_power - 1) * 100);
    }
  }
  std::printf("\npaper expectations: FFET beats CFET on area/frequency/power;"
              "\ndual-sided signals add frequency at no power cost; the"
              "\n6+6-layer pattern stays close to the full stack.\n");
  return 0;
}
