// run_program — execute a real RISC-V program on the gate-level core.
//
// The framework's RV32I core is generated structurally from the FFET cell
// library; this example assembles a bubble-sort program with the built-in
// encoder, runs it cycle by cycle on the gate-level simulator, and then
// uses the recorded switching activity for an activity-accurate power
// estimate of the physical block.
//
//   $ ./run_program

#include <cstdio>
#include <vector>

#include "flow/flow.h"
#include "riscv/encode.h"
#include "riscv/harness.h"

int main() {
  using namespace ffet;
  namespace e = riscv::enc;

  flow::FlowConfig cfg;
  cfg.tech_kind = tech::TechKind::Ffet3p5T;
  cfg.backside_input_fraction = 0.5;
  const auto ctx = flow::prepare_design(cfg);

  riscv::Rv32Harness h(&ctx->netlist);

  // Bubble sort of 6 words at 0x200 (x5 = base, x6 = n).
  const std::vector<std::uint32_t> data = {42, 7, 99, 1, 64, 13};
  for (std::size_t i = 0; i < data.size(); ++i) {
    h.write_mem(0x200 + 4 * static_cast<std::uint32_t>(i), data[i]);
  }
  const std::vector<std::uint32_t> prog = {
      /* 0x00 */ e::addi(5, 0, 0x200),      // base
      /* 0x04 */ e::addi(6, 0, 6),          // n
      /* 0x08 */ e::addi(1, 0, 0),          // i = 0          (outer)
      /* 0x0c */ e::addi(2, 0, 0),          // j = 0          (inner)
      /* 0x10 */ e::slli(3, 2, 2),          // j*4
      /* 0x14 */ e::add(3, 3, 5),           // &a[j]
      /* 0x18 */ e::lw(7, 3, 0),            // a[j]
      /* 0x1c */ e::lw(8, 3, 4),            // a[j+1]
      /* 0x20 */ e::bge(8, 7, 12),          // if a[j+1] >= a[j] skip swap
      /* 0x24 */ e::sw(8, 3, 0),
      /* 0x28 */ e::sw(7, 3, 4),
      /* 0x2c */ e::addi(2, 2, 1),          // j++
      /* 0x30 */ e::addi(4, 6, -1),         // n-1
      /* 0x34 */ e::sub(4, 4, 1),           // n-1-i
      /* 0x38 */ e::blt(2, 4, -40),         // inner loop -> 0x10
      /* 0x3c */ e::addi(1, 1, 1),          // i++
      /* 0x40 */ e::addi(4, 6, -1),
      /* 0x44 */ e::blt(1, 4, -56),         // outer loop -> 0x0c (j=0)
      /* 0x48 */ e::jal(0, 0),              // halt (spin)
  };
  h.load_program(prog);
  h.reset();
  h.sim().reset_activity();

  std::printf("running bubble sort on the gate-level RV32 core...\n");
  int cycles = 0;
  while (h.pc() != 0x48 && cycles < 2000) {
    h.step();
    ++cycles;
  }
  std::printf("finished in %d cycles (pc=0x%x)\n", cycles, h.pc());

  std::printf("sorted memory: ");
  bool sorted = true;
  std::uint32_t prev = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::uint32_t v = h.read_mem(0x200 + 4 * static_cast<std::uint32_t>(i));
    std::printf("%u ", v);
    if (v < prev) sorted = false;
    prev = v;
  }
  std::printf("%s\n", sorted ? "(sorted ✓)" : "(NOT SORTED!)");

  // Use the recorded toggle rates for an activity-accurate power estimate.
  std::printf("\nactivity-accurate power at 1.5 GHz (from %llu simulated "
              "cycles):\n",
              static_cast<unsigned long long>(h.sim().cycles()));
  std::vector<double> rates(static_cast<std::size_t>(ctx->netlist.num_nets()));
  for (int n = 0; n < ctx->netlist.num_nets(); ++n) {
    rates[static_cast<std::size_t>(n)] =
        ctx->netlist.net(n).is_clock ? 2.0 : h.sim().toggle_rate(n);
  }
  sta::Sta sta(&ctx->netlist, nullptr);
  sta.analyze_timing();
  const sta::PowerReport with_activity = sta.analyze_power(1.5, &rates);
  const sta::PowerReport with_default = sta.analyze_power(1.5);
  std::printf("  measured activity : %.1f uW\n", with_activity.total_uw());
  std::printf("  default activity  : %.1f uW (flat 0.15 toggle rate)\n",
              with_default.total_uw());
  return sorted ? 0 : 1;
}
