#include "opt/eco.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "io/def.h"
#include "obs/obs.h"
#include "pnr/placement.h"

namespace ffet::opt {

using netlist::InstId;
using netlist::NetId;
using netlist::Netlist;
using netlist::PinRef;
using stdcell::PinSide;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Next/previous drive step of a cell, or nullptr at the ladder's end.
const stdcell::CellType* next_drive(const stdcell::Library& lib,
                                    const stdcell::CellType& type) {
  const int d = type.structure().drive;
  const std::string base(stdcell::to_string(type.function()));
  for (int nd : {d * 2, d * 4}) {
    if (const stdcell::CellType* up =
            lib.find(base + "D" + std::to_string(nd))) {
      return up;
    }
  }
  return nullptr;
}

const stdcell::CellType* prev_drive(const stdcell::Library& lib,
                                    const stdcell::CellType& type) {
  const int d = type.structure().drive;
  if (d <= 1) return nullptr;
  const std::string base(stdcell::to_string(type.function()));
  return lib.find(base + "D" + std::to_string(d / 2));
}

NetId output_net_of(const Netlist& nl, InstId id) {
  const auto& pins = nl.instance(id).type->pins();
  for (std::size_t p = 0; p < pins.size(); ++p) {
    if (pins[p].dir == stdcell::PinDir::Output) {
      return nl.pin_net(id, p);
    }
  }
  return netlist::kNoNet;
}

/// All nets touching any pin of `inst`, sorted and deduplicated.
std::vector<NetId> incident_nets(const Netlist& nl, InstId id) {
  std::vector<NetId> nets;
  for (const NetId n : nl.pin_nets(id)) {
    if (n != netlist::kNoNet) nets.push_back(n);
  }
  std::sort(nets.begin(), nets.end());
  nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
  return nets;
}

/// The input pin of `sink_inst` connected to `net` (-1 if none).
int input_pin_on_net(const Netlist& nl, InstId sink_inst, NetId net) {
  const auto& pins = nl.instance(sink_inst).type->pins();
  for (std::size_t p = 0; p < pins.size(); ++p) {
    if (pins[p].dir != stdcell::PinDir::Output &&
        nl.pin_net(sink_inst, p) == net) {
      return static_cast<int>(p);
    }
  }
  return -1;
}

/// Marginal HPWL (nm) of attaching point `p` to the bounding box of the
/// net's pins on side `s` (driver included): 0 when `p` falls inside the
/// existing box, the box growth otherwise.  An empty side costs the full
/// driver->pin span — the route estimate the pin-flip transform compares.
geom::Nm side_marginal_hpwl(const Netlist& nl, const netlist::Net& net,
                            geom::Point drv_pos, tech::Side s,
                            const PinRef& moving, geom::Point p) {
  geom::Nm min_x = drv_pos.x, max_x = drv_pos.x;
  geom::Nm min_y = drv_pos.y, max_y = drv_pos.y;
  for (const PinRef& sref : net.sinks) {
    if (sref == moving) continue;
    const PinSide ps = nl.pin_side(sref);
    const tech::Side side =
        ps == PinSide::Back ? tech::Side::Back : tech::Side::Front;
    if (side != s) continue;
    const geom::Point q = nl.pin_position(sref);
    min_x = std::min(min_x, q.x);
    max_x = std::max(max_x, q.x);
    min_y = std::min(min_y, q.y);
    max_y = std::max(max_y, q.y);
  }
  const geom::Nm before = (max_x - min_x) + (max_y - min_y);
  min_x = std::min(min_x, p.x);
  max_x = std::max(max_x, p.x);
  min_y = std::min(min_y, p.y);
  max_y = std::max(max_y, p.y);
  return (max_x - min_x) + (max_y - min_y) - before;
}

enum class Kind { Upsize, Downsize, Buffer, PinFlip };

/// One candidate transform plus everything needed to undo it exactly.
struct Mutation {
  Kind kind = Kind::Upsize;
  // Resize (up or down).
  InstId inst = netlist::kNoInst;
  const stdcell::CellType* new_type = nullptr;
  const stdcell::CellType* old_type = nullptr;
  geom::Point old_pos;
  geom::Point new_pos;
  bool moved = false;
  // Buffer insertion.
  NetId net = netlist::kNoNet;
  NetId leaf_net = netlist::kNoNet;
  InstId buf = netlist::kNoInst;
  std::vector<PinRef> moved_sinks;
  /// Sink order of `net` before the edit.  Reverting must restore it
  /// exactly: the restored RC snapshot's sink_nodes are parallel to the
  /// net's sink list, so a permuted order would silently misassign
  /// per-sink wire delays.
  std::vector<PinRef> orig_sinks;
  // Pin flip.
  PinRef flip_pin;
  PinSide old_side = PinSide::Front;
  PinSide flip_to = PinSide::Back;
};

}  // namespace

EcoReport run_eco(Netlist& nl, const pnr::Floorplan& fp,
                  const pnr::PowerPlan& pp, pnr::RouteResult& routes,
                  extract::RcNetlist& rc,
                  const std::unordered_map<InstId, double>& clock_latency_ps,
                  const EcoOptions& options) {
  FFET_TRACE_SCOPE("opt.eco");
  EcoReport rep;
  const stdcell::Library& lib = nl.library();
  const tech::Technology& tech = lib.tech();
  const bool has_back = tech.num_routing_layers(tech::Side::Back) > 0;

  pnr::RouteOptions ro = options.route;
  ro.threads = options.threads;

  sta::Sta sta(&nl, &rc, options.sta);
  auto timed_full = [&] {
    const auto t0 = std::chrono::steady_clock::now();
    const sta::TimingReport r = sta.analyze_timing(&clock_latency_ps);
    rep.full_sta_ms += ms_since(t0);
    ++rep.full_sta_runs;
    return r;
  };

  sta::TimingReport cur = timed_full();
  rep.pre_wns_ps = cur.critical_path_ps;
  rep.pre_freq_ghz = cur.achieved_freq_ghz;
  const double pre_freq = cur.achieved_freq_ghz;
  const double pre_power = sta.analyze_power(pre_freq).total_uw();
  double cur_power = pre_power;

  pnr::IncrementalLegalizer legal(nl, fp, pp);
  int buf_serial = 0;

  // Reverted trials, keyed by their full edit description.  Worst-endpoint
  // lists overlap heavily between passes; without the memo the loop burns
  // its budget re-trying the same doomed transform.  Cleared on every
  // accept — the design changed, so a previously losing move may now win.
  std::set<std::string> failed;
  auto mutation_key = [&](const Mutation& m) {
    std::string k = std::to_string(static_cast<int>(m.kind));
    k += ':';
    k += std::to_string(m.inst);
    if (m.new_type) k += m.new_type->name();
    k += ':';
    k += std::to_string(m.net);
    for (const PinRef& s : m.moved_sinks) {
      k += ',';
      k += std::to_string(s.inst);
      k += '.';
      k += std::to_string(s.pin);
    }
    k += ':';
    k += std::to_string(m.flip_pin.inst);
    k += '.';
    k += std::to_string(m.flip_pin.pin);
    return k;
  };

  // Apply a mutation's netlist/placement edit.  Returns false (with the
  // netlist untouched) when the edit is infeasible (no legal slot).
  auto apply = [&](Mutation& m) -> bool {
    switch (m.kind) {
      case Kind::Upsize:
      case Kind::Downsize: {
        netlist::Instance& inst = nl.instance(m.inst);
        m.old_type = inst.type;
        m.old_pos = inst.pos;
        nl.resize_instance(m.inst, m.new_type);
        m.moved = m.new_type->width() != m.old_type->width();
        if (m.moved) {
          legal.release(m.old_pos, m.old_type->width());
          const auto p = legal.claim(m.new_type->width(), m.old_pos);
          if (!p) {
            legal.occupy(m.old_pos, m.old_type->width());
            nl.resize_instance(m.inst, m.old_type);
            return false;
          }
          m.new_pos = *p;
          nl.instance(m.inst).pos = m.new_pos;
        }
        return true;
      }
      case Kind::Buffer: {
        const stdcell::CellType& buf_type = lib.at("BUFD4");
        // Desired slot: midpoint of the driver and the moved-sink centroid
        // (the classic repeater sweet spot on a dominant-RC net).
        const netlist::Net& net = nl.net(m.net);
        const geom::Point drv = nl.pin_position(net.driver);
        double cx = 0.0, cy = 0.0;
        for (const PinRef& s : m.moved_sinks) {
          const geom::Point q = nl.pin_position(s);
          cx += static_cast<double>(q.x);
          cy += static_cast<double>(q.y);
        }
        const double n_moved = static_cast<double>(m.moved_sinks.size());
        const geom::Point mid{
            static_cast<geom::Nm>(
                (static_cast<double>(drv.x) + cx / n_moved) / 2.0),
            static_cast<geom::Nm>(
                (static_cast<double>(drv.y) + cy / n_moved) / 2.0)};
        const auto p = legal.claim(buf_type.width(), mid);
        if (!p) return false;
        m.orig_sinks = net.sinks;
        const int serial = buf_serial++;
        m.leaf_net = nl.add_net("eco_rep_net_" + std::to_string(serial));
        m.buf = nl.add_instance("eco_rep_buf_" + std::to_string(serial),
                                &buf_type);
        m.new_pos = *p;
        nl.instance(m.buf).pos = m.new_pos;
        nl.connect(m.buf, "Z", m.leaf_net);
        for (const PinRef& s : m.moved_sinks) {
          const auto& pin_name =
              nl.instance(s.inst)
                  .type->pins()[static_cast<std::size_t>(s.pin)]
                  .name;
          nl.reconnect_sink(s.inst, pin_name, m.leaf_net);
        }
        nl.connect(m.buf, "I", m.net);
        return true;
      }
      case Kind::PinFlip: {
        m.old_side = nl.pin_side(m.flip_pin);
        nl.set_pin_side(m.flip_pin, m.flip_to);
        return true;
      }
    }
    return false;
  };

  // Undo a previously applied mutation exactly (inverse ops in reverse
  // order; LIFO pops keep the id spaces dense).
  auto undo = [&](const Mutation& m) {
    switch (m.kind) {
      case Kind::Upsize:
      case Kind::Downsize: {
        if (m.moved) {
          legal.release(m.new_pos, m.new_type->width());
          legal.occupy(m.old_pos, m.old_type->width());
          nl.instance(m.inst).pos = m.old_pos;
        }
        nl.resize_instance(m.inst, m.old_type);
        break;
      }
      case Kind::Buffer: {
        for (const PinRef& s : m.moved_sinks) {
          const auto& pin_name =
              nl.instance(s.inst)
                  .type->pins()[static_cast<std::size_t>(s.pin)]
                  .name;
          nl.reconnect_sink(s.inst, pin_name, m.net);
        }
        nl.disconnect_pin(m.buf, "I");
        nl.disconnect_pin(m.buf, "Z");
        nl.pop_instance();
        nl.pop_net();
        legal.release(m.new_pos, lib.at("BUFD4").width());
        // The reconnects above appended the moved sinks, permuting the
        // net's sink list; rebuild the exact pre-trial order so the
        // restored RC snapshot's per-sink mapping stays aligned.
        for (const PinRef& s : m.orig_sinks) {
          const auto& pin_name =
              nl.instance(s.inst)
                  .type->pins()[static_cast<std::size_t>(s.pin)]
                  .name;
          nl.disconnect_pin(s.inst, pin_name);
        }
        for (const PinRef& s : m.orig_sinks) {
          const auto& pin_name =
              nl.instance(s.inst)
                  .type->pins()[static_cast<std::size_t>(s.pin)]
                  .name;
          nl.connect(s.inst, pin_name, m.net);
        }
        break;
      }
      case Kind::PinFlip: {
        nl.set_pin_side(m.flip_pin, m.old_side);
        break;
      }
    }
  };

  // Nets whose routes/parasitics a mutation invalidates, and the STA dirty
  // set for the matching timing update.
  auto dirty_of = [&](const Mutation& m, bool after_undo) {
    std::pair<std::vector<NetId>, sta::DirtySet> d;
    switch (m.kind) {
      case Kind::Upsize:
      case Kind::Downsize:
        d.first = incident_nets(nl, m.inst);
        d.second.insts.push_back(m.inst);
        break;
      case Kind::Buffer:
        d.first.push_back(m.net);
        if (!after_undo) {
          d.first.push_back(m.leaf_net);
          d.second.insts.push_back(m.buf);
        }
        d.second.structure_changed = true;
        break;
      case Kind::PinFlip:
        d.first.push_back(m.net);
        break;
    }
    std::sort(d.first.begin(), d.first.end());
    d.first.erase(std::unique(d.first.begin(), d.first.end()),
                  d.first.end());
    d.second.nets = d.first;
    return d;
  };

  // Incremental pipeline: reroute the dirty nets, re-merge the DEFs,
  // re-extract the dirty trees, update timing through the dirty cone.
  auto refresh = [&](const std::vector<NetId>& nets,
                     const sta::DirtySet& dirty) {
    routes = pnr::reroute_nets(nl, fp, routes, nets, ro);
    const io::Def front = io::build_def(nl, routes, tech::Side::Front);
    const io::Def back = io::build_def(nl, routes, tech::Side::Back);
    const io::Def merged = io::merge_defs(front, back);
    extract::reextract_nets(rc, merged, nl, tech, nets);
    const auto t0 = std::chrono::steady_clock::now();
    const sta::TimingReport r = sta.update_timing(dirty, &clock_latency_ps);
    rep.incr_sta_ms += ms_since(t0);
    ++rep.sta_updates;
    rep.sta_recomputed += sta.last_update_recomputed();
    return r;
  };

  // Timing update alone (revert path: routes/rc restored from snapshots).
  auto update_only = [&](const sta::DirtySet& dirty) {
    const auto t0 = std::chrono::steady_clock::now();
    const sta::TimingReport r = sta.update_timing(dirty, &clock_latency_ps);
    rep.incr_sta_ms += ms_since(t0);
    ++rep.sta_updates;
    rep.sta_recomputed += sta.last_update_recomputed();
    return r;
  };

  // One full trial.  Returns true when accepted (state kept), false when
  // reverted (state restored bit-exactly).
  auto try_mutation = [&](Mutation& m, const sta::PathEnd* target) -> bool {
    const pnr::RouteResult routes_snap = routes;
    const extract::RcNetlist rc_snap = rc;
    const double ep_before =
        target ? sta.endpoint_path_ps(target->endpoint, target->is_port,
                                      &clock_latency_ps)
               : 0.0;
    if (!apply(m)) return false;
    ++rep.attempted;
    const auto [nets, dirty] = dirty_of(m, /*after_undo=*/false);
    const sta::TimingReport after = refresh(nets, dirty);
    const double trial_power = sta.analyze_power(pre_freq).total_uw();

    // Routability is a hard gate for every kind: a transform may not push
    // the design over the DRV estimate it had before the trial.
    bool ok = routes.drv_estimate <= routes_snap.drv_estimate;
    if (m.kind == Kind::Downsize) {
      // Power recovery: never worse on WNS, strictly better on power.
      ok = ok && after.critical_path_ps <= cur.critical_path_ps &&
           trial_power < cur_power;
    } else {
      const double ep_after = sta.endpoint_path_ps(
          target->endpoint, target->is_port, &clock_latency_ps);
      ok = ok && after.critical_path_ps <= cur.critical_path_ps &&
           (ep_before - ep_after) >= options.min_gain_ps &&
           (trial_power - pre_power) <=
               options.max_power_increase * pre_power;
    }
    static const bool eco_debug = std::getenv("FFET_ECO_DEBUG") != nullptr;
    if (eco_debug) {
      std::fprintf(stderr,
                   "[eco] kind=%d wns %.4f->%.4f ep %.4f->%.4f dP=%.2f "
                   "drv %d->%d ok=%d\n",
                   static_cast<int>(m.kind), cur.critical_path_ps,
                   after.critical_path_ps, ep_before,
                   target ? sta.endpoint_path_ps(target->endpoint,
                                                 target->is_port,
                                                 &clock_latency_ps)
                          : 0.0,
                   trial_power - pre_power, routes_snap.drv_estimate,
                   routes.drv_estimate, ok ? 1 : 0);
    }
    if (ok) {
      cur = after;
      cur_power = trial_power;
      ++rep.accepted;
      switch (m.kind) {
        case Kind::Upsize: ++rep.upsized; break;
        case Kind::Downsize: ++rep.downsized; break;
        case Kind::Buffer: ++rep.buffers; break;
        case Kind::PinFlip: ++rep.pin_flips; break;
      }
      return true;
    }
    undo(m);
    routes = routes_snap;
    rc = rc_snap;
    cur = update_only(dirty_of(m, /*after_undo=*/true).second);
    ++rep.reverted;
    return false;
  };

  // Candidate transforms for one endpoint, in attempt order: load
  // shielding (buffer the off-path sinks away — a pure gain for the path,
  // no upstream penalty), the dual-sided flip (free area, the
  // FFET-specific move), then drive ladder steps endpoint-backwards, then
  // slow-half repeater insertion on long RC links.
  auto candidates_for = [&](const sta::PathEnd& e) {
    std::vector<Mutation> cands;
    const std::vector<InstId> path = sta.path_instances(e);

    // Links (driver inst, net, sink pin) along the path, endpoint-last.
    struct Link {
      NetId net = netlist::kNoNet;
      PinRef sink;
      double elmore_ps = 0.0;
      double off_path_cap_ff = 0.0;  ///< pin cap of the *other* sinks
    };
    std::vector<Link> links;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const NetId n = output_net_of(nl, path[i]);
      if (n == netlist::kNoNet || nl.net(n).is_clock) continue;
      const int pin = input_pin_on_net(nl, path[i + 1], n);
      if (pin < 0) continue;
      Link l;
      l.net = n;
      l.sink = {path[i + 1], pin};
      const extract::RcTreeView tree = rc.tree(n);
      const netlist::Net& net = nl.net(n);
      for (std::size_t k = 0; k < net.sinks.size(); ++k) {
        if (net.sinks[k] == l.sink &&
            k < tree.sink_nodes.size()) {
          l.elmore_ps = tree.elmore_to_sink(k);
          break;
        }
      }
      for (const PinRef& s : net.sinks) {
        if (s == l.sink) continue;
        const stdcell::CellPin& p =
            nl.instance(s.inst).type->pins()[static_cast<std::size_t>(s.pin)];
        l.off_path_cap_ff += p.cap_ff;
      }
      links.push_back(l);
    }

    // Load shielding: on the links with the heaviest off-path fanout, move
    // every sink *except* the path sink behind a repeater.  The on-path
    // driver then sees one pin plus the buffer instead of the whole
    // fanout — a first-order gain with no upstream cap penalty.  Only
    // worth attempting when the removed pin cap clearly exceeds the
    // repeater's own input cap.
    {
      const stdcell::CellType& buf_type = lib.at("BUFD4");
      const stdcell::CellPin* buf_in = buf_type.find_pin("I");
      const double buf_cap = buf_in ? buf_in->cap_ff : 1.0;
      std::vector<const Link*> heavy;
      for (const Link& l : links) {
        if (l.off_path_cap_ff > 2.0 * buf_cap) heavy.push_back(&l);
      }
      std::sort(heavy.begin(), heavy.end(),
                [](const Link* a, const Link* b) {
                  return a->off_path_cap_ff > b->off_path_cap_ff;
                });
      int shields = 0;
      for (const Link* l : heavy) {
        if (shields >= 2) break;
        const netlist::Net& net = nl.net(l->net);
        Mutation m;
        m.kind = Kind::Buffer;
        m.net = l->net;
        for (const PinRef& s : net.sinks) {
          if (!(s == l->sink)) m.moved_sinks.push_back(s);
        }
        if (m.moved_sinks.empty()) continue;
        cands.push_back(m);
        ++shields;
      }
    }

    // Dual-sided pin flip: on the slowest links, compare the marginal
    // route estimate of the sink on each side; flip when the other side's
    // copy of the output pin (the Drain Merge on FM0/BM0) is closer.
    const Link* worst_link = nullptr;
    if (has_back) {
      std::vector<const Link*> by_elmore;
      for (const Link& l : links) by_elmore.push_back(&l);
      std::sort(by_elmore.begin(), by_elmore.end(),
                [](const Link* a, const Link* b) {
                  return a->elmore_ps > b->elmore_ps;
                });
      if (!by_elmore.empty()) worst_link = by_elmore.front();
      int flips = 0;
      for (const Link* l : by_elmore) {
        if (flips >= 3) break;
        const netlist::Net& net = nl.net(l->net);
        const bool driver_dual =
            net.driver.inst != netlist::kNoInst &&
            nl.pin_side(net.driver) == PinSide::Both;
        if (!driver_dual) continue;
        const PinSide side_now = nl.pin_side(l->sink);
        const tech::Side cur_side =
            side_now == PinSide::Back ? tech::Side::Back : tech::Side::Front;
        const tech::Side other = cur_side == tech::Side::Front
                                     ? tech::Side::Back
                                     : tech::Side::Front;
        const geom::Point drv = nl.pin_position(net.driver);
        const geom::Point pos = nl.pin_position(l->sink);
        const geom::Nm stay =
            side_marginal_hpwl(nl, net, drv, cur_side, l->sink, pos);
        const geom::Nm move =
            side_marginal_hpwl(nl, net, drv, other, l->sink, pos);
        if (move < stay) {
          Mutation m;
          m.kind = Kind::PinFlip;
          m.net = l->net;
          m.flip_pin = l->sink;
          m.flip_to =
              other == tech::Side::Back ? PinSide::Back : PinSide::Front;
          cands.push_back(m);
          ++flips;
        }
      }
    } else {
      for (const Link& l : links) {
        if (!worst_link || l.elmore_ps > worst_link->elmore_ps) {
          worst_link = &l;
        }
      }
    }

    // Launch-FF drive swap: a stronger clk->q with no upstream data-path
    // penalty (its input is the clock; CTS latency is pinned by the map).
    if (!path.empty() && nl.instance(path.front()).type->sequential()) {
      const netlist::Instance& ff = nl.instance(path.front());
      if (!ff.fixed) {
        if (const stdcell::CellType* up = next_drive(lib, *ff.type)) {
          Mutation m;
          m.kind = Kind::Upsize;
          m.inst = path.front();
          m.new_type = up;
          cands.push_back(m);
        }
      }
    }

    // Combinational gate sizing, endpoint-backwards (late-path cells
    // first).  The capture FF is skipped — upsizing it only adds D-pin
    // cap to the path.
    int sizing = 0;
    for (auto it = path.rbegin(); it != path.rend() && sizing < 3; ++it) {
      const netlist::Instance& inst = nl.instance(*it);
      if (inst.fixed || inst.type->physical_only() ||
          inst.type->sequential()) {
        continue;
      }
      const NetId out = output_net_of(nl, *it);
      if (out != netlist::kNoNet && nl.net(out).is_clock) continue;
      const stdcell::CellType* up = next_drive(lib, *inst.type);
      if (!up) continue;
      Mutation m;
      m.kind = Kind::Upsize;
      m.inst = *it;
      m.new_type = up;
      cands.push_back(m);
      ++sizing;
    }

    // Repeater insertion on the most resistive link.
    if (worst_link && worst_link->elmore_ps >= options.repeater_elmore_ps) {
      const netlist::Net& net = nl.net(worst_link->net);
      const extract::RcTreeView tree = rc.tree(worst_link->net);
      if (net.driver.inst != netlist::kNoInst &&
          tree.sink_nodes.size() == net.sinks.size()) {
        Mutation m;
        m.kind = Kind::Buffer;
        m.net = worst_link->net;
        // Move the slow half of the tree behind the repeater.
        for (std::size_t k = 0; k < net.sinks.size(); ++k) {
          if (tree.elmore_to_sink(k) >= 0.5 * worst_link->elmore_ps) {
            m.moved_sinks.push_back(net.sinks[k]);
          }
        }
        if (!m.moved_sinks.empty()) cands.push_back(m);
      }
    }
    return cands;
  };

  for (int pass = 0; pass < options.passes; ++pass) {
    ++rep.passes_run;
    int accepted_this_pass = 0;
    int budget = options.max_transforms;

    // Speed transforms on the worst endpoints.
    const std::vector<sta::PathEnd> ends =
        sta.worst_paths(options.paths_per_pass, &clock_latency_ps);
    for (const sta::PathEnd& e : ends) {
      if (budget <= 0) break;
      std::vector<Mutation> cands = candidates_for(e);
      for (Mutation& m : cands) {
        if (budget <= 0) break;
        const std::string key = mutation_key(m);
        if (failed.count(key)) continue;
        --budget;
        if (try_mutation(m, &e)) {
          ++accepted_this_pass;
          failed.clear();
          break;  // endpoint improved; next endpoint
        }
        failed.insert(key);
      }
    }

    // Power recovery: downsize the largest-drive cell on endpoints with
    // comfortable margin over the worst path.
    const std::vector<sta::PathEnd> tail =
        sta.worst_paths(3 * options.paths_per_pass, &clock_latency_ps);
    for (const sta::PathEnd& e : tail) {
      if (budget <= 0) break;
      if (cur.critical_path_ps - e.path_ps < options.downsize_margin_ps) {
        continue;
      }
      const std::vector<InstId> path = sta.path_instances(e);
      InstId cand = netlist::kNoInst;
      int best_drive = 1;
      for (const InstId id : path) {
        const netlist::Instance& inst = nl.instance(id);
        if (inst.fixed || inst.type->physical_only() ||
            inst.type->sequential()) {
          continue;
        }
        const NetId out = output_net_of(nl, id);
        if (out != netlist::kNoNet && nl.net(out).is_clock) continue;
        if (inst.type->structure().drive > best_drive &&
            prev_drive(lib, *inst.type)) {
          best_drive = inst.type->structure().drive;
          cand = id;
        }
      }
      if (cand == netlist::kNoInst) continue;
      Mutation m;
      m.kind = Kind::Downsize;
      m.inst = cand;
      m.new_type = prev_drive(lib, *nl.instance(cand).type);
      const std::string key = mutation_key(m);
      if (failed.count(key)) continue;
      --budget;
      if (try_mutation(m, nullptr)) {
        ++accepted_this_pass;
        failed.clear();
      } else {
        failed.insert(key);
      }
    }

    if (accepted_this_pass == 0) break;  // converged
  }

  // Post numbers from a fresh full analysis (also the timing baseline the
  // incremental speedup is measured against).
  const sta::TimingReport post = timed_full();
  rep.post_wns_ps = post.critical_path_ps;
  rep.post_freq_ghz = post.achieved_freq_ghz;
  rep.est_power_delta_uw = cur_power - pre_power;

  FFET_METRIC_ADD("opt.attempted", rep.attempted);
  FFET_METRIC_ADD("opt.accepted", rep.accepted);
  FFET_METRIC_ADD("opt.reverted", rep.reverted);
  FFET_METRIC_ADD("opt.upsized", rep.upsized);
  FFET_METRIC_ADD("opt.downsized", rep.downsized);
  FFET_METRIC_ADD("opt.buffers", rep.buffers);
  FFET_METRIC_ADD("opt.pin_flips", rep.pin_flips);
  FFET_METRIC_OBSERVE("opt.wns_gain_ps", rep.pre_wns_ps - rep.post_wns_ps);
  FFET_METRIC_OBSERVE("opt.sta_speedup", rep.sta_speedup());
  return rep;
}

}  // namespace ffet::opt
