// eco.h — post-route timing-closure engine (incremental ECO optimizer).
//
// Closes timing on a routed, extracted design with a serial accept/revert
// transform loop over the worst endpoints:
//
//   * gate sizing: upsize cells on critical paths one drive step against
//     the extracted loads (and downsize over-driven cells on paths with
//     slack margin, recovering power at equal frequency);
//   * repeater insertion: split long, resistive RC trees on critical nets
//     behind a buffer placed near the far-sink centroid;
//   * dual-sided pin re-assignment: move a critical sink's input pin to the
//     other wafer side when the driver's output-pin copy there (the Drain
//     Merge on FM0/BM0) yields a shorter route estimate — the transform
//     only FFET's dual-sided output pins make possible.
//
// Every trial runs the full incremental pipeline: legalize the touched
// cells (pnr::IncrementalLegalizer), rip-up-and-reroute only the modified
// nets per side (pnr::reroute_nets), re-extract only those nets against the
// re-merged DEF (extract::reextract_nets), and re-propagate only the dirty
// timing cone (sta::Sta::update_timing).  A trial is accepted when the
// worst slack does not degrade, the targeted endpoint improves by at least
// `min_gain_ps`, and the cumulative power estimate stays within
// `max_power_increase`; otherwise the routes/parasitics snapshots are
// restored and the netlist edit undone exactly (LIFO structural revert),
// leaving every data structure bit-identical to before the trial.
//
// The transform loop is serial and all primitives are deterministic at any
// thread count, so the ECO result is a pure function of its inputs.

#pragma once

#include <unordered_map>

#include "extract/extract.h"
#include "netlist/netlist.h"
#include "pnr/floorplan.h"
#include "pnr/powerplan.h"
#include "pnr/router.h"
#include "sta/sta.h"

namespace ffet::opt {

struct EcoOptions {
  /// Transform passes over the worst-endpoint list (0 = ECO disabled).
  int passes = 1;
  /// Endpoints targeted per pass (worst-first).
  int paths_per_pass = 6;
  /// Trial budget per pass (attempted transforms, accepted or not).
  int max_transforms = 48;
  /// Minimum endpoint path improvement (ps) for a speed trial to count.
  double min_gain_ps = 0.05;
  /// Cumulative power-increase budget, as a fraction of the pre-ECO power
  /// estimate (the paper-style "faster at ~equal power" contract).
  double max_power_increase = 0.01;
  /// Per-sink Elmore delay (ps) beyond which a critical net is considered
  /// a repeater-insertion candidate.
  double repeater_elmore_ps = 12.0;
  /// Slack margin (ps) over the worst path an endpoint must have before
  /// its cells become downsize (power-recovery) candidates.
  double downsize_margin_ps = 10.0;
  int threads = 1;
  /// STA options for the in-loop analyses — must match the flow's signoff
  /// settings (skew, PI latency) for the accept decisions to be honest.
  sta::StaOptions sta;
  /// Routing options for the incremental reroutes.
  pnr::RouteOptions route;
};

struct EcoReport {
  int passes_run = 0;
  int attempted = 0;   ///< trials executed (accepted + reverted)
  int accepted = 0;
  int reverted = 0;
  int upsized = 0;     ///< accepted drive-up resizes
  int downsized = 0;   ///< accepted drive-down (power recovery) resizes
  int buffers = 0;     ///< accepted repeater insertions
  int pin_flips = 0;   ///< accepted dual-sided pin re-assignments

  double pre_wns_ps = 0.0;   ///< critical_path_ps before any transform
  double post_wns_ps = 0.0;  ///< critical_path_ps after the last pass
  double pre_freq_ghz = 0.0;
  double post_freq_ghz = 0.0;
  /// Cumulative power-estimate delta of the accepted transforms (µW, at
  /// the pre-ECO frequency with default activity).
  double est_power_delta_uw = 0.0;

  /// Incremental-STA effort: update_timing() calls, total instances they
  /// re-propagated, and wall time vs the full analyses run at the pass
  /// boundaries — the incremental-vs-full speedup the bench reports.
  long sta_updates = 0;
  long sta_recomputed = 0;
  double incr_sta_ms = 0.0;
  double full_sta_ms = 0.0;
  int full_sta_runs = 0;

  /// Mean full-analysis time over mean incremental-update time (>= 1 when
  /// incremental is paying off; 0 when either count is empty).
  double sta_speedup() const {
    if (sta_updates <= 0 || full_sta_runs <= 0 || incr_sta_ms <= 0.0) {
      return 0.0;
    }
    const double mean_full = full_sta_ms / full_sta_runs;
    const double mean_incr = incr_sta_ms / static_cast<double>(sta_updates);
    return mean_incr > 0.0 ? mean_full / mean_incr : 0.0;
  }
};

/// Run the ECO transform loop on a routed + extracted design.  `routes`
/// and `rc` are updated in place to the accepted state; `nl` receives the
/// accepted resizes / buffers / pin-side overrides (trial edits are undone
/// exactly on revert).  `clock_latency_ps` is the CTS per-sink insertion
/// latency map the flow's signoff STA uses.
EcoReport run_eco(netlist::Netlist& nl, const pnr::Floorplan& fp,
                  const pnr::PowerPlan& pp, pnr::RouteResult& routes,
                  extract::RcNetlist& rc,
                  const std::unordered_map<netlist::InstId, double>&
                      clock_latency_ps,
                  const EcoOptions& options = {});

}  // namespace ffet::opt
