#include "flow/report_json.h"

#include <ostream>
#include <sstream>

#include "obs/obs.h"
#include "obs/numfmt.h"

namespace ffet::flow {

namespace {

class Obj {
 public:
  Obj(std::ostream& os, int indent) : os_(os), indent_(indent) {
    os_ << "{";
  }
  ~Obj() {
    os_ << "\n" << pad(indent_) << "}";
  }

  void field(const char* key, double v) {
    sep();
    os_ << '"' << key << "\": " << obs::format_double(v);
  }
  void field(const char* key, int v) { sep(); os_ << '"' << key << "\": " << v; }
  void field(const char* key, long v) {
    sep();
    os_ << '"' << key << "\": " << v;
  }
  void field(const char* key, bool v) {
    sep();
    os_ << '"' << key << "\": " << (v ? "true" : "false");
  }
  void field(const char* key, const std::string& v) {
    sep();
    std::string escaped;
    obs::append_escaped(escaped, v);
    os_ << '"' << key << "\": \"" << escaped << '"';
  }

 private:
  void sep() {
    os_ << (first_ ? "\n" : ",\n") << pad(indent_ + 1);
    first_ = false;
  }
  static std::string pad(int n) { return std::string(2 * static_cast<std::size_t>(n), ' '); }

  std::ostream& os_;
  int indent_;
  bool first_ = true;
};

}  // namespace

void write_json(const FlowResult& r, std::ostream& os) {
  Obj o(os, 0);
  o.field("label", r.config.label());
  o.field("tech", std::string(tech::to_string(r.config.tech_kind)));
  o.field("front_layers", r.config.front_layers);
  o.field("back_layers", r.config.back_layers);
  o.field("backside_input_fraction", r.config.backside_input_fraction);
  o.field("target_freq_ghz", r.config.target_freq_ghz);
  o.field("target_utilization", r.config.utilization);
  o.field("valid", r.valid());
  o.field("invalid_reason", r.invalid_reason);
  o.field("placement_legal", r.placement_legal);
  o.field("placement_violations", r.placement_violations);
  o.field("placement_drc", r.placement_drc);
  o.field("place_mean_displacement_um", r.place_mean_displacement_um);
  o.field("place_max_displacement_um", r.place_max_displacement_um);
  o.field("route_valid", r.route_valid);
  o.field("drv", r.drv);
  o.field("drv_wire", r.drv_wire);
  o.field("drv_pin_access", r.drv_pin_access);
  o.field("route_passes", r.route_passes);
  o.field("route_ripups", r.route_ripups);
  o.field("route_region_ripups", r.route_region_ripups);
  o.field("route_overflow", r.route_overflow);
  o.field("route_settled_nodes", r.route_settled_nodes);
  o.field("route_window_expansions", r.route_window_expansions);
  o.field("route_steiner_subnets", r.route_steiner_subnets);
  o.field("route_fastpath", r.route_fastpath);
  o.field("core_area_um2", r.core_area_um2);
  o.field("utilization", r.utilization);
  o.field("hpwl_um", r.hpwl_um);
  o.field("wirelength_front_um", r.wirelength_front_um);
  o.field("wirelength_back_um", r.wirelength_back_um);
  o.field("num_instances", r.num_instances);
  o.field("num_tap_cells", r.num_tap_cells);
  o.field("clock_skew_ps", r.clock_skew_ps);
  o.field("clock_latency_ps", r.clock_latency_ps);
  o.field("clock_buffers", r.clock_buffers);
  o.field("hold_buffers", r.hold_buffers);
  o.field("hold_slack_ps", r.hold_slack_ps);
  o.field("hold_violations", r.hold_violations);
  o.field("ir_drop_mv", r.ir_drop_mv);
  o.field("achieved_freq_ghz", r.achieved_freq_ghz);
  o.field("critical_path_ps", r.critical_path_ps);
  o.field("power_uw", r.power_uw);
  o.field("switching_uw", r.switching_uw);
  o.field("internal_uw", r.internal_uw);
  o.field("leakage_uw", r.leakage_uw);
  o.field("efficiency_ghz_per_mw", r.efficiency_ghz_per_mw);
  if (r.config.eco_passes > 0) {
    o.field("eco_passes_run", r.eco_passes_run);
    o.field("eco_attempted", r.eco_attempted);
    o.field("eco_accepted", r.eco_accepted);
    o.field("eco_reverted", r.eco_reverted);
    o.field("eco_upsized", r.eco_upsized);
    o.field("eco_downsized", r.eco_downsized);
    o.field("eco_buffers", r.eco_buffers);
    o.field("eco_pin_flips", r.eco_pin_flips);
    o.field("eco_pre_freq_ghz", r.eco_pre_freq_ghz);
    o.field("eco_post_freq_ghz", r.eco_post_freq_ghz);
    o.field("eco_pre_power_uw", r.eco_pre_power_uw);
    o.field("eco_post_power_uw", r.eco_post_power_uw);
    o.field("eco_iso_power_uw", r.eco_iso_power_uw);
    o.field("eco_sta_speedup", r.eco_sta_speedup);
  }
}

std::string to_json(const FlowResult& result, int indent) {
  (void)indent;
  std::ostringstream os;
  write_json(result, os);
  return os.str();
}

void write_json(const std::vector<FlowResult>& results, std::ostream& os) {
  os << "[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i) os << ",";
    os << "\n";
    write_json(results[i], os);
  }
  os << "\n]";
}

std::string to_json(const std::vector<FlowResult>& results) {
  std::ostringstream os;
  write_json(results, os);
  return os.str();
}

std::string flow_report_json(const FlowResult& r) {
  std::string out;
  out.reserve(2048);
  JsonBuilder j(out);
  j.open_obj();
  j.field("schema", std::string("ffet.flow_report.v1"));
  j.field("label", r.config.label());
  j.field("tech", std::string(tech::to_string(r.config.tech_kind)));
  j.field("front_layers", static_cast<long long>(r.config.front_layers));
  j.field("back_layers", static_cast<long long>(r.config.back_layers));
  j.field("backside_input_fraction", r.config.backside_input_fraction);
  j.field("target_freq_ghz", r.config.target_freq_ghz);
  j.field("target_utilization", r.config.utilization);
  j.field("seed", static_cast<long long>(r.config.seed));

  // Verdict.
  j.field("valid", r.valid());
  j.field("invalid_reason", r.invalid_reason);

  // Convergence / quality diagnostics.
  j.open_nested("diagnostics");
  j.field("placement_violations", static_cast<long long>(r.placement_violations));
  j.field("placement_drc", static_cast<long long>(r.placement_drc));
  j.field("place_mean_displacement_um", r.place_mean_displacement_um);
  j.field("place_max_displacement_um", r.place_max_displacement_um);
  j.field("drv", static_cast<long long>(r.drv));
  j.field("drv_wire", static_cast<long long>(r.drv_wire));
  j.field("drv_pin_access", static_cast<long long>(r.drv_pin_access));
  j.field("route_passes", static_cast<long long>(r.route_passes));
  j.field("route_ripups", static_cast<long long>(r.route_ripups));
  j.field("route_region_ripups",
          static_cast<long long>(r.route_region_ripups));
  j.field("route_overflow", static_cast<long long>(r.route_overflow));
  j.field("route_settled_nodes", static_cast<long long>(r.route_settled_nodes));
  j.field("route_window_expansions",
          static_cast<long long>(r.route_window_expansions));
  j.field("route_steiner_subnets",
          static_cast<long long>(r.route_steiner_subnets));
  j.field("route_fastpath", static_cast<long long>(r.route_fastpath));
  j.field("clock_skew_ps", r.clock_skew_ps);
  j.field("ir_drop_mv", r.ir_drop_mv);
  j.close_obj();

  // PPA summary.
  j.open_nested("ppa");
  j.field("utilization", r.utilization);
  j.field("core_area_um2", r.core_area_um2);
  j.field("wirelength_front_um", r.wirelength_front_um);
  j.field("wirelength_back_um", r.wirelength_back_um);
  j.field("achieved_freq_ghz", r.achieved_freq_ghz);
  j.field("power_uw", r.power_uw);
  j.field("efficiency_ghz_per_mw", r.efficiency_ghz_per_mw);
  j.close_obj();

  // Post-route ECO (only when the stage ran; absent otherwise so reports
  // from eco_passes == 0 runs stay byte-identical to older builds).
  if (r.config.eco_passes > 0) {
    j.open_nested("eco");
    j.field("passes_run", static_cast<long long>(r.eco_passes_run));
    j.field("attempted", static_cast<long long>(r.eco_attempted));
    j.field("accepted", static_cast<long long>(r.eco_accepted));
    j.field("reverted", static_cast<long long>(r.eco_reverted));
    j.field("upsized", static_cast<long long>(r.eco_upsized));
    j.field("downsized", static_cast<long long>(r.eco_downsized));
    j.field("buffers", static_cast<long long>(r.eco_buffers));
    j.field("pin_flips", static_cast<long long>(r.eco_pin_flips));
    j.field("pre_freq_ghz", r.eco_pre_freq_ghz);
    j.field("post_freq_ghz", r.eco_post_freq_ghz);
    j.field("pre_power_uw", r.eco_pre_power_uw);
    j.field("post_power_uw", r.eco_post_power_uw);
    j.field("iso_power_uw", r.eco_iso_power_uw);
    j.field("sta_speedup", r.eco_sta_speedup);
    j.close_obj();
  }

  // Resource usage (obs resource probe; absent when disabled so reports
  // from FFET_RESOURCE=0 runs stay byte-identical to older builds).
  if (r.resource.sampled) {
    j.open_nested("resource");
    j.field("peak_rss_kb", r.resource.peak_rss_kb);
    j.field("current_rss_kb", r.resource.current_rss_kb);
    j.field("minor_faults", r.resource.minor_faults);
    j.field("major_faults", r.resource.major_faults);
    j.field("netlist_cells", r.resource.netlist_cells);
    j.field("netlist_nets", r.resource.netlist_nets);
    j.field("rc_nodes", r.resource.rc_nodes);
    j.field("route_grid_nodes", r.resource.route_grid_nodes);
    j.field("def_components", r.resource.def_components);
    j.field("def_wires", r.resource.def_wires);
    j.close_obj();
  }

  // Per-stage timings, in execution order (plus per-stage RSS growth when
  // the resource probe is on).
  j.open_array("stages");
  for (const StageTiming& st : r.stage_times) {
    j.element();
    j.open_obj();
    j.field("stage", st.stage);
    j.field("wall_ms", st.wall_ms);
    j.field("cpu_ms", st.cpu_ms);
    if (r.resource.sampled) j.field("rss_delta_kb", st.rss_delta_kb);
    j.close_obj();
  }
  j.close_array();

  // Metrics snapshot (only what the registry has seen so far; the
  // histograms' full bucket vectors stay in the FFET_METRICS dump).
  if (obs::metrics_enabled()) {
    const obs::MetricsSnapshot snap = obs::metrics_snapshot();
    j.open_nested("metrics");
    for (const auto& [name, v] : snap.counters) {
      j.field(name.c_str(), static_cast<long long>(v));
    }
    for (const auto& [name, v] : snap.gauges) j.field(name.c_str(), v);
    j.close_obj();
  }
  j.close_obj();
  return out;
}

void write_flow_report(const FlowResult& result, std::ostream& os) {
  os << flow_report_json(result);
}

bool append_serve_report(std::string& line, const ServeAttribution& serve) {
  // Find the closing brace of the report object (the line may carry a
  // trailing newline); splice the serve object in front of it.
  std::size_t end = line.find_last_of('}');
  if (end == std::string::npos || line.find_first_of('{') == std::string::npos) {
    return false;
  }
  std::string obj;
  {
    JsonBuilder j(obj);
    j.open_obj();
    j.field("queue_ms", serve.queue_ms);
    j.field("cache_ms", serve.cache_ms);
    j.field("run_ms", serve.run_ms);
    j.field("retries", serve.retries);
    j.field("worker_pid", serve.worker_pid);
    j.field("cache_hit", serve.cache_hit);
    j.close_obj();
  }
  const bool empty_obj = end > 0 && line[end - 1] == '{';
  line.insert(end, (empty_obj ? "\"serve\":" : ",\"serve\":") + obj);
  return true;
}

}  // namespace ffet::flow
