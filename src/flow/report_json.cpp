#include "flow/report_json.h"

#include <ostream>
#include <sstream>

namespace ffet::flow {

namespace {

class Obj {
 public:
  Obj(std::ostream& os, int indent) : os_(os), indent_(indent) {
    os_ << "{";
  }
  ~Obj() {
    os_ << "\n" << pad(indent_) << "}";
  }

  void field(const char* key, double v) { sep(); os_ << '"' << key << "\": " << v; }
  void field(const char* key, int v) { sep(); os_ << '"' << key << "\": " << v; }
  void field(const char* key, bool v) {
    sep();
    os_ << '"' << key << "\": " << (v ? "true" : "false");
  }
  void field(const char* key, const std::string& v) {
    sep();
    os_ << '"' << key << "\": \"" << v << '"';
  }

 private:
  void sep() {
    os_ << (first_ ? "\n" : ",\n") << pad(indent_ + 1);
    first_ = false;
  }
  static std::string pad(int n) { return std::string(2 * static_cast<std::size_t>(n), ' '); }

  std::ostream& os_;
  int indent_;
  bool first_ = true;
};

}  // namespace

void write_json(const FlowResult& r, std::ostream& os) {
  Obj o(os, 0);
  o.field("label", r.config.label());
  o.field("tech", std::string(tech::to_string(r.config.tech_kind)));
  o.field("front_layers", r.config.front_layers);
  o.field("back_layers", r.config.back_layers);
  o.field("backside_input_fraction", r.config.backside_input_fraction);
  o.field("target_freq_ghz", r.config.target_freq_ghz);
  o.field("target_utilization", r.config.utilization);
  o.field("valid", r.valid());
  o.field("placement_legal", r.placement_legal);
  o.field("placement_violations", r.placement_violations);
  o.field("placement_drc", r.placement_drc);
  o.field("route_valid", r.route_valid);
  o.field("drv", r.drv);
  o.field("core_area_um2", r.core_area_um2);
  o.field("utilization", r.utilization);
  o.field("hpwl_um", r.hpwl_um);
  o.field("wirelength_front_um", r.wirelength_front_um);
  o.field("wirelength_back_um", r.wirelength_back_um);
  o.field("num_instances", r.num_instances);
  o.field("num_tap_cells", r.num_tap_cells);
  o.field("clock_skew_ps", r.clock_skew_ps);
  o.field("clock_latency_ps", r.clock_latency_ps);
  o.field("clock_buffers", r.clock_buffers);
  o.field("hold_buffers", r.hold_buffers);
  o.field("hold_slack_ps", r.hold_slack_ps);
  o.field("hold_violations", r.hold_violations);
  o.field("ir_drop_mv", r.ir_drop_mv);
  o.field("achieved_freq_ghz", r.achieved_freq_ghz);
  o.field("critical_path_ps", r.critical_path_ps);
  o.field("power_uw", r.power_uw);
  o.field("switching_uw", r.switching_uw);
  o.field("internal_uw", r.internal_uw);
  o.field("leakage_uw", r.leakage_uw);
  o.field("efficiency_ghz_per_mw", r.efficiency_ghz_per_mw);
}

std::string to_json(const FlowResult& result, int indent) {
  (void)indent;
  std::ostringstream os;
  write_json(result, os);
  return os.str();
}

void write_json(const std::vector<FlowResult>& results, std::ostream& os) {
  os << "[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i) os << ",";
    os << "\n";
    write_json(results[i], os);
  }
  os << "\n]";
}

std::string to_json(const std::vector<FlowResult>& results) {
  std::ostringstream os;
  write_json(results, os);
  return os.str();
}

}  // namespace ffet::flow
