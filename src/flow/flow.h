// flow.h — the end-to-end evaluation framework (Fig. 7).
//
// Orchestrates the full pipeline the paper describes:
//
//   technology (+ routing-layer limits)        src/tech
//     -> dual-sided library (+ pin DoE)        src/stdcell
//     -> NLDM characterization                 src/liberty
//     -> RV32 core generation                  src/riscv
//     -> virtual synthesis @ target frequency  src/synth
//     -> floorplan (utilization, AR)           src/pnr
//     -> powerplan (BSPDN, Power Tap Cells)    src/pnr
//     -> placement + IO planning               src/pnr
//     -> clock-tree synthesis                  src/pnr
//     -> dual-sided routing (Algorithm 1)      src/pnr
//     -> two DEFs -> merged DEF                src/io
//     -> dual-sided RC extraction              src/extract
//     -> STA + power                           src/sta
//
// A `DesignContext` caches everything upstream of the physical stages so
// utilization/layer sweeps re-run only floorplan→STA.
//
// Validity follows the paper: legal placement (no cell/tap violations) and
// routing DRV < 10.

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "extract/extract.h"
#include "netlist/netlist.h"
#include "pnr/cts.h"
#include "pnr/placement.h"
#include "pnr/router.h"
#include "sta/sta.h"
#include "stdcell/stdcell.h"
#include "synth/synth.h"
#include "tech/tech.h"

namespace ffet::flow {

struct FlowConfig {
  tech::TechKind tech_kind = tech::TechKind::Ffet3p5T;

  /// Routing-layer pattern: FM<front_layers> [BM<back_layers>].
  int front_layers = 12;
  int back_layers = 12;  ///< ignored for CFET (its backside is PDN-only)

  /// Input-pin DoE: fraction of library input pins on the backside.
  double backside_input_fraction = 0.0;

  double target_freq_ghz = 1.5;
  double utilization = 0.7;
  double aspect_ratio = 1.0;

  int rv32_registers = 32;
  unsigned seed = 1;

  /// Run a gate-level workload to extract real toggle rates (slower);
  /// otherwise a default activity factor is used.
  bool simulate_activity = false;
  int activity_cycles = 120;

  /// Post-route ECO timing-closure passes (src/opt): 0 (default) skips the
  /// stage entirely — the flow output is then bit-identical to a build
  /// without the ECO engine.  With passes > 0 the flow runs the
  /// accept/revert transform loop after routing/extraction and re-signs
  /// off timing and power on the optimized design.
  int eco_passes = 0;

  /// Worker threads for the intra-flow parallel stages (per-side routing,
  /// per-net extraction, STA precompute).  0 = auto: the FFET_THREADS
  /// environment variable if set, else std::thread::hardware_concurrency().
  /// All stages are bit-identical to threads == 1.
  int threads = 0;

  /// Telemetry sinks (src/obs).  `trace_path` enables span tracing and
  /// dumps a Chrome trace-event JSON there when the process exits (same
  /// effect as the FFET_TRACE environment variable).  `flow_report_path`
  /// appends one structured-JSON line per run_physical call (stage
  /// timings + metrics + validity verdict); the FFET_FLOW_REPORT
  /// environment variable is the out-of-band equivalent.  Both empty by
  /// default: the flow then records nothing and pays only a relaxed
  /// atomic load per instrumentation site.
  std::string trace_path;
  std::string flow_report_path;

  /// Run-ledger sink (src/report reads it back): when non-empty,
  /// run_physical appends one "ffet.ledger.v1" JSON line per point
  /// (label + timestamp + host/threads + PPA/runtime/peak-RSS metrics)
  /// to this file.  Empty (default) defers to the FFET_LEDGER environment
  /// variable: unset/"0" = off, "1" = the default .ffet_ledger/ledger.jsonl,
  /// anything else = that path.  Ledger writes happen after the result is
  /// fully computed, so they can never perturb flow output.
  std::string ledger_path;

  std::string label() const;
};

/// Resolve the ledger sink path shared by the flow emitter, the bench
/// wrapper and the ffet_report CLI: `explicit_path` if non-empty, else the
/// FFET_LEDGER environment variable ("0"/unset -> "" = off, "1" -> the
/// default ".ffet_ledger/ledger.jsonl", anything else -> that value).
std::string resolve_ledger_path(const std::string& explicit_path = {});

/// The default on-disk ledger location (used when FFET_LEDGER=1 and as the
/// CLI's read-side default).
inline constexpr const char kDefaultLedgerPath[] = ".ffet_ledger/ledger.jsonl";

/// Everything upstream of the physical stages; reusable across
/// utilization / aspect-ratio sweeps of the same design point.
/// The Technology is heap-owned so the Library's internal pointer to it
/// stays valid for the context's lifetime.
struct DesignContext {
  FlowConfig config;
  std::unique_ptr<tech::Technology> tech_storage;
  std::unique_ptr<stdcell::Library> library;
  netlist::Netlist netlist;  ///< synthesized (sized + fanout-buffered)
  synth::SynthReport synth;
  double realized_backside_pin_fraction = 0.0;

  const tech::Technology& tech() const { return *tech_storage; }

  DesignContext(FlowConfig cfg, std::unique_ptr<tech::Technology> t,
                std::unique_ptr<stdcell::Library> lib, netlist::Netlist nl)
      : config(std::move(cfg)), tech_storage(std::move(t)),
        library(std::move(lib)), netlist(std::move(nl)) {}
};

/// Build tech + library + characterization + core + synthesis.
std::unique_ptr<DesignContext> prepare_design(const FlowConfig& config);

/// Wall/CPU time of one named flow stage (telemetry; always collected —
/// the cost is two clock reads per stage, independent of obs state).
struct StageTiming {
  std::string stage;
  double wall_ms = 0.0;
  double cpu_ms = 0.0;  ///< calling thread's CPU time (helpers excluded)
  /// Resident-set growth across the stage (end minus start, in kB; may be
  /// negative when the allocator returns memory).  Always 0 when the
  /// resource probe is disabled (FFET_RESOURCE=0) — the probe then makes
  /// no syscalls and reports omit the field.
  long long rss_delta_kb = 0;
};

/// Process resource usage for one flow point, sampled by the obs resource
/// probe at the end of run_physical, plus the sizes of the big per-point
/// data structures ("allocation counters" — the memory observability the
/// 1M-cell data-plane work trends against).  `sampled` is false when the
/// probe is disabled: everything stays 0 and the flow report omits the
/// whole section, byte-identical to a build without the probe.
struct ResourceUsage {
  bool sampled = false;
  long long peak_rss_kb = 0;     ///< process high-water RSS (VmHWM)
  long long current_rss_kb = 0;  ///< RSS when the point finished
  long long minor_faults = 0;
  long long major_faults = 0;
  // Structure sizes at signoff (post-ECO when the stage ran).
  long long netlist_cells = 0;      ///< instances incl. taps/buffers
  long long netlist_nets = 0;
  long long rc_nodes = 0;           ///< RC tree nodes across all nets
  long long route_grid_nodes = 0;   ///< gcells (gcols * grows)
  long long def_components = 0;     ///< merged-DEF components
  long long def_wires = 0;          ///< merged-DEF wire segments (both sides)
};

struct FlowResult {
  FlowConfig config;

  // Physical outcome.
  bool placement_legal = false;
  int placement_violations = 0;
  bool route_valid = false;
  int drv = 0;
  double core_area_um2 = 0.0;
  double core_width_um = 0.0;
  double core_height_um = 0.0;
  double utilization = 0.0;  ///< achieved (after floorplan snapping)
  double hpwl_um = 0.0;
  double wirelength_front_um = 0.0;
  double wirelength_back_um = 0.0;
  int num_instances = 0;
  int num_tap_cells = 0;

  // CTS.
  double clock_skew_ps = 0.0;
  double clock_latency_ps = 0.0;
  int clock_buffers = 0;

  // Power integrity.
  double ir_drop_mv = 0.0;

  // Signoff-lite checks.
  int placement_drc = 0;       ///< independent placement DRC count
  double hold_slack_ps = 0.0;  ///< worst hold slack (negative = violation)
  int hold_violations = 0;
  int hold_buffers = 0;        ///< delay buffers inserted by hold fixing

  // PPA.
  double achieved_freq_ghz = 0.0;
  double critical_path_ps = 0.0;
  double power_uw = 0.0;        ///< total power at the achieved frequency
  double switching_uw = 0.0;
  double internal_uw = 0.0;
  double leakage_uw = 0.0;
  double efficiency_ghz_per_mw = 0.0;  ///< Fig. 13's metric

  // Convergence / quality diagnostics (telemetry).
  int route_passes = 0;         ///< RRR passes the router actually ran
  /// Total subnet-level rip-ups across all passes: 2-pin subnets for the
  /// stage-2 engine, whole per-side subnets for the stage-1 engines —
  /// distinct granularities, reported distinctly from the region events
  /// below.
  long route_ripups = 0;
  /// Congestion regions processed across all passes (stage-2 engine only;
  /// each region is one batched rip-up-and-reroute unit).
  long route_region_ripups = 0;
  int route_overflow = 0;       ///< residual hard overflow (track units)
  long route_settled_nodes = 0;  ///< maze-search nodes settled (all passes)
  long route_window_expansions = 0;  ///< A* window retries (x2 / full grid)
  long route_steiner_subnets = 0;  ///< 2-pin subnets from Steiner decomposition
  long route_fastpath = 0;  ///< 2-pin routes satisfied by the L/Z fast path
  int drv_wire = 0;             ///< DRVs from wire overflow
  int drv_pin_access = 0;       ///< DRVs from pin-access overload
  double place_mean_displacement_um = 0.0;  ///< legalization displacement
  double place_max_displacement_um = 0.0;

  // Post-route ECO (src/opt; populated only when config.eco_passes > 0).
  int eco_passes_run = 0;
  int eco_attempted = 0;
  int eco_accepted = 0;
  int eco_reverted = 0;
  int eco_upsized = 0;
  int eco_downsized = 0;
  int eco_buffers = 0;
  int eco_pin_flips = 0;
  double eco_pre_freq_ghz = 0.0;   ///< signoff frequency before the ECO
  double eco_post_freq_ghz = 0.0;  ///< and after (== achieved_freq_ghz)
  double eco_pre_power_uw = 0.0;
  double eco_post_power_uw = 0.0;  ///< at the (higher) post-ECO frequency
  /// Optimized design's power evaluated at the *pre-ECO* frequency — the
  /// iso-frequency number the paper-style "faster at ~equal power"
  /// contract is judged on (power_uw/eco_post_power_uw include the power
  /// cost of running faster).
  double eco_iso_power_uw = 0.0;
  double eco_sta_speedup = 0.0;  ///< mean full-STA / mean incremental-STA time

  /// Per-stage wall/CPU timings in execution order (floorplan ... ir_drop).
  std::vector<StageTiming> stage_times;

  /// Peak/current RSS, fault counters and structure sizes (see
  /// ResourceUsage); populated only while the obs resource probe is on.
  ResourceUsage resource;

  /// Why valid() is false, composed from the failing stage ("" when valid).
  std::string invalid_reason;

  /// The paper's validity rule: legal placement and DRV < 10.
  bool valid() const { return placement_legal && route_valid; }
};

/// Run floorplan → STA on a prepared design.  The context is not modified
/// (the netlist is copied for tap cells / CTS buffers).
FlowResult run_physical(const DesignContext& ctx, const FlowConfig& config);

/// Convenience: prepare + run.
FlowResult run_flow(const FlowConfig& config);

/// Run every config as an independent sweep point on the shared prepared
/// design (each point still sees its own FlowConfig — the ctx supplies the
/// synthesized netlist and library).  `threads` workers execute points
/// concurrently (0 = auto, as FlowConfig::threads); results are returned in
/// config order and are bit-identical to a serial loop of run_physical
/// calls.  Points whose FlowConfig::threads == 0 run their intra-flow
/// stages serially (the sweep level owns the parallelism).
std::vector<FlowResult> run_sweep(const DesignContext& ctx,
                                  const std::vector<FlowConfig>& configs,
                                  int threads = 0);

/// Sweep over configs that need their own prepared design (per-point
/// prepare_design + run_physical).  The characterization cache makes the
/// repeated library builds cheap.
std::vector<FlowResult> run_sweep(const std::vector<FlowConfig>& configs,
                                  int threads = 0);

/// Highest utilization (within [lo, hi], to `tol`) at which the flow is
/// valid; nullopt if even `lo` fails.  Uses bisection (validity is
/// monotone in utilization for fixed everything-else).
std::optional<double> find_max_utilization(const DesignContext& ctx,
                                           FlowConfig config, double lo = 0.40,
                                           double hi = 0.98,
                                           double tol = 0.005);

}  // namespace ffet::flow
