// version.h — single source of truth for the tool version string.
//
// Shared by `ffet_cli --version` and `ffet_report --version`; keep in sync
// with the `project(... VERSION ...)` declaration in the top-level
// CMakeLists.txt.

#pragma once

namespace ffet {

inline constexpr const char kVersion[] = "0.1.0";

}  // namespace ffet
