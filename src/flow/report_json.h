// report_json.h — machine-readable flow results.
//
// Serializes FlowConfig/FlowResult as JSON so sweeps can be plotted or
// post-processed without parsing log text.  Hand-rolled emitter (flat
// structures, no external dependency).

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "flow/flow.h"

namespace ffet::flow {

/// One result as a JSON object.
std::string to_json(const FlowResult& result, int indent = 0);

/// A sweep as a JSON array of objects.
std::string to_json(const std::vector<FlowResult>& results);

void write_json(const FlowResult& result, std::ostream& os);
void write_json(const std::vector<FlowResult>& results, std::ostream& os);

}  // namespace ffet::flow
