// report_json.h — machine-readable flow results.
//
// Serializes FlowConfig/FlowResult as JSON so sweeps can be plotted or
// post-processed without parsing log text.  Hand-rolled emitter (flat
// structures, no external dependency).

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "flow/flow.h"

namespace ffet::flow {

/// One result as a JSON object.  Doubles are formatted with std::to_chars
/// (shortest round-trip, locale-independent), so serializing the same
/// result twice yields identical bytes.
std::string to_json(const FlowResult& result, int indent = 0);

/// A sweep as a JSON array of objects.
std::string to_json(const std::vector<FlowResult>& results);

void write_json(const FlowResult& result, std::ostream& os);
void write_json(const std::vector<FlowResult>& results, std::ostream& os);

/// One compact flow-report line (schema "ffet.flow_report.v1"): the result
/// fields plus per-stage wall/CPU timings, convergence diagnostics, the
/// validity verdict with its reason, and — when metrics are enabled — a
/// snapshot of the obs counters and gauges.  This is the per-point record
/// run_physical appends to FFET_FLOW_REPORT / FlowConfig::flow_report_path.
std::string flow_report_json(const FlowResult& result);

void write_flow_report(const FlowResult& result, std::ostream& os);

}  // namespace ffet::flow
