// report_json.h — machine-readable flow results.
//
// Serializes FlowConfig/FlowResult as JSON so sweeps can be plotted or
// post-processed without parsing log text.  Hand-rolled emitter (flat
// structures, no external dependency).

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "flow/flow.h"
#include "obs/numfmt.h"

namespace ffet::flow {

/// Minimal compact-JSON builder: no whitespace, keys emitted as given,
/// doubles via obs::append_double (std::to_chars — shortest round-trip,
/// locale-independent), strings escaped with obs::append_escaped.  The
/// single formatter behind the flow-report line and the bench JSON
/// emitters, so every machine-readable artifact is byte-deterministic and
/// parses back with the same number semantics (report/json reads
/// std::from_chars, the exact mirror).
class JsonBuilder {
 public:
  explicit JsonBuilder(std::string& out) : out_(out) {}

  void open_obj() { out_ += '{'; }
  void close_obj() { out_ += '}'; }
  void open_array(const char* key) {
    sep();
    key_(key);
    out_ += '[';
  }
  void close_array() { out_ += ']'; }
  void open_nested(const char* key) {
    sep();
    key_(key);
    out_ += '{';
  }
  /// Element separator inside an open array (call before each element).
  void element() {
    if (out_.back() != '[') out_ += ',';
  }

  void field(const char* key, double v) {
    sep();
    key_(key);
    obs::append_double(out_, v);
  }
  void field(const char* key, long long v) {
    sep();
    key_(key);
    out_ += std::to_string(v);
  }
  void field(const char* key, long v) { field(key, static_cast<long long>(v)); }
  void field(const char* key, int v) { field(key, static_cast<long long>(v)); }
  void field(const char* key, unsigned v) {
    field(key, static_cast<long long>(v));
  }
  void field(const char* key, bool v) {
    sep();
    key_(key);
    out_ += v ? "true" : "false";
  }
  void field(const char* key, const std::string& v) {
    sep();
    key_(key);
    out_ += '"';
    obs::append_escaped(out_, v);
    out_ += '"';
  }
  void field(const char* key, const char* v) { field(key, std::string(v)); }

 private:
  void sep() {
    if (out_.back() != '{' && out_.back() != '[') out_ += ',';
  }
  void key_(const char* key) {
    out_ += '"';
    out_ += key;
    out_ += "\":";
  }

  std::string& out_;
};

/// One result as a JSON object.  Doubles are formatted with std::to_chars
/// (shortest round-trip, locale-independent), so serializing the same
/// result twice yields identical bytes.
std::string to_json(const FlowResult& result, int indent = 0);

/// A sweep as a JSON array of objects.
std::string to_json(const std::vector<FlowResult>& results);

void write_json(const FlowResult& result, std::ostream& os);
void write_json(const std::vector<FlowResult>& results, std::ostream& os);

/// One compact flow-report line (schema "ffet.flow_report.v1"): the result
/// fields plus per-stage wall/CPU timings, convergence diagnostics, the
/// validity verdict with its reason, and — when metrics are enabled — a
/// snapshot of the obs counters and gauges.  This is the per-point record
/// run_physical appends to FFET_FLOW_REPORT / FlowConfig::flow_report_path.
std::string flow_report_json(const FlowResult& result);

void write_flow_report(const FlowResult& result, std::ostream& os);

/// Where a served point spent its time inside the sweep service: queued
/// behind other points, probing the result cache, and running in a worker.
/// Attached to the flow-report line by the daemon (never by run_flow), and
/// only when attribution is enabled — lines are byte-identical to the
/// unserved flow otherwise.
struct ServeAttribution {
  double queue_ms = 0.0;
  double cache_ms = 0.0;
  double run_ms = 0.0;
  int retries = 0;
  int worker_pid = 0;
  bool cache_hit = false;
};

/// Inject `"serve":{...}` as the last member of an ffet.flow_report.v1
/// line (string surgery before the closing brace — the daemon annotates
/// worker-produced lines without re-serializing them).  Returns false and
/// leaves `line` untouched when it does not look like a JSON object.
bool append_serve_report(std::string& line, const ServeAttribution& serve);

}  // namespace ffet::flow
