// config_json.h — FlowConfig as a machine-readable JSON object.
//
// The sweep service (`src/serve`) ships FlowConfigs over the wire as JSON:
// a client submits a list of config objects, the daemon hands each one to a
// forked worker, and the worker reconstructs the FlowConfig and runs the
// flow.  This header is the write side (byte-deterministic, emitted with
// the same JsonBuilder as every other artifact); the read side lives in
// serve/config_codec.h because it reuses the strict parser from src/report
// (which links *against* this library — flow cannot link back).
//
// Every member of FlowConfig is serialized, including the ones that do not
// change PPA (threads, sink paths): the wire format is a faithful
// round-trip, and the *worker* decides which fields to honor.  A
// compile-time member census (kFlowConfigFieldCount) pins the struct shape:
// adding a FlowConfig field breaks the build here until the serializer, the
// parser, FlowConfig::label() and the round-trip test are revisited —
// that's the guard against a new PPA-affecting knob silently aliasing two
// cache keys (the service cache is keyed on label()).

#pragma once

#include <string>

#include "flow/flow.h"

namespace ffet::flow {

class JsonBuilder;

/// The number of data members FlowConfig currently has.  Checked against
/// the real struct by a static_assert in config_json.cpp (aggregate
/// brace-initializability census).  When this fails to compile you added or
/// removed a field: update config_to_json, serve/config_codec's
/// config_from_json, label() (if the field changes PPA), the
/// FlowConfigJson tests in test_serve.cpp — and then this constant.
inline constexpr int kFlowConfigFieldCount = 16;

/// Append `cfg` as a JSON object ({"tech":"ffet",...}) to an open builder.
void append_config_json(JsonBuilder& j, const FlowConfig& cfg);

/// One compact JSON object for `cfg`; serializing the same config twice
/// yields identical bytes (to_chars doubles, fixed field order).
std::string config_to_json(const FlowConfig& cfg);

/// A list of configs as a compact JSON array — the payload of a service
/// sweep submission.
std::string configs_to_json(const std::vector<FlowConfig>& cfgs);

}  // namespace ffet::flow
