#include "flow/flow.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <map>
#include <mutex>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/stat.h>
#include <unistd.h>
#define FFET_FLOW_HAVE_UNISTD 1
#endif

#include "flow/report_json.h"
#include "obs/obs.h"

#include "io/def.h"
#include "liberty/characterize.h"
#include "netlist/sim.h"
#include "opt/eco.h"
#include "pnr/floorplan.h"
#include "pnr/drc.h"
#include "pnr/powerplan.h"
#include "riscv/encode.h"
#include "riscv/harness.h"
#include "riscv/rv32.h"
#include "runtime/thread_pool.h"

namespace ffet::flow {

std::string FlowConfig::label() const {
  std::ostringstream os;
  os << (tech_kind == tech::TechKind::Cfet4T ? "CFET" : "FFET");
  os << " FM" << front_layers;
  if (tech_kind == tech::TechKind::Ffet3p5T && back_layers > 0) {
    os << "BM" << back_layers;
  }
  if (backside_input_fraction > 0) {
    stdcell::PinConfig pc;
    pc.backside_input_fraction = backside_input_fraction;
    os << " " << pc.label();
  }
  os << " @" << target_freq_ghz << "GHz util=" << utilization;
  // PPA-changing knobs beyond the defaults are appended only when set, so
  // labels of pre-existing configs stay byte-identical (they key the
  // characterization cache and the committed bench baselines).
  if (aspect_ratio != 1.0) os << " ar=" << aspect_ratio;
  if (rv32_registers != 32) os << " regs=" << rv32_registers;
  if (seed != 1) os << " seed=" << seed;
  if (simulate_activity) os << " act=" << activity_cycles;
  if (eco_passes > 0) os << " eco=" << eco_passes;
  return os.str();
}

std::string resolve_ledger_path(const std::string& explicit_path) {
  if (!explicit_path.empty()) return explicit_path;
  const char* env = std::getenv("FFET_LEDGER");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "0") == 0) return {};
  if (std::strcmp(env, "1") == 0) return kDefaultLedgerPath;
  return env;
}

namespace {

/// Re-assign library input-pin sides so the *instance-weighted* backside
/// fraction matches the DoE request.  The library-level error diffusion in
/// build_library is exact over distinct pins, but instance counts weight
/// pins very unevenly (a 32-bit datapath uses thousands of MUX2 pins and
/// two of some corner cell), so the realized density of a netlist can
/// drift far from the request.  This pass walks pins by descending
/// instance weight with an error-diffusion accumulator — deterministic and
/// exact to within the heaviest single pin.
void rebalance_pin_sides(stdcell::Library& lib, const netlist::Netlist& nl,
                         double backside_fraction) {
  struct PinUse {
    stdcell::CellType* cell;
    std::size_t pin;
    long uses;
  };
  std::map<std::pair<const stdcell::CellType*, std::size_t>, long> counts;
  for (netlist::InstId i = 0; i < nl.num_instances(); ++i) {
    const netlist::Instance& inst = nl.instance(i);
    if (inst.type->physical_only()) continue;
    const auto pins = nl.pin_nets(i);
    for (std::size_t p = 0; p < pins.size(); ++p) {
      if (pins[p] == netlist::kNoNet) continue;
      if (inst.type->pins()[p].dir != stdcell::PinDir::Input) continue;
      counts[{inst.type, p}] += 1;
    }
  }
  std::vector<PinUse> pins;
  for (const auto& cell : lib.cells()) {
    if (cell->physical_only() ||
        cell->function() == stdcell::Function::ClkBuf) {
      continue;
    }
    for (std::size_t p = 0; p < cell->pins().size(); ++p) {
      if (cell->pins()[p].dir != stdcell::PinDir::Input) continue;
      const auto it = counts.find({cell.get(), p});
      pins.push_back({cell.get(), p, it == counts.end() ? 0 : it->second});
    }
  }
  std::sort(pins.begin(), pins.end(), [](const PinUse& a, const PinUse& b) {
    if (a.uses != b.uses) return a.uses > b.uses;
    if (a.cell->name() != b.cell->name()) return a.cell->name() < b.cell->name();
    return a.pin < b.pin;
  });
  long total = 0;
  for (const PinUse& p : pins) total += p.uses;
  const double target = backside_fraction * static_cast<double>(total);
  double assigned = 0.0;
  double debt = 0.0;
  for (const PinUse& p : pins) {
    stdcell::CellPin& pin = p.cell->mutable_pins()[p.pin];
    // Greedy error diffusion on instance weight.
    debt += backside_fraction * static_cast<double>(p.uses);
    if (assigned + static_cast<double>(p.uses) / 2.0 <= target &&
        debt >= static_cast<double>(p.uses) / 2.0) {
      pin.side = stdcell::PinSide::Back;
      assigned += static_cast<double>(p.uses);
      debt -= static_cast<double>(p.uses);
    } else {
      pin.side = stdcell::PinSide::Front;
    }
  }
}

}  // namespace

std::unique_ptr<DesignContext> prepare_design(const FlowConfig& config) {
  tech::Technology tech = config.tech_kind == tech::TechKind::Cfet4T
                              ? tech::make_cfet_4t()
                              : tech::make_ffet_3p5t();
  const int back = config.tech_kind == tech::TechKind::Cfet4T
                       ? 12  // CFET backside layers are PDN-only anyway
                       : config.back_layers;
  tech = tech.with_routing_limit(config.front_layers, back);

  stdcell::PinConfig pc;
  pc.backside_input_fraction = config.backside_input_fraction;

  // The library must outlive the netlist and hold a stable Technology
  // pointer, so the context owns both; library points at ctx.tech after
  // construction below.
  auto ctx_tech = std::make_unique<tech::Technology>(std::move(tech));
  auto lib = std::make_unique<stdcell::Library>(
      stdcell::build_library(*ctx_tech, pc));
  liberty::characterize_library(*lib);

  riscv::Rv32Options rv;
  rv.num_registers = config.rv32_registers;
  netlist::Netlist nl = riscv::build_rv32_core(*lib, rv);

  auto ctx = std::make_unique<DesignContext>(
      config, std::move(ctx_tech), std::move(lib), std::move(nl));
  if (config.backside_input_fraction > 0.0) {
    rebalance_pin_sides(*ctx->library, ctx->netlist,
                        config.backside_input_fraction);
  }
  // Realized fraction, instance-weighted (what the router actually sees).
  {
    long total = 0, back = 0;
    const netlist::Netlist& cnl = ctx->netlist;
    for (netlist::InstId i = 0; i < cnl.num_instances(); ++i) {
      const netlist::Instance& inst = cnl.instance(i);
      if (inst.type->physical_only()) continue;
      const auto pnets = cnl.pin_nets(i);
      for (std::size_t p = 0; p < pnets.size(); ++p) {
        if (pnets[p] == netlist::kNoNet) continue;
        const auto& pin = inst.type->pins()[p];
        if (pin.dir != stdcell::PinDir::Input) continue;
        ++total;
        if (pin.side == stdcell::PinSide::Back) ++back;
      }
    }
    ctx->realized_backside_pin_fraction =
        total ? static_cast<double>(back) / static_cast<double>(total) : 0.0;
  }

  synth::SynthOptions so;
  so.target_freq_ghz = config.target_freq_ghz;
  ctx->synth = synth::size_for_frequency(ctx->netlist, so);
  return ctx;
}

namespace {

/// A small benchmark workload (checksum loop with loads/stores/branches)
/// used to extract realistic toggle rates.
std::vector<std::uint32_t> activity_program() {
  namespace e = riscv::enc;
  return {
      /* 0x00 */ e::addi(1, 0, 0),        // sum
      /* 0x04 */ e::addi(2, 0, 64),       // i = 64
      /* 0x08 */ e::addi(3, 0, 0x100),    // base
      /* 0x0c */ e::lw(4, 3, 0),          // loop: x4 = mem[base]
      /* 0x10 */ e::xor_(1, 1, 4),
      /* 0x14 */ e::slli(4, 4, 1),
      /* 0x18 */ e::add(1, 1, 4),
      /* 0x1c */ e::sw(1, 3, 4),
      /* 0x20 */ e::addi(3, 3, 4),
      /* 0x24 */ e::addi(2, 2, -1),
      /* 0x28 */ e::bne(2, 0, -28),
      /* 0x2c */ e::jal(0, -44),          // restart
  };
}

/// RAII wall/CPU timer for one flow stage: opens a "flow.<name>" trace
/// span and appends a StageTiming to the result on destruction.  The
/// timings themselves are always collected (two clock reads per stage);
/// the span and the per-stage histogram are gated on obs state, and the
/// per-stage RSS delta on the resource probe (zero syscalls when off).
class StageClock {
 public:
  StageClock(FlowResult& res, const char* name)
      : res_(res), name_(name), span_("flow.", name),
        resource_on_(obs::resource_enabled()),
        wall0_(std::chrono::steady_clock::now()),
        cpu0_(obs::thread_cpu_ms()),
        rss0_kb_(resource_on_ ? obs::sample_current_rss_kb() : 0) {}

  StageClock(const StageClock&) = delete;
  StageClock& operator=(const StageClock&) = delete;

  ~StageClock() {
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - wall0_)
                               .count();
    const double cpu_ms = obs::thread_cpu_ms() - cpu0_;
    const long long rss_delta_kb =
        resource_on_ ? obs::sample_current_rss_kb() - rss0_kb_ : 0;
    res_.stage_times.push_back({name_, wall_ms, cpu_ms, rss_delta_kb});
    if (obs::metrics_enabled()) {
      obs::histogram(std::string("flow.stage.") + name_ + ".ms")
          .observe(wall_ms);
    }
    if (obs::verbose()) {
      if (resource_on_) {
        std::printf("  [stage] %s: %.1f ms wall / %.1f ms cpu, rss %+lld kB\n",
                    name_, wall_ms, cpu_ms, rss_delta_kb);
      } else {
        std::printf("  [stage] %s: %.1f ms wall / %.1f ms cpu\n", name_,
                    wall_ms, cpu_ms);
      }
    }
  }

 private:
  FlowResult& res_;
  const char* name_;
  obs::TraceScope span_;
  bool resource_on_;
  std::chrono::steady_clock::time_point wall0_;
  double cpu0_;
  long long rss0_kb_;
};

/// Append one flow-report line (see flow_report_json) to the sink named by
/// FlowConfig::flow_report_path, or the FFET_FLOW_REPORT environment
/// variable when the config leaves it empty.  obs::append_jsonl_line keeps
/// lines whole across threads *and* processes (O_APPEND + one write) — the
/// serve worker fleet appends to a shared sink from forked workers.
void emit_flow_report(const FlowResult& res) {
  std::string path = res.config.flow_report_path;
  if (path.empty()) {
    if (const char* env = std::getenv("FFET_FLOW_REPORT")) path = env;
  }
  if (path.empty()) return;
  obs::append_jsonl_line(path, flow_report_json(res));
}

std::string host_name() {
#if defined(FFET_FLOW_HAVE_UNISTD)
  char buf[256] = {};
  if (gethostname(buf, sizeof(buf) - 1) == 0 && buf[0] != '\0') return buf;
#endif
  if (const char* h = std::getenv("HOSTNAME")) return h;
  return "unknown";
}

/// Append one "ffet.ledger.v1" line for this flow point to the run ledger
/// (FlowConfig::ledger_path / FFET_LEDGER, see resolve_ledger_path).  Runs
/// strictly after the result is complete — the ledger can record but never
/// influence a flow.  Creates the ledger's parent directory on first use
/// (the default path lives under .ffet_ledger/).  The append is
/// multi-process-safe (O_APPEND, one write): serve workers from a forked
/// fleet share one ledger file.
void emit_ledger(const FlowResult& res, int threads) {
  const std::string path = resolve_ledger_path(res.config.ledger_path);
  if (path.empty()) return;

  std::string line;
  line.reserve(512);
  JsonBuilder j(line);
  j.open_obj();
  j.field("schema", "ffet.ledger.v1");
  j.field("kind", "flow");
  j.field("label", res.config.label());
  j.field("timestamp_s", static_cast<long long>(std::time(nullptr)));
  j.field("host", host_name());
  j.field("threads", threads);
  j.field("valid", res.valid());
  j.open_nested("metrics");
  j.field("achieved_freq_ghz", res.achieved_freq_ghz);
  j.field("power_uw", res.power_uw);
  j.field("wirelength_um",
          res.wirelength_front_um + res.wirelength_back_um);
  j.field("drv", static_cast<long long>(res.drv));
  double wall_ms = 0.0;
  for (const StageTiming& st : res.stage_times) wall_ms += st.wall_ms;
  j.field("runtime_ms", wall_ms);
  if (res.resource.sampled) {
    j.field("peak_rss_kb", res.resource.peak_rss_kb);
    j.field("rc_nodes", res.resource.rc_nodes);
    j.field("netlist_cells", res.resource.netlist_cells);
  }
  j.close_obj();
  j.close_obj();

  obs::append_jsonl_line(path, line);
}

}  // namespace

FlowResult run_physical(const DesignContext& ctx, const FlowConfig& config) {
  obs::init_from_env();
  FFET_TRACE_SCOPE("flow.point");
  const auto point0 = std::chrono::steady_clock::now();
  FlowResult res;
  res.config = config;
  const int threads = runtime::resolve_threads(config.threads);
  // One probe decision per point: every stage delta and the final sample
  // agree, even if set_resource() flips concurrently.
  const bool resource_on = obs::resource_enabled();
  res.resource.sampled = resource_on;

  // Work on a private copy: taps, CTS buffers and placement are per-run.
  netlist::Netlist nl = ctx.netlist;

  // --- floorplan -------------------------------------------------------------
  pnr::FloorplanOptions fo;
  fo.target_utilization = config.utilization;
  fo.aspect_ratio = config.aspect_ratio;
  const pnr::Floorplan fp = [&] {
    StageClock clk(res, "floorplan");
    return pnr::make_floorplan(nl, ctx.tech(), fo);
  }();
  res.core_area_um2 = fp.core_area_um2();
  res.core_width_um = geom::to_um(fp.core.width());
  res.core_height_um = geom::to_um(fp.core.height());
  res.utilization = fp.achieved_utilization;

  // --- powerplan ---------------------------------------------------------------
  const pnr::PowerPlan pp = [&] {
    StageClock clk(res, "powerplan");
    return pnr::build_power_plan(nl, fp, *ctx.library);
  }();
  res.num_tap_cells = static_cast<int>(pp.tap_cells.size());

  // --- placement ----------------------------------------------------------------
  pnr::PlacementOptions po;
  po.seed = config.seed;
  const pnr::PlacementResult pres = [&] {
    StageClock clk(res, "placement");
    return pnr::place(nl, fp, pp, po);
  }();
  res.placement_legal = pres.legal;
  res.placement_violations = pres.violations;
  res.hpwl_um = pres.hpwl_um;
  res.place_mean_displacement_um = pres.mean_displacement_um;
  res.place_max_displacement_um = pres.max_displacement_um;
  // Independent signoff check of what the placer claims.
  {
    StageClock clk(res, "placement_drc");
    res.placement_drc =
        static_cast<int>(pnr::check_placement(nl, fp, pp).violations.size());
  }

  // --- CTS -----------------------------------------------------------------------
  const pnr::CtsResult cts = [&] {
    StageClock clk(res, "cts");
    return pnr::build_clock_tree(nl, fp);
  }();
  res.clock_skew_ps = cts.skew_ps;
  res.clock_latency_ps = cts.mean_latency_ps;
  res.clock_buffers = cts.num_buffers;

  // Post-CTS hold fixing: pad short paths against the tree's skew before
  // routing so the post-route hold check closes.
  res.hold_buffers = [&] {
    StageClock clk(res, "hold_fix");
    return synth::fix_hold(nl, cts.sink_latency_ps);
  }();

  // --- routing (Algorithm 1) ------------------------------------------------------
  pnr::RouteOptions ro;
  ro.threads = threads;
  pnr::RouteResult routes = [&] {
    StageClock clk(res, "route");
    return pnr::route_design(nl, fp, ro);
  }();
  res.route_valid = routes.valid;
  res.drv = routes.drv_estimate;
  res.route_passes = routes.rrr_passes;
  res.route_ripups = routes.ripups_total;
  res.route_region_ripups = routes.region_ripups_total;
  res.route_overflow = routes.overflow_total;
  res.route_settled_nodes = routes.settled_nodes;
  res.route_window_expansions = routes.window_expansions;
  res.route_steiner_subnets = routes.steiner_subnets;
  res.route_fastpath = routes.fastpath_routes;
  res.drv_wire = routes.drv_wire;
  res.drv_pin_access = routes.drv_pin_access;
  res.wirelength_front_um = routes.wirelength_front_um;
  res.wirelength_back_um = routes.wirelength_back_um;
  res.num_instances = nl.num_instances();

  // --- two DEFs -> merge -> dual-sided RC extraction -------------------------------
  const io::Def merged = [&] {
    StageClock clk(res, "def_merge");
    const io::Def front = io::build_def(nl, routes, tech::Side::Front);
    const io::Def back = io::build_def(nl, routes, tech::Side::Back);
    return io::merge_defs(front, back);
  }();
  extract::RcNetlist rc = [&] {
    StageClock clk(res, "extract");
    return extract::extract_rc(merged, nl, ctx.tech(), threads);
  }();

  // Structure-size accounting (the resource section's "allocation
  // counters"): how big the per-point data plane actually got.  Re-run
  // after eco_signoff when the ECO reshapes the netlist/routes.
  const auto record_structure_sizes = [&](const io::Def& def,
                                          const extract::RcNetlist& rcn) {
    if (!resource_on) return;
    const long long rc_nodes = rcn.tree_node_count();
    long long wires = 0;
    for (const io::DefNet& n : def.nets) {
      wires += static_cast<long long>(n.wires.size());
    }
    res.resource.netlist_cells = nl.num_instances();
    res.resource.netlist_nets = nl.num_nets();
    res.resource.rc_nodes = rc_nodes;
    res.resource.route_grid_nodes =
        static_cast<long long>(routes.gcols) * routes.grows;
    res.resource.def_components = static_cast<long long>(def.components.size());
    res.resource.def_wires = wires;
  };
  record_structure_sizes(merged, rc);

  // --- STA + power -------------------------------------------------------------------
  sta::StaOptions so;
  so.clock_skew_ps = cts.skew_ps;
  so.pi_reference_latency_ps = cts.mean_latency_ps;
  so.threads = threads;
  sta::Sta sta(&nl, &rc, so);
  const sta::TimingReport timing = [&] {
    StageClock clk(res, "sta_timing");
    return sta.analyze_timing(&cts.sink_latency_ps);
  }();
  res.achieved_freq_ghz = timing.achieved_freq_ghz;
  res.critical_path_ps = timing.critical_path_ps;
  if (obs::verbose()) {
    const auto worst = sta.worst_paths(1, &cts.sink_latency_ps);
    if (!worst.empty()) {
      const std::string ep = sta.endpoint_name(worst[0]);
      std::printf("  [sta] signoff: worst_slack=%+.2f ps (%.3f GHz) "
                  "endpoint=%s side_crossings=%d\n",
                  timing.slack_ps(1000.0 / config.target_freq_ghz),
                  timing.achieved_freq_ghz, ep.c_str(),
                  sta.path_side_crossings(worst[0]));
    }
  }
  const sta::HoldReport hold = [&] {
    StageClock clk(res, "sta_hold");
    return sta.analyze_hold(&cts.sink_latency_ps);
  }();
  res.hold_slack_ps = hold.worst_slack_ps;
  res.hold_violations = hold.violations;

  std::vector<double> toggles;
  const std::vector<double>* toggles_ptr = nullptr;
  if (config.simulate_activity) {
    StageClock clk(res, "activity_sim");
    riscv::Rv32Harness harness_like(&nl);  // drives clk/rst and memories
    harness_like.load_program(activity_program());
    harness_like.reset();
    harness_like.sim().reset_activity();
    harness_like.step(config.activity_cycles);
    toggles.resize(static_cast<std::size_t>(nl.num_nets()), 0.0);
    for (int n = 0; n < nl.num_nets(); ++n) {
      toggles[static_cast<std::size_t>(n)] =
          nl.net(n).is_clock ? 2.0 : harness_like.sim().toggle_rate(n);
    }
    toggles_ptr = &toggles;
  }

  const sta::PowerReport power = [&] {
    StageClock clk(res, "power");
    return sta.analyze_power(res.achieved_freq_ghz, toggles_ptr);
  }();
  res.power_uw = power.total_uw();
  res.switching_uw = power.switching_uw;
  res.internal_uw = power.internal_uw;
  res.leakage_uw = power.leakage_uw;
  res.efficiency_ghz_per_mw = power.efficiency_ghz_per_mw();
  res.ir_drop_mv = pp.estimate_ir_drop_mv(res.power_uw);

  // --- post-route ECO timing closure (src/opt) -------------------------------------
  // Optional and off by default: with eco_passes == 0 nothing below runs
  // and every result above is exactly what the flow always produced.
  if (config.eco_passes > 0 && res.valid()) {
    res.eco_pre_freq_ghz = res.achieved_freq_ghz;
    res.eco_pre_power_uw = res.power_uw;

    opt::EcoOptions eo;
    eo.passes = config.eco_passes;
    eo.threads = threads;
    eo.sta = so;
    eo.route = ro;
    const opt::EcoReport eco = [&] {
      StageClock clk(res, "eco");
      return opt::run_eco(nl, fp, pp, routes, rc, cts.sink_latency_ps, eo);
    }();
    res.eco_passes_run = eco.passes_run;
    res.eco_attempted = eco.attempted;
    res.eco_accepted = eco.accepted;
    res.eco_reverted = eco.reverted;
    res.eco_upsized = eco.upsized;
    res.eco_downsized = eco.downsized;
    res.eco_buffers = eco.buffers;
    res.eco_pin_flips = eco.pin_flips;
    res.eco_sta_speedup = eco.sta_speedup();
    if (obs::verbose()) {
      std::printf("  [eco] passes=%d accepted=%d/%d (reverted %d)\n",
                  eco.passes_run, eco.accepted, eco.attempted, eco.reverted);
    }

    // Full re-signoff on the optimized design: fresh merge + extraction +
    // STA (the incremental state is bit-identical by construction, but the
    // reported PPA must come from the same full pipeline as every other
    // flow result).
    {
      StageClock clk(res, "eco_signoff");
      const io::Def eco_front = io::build_def(nl, routes, tech::Side::Front);
      const io::Def eco_back = io::build_def(nl, routes, tech::Side::Back);
      const io::Def eco_merged = io::merge_defs(eco_front, eco_back);
      rc = extract::extract_rc(eco_merged, nl, ctx.tech(), threads);
      sta::Sta eco_sta(&nl, &rc, so);
      const sta::TimingReport eco_timing =
          eco_sta.analyze_timing(&cts.sink_latency_ps);
      res.achieved_freq_ghz = eco_timing.achieved_freq_ghz;
      res.critical_path_ps = eco_timing.critical_path_ps;
      const sta::HoldReport eco_hold =
          eco_sta.analyze_hold(&cts.sink_latency_ps);
      res.hold_slack_ps = eco_hold.worst_slack_ps;
      res.hold_violations = eco_hold.violations;
      if (obs::verbose()) {
        const auto worst = eco_sta.worst_paths(1, &cts.sink_latency_ps);
        if (!worst.empty()) {
          const std::string ep = eco_sta.endpoint_name(worst[0]);
          std::printf("  [sta] eco_signoff: worst_slack=%+.2f ps (%.3f GHz) "
                      "endpoint=%s side_crossings=%d\n",
                      eco_timing.slack_ps(1000.0 / config.target_freq_ghz),
                      eco_timing.achieved_freq_ghz, ep.c_str(),
                      eco_sta.path_side_crossings(worst[0]));
        }
      }

      if (config.simulate_activity) {
        // ECO buffers add nets: re-derive toggle rates on the final netlist.
        riscv::Rv32Harness harness_like(&nl);
        harness_like.load_program(activity_program());
        harness_like.reset();
        harness_like.sim().reset_activity();
        harness_like.step(config.activity_cycles);
        toggles.assign(static_cast<std::size_t>(nl.num_nets()), 0.0);
        for (int n = 0; n < nl.num_nets(); ++n) {
          toggles[static_cast<std::size_t>(n)] =
              nl.net(n).is_clock ? 2.0 : harness_like.sim().toggle_rate(n);
        }
        toggles_ptr = &toggles;
      }
      const sta::PowerReport eco_power =
          eco_sta.analyze_power(res.achieved_freq_ghz, toggles_ptr);
      res.power_uw = eco_power.total_uw();
      res.switching_uw = eco_power.switching_uw;
      res.internal_uw = eco_power.internal_uw;
      res.leakage_uw = eco_power.leakage_uw;
      res.efficiency_ghz_per_mw = eco_power.efficiency_ghz_per_mw();
      res.ir_drop_mv = pp.estimate_ir_drop_mv(res.power_uw);
      // Iso-frequency power: the optimized design clocked at the pre-ECO
      // frequency (the "faster at ~equal power" contract's denominator).
      res.eco_iso_power_uw =
          eco_sta.analyze_power(res.eco_pre_freq_ghz, toggles_ptr).total_uw();

      // Routes, wirelength and netlist shape moved with the accepted
      // transforms.
      res.route_valid = routes.valid;
      res.drv = routes.drv_estimate;
      res.drv_wire = routes.drv_wire;
      res.drv_pin_access = routes.drv_pin_access;
      res.wirelength_front_um = routes.wirelength_front_um;
      res.wirelength_back_um = routes.wirelength_back_um;
      res.hpwl_um = pnr::compute_hpwl_um(nl);
      res.num_instances = nl.num_instances();
      record_structure_sizes(eco_merged, rc);
    }
    res.eco_post_freq_ghz = res.achieved_freq_ghz;
    res.eco_post_power_uw = res.power_uw;
  }

  if (!res.placement_legal) {
    res.invalid_reason =
        "placement: " +
        (pres.message.empty()
             ? std::to_string(pres.violations) + " violations"
             : pres.message);
  } else if (!res.route_valid) {
    std::ostringstream os;
    os << "route: drv=" << res.drv << " (wire=" << res.drv_wire
       << ", pin_access=" << res.drv_pin_access << ") after "
       << res.route_passes << " RRR passes";
    res.invalid_reason = os.str();
  }

  // Final resource sample for the point: peak RSS is process-wide (a
  // high-water mark), current RSS and faults are where this point left the
  // process.  Surfaced as gauges alongside the report/ledger fields.
  if (resource_on) {
    const obs::ResourceSample rs = obs::sample_resources();
    res.resource.peak_rss_kb = rs.peak_rss_kb;
    res.resource.current_rss_kb = rs.current_rss_kb;
    res.resource.minor_faults = rs.minor_faults;
    res.resource.major_faults = rs.major_faults;
    FFET_METRIC_GAUGE_MAX("resource.peak_rss_kb", rs.peak_rss_kb);
    FFET_METRIC_GAUGE_SET("resource.current_rss_kb", rs.current_rss_kb);
    FFET_METRIC_GAUGE_SET("resource.minor_faults", rs.minor_faults);
    FFET_METRIC_GAUGE_SET("resource.major_faults", rs.major_faults);
    FFET_METRIC_GAUGE_MAX("resource.netlist_cells",
                          res.resource.netlist_cells);
    FFET_METRIC_GAUGE_MAX("resource.netlist_nets", res.resource.netlist_nets);
    FFET_METRIC_GAUGE_MAX("resource.rc_nodes", res.resource.rc_nodes);
    FFET_METRIC_GAUGE_MAX("resource.route_grid_nodes",
                          res.resource.route_grid_nodes);
    FFET_METRIC_GAUGE_MAX("resource.def_wires", res.resource.def_wires);
    if (obs::verbose()) {
      std::printf("  [resource] peak_rss=%lld kB current=%lld kB "
                  "faults=%lld/%lld cells=%lld nets=%lld rc_nodes=%lld\n",
                  rs.peak_rss_kb, rs.current_rss_kb, rs.minor_faults,
                  rs.major_faults, res.resource.netlist_cells,
                  res.resource.netlist_nets, res.resource.rc_nodes);
    }
  }

  const double point_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - point0)
                              .count();
  FFET_METRIC_OBSERVE("flow.point.ms", point_ms);
  FFET_METRIC_ADD("flow.points", 1);
  emit_flow_report(res);
  emit_ledger(res, threads);
  return res;
}

FlowResult run_flow(const FlowConfig& config) {
  if (!config.trace_path.empty()) obs::set_tracing(true);
  const auto ctx = prepare_design(config);
  FlowResult res = run_physical(*ctx, config);
  if (!config.trace_path.empty()) obs::dump_trace(config.trace_path);
  return res;
}

namespace {

/// When the sweep level owns the parallelism, points that did not ask for
/// intra-flow threads explicitly (threads == 0 -> auto) are pinned to 1 so
/// k sweep workers do not each spawn k stage helpers.
FlowConfig pin_point_threads(FlowConfig cfg, int sweep_threads) {
  if (sweep_threads > 1 && cfg.threads == 0) cfg.threads = 1;
  return cfg;
}

}  // namespace

std::vector<FlowResult> run_sweep(const DesignContext& ctx,
                                  const std::vector<FlowConfig>& configs,
                                  int threads) {
  const int k = runtime::resolve_threads(threads);
  std::vector<FlowResult> out(configs.size());
  runtime::parallel_for(
      configs.size(),
      [&](std::size_t i) {
        out[i] = run_physical(ctx, pin_point_threads(configs[i], k));
      },
      k, 1);
  return out;
}

std::vector<FlowResult> run_sweep(const std::vector<FlowConfig>& configs,
                                  int threads) {
  const int k = runtime::resolve_threads(threads);
  std::vector<FlowResult> out(configs.size());
  runtime::parallel_for(
      configs.size(),
      [&](std::size_t i) {
        const FlowConfig cfg = pin_point_threads(configs[i], k);
        const auto ctx = prepare_design(cfg);
        out[i] = run_physical(*ctx, cfg);
      },
      k, 1);
  return out;
}

std::optional<double> find_max_utilization(const DesignContext& ctx,
                                           FlowConfig config, double lo,
                                           double hi, double tol) {
  auto valid_at = [&](double util) {
    config.utilization = util;
    return run_physical(ctx, config).valid();
  };
  if (!valid_at(lo)) return std::nullopt;
  if (valid_at(hi)) return hi;
  // Invariant: lo valid, hi invalid.
  while (hi - lo > tol) {
    const double mid = 0.5 * (lo + hi);
    (valid_at(mid) ? lo : hi) = mid;
  }
  return lo;
}

}  // namespace ffet::flow
