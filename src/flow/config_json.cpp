#include "flow/config_json.h"

#include <type_traits>
#include <utility>

#include "flow/report_json.h"

namespace ffet::flow {

namespace {

// --- compile-time member census ---------------------------------------------
// FlowConfig is an aggregate, so the number of data members equals the
// largest N for which it brace-initializes from N distinct arguments.
// `Probe` converts to anything; count_members() finds the maximum N by
// recursion over the index sequence.

struct Probe {
  template <class T>
  operator T() const;
};

template <class T, class... Args>
concept BraceConstructible = requires { T{std::declval<Args>()...}; };

template <class T, int... I>
constexpr bool constructible_with(std::integer_sequence<int, I...>) {
  return BraceConstructible<T, decltype((void(I), Probe{}))...>;
}

template <class T, int N = 0>
constexpr int count_members() {
  if constexpr (constructible_with<T>(
                    std::make_integer_sequence<int, N + 1>{})) {
    return count_members<T, N + 1>();
  } else {
    return N;
  }
}

static_assert(std::is_aggregate_v<FlowConfig>,
              "the member census needs FlowConfig to stay an aggregate");
static_assert(count_members<FlowConfig>() == kFlowConfigFieldCount,
              "FlowConfig gained or lost a field: update config_to_json, "
              "serve/config_codec config_from_json, FlowConfig::label() "
              "(if the field changes PPA), the FlowConfigJson tests, and "
              "kFlowConfigFieldCount in config_json.h");

}  // namespace

void append_config_json(JsonBuilder& j, const FlowConfig& cfg) {
  j.open_obj();
  // 16 fields, one per FlowConfig member, in declaration order.
  j.field("tech", cfg.tech_kind == tech::TechKind::Cfet4T ? "cfet" : "ffet");
  j.field("front_layers", cfg.front_layers);
  j.field("back_layers", cfg.back_layers);
  j.field("backside_input_fraction", cfg.backside_input_fraction);
  j.field("target_freq_ghz", cfg.target_freq_ghz);
  j.field("utilization", cfg.utilization);
  j.field("aspect_ratio", cfg.aspect_ratio);
  j.field("rv32_registers", cfg.rv32_registers);
  j.field("seed", cfg.seed);
  j.field("simulate_activity", cfg.simulate_activity);
  j.field("activity_cycles", cfg.activity_cycles);
  j.field("eco_passes", cfg.eco_passes);
  j.field("threads", cfg.threads);
  j.field("trace_path", cfg.trace_path);
  j.field("flow_report_path", cfg.flow_report_path);
  j.field("ledger_path", cfg.ledger_path);
  j.close_obj();
}

std::string config_to_json(const FlowConfig& cfg) {
  std::string out;
  out.reserve(256);
  JsonBuilder j(out);
  append_config_json(j, cfg);
  return out;
}

std::string configs_to_json(const std::vector<FlowConfig>& cfgs) {
  std::string out;
  out.reserve(64 + 256 * cfgs.size());
  out += '[';
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    if (i) out += ',';
    JsonBuilder j(out);
    append_config_json(j, cfgs[i]);
  }
  out += ']';
  return out;
}

}  // namespace ffet::flow
