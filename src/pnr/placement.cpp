#include "pnr/placement.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <random>
#include <vector>

#include "geom/grid.h"
#include "obs/obs.h"

namespace ffet::pnr {

using netlist::InstId;
using netlist::Netlist;

namespace {

/// One free span of a row between blockages.  Placements punch holes into
/// the span, so it keeps a sorted list of free intervals (gap list) — a
/// forward-only cursor would permanently waste the left part of rows that
/// receive their first cell late.
struct Segment {
  Nm lo = 0;
  Nm hi = 0;
  std::vector<geom::Interval> free_list;  ///< sorted, non-overlapping

  Nm largest_free() const {
    Nm best = 0;
    for (const auto& iv : free_list) best = std::max(best, iv.length());
    return best;
  }

  /// Best x for a cell of width `w` wanting `desired`; nullopt if no gap
  /// fits.  Returns the x minimizing |x - desired|.
  std::optional<Nm> best_position(Nm w, Nm desired, Nm site) const {
    std::optional<Nm> best;
    Nm best_d = std::numeric_limits<Nm>::max();
    for (const auto& iv : free_list) {
      if (iv.length() < w) continue;
      const Nm lo_x = geom::snap_up(iv.lo, site);
      const Nm hi_x = geom::snap_down(iv.hi - w, site);
      if (lo_x > hi_x) continue;
      const Nm x = std::clamp(geom::snap_down(desired, site), lo_x, hi_x);
      const Nm d = std::abs(x - desired);
      if (d < best_d) {
        best_d = d;
        best = x;
      }
    }
    return best;
  }

  /// Return [x, x+w) (clamped to the segment span) to the free list,
  /// merging with adjacent free intervals — the inverse of occupy().
  void free_span(Nm x, Nm w) {
    Nm a = std::max(x, lo);
    Nm b = std::min(x + w, hi);
    if (a >= b) return;
    std::size_t i = 0;
    while (i < free_list.size() && free_list[i].hi < a) ++i;
    while (i < free_list.size() && free_list[i].lo <= b) {
      a = std::min(a, free_list[i].lo);
      b = std::max(b, free_list[i].hi);
      free_list.erase(free_list.begin() + static_cast<long>(i));
    }
    free_list.insert(free_list.begin() + static_cast<long>(i), {a, b});
  }

  /// Remove [x, x+w) from the free list.
  void occupy(Nm x, Nm w) {
    for (std::size_t i = 0; i < free_list.size(); ++i) {
      geom::Interval& iv = free_list[i];
      if (x < iv.lo || x + w > iv.hi) continue;
      const geom::Interval right{x + w, iv.hi};
      iv.hi = x;
      std::vector<geom::Interval> updated;
      if (iv.length() <= 0) {
        free_list.erase(free_list.begin() + static_cast<long>(i));
        if (right.length() > 0) {
          free_list.insert(free_list.begin() + static_cast<long>(i), right);
        }
      } else if (right.length() > 0) {
        free_list.insert(free_list.begin() + static_cast<long>(i) + 1, right);
      }
      return;
    }
  }
};

struct RowState {
  Nm y = 0;
  std::vector<Segment> segments;
};

std::vector<RowState> build_row_segments(const Floorplan& fp,
                                         const PowerPlan& pp) {
  std::vector<RowState> rows;
  rows.reserve(fp.rows.size());
  for (const Row& r : fp.rows) {
    RowState rs;
    rs.y = r.y;
    // Collect blockage intervals intersecting this row.
    std::vector<geom::Interval> blocked;
    for (const geom::Rect& b : pp.blockages) {
      if (b.lo.y < r.y + fp.row_height && b.hi.y > r.y) {
        blocked.push_back({b.lo.x, b.hi.x});
      }
    }
    std::sort(blocked.begin(), blocked.end());
    Nm cur = r.x.lo;
    auto add_segment = [&rs](Nm lo, Nm hi) {
      Segment seg;
      seg.lo = lo;
      seg.hi = hi;
      seg.free_list.push_back({lo, hi});
      rs.segments.push_back(std::move(seg));
    };
    for (const geom::Interval& b : blocked) {
      if (b.lo > cur) add_segment(cur, b.lo);
      cur = std::max(cur, b.hi);
    }
    if (cur < r.x.hi) add_segment(cur, r.x.hi);
    rows.push_back(std::move(rs));
  }
  return rows;
}

/// Place IO ports evenly on the core boundary: inputs on the left/top
/// edges, outputs on the right/bottom — a simple deterministic IO plan.
void plan_ios(Netlist& nl, const Floorplan& fp) {
  std::vector<netlist::PortId> ins, outs;
  for (int p = 0; p < nl.num_ports(); ++p) {
    (nl.port(p).is_input ? ins : outs).push_back(p);
  }
  auto spread = [&](const std::vector<netlist::PortId>& ports, bool left) {
    const Nm perim = fp.core.height() + fp.core.width();
    const std::size_t n = std::max<std::size_t>(1, ports.size());
    for (std::size_t i = 0; i < ports.size(); ++i) {
      const Nm d = static_cast<Nm>((i + 0.5) / n * perim);
      geom::Point pos;
      if (d < fp.core.height()) {
        pos = {left ? fp.core.lo.x : fp.core.hi.x, fp.core.lo.y + d};
      } else {
        pos = {fp.core.lo.x + (d - fp.core.height()),
               left ? fp.core.hi.y : fp.core.lo.y};
      }
      nl.port(ports[i]).pos = pos;
    }
  };
  spread(ins, /*left=*/true);
  spread(outs, /*left=*/false);
}

}  // namespace

double compute_hpwl_um(const Netlist& nl) {
  double total = 0.0;
  for (const netlist::Net& net : nl.nets()) {
    geom::Nm min_x = std::numeric_limits<geom::Nm>::max();
    geom::Nm max_x = std::numeric_limits<geom::Nm>::min();
    geom::Nm min_y = min_x, max_y = max_x;
    int pins = 0;
    auto absorb = [&](const geom::Point& p) {
      min_x = std::min(min_x, p.x);
      max_x = std::max(max_x, p.x);
      min_y = std::min(min_y, p.y);
      max_y = std::max(max_y, p.y);
      ++pins;
    };
    if (net.driver.inst != netlist::kNoInst) {
      absorb(nl.pin_position(net.driver));
    }
    for (const netlist::PinRef& s : net.sinks) absorb(nl.pin_position(s));
    if (net.port >= 0) absorb(nl.port(net.port).pos);
    if (pins >= 2) {
      total += geom::to_um(max_x - min_x) + geom::to_um(max_y - min_y);
    }
  }
  return total;
}

PlacementResult place(Netlist& nl, const Floorplan& fp, const PowerPlan& pp,
                      const PlacementOptions& options) {
  FFET_TRACE_SCOPE("place.design");
  PlacementResult res;

  plan_ios(nl, fp);

  std::vector<InstId> movable;
  double movable_area = 0.0;
  for (int i = 0; i < nl.num_instances(); ++i) {
    if (nl.instance(i).fixed) continue;
    movable.push_back(i);
    movable_area += nl.instance(i).type->area_um2();
  }

  const double free_area =
      fp.core.area_um2() * (1.0 - pp.blocked_site_fraction);
  res.density = free_area > 0 ? movable_area / free_area : 1e9;

  // --- global placement ---------------------------------------------------
  std::mt19937 rng(options.seed);
  std::uniform_real_distribution<double> ux(0.0, 1.0);
  for (InstId id : movable) {
    netlist::Instance& inst = nl.instance(id);
    inst.pos = {static_cast<Nm>(ux(rng) * (fp.core.width() -
                                           inst.type->width())),
                static_cast<Nm>(ux(rng) * (fp.core.height() -
                                           inst.type->height()))};
  }

  // Global placement: alternate connectivity averaging (Jacobi steps on
  // the quadratic wirelength system, IO ports acting as anchors) with an
  // order-preserving sort-and-balance spreading that equalizes density
  // without destroying the relative cell order — the property that keeps
  // locality through legalization.
  auto centroid_pass = [&]() {
    std::vector<geom::Point> desired(
        static_cast<std::size_t>(nl.num_instances()));
    for (InstId id : movable) {
      const netlist::Instance& inst = nl.instance(id);
      double sx = 0, sy = 0;
      int n = 0;
      const auto pin_nets = nl.pin_nets(id);
      for (std::size_t p = 0; p < pin_nets.size(); ++p) {
        const netlist::NetId net_id = pin_nets[p];
        if (net_id == netlist::kNoNet) continue;
        const netlist::Net& net = nl.net(net_id);
        if (net.is_clock) continue;  // the clock net doesn't pull placement
        auto absorb = [&](const netlist::PinRef& ref) {
          if (ref.inst == id || ref.inst == netlist::kNoInst) return;
          const geom::Point q = nl.pin_position(ref);
          sx += static_cast<double>(q.x);
          sy += static_cast<double>(q.y);
          ++n;
        };
        absorb(net.driver);
        for (const netlist::PinRef& s : net.sinks) absorb(s);
        if (net.port >= 0) {
          sx += static_cast<double>(nl.port(net.port).pos.x);
          sy += static_cast<double>(nl.port(net.port).pos.y);
          ++n;
        }
      }
      geom::Point target = inst.pos;
      if (n > 0) {
        target = {static_cast<Nm>(sx / n), static_cast<Nm>(sy / n)};
      }
      const double a = options.pull_strength;
      desired[static_cast<std::size_t>(id)] = {
          static_cast<Nm>(a * target.x + (1 - a) * inst.pos.x),
          static_cast<Nm>(a * target.y + (1 - a) * inst.pos.y)};
    }
    for (InstId id : movable) {
      nl.instance(id).pos = desired[static_cast<std::size_t>(id)];
    }
  };

  // Recursive equal-area bisection spreading: split the cell set at its
  // area-median along the region's longer axis, give each half one
  // geometric half of the region, recurse.  Order is preserved along the
  // split axis at every level, so connectivity structure built by the
  // averaging passes survives while density becomes uniform.
  auto spread_pass = [&]() {
    struct Frame {
      std::vector<InstId> cells;
      geom::Rect region;
    };
    std::vector<Frame> stack;
    stack.push_back({movable, fp.core});
    while (!stack.empty()) {
      Frame f = std::move(stack.back());
      stack.pop_back();
      if (f.cells.empty()) continue;
      const bool split_x = f.region.width() >= f.region.height();
      if (static_cast<int>(f.cells.size()) <= 8 ||
          f.region.width() <= 4 * fp.site_width ||
          f.region.height() <= fp.row_height) {
        // Leaf: scatter by rank along the longer axis.
        std::sort(f.cells.begin(), f.cells.end(), [&](InstId a, InstId b) {
          const auto& pa = nl.instance(a).pos;
          const auto& pb = nl.instance(b).pos;
          if (split_x && pa.x != pb.x) return pa.x < pb.x;
          if (!split_x && pa.y != pb.y) return pa.y < pb.y;
          return a < b;
        });
        for (std::size_t i = 0; i < f.cells.size(); ++i) {
          const double t = (static_cast<double>(i) + 0.5) /
                           static_cast<double>(f.cells.size());
          netlist::Instance& inst = nl.instance(f.cells[i]);
          if (split_x) {
            inst.pos = {f.region.lo.x + static_cast<Nm>(t * f.region.width()),
                        f.region.center().y};
          } else {
            inst.pos = {f.region.center().x,
                        f.region.lo.y + static_cast<Nm>(t * f.region.height())};
          }
        }
        continue;
      }
      std::sort(f.cells.begin(), f.cells.end(), [&](InstId a, InstId b) {
        const auto& pa = nl.instance(a).pos;
        const auto& pb = nl.instance(b).pos;
        if (split_x && pa.x != pb.x) return pa.x < pb.x;
        if (!split_x && pa.y != pb.y) return pa.y < pb.y;
        return a < b;
      });
      double total = 0.0;
      for (InstId id : f.cells) total += nl.instance(id).type->area_um2();
      double acc = 0.0;
      std::size_t cut = 0;
      while (cut < f.cells.size() && acc < total / 2.0) {
        acc += nl.instance(f.cells[cut]).type->area_um2();
        ++cut;
      }
      Frame a, b;
      a.cells.assign(f.cells.begin(), f.cells.begin() + static_cast<long>(cut));
      b.cells.assign(f.cells.begin() + static_cast<long>(cut), f.cells.end());
      if (split_x) {
        const Nm mid = f.region.center().x;
        a.region = {f.region.lo, {mid, f.region.hi.y}};
        b.region = {{mid, f.region.lo.y}, f.region.hi};
      } else {
        const Nm mid = f.region.center().y;
        a.region = {f.region.lo, {f.region.hi.x, mid}};
        b.region = {{f.region.lo.x, mid}, f.region.hi};
      }
      stack.push_back(std::move(a));
      stack.push_back(std::move(b));
    }
  };

  // Phase 1: long averaging from the random start — the quadratic system
  // settles into a (collapsed but correctly *ordered*) solution anchored by
  // the IO ports.  Phase 2: alternate density spreading with short re-pull
  // rounds so clusters stay even without losing the global order.
  {
    FFET_TRACE_SCOPE("place.global");
    for (int i = 0; i < options.iterations; ++i) centroid_pass();
    for (int round = 0; round < 6; ++round) {
      spread_pass();
      centroid_pass();
      centroid_pass();
    }
    spread_pass();  // hand a density-legal picture to the legalizer
  }

  // --- legalization (Tetris) ------------------------------------------------
  FFET_TRACE_SCOPE("place.legalize");
  std::vector<RowState> rows = build_row_segments(fp, pp);

  // Whitespace feasibility: the industrial density ceiling.
  if (res.density > kMaxPlacementDensity) {
    const double excess = movable_area - kMaxPlacementDensity * free_area;
    const double avg =
        movable_area / std::max<std::size_t>(1, movable.size());
    res.violations = std::max(1, static_cast<int>(std::ceil(excess / avg)));
    res.legal = false;
    res.message = "placement density " + std::to_string(res.density) +
                  " exceeds closable limit " +
                  std::to_string(kMaxPlacementDensity);
  }

  // Sort by desired x, then pack greedily into the nearest feasible row.
  std::vector<InstId> order = movable;
  std::sort(order.begin(), order.end(), [&](InstId a, InstId bb) {
    const auto& pa = nl.instance(a).pos;
    const auto& pb = nl.instance(bb).pos;
    if (pa.x != pb.x) return pa.x < pb.x;
    if (pa.y != pb.y) return pa.y < pb.y;
    return a < bb;
  });

  int unplaced = 0;
  // Legalization displacement (global position -> legal slot): the cheap
  // proxy for how hard the density target was to realize.
  double disp_sum_um = 0.0;
  std::size_t disp_n = 0;
  obs::Histogram* disp_hist =
      obs::metrics_enabled() ? &obs::histogram("place.displacement_um")
                             : nullptr;
  for (InstId id : order) {
    netlist::Instance& inst = nl.instance(id);
    const Nm w = inst.type->width();
    const int want_row = std::clamp(
        static_cast<int>(inst.pos.y / fp.row_height), 0,
        fp.num_rows() - 1);
    Nm best_cost = std::numeric_limits<Nm>::max();
    RowState* best_row = nullptr;
    Segment* best_seg = nullptr;
    Nm best_x = 0;
    for (int dr = 0; dr < fp.num_rows(); ++dr) {
      for (int sgn : {1, -1}) {
        const int r = want_row + sgn * dr;
        if (sgn < 0 && dr == 0) continue;
        if (r < 0 || r >= fp.num_rows()) continue;
        const Nm dy = std::abs(rows[static_cast<std::size_t>(r)].y - inst.pos.y);
        if (dy >= best_cost) continue;  // rows are visited near-to-far
        for (Segment& seg :
             rows[static_cast<std::size_t>(r)].segments) {
          const auto x = seg.best_position(w, inst.pos.x, fp.site_width);
          if (!x) continue;
          const Nm cost = std::abs(*x - inst.pos.x) + dy;
          if (cost < best_cost) {
            best_cost = cost;
            best_row = &rows[static_cast<std::size_t>(r)];
            best_seg = &seg;
            best_x = *x;
          }
        }
      }
      // Stop expanding once the row distance alone exceeds the best cost.
      if (best_row &&
          static_cast<Nm>(dr) * fp.row_height > best_cost) {
        break;
      }
    }
    if (!best_row) {
      ++unplaced;
      // Clamp somewhere sane so downstream stages see finite coordinates.
      inst.pos = {std::clamp<Nm>(inst.pos.x, 0,
                                 fp.core.width() - w),
                  std::clamp<Nm>(geom::snap_down(inst.pos.y, fp.row_height),
                                 0, (fp.num_rows() - 1) * fp.row_height)};
      continue;
    }
    const double disp_um = geom::to_um(std::abs(best_x - inst.pos.x) +
                                       std::abs(best_row->y - inst.pos.y));
    disp_sum_um += disp_um;
    ++disp_n;
    res.max_displacement_um = std::max(res.max_displacement_um, disp_um);
    if (disp_hist != nullptr) disp_hist->observe(disp_um);
    inst.pos = {best_x, best_row->y};
    best_seg->occupy(best_x, w);
  }
  res.mean_displacement_um =
      disp_n > 0 ? disp_sum_um / static_cast<double>(disp_n) : 0.0;

  if (unplaced > 0) {
    res.violations = std::max(res.violations, unplaced);
    res.legal = false;
    if (res.message.empty()) {
      res.message = std::to_string(unplaced) + " cells could not be legalized";
    }
  } else if (res.message.empty()) {
    res.legal = true;
    res.message = "legal";
  }

  res.hpwl_um = compute_hpwl_um(nl);
  FFET_METRIC_GAUGE_MAX("place.max_displacement_um", res.max_displacement_um);
  FFET_METRIC_ADD("place.violations", res.violations);
  return res;
}

// --- incremental legalization (ECO support) -----------------------------------

struct IncrementalLegalizer::Impl {
  const Floorplan* fp = nullptr;
  std::vector<RowState> rows;

  /// Row whose y matches pos.y exactly (nullptr when the cell sits off-row,
  /// e.g. a clamped unplaceable one).
  RowState* row_at(Nm y) {
    const int guess =
        std::clamp(static_cast<int>(y / fp->row_height), 0,
                   static_cast<int>(rows.size()) - 1);
    if (rows[static_cast<std::size_t>(guess)].y == y) {
      return &rows[static_cast<std::size_t>(guess)];
    }
    for (RowState& rs : rows) {
      if (rs.y == y) return &rs;
    }
    return nullptr;
  }

  Segment* segment_at(RowState& rs, Nm x, Nm w) {
    for (Segment& seg : rs.segments) {
      if (x >= seg.lo && x + w <= seg.hi) return &seg;
    }
    return nullptr;
  }
};

IncrementalLegalizer::IncrementalLegalizer(const Netlist& nl,
                                           const Floorplan& fp,
                                           const PowerPlan& pp)
    : impl_(std::make_unique<Impl>()) {
  impl_->fp = &fp;
  impl_->rows = build_row_segments(fp, pp);
  for (int i = 0; i < nl.num_instances(); ++i) {
    const netlist::Instance& inst = nl.instance(i);
    if (inst.fixed || inst.type->physical_only()) continue;
    occupy(inst.pos, inst.type->width());
  }
}

IncrementalLegalizer::~IncrementalLegalizer() = default;

void IncrementalLegalizer::release(geom::Point pos, geom::Nm width) {
  RowState* rs = impl_->row_at(pos.y);
  if (!rs) return;
  if (Segment* seg = impl_->segment_at(*rs, pos.x, width)) {
    seg->free_span(pos.x, width);
  }
}

void IncrementalLegalizer::occupy(geom::Point pos, geom::Nm width) {
  RowState* rs = impl_->row_at(pos.y);
  if (!rs) return;
  if (Segment* seg = impl_->segment_at(*rs, pos.x, width)) {
    seg->occupy(pos.x, width);
  }
}

std::optional<geom::Point> IncrementalLegalizer::claim(geom::Nm width,
                                                       geom::Point desired) {
  const Floorplan& fp = *impl_->fp;
  std::vector<RowState>& rows = impl_->rows;
  const int want_row = std::clamp(
      static_cast<int>(desired.y / fp.row_height), 0, fp.num_rows() - 1);
  Nm best_cost = std::numeric_limits<Nm>::max();
  RowState* best_row = nullptr;
  Segment* best_seg = nullptr;
  Nm best_x = 0;
  for (int dr = 0; dr < fp.num_rows(); ++dr) {
    for (int sgn : {1, -1}) {
      const int r = want_row + sgn * dr;
      if (sgn < 0 && dr == 0) continue;
      if (r < 0 || r >= fp.num_rows()) continue;
      const Nm dy = std::abs(rows[static_cast<std::size_t>(r)].y - desired.y);
      if (dy >= best_cost) continue;
      for (Segment& seg : rows[static_cast<std::size_t>(r)].segments) {
        const auto x = seg.best_position(width, desired.x, fp.site_width);
        if (!x) continue;
        const Nm cost = std::abs(*x - desired.x) + dy;
        if (cost < best_cost) {
          best_cost = cost;
          best_row = &rows[static_cast<std::size_t>(r)];
          best_seg = &seg;
          best_x = *x;
        }
      }
    }
    if (best_row && static_cast<Nm>(dr) * fp.row_height > best_cost) break;
  }
  if (!best_row) return std::nullopt;
  best_seg->occupy(best_x, width);
  return geom::Point{best_x, best_row->y};
}

}  // namespace ffet::pnr
