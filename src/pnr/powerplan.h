// powerplan.h — power-delivery planning (Sec. III.B).
//
// Both technologies are powered from the backside (the package constraint:
// bumps exist on one side only, and the FFET's carrier wafer forces that
// side to be the backside):
//
//   * FFET: backside VDD and VSS power stripes in an interleaved pattern at
//     64 CPP pitch.  Backside M0 VDD rails connect to the BSPDN directly;
//     frontside M0 VSS rails connect through **Power Tap Cells** placed in
//     every row directly under each backside VSS stripe (Fig. 6a-b).  The
//     tap cells are FIXED placement obstacles — they are what limits the
//     maximum achievable utilization (Fig. 8a: "maximum utilization is
//     limited by the placement of the Power Tap Cells").
//
//   * CFET: BPR + nTSV to a BM1/BM2 BSPDN (Fig. 6c).  The nTSV landing
//     pads block a fraction of placement sites along the stripes.
//
// The power plan also produces a first-order IR-drop estimate so the
// "power integrity" aspect of the paper's powerplan stage is checkable.

#pragma once

#include <string>
#include <vector>

#include "pnr/floorplan.h"
#include "stdcell/stdcell.h"

namespace ffet::pnr {

struct PowerPlan {
  /// x positions (stripe centerlines) of backside VSS / VDD stripes.
  std::vector<Nm> vss_stripe_x;
  std::vector<Nm> vdd_stripe_x;

  /// Fixed tap-cell instances added to the netlist (FFET only).
  std::vector<netlist::InstId> tap_cells;

  /// Placement blockages (tap-cell footprints and nTSV landing pads).
  std::vector<geom::Rect> blockages;

  /// Fraction of placement sites consumed by blockages.
  double blocked_site_fraction = 0.0;

  /// First-order worst-case static IR drop in mV at the given block power.
  double estimate_ir_drop_mv(double block_power_uw) const;

  // Model inputs kept for the IR estimate.
  double tap_r_ohm = 0.0;
  int num_rails = 0;
  double vdd_v_ = 0.7;
  double rail_r_ohm_ = 0.0;
};

/// Plan the PDN on a floorplan.  For FFET technologies this ADDS fixed
/// TAPCELL instances to `nl` (they appear as FIXED components in the DEF);
/// for CFET it records nTSV blockages only.
PowerPlan build_power_plan(netlist::Netlist& nl, const Floorplan& fp,
                           const stdcell::Library& lib);

}  // namespace ffet::pnr
