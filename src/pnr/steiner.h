// steiner.h — rectilinear Steiner topology generation for the 2-pin
// decomposition of multi-sink nets (router stage 2).
//
// The stage-2 router (RouteEngine::Astar2) no longer grows each net
// source-to-sinks inside the maze search.  Instead every per-side subnet is
// decomposed *before* routing over a rectilinear Steiner tree of its
// terminals, and each tree segment becomes an independently-routed 2-pin
// subnet — the structure nthu-route popularized (Construct_2d_tree /
// Route_2pinnets): congestion negotiation then operates on short point-to-
// point pieces whose detours stay local, instead of re-threading whole
// fanout trees.
//
// Topology quality is FLUTE-style tiered by terminal count:
//
//   * <= 3 terminals: exact rectilinear Steiner minimal tree (the median
//     point construction);
//   * <= kExactTerminals (9): iterated 1-Steiner over the Hanan grid —
//     repeatedly insert the candidate point whose addition maximally
//     shortens the spanning tree, the classic Kahng-Robins refinement that
//     tracks the FLUTE lookup tables closely at these sizes;
//   * above: plain Prim spanning tree over the terminals (the
//     spanning-graph fallback; high-fanout nets are rare after fanout
//     buffering and their segments are short).
//
// Coordinates are gcell grid indices (column, row), matching the router's
// per-side grids.  All tie-breaking is by index order, so the topology is a
// pure deterministic function of the terminal list.

#pragma once

#include <vector>

namespace ffet::pnr {

/// Terminal-count ceiling for the iterated 1-Steiner refinement; beyond it
/// the spanning-tree fallback is used.
inline constexpr int kExactTerminals = 9;

/// A topology node in gcell coordinates.
struct SteinerPoint {
  int c = 0;  ///< gcell column
  int r = 0;  ///< gcell row
  friend bool operator==(const SteinerPoint&, const SteinerPoint&) = default;
};

/// One tree segment: indices into SteinerTree::points.
struct SteinerSeg {
  int a = 0;
  int b = 0;
};

/// The generated topology.  points[0 .. num_terminals) are the input
/// terminals in input order; any further points are inserted Steiner
/// points.  segs form a spanning tree over all points (|segs| ==
/// |points| - 1 for >= 1 point), so the union of the segments connects
/// every terminal.
struct SteinerTree {
  std::vector<SteinerPoint> points;
  int num_terminals = 0;
  std::vector<SteinerSeg> segs;

  /// Total Manhattan length of the segments (gcell units).
  long length() const;
};

/// Build the Steiner topology of `terminals` (duplicates allowed; they
/// collapse onto one node via zero-length segments the caller can skip).
/// Deterministic: same terminals (in order) -> same tree.
SteinerTree build_steiner_tree(const std::vector<SteinerPoint>& terminals);

}  // namespace ffet::pnr
