#include "pnr/cts.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "obs/obs.h"
#include "stdcell/nldm.h"

namespace ffet::pnr {

using netlist::InstId;
using netlist::NetId;
using netlist::Netlist;
using netlist::PinRef;

namespace {

struct Sink {
  PinRef pin;
  geom::Point pos;
};

struct TreeStats {
  int buffers = 0;
  int depth = 0;
  double wirelength_um = 0.0;
};

geom::Point centroid(const std::vector<Sink>& sinks) {
  double sx = 0, sy = 0;
  for (const Sink& s : sinks) {
    sx += static_cast<double>(s.pos.x);
    sy += static_cast<double>(s.pos.y);
  }
  const auto n = static_cast<double>(sinks.size());
  return {static_cast<Nm>(sx / n), static_cast<Nm>(sy / n)};
}

/// Pick the clock buffer drive by downstream load: leaves drive flip-flop
/// pins, internal nodes drive two buffers over longer wires.
const stdcell::CellType& pick_clkbuf(const stdcell::Library& lib,
                                     double load_ff) {
  if (load_ff > 12.0) return lib.at("CLKBUFD8");
  if (load_ff > 5.0) return lib.at("CLKBUFD4");
  return lib.at("CLKBUFD2");
}

class TreeBuilder {
 public:
  TreeBuilder(Netlist& nl, const Floorplan& fp, const CtsOptions& opt)
      : nl_(nl), fp_(fp), opt_(opt),
        wire_c_per_um_(0.0), wire_r_per_um_(0.0) {
    // Clock routing uses mid-stack frontside metal (FM4/FM5-class).
    const auto& tech = nl.library().tech();
    const tech::MetalLayer* l = tech.find_layer("FM5");
    if (!l) l = tech.find_layer("FM4");
    if (!l) l = tech.find_layer("FM2");
    if (l) {
      wire_c_per_um_ = l->c_ff_per_um;
      wire_r_per_um_ = l->r_ohm_per_um;
    }
  }

  /// Build the subtree for `sinks`; returns {driving buffer instance,
  /// buffer input pin cap, buffer position, downstream latency from this
  /// buffer's input}.
  struct Node {
    InstId buf = netlist::kNoInst;
    geom::Point pos;
    double input_cap_ff = 0.0;
    int depth = 1;
  };

  Node build(std::vector<Sink> sinks, CtsResult& out, double upstream_ps) {
    const geom::Point center = centroid(sinks);
    if (static_cast<int>(sinks.size()) <= opt_.max_fanout) {
      return make_leaf(std::move(sinks), center, out, upstream_ps);
    }
    // Split along the longer axis at the median.
    geom::Rect bbox{sinks.front().pos, sinks.front().pos};
    for (const Sink& s : sinks) {
      bbox = bbox.united({s.pos, s.pos});
    }
    const bool split_x = bbox.width() >= bbox.height();
    std::sort(sinks.begin(), sinks.end(), [&](const Sink& a, const Sink& b) {
      return split_x ? a.pos.x < b.pos.x : a.pos.y < b.pos.y;
    });
    const std::size_t mid = sinks.size() / 2;
    std::vector<Sink> left(sinks.begin(), sinks.begin() + static_cast<long>(mid));
    std::vector<Sink> right(sinks.begin() + static_cast<long>(mid), sinks.end());

    // The internal buffer at this level.
    const NetId out_net = nl_.add_net(fresh_net());
    // Estimate the load: two child buffers plus the wires to them.
    // Children are built first against a provisional latency; we add this
    // buffer's own delay to their sink latencies afterwards via the
    // upstream accumulator, so build order matters: compute self delay on
    // estimated load, then recurse.
    const geom::Point lc = centroid(left);
    const geom::Point rc = centroid(right);
    const double wire_um = geom::to_um(geom::manhattan(center, lc)) +
                           geom::to_um(geom::manhattan(center, rc));
    const double est_child_cap = 2.0 * 3.0;  // two CLKBUF inputs, ~3 fF each
    const double load = est_child_cap + wire_um * wire_c_per_um_;
    const stdcell::CellType& buf_type =
        pick_clkbuf(nl_.library(), load);
    const InstId buf = nl_.add_instance(fresh_inst(), &buf_type);
    nl_.instance(buf).pos = clamp_to_core(center, buf_type);
    nl_.connect(buf, buf_type.output_pin()->name, out_net);
    nl_.mark_clock_net(out_net);
    out.wirelength_um += wire_um;
    ++out.num_buffers;

    const double self_ps = buffer_delay_ps(buf_type, load) +
                           wire_delay_ps(wire_um / 2.0);
    const Node ln = build(std::move(left), out, upstream_ps + self_ps);
    const Node rn = build(std::move(right), out, upstream_ps + self_ps);
    nl_.connect(ln.buf, input_pin_name(ln.buf), out_net);
    nl_.connect(rn.buf, input_pin_name(rn.buf), out_net);

    Node n;
    n.buf = buf;
    n.pos = nl_.instance(buf).pos;
    n.input_cap_ff = input_cap(buf);
    n.depth = 1 + std::max(ln.depth, rn.depth);
    return n;
  }

  double buffer_delay_ps(const stdcell::CellType& type, double load_ff) const {
    const stdcell::TimingModel* m = type.timing_model();
    if (!m || m->arcs.empty()) {
      throw std::logic_error("CTS requires a characterized library (" +
                             type.name() + " lacks a timing model)");
    }
    const auto& arc = m->arcs.front();
    // Clock edges: use the mean of rise/fall at a nominal 20 ps slew.
    return 0.5 * (arc.delay_rise.lookup(20.0, load_ff) +
                  arc.delay_fall.lookup(20.0, load_ff));
  }

  double wire_delay_ps(double um) const {
    // Lumped RC: 0.69 * R * C / 2 (distributed wire Elmore).
    return 0.69 * (um * wire_r_per_um_) * (um * wire_c_per_um_) / 2.0 / 1000.0;
  }

 private:
  Node make_leaf(std::vector<Sink> sinks, geom::Point center, CtsResult& out,
                 double upstream_ps) {
    double load = 0.0;
    double wire_um = 0.0;
    for (const Sink& s : sinks) {
      load += nl_.pin_cap_ff(s.pin);
      wire_um += geom::to_um(geom::manhattan(center, s.pos));
    }
    load += wire_um * wire_c_per_um_;
    const stdcell::CellType& buf_type = pick_clkbuf(nl_.library(), load);
    const NetId leaf_net = nl_.add_net(fresh_net());
    const InstId buf = nl_.add_instance(fresh_inst(), &buf_type);
    nl_.instance(buf).pos = clamp_to_core(center, buf_type);
    nl_.connect(buf, buf_type.output_pin()->name, leaf_net);
    nl_.mark_clock_net(leaf_net);
    out.wirelength_um += wire_um;
    ++out.num_buffers;

    const double self_ps = buffer_delay_ps(buf_type, load);
    for (const Sink& s : sinks) {
      const double wire_ps =
          wire_delay_ps(geom::to_um(geom::manhattan(center, s.pos)));
      // Move the sink's CP pin from the root clock net to this leaf.
      const auto& pin_name = nl_.instance(s.pin.inst)
                                 .type->pins()[static_cast<std::size_t>(s.pin.pin)]
                                 .name;
      nl_.reconnect_sink(s.pin.inst, pin_name, leaf_net);
      out.sink_latency_ps[s.pin.inst] = upstream_ps + self_ps + wire_ps;
    }

    Node n;
    n.buf = buf;
    n.pos = nl_.instance(buf).pos;
    n.input_cap_ff = input_cap(buf);
    n.depth = 1;
    return n;
  }

  geom::Point clamp_to_core(geom::Point p, const stdcell::CellType& type) {
    return {std::clamp<Nm>(p.x, fp_.core.lo.x,
                           fp_.core.hi.x - type.width()),
            std::clamp<Nm>(geom::snap_down(p.y, fp_.row_height),
                           fp_.core.lo.y,
                           fp_.core.hi.y - fp_.row_height)};
  }

  std::string fresh_net() { return "cts_net_" + std::to_string(counter_++); }
  std::string fresh_inst() { return "cts_buf_" + std::to_string(counter_++); }

  std::string input_pin_name(InstId buf) const {
    for (const auto& p : nl_.instance(buf).type->pins()) {
      if (p.dir == stdcell::PinDir::Input) return p.name;
    }
    throw std::logic_error("clock buffer without input pin");
  }

  double input_cap(InstId buf) const {
    for (const auto& p : nl_.instance(buf).type->pins()) {
      if (p.dir == stdcell::PinDir::Input) return p.cap_ff;
    }
    return 0.0;
  }

  Netlist& nl_;
  const Floorplan& fp_;
  const CtsOptions& opt_;
  double wire_c_per_um_;
  double wire_r_per_um_;
  int counter_ = 0;
};

}  // namespace

CtsResult build_clock_tree(Netlist& nl, const Floorplan& fp,
                           const CtsOptions& options) {
  FFET_TRACE_SCOPE("cts.build");
  CtsResult result;

  // Find the clock net and its current sinks.
  NetId clock_net = netlist::kNoNet;
  for (int n = 0; n < nl.num_nets(); ++n) {
    if (nl.net(n).is_clock && nl.net(n).port >= 0) {
      clock_net = n;
      break;
    }
  }
  if (clock_net == netlist::kNoNet) return result;

  std::vector<Sink> sinks;
  for (const PinRef& s : nl.net(clock_net).sinks) {
    sinks.push_back({s, nl.pin_position(s)});
  }
  if (sinks.empty()) return result;

  TreeBuilder builder(nl, fp, options);
  const auto root = builder.build(std::move(sinks), result, 0.0);
  // Root buffer hangs on the original clock net.
  nl.connect(root.buf,
             [&] {
               for (const auto& p : nl.instance(root.buf).type->pins()) {
                 if (p.dir == stdcell::PinDir::Input) return p.name;
               }
               throw std::logic_error("no input pin");
             }(),
             clock_net);
  result.depth = root.depth;

  double min_l = 1e18, max_l = -1e18, sum = 0.0;
  for (const auto& [inst, lat] : result.sink_latency_ps) {
    min_l = std::min(min_l, lat);
    max_l = std::max(max_l, lat);
    sum += lat;
  }
  if (!result.sink_latency_ps.empty()) {
    result.skew_ps = max_l - min_l;
    result.mean_latency_ps = sum / static_cast<double>(result.sink_latency_ps.size());
  }
  FFET_METRIC_OBSERVE("cts.skew_ps", result.skew_ps);
  FFET_METRIC_ADD("cts.buffers", result.num_buffers);
  return result;
}

}  // namespace ffet::pnr
