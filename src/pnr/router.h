// router.h — dual-sided global signal routing (Sec. III.A, Algorithm 1).
//
// The FFET enabler is the *dual-sided output pin*: every cell output is a
// Drain Merge reaching both FM0 and BM0, so a net's source can drive wires
// on either wafer side.  Algorithm 1 decomposes every net by its sinks'
// pin sides:
//
//     for n in nets:
//         n.front, n.back <- { n.source }
//         for p in n.sinks:
//             assign p to n.front or n.back by the pin side in the LEF
//     route NF and NB independently; emit two DEFs
//
// No bridging cells are used (the paper's main flow minimizes area by
// avoiding them).  In CFET — or FFET libraries with all input pins on the
// frontside (FFET "FM12") — every net decomposes to a frontside net and the
// backside stays signal-free.
//
// The per-side router is a congestion-negotiated gcell global router:
// PathFinder-style A* with history costs over a grid whose edge capacities
// derive from the Table II layer stacks (per preferred direction), minus
// PDN usage, minus a pin-access share proportional to local pin density —
// the mechanism behind the paper's observation that FFET with
// frontside-only signals routs *worse* than CFET (higher pin density in a
// smaller core, Fig. 8c) while dual-sided signals recover routability.
//
// Validity follows the paper's rule: a P&R result is valid only if the
// estimated design-rule-violation count is below 10 (Sec. IV).

#pragma once

#include <array>
#include <vector>

#include "pnr/floorplan.h"

namespace ffet::pnr {

using tech::Side;

/// Maze-search kernel selection.  `Astar2` is the stage-2 engine: every
/// multi-sink subnet is decomposed over a rectilinear Steiner topology
/// (src/pnr/steiner.h) into independently-routed 2-pin subnets, uncongested
/// subnets take a monotonic L/Z fast path that never touches the A* heap,
/// and negotiation rips up by congestion *region* (src/pnr/region.h) with
/// region reroutes batched across the thread pool (snapshot search + serial
/// commit barrier, bit-identical at any thread count).  `Astar` is the
/// stage-1 windowed A* engine: admissible Manhattan lower bound scaled by
/// the per-pass minimum edge cost, a search window around {tree, target}
/// that adaptively expands (x2, then full grid) when no hard-overflow-free
/// path exists inside it, a per-pass edge-cost cache, and O(1) stamped tree
/// membership; it routes each subnet monolithically source-to-sinks and
/// rips up whole subnets.  `Legacy` is the original unbounded full-grid
/// Dijkstra (kept as an escape hatch and as the QoR baseline).  `Auto`
/// resolves to the FFET_ROUTE_ENGINE environment variable ("legacy",
/// "astar" or "astar2") and defaults to Astar2.
enum class RouteEngine { Auto, Legacy, Astar, Astar2 };

struct RouteOptions {
  int gcell_tracks = 15;       ///< gcell edge length in M2 track pitches
  int rrr_passes = 24;         ///< rip-up-and-reroute iterations
  /// Effective routed tracks per raw track-pitch crossing of a gcell edge.
  /// Above 1 because a gcell-edge "usage unit" is one net crossing, which
  /// occupies a track only across that gcell, while the capacity of a
  /// physical track spans many gcells; the value also compensates the
  /// lightweight global placer's extra wirelength vs. a commercial tool.
  /// Calibrated against the paper's Fig. 12 low-layer breakpoints
  /// (FP0.5BP0.5 still closing at 2 layers/side near 70% utilization).
  /// Re-derived (3.2 -> 3.0) when the windowed A* engine became the
  /// default: its hard-overflow-avoiding search resolves congestion the
  /// legacy Dijkstra kernel could not, so the fudge compensating router
  /// weakness shrinks to keep the reproduction breakpoints in place.
  double capacity_factor = 3.0;
  double pin_access_demand = 0.2;  ///< wire-demand share added per pin in a
                                   ///< gcell (local hookup wiring)
  double dr_slack = 0.15;  ///< per-edge overflow fraction a detailed router
                           ///< absorbs before violations appear
  /// Pin-access ceiling per µm² of gcell area *per side*: beyond it the
  /// detailed router cannot reach every pin and emits DRVs.  This is the
  /// paper's mechanism limiting FFET-with-frontside-only-signals to 76 %
  /// utilization (Sec. IV / Fig. 8c: "higher pin density in FFET FM12 ...
  /// due to FFET's smaller cell area") while dual-sided pin redistribution
  /// halves the per-side density and removes the ceiling.  Layer-count
  /// independent: pin access happens at M0/M1.
  double pin_access_limit_per_um2 = 80.0;
  /// Worker threads for the route stage.  Algorithm 1's decomposition makes
  /// the two wafer sides fully independent (separate grids, separate edge
  /// pools), so with threads >= 2 the frontside and backside route
  /// concurrently within each PathFinder pass.  Results are bit-identical
  /// to threads == 1, which runs the original interleaved serial order.
  int threads = 1;
  /// Maze-search kernel (see RouteEngine).  Results are deterministic for
  /// either engine and identical across `threads` settings; the engines
  /// may legitimately differ from each other in tie-breaking.
  RouteEngine engine = RouteEngine::Auto;
  /// Initial A* search-window margin, in gcells, around the bounding box
  /// of {current tree, target sink}.  Windowed attempts admit only paths
  /// that create no *hard* overflow; if none exists the margin doubles
  /// once, then the search falls back to the full grid with no pruning
  /// (so connectivity never depends on the window).  Ignored by Legacy.
  int window_margin = 6;
  /// Stage-2 (Astar2) region clustering: overflowed gcells within this
  /// Chebyshev distance join one congestion region, and each region's
  /// bounding box grows by `region_margin` gcells so the batched reroute
  /// sees congestion context beyond the hot cells.  Ignored by the other
  /// engines.
  int region_merge_dist = 2;
  int region_margin = 3;
};

/// A gcell-level routing edge: between grid nodes a and b (flat indices).
struct GEdge {
  int a = 0;
  int b = 0;
  friend bool operator==(const GEdge&, const GEdge&) = default;
};

/// One routed (sub)net on one side of the wafer.
struct NetRoute {
  netlist::NetId net = netlist::kNoNet;
  Side side = Side::Front;
  std::vector<GEdge> edges;      ///< tree edges in gcell space
  std::vector<int> sink_gcells;  ///< gcell of each decomposed sink
  int source_gcell = 0;
  double wirelength_um = 0.0;
  /// Layer indices assigned per direction (for RC extraction / DEF): the
  /// horizontal-layer and vertical-layer this net predominantly uses.
  int h_layer_index = 2;
  int v_layer_index = 1;
};

/// Convergence record of one negotiation pass.  Pass 0 is the initial
/// route (ripped counts are the number of subnets *routed*); passes >= 1
/// are rip-up-and-reroute rounds.  Overflows are measured after the pass.
struct RoutePassStat {
  int pass = 0;
  int ripped_front = 0;
  int ripped_back = 0;
  double overflow_front = 0.0;  ///< soft overflow on the frontside grid
  double overflow_back = 0.0;
  double hard_overflow = 0.0;   ///< both sides, beyond detail-route slack
  // Search-effort counters for this pass (all engines count settled
  // nodes; window expansions are A*-only by construction).
  long settled_front = 0;       ///< maze-search nodes settled, frontside
  long settled_back = 0;
  int window_expansions_front = 0;  ///< A* window retries (x2 / full grid)
  int window_expansions_back = 0;
  // Stage-2 (Astar2) congestion-region counters: regions clustered this
  // pass; the ripped counts above are then 2-pin subnet rip-ups scoped to
  // those regions.  Zero for the other engines.
  int regions_front = 0;
  int regions_back = 0;
};

/// Aggregate result of the dual-sided routing stage.
struct RouteResult {
  std::vector<NetRoute> routes;

  int gcols = 0;
  int grows = 0;
  geom::Nm gcell_w = 0;
  geom::Nm gcell_h = 0;

  double wirelength_front_um = 0.0;
  double wirelength_back_um = 0.0;
  int nets_front = 0;
  int nets_back = 0;

  int overflow_total = 0;  ///< sum over edges of max(0, usage - capacity)
  int drv_wire = 0;        ///< DRVs from unresolvable wire overflow
  int drv_pin_access = 0;  ///< DRVs from per-gcell pin-access overload
  int drv_estimate = 0;    ///< total estimated DRC violations
  bool valid = false;      ///< drv_estimate < 10 (the paper's rule)

  // Diagnostics (track-units aggregated over all edges of both sides).
  double capacity_units = 0.0;
  double wire_demand_units = 0.0;
  double pin_demand_units = 0.0;

  // Convergence diagnostics: one entry per executed pass (see
  // RoutePassStat), the number of RRR passes actually run (excluding the
  // initial route), and the total subnet-level rip-ups across all passes
  // (2-pin subnets for Astar2; whole per-side subnets for the stage-1
  // engines).  With FFET_VERBOSE set the router also prints a one-line
  // per-pass summary.
  std::vector<RoutePassStat> pass_stats;
  int rrr_passes = 0;
  long ripups_total = 0;
  /// Congestion regions processed across all passes (region-level rip-up
  /// events; zero for the stage-1 engines, which rip whole subnets in pass
  /// order with no spatial scoping).
  long region_ripups_total = 0;

  /// Stage-2 decomposition counters: 2-pin subnets produced by the Steiner
  /// decomposition (zero for stage-1 engines, which route per-side subnets
  /// monolithically), and how many 2-pin routes (initial + reroutes) were
  /// satisfied by the monotonic L/Z fast path without touching the A* heap.
  long steiner_subnets = 0;
  long fastpath_routes = 0;

  /// Maze-search effort totals over all passes (sum of the per-pass
  /// counters above), plus the kernel that actually ran after resolving
  /// RouteOptions::engine / FFET_ROUTE_ENGINE.
  long settled_nodes = 0;
  long window_expansions = 0;
  RouteEngine engine_used = RouteEngine::Astar2;

  double total_wirelength_um() const {
    return wirelength_front_um + wirelength_back_um;
  }
};

/// Route all signal nets of a placed netlist.  Sinks on backside pins are
/// reachable only because FFET output pins are dual-sided; requesting a
/// route for a netlist with backside sinks on a technology without backside
/// routing layers throws std::runtime_error (no bridging cells in this
/// flow).
RouteResult route_design(const netlist::Netlist& nl, const Floorplan& fp,
                         const RouteOptions& options = {});

/// Incremental rip-up-and-reroute: re-route only the nets in `dirty_nets`
/// against the committed (pinned) routes of every other net from `prev`,
/// rebuilding grids and pin demand from the current netlist state.  A
/// clean net whose terminals nevertheless moved gcells (e.g. its driver
/// was displaced by legalization without the caller listing it dirty) is
/// conservatively re-routed too.  Untouched nets keep their previous layer
/// assignment, so their DEF wires — and extracted parasitics — are
/// bit-identical to `prev`.  The ECO engine's routing primitive.
RouteResult reroute_nets(const netlist::Netlist& nl, const Floorplan& fp,
                         const RouteResult& prev,
                         const std::vector<netlist::NetId>& dirty_nets,
                         const RouteOptions& options = {});

}  // namespace ffet::pnr
