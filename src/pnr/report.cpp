#include "pnr/report.h"

#include <algorithm>
#include <sstream>

namespace ffet::pnr {

CongestionMap build_congestion_map(const RouteResult& routes, Side side) {
  CongestionMap map;
  map.side = side;
  map.load = geom::Grid2D<double>(routes.gcols, routes.grows, 0.0);
  for (const NetRoute& r : routes.routes) {
    if (r.side != side) continue;
    for (const GEdge& e : r.edges) {
      const int a = std::min(e.a, e.b);
      const int b = std::max(e.a, e.b);
      map.load.at(a % routes.gcols, a / routes.gcols) += 0.5;
      map.load.at(b % routes.gcols, b / routes.gcols) += 0.5;
    }
  }
  double sum = 0.0;
  for (double v : map.load) {
    map.max_load = std::max(map.max_load, v);
    sum += v;
  }
  map.mean_load = map.load.size() ? sum / static_cast<double>(map.load.size())
                                  : 0.0;
  return map;
}

DensityMap build_density_map(const netlist::Netlist& nl, const Floorplan& fp,
                             int bins) {
  DensityMap map;
  map.density = geom::Grid2D<double>(bins, bins, 0.0);
  const double bw = static_cast<double>(fp.core.width()) / bins;
  const double bh = static_cast<double>(fp.core.height()) / bins;
  for (const netlist::Instance& inst : nl.instances()) {
    const geom::Point c = inst.bbox().center();
    const int bx = std::clamp(static_cast<int>(c.x / bw), 0, bins - 1);
    const int by = std::clamp(static_cast<int>(c.y / bh), 0, bins - 1);
    map.density.at(bx, by) += inst.type->area_um2();
  }
  const double bin_area = bw * bh / 1e6;  // nm^2 -> um^2
  double sum = 0.0;
  for (double& v : map.density) {
    v /= bin_area;
    map.max_density = std::max(map.max_density, v);
    sum += v;
  }
  map.mean_density =
      map.density.size() ? sum / static_cast<double>(map.density.size()) : 0.0;
  return map;
}

std::string render_heatmap(const geom::Grid2D<double>& grid) {
  static const char kRamp[] = " .:-=+*#%@";
  double max_v = 0.0;
  for (double v : grid) max_v = std::max(max_v, v);
  std::ostringstream os;
  for (int r = grid.rows() - 1; r >= 0; --r) {
    for (int c = 0; c < grid.cols(); ++c) {
      const double t = max_v > 0 ? grid.at(c, r) / max_v : 0.0;
      const int idx =
          std::clamp(static_cast<int>(t * 9.0 + 0.5), 0, 9);
      os << kRamp[idx];
    }
    os << '\n';
  }
  return os.str();
}

std::string routing_summary(const RouteResult& r) {
  std::ostringstream os;
  os << "routed " << r.nets_front << " frontside + " << r.nets_back
     << " backside subnets; wirelength " << static_cast<long>(r.wirelength_front_um)
     << " um (F) + " << static_cast<long>(r.wirelength_back_um)
     << " um (B); grid " << r.gcols << "x" << r.grows << "; DRV "
     << r.drv_estimate << " (" << r.drv_wire << " wire + "
     << r.drv_pin_access << " pin-access) -> "
     << (r.valid ? "VALID" : "INVALID") << " (rule: <10)";
  return os.str();
}

}  // namespace ffet::pnr
