#include "pnr/steiner.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

namespace ffet::pnr {

namespace {

long dist(const SteinerPoint& a, const SteinerPoint& b) {
  return static_cast<long>(std::abs(a.c - b.c)) +
         static_cast<long>(std::abs(a.r - b.r));
}

/// Prim spanning tree over `pts` with Manhattan edge weights.  Ties break
/// toward the lower (attach-to, new-node) index pair, so the tree is a
/// deterministic function of the point list.  Returns the parent of every
/// node (parent[0] == -1) and, optionally, the total length.
std::vector<int> prim_parents(const std::vector<SteinerPoint>& pts,
                              long* total_len = nullptr) {
  const std::size_t n = pts.size();
  std::vector<int> parent(n, -1);
  if (n <= 1) {
    if (total_len) *total_len = 0;
    return parent;
  }
  std::vector<char> in_tree(n, 0);
  std::vector<long> best(n, std::numeric_limits<long>::max());
  std::vector<int> best_from(n, 0);
  in_tree[0] = 1;
  for (std::size_t j = 1; j < n; ++j) {
    best[j] = dist(pts[0], pts[j]);
    best_from[j] = 0;
  }
  long len = 0;
  for (std::size_t added = 1; added < n; ++added) {
    // Lowest connection cost; ties to the lowest node index.
    std::size_t pick = 0;
    long pick_cost = std::numeric_limits<long>::max();
    for (std::size_t j = 0; j < n; ++j) {
      if (!in_tree[j] && best[j] < pick_cost) {
        pick_cost = best[j];
        pick = j;
      }
    }
    in_tree[pick] = 1;
    parent[pick] = best_from[pick];
    len += pick_cost;
    for (std::size_t j = 0; j < n; ++j) {
      if (in_tree[j]) continue;
      const long d = dist(pts[pick], pts[j]);
      if (d < best[j]) {
        best[j] = d;
        best_from[j] = static_cast<int>(pick);
      }
    }
  }
  if (total_len) *total_len = len;
  return parent;
}

long spanning_length(const std::vector<SteinerPoint>& pts) {
  long len = 0;
  prim_parents(pts, &len);
  return len;
}

void segs_from_parents(const std::vector<int>& parent, SteinerTree& tree) {
  tree.segs.clear();
  for (std::size_t j = 1; j < parent.size(); ++j) {
    tree.segs.push_back({parent[j], static_cast<int>(j)});
  }
}

/// Exact RSMT for <= 3 points: for 3, the median point connects all three
/// with the provably minimal rectilinear length.
void build_small(SteinerTree& tree) {
  auto& pts = tree.points;
  if (pts.size() < 3) {
    for (std::size_t j = 1; j < pts.size(); ++j) {
      tree.segs.push_back({0, static_cast<int>(j)});
    }
    return;
  }
  int cs[3] = {pts[0].c, pts[1].c, pts[2].c};
  int rs[3] = {pts[0].r, pts[1].r, pts[2].r};
  std::sort(cs, cs + 3);
  std::sort(rs, rs + 3);
  const SteinerPoint median{cs[1], rs[1]};
  // Reuse a coincident terminal instead of adding a duplicate point.
  int m = -1;
  for (int j = 0; j < 3; ++j) {
    if (pts[static_cast<std::size_t>(j)] == median) {
      m = j;
      break;
    }
  }
  if (m < 0) {
    m = static_cast<int>(pts.size());
    pts.push_back(median);
  }
  for (int j = 0; j < 3; ++j) {
    if (j != m) tree.segs.push_back({m, j});
  }
}

/// Iterated 1-Steiner (Kahng-Robins): repeatedly add the Hanan-grid point
/// whose insertion most reduces the spanning-tree length; stop at zero gain
/// or when n-2 Steiner points have been placed.
void build_one_steiner(SteinerTree& tree) {
  auto& pts = tree.points;
  const int n_term = tree.num_terminals;
  long cur_len = 0;
  std::vector<int> parent = prim_parents(pts, &cur_len);

  // Hanan grid of the *terminals* (sorted unique coordinates).
  std::vector<int> xs, ys;
  for (int t = 0; t < n_term; ++t) {
    xs.push_back(pts[static_cast<std::size_t>(t)].c);
    ys.push_back(pts[static_cast<std::size_t>(t)].r);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

  const int max_steiner = std::max(0, n_term - 2);
  std::vector<SteinerPoint> trial = pts;
  for (int round = 0; round < max_steiner; ++round) {
    long best_len = cur_len;
    SteinerPoint best_pt;
    bool found = false;
    for (int x : xs) {
      for (int y : ys) {
        const SteinerPoint cand{x, y};
        bool exists = false;
        for (const SteinerPoint& p : pts) {
          if (p == cand) {
            exists = true;
            break;
          }
        }
        if (exists) continue;
        trial = pts;
        trial.push_back(cand);
        const long len = spanning_length(trial);
        // Strict improvement; grid scan order (x then y ascending) breaks
        // ties deterministically toward the first best candidate.
        if (len < best_len) {
          best_len = len;
          best_pt = cand;
          found = true;
        }
      }
    }
    if (!found) break;
    pts.push_back(best_pt);
    cur_len = best_len;
  }

  // Prune Steiner points that end up as leaves of the final tree (they can
  // appear when a later insertion obsoletes an earlier one): a leaf Steiner
  // point only lengthens the tree.
  while (true) {
    parent = prim_parents(pts, &cur_len);
    std::vector<int> degree(pts.size(), 0);
    for (std::size_t j = 1; j < pts.size(); ++j) {
      ++degree[static_cast<std::size_t>(parent[j])];
      ++degree[j];
    }
    int drop = -1;
    for (std::size_t j = static_cast<std::size_t>(n_term); j < pts.size();
         ++j) {
      if (degree[j] <= 1) {
        drop = static_cast<int>(j);
        break;
      }
    }
    if (drop < 0) break;
    pts.erase(pts.begin() + drop);
  }
  segs_from_parents(parent, tree);
}

}  // namespace

long SteinerTree::length() const {
  long len = 0;
  for (const SteinerSeg& s : segs) {
    len += dist(points[static_cast<std::size_t>(s.a)],
                points[static_cast<std::size_t>(s.b)]);
  }
  return len;
}

SteinerTree build_steiner_tree(const std::vector<SteinerPoint>& terminals) {
  SteinerTree tree;
  tree.points = terminals;
  tree.num_terminals = static_cast<int>(terminals.size());
  if (terminals.size() <= 1) return tree;
  if (terminals.size() <= 3) {
    build_small(tree);
  } else if (terminals.size() <= static_cast<std::size_t>(kExactTerminals)) {
    build_one_steiner(tree);
  } else {
    segs_from_parents(prim_parents(tree.points), tree);
  }
  return tree;
}

}  // namespace ffet::pnr
