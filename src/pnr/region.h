// region.h — congestion-region clustering for the stage-2 router.
//
// Stage-1 negotiation ripped up every subnet crossing an overflowed *edge*,
// in global pass order — whole-net granularity with no spatial structure.
// Stage 2 (RouteEngine::Astar2) instead clusters the overflowed gcells of a
// pass into rectangular congestion regions (nthu-route's range router is
// the exemplar): all 2-pin subnets passing through a region are ripped
// together and rerouted with the region's full congestion picture in their
// costs, and *disjoint* regions are independent units of work the thread
// pool can batch.
//
// Clustering is deterministic: gcells are unioned by Chebyshev proximity in
// index order, cluster boxes are expanded by a margin and transitively
// merged while they overlap, and the result is sorted by (r_lo, c_lo,
// r_hi, c_hi).  Same overflow picture -> same regions, independent of
// thread count.

#pragma once

#include <vector>

namespace ffet::pnr {

/// One rectangular congestion region in gcell coordinates (inclusive).
struct CongestionRegion {
  int c_lo = 0;
  int c_hi = 0;
  int r_lo = 0;
  int r_hi = 0;
  int cells = 0;  ///< overflowed gcells that seeded this region

  bool contains(int c, int r) const {
    return c >= c_lo && c <= c_hi && r >= r_lo && r <= r_hi;
  }
  friend bool operator==(const CongestionRegion&,
                         const CongestionRegion&) = default;
};

/// True when the two rectangles share at least one gcell.
bool regions_overlap(const CongestionRegion& a, const CongestionRegion& b);

/// Cluster `overflowed` gcell node indices (flat index = r * cols + c; any
/// order, duplicates tolerated) into congestion regions.  Cells within
/// Chebyshev distance `merge_dist` join one cluster; each cluster's
/// bounding box grows by `margin` gcells (clamped to the grid) so the
/// reroute sees context beyond the hot cells; boxes that overlap after
/// expansion merge transitively.  The returned regions are pairwise
/// disjoint and sorted by (r_lo, c_lo, r_hi, c_hi).
std::vector<CongestionRegion> cluster_congestion_regions(
    const std::vector<int>& overflowed, int cols, int rows,
    int merge_dist = 2, int margin = 3);

}  // namespace ffet::pnr
