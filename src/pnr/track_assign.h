// track_assign.h — track assignment (detailed-routing-lite).
//
// The global router works at gcell granularity: every crossing of a gcell
// edge is one "usage unit".  This pass assigns each crossing a concrete
// track index on its net's layer so that no two nets share a track across
// the same edge — the first (and, on a gridded BEOL, the decisive) step of
// detailed routing.  The DEF writer can then emit wires at real track
// offsets instead of gcell centerlines, and the overlap invariant becomes
// checkable.
//
// Assignment is per-edge greedy in deterministic net order; when an edge
// carries more crossings than its layer-capacity (an overflow the global
// router already reported), the surplus wraps and is counted in
// `overflow_crossings`.

#pragma once

#include <vector>

#include "pnr/router.h"

namespace ffet::pnr {

struct TrackAssignment {
  /// track_of[i][j] = track index of routes[i].edges[j] on that net's
  /// preferred layer for the edge's direction.
  std::vector<std::vector<int>> track_of;

  int max_tracks_seen = 0;       ///< largest track index + 1 on any edge
  int overflow_crossings = 0;    ///< crossings beyond per-edge capacity

  bool clean() const { return overflow_crossings == 0; }
};

/// Assign tracks for every routed edge.  `tracks_per_edge` bounds the
/// indices (pass the router's effective capacity; crossings beyond it wrap
/// and are reported as overflow).
TrackAssignment assign_tracks(const RouteResult& routes,
                              int tracks_per_edge);

/// Perpendicular offset (in nm, centered on the gcell) for a track index,
/// given the gcell span and the number of tracks laid across it.
geom::Nm track_offset_nm(int track, int tracks_per_edge, geom::Nm gcell_span);

}  // namespace ffet::pnr
