#include "pnr/region.h"

#include <algorithm>
#include <numeric>

namespace ffet::pnr {

bool regions_overlap(const CongestionRegion& a, const CongestionRegion& b) {
  return a.c_lo <= b.c_hi && b.c_lo <= a.c_hi && a.r_lo <= b.r_hi &&
         b.r_lo <= a.r_hi;
}

namespace {

int find_root(std::vector<int>& parent, int x) {
  while (parent[static_cast<std::size_t>(x)] != x) {
    parent[static_cast<std::size_t>(x)] =
        parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
    x = parent[static_cast<std::size_t>(x)];
  }
  return x;
}

}  // namespace

std::vector<CongestionRegion> cluster_congestion_regions(
    const std::vector<int>& overflowed, int cols, int rows, int merge_dist,
    int margin) {
  if (overflowed.empty() || cols <= 0 || rows <= 0) return {};

  // Canonical seed order: sorted unique flat indices.
  std::vector<int> cells = overflowed;
  std::sort(cells.begin(), cells.end());
  cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
  const int n = static_cast<int>(cells.size());

  // Union cells within Chebyshev distance merge_dist.  O(n^2) over the
  // overflowed cells only — a pass rarely overflows more than a few dozen
  // gcells, and determinism matters more than asymptotics here.
  std::vector<int> parent(static_cast<std::size_t>(n));
  std::iota(parent.begin(), parent.end(), 0);
  for (int i = 0; i < n; ++i) {
    const int ci = cells[static_cast<std::size_t>(i)] % cols;
    const int ri = cells[static_cast<std::size_t>(i)] / cols;
    for (int j = i + 1; j < n; ++j) {
      const int cj = cells[static_cast<std::size_t>(j)] % cols;
      const int rj = cells[static_cast<std::size_t>(j)] / cols;
      if (std::abs(ci - cj) <= merge_dist && std::abs(ri - rj) <= merge_dist) {
        parent[static_cast<std::size_t>(find_root(parent, j))] =
            find_root(parent, i);
      }
    }
  }

  // Bounding box per cluster root, expanded by the margin.
  std::vector<CongestionRegion> boxes;
  std::vector<int> box_of(static_cast<std::size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    const int root = find_root(parent, i);
    const int c = cells[static_cast<std::size_t>(i)] % cols;
    const int r = cells[static_cast<std::size_t>(i)] / cols;
    int& slot = box_of[static_cast<std::size_t>(root)];
    if (slot < 0) {
      slot = static_cast<int>(boxes.size());
      boxes.push_back({c, c, r, r, 0});
    }
    CongestionRegion& b = boxes[static_cast<std::size_t>(slot)];
    b.c_lo = std::min(b.c_lo, c);
    b.c_hi = std::max(b.c_hi, c);
    b.r_lo = std::min(b.r_lo, r);
    b.r_hi = std::max(b.r_hi, r);
    ++b.cells;
  }
  for (CongestionRegion& b : boxes) {
    b.c_lo = std::max(0, b.c_lo - margin);
    b.c_hi = std::min(cols - 1, b.c_hi + margin);
    b.r_lo = std::max(0, b.r_lo - margin);
    b.r_hi = std::min(rows - 1, b.r_hi + margin);
  }

  // Transitively merge boxes that overlap after expansion, in index order,
  // until a fixpoint: the output regions are pairwise disjoint.
  bool merged = true;
  while (merged) {
    merged = false;
    for (std::size_t i = 0; i < boxes.size() && !merged; ++i) {
      for (std::size_t j = i + 1; j < boxes.size(); ++j) {
        if (!regions_overlap(boxes[i], boxes[j])) continue;
        boxes[i].c_lo = std::min(boxes[i].c_lo, boxes[j].c_lo);
        boxes[i].c_hi = std::max(boxes[i].c_hi, boxes[j].c_hi);
        boxes[i].r_lo = std::min(boxes[i].r_lo, boxes[j].r_lo);
        boxes[i].r_hi = std::max(boxes[i].r_hi, boxes[j].r_hi);
        boxes[i].cells += boxes[j].cells;
        boxes.erase(boxes.begin() + static_cast<std::ptrdiff_t>(j));
        merged = true;
        break;
      }
    }
  }

  std::sort(boxes.begin(), boxes.end(),
            [](const CongestionRegion& a, const CongestionRegion& b) {
              if (a.r_lo != b.r_lo) return a.r_lo < b.r_lo;
              if (a.c_lo != b.c_lo) return a.c_lo < b.c_lo;
              if (a.r_hi != b.r_hi) return a.r_hi < b.r_hi;
              return a.c_hi < b.c_hi;
            });
  return boxes;
}

}  // namespace ffet::pnr
