// drc.h — placement design-rule checking (signoff-lite).
//
// Independent verification of what the placer promises: every instance on
// the site/row grid, inside the core, no interior overlaps between
// instances, and no movable instance on top of a power-plan blockage
// (Power Tap Cell footprints / nTSV pads).  The flow's tests run this after
// placement; users can run it on any DEF they import.

#pragma once

#include <string>
#include <vector>

#include "pnr/floorplan.h"
#include "pnr/powerplan.h"

namespace ffet::pnr {

struct DrcViolation {
  enum class Kind {
    OutsideCore,
    OffSiteGrid,
    OffRowGrid,
    CellOverlap,
    BlockageOverlap,
  };
  Kind kind;
  std::string a;  ///< offending instance
  std::string b;  ///< second instance (overlaps only)
  geom::Rect where;
};

std::string_view to_string(DrcViolation::Kind k);

struct DrcReport {
  std::vector<DrcViolation> violations;
  bool clean() const { return violations.empty(); }
  int count(DrcViolation::Kind k) const;
  std::string summary() const;
};

/// Check a placed netlist against its floorplan and power plan.
DrcReport check_placement(const netlist::Netlist& nl, const Floorplan& fp,
                          const PowerPlan& pp);

}  // namespace ffet::pnr
