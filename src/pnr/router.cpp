#include "pnr/router.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <numeric>
#include <queue>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "obs/obs.h"
#include "pnr/region.h"
#include "pnr/steiner.h"
#include "runtime/thread_pool.h"

namespace ffet::pnr {

using netlist::NetId;
using netlist::Netlist;
using netlist::PinRef;
using stdcell::PinSide;

namespace {

/// Backside routing capacity consumed by the BSPDN stripes (the FFET routes
/// its PDN on the backside *signal* layers — Sec. IV: the highest PDN layer
/// "is determined by the highest signal routing layer on the backside").
constexpr double kPdnBacksideShare = 0.08;

/// PathFinder history increment per unit of overflow per pass, and the
/// per-pass decay that keeps stale history from forcing ever-longer
/// detours (the classic negotiation-thrash failure mode).
constexpr double kHistoryGain = 0.4;
constexpr double kHistoryDecay = 0.85;

double edge_cost(double base, double use, double cap, double hist) {
  const double load = base + use;
  if (cap <= 0.0) return (1.0 + hist) * 64.0;
  // Multiplicative PathFinder-style cost: congested edges get expensive in
  // proportion to their overload, history biases repeat offenders, and the
  // sub-capacity term keeps a mild preference for empty regions.
  double congestion = load / cap;
  double mult = 1.0 + 0.3 * congestion;
  if (load + 1.0 > cap) {
    const double over = (load + 1.0 - cap) / cap;
    mult += 3.0 * over + 2.0 * over * over;
  }
  return (1.0 + hist) * mult;
}

/// One side's routing grid with separate horizontal/vertical edge pools.
///
/// Beyond the raw capacity/usage/history arrays the grid owns two derived
/// structures the maze search depends on:
///
///   * a per-pass *edge-cost cache* (`h_cost`/`v_cost`): edge_cost() of
///     every edge, rebuilt by rebuild_costs() whenever history changes
///     (pass start) and invalidated per-edge by apply_use_*() when a
///     commit touches that edge.  The search kernels read only the cache,
///     so a settled node costs 4 array loads instead of 4 edge_cost()
///     evaluations;
///   * *incremental overflow totals* (`soft_total`/`hard_total`):
///     apply_use_*() maintains the running sum of per-edge overflow, so
///     the negotiation pass barrier reads overflow in O(1) instead of
///     rescanning every edge of both grids.
struct SideGrid {
  int cols = 0, rows = 0;
  geom::Nm gw = 0, gh = 0;
  double h_cap = 0.0;  ///< capacity per horizontal edge (uniform)
  double v_cap = 0.0;
  double h_cap_hard = 0.0;  ///< h_cap * (1 + dr_slack); beyond it: DRVs
  double v_cap_hard = 0.0;
  // Horizontal edges: (cols-1) x rows; vertical: cols x (rows-1).
  std::vector<double> h_base, h_use, h_hist;
  std::vector<double> v_base, v_use, v_hist;
  std::vector<double> h_cost, v_cost;  ///< per-pass edge-cost cache
  /// Admissible per-direction lower bounds on any edge cost reachable
  /// during the current pass: history is fixed within a pass and
  /// edge_cost() >= (1 + hist) * (cap > 0 ? 1 : 64) for any load, so the
  /// minimum over edges of that expression underestimates every step the
  /// A* heuristic has to account for — even after rip-ups lower loads.
  double floor_h = 1.0, floor_v = 1.0;
  double soft_total = 0.0;  ///< running sum of max(0, load - cap)
  double hard_total = 0.0;  ///< running sum of max(0, load - cap_hard)

  int node(int c, int r) const { return r * cols + c; }
  int col_of(int n) const { return n % cols; }
  int row_of(int n) const { return n / cols; }

  int h_edge(int c, int r) const { return r * (cols - 1) + c; }  // (c,r)-(c+1,r)
  int v_edge(int c, int r) const { return r * cols + c; }        // (c,r)-(c,r+1)

  int clamp_gcell(geom::Point p) const {
    const int c = std::clamp(static_cast<int>(p.x / gw), 0, cols - 1);
    const int r = std::clamp(static_cast<int>(p.y / gh), 0, rows - 1);
    return node(c, r);
  }

  /// Call once after capacities and pin-demand bases are final.
  void finalize(double dr_slack) {
    h_cap_hard = h_cap * (1.0 + dr_slack);
    v_cap_hard = v_cap * (1.0 + dr_slack);
    h_cost.assign(h_base.size(), 0.0);
    v_cost.assign(v_base.size(), 0.0);
    rebuild_costs();
    rescan_overflow();
  }

  /// Rebuild the edge-cost cache and the heuristic floors.  Required
  /// whenever history changes (pass start); within a pass the cache stays
  /// valid because apply_use_*() refreshes every edge a commit touches.
  void rebuild_costs() {
    double min_hist_h = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < h_cost.size(); ++i) {
      h_cost[i] = edge_cost(h_base[i], h_use[i], h_cap, h_hist[i]);
      min_hist_h = std::min(min_hist_h, h_hist[i]);
    }
    double min_hist_v = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < v_cost.size(); ++i) {
      v_cost[i] = edge_cost(v_base[i], v_use[i], v_cap, v_hist[i]);
      min_hist_v = std::min(min_hist_v, v_hist[i]);
    }
    floor_h = h_cost.empty() ? 1.0
                             : (1.0 + min_hist_h) * (h_cap > 0.0 ? 1.0 : 64.0);
    floor_v = v_cost.empty() ? 1.0
                             : (1.0 + min_hist_v) * (v_cap > 0.0 ? 1.0 : 64.0);
  }

  void apply_use_h(std::size_t i, double delta) {
    const double before = h_base[i] + h_use[i];
    h_use[i] += delta;
    const double after = before + delta;
    soft_total += std::max(0.0, after - h_cap) - std::max(0.0, before - h_cap);
    hard_total +=
        std::max(0.0, after - h_cap_hard) - std::max(0.0, before - h_cap_hard);
    h_cost[i] = edge_cost(h_base[i], h_use[i], h_cap, h_hist[i]);
  }
  void apply_use_v(std::size_t i, double delta) {
    const double before = v_base[i] + v_use[i];
    v_use[i] += delta;
    const double after = before + delta;
    soft_total += std::max(0.0, after - v_cap) - std::max(0.0, before - v_cap);
    hard_total +=
        std::max(0.0, after - v_cap_hard) - std::max(0.0, before - v_cap_hard);
    v_cost[i] = edge_cost(v_base[i], v_use[i], v_cap, v_hist[i]);
  }

  /// Would one more net on this edge push it beyond the detail-route
  /// slack?  The windowed A* attempts prune such edges (negotiation can
  /// absorb *soft* overflow; hard overflow is a DRV) and fall back to an
  /// unpruned full-grid search if no clean path exists.
  bool h_full(std::size_t i) const {
    return h_base[i] + h_use[i] + 1.0 > h_cap_hard;
  }
  bool v_full(std::size_t i) const {
    return v_base[i] + v_use[i] + 1.0 > v_cap_hard;
  }

  /// Soft overflow (absorbed by the detail router up to dr_slack).  O(1):
  /// maintained incrementally; the max() guards last-ulp drift from the
  /// running +/- updates when the true total is zero.
  double overflow() const { return std::max(0.0, soft_total); }

  /// Overflow beyond the detail-route-absorbable slack — the DRV source.
  double hard_overflow() const { return std::max(0.0, hard_total); }

  /// Recompute the running totals from scratch (initialization and the
  /// best-solution restore; never on the per-pass barrier).
  void rescan_overflow() {
    soft_total = 0.0;
    hard_total = 0.0;
    for (std::size_t i = 0; i < h_use.size(); ++i) {
      const double load = h_base[i] + h_use[i];
      soft_total += std::max(0.0, load - h_cap);
      hard_total += std::max(0.0, load - h_cap_hard);
    }
    for (std::size_t i = 0; i < v_use.size(); ++i) {
      const double load = v_base[i] + v_use[i];
      soft_total += std::max(0.0, load - v_cap);
      hard_total += std::max(0.0, load - v_cap_hard);
    }
  }

  void clear_use() {
    std::fill(h_use.begin(), h_use.end(), 0.0);
    std::fill(v_use.begin(), v_use.end(), 0.0);
    rescan_overflow();
  }
};

/// A private usage overlay for the stage-2 region-batched reroute: during
/// the snapshot-search phase of a pass every congestion region routes its
/// 2-pin subnets against the *frozen* grid plus this per-region delta of
/// the paths the region has already picked, so subnets of one region see
/// each other while disjoint regions stay independent.  Keyed by edge
/// index per direction; commits to the real grid happen only at the serial
/// barrier.  (The overlay counts every path crossing, deliberately ignoring
/// same-net refcount sharing — a conservative, deterministic approximation
/// that only ever over-prices an edge.)
struct UseOverlay {
  std::unordered_map<int, double> h, v;

  double h_delta(std::size_t e) const {
    const auto it = h.find(static_cast<int>(e));
    return it == h.end() ? 0.0 : it->second;
  }
  double v_delta(std::size_t e) const {
    const auto it = v.find(static_cast<int>(e));
    return it == v.end() ? 0.0 : it->second;
  }
};

/// Route one subnet as a Steiner-ish tree: iteratively connect the nearest
/// unconnected sink to the existing tree with a tree-targeted maze search
/// (zero-cost sources at all tree nodes).  Two kernels share the search
/// state:
///
///   * connect_legacy(): the original unbounded full-grid Dijkstra
///     (std::priority_queue, live edge_cost() calls) — the QoR baseline
///     and FFET_ROUTE_ENGINE=legacy escape hatch;
///   * connect_astar(): windowed A* — admissible Manhattan heuristic
///     scaled by the grid's per-pass cost floors, deterministic
///     (f, g, node-id) tie-breaking, a search window around the bounding
///     box of {tree, target} that doubles its margin and finally opens to
///     the full grid when no hard-overflow-free path exists inside it,
///     cached edge costs, and a 4-ary open list.
struct PathRouter {
  SideGrid& g;
  std::vector<double> dist;
  std::vector<int> prev;
  std::vector<int> stamp_of;
  std::vector<int> tree_stamp_of;  ///< O(1) tree membership (stamped)
  int stamp = 0;
  int tree_stamp = 0;
  long settled = 0;     ///< nodes settled across all searches (both kernels)
  long expansions = 0;  ///< A* window retries (x2 margin or full grid)
  /// Stage-2 snapshot-search usage overlay; when set, the A* kernel prices
  /// and prunes edges as if the overlay deltas were already committed.
  /// The heuristic floors stay admissible: deltas only add load, and
  /// edge_cost() is monotone in load.
  const UseOverlay* overlay = nullptr;

  double h_weight(std::size_t e) const {
    if (overlay == nullptr) return g.h_cost[e];
    const double d = overlay->h_delta(e);
    if (d == 0.0) return g.h_cost[e];
    return edge_cost(g.h_base[e], g.h_use[e] + d, g.h_cap, g.h_hist[e]);
  }
  double v_weight(std::size_t e) const {
    if (overlay == nullptr) return g.v_cost[e];
    const double d = overlay->v_delta(e);
    if (d == 0.0) return g.v_cost[e];
    return edge_cost(g.v_base[e], g.v_use[e] + d, g.v_cap, g.v_hist[e]);
  }
  bool h_blocked(std::size_t e) const {
    const double d = overlay == nullptr ? 0.0 : overlay->h_delta(e);
    return g.h_base[e] + g.h_use[e] + d + 1.0 > g.h_cap_hard;
  }
  bool v_blocked(std::size_t e) const {
    const double d = overlay == nullptr ? 0.0 : overlay->v_delta(e);
    return g.v_base[e] + g.v_use[e] + d + 1.0 > g.v_cap_hard;
  }

  /// 4-ary min-heap keyed (f, g, node-id): lower f first, then *higher* g
  /// (ties on f prefer nodes closer to the target), then lower node id —
  /// a total order, so the open list is deterministic regardless of
  /// insertion timing.  Flatter than a binary heap: fewer cache-missing
  /// levels per sift on the push-heavy maze workload.
  struct OpenList {
    struct Item {
      double f = 0.0;
      double g = 0.0;
      int n = 0;
    };
    std::vector<Item> v;

    static bool before(const Item& a, const Item& b) {
      if (a.f != b.f) return a.f < b.f;
      if (a.g != b.g) return a.g > b.g;
      return a.n < b.n;
    }
    bool empty() const { return v.empty(); }
    void clear() { v.clear(); }
    void reserve(std::size_t n) { v.reserve(n); }
    void push(Item it) {
      v.push_back(it);
      std::size_t i = v.size() - 1;
      while (i > 0) {
        const std::size_t p = (i - 1) / 4;
        if (!before(v[i], v[p])) break;
        std::swap(v[i], v[p]);
        i = p;
      }
    }
    Item pop() {
      const Item top = v.front();
      v.front() = v.back();
      v.pop_back();
      const std::size_t n = v.size();
      std::size_t i = 0;
      while (true) {
        const std::size_t c0 = 4 * i + 1;
        if (c0 >= n) break;
        std::size_t best = i;
        const std::size_t c_end = std::min(c0 + 4, n);
        for (std::size_t c = c0; c < c_end; ++c) {
          if (before(v[c], v[best])) best = c;
        }
        if (best == i) break;
        std::swap(v[i], v[best]);
        i = best;
      }
      return top;
    }
  };
  OpenList open;

  explicit PathRouter(SideGrid& grid)
      : g(grid),
        dist(static_cast<std::size_t>(grid.cols * grid.rows)),
        prev(dist.size(), -1),
        stamp_of(dist.size(), -1),
        tree_stamp_of(dist.size(), -1) {
    open.reserve(256);
  }

  void tree_begin() { ++tree_stamp; }
  void tree_add(int n) { tree_stamp_of[static_cast<std::size_t>(n)] = tree_stamp; }
  bool in_tree(int n) const {
    return tree_stamp_of[static_cast<std::size_t>(n)] == tree_stamp;
  }

  /// Dijkstra from every node in `tree` (cost 0) until `target` is
  /// settled.  Returns the path target -> tree as node list (both
  /// endpoints included).
  std::vector<int> connect_legacy(const std::vector<int>& tree, int target) {
    ++stamp;
    using QE = std::pair<double, int>;
    std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
    for (int t : tree) {
      dist[static_cast<std::size_t>(t)] = 0.0;
      prev[static_cast<std::size_t>(t)] = -1;
      stamp_of[static_cast<std::size_t>(t)] = stamp;
      pq.push({0.0, t});
    }
    while (!pq.empty()) {
      const auto [d, n] = pq.top();
      pq.pop();
      if (d > dist[static_cast<std::size_t>(n)] ||
          stamp_of[static_cast<std::size_t>(n)] != stamp) {
        continue;
      }
      ++settled;
      if (n == target) break;
      const int c = g.col_of(n), r = g.row_of(n);
      auto relax = [&](int nn, double w) {
        const auto ni = static_cast<std::size_t>(nn);
        if (stamp_of[ni] != stamp || d + w < dist[ni]) {
          stamp_of[ni] = stamp;
          dist[ni] = d + w;
          prev[ni] = n;
          pq.push({d + w, nn});
        }
      };
      if (c + 1 < g.cols) {
        const int e = g.h_edge(c, r);
        relax(g.node(c + 1, r),
              edge_cost(g.h_base[static_cast<std::size_t>(e)],
                        g.h_use[static_cast<std::size_t>(e)], g.h_cap,
                        g.h_hist[static_cast<std::size_t>(e)]));
      }
      if (c - 1 >= 0) {
        const int e = g.h_edge(c - 1, r);
        relax(g.node(c - 1, r),
              edge_cost(g.h_base[static_cast<std::size_t>(e)],
                        g.h_use[static_cast<std::size_t>(e)], g.h_cap,
                        g.h_hist[static_cast<std::size_t>(e)]));
      }
      if (r + 1 < g.rows) {
        const int e = g.v_edge(c, r);
        relax(g.node(c, r + 1),
              edge_cost(g.v_base[static_cast<std::size_t>(e)],
                        g.v_use[static_cast<std::size_t>(e)], g.v_cap,
                        g.v_hist[static_cast<std::size_t>(e)]));
      }
      if (r - 1 >= 0) {
        const int e = g.v_edge(c, r - 1);
        relax(g.node(c, r - 1),
              edge_cost(g.v_base[static_cast<std::size_t>(e)],
                        g.v_use[static_cast<std::size_t>(e)], g.v_cap,
                        g.v_hist[static_cast<std::size_t>(e)]));
      }
    }
    return walk_back(target);
  }

  /// One bounded A* attempt inside [c_lo,c_hi]x[r_lo,r_hi].  With `prune`
  /// set, edges already at their hard capacity are not crossed (a clean
  /// path is demanded).  Returns true when `target` was settled.
  bool search_window(const std::vector<int>& tree, int target, int c_lo,
                     int c_hi, int r_lo, int r_hi, bool prune) {
    ++stamp;
    open.clear();
    const double fh = g.floor_h;
    const double fv = g.floor_v;
    const int tc = g.col_of(target), tr = g.row_of(target);
    auto heur = [&](int c, int r) {
      return fh * static_cast<double>(std::abs(c - tc)) +
             fv * static_cast<double>(std::abs(r - tr));
    };
    for (int t : tree) {
      const auto ti = static_cast<std::size_t>(t);
      dist[ti] = 0.0;
      prev[ti] = -1;
      stamp_of[ti] = stamp;
      open.push({heur(g.col_of(t), g.row_of(t)), 0.0, t});
    }
    while (!open.empty()) {
      const OpenList::Item it = open.pop();
      const int n = it.n;
      const auto ni = static_cast<std::size_t>(n);
      if (stamp_of[ni] != stamp || it.g > dist[ni]) continue;
      ++settled;
      if (n == target) return true;
      const int c = g.col_of(n), r = g.row_of(n);
      const double d = it.g;
      auto relax = [&](int nc, int nr, double w) {
        const int nn = g.node(nc, nr);
        const auto nni = static_cast<std::size_t>(nn);
        const double nd = d + w;
        if (stamp_of[nni] != stamp || nd < dist[nni]) {
          stamp_of[nni] = stamp;
          dist[nni] = nd;
          prev[nni] = n;
          open.push({nd + heur(nc, nr), nd, nn});
        }
      };
      if (c + 1 <= c_hi) {
        const auto e = static_cast<std::size_t>(g.h_edge(c, r));
        if (!prune || !h_blocked(e)) relax(c + 1, r, h_weight(e));
      }
      if (c - 1 >= c_lo) {
        const auto e = static_cast<std::size_t>(g.h_edge(c - 1, r));
        if (!prune || !h_blocked(e)) relax(c - 1, r, h_weight(e));
      }
      if (r + 1 <= r_hi) {
        const auto e = static_cast<std::size_t>(g.v_edge(c, r));
        if (!prune || !v_blocked(e)) relax(c, r + 1, v_weight(e));
      }
      if (r - 1 >= r_lo) {
        const auto e = static_cast<std::size_t>(g.v_edge(c, r - 1));
        if (!prune || !v_blocked(e)) relax(c, r - 1, v_weight(e));
      }
    }
    return false;
  }

  /// Windowed A*: bound the search to the bbox of {tree, target} plus a
  /// margin; if no hard-overflow-free path exists inside, double the
  /// margin, then fall back to an unpruned full-grid search (which always
  /// succeeds on a connected grid), so connectivity never depends on the
  /// window policy.
  std::vector<int> connect_astar(const std::vector<int>& tree, int target,
                                 int window_margin) {
    int bc_lo = g.col_of(target), bc_hi = bc_lo;
    int br_lo = g.row_of(target), br_hi = br_lo;
    for (int t : tree) {
      const int c = g.col_of(t), r = g.row_of(t);
      bc_lo = std::min(bc_lo, c);
      bc_hi = std::max(bc_hi, c);
      br_lo = std::min(br_lo, r);
      br_hi = std::max(br_hi, r);
    }
    int margin = std::max(1, window_margin);
    int prev_c_lo = -1, prev_c_hi = -1, prev_r_lo = -1, prev_r_hi = -1;
    bool searched_before = false;
    for (int attempt = 0;; ++attempt) {
      int c_lo, c_hi, r_lo, r_hi;
      const bool prune = attempt < 2;
      if (prune) {
        c_lo = std::max(0, bc_lo - margin);
        c_hi = std::min(g.cols - 1, bc_hi + margin);
        r_lo = std::max(0, br_lo - margin);
        r_hi = std::min(g.rows - 1, br_hi + margin);
        margin *= 2;
        // A re-attempt over the identical (clamped) window would fail
        // identically; skip straight to the next escalation level.
        if (searched_before && c_lo == prev_c_lo && c_hi == prev_c_hi &&
            r_lo == prev_r_lo && r_hi == prev_r_hi) {
          continue;
        }
      } else {
        c_lo = 0;
        c_hi = g.cols - 1;
        r_lo = 0;
        r_hi = g.rows - 1;
      }
      if (searched_before) ++expansions;
      if (search_window(tree, target, c_lo, c_hi, r_lo, r_hi, prune)) {
        return walk_back(target);
      }
      if (!prune) return {};  // full grid, unpruned: target unreachable
      prev_c_lo = c_lo;
      prev_c_hi = c_hi;
      prev_r_lo = r_lo;
      prev_r_hi = r_hi;
      searched_before = true;
    }
  }

  /// Hard-pruned-only variant of connect_astar(): one windowed attempt,
  /// then one full-grid attempt, both refusing edges at hard capacity.
  /// Returns an empty path when no hard-clean route exists.  Because it
  /// never crosses a saturated edge it can never *create* hard overflow,
  /// which makes it safe for strict-improvement repair.
  std::vector<int> connect_pruned(const std::vector<int>& tree, int target,
                                  int window_margin) {
    int bc_lo = g.col_of(target), bc_hi = bc_lo;
    int br_lo = g.row_of(target), br_hi = br_lo;
    for (int t : tree) {
      const int c = g.col_of(t), r = g.row_of(t);
      bc_lo = std::min(bc_lo, c);
      bc_hi = std::max(bc_hi, c);
      br_lo = std::min(br_lo, r);
      br_hi = std::max(br_hi, r);
    }
    const int margin = std::max(1, window_margin);
    const int c_lo = std::max(0, bc_lo - margin);
    const int c_hi = std::min(g.cols - 1, bc_hi + margin);
    const int r_lo = std::max(0, br_lo - margin);
    const int r_hi = std::min(g.rows - 1, br_hi + margin);
    if (search_window(tree, target, c_lo, c_hi, r_lo, r_hi, true)) {
      return walk_back(target);
    }
    const bool was_full =
        c_lo == 0 && r_lo == 0 && c_hi == g.cols - 1 && r_hi == g.rows - 1;
    if (!was_full) {
      ++expansions;
      if (search_window(tree, target, 0, g.cols - 1, 0, g.rows - 1, true)) {
        return walk_back(target);
      }
    }
    return {};
  }

 private:
  std::vector<int> walk_back(int target) const {
    std::vector<int> path;
    int n = target;
    if (stamp_of[static_cast<std::size_t>(n)] != stamp) return path;
    while (n != -1) {
      path.push_back(n);
      n = prev[static_cast<std::size_t>(n)];
    }
    return path;
  }
};

/// Apply (or remove, sign=-1) a route's usage to the grid.  Goes through
/// SideGrid::apply_use_*() so the edge-cost cache and the incremental
/// overflow totals stay consistent.
void commit(SideGrid& g, const std::vector<GEdge>& edges, double sign) {
  for (const GEdge& e : edges) {
    const int a = std::min(e.a, e.b);
    const int b = std::max(e.a, e.b);
    const int ca = g.col_of(a), ra = g.row_of(a);
    if (b == a + 1) {
      g.apply_use_h(static_cast<std::size_t>(g.h_edge(ca, ra)), sign);
    } else {
      g.apply_use_v(static_cast<std::size_t>(g.v_edge(ca, ra)), sign);
    }
  }
}

/// A subnet to route: source + sinks on one side.
struct SubNet {
  NetId net = netlist::kNoNet;
  Side side = Side::Front;
  int source = 0;
  std::vector<int> sinks;
  geom::Nm hpwl = 0;
};

RouteEngine resolve_engine(RouteEngine requested) {
  if (requested != RouteEngine::Auto) return requested;
  if (const char* env = std::getenv("FFET_ROUTE_ENGINE")) {
    if (std::strcmp(env, "legacy") == 0) return RouteEngine::Legacy;
    if (std::strcmp(env, "astar") == 0) return RouteEngine::Astar;
    if (std::strcmp(env, "astar2") == 0) return RouteEngine::Astar2;
  }
  return RouteEngine::Astar2;
}

int sidx(Side s) { return s == Side::Front ? 0 : 1; }

/// Everything derived from the floorplan + pin landscape before any net is
/// routed: the two per-side grids with pin-access demand folded into the
/// bases, and the per-side pin totals for the access-DRV check.  Shared by
/// the full route and the incremental reroute so both see identical
/// resources.
struct GridSetup {
  std::array<SideGrid, 2> grids;
  std::array<long, 2> pin_totals{0, 0};
  int gcols = 0;
  int grows = 0;
  geom::Nm gsize = 0;
};

GridSetup build_grid_setup(const Netlist& nl, const Floorplan& fp,
                           const tech::Technology& tech,
                           const RouteOptions& options) {
  GridSetup gs;
  gs.gsize = options.gcell_tracks * tech.track_pitch();
  gs.gcols = std::max(
      1, static_cast<int>((fp.core.width() + gs.gsize - 1) / gs.gsize));
  gs.grows = std::max(
      1, static_cast<int>((fp.core.height() + gs.gsize - 1) / gs.gsize));

  // --- build the per-side grids ------------------------------------------------
  for (Side s : {Side::Front, Side::Back}) {
    SideGrid& g = gs.grids[static_cast<std::size_t>(sidx(s))];
    g.cols = gs.gcols;
    g.rows = gs.grows;
    g.gw = gs.gsize;
    g.gh = gs.gsize;
    double hc = 0.0, vc = 0.0;
    for (const tech::MetalLayer* l : tech.routing_layers(s)) {
      const int tracks = static_cast<int>(gs.gsize / l->pitch);
      if (l->preferred_dir == geom::Dir::Horizontal) {
        hc += tracks;
      } else {
        vc += tracks;
      }
    }
    g.h_cap = hc * options.capacity_factor;
    g.v_cap = vc * options.capacity_factor;
    if (s == Side::Back && g.h_cap > 0.0) {
      // BSPDN shares the backside signal layers.
      g.h_cap *= (1.0 - kPdnBacksideShare);
      g.v_cap *= (1.0 - kPdnBacksideShare);
    }
    g.h_base.assign(static_cast<std::size_t>((g.cols - 1) * g.rows), 0.0);
    g.h_use = g.h_base;
    g.h_hist = g.h_base;
    g.v_base.assign(static_cast<std::size_t>(g.cols * (g.rows - 1)), 0.0);
    g.v_use = g.v_base;
    g.v_hist = g.v_base;
  }

  // --- pin-access demand -------------------------------------------------------
  // Every pin consumes a share of the routing resources around its gcell on
  // the side(s) where its landing metal lives.  This is where FFET FM12's
  // "higher pin density ... due to FFET's smaller cell area" (Fig. 8c)
  // penalty enters, and what dual-sided pin redistribution relieves.
  auto add_pin_demand = [&](Side s, geom::Point pos) {
    SideGrid& g = gs.grids[static_cast<std::size_t>(sidx(s))];
    ++gs.pin_totals[static_cast<std::size_t>(sidx(s))];
    if (g.h_cap <= 0.0 && g.v_cap <= 0.0) return;  // no layers: no wiring
    const int n = g.clamp_gcell(pos);
    const int c = g.col_of(n), r = g.row_of(n);
    const double d = options.pin_access_demand / 2.0;
    if (c > 0) g.h_base[static_cast<std::size_t>(g.h_edge(c - 1, r))] += d;
    if (c + 1 < g.cols) g.h_base[static_cast<std::size_t>(g.h_edge(c, r))] += d;
    if (r > 0) g.v_base[static_cast<std::size_t>(g.v_edge(c, r - 1))] += d;
    if (r + 1 < g.rows) g.v_base[static_cast<std::size_t>(g.v_edge(c, r))] += d;
  };
  for (int i = 0; i < nl.num_instances(); ++i) {
    const netlist::Instance& inst = nl.instance(i);
    if (inst.type->physical_only()) continue;
    const auto pin_nets = nl.pin_nets(i);
    for (std::size_t p = 0; p < pin_nets.size(); ++p) {
      if (pin_nets[p] == netlist::kNoNet) continue;
      const auto& pin = inst.type->pins()[p];
      const geom::Point pos = inst.pos + pin.offset;
      // Per-instance side (pin_side consults the ECO overrides; identical
      // to the master's side when none are set).
      switch (nl.pin_side({i, static_cast<int>(p)})) {
        case PinSide::Front: add_pin_demand(Side::Front, pos); break;
        case PinSide::Back: add_pin_demand(Side::Back, pos); break;
        case PinSide::Both:
          add_pin_demand(Side::Front, pos);
          add_pin_demand(Side::Back, pos);
          break;
      }
    }
  }
  // Bases are final: derive hard capacities, the edge-cost cache, and the
  // incremental overflow totals.
  for (SideGrid& g : gs.grids) g.finalize(options.dr_slack);
  return gs;
}

// --- Algorithm 1: decompose nets into per-side subnets ------------------------
std::vector<SubNet> decompose_subnets(const Netlist& nl,
                                      const tech::Technology& tech,
                                      GridSetup& gs) {
  const bool has_back = tech.num_routing_layers(Side::Back) > 0;
  std::vector<SubNet> subnets;
  for (int n = 0; n < nl.num_nets(); ++n) {
    const netlist::Net& net = nl.net(n);
    // Source gcell: driving cell pin or input port.
    geom::Point src_pos;
    PinSide src_side = PinSide::Front;
    if (net.driver.inst != netlist::kNoInst) {
      src_pos = nl.pin_position(net.driver);
      src_side = nl.pin_side(net.driver);
    } else if (net.port >= 0) {
      src_pos = nl.port(net.port).pos;
      // IO pads: FFET pads land on the backside bump stack but expose
      // access on both sides (the pad via stack crosses the wafer);
      // CFET pads are frontside-only.
      src_side = has_back ? PinSide::Both : PinSide::Front;
    } else {
      continue;  // dangling net
    }

    std::array<std::vector<geom::Point>, 2> side_sinks;
    for (const PinRef& sref : net.sinks) {
      const PinSide ps = nl.pin_side(sref);
      const Side s = ps == PinSide::Back ? Side::Back : Side::Front;
      side_sinks[static_cast<std::size_t>(sidx(s))].push_back(
          nl.pin_position(sref));
    }
    if (net.port >= 0 && !nl.port(net.port).is_input &&
        net.driver.inst != netlist::kNoInst) {
      side_sinks[0].push_back(nl.port(net.port).pos);  // PO pad, frontside
    }

    for (Side s : {Side::Front, Side::Back}) {
      const auto& sinks = side_sinks[static_cast<std::size_t>(sidx(s))];
      if (sinks.empty()) continue;
      if (s == Side::Back) {
        if (!has_back) {
          throw std::runtime_error(
              "net " + nl.net_name(n) +
              " has backside sinks but the technology has no backside "
              "routing layers (no bridging cells in this flow)");
        }
        if (src_side != PinSide::Both) {
          throw std::runtime_error(
              "net " + nl.net_name(n) +
              " has backside sinks but its source pin is frontside-only");
        }
      }
      SideGrid& g = gs.grids[static_cast<std::size_t>(sidx(s))];
      SubNet sn;
      sn.net = n;
      sn.side = s;
      sn.source = g.clamp_gcell(src_pos);
      geom::Rect bbox{src_pos, src_pos};
      for (const geom::Point& p : sinks) {
        sn.sinks.push_back(g.clamp_gcell(p));
        bbox = bbox.united({p, p});
      }
      sn.hpwl = bbox.width() + bbox.height();
      subnets.push_back(std::move(sn));
    }
  }
  return subnets;
}

/// Route one subnet on its side's grid and commit the usage (the shared
/// inner kernel of route_design and reroute_nets).
void route_one_subnet(RouteEngine engine, const RouteOptions& options,
                      std::vector<SubNet>& subnets,
                      std::array<SideGrid, 2>& grids,
                      std::array<PathRouter, 2>& routers,
                      std::vector<std::vector<GEdge>>& route_edges,
                      std::size_t si) {
  SubNet& sn = subnets[si];
  SideGrid& g = grids[static_cast<std::size_t>(sidx(sn.side))];
  PathRouter& pr = routers[static_cast<std::size_t>(sidx(sn.side))];
  std::vector<GEdge>& edges = route_edges[si];
  edges.clear();
  pr.tree_begin();
  pr.tree_add(sn.source);
  std::vector<int> tree = {sn.source};
  // Connect sinks nearest-first.
  std::vector<int> todo = sn.sinks;
  std::sort(todo.begin(), todo.end(), [&](int a, int b) {
    const auto da = std::abs(g.col_of(a) - g.col_of(sn.source)) +
                    std::abs(g.row_of(a) - g.row_of(sn.source));
    const auto db = std::abs(g.col_of(b) - g.col_of(sn.source)) +
                    std::abs(g.row_of(b) - g.row_of(sn.source));
    if (da != db) return da < db;
    return a < b;
  });
  for (int sink : todo) {
    if (pr.in_tree(sink)) continue;
    const std::vector<int> path =
        engine == RouteEngine::Legacy
            ? pr.connect_legacy(tree, sink)
            : pr.connect_astar(tree, sink, options.window_margin);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      edges.push_back({path[i], path[i + 1]});
    }
    // Grow the tree by the *new* nodes only: the joint node is already a
    // member, and a path may revisit gcells the tree owns — appending
    // those again used to inflate the search seed set quadratically on
    // high-fanout nets.
    for (int node : path) {
      if (!pr.in_tree(node)) {
        pr.tree_add(node);
        tree.push_back(node);
      }
    }
  }
  commit(g, edges, +1.0);
}

bool subnet_crosses_overflow(const std::vector<SubNet>& subnets,
                             const std::array<SideGrid, 2>& grids,
                             const std::vector<std::vector<GEdge>>& route_edges,
                             std::size_t si) {
  const SideGrid& g =
      grids[static_cast<std::size_t>(sidx(subnets[si].side))];
  for (const GEdge& e : route_edges[si]) {
    const int a = std::min(e.a, e.b), b = std::max(e.a, e.b);
    const int c = g.col_of(a), r = g.row_of(a);
    if (b == a + 1) {
      const auto i = static_cast<std::size_t>(g.h_edge(c, r));
      if (g.h_base[i] + g.h_use[i] > g.h_cap) return true;
    } else {
      const auto i = static_cast<std::size_t>(g.v_edge(c, r));
      if (g.v_base[i] + g.v_use[i] > g.v_cap) return true;
    }
  }
  return false;
}

/// Per-pass PathFinder history update: decay, then bump every overflowed
/// edge in proportion to its overload (shared by all negotiation loops).
void decay_history(SideGrid& g) {
  for (std::size_t i = 0; i < g.h_use.size(); ++i) {
    g.h_hist[i] *= kHistoryDecay;
    const double o = g.h_base[i] + g.h_use[i] - g.h_cap;
    if (o > 0) g.h_hist[i] += kHistoryGain * o / g.h_cap;
  }
  for (std::size_t i = 0; i < g.v_use.size(); ++i) {
    g.v_hist[i] *= kHistoryDecay;
    const double o = g.v_base[i] + g.v_use[i] - g.v_cap;
    if (o > 0) g.v_hist[i] += kHistoryGain * o / g.v_cap;
  }
}

// --- stage 2 (Astar2): Steiner 2-pin decomposition + region negotiation -------

/// One 2-pin subnet: a segment of its parent per-side subnet's Steiner
/// topology, routed independently of its siblings.
struct TwoPin {
  int parent = 0;  ///< index into the SubNet list
  int a = 0;       ///< endpoint gcell nodes
  int b = 0;
  int len = 0;     ///< Manhattan endpoint distance (route-order key)
};

/// Per-side stage-2 state: the 2-pin subnets, their committed paths, and
/// the gcell -> passing-subnets color map that lets a congestion region
/// collect the subnets crossing it without scanning every path.
struct TwoPinSide {
  std::vector<TwoPin> tps;
  std::vector<std::vector<int>> paths;          ///< committed node lists
  std::vector<std::vector<int>> cell_tps;       ///< gcell -> tp ids
  std::vector<std::size_t> route_order;         ///< (len, id) ascending
};

/// (direction, edge index) of the grid edge between adjacent nodes u, v;
/// direction 0 is horizontal, 1 vertical.
std::pair<int, int> edge_key(const SideGrid& g, int u, int v) {
  const int a = std::min(u, v);
  const int b = std::max(u, v);
  const int c = g.col_of(a), r = g.row_of(a);
  if (b == a + 1) return {0, g.h_edge(c, r)};
  return {1, g.v_edge(c, r)};
}

/// Commit a 2-pin path: bump the parent subnet's per-edge refcounts (the
/// grid sees +1 only on a 0 -> 1 transition, so overlapping paths of one
/// net occupy one track, exactly like the stage-1 tree commit), and color
/// every gcell the path crosses with the subnet id.
void commit_tp(SideGrid& g, TwoPinSide& ts,
               std::vector<std::unordered_map<int, int>>& edge_refs,
               std::size_t tp_id, std::vector<int> path) {
  auto& refs = edge_refs[static_cast<std::size_t>(ts.tps[tp_id].parent)];
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto [dir, e] = edge_key(g, path[i], path[i + 1]);
    const int key = (e << 1) | dir;
    if (++refs[key] == 1) {
      if (dir == 0) {
        g.apply_use_h(static_cast<std::size_t>(e), +1.0);
      } else {
        g.apply_use_v(static_cast<std::size_t>(e), +1.0);
      }
    }
  }
  for (int n : path) {
    ts.cell_tps[static_cast<std::size_t>(n)].push_back(
        static_cast<int>(tp_id));
  }
  ts.paths[tp_id] = std::move(path);
}

/// Undo commit_tp: decrement refcounts (grid sees -1 only on 1 -> 0) and
/// swap-remove the subnet from the color map of every crossed gcell.
void rip_tp(SideGrid& g, TwoPinSide& ts,
            std::vector<std::unordered_map<int, int>>& edge_refs,
            std::size_t tp_id) {
  std::vector<int>& path = ts.paths[tp_id];
  auto& refs = edge_refs[static_cast<std::size_t>(ts.tps[tp_id].parent)];
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto [dir, e] = edge_key(g, path[i], path[i + 1]);
    const int key = (e << 1) | dir;
    const auto it = refs.find(key);
    if (--it->second == 0) {
      refs.erase(it);
      if (dir == 0) {
        g.apply_use_h(static_cast<std::size_t>(e), -1.0);
      } else {
        g.apply_use_v(static_cast<std::size_t>(e), -1.0);
      }
    }
  }
  for (int n : path) {
    std::vector<int>& cell = ts.cell_tps[static_cast<std::size_t>(n)];
    for (std::size_t i = 0; i < cell.size(); ++i) {
      if (cell[i] == static_cast<int>(tp_id)) {
        cell[i] = cell.back();
        cell.pop_back();
        break;
      }
    }
  }
  path.clear();
}

/// Record a fresh path in a region's private overlay (every crossing
/// counts; see UseOverlay).
void overlay_add(UseOverlay& ov, const SideGrid& g,
                 const std::vector<int>& path) {
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto [dir, e] = edge_key(g, path[i], path[i + 1]);
    (dir == 0 ? ov.h : ov.v)[e] += 1.0;
  }
}

/// Monotonic L/Z fast path between adjacent-or-distant gcells a and b: try
/// the two L-shapes and every single-intermediate-bend Z-shape inside the
/// bounding box, and return the cheapest candidate that is *clean* — no
/// edge it crosses would exceed its soft capacity.  Monotone paths never
/// detour, every edge read is two array loads, and no search state is
/// touched, so the common uncongested subnet skips the A* heap entirely.
/// Returns an empty path when no clean monotone candidate exists (the
/// caller falls back to A*, which may detour around the congestion).
std::vector<int> monotone_fast_path(const SideGrid& g, const UseOverlay* ov,
                                    int a, int b) {
  const int ca = g.col_of(a), ra = g.row_of(a);
  const int cb = g.col_of(b), rb = g.row_of(b);
  const int dc = std::abs(ca - cb);
  const int dr = std::abs(ra - rb);

  // Cost + cleanliness of straight runs; `clean` is cleared, never set.
  auto h_run = [&](int r, int c_from, int c_to, bool& clean) {
    double cost = 0.0;
    const int lo = std::min(c_from, c_to), hi = std::max(c_from, c_to);
    for (int c = lo; c < hi; ++c) {
      const auto e = static_cast<std::size_t>(g.h_edge(c, r));
      const double d = ov == nullptr ? 0.0 : ov->h_delta(e);
      if (g.h_base[e] + g.h_use[e] + d + 1.0 > g.h_cap) clean = false;
      cost += d == 0.0 ? g.h_cost[e]
                       : edge_cost(g.h_base[e], g.h_use[e] + d, g.h_cap,
                                   g.h_hist[e]);
    }
    return cost;
  };
  auto v_run = [&](int c, int r_from, int r_to, bool& clean) {
    double cost = 0.0;
    const int lo = std::min(r_from, r_to), hi = std::max(r_from, r_to);
    for (int r = lo; r < hi; ++r) {
      const auto e = static_cast<std::size_t>(g.v_edge(c, r));
      const double d = ov == nullptr ? 0.0 : ov->v_delta(e);
      if (g.v_base[e] + g.v_use[e] + d + 1.0 > g.v_cap) clean = false;
      cost += d == 0.0 ? g.v_cost[e]
                       : edge_cost(g.v_base[e], g.v_use[e] + d, g.v_cap,
                                   g.v_hist[e]);
    }
    return cost;
  };

  double best_cost = std::numeric_limits<double>::infinity();
  int best_x = -1, best_y = -1;  // HVH bend column / VHV bend row

  // Degenerate straight segments evaluate as a single run via x == ca.
  // Full enumeration is O((dc + dr)^2); long segments (rare — Steiner
  // segments are short) check only the Ls and the centre bends.
  const bool sparse = dc + dr > 96;
  auto try_hvh = [&](int x) {
    bool clean = true;
    double cost = h_run(ra, ca, x, clean) + v_run(x, ra, rb, clean) +
                  h_run(rb, x, cb, clean);
    if (clean && cost < best_cost) {
      best_cost = cost;
      best_x = x;
      best_y = -1;
    }
  };
  auto try_vhv = [&](int y) {
    bool clean = true;
    double cost = v_run(ca, ra, y, clean) + h_run(y, ca, cb, clean) +
                  v_run(cb, y, rb, clean);
    if (clean && cost < best_cost) {
      best_cost = cost;
      best_x = -1;
      best_y = y;
    }
  };
  if (sparse) {
    try_hvh(cb);
    try_hvh(ca);
    if (dc > 1) try_hvh((ca + cb) / 2);
    if (dr > 1) try_vhv((ra + rb) / 2);
  } else {
    const int c_lo = std::min(ca, cb), c_hi = std::max(ca, cb);
    for (int x = c_lo; x <= c_hi; ++x) try_hvh(x);
    // The VHV bends at y == ra / y == rb are the L-shapes again.
    const int r_lo = std::min(ra, rb), r_hi = std::max(ra, rb);
    for (int y = r_lo + 1; y < r_hi; ++y) try_vhv(y);
  }
  if (best_x < 0 && best_y < 0) return {};

  std::vector<int> path;
  path.reserve(static_cast<std::size_t>(dc + dr) + 1);
  path.push_back(a);
  auto walk_h = [&](int& c, int r, int c_to) {
    const int step = c_to > c ? 1 : -1;
    while (c != c_to) {
      c += step;
      path.push_back(g.node(c, r));
    }
  };
  auto walk_v = [&](int c, int& r, int r_to) {
    const int step = r_to > r ? 1 : -1;
    while (r != r_to) {
      r += step;
      path.push_back(g.node(c, r));
    }
  };
  int c = ca, r = ra;
  if (best_x >= 0) {
    walk_h(c, r, best_x);
    walk_v(c, r, rb);
    walk_h(c, r, cb);
  } else {
    walk_v(c, r, best_y);
    walk_h(c, r, cb);
    walk_v(c, r, rb);
  }
  return path;
}

/// Search (do not commit) one 2-pin subnet: monotone fast path first, A*
/// fallback when every monotone candidate is congested.
std::vector<int> route_tp_search(const RouteOptions& options, SideGrid& g,
                                 PathRouter& pr, const UseOverlay* ov,
                                 const TwoPin& tp, long& fastpath) {
  std::vector<int> path = monotone_fast_path(g, ov, tp.a, tp.b);
  if (!path.empty()) {
    ++fastpath;
    return path;
  }
  // The fallback window scales with the segment: a 2-pin bbox is much
  // smaller than a stage-1 whole-tree bbox, and a margin-6 window around a
  // segment pinned inside a saturated band escalates straight to the
  // unpruned full grid — creating hard overflow a wider pruned window
  // would have detoured around.
  pr.overlay = ov;
  path = pr.connect_astar({tp.a}, tp.b,
                          std::max(options.window_margin, tp.len));
  pr.overlay = nullptr;
  return path;
}

/// The stage-2 route loop: Steiner-decompose every subnet into 2-pin
/// subnets, route them short-first (fast path, then A*), then negotiate by
/// congestion region — cluster the overflowed gcells, rip only the subnets
/// crossing each region, search region reroutes in parallel against a
/// frozen snapshot (private overlays), and commit serially in region order.
/// Serial and threaded runs execute the same searches against the same
/// frozen state, so results are bit-identical at any thread count.
/// Fills route_edges (per parent subnet, deduplicated) and the res
/// counters; the caller finalizes.
void route_astar2(RouteResult& res, const RouteOptions& options,
                  const std::vector<SubNet>& subnets,
                  std::array<SideGrid, 2>& grids,
                  std::array<PathRouter, 2>& routers,
                  std::vector<std::vector<GEdge>>& route_edges) {
  // --- decompose over Steiner topologies -----------------------------------
  std::array<TwoPinSide, 2> sides;
  std::vector<std::unordered_map<int, int>> edge_refs(subnets.size());
  for (std::size_t si = 0; si < subnets.size(); ++si) {
    const SubNet& sn = subnets[si];
    const auto sz = static_cast<std::size_t>(sidx(sn.side));
    SideGrid& g = grids[sz];
    TwoPinSide& ts = sides[sz];
    std::vector<int> term_nodes;
    std::vector<SteinerPoint> terms;
    auto add_term = [&](int n) {
      for (int m : term_nodes) {
        if (m == n) return;
      }
      term_nodes.push_back(n);
      terms.push_back({g.col_of(n), g.row_of(n)});
    };
    add_term(sn.source);
    for (int s : sn.sinks) add_term(s);
    if (terms.size() < 2) continue;  // all terminals share one gcell
    const SteinerTree tree = build_steiner_tree(terms);
    for (const SteinerSeg& seg : tree.segs) {
      const SteinerPoint& pa = tree.points[static_cast<std::size_t>(seg.a)];
      const SteinerPoint& pb = tree.points[static_cast<std::size_t>(seg.b)];
      if (pa == pb) continue;
      TwoPin tp;
      tp.parent = static_cast<int>(si);
      tp.a = g.node(pa.c, pa.r);
      tp.b = g.node(pb.c, pb.r);
      tp.len = std::abs(pa.c - pb.c) + std::abs(pa.r - pb.r);
      ts.tps.push_back(tp);
    }
  }
  for (int s = 0; s < 2; ++s) {
    TwoPinSide& ts = sides[static_cast<std::size_t>(s)];
    const SideGrid& g = grids[static_cast<std::size_t>(s)];
    ts.paths.assign(ts.tps.size(), {});
    ts.cell_tps.assign(static_cast<std::size_t>(g.cols * g.rows), {});
    ts.route_order.resize(ts.tps.size());
    std::iota(ts.route_order.begin(), ts.route_order.end(), std::size_t{0});
    std::sort(ts.route_order.begin(), ts.route_order.end(),
              [&](std::size_t x, std::size_t y) {
                if (ts.tps[x].len != ts.tps[y].len) {
                  return ts.tps[x].len < ts.tps[y].len;
                }
                return x < y;
              });
    res.steiner_subnets += static_cast<long>(ts.tps.size());
  }

  // --- initial route: short 2-pin subnets first ----------------------------
  const bool concurrent_sides = options.threads > 1;
  std::array<long, 2> fastpath{0, 0};
  // Search-effort marks captured *before* the initial route so the pass-0
  // record shows its real settled/expansion counts.
  std::array<long, 2> settled_mark{routers[0].settled, routers[1].settled};
  std::array<long, 2> expansions_mark{routers[0].expansions,
                                      routers[1].expansions};
  auto route_side_initial = [&](int s) {
    FFET_TRACE_SCOPE("route.initial.", s == 0 ? "front" : "back");
    const auto sz = static_cast<std::size_t>(s);
    for (std::size_t t : sides[sz].route_order) {
      std::vector<int> path =
          route_tp_search(options, grids[sz], routers[sz], nullptr,
                          sides[sz].tps[t], fastpath[sz]);
      commit_tp(grids[sz], sides[sz], edge_refs, t, std::move(path));
    }
  };
  if (concurrent_sides) {
    runtime::parallel_invoke(options.threads, [&] { route_side_initial(0); },
                             [&] { route_side_initial(1); });
  } else {
    route_side_initial(0);
    route_side_initial(1);
  }

  // --- hard-overflow repair -------------------------------------------------
  // The Steiner topology is fixed before congestion is known, so some
  // subnets end up pinned across hard-saturated edges that stage-1's
  // congestion-aware tree growth would have skirted.  Repair one subnet
  // at a time: rip a crossing subnet and retry with hard-pruned search
  // only (fast path, window, full grid — never unpruned), keeping the new
  // path only when the side's hard overflow strictly drops and reverting
  // otherwise.  Serial, id-ordered, and run at pass barriers on the
  // (deterministic) negotiated state: bit-identical at any thread count,
  // and monotone — hard overflow can only decrease.  Running it right
  // after the initial route pulls hard overflow down to (near) its
  // structural floor before any negotiation pass is paid for.
  auto crosses_hard = [](const SideGrid& g, const std::vector<int>& path) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const auto [dir, e] = edge_key(g, path[i], path[i + 1]);
      const auto ei = static_cast<std::size_t>(e);
      if (dir == 0) {
        if (g.h_base[ei] + g.h_use[ei] > g.h_cap_hard) return true;
      } else {
        if (g.v_base[ei] + g.v_use[ei] > g.v_cap_hard) return true;
      }
    }
    return false;
  };
  // A subnet whose repair failed is only retried once the side's hard
  // overflow has strictly improved since the failure — without this the
  // structurally-pinned residue re-pays two pruned searches (one of them
  // full-grid) every pass barrier for the same negative answer.
  std::array<std::vector<double>, 2> repair_fail_at{
      std::vector<double>(sides[0].tps.size(),
                          std::numeric_limits<double>::infinity()),
      std::vector<double>(sides[1].tps.size(),
                          std::numeric_limits<double>::infinity())};
  auto repair_hard = [&](int s) {
    const auto sz = static_cast<std::size_t>(s);
    SideGrid& g = grids[sz];
    TwoPinSide& ts = sides[sz];
    PathRouter& pr = routers[sz];
    for (int round = 0; round < 6 && g.hard_overflow() > 0.0; ++round) {
      bool improved = false;
      for (std::size_t t = 0; t < ts.tps.size(); ++t) {
        if (ts.paths[t].empty() || !crosses_hard(g, ts.paths[t])) continue;
        if (g.hard_overflow() >= repair_fail_at[sz][t]) continue;
        std::vector<int> old_path = ts.paths[t];
        const double before = g.hard_overflow();
        rip_tp(g, ts, edge_refs, t);
        std::vector<int> repl =
            monotone_fast_path(g, nullptr, ts.tps[t].a, ts.tps[t].b);
        if (repl.empty()) {
          repl = pr.connect_pruned(
              {ts.tps[t].a}, ts.tps[t].b,
              std::max(options.window_margin, ts.tps[t].len));
        }
        bool accepted = false;
        if (!repl.empty()) {
          commit_tp(g, ts, edge_refs, t, std::move(repl));
          if (g.hard_overflow() < before) {
            accepted = true;
          } else {
            rip_tp(g, ts, edge_refs, t);
          }
        }
        if (accepted) {
          improved = true;
          ++res.ripups_total;
        } else {
          commit_tp(g, ts, edge_refs, t, std::move(old_path));
          repair_fail_at[sz][t] = g.hard_overflow();
        }
      }
      if (!improved) break;
    }
  };
  repair_hard(0);
  repair_hard(1);

  // --- region-negotiated rip-up-and-reroute --------------------------------
  auto total_hard = [&] {
    return grids[0].hard_overflow() + grids[1].hard_overflow();
  };
  // The structural hard floor: pin base demand alone already past the hard
  // capacity.  No rip-up or reroute can get below it, so negotiating
  // toward zero when the floor is positive only burns stale passes against
  // an unreachable target — the loop gates on the floor instead.
  double hard_floor = 0.0;
  for (const SideGrid& g : grids) {
    for (std::size_t e = 0; e < g.h_base.size(); ++e) {
      hard_floor += std::max(0.0, g.h_base[e] - g.h_cap_hard);
    }
    for (std::size_t e = 0; e < g.v_base.size(); ++e) {
      hard_floor += std::max(0.0, g.v_base[e] - g.v_cap_hard);
    }
  }
  std::array<std::vector<std::vector<int>>, 2> best_paths{sides[0].paths,
                                                          sides[1].paths};
  bool current_is_best = true;
  double best_hard = total_hard();
  double best_soft_front = grids[0].overflow();
  double best_soft_back = grids[1].overflow();
  double best_soft = best_soft_front + best_soft_back;
  int stale_passes = 0;

  auto record_pass = [&](int pass, std::size_t ripped_front,
                         std::size_t ripped_back, double soft_front,
                         double soft_back, double hard, int regions_front,
                         int regions_back) {
    RoutePassStat ps;
    ps.pass = pass;
    ps.ripped_front = static_cast<int>(ripped_front);
    ps.ripped_back = static_cast<int>(ripped_back);
    ps.overflow_front = soft_front;
    ps.overflow_back = soft_back;
    ps.hard_overflow = hard;
    ps.settled_front = routers[0].settled - settled_mark[0];
    ps.settled_back = routers[1].settled - settled_mark[1];
    ps.window_expansions_front =
        static_cast<int>(routers[0].expansions - expansions_mark[0]);
    ps.window_expansions_back =
        static_cast<int>(routers[1].expansions - expansions_mark[1]);
    ps.regions_front = regions_front;
    ps.regions_back = regions_back;
    settled_mark[0] = routers[0].settled;
    settled_mark[1] = routers[1].settled;
    expansions_mark[0] = routers[0].expansions;
    expansions_mark[1] = routers[1].expansions;
    if (obs::verbose()) {
      for (int s = 0; s < 2; ++s) {
        std::printf(
            "  [route2] pass=%d side=%s %s=%d regions=%d overflow_total=%.1f "
            "hard=%.1f settled=%ld expansions=%d\n",
            pass, s == 0 ? "front" : "back",
            pass == 0 ? "routed" : "ripups",
            s == 0 ? ps.ripped_front : ps.ripped_back,
            s == 0 ? ps.regions_front : ps.regions_back,
            s == 0 ? ps.overflow_front : ps.overflow_back, ps.hard_overflow,
            s == 0 ? ps.settled_front : ps.settled_back,
            s == 0 ? ps.window_expansions_front : ps.window_expansions_back);
      }
    }
    res.pass_stats.push_back(ps);
  };
  record_pass(0, sides[0].tps.size(), sides[1].tps.size(), best_soft_front,
              best_soft_back, best_hard, 0, 0);

  std::array<std::size_t, 2> ripped_counts{0, 0};
  std::array<int, 2> region_counts{0, 0};
  auto pass_side = [&](int s, int pass) {
    FFET_TRACE_SCOPE("route.pass.", pass, s == 0 ? ".front" : ".back");
    const auto sz = static_cast<std::size_t>(s);
    SideGrid& g = grids[sz];
    TwoPinSide& ts = sides[sz];
    decay_history(g);
    g.rebuild_costs();

    // Overflowed gcells = endpoints of every *rippable* soft-overflowed
    // edge: wire usage must contribute (use > 0).  An edge whose pin base
    // demand alone exceeds the capacity is structural — no rip-up can fix
    // it, and seeding regions from it merges the whole die into one giant
    // region that churns every pass for nothing.
    std::vector<int> hot;
    std::vector<char> is_hot(static_cast<std::size_t>(g.cols * g.rows), 0);
    for (int r = 0; r < g.rows; ++r) {
      for (int c = 0; c + 1 < g.cols; ++c) {
        const auto e = static_cast<std::size_t>(g.h_edge(c, r));
        if (g.h_use[e] > 0.0 && g.h_base[e] + g.h_use[e] > g.h_cap) {
          hot.push_back(g.node(c, r));
          hot.push_back(g.node(c + 1, r));
        }
      }
    }
    for (int r = 0; r + 1 < g.rows; ++r) {
      for (int c = 0; c < g.cols; ++c) {
        const auto e = static_cast<std::size_t>(g.v_edge(c, r));
        if (g.v_use[e] > 0.0 && g.v_base[e] + g.v_use[e] > g.v_cap) {
          hot.push_back(g.node(c, r));
          hot.push_back(g.node(c, r + 1));
        }
      }
    }
    for (int n : hot) is_hot[static_cast<std::size_t>(n)] = 1;
    const std::vector<CongestionRegion> regions = cluster_congestion_regions(
        hot, g.cols, g.rows, options.region_merge_dist, options.region_margin);
    region_counts[sz] = static_cast<int>(regions.size());
    if (regions.empty()) {
      ripped_counts[sz] = 0;
      return;
    }

    // Claim the rip set.  The color map narrows candidates to subnets
    // touching a hot gcell; the rip criterion is then the exact PathFinder
    // one — the path crosses an *overflowed edge* (the margin-expanded
    // region box defines batch grouping and reroute context, NOT the rip
    // set, else a busy region would churn every subnet that merely
    // transits it).  Each ripped subnet joins the region of the first hot
    // gcell along its path; hot gcells seeded the clustering, so that
    // region always exists, and the assignment is deterministic.
    std::vector<int> region_of(static_cast<std::size_t>(g.cols * g.rows), -1);
    for (std::size_t ri = 0; ri < regions.size(); ++ri) {
      const CongestionRegion& reg = regions[ri];
      for (int r = reg.r_lo; r <= reg.r_hi; ++r) {
        for (int c = reg.c_lo; c <= reg.c_hi; ++c) {
          region_of[static_cast<std::size_t>(g.node(c, r))] =
              static_cast<int>(ri);
        }
      }
    }
    std::vector<int> cand_ids;
    for (std::size_t n = 0; n < is_hot.size(); ++n) {
      if (!is_hot[n]) continue;
      const auto& cell = ts.cell_tps[n];
      cand_ids.insert(cand_ids.end(), cell.begin(), cell.end());
    }
    std::sort(cand_ids.begin(), cand_ids.end());
    cand_ids.erase(std::unique(cand_ids.begin(), cand_ids.end()),
                   cand_ids.end());
    std::vector<std::vector<std::size_t>> region_tps(regions.size());
    for (int t : cand_ids) {
      const std::vector<int>& path = ts.paths[static_cast<std::size_t>(t)];
      bool crosses = false;
      for (std::size_t i = 0; i + 1 < path.size() && !crosses; ++i) {
        const auto [dir, e] = edge_key(g, path[i], path[i + 1]);
        const auto ei = static_cast<std::size_t>(e);
        crosses = dir == 0 ? g.h_use[ei] > 0.0 &&
                                 g.h_base[ei] + g.h_use[ei] > g.h_cap
                           : g.v_use[ei] > 0.0 &&
                                 g.v_base[ei] + g.v_use[ei] > g.v_cap;
      }
      if (!crosses) continue;
      for (int n : path) {
        if (is_hot[static_cast<std::size_t>(n)]) {
          region_tps[static_cast<std::size_t>(
                         region_of[static_cast<std::size_t>(n)])]
              .push_back(static_cast<std::size_t>(t));
          break;
        }
      }
    }
    for (auto& rtps : region_tps) {
      std::sort(rtps.begin(), rtps.end(),
                [&](std::size_t x, std::size_t y) {
                  if (ts.tps[x].len != ts.tps[y].len) {
                    return ts.tps[x].len < ts.tps[y].len;
                  }
                  return x < y;
                });
    }

    // Rip every claimed subnet, then freeze the grid: the snapshot phase
    // below only reads it.
    std::size_t n_ripped = 0;
    for (const auto& rtps : region_tps) {
      n_ripped += rtps.size();
      for (std::size_t t : rtps) rip_tp(g, ts, edge_refs, t);
    }

    // Snapshot search, batched across the pool: each region prices its own
    // fresh paths through a private overlay; disjoint regions never see
    // each other, so any schedule computes the same candidates.
    std::vector<std::vector<std::vector<int>>> cand(regions.size());
    std::vector<long> r_settled(regions.size(), 0);
    std::vector<long> r_expansions(regions.size(), 0);
    std::vector<long> r_fastpath(regions.size(), 0);
    runtime::parallel_for(
        regions.size(),
        [&](std::size_t ri) {
          UseOverlay ov;
          PathRouter rpr(g);
          cand[ri].resize(region_tps[ri].size());
          long fast = 0;
          for (std::size_t k = 0; k < region_tps[ri].size(); ++k) {
            std::vector<int> p = route_tp_search(
                options, g, rpr, &ov, ts.tps[region_tps[ri][k]], fast);
            overlay_add(ov, g, p);
            cand[ri][k] = std::move(p);
          }
          r_settled[ri] = rpr.settled;
          r_expansions[ri] = rpr.expansions;
          r_fastpath[ri] = fast;
        },
        options.threads);

    // Commit barrier: serial, in canonical region order.
    for (std::size_t ri = 0; ri < regions.size(); ++ri) {
      for (std::size_t k = 0; k < region_tps[ri].size(); ++k) {
        commit_tp(g, ts, edge_refs, region_tps[ri][k], std::move(cand[ri][k]));
      }
      routers[sz].settled += r_settled[ri];
      routers[sz].expansions += r_expansions[ri];
      fastpath[sz] += r_fastpath[ri];
    }
    ripped_counts[sz] = n_ripped;
  };

  for (int pass = 1; pass < options.rrr_passes &&
                     best_hard > hard_floor + 1e-9 && stale_passes < 6;
       ++pass) {
    if (concurrent_sides) {
      runtime::parallel_invoke(options.threads, [&] { pass_side(0, pass); },
                               [&] { pass_side(1, pass); });
    } else {
      pass_side(0, pass);
      pass_side(1, pass);
    }
    if (ripped_counts[0] + ripped_counts[1] == 0) break;
    // Repair at the pass barrier: the pass's history update and region
    // reroutes shift soft congestion, which can open hard-clean detours
    // that were blocked a pass earlier.
    repair_hard(0);
    repair_hard(1);
    res.rrr_passes = pass;
    res.ripups_total += static_cast<long>(ripped_counts[0] + ripped_counts[1]);
    res.region_ripups_total +=
        static_cast<long>(region_counts[0] + region_counts[1]);
    FFET_METRIC_OBSERVE("route.ripups_per_pass",
                        ripped_counts[0] + ripped_counts[1]);

    const double hard = total_hard();
    const double soft_front = grids[0].overflow();
    const double soft_back = grids[1].overflow();
    const double soft = soft_front + soft_back;
    record_pass(pass, ripped_counts[0], ripped_counts[1], soft_front,
                soft_back, hard, region_counts[0], region_counts[1]);
    if (hard < best_hard || (hard == best_hard && soft < best_soft)) {
      best_hard = hard;
      best_soft = soft;
      best_paths = {sides[0].paths, sides[1].paths};
      current_is_best = true;
      stale_passes = 0;
    } else {
      current_is_best = false;
      ++stale_passes;
    }
  }

  // Restore the best solution (usage arrays included, for diagnostics).
  // The refcount union is order-independent, so recommitting in id order
  // reproduces the exact grid state of the snapshot.
  if (!current_is_best) {
    for (SideGrid& g : grids) g.clear_use();
    edge_refs.assign(subnets.size(), {});
    for (int s = 0; s < 2; ++s) {
      const auto sz = static_cast<std::size_t>(s);
      sides[sz].paths = best_paths[sz];
      SideGrid& g = grids[sz];
      auto& cell_tps = sides[sz].cell_tps;
      for (auto& cell : cell_tps) cell.clear();
      for (std::size_t t = 0; t < sides[sz].tps.size(); ++t) {
        auto& refs =
            edge_refs[static_cast<std::size_t>(sides[sz].tps[t].parent)];
        const std::vector<int>& path = sides[sz].paths[t];
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
          const auto [dir, e] = edge_key(g, path[i], path[i + 1]);
          const int key = (e << 1) | dir;
          if (++refs[key] == 1) {
            if (dir == 0) {
              g.apply_use_h(static_cast<std::size_t>(e), +1.0);
            } else {
              g.apply_use_v(static_cast<std::size_t>(e), +1.0);
            }
          }
        }
        for (int n : path) {
          cell_tps[static_cast<std::size_t>(n)].push_back(
              static_cast<int>(t));
        }
      }
    }
  }

  // Emit each parent subnet's deduplicated edge set (sorted by key for a
  // stable order) — the per-parent refcount maps are exactly that set.
  for (std::size_t si = 0; si < subnets.size(); ++si) {
    const SideGrid& g =
        grids[static_cast<std::size_t>(sidx(subnets[si].side))];
    std::vector<int> keys;
    keys.reserve(edge_refs[si].size());
    for (const auto& [key, cnt] : edge_refs[si]) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    route_edges[si].clear();
    route_edges[si].reserve(keys.size());
    for (int key : keys) {
      const int dir = key & 1;
      const int e = key >> 1;
      int a;
      int b;
      if (dir == 0) {
        const int c = e % (g.cols - 1);
        const int r = e / (g.cols - 1);
        a = g.node(c, r);
        b = a + 1;
      } else {
        const int c = e % g.cols;
        const int r = e / g.cols;
        a = g.node(c, r);
        b = a + g.cols;
      }
      route_edges[si].push_back({a, b});
    }
  }
  res.fastpath_routes = fastpath[0] + fastpath[1];
}

// --- results: wirelength, layer assignment, overflow + DRV accounting ---------
void finalize_route_result(RouteResult& res, const Floorplan& fp,
                           const tech::Technology& tech,
                           const RouteOptions& options,
                           const std::vector<SubNet>& subnets,
                           const std::vector<std::vector<GEdge>>& route_edges,
                           const std::array<SideGrid, 2>& grids,
                           const std::array<PathRouter, 2>& routers,
                           const std::array<long, 2>& pin_totals,
                           geom::Nm gsize) {
  const double gsize_um = geom::to_um(gsize);
  // Layer assignment by wirelength quantile: longer nets ride higher layers.
  std::vector<std::size_t> by_len(subnets.size());
  for (std::size_t i = 0; i < by_len.size(); ++i) by_len[i] = i;
  std::sort(by_len.begin(), by_len.end(), [&](std::size_t a, std::size_t b) {
    if (route_edges[a].size() != route_edges[b].size()) {
      return route_edges[a].size() < route_edges[b].size();
    }
    return subnets[a].net < subnets[b].net;
  });
  std::vector<double> quantile(subnets.size(), 0.0);
  for (std::size_t rank = 0; rank < by_len.size(); ++rank) {
    quantile[by_len[rank]] =
        by_len.size() > 1
            ? static_cast<double>(rank) / static_cast<double>(by_len.size() - 1)
            : 0.0;
  }

  res.routes.reserve(subnets.size());
  for (std::size_t si = 0; si < subnets.size(); ++si) {
    const SubNet& sn = subnets[si];
    NetRoute nr;
    nr.net = sn.net;
    nr.side = sn.side;
    nr.edges = route_edges[si];
    nr.sink_gcells = sn.sinks;
    nr.source_gcell = sn.source;
    nr.wirelength_um =
        static_cast<double>(nr.edges.size()) * gsize_um +
        0.2;  // local pin hookup
    // Pick the layer pair by quantile over this side's available layers.
    const auto layers = tech.routing_layers(sn.side);
    std::vector<int> h_layers, v_layers;
    for (const tech::MetalLayer* l : layers) {
      (l->preferred_dir == geom::Dir::Horizontal ? h_layers : v_layers)
          .push_back(l->index);
    }
    auto pick = [&](const std::vector<int>& ls) {
      if (ls.empty()) return 0;
      const auto k = static_cast<std::size_t>(
          quantile[si] * 0.999 * static_cast<double>(ls.size()));
      return ls[k];
    };
    nr.h_layer_index = pick(h_layers);
    nr.v_layer_index = pick(v_layers);

    if (sn.side == Side::Front) {
      res.wirelength_front_um += nr.wirelength_um;
      ++res.nets_front;
    } else {
      res.wirelength_back_um += nr.wirelength_um;
      ++res.nets_back;
    }
    res.routes.push_back(std::move(nr));
  }

  double overflow = 0.0;
  double hard_overflow = 0.0;
  for (const SideGrid& g : grids) {
    overflow += g.overflow();
    hard_overflow += g.hard_overflow();
    res.capacity_units +=
        g.h_cap * static_cast<double>(g.h_use.size()) +
        g.v_cap * static_cast<double>(g.v_use.size());
    for (double u : g.h_use) res.wire_demand_units += u;
    for (double u : g.v_use) res.wire_demand_units += u;
    for (double u : g.h_base) res.pin_demand_units += u;
    for (double u : g.v_base) res.pin_demand_units += u;
  }
  res.overflow_total = static_cast<int>(std::round(overflow));
  res.drv_wire = static_cast<int>(std::round(hard_overflow));
  res.settled_nodes = routers[0].settled + routers[1].settled;
  res.window_expansions = routers[0].expansions + routers[1].expansions;

  // Pin-access DRVs: when a side's pin density exceeds what the detailed
  // router can hook up, every pin beyond the budget becomes an access
  // violation.  Density is evaluated block-wide per side — the sharp,
  // deterministic version of the paper's pin-density routability limit.
  const double core_area_um2 = fp.core.area_um2();
  const double pin_budget =
      options.pin_access_limit_per_um2 * core_area_um2;
  double pin_drv = 0.0;
  for (int side = 0; side < 2; ++side) {
    // A side without routing layers carries no signal hookup (its pin
    // landings are unused metal), so it cannot produce access violations.
    const SideGrid& g = grids[static_cast<std::size_t>(side)];
    if (g.h_cap <= 0.0 && g.v_cap <= 0.0) continue;
    pin_drv += std::max(
        0.0, static_cast<double>(pin_totals[static_cast<std::size_t>(side)]) -
                 pin_budget);
  }
  res.drv_pin_access = static_cast<int>(std::round(pin_drv));

  res.drv_estimate = res.drv_wire + res.drv_pin_access;
  res.valid = res.drv_estimate < 10;  // the paper's validity rule

  FFET_METRIC_ADD("route.ripups", res.ripups_total);
  FFET_METRIC_ADD("route.region_ripups", res.region_ripups_total);
  FFET_METRIC_ADD("route.steiner_subnets", res.steiner_subnets);
  FFET_METRIC_ADD("route.fastpath_routes", res.fastpath_routes);
  FFET_METRIC_ADD("route.drv.wire", res.drv_wire);
  FFET_METRIC_ADD("route.drv.pin_access", res.drv_pin_access);
  FFET_METRIC_ADD("route.settled_nodes", res.settled_nodes);
  FFET_METRIC_ADD("route.window_expansions", res.window_expansions);
  FFET_METRIC_OBSERVE("route.rrr_passes", res.rrr_passes);
  FFET_METRIC_OBSERVE("route.overflow", overflow);
}

}  // namespace

RouteResult route_design(const Netlist& nl, const Floorplan& fp,
                         const RouteOptions& options) {
  FFET_TRACE_SCOPE("route.design");
  const tech::Technology& tech = nl.library().tech();
  RouteResult res;
  const RouteEngine engine = resolve_engine(options.engine);
  res.engine_used = engine;

  GridSetup gs = build_grid_setup(nl, fp, tech, options);
  const geom::Nm gsize = gs.gsize;
  res.gcell_w = gsize;
  res.gcell_h = gsize;
  res.gcols = gs.gcols;
  res.grows = gs.grows;
  std::array<SideGrid, 2>& grids = gs.grids;
  auto side_index = [](Side s) { return sidx(s); };

  std::vector<SubNet> subnets = decompose_subnets(nl, tech, gs);

  std::array<PathRouter, 2> routers{PathRouter(grids[0]), PathRouter(grids[1])};
  std::vector<std::vector<GEdge>> route_edges(subnets.size());

  if (engine == RouteEngine::Astar2) {
    // Stage 2: Steiner 2-pin decomposition + congestion-region rip-up.
    route_astar2(res, options, subnets, grids, routers, route_edges);
    finalize_route_result(res, fp, tech, options, subnets, route_edges, grids,
                          routers, gs.pin_totals, gsize);
    return res;
  }

  // Route order: short nets first (they have the least flexibility).
  std::vector<std::size_t> order(subnets.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (subnets[a].hpwl != subnets[b].hpwl) {
      return subnets[a].hpwl < subnets[b].hpwl;
    }
    return subnets[a].net < subnets[b].net;
  });

  // Per-side subsequences of `order`.  A subnet only ever touches its own
  // side's grid and router, so the two sides can route concurrently; each
  // side preserving its in-order subsequence of `order` makes any
  // interleaving produce the same grids as the serial pass.
  const bool concurrent_sides = options.threads > 1;
  std::array<std::vector<std::size_t>, 2> side_order;
  for (std::size_t si : order) {
    side_order[static_cast<std::size_t>(side_index(subnets[si].side))]
        .push_back(si);
  }

  // --- route with rip-up-and-reroute --------------------------------------------
  auto route_one = [&](std::size_t si) {
    route_one_subnet(engine, options, subnets, grids, routers, route_edges,
                     si);
  };

  // The two sides touch disjoint grids and routers, so iterating each
  // side's in-order subsequence of `order` produces exactly the grids the
  // original interleaved serial loop did — and gives every side a
  // traceable span in both serial and concurrent execution.
  auto route_side_initial = [&](int s) {
    FFET_TRACE_SCOPE("route.initial.", s == 0 ? "front" : "back");
    for (std::size_t si : side_order[static_cast<std::size_t>(s)]) {
      route_one(si);
    }
  };
  if (concurrent_sides) {
    runtime::parallel_invoke(options.threads, [&] { route_side_initial(0); },
                             [&] { route_side_initial(1); });
  } else {
    route_side_initial(0);
    route_side_initial(1);
  }

  // Negotiated rip-up-and-reroute: decay history, bump it on overflowed
  // edges, reroute the nets crossing them.  The best solution seen (by hard
  // overflow, then total overflow) is kept — negotiation is not monotone.
  auto total_hard = [&] {
    return grids[0].hard_overflow() + grids[1].hard_overflow();
  };
  std::vector<std::vector<GEdge>> best_routes = route_edges;
  double best_hard = total_hard();
  double best_soft_front = grids[0].overflow();
  double best_soft_back = grids[1].overflow();
  double best_soft = best_soft_front + best_soft_back;
  int stale_passes = 0;

  // Convergence record + optional FFET_VERBOSE one-line-per-side summary
  // (this replaces ad-hoc printf debugging of negotiation stalls).  The
  // overflow values are passed in, not recomputed — and since commit()
  // maintains them incrementally, the pass barrier never rescans a grid.
  // Search-effort counters are read as deltas of the per-side routers.
  std::array<long, 2> settled_mark{0, 0};
  std::array<long, 2> expansions_mark{0, 0};
  auto record_pass = [&](int pass, std::size_t ripped_front,
                         std::size_t ripped_back, double soft_front,
                         double soft_back, double hard) {
    RoutePassStat ps;
    ps.pass = pass;
    ps.ripped_front = static_cast<int>(ripped_front);
    ps.ripped_back = static_cast<int>(ripped_back);
    ps.overflow_front = soft_front;
    ps.overflow_back = soft_back;
    ps.hard_overflow = hard;
    ps.settled_front = routers[0].settled - settled_mark[0];
    ps.settled_back = routers[1].settled - settled_mark[1];
    ps.window_expansions_front =
        static_cast<int>(routers[0].expansions - expansions_mark[0]);
    ps.window_expansions_back =
        static_cast<int>(routers[1].expansions - expansions_mark[1]);
    settled_mark[0] = routers[0].settled;
    settled_mark[1] = routers[1].settled;
    expansions_mark[0] = routers[0].expansions;
    expansions_mark[1] = routers[1].expansions;
    if (obs::verbose()) {
      for (int s = 0; s < 2; ++s) {
        std::printf(
            "  [route] pass=%d side=%s %s=%d overflow_total=%.1f "
            "hard=%.1f settled=%ld expansions=%d\n",
            pass, s == 0 ? "front" : "back",
            pass == 0 ? "routed" : "ripups",
            s == 0 ? ps.ripped_front : ps.ripped_back,
            s == 0 ? ps.overflow_front : ps.overflow_back, ps.hard_overflow,
            s == 0 ? ps.settled_front : ps.settled_back,
            s == 0 ? ps.window_expansions_front : ps.window_expansions_back);
      }
    }
    res.pass_stats.push_back(ps);
  };
  record_pass(0, side_order[0].size(), side_order[1].size(),
              best_soft_front, best_soft_back, best_hard);
  auto crosses_overflow = [&](std::size_t si) {
    return subnet_crosses_overflow(subnets, grids, route_edges, si);
  };
  for (int pass = 1;
       pass < options.rrr_passes && best_hard > 0.0 && stale_passes < 6;
       ++pass) {
    // Each side negotiates its pass independently: decay its history,
    // rebuild its edge-cost cache, find its overflowing subnets (in this
    // side's `order` subsequence), rip them all, reroute them all —
    // restricted to state the other side never touches, so serial
    // per-side execution and concurrent execution produce identical
    // grids.  The pass barrier below (overflow totals, best tracking,
    // convergence record) is serial.
    std::array<std::size_t, 2> ripped_counts{0, 0};
    auto pass_side = [&](int s) {
      FFET_TRACE_SCOPE("route.pass.", pass, s == 0 ? ".front" : ".back");
      const auto sz = static_cast<std::size_t>(s);
      decay_history(grids[sz]);
      grids[sz].rebuild_costs();
      std::vector<std::size_t> ripped;
      for (std::size_t si : side_order[sz]) {
        if (crosses_overflow(si)) ripped.push_back(si);
      }
      for (std::size_t si : ripped) {
        commit(grids[sz], route_edges[si], -1.0);
      }
      for (std::size_t si : ripped) route_one(si);
      ripped_counts[sz] = ripped.size();
    };
    if (concurrent_sides) {
      runtime::parallel_invoke(options.threads, [&] { pass_side(0); },
                               [&] { pass_side(1); });
    } else {
      pass_side(0);
      pass_side(1);
    }
    if (ripped_counts[0] + ripped_counts[1] == 0) break;
    res.rrr_passes = pass;
    res.ripups_total +=
        static_cast<long>(ripped_counts[0] + ripped_counts[1]);
    FFET_METRIC_OBSERVE("route.ripups_per_pass",
                        ripped_counts[0] + ripped_counts[1]);

    const double hard = total_hard();
    const double soft_front = grids[0].overflow();
    const double soft_back = grids[1].overflow();
    const double soft = soft_front + soft_back;
    record_pass(pass, ripped_counts[0], ripped_counts[1], soft_front,
                soft_back, hard);
    if (hard < best_hard || (hard == best_hard && soft < best_soft)) {
      best_hard = hard;
      best_soft = soft;
      best_routes = route_edges;
      stale_passes = 0;
    } else {
      ++stale_passes;
    }
  }
  // Restore the best solution (usage arrays included, for diagnostics).
  if (best_routes != route_edges) {
    for (SideGrid& g : grids) g.clear_use();
    route_edges = std::move(best_routes);
    for (std::size_t si = 0; si < subnets.size(); ++si) {
      commit(grids[static_cast<std::size_t>(side_index(subnets[si].side))],
             route_edges[si], +1.0);
    }
  }

  finalize_route_result(res, fp, tech, options, subnets, route_edges, grids,
                        routers, gs.pin_totals, gsize);
  return res;
}

RouteResult reroute_nets(const Netlist& nl, const Floorplan& fp,
                         const RouteResult& prev,
                         const std::vector<netlist::NetId>& dirty_nets,
                         const RouteOptions& options) {
  FFET_TRACE_SCOPE("route.reroute");
  const tech::Technology& tech = nl.library().tech();
  RouteResult res;
  const RouteEngine engine = resolve_engine(options.engine);
  res.engine_used = engine;
  // The ECO primitive routes its (few) dirty subnets monolithically with
  // the windowed A* kernel even under Astar2: region negotiation needs the
  // color map of *every* route, which carried nets don't have, and the ECO
  // contract pins them anyway.  route_one_subnet maps any non-Legacy
  // engine to connect_astar, so no translation is needed here.

  // Rebuild grids and pin demand from the *current* netlist (moved/resized
  // cells and flipped pin sides shift the demand landscape), then decompose
  // every net; untouched subnets take their committed edges from `prev`.
  GridSetup gs = build_grid_setup(nl, fp, tech, options);
  res.gcell_w = gs.gsize;
  res.gcell_h = gs.gsize;
  res.gcols = gs.gcols;
  res.grows = gs.grows;
  std::array<SideGrid, 2>& grids = gs.grids;
  std::vector<SubNet> subnets = decompose_subnets(nl, tech, gs);

  std::vector<char> is_dirty(static_cast<std::size_t>(nl.num_nets()), 0);
  for (const netlist::NetId n : dirty_nets) {
    if (n >= 0 && n < nl.num_nets()) is_dirty[static_cast<std::size_t>(n)] = 1;
  }
  std::vector<std::array<const NetRoute*, 2>> prev_of(
      static_cast<std::size_t>(nl.num_nets()), {nullptr, nullptr});
  for (const NetRoute& r : prev.routes) {
    if (r.net >= 0 && r.net < nl.num_nets()) {
      prev_of[static_cast<std::size_t>(r.net)]
             [static_cast<std::size_t>(sidx(r.side))] = &r;
    }
  }

  std::vector<std::vector<GEdge>> route_edges(subnets.size());
  std::vector<char> needs_route(subnets.size(), 1);
  std::vector<const NetRoute*> carried(subnets.size(), nullptr);
  for (std::size_t si = 0; si < subnets.size(); ++si) {
    const SubNet& sn = subnets[si];
    if (is_dirty[static_cast<std::size_t>(sn.net)]) continue;
    const NetRoute* p = prev_of[static_cast<std::size_t>(sn.net)]
                               [static_cast<std::size_t>(sidx(sn.side))];
    // Reuse only when the decomposition is unchanged; any mismatch (a
    // terminal moved without the net being listed dirty) falls back to a
    // fresh route of that subnet.
    if (p && p->source_gcell == sn.source && p->sink_gcells == sn.sinks) {
      route_edges[si] = p->edges;
      needs_route[si] = 0;
      carried[si] = p;
    }
  }
  for (std::size_t si = 0; si < subnets.size(); ++si) {
    if (!needs_route[si]) {
      commit(grids[static_cast<std::size_t>(sidx(subnets[si].side))],
             route_edges[si], +1.0);
    }
  }
  // The carried usage shifts edge costs: refresh the cost caches before
  // routing the dirty subnets against them.
  for (SideGrid& g : grids) g.rebuild_costs();

  // Dirty subnets in the same global short-first order as a full route.
  std::vector<std::size_t> order;
  for (std::size_t si = 0; si < subnets.size(); ++si) {
    if (needs_route[si]) order.push_back(si);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (subnets[a].hpwl != subnets[b].hpwl) {
      return subnets[a].hpwl < subnets[b].hpwl;
    }
    return subnets[a].net < subnets[b].net;
  });
  std::array<std::vector<std::size_t>, 2> side_order;
  for (std::size_t si : order) {
    side_order[static_cast<std::size_t>(sidx(subnets[si].side))].push_back(si);
  }

  std::array<PathRouter, 2> routers{PathRouter(grids[0]),
                                    PathRouter(grids[1])};
  const bool concurrent_sides = options.threads > 1;
  auto route_side_initial = [&](int s) {
    for (std::size_t si : side_order[static_cast<std::size_t>(s)]) {
      route_one_subnet(engine, options, subnets, grids, routers, route_edges,
                       si);
    }
  };
  if (concurrent_sides) {
    runtime::parallel_invoke(options.threads, [&] { route_side_initial(0); },
                             [&] { route_side_initial(1); });
  } else {
    route_side_initial(0);
    route_side_initial(1);
  }

  // Bounded negotiation over the dirty subnets only — the untouched nets'
  // routes are pinned, exactly the "rip-up-and-reroute of only the
  // modified nets" contract the ECO loop needs.
  auto total_hard = [&] {
    return grids[0].hard_overflow() + grids[1].hard_overflow();
  };
  std::vector<std::vector<GEdge>> best_routes = route_edges;
  double best_hard = total_hard();
  double best_soft = grids[0].overflow() + grids[1].overflow();
  int stale_passes = 0;
  for (int pass = 1;
       pass < options.rrr_passes && best_hard > 0.0 && stale_passes < 6;
       ++pass) {
    std::array<std::size_t, 2> ripped_counts{0, 0};
    auto pass_side = [&](int s) {
      const auto sz = static_cast<std::size_t>(s);
      SideGrid& g = grids[sz];
      decay_history(g);
      g.rebuild_costs();
      std::vector<std::size_t> ripped;
      for (std::size_t si : side_order[sz]) {
        if (subnet_crosses_overflow(subnets, grids, route_edges, si)) {
          ripped.push_back(si);
        }
      }
      for (std::size_t si : ripped) {
        commit(g, route_edges[si], -1.0);
      }
      for (std::size_t si : ripped) {
        route_one_subnet(engine, options, subnets, grids, routers,
                         route_edges, si);
      }
      ripped_counts[sz] = ripped.size();
    };
    if (concurrent_sides) {
      runtime::parallel_invoke(options.threads, [&] { pass_side(0); },
                               [&] { pass_side(1); });
    } else {
      pass_side(0);
      pass_side(1);
    }
    if (ripped_counts[0] + ripped_counts[1] == 0) break;
    res.rrr_passes = pass;
    res.ripups_total += static_cast<long>(ripped_counts[0] + ripped_counts[1]);
    const double hard = total_hard();
    const double soft = grids[0].overflow() + grids[1].overflow();
    if (hard < best_hard || (hard == best_hard && soft < best_soft)) {
      best_hard = hard;
      best_soft = soft;
      best_routes = route_edges;
      stale_passes = 0;
    } else {
      ++stale_passes;
    }
  }
  if (best_routes != route_edges) {
    for (SideGrid& g : grids) g.clear_use();
    route_edges = std::move(best_routes);
    for (std::size_t si = 0; si < subnets.size(); ++si) {
      commit(grids[static_cast<std::size_t>(sidx(subnets[si].side))],
             route_edges[si], +1.0);
    }
  }

  finalize_route_result(res, fp, tech, options, subnets, route_edges, grids,
                        routers, gs.pin_totals, gs.gsize);
  // Untouched subnets keep their previous layer assignment — their DEF
  // wires (and hence their extracted parasitics) must not drift when some
  // other net was modified.  Dirty subnets take the fresh quantile rank.
  for (std::size_t si = 0; si < subnets.size(); ++si) {
    if (carried[si]) {
      res.routes[si].h_layer_index = carried[si]->h_layer_index;
      res.routes[si].v_layer_index = carried[si]->v_layer_index;
    }
  }
  FFET_METRIC_ADD("route.reroutes", 1);
  FFET_METRIC_OBSERVE("route.reroute_dirty_subnets",
                      static_cast<double>(order.size()));
  return res;
}

}  // namespace ffet::pnr
