#include "pnr/router.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <queue>
#include <stdexcept>
#include <vector>

#include "obs/obs.h"
#include "runtime/thread_pool.h"

namespace ffet::pnr {

using netlist::NetId;
using netlist::Netlist;
using netlist::PinRef;
using stdcell::PinSide;

namespace {

/// Backside routing capacity consumed by the BSPDN stripes (the FFET routes
/// its PDN on the backside *signal* layers — Sec. IV: the highest PDN layer
/// "is determined by the highest signal routing layer on the backside").
constexpr double kPdnBacksideShare = 0.08;

/// PathFinder history increment per unit of overflow per pass, and the
/// per-pass decay that keeps stale history from forcing ever-longer
/// detours (the classic negotiation-thrash failure mode).
constexpr double kHistoryGain = 0.4;
constexpr double kHistoryDecay = 0.85;

/// One side's routing grid with separate horizontal/vertical edge pools.
struct SideGrid {
  int cols = 0, rows = 0;
  geom::Nm gw = 0, gh = 0;
  double h_cap = 0.0;  ///< capacity per horizontal edge (uniform)
  double v_cap = 0.0;
  // Horizontal edges: (cols-1) x rows; vertical: cols x (rows-1).
  std::vector<double> h_base, h_use, h_hist;
  std::vector<double> v_base, v_use, v_hist;

  int node(int c, int r) const { return r * cols + c; }
  int col_of(int n) const { return n % cols; }
  int row_of(int n) const { return n / cols; }

  int h_edge(int c, int r) const { return r * (cols - 1) + c; }  // (c,r)-(c+1,r)
  int v_edge(int c, int r) const { return r * cols + c; }        // (c,r)-(c,r+1)

  int clamp_gcell(geom::Point p) const {
    const int c = std::clamp(static_cast<int>(p.x / gw), 0, cols - 1);
    const int r = std::clamp(static_cast<int>(p.y / gh), 0, rows - 1);
    return node(c, r);
  }

  double overflow() const {
    double o = 0.0;
    for (std::size_t i = 0; i < h_use.size(); ++i) {
      o += std::max(0.0, h_base[i] + h_use[i] - h_cap);
    }
    for (std::size_t i = 0; i < v_use.size(); ++i) {
      o += std::max(0.0, v_base[i] + v_use[i] - v_cap);
    }
    return o;
  }

  /// Overflow beyond the detail-route-absorbable slack — the DRV source.
  double hard_overflow(double slack) const {
    double o = 0.0;
    for (std::size_t i = 0; i < h_use.size(); ++i) {
      o += std::max(0.0, h_base[i] + h_use[i] - h_cap * (1.0 + slack));
    }
    for (std::size_t i = 0; i < v_use.size(); ++i) {
      o += std::max(0.0, v_base[i] + v_use[i] - v_cap * (1.0 + slack));
    }
    return o;
  }
};

double edge_cost(double base, double use, double cap, double hist) {
  const double load = base + use;
  if (cap <= 0.0) return (1.0 + hist) * 64.0;
  // Multiplicative PathFinder-style cost: congested edges get expensive in
  // proportion to their overload, history biases repeat offenders, and the
  // sub-capacity term keeps a mild preference for empty regions.
  double congestion = load / cap;
  double mult = 1.0 + 0.3 * congestion;
  if (load + 1.0 > cap) {
    const double over = (load + 1.0 - cap) / cap;
    mult += 3.0 * over + 2.0 * over * over;
  }
  return (1.0 + hist) * mult;
}

/// Route one subnet as a Steiner-ish tree: iteratively connect the nearest
/// unconnected sink to the existing tree with a tree-targeted A* (Dijkstra
/// with zero-cost sources at all tree nodes).
struct PathRouter {
  SideGrid& g;
  std::vector<double> dist;
  std::vector<int> prev;
  std::vector<int> stamp_of;
  int stamp = 0;

  explicit PathRouter(SideGrid& grid)
      : g(grid),
        dist(static_cast<std::size_t>(grid.cols * grid.rows)),
        prev(dist.size(), -1),
        stamp_of(dist.size(), -1) {}

  /// Dijkstra from every node in `tree` (cost 0) until `target` is settled.
  /// Returns the path target -> tree as node list (excluding the tree node
  /// it connects to? including both endpoints).
  std::vector<int> connect(const std::vector<int>& tree, int target) {
    ++stamp;
    using QE = std::pair<double, int>;
    std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
    for (int t : tree) {
      dist[static_cast<std::size_t>(t)] = 0.0;
      prev[static_cast<std::size_t>(t)] = -1;
      stamp_of[static_cast<std::size_t>(t)] = stamp;
      pq.push({0.0, t});
    }
    while (!pq.empty()) {
      const auto [d, n] = pq.top();
      pq.pop();
      if (d > dist[static_cast<std::size_t>(n)] ||
          stamp_of[static_cast<std::size_t>(n)] != stamp) {
        continue;
      }
      if (n == target) break;
      const int c = g.col_of(n), r = g.row_of(n);
      auto relax = [&](int nn, double w) {
        const auto ni = static_cast<std::size_t>(nn);
        if (stamp_of[ni] != stamp || d + w < dist[ni]) {
          stamp_of[ni] = stamp;
          dist[ni] = d + w;
          prev[ni] = n;
          pq.push({d + w, nn});
        }
      };
      if (c + 1 < g.cols) {
        const int e = g.h_edge(c, r);
        relax(g.node(c + 1, r),
              edge_cost(g.h_base[static_cast<std::size_t>(e)],
                        g.h_use[static_cast<std::size_t>(e)], g.h_cap,
                        g.h_hist[static_cast<std::size_t>(e)]));
      }
      if (c - 1 >= 0) {
        const int e = g.h_edge(c - 1, r);
        relax(g.node(c - 1, r),
              edge_cost(g.h_base[static_cast<std::size_t>(e)],
                        g.h_use[static_cast<std::size_t>(e)], g.h_cap,
                        g.h_hist[static_cast<std::size_t>(e)]));
      }
      if (r + 1 < g.rows) {
        const int e = g.v_edge(c, r);
        relax(g.node(c, r + 1),
              edge_cost(g.v_base[static_cast<std::size_t>(e)],
                        g.v_use[static_cast<std::size_t>(e)], g.v_cap,
                        g.v_hist[static_cast<std::size_t>(e)]));
      }
      if (r - 1 >= 0) {
        const int e = g.v_edge(c, r - 1);
        relax(g.node(c, r - 1),
              edge_cost(g.v_base[static_cast<std::size_t>(e)],
                        g.v_use[static_cast<std::size_t>(e)], g.v_cap,
                        g.v_hist[static_cast<std::size_t>(e)]));
      }
    }
    // Walk back from target to the tree.
    std::vector<int> path;
    int n = target;
    if (stamp_of[static_cast<std::size_t>(n)] != stamp) return path;  // unreachable
    while (n != -1) {
      path.push_back(n);
      n = prev[static_cast<std::size_t>(n)];
    }
    return path;
  }
};

/// Apply (or remove, sign=-1) a route's usage to the grid.
void commit(SideGrid& g, const std::vector<GEdge>& edges, double sign) {
  for (const GEdge& e : edges) {
    const int a = std::min(e.a, e.b);
    const int b = std::max(e.a, e.b);
    const int ca = g.col_of(a), ra = g.row_of(a);
    if (b == a + 1) {
      g.h_use[static_cast<std::size_t>(g.h_edge(ca, ra))] += sign;
    } else {
      g.v_use[static_cast<std::size_t>(g.v_edge(ca, ra))] += sign;
    }
  }
}

/// A subnet to route: source + sinks on one side.
struct SubNet {
  NetId net = netlist::kNoNet;
  Side side = Side::Front;
  int source = 0;
  std::vector<int> sinks;
  geom::Nm hpwl = 0;
};

}  // namespace

RouteResult route_design(const Netlist& nl, const Floorplan& fp,
                         const RouteOptions& options) {
  FFET_TRACE_SCOPE("route.design");
  const tech::Technology& tech = nl.library().tech();
  RouteResult res;

  const geom::Nm gsize = options.gcell_tracks * tech.track_pitch();
  res.gcell_w = gsize;
  res.gcell_h = gsize;
  res.gcols = std::max(1, static_cast<int>((fp.core.width() + gsize - 1) / gsize));
  res.grows = std::max(1, static_cast<int>((fp.core.height() + gsize - 1) / gsize));

  // --- build the per-side grids ------------------------------------------------
  std::array<SideGrid, 2> grids;
  auto side_index = [](Side s) { return s == Side::Front ? 0 : 1; };
  for (Side s : {Side::Front, Side::Back}) {
    SideGrid& g = grids[static_cast<std::size_t>(side_index(s))];
    g.cols = res.gcols;
    g.rows = res.grows;
    g.gw = gsize;
    g.gh = gsize;
    double hc = 0.0, vc = 0.0;
    for (const tech::MetalLayer* l : tech.routing_layers(s)) {
      const int tracks = static_cast<int>(gsize / l->pitch);
      if (l->preferred_dir == geom::Dir::Horizontal) {
        hc += tracks;
      } else {
        vc += tracks;
      }
    }
    g.h_cap = hc * options.capacity_factor;
    g.v_cap = vc * options.capacity_factor;
    if (s == Side::Back && g.h_cap > 0.0) {
      // BSPDN shares the backside signal layers.
      g.h_cap *= (1.0 - kPdnBacksideShare);
      g.v_cap *= (1.0 - kPdnBacksideShare);
    }
    g.h_base.assign(static_cast<std::size_t>((g.cols - 1) * g.rows), 0.0);
    g.h_use = g.h_base;
    g.h_hist = g.h_base;
    g.v_base.assign(static_cast<std::size_t>(g.cols * (g.rows - 1)), 0.0);
    g.v_use = g.v_base;
    g.v_hist = g.v_base;
  }

  // --- pin-access demand -------------------------------------------------------
  // Every pin consumes a share of the routing resources around its gcell on
  // the side(s) where its landing metal lives.  This is where FFET FM12's
  // "higher pin density ... due to FFET's smaller cell area" (Fig. 8c)
  // penalty enters, and what dual-sided pin redistribution relieves.
  std::array<long, 2> pin_totals{0, 0};
  auto add_pin_demand = [&](Side s, geom::Point pos) {
    SideGrid& g = grids[static_cast<std::size_t>(side_index(s))];
    ++pin_totals[static_cast<std::size_t>(side_index(s))];
    if (g.h_cap <= 0.0 && g.v_cap <= 0.0) return;  // no layers: no wiring
    const int n = g.clamp_gcell(pos);
    const int c = g.col_of(n), r = g.row_of(n);
    const double d = options.pin_access_demand / 2.0;
    if (c > 0) g.h_base[static_cast<std::size_t>(g.h_edge(c - 1, r))] += d;
    if (c + 1 < g.cols) g.h_base[static_cast<std::size_t>(g.h_edge(c, r))] += d;
    if (r > 0) g.v_base[static_cast<std::size_t>(g.v_edge(c, r - 1))] += d;
    if (r + 1 < g.rows) g.v_base[static_cast<std::size_t>(g.v_edge(c, r))] += d;
  };
  for (const netlist::Instance& inst : nl.instances()) {
    if (inst.type->physical_only()) continue;
    for (std::size_t p = 0; p < inst.pin_nets.size(); ++p) {
      if (inst.pin_nets[p] == netlist::kNoNet) continue;
      const auto& pin = inst.type->pins()[p];
      const geom::Point pos = inst.pos + pin.offset;
      switch (pin.side) {
        case PinSide::Front: add_pin_demand(Side::Front, pos); break;
        case PinSide::Back: add_pin_demand(Side::Back, pos); break;
        case PinSide::Both:
          add_pin_demand(Side::Front, pos);
          add_pin_demand(Side::Back, pos);
          break;
      }
    }
  }

  // --- Algorithm 1: decompose nets into per-side subnets ------------------------
  const bool has_back = tech.num_routing_layers(Side::Back) > 0;
  std::vector<SubNet> subnets;
  for (int n = 0; n < nl.num_nets(); ++n) {
    const netlist::Net& net = nl.net(n);
    // Source gcell: driving cell pin or input port.
    geom::Point src_pos;
    PinSide src_side = PinSide::Front;
    if (net.driver.inst != netlist::kNoInst) {
      src_pos = nl.pin_position(net.driver);
      src_side = nl.pin_side(net.driver);
    } else if (net.port >= 0) {
      src_pos = nl.port(net.port).pos;
      // IO pads: FFET pads land on the backside bump stack but expose
      // access on both sides (the pad via stack crosses the wafer);
      // CFET pads are frontside-only.
      src_side = has_back ? PinSide::Both : PinSide::Front;
    } else {
      continue;  // dangling net
    }

    std::array<std::vector<geom::Point>, 2> side_sinks;
    for (const PinRef& sref : net.sinks) {
      const PinSide ps = nl.pin_side(sref);
      const Side s = ps == PinSide::Back ? Side::Back : Side::Front;
      side_sinks[static_cast<std::size_t>(side_index(s))].push_back(
          nl.pin_position(sref));
    }
    if (net.port >= 0 && !nl.port(net.port).is_input &&
        net.driver.inst != netlist::kNoInst) {
      side_sinks[0].push_back(nl.port(net.port).pos);  // PO pad, frontside
    }

    for (Side s : {Side::Front, Side::Back}) {
      const auto& sinks = side_sinks[static_cast<std::size_t>(side_index(s))];
      if (sinks.empty()) continue;
      if (s == Side::Back) {
        if (!has_back) {
          throw std::runtime_error(
              "net " + net.name +
              " has backside sinks but the technology has no backside "
              "routing layers (no bridging cells in this flow)");
        }
        if (src_side != PinSide::Both) {
          throw std::runtime_error(
              "net " + net.name +
              " has backside sinks but its source pin is frontside-only");
        }
      }
      SideGrid& g = grids[static_cast<std::size_t>(side_index(s))];
      SubNet sn;
      sn.net = n;
      sn.side = s;
      sn.source = g.clamp_gcell(src_pos);
      geom::Rect bbox{src_pos, src_pos};
      for (const geom::Point& p : sinks) {
        sn.sinks.push_back(g.clamp_gcell(p));
        bbox = bbox.united({p, p});
      }
      sn.hpwl = bbox.width() + bbox.height();
      subnets.push_back(std::move(sn));
    }
  }

  // Route order: short nets first (they have the least flexibility).
  std::vector<std::size_t> order(subnets.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (subnets[a].hpwl != subnets[b].hpwl) {
      return subnets[a].hpwl < subnets[b].hpwl;
    }
    return subnets[a].net < subnets[b].net;
  });

  // Per-side subsequences of `order`.  A subnet only ever touches its own
  // side's grid and router, so the two sides can route concurrently; each
  // side preserving its in-order subsequence of `order` makes any
  // interleaving produce the same grids as the serial pass.
  const bool concurrent_sides = options.threads > 1;
  std::array<std::vector<std::size_t>, 2> side_order;
  for (std::size_t si : order) {
    side_order[static_cast<std::size_t>(side_index(subnets[si].side))]
        .push_back(si);
  }

  // --- route with rip-up-and-reroute --------------------------------------------
  std::array<PathRouter, 2> routers{PathRouter(grids[0]), PathRouter(grids[1])};
  std::vector<std::vector<GEdge>> route_edges(subnets.size());

  auto route_one = [&](std::size_t si) {
    SubNet& sn = subnets[si];
    SideGrid& g = grids[static_cast<std::size_t>(side_index(sn.side))];
    PathRouter& pr = routers[static_cast<std::size_t>(side_index(sn.side))];
    std::vector<GEdge>& edges = route_edges[si];
    edges.clear();
    std::vector<int> tree = {sn.source};
    // Connect sinks nearest-first.
    std::vector<int> todo = sn.sinks;
    std::sort(todo.begin(), todo.end(), [&](int a, int b) {
      const auto da = std::abs(g.col_of(a) - g.col_of(sn.source)) +
                      std::abs(g.row_of(a) - g.row_of(sn.source));
      const auto db = std::abs(g.col_of(b) - g.col_of(sn.source)) +
                      std::abs(g.row_of(b) - g.row_of(sn.source));
      if (da != db) return da < db;
      return a < b;
    });
    for (int sink : todo) {
      if (std::find(tree.begin(), tree.end(), sink) != tree.end()) continue;
      const std::vector<int> path = pr.connect(tree, sink);
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        edges.push_back({path[i], path[i + 1]});
        tree.push_back(path[i]);
      }
      if (!path.empty()) tree.push_back(path.back());
    }
    commit(g, edges, +1.0);
  };

  // The two sides touch disjoint grids and routers, so iterating each
  // side's in-order subsequence of `order` produces exactly the grids the
  // original interleaved serial loop did — and gives every side a
  // traceable span in both serial and concurrent execution.
  auto route_side_initial = [&](int s) {
    FFET_TRACE_SCOPE("route.initial.", s == 0 ? "front" : "back");
    for (std::size_t si : side_order[static_cast<std::size_t>(s)]) {
      route_one(si);
    }
  };
  if (concurrent_sides) {
    runtime::parallel_invoke(options.threads, [&] { route_side_initial(0); },
                             [&] { route_side_initial(1); });
  } else {
    route_side_initial(0);
    route_side_initial(1);
  }

  // Negotiated rip-up-and-reroute: decay history, bump it on overflowed
  // edges, reroute the nets crossing them.  The best solution seen (by hard
  // overflow, then total overflow) is kept — negotiation is not monotone.
  auto total_hard = [&] {
    double o = 0.0;
    for (const SideGrid& g : grids) o += g.hard_overflow(options.dr_slack);
    return o;
  };
  std::vector<std::vector<GEdge>> best_routes = route_edges;
  double best_hard = total_hard();
  double best_soft_front = grids[0].overflow();
  double best_soft_back = grids[1].overflow();
  double best_soft = best_soft_front + best_soft_back;
  int stale_passes = 0;

  // Convergence record + optional FFET_VERBOSE one-line-per-side summary
  // (this replaces ad-hoc printf debugging of negotiation stalls).  The
  // overflow values are passed in, not recomputed: the pass barrier scans
  // each grid exactly once whether or not anyone reads the record.
  auto record_pass = [&](int pass, std::size_t ripped_front,
                         std::size_t ripped_back, double soft_front,
                         double soft_back, double hard) {
    RoutePassStat ps;
    ps.pass = pass;
    ps.ripped_front = static_cast<int>(ripped_front);
    ps.ripped_back = static_cast<int>(ripped_back);
    ps.overflow_front = soft_front;
    ps.overflow_back = soft_back;
    ps.hard_overflow = hard;
    if (obs::verbose()) {
      for (int s = 0; s < 2; ++s) {
        std::printf(
            "  [route] pass=%d side=%s %s=%d overflow_total=%.1f "
            "hard=%.1f\n",
            pass, s == 0 ? "front" : "back",
            pass == 0 ? "routed" : "ripups",
            s == 0 ? ps.ripped_front : ps.ripped_back,
            s == 0 ? ps.overflow_front : ps.overflow_back,
            ps.hard_overflow);
      }
    }
    res.pass_stats.push_back(ps);
  };
  record_pass(0, side_order[0].size(), side_order[1].size(),
              best_soft_front, best_soft_back, best_hard);
  auto decay_history = [](SideGrid& g) {
    for (std::size_t i = 0; i < g.h_use.size(); ++i) {
      g.h_hist[i] *= kHistoryDecay;
      const double o = g.h_base[i] + g.h_use[i] - g.h_cap;
      if (o > 0) g.h_hist[i] += kHistoryGain * o / g.h_cap;
    }
    for (std::size_t i = 0; i < g.v_use.size(); ++i) {
      g.v_hist[i] *= kHistoryDecay;
      const double o = g.v_base[i] + g.v_use[i] - g.v_cap;
      if (o > 0) g.v_hist[i] += kHistoryGain * o / g.v_cap;
    }
  };
  auto crosses_overflow = [&](std::size_t si) {
    const SideGrid& g =
        grids[static_cast<std::size_t>(side_index(subnets[si].side))];
    for (const GEdge& e : route_edges[si]) {
      const int a = std::min(e.a, e.b), b = std::max(e.a, e.b);
      const int c = g.col_of(a), r = g.row_of(a);
      if (b == a + 1) {
        const auto i = static_cast<std::size_t>(g.h_edge(c, r));
        if (g.h_base[i] + g.h_use[i] > g.h_cap) return true;
      } else {
        const auto i = static_cast<std::size_t>(g.v_edge(c, r));
        if (g.v_base[i] + g.v_use[i] > g.v_cap) return true;
      }
    }
    return false;
  };
  for (int pass = 1;
       pass < options.rrr_passes && best_hard > 0.0 && stale_passes < 6;
       ++pass) {
    // Each side negotiates its pass independently: decay its history,
    // find its overflowing subnets (in this side's `order` subsequence),
    // rip them all, reroute them all — restricted to state the other
    // side never touches, so serial per-side execution and concurrent
    // execution produce identical grids.  The pass barrier below
    // (overflow totals, best tracking, convergence record) is serial.
    std::array<std::size_t, 2> ripped_counts{0, 0};
    auto pass_side = [&](int s) {
      FFET_TRACE_SCOPE("route.pass.", pass, s == 0 ? ".front" : ".back");
      const auto sz = static_cast<std::size_t>(s);
      decay_history(grids[sz]);
      std::vector<std::size_t> ripped;
      for (std::size_t si : side_order[sz]) {
        if (crosses_overflow(si)) ripped.push_back(si);
      }
      for (std::size_t si : ripped) {
        commit(grids[sz], route_edges[si], -1.0);
      }
      for (std::size_t si : ripped) route_one(si);
      ripped_counts[sz] = ripped.size();
    };
    if (concurrent_sides) {
      runtime::parallel_invoke(options.threads, [&] { pass_side(0); },
                               [&] { pass_side(1); });
    } else {
      pass_side(0);
      pass_side(1);
    }
    if (ripped_counts[0] + ripped_counts[1] == 0) break;
    res.rrr_passes = pass;
    res.ripups_total +=
        static_cast<long>(ripped_counts[0] + ripped_counts[1]);
    FFET_METRIC_OBSERVE("route.ripups_per_pass",
                        ripped_counts[0] + ripped_counts[1]);

    const double hard = total_hard();
    const double soft_front = grids[0].overflow();
    const double soft_back = grids[1].overflow();
    const double soft = soft_front + soft_back;
    record_pass(pass, ripped_counts[0], ripped_counts[1], soft_front,
                soft_back, hard);
    if (hard < best_hard || (hard == best_hard && soft < best_soft)) {
      best_hard = hard;
      best_soft = soft;
      best_routes = route_edges;
      stale_passes = 0;
    } else {
      ++stale_passes;
    }
  }
  // Restore the best solution (usage arrays included, for diagnostics).
  if (best_routes != route_edges) {
    for (SideGrid& g : grids) {
      std::fill(g.h_use.begin(), g.h_use.end(), 0.0);
      std::fill(g.v_use.begin(), g.v_use.end(), 0.0);
    }
    route_edges = std::move(best_routes);
    for (std::size_t si = 0; si < subnets.size(); ++si) {
      commit(grids[static_cast<std::size_t>(side_index(subnets[si].side))],
             route_edges[si], +1.0);
    }
  }

  // --- results -------------------------------------------------------------------
  const double gsize_um = geom::to_um(gsize);
  // Layer assignment by wirelength quantile: longer nets ride higher layers.
  std::vector<std::size_t> by_len(subnets.size());
  for (std::size_t i = 0; i < by_len.size(); ++i) by_len[i] = i;
  std::sort(by_len.begin(), by_len.end(), [&](std::size_t a, std::size_t b) {
    if (route_edges[a].size() != route_edges[b].size()) {
      return route_edges[a].size() < route_edges[b].size();
    }
    return subnets[a].net < subnets[b].net;
  });
  std::vector<double> quantile(subnets.size(), 0.0);
  for (std::size_t rank = 0; rank < by_len.size(); ++rank) {
    quantile[by_len[rank]] =
        by_len.size() > 1
            ? static_cast<double>(rank) / static_cast<double>(by_len.size() - 1)
            : 0.0;
  }

  res.routes.reserve(subnets.size());
  for (std::size_t si = 0; si < subnets.size(); ++si) {
    const SubNet& sn = subnets[si];
    NetRoute nr;
    nr.net = sn.net;
    nr.side = sn.side;
    nr.edges = route_edges[si];
    nr.sink_gcells = sn.sinks;
    nr.source_gcell = sn.source;
    nr.wirelength_um =
        static_cast<double>(nr.edges.size()) * gsize_um +
        0.2;  // local pin hookup
    // Pick the layer pair by quantile over this side's available layers.
    const auto layers = tech.routing_layers(sn.side);
    std::vector<int> h_layers, v_layers;
    for (const tech::MetalLayer* l : layers) {
      (l->preferred_dir == geom::Dir::Horizontal ? h_layers : v_layers)
          .push_back(l->index);
    }
    auto pick = [&](const std::vector<int>& ls) {
      if (ls.empty()) return 0;
      const auto k = static_cast<std::size_t>(
          quantile[si] * 0.999 * static_cast<double>(ls.size()));
      return ls[k];
    };
    nr.h_layer_index = pick(h_layers);
    nr.v_layer_index = pick(v_layers);

    if (sn.side == Side::Front) {
      res.wirelength_front_um += nr.wirelength_um;
      ++res.nets_front;
    } else {
      res.wirelength_back_um += nr.wirelength_um;
      ++res.nets_back;
    }
    res.routes.push_back(std::move(nr));
  }

  double overflow = 0.0;
  double hard_overflow = 0.0;
  for (const SideGrid& g : grids) {
    overflow += g.overflow();
    hard_overflow += g.hard_overflow(options.dr_slack);
    res.capacity_units +=
        g.h_cap * static_cast<double>(g.h_use.size()) +
        g.v_cap * static_cast<double>(g.v_use.size());
    for (double u : g.h_use) res.wire_demand_units += u;
    for (double u : g.v_use) res.wire_demand_units += u;
    for (double u : g.h_base) res.pin_demand_units += u;
    for (double u : g.v_base) res.pin_demand_units += u;
  }
  res.overflow_total = static_cast<int>(std::round(overflow));
  res.drv_wire = static_cast<int>(std::round(hard_overflow));

  // Pin-access DRVs: when a side's pin density exceeds what the detailed
  // router can hook up, every pin beyond the budget becomes an access
  // violation.  Density is evaluated block-wide per side — the sharp,
  // deterministic version of the paper's pin-density routability limit.
  const double core_area_um2 = fp.core.area_um2();
  const double pin_budget =
      options.pin_access_limit_per_um2 * core_area_um2;
  double pin_drv = 0.0;
  for (int side = 0; side < 2; ++side) {
    // A side without routing layers carries no signal hookup (its pin
    // landings are unused metal), so it cannot produce access violations.
    const SideGrid& g = grids[static_cast<std::size_t>(side)];
    if (g.h_cap <= 0.0 && g.v_cap <= 0.0) continue;
    pin_drv += std::max(
        0.0, static_cast<double>(pin_totals[static_cast<std::size_t>(side)]) -
                 pin_budget);
  }
  res.drv_pin_access = static_cast<int>(std::round(pin_drv));

  res.drv_estimate = res.drv_wire + res.drv_pin_access;
  res.valid = res.drv_estimate < 10;  // the paper's validity rule

  FFET_METRIC_ADD("route.ripups", res.ripups_total);
  FFET_METRIC_ADD("route.drv.wire", res.drv_wire);
  FFET_METRIC_ADD("route.drv.pin_access", res.drv_pin_access);
  FFET_METRIC_OBSERVE("route.rrr_passes", res.rrr_passes);
  FFET_METRIC_OBSERVE("route.overflow", overflow);
  return res;
}

}  // namespace ffet::pnr
