#include "pnr/router.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <queue>
#include <stdexcept>
#include <vector>

#include "obs/obs.h"
#include "runtime/thread_pool.h"

namespace ffet::pnr {

using netlist::NetId;
using netlist::Netlist;
using netlist::PinRef;
using stdcell::PinSide;

namespace {

/// Backside routing capacity consumed by the BSPDN stripes (the FFET routes
/// its PDN on the backside *signal* layers — Sec. IV: the highest PDN layer
/// "is determined by the highest signal routing layer on the backside").
constexpr double kPdnBacksideShare = 0.08;

/// PathFinder history increment per unit of overflow per pass, and the
/// per-pass decay that keeps stale history from forcing ever-longer
/// detours (the classic negotiation-thrash failure mode).
constexpr double kHistoryGain = 0.4;
constexpr double kHistoryDecay = 0.85;

double edge_cost(double base, double use, double cap, double hist) {
  const double load = base + use;
  if (cap <= 0.0) return (1.0 + hist) * 64.0;
  // Multiplicative PathFinder-style cost: congested edges get expensive in
  // proportion to their overload, history biases repeat offenders, and the
  // sub-capacity term keeps a mild preference for empty regions.
  double congestion = load / cap;
  double mult = 1.0 + 0.3 * congestion;
  if (load + 1.0 > cap) {
    const double over = (load + 1.0 - cap) / cap;
    mult += 3.0 * over + 2.0 * over * over;
  }
  return (1.0 + hist) * mult;
}

/// One side's routing grid with separate horizontal/vertical edge pools.
///
/// Beyond the raw capacity/usage/history arrays the grid owns two derived
/// structures the maze search depends on:
///
///   * a per-pass *edge-cost cache* (`h_cost`/`v_cost`): edge_cost() of
///     every edge, rebuilt by rebuild_costs() whenever history changes
///     (pass start) and invalidated per-edge by apply_use_*() when a
///     commit touches that edge.  The search kernels read only the cache,
///     so a settled node costs 4 array loads instead of 4 edge_cost()
///     evaluations;
///   * *incremental overflow totals* (`soft_total`/`hard_total`):
///     apply_use_*() maintains the running sum of per-edge overflow, so
///     the negotiation pass barrier reads overflow in O(1) instead of
///     rescanning every edge of both grids.
struct SideGrid {
  int cols = 0, rows = 0;
  geom::Nm gw = 0, gh = 0;
  double h_cap = 0.0;  ///< capacity per horizontal edge (uniform)
  double v_cap = 0.0;
  double h_cap_hard = 0.0;  ///< h_cap * (1 + dr_slack); beyond it: DRVs
  double v_cap_hard = 0.0;
  // Horizontal edges: (cols-1) x rows; vertical: cols x (rows-1).
  std::vector<double> h_base, h_use, h_hist;
  std::vector<double> v_base, v_use, v_hist;
  std::vector<double> h_cost, v_cost;  ///< per-pass edge-cost cache
  /// Admissible per-direction lower bounds on any edge cost reachable
  /// during the current pass: history is fixed within a pass and
  /// edge_cost() >= (1 + hist) * (cap > 0 ? 1 : 64) for any load, so the
  /// minimum over edges of that expression underestimates every step the
  /// A* heuristic has to account for — even after rip-ups lower loads.
  double floor_h = 1.0, floor_v = 1.0;
  double soft_total = 0.0;  ///< running sum of max(0, load - cap)
  double hard_total = 0.0;  ///< running sum of max(0, load - cap_hard)

  int node(int c, int r) const { return r * cols + c; }
  int col_of(int n) const { return n % cols; }
  int row_of(int n) const { return n / cols; }

  int h_edge(int c, int r) const { return r * (cols - 1) + c; }  // (c,r)-(c+1,r)
  int v_edge(int c, int r) const { return r * cols + c; }        // (c,r)-(c,r+1)

  int clamp_gcell(geom::Point p) const {
    const int c = std::clamp(static_cast<int>(p.x / gw), 0, cols - 1);
    const int r = std::clamp(static_cast<int>(p.y / gh), 0, rows - 1);
    return node(c, r);
  }

  /// Call once after capacities and pin-demand bases are final.
  void finalize(double dr_slack) {
    h_cap_hard = h_cap * (1.0 + dr_slack);
    v_cap_hard = v_cap * (1.0 + dr_slack);
    h_cost.assign(h_base.size(), 0.0);
    v_cost.assign(v_base.size(), 0.0);
    rebuild_costs();
    rescan_overflow();
  }

  /// Rebuild the edge-cost cache and the heuristic floors.  Required
  /// whenever history changes (pass start); within a pass the cache stays
  /// valid because apply_use_*() refreshes every edge a commit touches.
  void rebuild_costs() {
    double min_hist_h = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < h_cost.size(); ++i) {
      h_cost[i] = edge_cost(h_base[i], h_use[i], h_cap, h_hist[i]);
      min_hist_h = std::min(min_hist_h, h_hist[i]);
    }
    double min_hist_v = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < v_cost.size(); ++i) {
      v_cost[i] = edge_cost(v_base[i], v_use[i], v_cap, v_hist[i]);
      min_hist_v = std::min(min_hist_v, v_hist[i]);
    }
    floor_h = h_cost.empty() ? 1.0
                             : (1.0 + min_hist_h) * (h_cap > 0.0 ? 1.0 : 64.0);
    floor_v = v_cost.empty() ? 1.0
                             : (1.0 + min_hist_v) * (v_cap > 0.0 ? 1.0 : 64.0);
  }

  void apply_use_h(std::size_t i, double delta) {
    const double before = h_base[i] + h_use[i];
    h_use[i] += delta;
    const double after = before + delta;
    soft_total += std::max(0.0, after - h_cap) - std::max(0.0, before - h_cap);
    hard_total +=
        std::max(0.0, after - h_cap_hard) - std::max(0.0, before - h_cap_hard);
    h_cost[i] = edge_cost(h_base[i], h_use[i], h_cap, h_hist[i]);
  }
  void apply_use_v(std::size_t i, double delta) {
    const double before = v_base[i] + v_use[i];
    v_use[i] += delta;
    const double after = before + delta;
    soft_total += std::max(0.0, after - v_cap) - std::max(0.0, before - v_cap);
    hard_total +=
        std::max(0.0, after - v_cap_hard) - std::max(0.0, before - v_cap_hard);
    v_cost[i] = edge_cost(v_base[i], v_use[i], v_cap, v_hist[i]);
  }

  /// Would one more net on this edge push it beyond the detail-route
  /// slack?  The windowed A* attempts prune such edges (negotiation can
  /// absorb *soft* overflow; hard overflow is a DRV) and fall back to an
  /// unpruned full-grid search if no clean path exists.
  bool h_full(std::size_t i) const {
    return h_base[i] + h_use[i] + 1.0 > h_cap_hard;
  }
  bool v_full(std::size_t i) const {
    return v_base[i] + v_use[i] + 1.0 > v_cap_hard;
  }

  /// Soft overflow (absorbed by the detail router up to dr_slack).  O(1):
  /// maintained incrementally; the max() guards last-ulp drift from the
  /// running +/- updates when the true total is zero.
  double overflow() const { return std::max(0.0, soft_total); }

  /// Overflow beyond the detail-route-absorbable slack — the DRV source.
  double hard_overflow() const { return std::max(0.0, hard_total); }

  /// Recompute the running totals from scratch (initialization and the
  /// best-solution restore; never on the per-pass barrier).
  void rescan_overflow() {
    soft_total = 0.0;
    hard_total = 0.0;
    for (std::size_t i = 0; i < h_use.size(); ++i) {
      const double load = h_base[i] + h_use[i];
      soft_total += std::max(0.0, load - h_cap);
      hard_total += std::max(0.0, load - h_cap_hard);
    }
    for (std::size_t i = 0; i < v_use.size(); ++i) {
      const double load = v_base[i] + v_use[i];
      soft_total += std::max(0.0, load - v_cap);
      hard_total += std::max(0.0, load - v_cap_hard);
    }
  }

  void clear_use() {
    std::fill(h_use.begin(), h_use.end(), 0.0);
    std::fill(v_use.begin(), v_use.end(), 0.0);
    rescan_overflow();
  }
};

/// Route one subnet as a Steiner-ish tree: iteratively connect the nearest
/// unconnected sink to the existing tree with a tree-targeted maze search
/// (zero-cost sources at all tree nodes).  Two kernels share the search
/// state:
///
///   * connect_legacy(): the original unbounded full-grid Dijkstra
///     (std::priority_queue, live edge_cost() calls) — the QoR baseline
///     and FFET_ROUTE_ENGINE=legacy escape hatch;
///   * connect_astar(): windowed A* — admissible Manhattan heuristic
///     scaled by the grid's per-pass cost floors, deterministic
///     (f, g, node-id) tie-breaking, a search window around the bounding
///     box of {tree, target} that doubles its margin and finally opens to
///     the full grid when no hard-overflow-free path exists inside it,
///     cached edge costs, and a 4-ary open list.
struct PathRouter {
  SideGrid& g;
  std::vector<double> dist;
  std::vector<int> prev;
  std::vector<int> stamp_of;
  std::vector<int> tree_stamp_of;  ///< O(1) tree membership (stamped)
  int stamp = 0;
  int tree_stamp = 0;
  long settled = 0;     ///< nodes settled across all searches (both kernels)
  long expansions = 0;  ///< A* window retries (x2 margin or full grid)

  /// 4-ary min-heap keyed (f, g, node-id): lower f first, then *higher* g
  /// (ties on f prefer nodes closer to the target), then lower node id —
  /// a total order, so the open list is deterministic regardless of
  /// insertion timing.  Flatter than a binary heap: fewer cache-missing
  /// levels per sift on the push-heavy maze workload.
  struct OpenList {
    struct Item {
      double f = 0.0;
      double g = 0.0;
      int n = 0;
    };
    std::vector<Item> v;

    static bool before(const Item& a, const Item& b) {
      if (a.f != b.f) return a.f < b.f;
      if (a.g != b.g) return a.g > b.g;
      return a.n < b.n;
    }
    bool empty() const { return v.empty(); }
    void clear() { v.clear(); }
    void reserve(std::size_t n) { v.reserve(n); }
    void push(Item it) {
      v.push_back(it);
      std::size_t i = v.size() - 1;
      while (i > 0) {
        const std::size_t p = (i - 1) / 4;
        if (!before(v[i], v[p])) break;
        std::swap(v[i], v[p]);
        i = p;
      }
    }
    Item pop() {
      const Item top = v.front();
      v.front() = v.back();
      v.pop_back();
      const std::size_t n = v.size();
      std::size_t i = 0;
      while (true) {
        const std::size_t c0 = 4 * i + 1;
        if (c0 >= n) break;
        std::size_t best = i;
        const std::size_t c_end = std::min(c0 + 4, n);
        for (std::size_t c = c0; c < c_end; ++c) {
          if (before(v[c], v[best])) best = c;
        }
        if (best == i) break;
        std::swap(v[i], v[best]);
        i = best;
      }
      return top;
    }
  };
  OpenList open;

  explicit PathRouter(SideGrid& grid)
      : g(grid),
        dist(static_cast<std::size_t>(grid.cols * grid.rows)),
        prev(dist.size(), -1),
        stamp_of(dist.size(), -1),
        tree_stamp_of(dist.size(), -1) {
    open.reserve(256);
  }

  void tree_begin() { ++tree_stamp; }
  void tree_add(int n) { tree_stamp_of[static_cast<std::size_t>(n)] = tree_stamp; }
  bool in_tree(int n) const {
    return tree_stamp_of[static_cast<std::size_t>(n)] == tree_stamp;
  }

  /// Dijkstra from every node in `tree` (cost 0) until `target` is
  /// settled.  Returns the path target -> tree as node list (both
  /// endpoints included).
  std::vector<int> connect_legacy(const std::vector<int>& tree, int target) {
    ++stamp;
    using QE = std::pair<double, int>;
    std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
    for (int t : tree) {
      dist[static_cast<std::size_t>(t)] = 0.0;
      prev[static_cast<std::size_t>(t)] = -1;
      stamp_of[static_cast<std::size_t>(t)] = stamp;
      pq.push({0.0, t});
    }
    while (!pq.empty()) {
      const auto [d, n] = pq.top();
      pq.pop();
      if (d > dist[static_cast<std::size_t>(n)] ||
          stamp_of[static_cast<std::size_t>(n)] != stamp) {
        continue;
      }
      ++settled;
      if (n == target) break;
      const int c = g.col_of(n), r = g.row_of(n);
      auto relax = [&](int nn, double w) {
        const auto ni = static_cast<std::size_t>(nn);
        if (stamp_of[ni] != stamp || d + w < dist[ni]) {
          stamp_of[ni] = stamp;
          dist[ni] = d + w;
          prev[ni] = n;
          pq.push({d + w, nn});
        }
      };
      if (c + 1 < g.cols) {
        const int e = g.h_edge(c, r);
        relax(g.node(c + 1, r),
              edge_cost(g.h_base[static_cast<std::size_t>(e)],
                        g.h_use[static_cast<std::size_t>(e)], g.h_cap,
                        g.h_hist[static_cast<std::size_t>(e)]));
      }
      if (c - 1 >= 0) {
        const int e = g.h_edge(c - 1, r);
        relax(g.node(c - 1, r),
              edge_cost(g.h_base[static_cast<std::size_t>(e)],
                        g.h_use[static_cast<std::size_t>(e)], g.h_cap,
                        g.h_hist[static_cast<std::size_t>(e)]));
      }
      if (r + 1 < g.rows) {
        const int e = g.v_edge(c, r);
        relax(g.node(c, r + 1),
              edge_cost(g.v_base[static_cast<std::size_t>(e)],
                        g.v_use[static_cast<std::size_t>(e)], g.v_cap,
                        g.v_hist[static_cast<std::size_t>(e)]));
      }
      if (r - 1 >= 0) {
        const int e = g.v_edge(c, r - 1);
        relax(g.node(c, r - 1),
              edge_cost(g.v_base[static_cast<std::size_t>(e)],
                        g.v_use[static_cast<std::size_t>(e)], g.v_cap,
                        g.v_hist[static_cast<std::size_t>(e)]));
      }
    }
    return walk_back(target);
  }

  /// One bounded A* attempt inside [c_lo,c_hi]x[r_lo,r_hi].  With `prune`
  /// set, edges already at their hard capacity are not crossed (a clean
  /// path is demanded).  Returns true when `target` was settled.
  bool search_window(const std::vector<int>& tree, int target, int c_lo,
                     int c_hi, int r_lo, int r_hi, bool prune) {
    ++stamp;
    open.clear();
    const double fh = g.floor_h;
    const double fv = g.floor_v;
    const int tc = g.col_of(target), tr = g.row_of(target);
    auto heur = [&](int c, int r) {
      return fh * static_cast<double>(std::abs(c - tc)) +
             fv * static_cast<double>(std::abs(r - tr));
    };
    for (int t : tree) {
      const auto ti = static_cast<std::size_t>(t);
      dist[ti] = 0.0;
      prev[ti] = -1;
      stamp_of[ti] = stamp;
      open.push({heur(g.col_of(t), g.row_of(t)), 0.0, t});
    }
    while (!open.empty()) {
      const OpenList::Item it = open.pop();
      const int n = it.n;
      const auto ni = static_cast<std::size_t>(n);
      if (stamp_of[ni] != stamp || it.g > dist[ni]) continue;
      ++settled;
      if (n == target) return true;
      const int c = g.col_of(n), r = g.row_of(n);
      const double d = it.g;
      auto relax = [&](int nc, int nr, double w) {
        const int nn = g.node(nc, nr);
        const auto nni = static_cast<std::size_t>(nn);
        const double nd = d + w;
        if (stamp_of[nni] != stamp || nd < dist[nni]) {
          stamp_of[nni] = stamp;
          dist[nni] = nd;
          prev[nni] = n;
          open.push({nd + heur(nc, nr), nd, nn});
        }
      };
      if (c + 1 <= c_hi) {
        const auto e = static_cast<std::size_t>(g.h_edge(c, r));
        if (!prune || !g.h_full(e)) relax(c + 1, r, g.h_cost[e]);
      }
      if (c - 1 >= c_lo) {
        const auto e = static_cast<std::size_t>(g.h_edge(c - 1, r));
        if (!prune || !g.h_full(e)) relax(c - 1, r, g.h_cost[e]);
      }
      if (r + 1 <= r_hi) {
        const auto e = static_cast<std::size_t>(g.v_edge(c, r));
        if (!prune || !g.v_full(e)) relax(c, r + 1, g.v_cost[e]);
      }
      if (r - 1 >= r_lo) {
        const auto e = static_cast<std::size_t>(g.v_edge(c, r - 1));
        if (!prune || !g.v_full(e)) relax(c, r - 1, g.v_cost[e]);
      }
    }
    return false;
  }

  /// Windowed A*: bound the search to the bbox of {tree, target} plus a
  /// margin; if no hard-overflow-free path exists inside, double the
  /// margin, then fall back to an unpruned full-grid search (which always
  /// succeeds on a connected grid), so connectivity never depends on the
  /// window policy.
  std::vector<int> connect_astar(const std::vector<int>& tree, int target,
                                 int window_margin) {
    int bc_lo = g.col_of(target), bc_hi = bc_lo;
    int br_lo = g.row_of(target), br_hi = br_lo;
    for (int t : tree) {
      const int c = g.col_of(t), r = g.row_of(t);
      bc_lo = std::min(bc_lo, c);
      bc_hi = std::max(bc_hi, c);
      br_lo = std::min(br_lo, r);
      br_hi = std::max(br_hi, r);
    }
    int margin = std::max(1, window_margin);
    int prev_c_lo = -1, prev_c_hi = -1, prev_r_lo = -1, prev_r_hi = -1;
    bool searched_before = false;
    for (int attempt = 0;; ++attempt) {
      int c_lo, c_hi, r_lo, r_hi;
      const bool prune = attempt < 2;
      if (prune) {
        c_lo = std::max(0, bc_lo - margin);
        c_hi = std::min(g.cols - 1, bc_hi + margin);
        r_lo = std::max(0, br_lo - margin);
        r_hi = std::min(g.rows - 1, br_hi + margin);
        margin *= 2;
        // A re-attempt over the identical (clamped) window would fail
        // identically; skip straight to the next escalation level.
        if (searched_before && c_lo == prev_c_lo && c_hi == prev_c_hi &&
            r_lo == prev_r_lo && r_hi == prev_r_hi) {
          continue;
        }
      } else {
        c_lo = 0;
        c_hi = g.cols - 1;
        r_lo = 0;
        r_hi = g.rows - 1;
      }
      if (searched_before) ++expansions;
      if (search_window(tree, target, c_lo, c_hi, r_lo, r_hi, prune)) {
        return walk_back(target);
      }
      if (!prune) return {};  // full grid, unpruned: target unreachable
      prev_c_lo = c_lo;
      prev_c_hi = c_hi;
      prev_r_lo = r_lo;
      prev_r_hi = r_hi;
      searched_before = true;
    }
  }

 private:
  std::vector<int> walk_back(int target) const {
    std::vector<int> path;
    int n = target;
    if (stamp_of[static_cast<std::size_t>(n)] != stamp) return path;
    while (n != -1) {
      path.push_back(n);
      n = prev[static_cast<std::size_t>(n)];
    }
    return path;
  }
};

/// Apply (or remove, sign=-1) a route's usage to the grid.  Goes through
/// SideGrid::apply_use_*() so the edge-cost cache and the incremental
/// overflow totals stay consistent.
void commit(SideGrid& g, const std::vector<GEdge>& edges, double sign) {
  for (const GEdge& e : edges) {
    const int a = std::min(e.a, e.b);
    const int b = std::max(e.a, e.b);
    const int ca = g.col_of(a), ra = g.row_of(a);
    if (b == a + 1) {
      g.apply_use_h(static_cast<std::size_t>(g.h_edge(ca, ra)), sign);
    } else {
      g.apply_use_v(static_cast<std::size_t>(g.v_edge(ca, ra)), sign);
    }
  }
}

/// A subnet to route: source + sinks on one side.
struct SubNet {
  NetId net = netlist::kNoNet;
  Side side = Side::Front;
  int source = 0;
  std::vector<int> sinks;
  geom::Nm hpwl = 0;
};

RouteEngine resolve_engine(RouteEngine requested) {
  if (requested != RouteEngine::Auto) return requested;
  if (const char* env = std::getenv("FFET_ROUTE_ENGINE")) {
    if (std::strcmp(env, "legacy") == 0) return RouteEngine::Legacy;
    if (std::strcmp(env, "astar") == 0) return RouteEngine::Astar;
  }
  return RouteEngine::Astar;
}

int sidx(Side s) { return s == Side::Front ? 0 : 1; }

/// Everything derived from the floorplan + pin landscape before any net is
/// routed: the two per-side grids with pin-access demand folded into the
/// bases, and the per-side pin totals for the access-DRV check.  Shared by
/// the full route and the incremental reroute so both see identical
/// resources.
struct GridSetup {
  std::array<SideGrid, 2> grids;
  std::array<long, 2> pin_totals{0, 0};
  int gcols = 0;
  int grows = 0;
  geom::Nm gsize = 0;
};

GridSetup build_grid_setup(const Netlist& nl, const Floorplan& fp,
                           const tech::Technology& tech,
                           const RouteOptions& options) {
  GridSetup gs;
  gs.gsize = options.gcell_tracks * tech.track_pitch();
  gs.gcols = std::max(
      1, static_cast<int>((fp.core.width() + gs.gsize - 1) / gs.gsize));
  gs.grows = std::max(
      1, static_cast<int>((fp.core.height() + gs.gsize - 1) / gs.gsize));

  // --- build the per-side grids ------------------------------------------------
  for (Side s : {Side::Front, Side::Back}) {
    SideGrid& g = gs.grids[static_cast<std::size_t>(sidx(s))];
    g.cols = gs.gcols;
    g.rows = gs.grows;
    g.gw = gs.gsize;
    g.gh = gs.gsize;
    double hc = 0.0, vc = 0.0;
    for (const tech::MetalLayer* l : tech.routing_layers(s)) {
      const int tracks = static_cast<int>(gs.gsize / l->pitch);
      if (l->preferred_dir == geom::Dir::Horizontal) {
        hc += tracks;
      } else {
        vc += tracks;
      }
    }
    g.h_cap = hc * options.capacity_factor;
    g.v_cap = vc * options.capacity_factor;
    if (s == Side::Back && g.h_cap > 0.0) {
      // BSPDN shares the backside signal layers.
      g.h_cap *= (1.0 - kPdnBacksideShare);
      g.v_cap *= (1.0 - kPdnBacksideShare);
    }
    g.h_base.assign(static_cast<std::size_t>((g.cols - 1) * g.rows), 0.0);
    g.h_use = g.h_base;
    g.h_hist = g.h_base;
    g.v_base.assign(static_cast<std::size_t>(g.cols * (g.rows - 1)), 0.0);
    g.v_use = g.v_base;
    g.v_hist = g.v_base;
  }

  // --- pin-access demand -------------------------------------------------------
  // Every pin consumes a share of the routing resources around its gcell on
  // the side(s) where its landing metal lives.  This is where FFET FM12's
  // "higher pin density ... due to FFET's smaller cell area" (Fig. 8c)
  // penalty enters, and what dual-sided pin redistribution relieves.
  auto add_pin_demand = [&](Side s, geom::Point pos) {
    SideGrid& g = gs.grids[static_cast<std::size_t>(sidx(s))];
    ++gs.pin_totals[static_cast<std::size_t>(sidx(s))];
    if (g.h_cap <= 0.0 && g.v_cap <= 0.0) return;  // no layers: no wiring
    const int n = g.clamp_gcell(pos);
    const int c = g.col_of(n), r = g.row_of(n);
    const double d = options.pin_access_demand / 2.0;
    if (c > 0) g.h_base[static_cast<std::size_t>(g.h_edge(c - 1, r))] += d;
    if (c + 1 < g.cols) g.h_base[static_cast<std::size_t>(g.h_edge(c, r))] += d;
    if (r > 0) g.v_base[static_cast<std::size_t>(g.v_edge(c, r - 1))] += d;
    if (r + 1 < g.rows) g.v_base[static_cast<std::size_t>(g.v_edge(c, r))] += d;
  };
  for (int i = 0; i < nl.num_instances(); ++i) {
    const netlist::Instance& inst = nl.instance(i);
    if (inst.type->physical_only()) continue;
    for (std::size_t p = 0; p < inst.pin_nets.size(); ++p) {
      if (inst.pin_nets[p] == netlist::kNoNet) continue;
      const auto& pin = inst.type->pins()[p];
      const geom::Point pos = inst.pos + pin.offset;
      // Per-instance side (pin_side consults the ECO overrides; identical
      // to the master's side when none are set).
      switch (nl.pin_side({i, static_cast<int>(p)})) {
        case PinSide::Front: add_pin_demand(Side::Front, pos); break;
        case PinSide::Back: add_pin_demand(Side::Back, pos); break;
        case PinSide::Both:
          add_pin_demand(Side::Front, pos);
          add_pin_demand(Side::Back, pos);
          break;
      }
    }
  }
  // Bases are final: derive hard capacities, the edge-cost cache, and the
  // incremental overflow totals.
  for (SideGrid& g : gs.grids) g.finalize(options.dr_slack);
  return gs;
}

// --- Algorithm 1: decompose nets into per-side subnets ------------------------
std::vector<SubNet> decompose_subnets(const Netlist& nl,
                                      const tech::Technology& tech,
                                      GridSetup& gs) {
  const bool has_back = tech.num_routing_layers(Side::Back) > 0;
  std::vector<SubNet> subnets;
  for (int n = 0; n < nl.num_nets(); ++n) {
    const netlist::Net& net = nl.net(n);
    // Source gcell: driving cell pin or input port.
    geom::Point src_pos;
    PinSide src_side = PinSide::Front;
    if (net.driver.inst != netlist::kNoInst) {
      src_pos = nl.pin_position(net.driver);
      src_side = nl.pin_side(net.driver);
    } else if (net.port >= 0) {
      src_pos = nl.port(net.port).pos;
      // IO pads: FFET pads land on the backside bump stack but expose
      // access on both sides (the pad via stack crosses the wafer);
      // CFET pads are frontside-only.
      src_side = has_back ? PinSide::Both : PinSide::Front;
    } else {
      continue;  // dangling net
    }

    std::array<std::vector<geom::Point>, 2> side_sinks;
    for (const PinRef& sref : net.sinks) {
      const PinSide ps = nl.pin_side(sref);
      const Side s = ps == PinSide::Back ? Side::Back : Side::Front;
      side_sinks[static_cast<std::size_t>(sidx(s))].push_back(
          nl.pin_position(sref));
    }
    if (net.port >= 0 && !nl.port(net.port).is_input &&
        net.driver.inst != netlist::kNoInst) {
      side_sinks[0].push_back(nl.port(net.port).pos);  // PO pad, frontside
    }

    for (Side s : {Side::Front, Side::Back}) {
      const auto& sinks = side_sinks[static_cast<std::size_t>(sidx(s))];
      if (sinks.empty()) continue;
      if (s == Side::Back) {
        if (!has_back) {
          throw std::runtime_error(
              "net " + net.name +
              " has backside sinks but the technology has no backside "
              "routing layers (no bridging cells in this flow)");
        }
        if (src_side != PinSide::Both) {
          throw std::runtime_error(
              "net " + net.name +
              " has backside sinks but its source pin is frontside-only");
        }
      }
      SideGrid& g = gs.grids[static_cast<std::size_t>(sidx(s))];
      SubNet sn;
      sn.net = n;
      sn.side = s;
      sn.source = g.clamp_gcell(src_pos);
      geom::Rect bbox{src_pos, src_pos};
      for (const geom::Point& p : sinks) {
        sn.sinks.push_back(g.clamp_gcell(p));
        bbox = bbox.united({p, p});
      }
      sn.hpwl = bbox.width() + bbox.height();
      subnets.push_back(std::move(sn));
    }
  }
  return subnets;
}

/// Route one subnet on its side's grid and commit the usage (the shared
/// inner kernel of route_design and reroute_nets).
void route_one_subnet(RouteEngine engine, const RouteOptions& options,
                      std::vector<SubNet>& subnets,
                      std::array<SideGrid, 2>& grids,
                      std::array<PathRouter, 2>& routers,
                      std::vector<std::vector<GEdge>>& route_edges,
                      std::size_t si) {
  SubNet& sn = subnets[si];
  SideGrid& g = grids[static_cast<std::size_t>(sidx(sn.side))];
  PathRouter& pr = routers[static_cast<std::size_t>(sidx(sn.side))];
  std::vector<GEdge>& edges = route_edges[si];
  edges.clear();
  pr.tree_begin();
  pr.tree_add(sn.source);
  std::vector<int> tree = {sn.source};
  // Connect sinks nearest-first.
  std::vector<int> todo = sn.sinks;
  std::sort(todo.begin(), todo.end(), [&](int a, int b) {
    const auto da = std::abs(g.col_of(a) - g.col_of(sn.source)) +
                    std::abs(g.row_of(a) - g.row_of(sn.source));
    const auto db = std::abs(g.col_of(b) - g.col_of(sn.source)) +
                    std::abs(g.row_of(b) - g.row_of(sn.source));
    if (da != db) return da < db;
    return a < b;
  });
  for (int sink : todo) {
    if (pr.in_tree(sink)) continue;
    const std::vector<int> path =
        engine == RouteEngine::Legacy
            ? pr.connect_legacy(tree, sink)
            : pr.connect_astar(tree, sink, options.window_margin);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      edges.push_back({path[i], path[i + 1]});
    }
    // Grow the tree by the *new* nodes only: the joint node is already a
    // member, and a path may revisit gcells the tree owns — appending
    // those again used to inflate the search seed set quadratically on
    // high-fanout nets.
    for (int node : path) {
      if (!pr.in_tree(node)) {
        pr.tree_add(node);
        tree.push_back(node);
      }
    }
  }
  commit(g, edges, +1.0);
}

bool subnet_crosses_overflow(const std::vector<SubNet>& subnets,
                             const std::array<SideGrid, 2>& grids,
                             const std::vector<std::vector<GEdge>>& route_edges,
                             std::size_t si) {
  const SideGrid& g =
      grids[static_cast<std::size_t>(sidx(subnets[si].side))];
  for (const GEdge& e : route_edges[si]) {
    const int a = std::min(e.a, e.b), b = std::max(e.a, e.b);
    const int c = g.col_of(a), r = g.row_of(a);
    if (b == a + 1) {
      const auto i = static_cast<std::size_t>(g.h_edge(c, r));
      if (g.h_base[i] + g.h_use[i] > g.h_cap) return true;
    } else {
      const auto i = static_cast<std::size_t>(g.v_edge(c, r));
      if (g.v_base[i] + g.v_use[i] > g.v_cap) return true;
    }
  }
  return false;
}

// --- results: wirelength, layer assignment, overflow + DRV accounting ---------
void finalize_route_result(RouteResult& res, const Floorplan& fp,
                           const tech::Technology& tech,
                           const RouteOptions& options,
                           const std::vector<SubNet>& subnets,
                           const std::vector<std::vector<GEdge>>& route_edges,
                           const std::array<SideGrid, 2>& grids,
                           const std::array<PathRouter, 2>& routers,
                           const std::array<long, 2>& pin_totals,
                           geom::Nm gsize) {
  const double gsize_um = geom::to_um(gsize);
  // Layer assignment by wirelength quantile: longer nets ride higher layers.
  std::vector<std::size_t> by_len(subnets.size());
  for (std::size_t i = 0; i < by_len.size(); ++i) by_len[i] = i;
  std::sort(by_len.begin(), by_len.end(), [&](std::size_t a, std::size_t b) {
    if (route_edges[a].size() != route_edges[b].size()) {
      return route_edges[a].size() < route_edges[b].size();
    }
    return subnets[a].net < subnets[b].net;
  });
  std::vector<double> quantile(subnets.size(), 0.0);
  for (std::size_t rank = 0; rank < by_len.size(); ++rank) {
    quantile[by_len[rank]] =
        by_len.size() > 1
            ? static_cast<double>(rank) / static_cast<double>(by_len.size() - 1)
            : 0.0;
  }

  res.routes.reserve(subnets.size());
  for (std::size_t si = 0; si < subnets.size(); ++si) {
    const SubNet& sn = subnets[si];
    NetRoute nr;
    nr.net = sn.net;
    nr.side = sn.side;
    nr.edges = route_edges[si];
    nr.sink_gcells = sn.sinks;
    nr.source_gcell = sn.source;
    nr.wirelength_um =
        static_cast<double>(nr.edges.size()) * gsize_um +
        0.2;  // local pin hookup
    // Pick the layer pair by quantile over this side's available layers.
    const auto layers = tech.routing_layers(sn.side);
    std::vector<int> h_layers, v_layers;
    for (const tech::MetalLayer* l : layers) {
      (l->preferred_dir == geom::Dir::Horizontal ? h_layers : v_layers)
          .push_back(l->index);
    }
    auto pick = [&](const std::vector<int>& ls) {
      if (ls.empty()) return 0;
      const auto k = static_cast<std::size_t>(
          quantile[si] * 0.999 * static_cast<double>(ls.size()));
      return ls[k];
    };
    nr.h_layer_index = pick(h_layers);
    nr.v_layer_index = pick(v_layers);

    if (sn.side == Side::Front) {
      res.wirelength_front_um += nr.wirelength_um;
      ++res.nets_front;
    } else {
      res.wirelength_back_um += nr.wirelength_um;
      ++res.nets_back;
    }
    res.routes.push_back(std::move(nr));
  }

  double overflow = 0.0;
  double hard_overflow = 0.0;
  for (const SideGrid& g : grids) {
    overflow += g.overflow();
    hard_overflow += g.hard_overflow();
    res.capacity_units +=
        g.h_cap * static_cast<double>(g.h_use.size()) +
        g.v_cap * static_cast<double>(g.v_use.size());
    for (double u : g.h_use) res.wire_demand_units += u;
    for (double u : g.v_use) res.wire_demand_units += u;
    for (double u : g.h_base) res.pin_demand_units += u;
    for (double u : g.v_base) res.pin_demand_units += u;
  }
  res.overflow_total = static_cast<int>(std::round(overflow));
  res.drv_wire = static_cast<int>(std::round(hard_overflow));
  res.settled_nodes = routers[0].settled + routers[1].settled;
  res.window_expansions = routers[0].expansions + routers[1].expansions;

  // Pin-access DRVs: when a side's pin density exceeds what the detailed
  // router can hook up, every pin beyond the budget becomes an access
  // violation.  Density is evaluated block-wide per side — the sharp,
  // deterministic version of the paper's pin-density routability limit.
  const double core_area_um2 = fp.core.area_um2();
  const double pin_budget =
      options.pin_access_limit_per_um2 * core_area_um2;
  double pin_drv = 0.0;
  for (int side = 0; side < 2; ++side) {
    // A side without routing layers carries no signal hookup (its pin
    // landings are unused metal), so it cannot produce access violations.
    const SideGrid& g = grids[static_cast<std::size_t>(side)];
    if (g.h_cap <= 0.0 && g.v_cap <= 0.0) continue;
    pin_drv += std::max(
        0.0, static_cast<double>(pin_totals[static_cast<std::size_t>(side)]) -
                 pin_budget);
  }
  res.drv_pin_access = static_cast<int>(std::round(pin_drv));

  res.drv_estimate = res.drv_wire + res.drv_pin_access;
  res.valid = res.drv_estimate < 10;  // the paper's validity rule

  FFET_METRIC_ADD("route.ripups", res.ripups_total);
  FFET_METRIC_ADD("route.drv.wire", res.drv_wire);
  FFET_METRIC_ADD("route.drv.pin_access", res.drv_pin_access);
  FFET_METRIC_ADD("route.settled_nodes", res.settled_nodes);
  FFET_METRIC_ADD("route.window_expansions", res.window_expansions);
  FFET_METRIC_OBSERVE("route.rrr_passes", res.rrr_passes);
  FFET_METRIC_OBSERVE("route.overflow", overflow);
}

}  // namespace

RouteResult route_design(const Netlist& nl, const Floorplan& fp,
                         const RouteOptions& options) {
  FFET_TRACE_SCOPE("route.design");
  const tech::Technology& tech = nl.library().tech();
  RouteResult res;
  const RouteEngine engine = resolve_engine(options.engine);
  res.engine_used = engine;

  GridSetup gs = build_grid_setup(nl, fp, tech, options);
  const geom::Nm gsize = gs.gsize;
  res.gcell_w = gsize;
  res.gcell_h = gsize;
  res.gcols = gs.gcols;
  res.grows = gs.grows;
  std::array<SideGrid, 2>& grids = gs.grids;
  auto side_index = [](Side s) { return sidx(s); };

  std::vector<SubNet> subnets = decompose_subnets(nl, tech, gs);

  // Route order: short nets first (they have the least flexibility).
  std::vector<std::size_t> order(subnets.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (subnets[a].hpwl != subnets[b].hpwl) {
      return subnets[a].hpwl < subnets[b].hpwl;
    }
    return subnets[a].net < subnets[b].net;
  });

  // Per-side subsequences of `order`.  A subnet only ever touches its own
  // side's grid and router, so the two sides can route concurrently; each
  // side preserving its in-order subsequence of `order` makes any
  // interleaving produce the same grids as the serial pass.
  const bool concurrent_sides = options.threads > 1;
  std::array<std::vector<std::size_t>, 2> side_order;
  for (std::size_t si : order) {
    side_order[static_cast<std::size_t>(side_index(subnets[si].side))]
        .push_back(si);
  }

  // --- route with rip-up-and-reroute --------------------------------------------
  std::array<PathRouter, 2> routers{PathRouter(grids[0]), PathRouter(grids[1])};
  std::vector<std::vector<GEdge>> route_edges(subnets.size());

  auto route_one = [&](std::size_t si) {
    route_one_subnet(engine, options, subnets, grids, routers, route_edges,
                     si);
  };

  // The two sides touch disjoint grids and routers, so iterating each
  // side's in-order subsequence of `order` produces exactly the grids the
  // original interleaved serial loop did — and gives every side a
  // traceable span in both serial and concurrent execution.
  auto route_side_initial = [&](int s) {
    FFET_TRACE_SCOPE("route.initial.", s == 0 ? "front" : "back");
    for (std::size_t si : side_order[static_cast<std::size_t>(s)]) {
      route_one(si);
    }
  };
  if (concurrent_sides) {
    runtime::parallel_invoke(options.threads, [&] { route_side_initial(0); },
                             [&] { route_side_initial(1); });
  } else {
    route_side_initial(0);
    route_side_initial(1);
  }

  // Negotiated rip-up-and-reroute: decay history, bump it on overflowed
  // edges, reroute the nets crossing them.  The best solution seen (by hard
  // overflow, then total overflow) is kept — negotiation is not monotone.
  auto total_hard = [&] {
    return grids[0].hard_overflow() + grids[1].hard_overflow();
  };
  std::vector<std::vector<GEdge>> best_routes = route_edges;
  double best_hard = total_hard();
  double best_soft_front = grids[0].overflow();
  double best_soft_back = grids[1].overflow();
  double best_soft = best_soft_front + best_soft_back;
  int stale_passes = 0;

  // Convergence record + optional FFET_VERBOSE one-line-per-side summary
  // (this replaces ad-hoc printf debugging of negotiation stalls).  The
  // overflow values are passed in, not recomputed — and since commit()
  // maintains them incrementally, the pass barrier never rescans a grid.
  // Search-effort counters are read as deltas of the per-side routers.
  std::array<long, 2> settled_mark{0, 0};
  std::array<long, 2> expansions_mark{0, 0};
  auto record_pass = [&](int pass, std::size_t ripped_front,
                         std::size_t ripped_back, double soft_front,
                         double soft_back, double hard) {
    RoutePassStat ps;
    ps.pass = pass;
    ps.ripped_front = static_cast<int>(ripped_front);
    ps.ripped_back = static_cast<int>(ripped_back);
    ps.overflow_front = soft_front;
    ps.overflow_back = soft_back;
    ps.hard_overflow = hard;
    ps.settled_front = routers[0].settled - settled_mark[0];
    ps.settled_back = routers[1].settled - settled_mark[1];
    ps.window_expansions_front =
        static_cast<int>(routers[0].expansions - expansions_mark[0]);
    ps.window_expansions_back =
        static_cast<int>(routers[1].expansions - expansions_mark[1]);
    settled_mark[0] = routers[0].settled;
    settled_mark[1] = routers[1].settled;
    expansions_mark[0] = routers[0].expansions;
    expansions_mark[1] = routers[1].expansions;
    if (obs::verbose()) {
      for (int s = 0; s < 2; ++s) {
        std::printf(
            "  [route] pass=%d side=%s %s=%d overflow_total=%.1f "
            "hard=%.1f settled=%ld expansions=%d\n",
            pass, s == 0 ? "front" : "back",
            pass == 0 ? "routed" : "ripups",
            s == 0 ? ps.ripped_front : ps.ripped_back,
            s == 0 ? ps.overflow_front : ps.overflow_back, ps.hard_overflow,
            s == 0 ? ps.settled_front : ps.settled_back,
            s == 0 ? ps.window_expansions_front : ps.window_expansions_back);
      }
    }
    res.pass_stats.push_back(ps);
  };
  record_pass(0, side_order[0].size(), side_order[1].size(),
              best_soft_front, best_soft_back, best_hard);
  auto decay_history = [](SideGrid& g) {
    for (std::size_t i = 0; i < g.h_use.size(); ++i) {
      g.h_hist[i] *= kHistoryDecay;
      const double o = g.h_base[i] + g.h_use[i] - g.h_cap;
      if (o > 0) g.h_hist[i] += kHistoryGain * o / g.h_cap;
    }
    for (std::size_t i = 0; i < g.v_use.size(); ++i) {
      g.v_hist[i] *= kHistoryDecay;
      const double o = g.v_base[i] + g.v_use[i] - g.v_cap;
      if (o > 0) g.v_hist[i] += kHistoryGain * o / g.v_cap;
    }
  };
  auto crosses_overflow = [&](std::size_t si) {
    return subnet_crosses_overflow(subnets, grids, route_edges, si);
  };
  for (int pass = 1;
       pass < options.rrr_passes && best_hard > 0.0 && stale_passes < 6;
       ++pass) {
    // Each side negotiates its pass independently: decay its history,
    // rebuild its edge-cost cache, find its overflowing subnets (in this
    // side's `order` subsequence), rip them all, reroute them all —
    // restricted to state the other side never touches, so serial
    // per-side execution and concurrent execution produce identical
    // grids.  The pass barrier below (overflow totals, best tracking,
    // convergence record) is serial.
    std::array<std::size_t, 2> ripped_counts{0, 0};
    auto pass_side = [&](int s) {
      FFET_TRACE_SCOPE("route.pass.", pass, s == 0 ? ".front" : ".back");
      const auto sz = static_cast<std::size_t>(s);
      decay_history(grids[sz]);
      grids[sz].rebuild_costs();
      std::vector<std::size_t> ripped;
      for (std::size_t si : side_order[sz]) {
        if (crosses_overflow(si)) ripped.push_back(si);
      }
      for (std::size_t si : ripped) {
        commit(grids[sz], route_edges[si], -1.0);
      }
      for (std::size_t si : ripped) route_one(si);
      ripped_counts[sz] = ripped.size();
    };
    if (concurrent_sides) {
      runtime::parallel_invoke(options.threads, [&] { pass_side(0); },
                               [&] { pass_side(1); });
    } else {
      pass_side(0);
      pass_side(1);
    }
    if (ripped_counts[0] + ripped_counts[1] == 0) break;
    res.rrr_passes = pass;
    res.ripups_total +=
        static_cast<long>(ripped_counts[0] + ripped_counts[1]);
    FFET_METRIC_OBSERVE("route.ripups_per_pass",
                        ripped_counts[0] + ripped_counts[1]);

    const double hard = total_hard();
    const double soft_front = grids[0].overflow();
    const double soft_back = grids[1].overflow();
    const double soft = soft_front + soft_back;
    record_pass(pass, ripped_counts[0], ripped_counts[1], soft_front,
                soft_back, hard);
    if (hard < best_hard || (hard == best_hard && soft < best_soft)) {
      best_hard = hard;
      best_soft = soft;
      best_routes = route_edges;
      stale_passes = 0;
    } else {
      ++stale_passes;
    }
  }
  // Restore the best solution (usage arrays included, for diagnostics).
  if (best_routes != route_edges) {
    for (SideGrid& g : grids) g.clear_use();
    route_edges = std::move(best_routes);
    for (std::size_t si = 0; si < subnets.size(); ++si) {
      commit(grids[static_cast<std::size_t>(side_index(subnets[si].side))],
             route_edges[si], +1.0);
    }
  }

  finalize_route_result(res, fp, tech, options, subnets, route_edges, grids,
                        routers, gs.pin_totals, gsize);
  return res;
}

RouteResult reroute_nets(const Netlist& nl, const Floorplan& fp,
                         const RouteResult& prev,
                         const std::vector<netlist::NetId>& dirty_nets,
                         const RouteOptions& options) {
  FFET_TRACE_SCOPE("route.reroute");
  const tech::Technology& tech = nl.library().tech();
  RouteResult res;
  const RouteEngine engine = resolve_engine(options.engine);
  res.engine_used = engine;

  // Rebuild grids and pin demand from the *current* netlist (moved/resized
  // cells and flipped pin sides shift the demand landscape), then decompose
  // every net; untouched subnets take their committed edges from `prev`.
  GridSetup gs = build_grid_setup(nl, fp, tech, options);
  res.gcell_w = gs.gsize;
  res.gcell_h = gs.gsize;
  res.gcols = gs.gcols;
  res.grows = gs.grows;
  std::array<SideGrid, 2>& grids = gs.grids;
  std::vector<SubNet> subnets = decompose_subnets(nl, tech, gs);

  std::vector<char> is_dirty(static_cast<std::size_t>(nl.num_nets()), 0);
  for (const netlist::NetId n : dirty_nets) {
    if (n >= 0 && n < nl.num_nets()) is_dirty[static_cast<std::size_t>(n)] = 1;
  }
  std::vector<std::array<const NetRoute*, 2>> prev_of(
      static_cast<std::size_t>(nl.num_nets()), {nullptr, nullptr});
  for (const NetRoute& r : prev.routes) {
    if (r.net >= 0 && r.net < nl.num_nets()) {
      prev_of[static_cast<std::size_t>(r.net)]
             [static_cast<std::size_t>(sidx(r.side))] = &r;
    }
  }

  std::vector<std::vector<GEdge>> route_edges(subnets.size());
  std::vector<char> needs_route(subnets.size(), 1);
  std::vector<const NetRoute*> carried(subnets.size(), nullptr);
  for (std::size_t si = 0; si < subnets.size(); ++si) {
    const SubNet& sn = subnets[si];
    if (is_dirty[static_cast<std::size_t>(sn.net)]) continue;
    const NetRoute* p = prev_of[static_cast<std::size_t>(sn.net)]
                               [static_cast<std::size_t>(sidx(sn.side))];
    // Reuse only when the decomposition is unchanged; any mismatch (a
    // terminal moved without the net being listed dirty) falls back to a
    // fresh route of that subnet.
    if (p && p->source_gcell == sn.source && p->sink_gcells == sn.sinks) {
      route_edges[si] = p->edges;
      needs_route[si] = 0;
      carried[si] = p;
    }
  }
  for (std::size_t si = 0; si < subnets.size(); ++si) {
    if (!needs_route[si]) {
      commit(grids[static_cast<std::size_t>(sidx(subnets[si].side))],
             route_edges[si], +1.0);
    }
  }
  // The carried usage shifts edge costs: refresh the cost caches before
  // routing the dirty subnets against them.
  for (SideGrid& g : grids) g.rebuild_costs();

  // Dirty subnets in the same global short-first order as a full route.
  std::vector<std::size_t> order;
  for (std::size_t si = 0; si < subnets.size(); ++si) {
    if (needs_route[si]) order.push_back(si);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (subnets[a].hpwl != subnets[b].hpwl) {
      return subnets[a].hpwl < subnets[b].hpwl;
    }
    return subnets[a].net < subnets[b].net;
  });
  std::array<std::vector<std::size_t>, 2> side_order;
  for (std::size_t si : order) {
    side_order[static_cast<std::size_t>(sidx(subnets[si].side))].push_back(si);
  }

  std::array<PathRouter, 2> routers{PathRouter(grids[0]),
                                    PathRouter(grids[1])};
  const bool concurrent_sides = options.threads > 1;
  auto route_side_initial = [&](int s) {
    for (std::size_t si : side_order[static_cast<std::size_t>(s)]) {
      route_one_subnet(engine, options, subnets, grids, routers, route_edges,
                       si);
    }
  };
  if (concurrent_sides) {
    runtime::parallel_invoke(options.threads, [&] { route_side_initial(0); },
                             [&] { route_side_initial(1); });
  } else {
    route_side_initial(0);
    route_side_initial(1);
  }

  // Bounded negotiation over the dirty subnets only — the untouched nets'
  // routes are pinned, exactly the "rip-up-and-reroute of only the
  // modified nets" contract the ECO loop needs.
  auto total_hard = [&] {
    return grids[0].hard_overflow() + grids[1].hard_overflow();
  };
  std::vector<std::vector<GEdge>> best_routes = route_edges;
  double best_hard = total_hard();
  double best_soft = grids[0].overflow() + grids[1].overflow();
  int stale_passes = 0;
  for (int pass = 1;
       pass < options.rrr_passes && best_hard > 0.0 && stale_passes < 6;
       ++pass) {
    std::array<std::size_t, 2> ripped_counts{0, 0};
    auto pass_side = [&](int s) {
      const auto sz = static_cast<std::size_t>(s);
      SideGrid& g = grids[sz];
      for (std::size_t i = 0; i < g.h_use.size(); ++i) {
        g.h_hist[i] *= kHistoryDecay;
        const double o = g.h_base[i] + g.h_use[i] - g.h_cap;
        if (o > 0) g.h_hist[i] += kHistoryGain * o / g.h_cap;
      }
      for (std::size_t i = 0; i < g.v_use.size(); ++i) {
        g.v_hist[i] *= kHistoryDecay;
        const double o = g.v_base[i] + g.v_use[i] - g.v_cap;
        if (o > 0) g.v_hist[i] += kHistoryGain * o / g.v_cap;
      }
      g.rebuild_costs();
      std::vector<std::size_t> ripped;
      for (std::size_t si : side_order[sz]) {
        if (subnet_crosses_overflow(subnets, grids, route_edges, si)) {
          ripped.push_back(si);
        }
      }
      for (std::size_t si : ripped) {
        commit(g, route_edges[si], -1.0);
      }
      for (std::size_t si : ripped) {
        route_one_subnet(engine, options, subnets, grids, routers,
                         route_edges, si);
      }
      ripped_counts[sz] = ripped.size();
    };
    if (concurrent_sides) {
      runtime::parallel_invoke(options.threads, [&] { pass_side(0); },
                               [&] { pass_side(1); });
    } else {
      pass_side(0);
      pass_side(1);
    }
    if (ripped_counts[0] + ripped_counts[1] == 0) break;
    res.rrr_passes = pass;
    res.ripups_total += static_cast<long>(ripped_counts[0] + ripped_counts[1]);
    const double hard = total_hard();
    const double soft = grids[0].overflow() + grids[1].overflow();
    if (hard < best_hard || (hard == best_hard && soft < best_soft)) {
      best_hard = hard;
      best_soft = soft;
      best_routes = route_edges;
      stale_passes = 0;
    } else {
      ++stale_passes;
    }
  }
  if (best_routes != route_edges) {
    for (SideGrid& g : grids) g.clear_use();
    route_edges = std::move(best_routes);
    for (std::size_t si = 0; si < subnets.size(); ++si) {
      commit(grids[static_cast<std::size_t>(sidx(subnets[si].side))],
             route_edges[si], +1.0);
    }
  }

  finalize_route_result(res, fp, tech, options, subnets, route_edges, grids,
                        routers, gs.pin_totals, gs.gsize);
  // Untouched subnets keep their previous layer assignment — their DEF
  // wires (and hence their extracted parasitics) must not drift when some
  // other net was modified.  Dirty subnets take the fresh quantile rank.
  for (std::size_t si = 0; si < subnets.size(); ++si) {
    if (carried[si]) {
      res.routes[si].h_layer_index = carried[si]->h_layer_index;
      res.routes[si].v_layer_index = carried[si]->v_layer_index;
    }
  }
  FFET_METRIC_ADD("route.reroutes", 1);
  FFET_METRIC_OBSERVE("route.reroute_dirty_subnets",
                      static_cast<double>(order.size()));
  return res;
}

}  // namespace ffet::pnr
