// report.h — physical-design reporting: congestion maps, placement density
// maps, and routing summaries.
//
// Mirrors the congestion/utilization views a P&R tool's GUI provides (the
// paper's Fig. 8b layout comparison), rendered as data grids plus compact
// ASCII heatmaps for terminal inspection.

#pragma once

#include <string>

#include "geom/grid.h"
#include "pnr/floorplan.h"
#include "pnr/router.h"

namespace ffet::pnr {

/// Per-gcell routed-wire load of one wafer side (sum of crossings of the
/// four adjacent edges, halved — a standard congestion proxy).
struct CongestionMap {
  Side side = Side::Front;
  geom::Grid2D<double> load;  ///< crossings per gcell
  double max_load = 0.0;
  double mean_load = 0.0;
};

CongestionMap build_congestion_map(const RouteResult& routes, Side side);

/// Placement density per bin (cell area / bin area).
struct DensityMap {
  geom::Grid2D<double> density;
  double max_density = 0.0;
  double mean_density = 0.0;
};

DensityMap build_density_map(const netlist::Netlist& nl, const Floorplan& fp,
                             int bins = 24);

/// Render a grid as an ASCII heatmap (rows top-to-bottom = y descending),
/// scaled to the grid's own maximum: ' ' empty … '@' saturated.
std::string render_heatmap(const geom::Grid2D<double>& grid);

/// One-paragraph textual routing summary (per-side wirelength, net counts,
/// DRV breakdown) for logs and examples.
std::string routing_summary(const RouteResult& routes);

}  // namespace ffet::pnr
