// floorplan.h — core-area planning (stage 1 of the physical flow, Fig. 7).
//
// Given the netlist's total standard-cell area, a target utilization and an
// aspect ratio, produce the core box, the placement-row structure and the
// site grid.  The core width is snapped to the power-stripe pitch (64 CPP,
// Sec. IV) so the power plan's stripes land on even columns, and the height
// to an integral row count.

#pragma once

#include <vector>

#include "geom/geom.h"
#include "netlist/netlist.h"
#include "tech/tech.h"

namespace ffet::pnr {

using geom::Nm;

struct FloorplanOptions {
  double target_utilization = 0.7;  ///< cell area / core area
  double aspect_ratio = 1.0;        ///< width / height
};

struct Row {
  Nm y = 0;            ///< bottom edge of the row
  geom::Interval x;    ///< usable span (full core width before blockages)
};

struct Floorplan {
  geom::Rect core;
  Nm site_width = 0;    ///< one placement site = 1 CPP
  Nm row_height = 0;    ///< technology cell height
  std::vector<Row> rows;
  double target_utilization = 0.0;
  double achieved_utilization = 0.0;  ///< cell area / snapped core area
  double cell_area_um2 = 0.0;

  double core_area_um2() const { return core.area_um2(); }
  int num_rows() const { return static_cast<int>(rows.size()); }
  int sites_per_row() const {
    return static_cast<int>(core.width() / site_width);
  }
};

/// Plan the core for `nl` on `tech`.  Throws std::invalid_argument for
/// utilization outside (0, 1] or a non-positive aspect ratio.
Floorplan make_floorplan(const netlist::Netlist& nl,
                         const tech::Technology& tech,
                         const FloorplanOptions& options);

}  // namespace ffet::pnr
