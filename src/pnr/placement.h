// placement.h — standard-cell placement and IO planning (Fig. 7 stage 3).
//
// Two phases:
//   1. Global placement: seeded-random start, then iterative centroid pulls
//      interleaved with bin-based density spreading (a lightweight
//      force-directed scheme).
//   2. Legalization: row-based Tetris packing into the free segments left
//      between the power plan's FIXED obstacles (Power Tap Cells / nTSV
//      pads).
//
// Legality model.  Industrial legalizers need placement whitespace to
// resolve discrete cell widths, pin access and local congestion; placement
// densities above ~87-88 % are not closable.  We encode this as
// kMaxPlacementDensity: the movable area must fit within that fraction of
// the *free* (unblocked) row area.  This is the mechanism behind the
// paper's utilization ceilings:
//     FFET: free fraction = 1 - taps  (98.4 %)  -> max util ~86 %
//     CFET: free fraction = 1 - nTSV  (96.0 %)  -> max util ~84 %
// exactly the Fig. 8(a) behaviour ("utilization above 86 % results in
// placement violations between standard cells and Power Tap Cells").

#pragma once

#include <memory>
#include <optional>
#include <string>

#include "pnr/floorplan.h"
#include "pnr/powerplan.h"

namespace ffet::pnr {

/// Maximum closable placement density (movable area / free area).  See the
/// header comment; calibrated once, shared by both technologies.
inline constexpr double kMaxPlacementDensity = 0.875;

struct PlacementOptions {
  unsigned seed = 1;
  int iterations = 24;        ///< centroid/spreading rounds
  double pull_strength = 0.7; ///< blend factor toward the connectivity centroid
};

struct PlacementResult {
  bool legal = false;
  int violations = 0;      ///< cells that could not be legally placed
  double hpwl_um = 0.0;    ///< half-perimeter wirelength after legalization
  double density = 0.0;    ///< movable area / free area
  /// Legalization displacement (global position -> legal slot, Manhattan):
  /// how far the Tetris packer had to move cells to realize the density
  /// target.  Exported to the flow telemetry report.
  double mean_displacement_um = 0.0;
  double max_displacement_um = 0.0;
  std::string message;
};

/// Place all movable instances of `nl` into the floorplan, avoiding the
/// power plan's blockages, and assign IO port positions on the core
/// boundary.  Writes Instance::pos; fixed instances are untouched.
PlacementResult place(netlist::Netlist& nl, const Floorplan& fp,
                      const PowerPlan& pp,
                      const PlacementOptions& options = {});

/// Half-perimeter wirelength of all multi-pin nets, in µm (uses current
/// instance positions and port positions).
double compute_hpwl_um(const netlist::Netlist& nl);

/// Row-occupancy tracker for post-route ECO transforms: holds the same
/// free-segment model the Tetris legalizer packs into, seeded from an
/// already-legal placement, and supports exact do/undo of single-cell
/// moves.  A resize is release(old) → claim(new width near the old spot);
/// a buffer insertion is a claim; a revert replays the inverse ops
/// (release the claimed slot, occupy the released one), restoring the
/// occupancy map bit-exactly.  All queries are deterministic.
class IncrementalLegalizer {
 public:
  /// Seeds the free-segment model from the floorplan/power plan and marks
  /// every placed non-fixed instance footprint occupied.  The floorplan
  /// and power plan must outlive the legalizer.
  IncrementalLegalizer(const netlist::Netlist& nl, const Floorplan& fp,
                       const PowerPlan& pp);
  ~IncrementalLegalizer();
  IncrementalLegalizer(const IncrementalLegalizer&) = delete;
  IncrementalLegalizer& operator=(const IncrementalLegalizer&) = delete;

  /// Free the footprint [pos.x, pos.x + width) in the row at pos.y
  /// (no-op outside any row segment — e.g. a clamped unplaceable cell).
  void release(geom::Point pos, geom::Nm width);
  /// Find the legal slot nearest `desired` (same near-to-far row scan and
  /// cost as the full legalizer), mark it occupied, and return its origin;
  /// nullopt when no gap fits anywhere.
  std::optional<geom::Point> claim(geom::Nm width, geom::Point desired);
  /// Mark an exact span occupied again (the inverse of release; used when
  /// reverting a trial transform).
  void occupy(geom::Point pos, geom::Nm width);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ffet::pnr
