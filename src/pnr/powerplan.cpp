#include "pnr/powerplan.h"

#include <algorithm>
#include <cmath>

#include "obs/obs.h"

namespace ffet::pnr {

namespace {

/// Share of a rail's current that flows through the worst-case tap path;
/// with distributed taps the worst cell sees roughly half the rail span.
constexpr double kWorstCaseShare = 0.5;

}  // namespace

double PowerPlan::estimate_ir_drop_mv(double block_power_uw) const {
  if (num_rails <= 0) return 0.0;
  // I = P / V; V is embedded in tap_r bookkeeping via vdd_v_ set below.
  const double current_ua = block_power_uw / vdd_v_;
  const double per_rail_ua = current_ua / num_rails;
  // uA * ohm = uV; /1000 -> mV.
  return per_rail_ua * kWorstCaseShare * (tap_r_ohm + rail_r_ohm_) / 1000.0;
}

PowerPlan build_power_plan(netlist::Netlist& nl, const Floorplan& fp,
                           const stdcell::Library& lib) {
  FFET_TRACE_SCOPE("powerplan.build");
  const tech::Technology& tech = lib.tech();
  const tech::PowerPlanRules& rules = tech.power_rules();

  PowerPlan plan;
  plan.tap_r_ohm = tech.device().power_tap_r_ohm;
  plan.vdd_v_ = tech.device().vdd_v;

  const Nm stripe_pitch = rules.stripe_pitch_cpp * tech.cpp();
  const Nm half = stripe_pitch / 2;

  // Interleaved VDD/VSS stripes at 64 CPP pitch: same-type pitch 128 CPP.
  int idx = 0;
  for (Nm x = half; x < fp.core.width(); x += stripe_pitch, ++idx) {
    if (idx % 2 == 0) {
      plan.vdd_stripe_x.push_back(x);
    } else {
      plan.vss_stripe_x.push_back(x);
    }
  }
  plan.num_rails = static_cast<int>(plan.vdd_stripe_x.size() +
                                    plan.vss_stripe_x.size());
  // Rail resistance of one backside stripe over half the core height.  The
  // FFET BSPDN rides the *highest* backside layer available ("the highest
  // PDN layer is determined by the highest signal routing layer on the
  // backside", Sec. IV); the CFET uses its PDN-only BM2.
  const tech::MetalLayer* rail_layer = nullptr;
  for (const tech::MetalLayer& l : tech.layers()) {
    if (l.side != tech::Side::Back || l.index < 0) continue;
    if (!rail_layer || l.index > rail_layer->index) rail_layer = &l;
  }
  plan.rail_r_ohm_ =
      rail_layer
          ? rail_layer->r_ohm_per_um * geom::to_um(fp.core.height()) / 2.0
          : 0.0;

  double blocked_area = 0.0;

  if (rules.tap_cell_width_cpp > 0) {
    // FFET: a Power Tap Cell in every row under every backside VSS stripe,
    // connecting the frontside VSS M0 rail around the backside VDD rail to
    // the BSPDN (Fig. 6b).  FIXED: the placer must route around them.
    const stdcell::CellType& tap = lib.at(lib.tap_cell_name());
    int serial = 0;
    for (Nm x : plan.vss_stripe_x) {
      const Nm tap_x =
          geom::snap_down(x - tap.width() / 2, fp.site_width);
      for (const Row& row : fp.rows) {
        const std::string name = "power_tap_" + std::to_string(serial++);
        const netlist::InstId id = nl.add_instance(name, &tap);
        nl.instance(id).pos = {tap_x, row.y};
        nl.instance(id).fixed = true;
        plan.tap_cells.push_back(id);
        const geom::Rect bbox = nl.instance(id).bbox();
        plan.blockages.push_back(bbox);
        blocked_area += bbox.area_um2();
      }
    }
  } else if (rules.tsv_blockage_fraction > 0.0) {
    // CFET: nTSV landing pads along every stripe.  The pads are not
    // site-quantized; each row contributes one pad per stripe whose width
    // realizes the technology's blockage fraction exactly.
    const Nm pad_w = static_cast<Nm>(rules.tsv_blockage_fraction *
                                     static_cast<double>(stripe_pitch));
    std::vector<Nm> all_stripes;
    all_stripes.insert(all_stripes.end(), plan.vdd_stripe_x.begin(),
                       plan.vdd_stripe_x.end());
    all_stripes.insert(all_stripes.end(), plan.vss_stripe_x.begin(),
                       plan.vss_stripe_x.end());
    std::sort(all_stripes.begin(), all_stripes.end());
    for (Nm x : all_stripes) {
      for (const Row& row : fp.rows) {
        const geom::Rect pad =
            geom::make_rect({x - pad_w / 2, row.y}, pad_w, fp.row_height);
        plan.blockages.push_back(pad);
        blocked_area += pad.area_um2();
      }
    }
  }

  plan.blocked_site_fraction = blocked_area / fp.core.area_um2();
  FFET_METRIC_ADD("powerplan.taps", plan.tap_cells.size());
  return plan;
}

}  // namespace ffet::pnr
