#include "pnr/floorplan.h"

#include <cmath>
#include <stdexcept>

namespace ffet::pnr {

Floorplan make_floorplan(const netlist::Netlist& nl,
                         const tech::Technology& tech,
                         const FloorplanOptions& options) {
  if (options.target_utilization <= 0.0 ||
      options.target_utilization > 1.0) {
    throw std::invalid_argument("target_utilization must be in (0, 1]");
  }
  if (options.aspect_ratio <= 0.0) {
    throw std::invalid_argument("aspect_ratio must be positive");
  }

  const double cell_area = nl.stats().total_cell_area_um2;
  if (cell_area <= 0.0) {
    throw std::invalid_argument("netlist has no placeable area");
  }
  const double core_area = cell_area / options.target_utilization;

  // Ideal dimensions in um, then snap: width to the power-stripe pitch so
  // stripes tile evenly, height up to whole rows.
  const double ideal_w = std::sqrt(core_area * options.aspect_ratio);
  const Nm stripe_pitch =
      tech.power_rules().stripe_pitch_cpp * tech.cpp();
  Nm width = geom::snap_up(geom::from_um(ideal_w), stripe_pitch);
  if (width < stripe_pitch) width = stripe_pitch;

  const double ideal_h = core_area / geom::to_um(width);
  Nm height = geom::snap_up(geom::from_um(ideal_h), tech.cell_height());
  if (height < tech.cell_height()) height = tech.cell_height();

  Floorplan fp;
  fp.core = geom::make_rect({0, 0}, width, height);
  fp.site_width = tech.cpp();
  fp.row_height = tech.cell_height();
  fp.target_utilization = options.target_utilization;
  fp.cell_area_um2 = cell_area;
  fp.achieved_utilization = cell_area / fp.core.area_um2();

  const int rows = static_cast<int>(height / tech.cell_height());
  fp.rows.reserve(static_cast<std::size_t>(rows));
  for (int r = 0; r < rows; ++r) {
    fp.rows.push_back(Row{r * tech.cell_height(), {0, width}});
  }
  return fp;
}

}  // namespace ffet::pnr
