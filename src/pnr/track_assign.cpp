#include "pnr/track_assign.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>

namespace ffet::pnr {

TrackAssignment assign_tracks(const RouteResult& routes,
                              int tracks_per_edge) {
  TrackAssignment ta;
  ta.track_of.resize(routes.routes.size());

  // Edge key: side bit + min/max node packed into one word (node ids are
  // grid indices, well under 2^31).  Crossings collected in route order
  // (deterministic: routes and edges are produced deterministically; the
  // map only holds per-edge counters, so iteration order never matters).
  std::unordered_map<std::uint64_t, int> next_track;
  next_track.reserve(routes.routes.size() * 4);

  for (std::size_t r = 0; r < routes.routes.size(); ++r) {
    const NetRoute& route = routes.routes[r];
    ta.track_of[r].resize(route.edges.size(), 0);
    for (std::size_t e = 0; e < route.edges.size(); ++e) {
      const int a = std::min(route.edges[e].a, route.edges[e].b);
      const int b = std::max(route.edges[e].a, route.edges[e].b);
      const std::uint64_t key =
          (route.side == tech::Side::Front ? 0u : (std::uint64_t{1} << 62)) |
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 31) |
          static_cast<std::uint64_t>(static_cast<std::uint32_t>(b));
      int& counter = next_track[key];
      int track = counter++;
      if (tracks_per_edge > 0 && track >= tracks_per_edge) {
        ++ta.overflow_crossings;
        track %= tracks_per_edge;  // wrap: shares a track (reported)
      }
      ta.track_of[r][e] = track;
      ta.max_tracks_seen = std::max(ta.max_tracks_seen, track + 1);
    }
  }
  return ta;
}

geom::Nm track_offset_nm(int track, int tracks_per_edge, geom::Nm gcell_span) {
  if (tracks_per_edge <= 1) return 0;
  // Spread tracks across the middle 80% of the gcell, centered.
  const double usable = 0.8 * static_cast<double>(gcell_span);
  const double step = usable / static_cast<double>(tracks_per_edge);
  const double centered =
      (static_cast<double>(track) + 0.5) * step - usable / 2.0;
  return static_cast<geom::Nm>(centered);
}

}  // namespace ffet::pnr
