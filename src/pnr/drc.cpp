#include "pnr/drc.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace ffet::pnr {

std::string_view to_string(DrcViolation::Kind k) {
  switch (k) {
    case DrcViolation::Kind::OutsideCore: return "outside-core";
    case DrcViolation::Kind::OffSiteGrid: return "off-site-grid";
    case DrcViolation::Kind::OffRowGrid: return "off-row-grid";
    case DrcViolation::Kind::CellOverlap: return "cell-overlap";
    case DrcViolation::Kind::BlockageOverlap: return "blockage-overlap";
  }
  return "?";
}

int DrcReport::count(DrcViolation::Kind k) const {
  int n = 0;
  for (const DrcViolation& v : violations) {
    if (v.kind == k) ++n;
  }
  return n;
}

std::string DrcReport::summary() const {
  std::ostringstream os;
  os << violations.size() << " placement DRC violations";
  if (!violations.empty()) {
    os << " (outside-core " << count(DrcViolation::Kind::OutsideCore)
       << ", off-grid "
       << count(DrcViolation::Kind::OffSiteGrid) +
              count(DrcViolation::Kind::OffRowGrid)
       << ", overlaps " << count(DrcViolation::Kind::CellOverlap)
       << ", on-blockage " << count(DrcViolation::Kind::BlockageOverlap)
       << ")";
  }
  return os.str();
}

DrcReport check_placement(const netlist::Netlist& nl, const Floorplan& fp,
                          const PowerPlan& pp) {
  DrcReport rep;

  // Tap-cell footprints double as blockages; skip self-matches below.
  std::map<geom::Nm, std::vector<std::pair<geom::Rect, netlist::InstId>>>
      by_row;

  for (netlist::InstId id = 0; id < nl.num_instances(); ++id) {
    const netlist::Instance& inst = nl.instance(id);
    const geom::Rect box = inst.bbox();
    if (!fp.core.contains(box)) {
      rep.violations.push_back(
          {DrcViolation::Kind::OutsideCore, nl.instance_name(id), "", box});
    }
    if (box.lo.x % fp.site_width != 0) {
      rep.violations.push_back(
          {DrcViolation::Kind::OffSiteGrid, nl.instance_name(id), "", box});
    }
    if (box.lo.y % fp.row_height != 0) {
      rep.violations.push_back(
          {DrcViolation::Kind::OffRowGrid, nl.instance_name(id), "", box});
    }
    if (!inst.fixed) {
      for (const geom::Rect& b : pp.blockages) {
        if (box.overlaps_interior(b)) {
          rep.violations.push_back(
              {DrcViolation::Kind::BlockageOverlap, nl.instance_name(id), "",
               box.intersected(b)});
          break;
        }
      }
    }
    by_row[box.lo.y].push_back({box, id});
  }

  // Overlap scan per row (cells share a row exactly when legal).
  for (auto& [y, v] : by_row) {
    std::sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
      return a.first.lo.x < b.first.lo.x;
    });
    for (std::size_t i = 0; i + 1 < v.size(); ++i) {
      if (v[i].first.hi.x > v[i + 1].first.lo.x) {
        rep.violations.push_back({DrcViolation::Kind::CellOverlap,
                                  nl.instance_name(v[i].second),
                                  nl.instance_name(v[i + 1].second),
                                  v[i].first.intersected(v[i + 1].first)});
      }
    }
  }
  return rep;
}

}  // namespace ffet::pnr
