// cts.h — clock-tree synthesis (Fig. 7 stage 4; "the same as the
// conventional flow" per Sec. III.C).
//
// Recursive geometric bisection over the clock sinks (flip-flop CP pins):
// regions with at most `max_fanout` sinks get a leaf clock buffer at their
// centroid; larger regions split along their longer axis at the median and
// get an internal buffer driving the two halves.  The tree is built with
// CLKBUF cells inserted into the netlist; every created net is marked as a
// clock net.
//
// The clock is routed on the *frontside* in every configuration (clock pins
// are frontside pins in all the paper's DoEs — see stdcell).
//
// Per-sink insertion latency is estimated with the characterized CLKBUF
// NLDM model plus lumped wire RC, giving the skew that STA folds into the
// setup check.

#pragma once

#include <unordered_map>

#include "pnr/floorplan.h"

namespace ffet::pnr {

struct CtsOptions {
  int max_fanout = 16;  ///< sinks per leaf buffer
};

struct CtsResult {
  int num_buffers = 0;
  int depth = 0;                 ///< buffer levels from root to leaves
  double mean_latency_ps = 0.0;  ///< mean clock insertion delay
  double skew_ps = 0.0;          ///< max - min sink latency
  double wirelength_um = 0.0;    ///< total clock-tree wirelength estimate
  /// Insertion latency per sequential instance (by InstId).
  std::unordered_map<netlist::InstId, double> sink_latency_ps;
};

/// Build a buffered clock tree for the (single) clock net of `nl`.  The
/// library must be characterized (CLKBUF NLDM models are consulted).
/// Returns a zeroed result if the design has no clocked sinks.
CtsResult build_clock_tree(netlist::Netlist& nl, const Floorplan& fp,
                           const CtsOptions& options = {});

}  // namespace ffet::pnr
