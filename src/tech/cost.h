// cost.h — BEOL process-cost model (extension beyond the paper).
//
// The paper motivates routing-layer reduction as "cost-friendly design"
// (Sec. IV, Figs. 12-13) but never quantifies cost.  This extension assigns
// each technology configuration a relative wafer-cost index from its layer
// stack, using standard cost-of-ownership intuition:
//
//   * each metal layer costs litho+etch+CMP passes; tight-pitch layers need
//     multi-patterning (more passes, higher cost per layer);
//   * a functional backside adds the wafer flip/bond/thinning module once,
//     plus its own per-layer costs;
//   * the CFET's nTSV module and BPR add fixed steps.
//
// Values are relative (base frontside-only wafer with zero metal = 1.0) and
// deliberately coarse — the point is ranking configurations and exposing
// the PPA-per-cost trade the paper gestures at, not fab accounting.

#pragma once

#include "tech/tech.h"

namespace ffet::tech {

struct CostModel {
  double base_wafer = 1.0;
  /// Per-layer adders by pitch class.
  double fine_layer = 0.085;  ///< pitch < 50 nm: multi-patterned
  double mid_layer = 0.050;   ///< 50-200 nm: single-pattern immersion
  double fat_layer = 0.025;   ///< > 200 nm: relaxed litho
  /// One-time module costs.
  double backside_module = 0.18;  ///< flip + bond + thin (FFET, and CFET BSPDN)
  double ntsv_module = 0.06;      ///< CFET nano-TSV formation
  double bpr_module = 0.04;       ///< buried power rail
  double stacked_device_module = 0.10;  ///< CFET/FFET 3D transistor stack
};

struct CostBreakdown {
  double total = 0.0;
  double frontside_layers = 0.0;
  double backside_layers = 0.0;
  double modules = 0.0;
  int num_layers = 0;
};

/// Relative process cost of a technology configuration (with its current
/// routing-layer limits applied).
CostBreakdown relative_process_cost(const Technology& tech,
                                    const CostModel& model = {});

}  // namespace ffet::tech
