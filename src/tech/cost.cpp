#include "tech/cost.h"

namespace ffet::tech {

namespace {

double layer_cost(const CostModel& m, Nm pitch) {
  if (pitch < 50) return m.fine_layer;
  if (pitch <= 200) return m.mid_layer;
  return m.fat_layer;
}

}  // namespace

CostBreakdown relative_process_cost(const Technology& tech,
                                    const CostModel& model) {
  CostBreakdown b;
  bool has_backside_metal = false;
  bool has_bpr = false;
  for (const MetalLayer& l : tech.layers()) {
    if (l.index < 0) {  // BPR
      has_bpr = true;
      continue;
    }
    const double c = layer_cost(model, l.pitch);
    if (l.side == Side::Front) {
      b.frontside_layers += c;
    } else {
      b.backside_layers += c;
      has_backside_metal = true;
    }
    ++b.num_layers;
  }

  b.modules = model.stacked_device_module;  // both techs stack transistors
  if (has_backside_metal) b.modules += model.backside_module;
  if (has_bpr) b.modules += model.bpr_module;
  if (tech.power_rules().tsv_blockage_fraction > 0.0) {
    b.modules += model.ntsv_module;
  }

  b.total = model.base_wafer + b.frontside_layers + b.backside_layers +
            b.modules;
  return b;
}

}  // namespace ffet::tech
