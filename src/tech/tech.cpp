#include "tech/tech.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace ffet::tech {

std::string_view to_string(Side s) {
  return s == Side::Front ? "front" : "back";
}

std::string_view to_string(TechKind k) {
  return k == TechKind::Cfet4T ? "4T CFET" : "3.5T FFET";
}

namespace {

// ---------------------------------------------------------------------------
// Interconnect electrical derivation.
//
// Standard scaling assumptions for a gridded BEOL layer of pitch P:
//   line width  w = P/2          (half-pitch lines and spaces)
//   thickness   t = P            (aspect ratio 2 relative to width)
//   resistivity rho_eff = rho_Cu * (1 + k_size / w)   — surface/grain
//               scattering makes narrow lines disproportionately resistive,
//               the effect that dominates 5 nm-node lower metals.
//   capacitance per length is nearly scale-invariant for constant aspect
//               ratio (coupling ~ eps*t/s with t/s fixed); a small 1/P term
//               models the higher-k damage layers of tight-pitch metals.
//
// These reproduce accepted 5 nm-class values: ~1.3e2 ohm/um on the 30 nm
// M2, ~0.08 ohm/um on the 720 nm fat layer, ~0.2 fF/um everywhere.
// ---------------------------------------------------------------------------

constexpr double kRhoCuOhmNm = 19.0;    // 1.9e-8 ohm*m expressed in ohm*nm
constexpr double kSizeEffectNm = 30.0;  // size-effect knee (electron mfp)
constexpr double kCapBaseFfPerUm = 0.16;
constexpr double kCapNarrowFfNm = 2.0;  // adds 2/P fF/um for narrow pitches
constexpr double kViaBaseOhm = 2.0;
constexpr double kViaNarrowOhmNm = 28.0 * 60.0;  // 60 ohm at 28 nm pitch

}  // namespace

WireElectricals derive_electricals(Nm pitch) {
  assert(pitch > 0);
  const double p = static_cast<double>(pitch);
  const double w = p / 2.0;
  const double t = p;  // aspect ratio 2 -> t = 2*w = pitch
  const double rho_eff = kRhoCuOhmNm * (1.0 + kSizeEffectNm / w);
  // rho [ohm*nm] / (w*t [nm^2]) = ohm/nm; *1000 -> ohm/um.
  const double r_per_um = rho_eff / (w * t) * 1000.0;
  const double c_per_um = kCapBaseFfPerUm + kCapNarrowFfNm / p;
  const double via_r = kViaBaseOhm + kViaNarrowOhmNm / p;
  return {r_per_um, c_per_um, via_r};
}

namespace {

MetalLayer make_layer(std::string name, Side side, int index, Nm pitch,
                      LayerPurpose purpose) {
  MetalLayer l;
  l.name = std::move(name);
  l.side = side;
  l.index = index;
  l.pitch = pitch;
  // Alternating preferred directions per index: M0/M2/... horizontal (cell
  // rows run horizontally, M0 tracks are in-row), M1/M3/... vertical.
  l.preferred_dir = (index % 2 == 0) ? Dir::Horizontal : Dir::Vertical;
  l.purpose = purpose;
  const WireElectricals e = derive_electricals(pitch);
  l.r_ohm_per_um = e.r_ohm_per_um;
  l.c_ff_per_um = e.c_ff_per_um;
  l.via_down_r_ohm = e.via_down_r_ohm;
  return l;
}

/// Pitch for metal index 1..12 per Table II (identical for CFET frontside
/// and both FFET sides): M1 34, M2 30, M3-4 42, M5-10 76, M11 126, M12 720.
Nm signal_pitch_for_index(int index) {
  switch (index) {
    case 0: return 28;
    case 1: return 34;
    case 2: return 30;
    case 3:
    case 4: return 42;
    case 11: return 126;
    case 12: return 720;
    default:
      if (index >= 5 && index <= 10) return 76;
      throw std::out_of_range("metal index outside 0..12");
  }
}

void append_signal_stack(std::vector<MetalLayer>& layers, Side side,
                         char prefix) {
  for (int i = 0; i <= 12; ++i) {
    const LayerPurpose purpose =
        i == 0 ? LayerPurpose::CellLevel : LayerPurpose::Signal;
    layers.push_back(make_layer(std::string(1, prefix) + "M" + std::to_string(i),
                                side, i, signal_pitch_for_index(i), purpose));
  }
}

// Shared intrinsic transistor characteristics (Sec. IV: both techs assume the
// same two-fin transistor).  Values are representative of a 5 nm-class
// device at VDD = 0.7 V.
DeviceParams base_device() {
  DeviceParams d;
  d.nfet_r_per_fin_ohm = 5500.0;
  d.pfet_r_per_fin_ohm = 6600.0;
  d.gate_c_per_fin_ff = 0.25;
  d.drain_c_per_fin_ff = 0.15;
  d.leakage_nw_per_fin = 2.0;
  d.pin_c_ff_per_cpp_side = 0.044;
  d.vdd_v = 0.7;
  return d;
}

}  // namespace

const MetalLayer* Technology::find_layer(std::string_view name) const {
  for (const MetalLayer& l : layers_) {
    if (l.name == name) return &l;
  }
  return nullptr;
}

std::vector<const MetalLayer*> Technology::routing_layers(Side side) const {
  std::vector<const MetalLayer*> out;
  for (const MetalLayer& l : layers_) {
    if (l.side == side && l.is_signal_routing()) out.push_back(&l);
  }
  std::sort(out.begin(), out.end(),
            [](const MetalLayer* a, const MetalLayer* b) {
              return a->index < b->index;
            });
  return out;
}

int Technology::num_routing_layers(Side side) const {
  return static_cast<int>(routing_layers(side).size());
}

Technology Technology::with_routing_limit(int front_max, int back_max) const {
  Technology t = *this;
  std::vector<MetalLayer> kept;
  kept.reserve(t.layers_.size());
  for (const MetalLayer& l : t.layers_) {
    if (l.is_signal_routing()) {
      const int limit = l.side == Side::Front ? front_max : back_max;
      if (l.index > limit) continue;  // drop: not manufactured
    }
    kept.push_back(l);
  }
  t.layers_ = std::move(kept);
  return t;
}

int Technology::max_routing_index(Side side) const {
  int best = 0;
  for (const MetalLayer& l : layers_) {
    if (l.side == side && l.is_signal_routing()) best = std::max(best, l.index);
  }
  return best;
}

std::string Technology::routing_pattern() const {
  const int f = max_routing_index(Side::Front);
  const int b = max_routing_index(Side::Back);
  std::string s = "FM" + std::to_string(f);
  if (b > 0) s += "BM" + std::to_string(b);
  return s;
}

Technology make_cfet_4t() {
  Technology t;
  t.kind_ = TechKind::Cfet4T;
  t.name_ = "cfet4t";
  t.cpp_ = 50;          // Poly pitch, Table II
  t.track_pitch_ = 30;  // M2 pitch == 1T
  t.cell_height_tracks_ = 4.0;
  t.cell_height_ = 120;

  append_signal_stack(t.layers_, Side::Front, 'F');
  // Backside: buried power rail + two PDN-only fat metals (Table II note c).
  t.layers_.push_back(
      make_layer("BPR", Side::Back, -1, 120, LayerPurpose::PowerOnly));
  t.layers_.push_back(
      make_layer("BM1", Side::Back, 1, 3200, LayerPurpose::PowerOnly));
  t.layers_.push_back(
      make_layer("BM2", Side::Back, 2, 2400, LayerPurpose::PowerOnly));

  DeviceParams d = base_device();
  // CFET structure parasitics: the bottom pFET must reach the frontside
  // output pin through a supervia chain crossing the full device stack
  // (Sec. II.B), and common gates use a tall stacked-gate contact.  The BPR
  // via taps the rail.
  d.np_link_r_ohm = 400.0;
  d.np_link_c_ff = 0.105;
  d.np_link_parallel_eff = 0.55;
  d.gate_link_r_ohm = 45.0;
  d.gate_link_c_ff = 0.032;
  // Part of the p-logic intra-cell routing must detour to the frontside
  // (Sec. II.B), inflating per-CPP intra-cell track capacitance.
  d.internal_track_c_ff_per_cpp = 0.053;
  d.power_tap_r_ohm = 35.0;
  t.device_ = d;

  PowerPlanRules p;
  p.stripe_pitch_cpp = 64;
  p.stripe_width = 120;
  p.tap_cell_width_cpp = 0;          // no tap cells: BPR + nTSV
  p.tsv_blockage_fraction = 0.040;   // nTSV landing pads block ~4% of sites
  t.power_rules_ = p;
  return t;
}

Technology make_ffet_3p5t() {
  Technology t;
  t.kind_ = TechKind::Ffet3p5T;
  t.name_ = "ffet3p5t";
  t.cpp_ = 50;
  t.track_pitch_ = 30;
  t.cell_height_tracks_ = 3.5;
  t.cell_height_ = 105;

  append_signal_stack(t.layers_, Side::Front, 'F');
  append_signal_stack(t.layers_, Side::Back, 'B');

  DeviceParams d = base_device();
  // FFET structure parasitics: the only stack-crossing structure is the
  // Drain Merge (n-p common drain); gates merge through the compact Gate
  // Merge via.  Intra-cell routing is symmetric — n-logic stays on the
  // frontside, p-logic on the backside — so per-CPP track capacitance is
  // lower than CFET's detoured routing (Sec. II.B).
  d.np_link_r_ohm = 85.0;
  d.np_link_c_ff = 0.070;
  d.np_link_parallel_eff = 1.0;
  d.gate_link_r_ohm = 28.0;
  d.gate_link_c_ff = 0.020;
  d.internal_track_c_ff_per_cpp = 0.030;
  // Frontside VSS reaches the BSPDN through the Power Tap Cell's intra-cell
  // detour around the backside VDD rail (Fig. 6b) — a longer path than a
  // straight BPR via.
  d.power_tap_r_ohm = 52.0;
  t.device_ = d;

  PowerPlanRules p;
  p.stripe_pitch_cpp = 64;
  p.stripe_width = 120;
  p.tap_cell_width_cpp = 2;  // Power Tap Cell occupies 2 CPP of every row
                             // under each backside VSS stripe (pitch 128 CPP)
  p.tsv_blockage_fraction = 0.0;
  t.power_rules_ = p;
  return t;
}

}  // namespace ffet::tech
