// tech.h — technology / virtual-PDK model.
//
// Encodes the two rule decks of the paper's Table II:
//
//   * 4T CFET   — frontside BEOL FM0..FM12, backside BPR + BM1/BM2 which are
//                 PDN-only (pitch 3200/2400 nm), buried power rail.
//   * 3.5T FFET — fully symmetric BEOL: FM0..FM12 on the frontside and
//                 BM0..BM12 on the backside, identical pitches per index.
//
// Beyond the published pitch table, each metal layer carries derived
// electrical properties (sheet-style resistance per µm and capacitance per
// µm) computed from its pitch with standard interconnect scaling assumptions
// (half-pitch line width, aspect ratio 2, Cu resistivity with a size-effect
// correction for narrow lines).  The paper's own PDK is proprietary; the
// derivation here preserves the property the experiments depend on: narrow
// lower layers are resistive, wide upper layers are fast, and removing upper
// layers forces traffic into slow congested metal.
//
// The technology also carries the device-level parameters used by the
// library characterizer (src/liberty): per-fin drive resistance and
// capacitances, plus the parasitics of the three FFET interconnect
// structures (Gate Merge, Drain Merge) and the CFET supervia / BPR taps that
// Table I's KPI differences trace back to.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "geom/geom.h"

namespace ffet::tech {

using geom::Dir;
using geom::Nm;

/// Which side of the wafer a structure lives on.
enum class Side : std::uint8_t { Front, Back };

constexpr Side opposite(Side s) {
  return s == Side::Front ? Side::Back : Side::Front;
}

std::string_view to_string(Side s);

/// The two technologies compared in the paper.
enum class TechKind : std::uint8_t { Cfet4T, Ffet3p5T };

std::string_view to_string(TechKind k);

/// What a metal layer may legally carry.
enum class LayerPurpose : std::uint8_t {
  Signal,     ///< inter-cell signal routing (and PDN stripes where planned)
  PowerOnly,  ///< PDN only — CFET's BM1/BM2 and the BPR
  CellLevel,  ///< M0: intra-cell routing and pin shapes only (Sec. IV:
              ///< "FM0 and BM0 are only used for intra-cell routing")
};

/// One metal layer of the BEOL stack (or the BPR).
struct MetalLayer {
  std::string name;          ///< e.g. "FM3", "BM0", "BPR"
  Side side = Side::Front;
  int index = 0;             ///< 0 for M0, 1 for M1, ... ; -1 for BPR
  Nm pitch = 0;              ///< line pitch from Table II
  Dir preferred_dir = Dir::Horizontal;
  LayerPurpose purpose = LayerPurpose::Signal;

  // Derived electrical model (see derive_electricals in tech.cpp).
  double r_ohm_per_um = 0.0;  ///< wire resistance per micron of length
  double c_ff_per_um = 0.0;   ///< wire capacitance per micron of length
  double via_down_r_ohm = 0.0;  ///< resistance of a via to the layer below

  bool is_signal_routing() const { return purpose == LayerPurpose::Signal; }
};

/// Device-level parameters consumed by the library characterizer.  All
/// resistances in ohm, capacitances in fF.  "Per fin" values follow the
/// paper's two-fin transistor assumption; both techs share the *intrinsic*
/// transistor (Sec. IV: "same intrinsic transistor characteristics") and
/// differ only in the interconnect-structure parasitics below.
struct DeviceParams {
  double nfet_r_per_fin_ohm = 0.0;   ///< on-resistance of one nFET fin
  double pfet_r_per_fin_ohm = 0.0;   ///< on-resistance of one pFET fin
  double gate_c_per_fin_ff = 0.0;    ///< gate capacitance of one fin
  double drain_c_per_fin_ff = 0.0;   ///< junction/drain cap of one fin
  double leakage_nw_per_fin = 0.0;   ///< leakage power per fin at nominal VDD

  // Structure parasitics that differ between CFET and FFET.
  double np_link_r_ohm = 0.0;  ///< n-p common-drain link: CFET supervia
                               ///< chain vs. FFET Drain Merge
  double np_link_c_ff = 0.0;   ///< capacitance of that link
  double np_link_parallel_eff = 1.0;  ///< how well parallel fingers share the
                                      ///< link: FFET Drain Merges parallelize
                                      ///< perfectly (1.0); CFET supervia
                                      ///< chains are area-constrained (<1),
                                      ///< so the FFET timing advantage grows
                                      ///< with drive strength (Table I)
  double gate_link_r_ohm = 0.0;  ///< common-gate link: CFET stacked-gate
                                 ///< contact vs. FFET Gate Merge via
  double gate_link_c_ff = 0.0;
  double internal_track_c_ff_per_cpp = 0.0;  ///< M0 intra-cell wire cap per
                                             ///< CPP of cell width traversed
  double pin_c_ff_per_cpp_side = 0.0;  ///< pin landing-metal cap per CPP of
                                       ///< pin extent *per side exposed* —
                                       ///< FFET dual-sided output pins pay
                                       ///< this twice
  double power_tap_r_ohm = 0.0;  ///< rail-to-PDN tap: CFET BPR via / FFET
                                 ///< Power Tap Cell path (IR drop model)
  double vdd_v = 0.7;            ///< nominal supply
};

/// Power-planning rules (Sec. III.B).
struct PowerPlanRules {
  int stripe_pitch_cpp = 64;   ///< backside power-stripe pitch: 64 CPP
  Nm stripe_width = 0;         ///< width of one backside power stripe
  int tap_cell_width_cpp = 0;  ///< Power Tap Cell width (FFET) in CPP; 0 if
                               ///< the tech needs no tap cells (CFET nTSV)
  double tsv_blockage_fraction = 0.0;  ///< CFET: fraction of placement sites
                                       ///< blocked by nTSV landing pads
};

/// A complete technology: rule deck + derived models.
class Technology {
 public:
  TechKind kind() const { return kind_; }
  const std::string& name() const { return name_; }

  /// Contacted poly pitch: horizontal placement quantum (50 nm, Table II).
  Nm cpp() const { return cpp_; }
  /// M2 pitch defines the routing track (1T == 1 M2 pitch, Sec. I).
  Nm track_pitch() const { return track_pitch_; }
  /// Standard-cell height in tracks (4.0 or 3.5).
  double cell_height_tracks() const { return cell_height_tracks_; }
  /// Standard-cell height in nm.
  Nm cell_height() const { return cell_height_; }

  const DeviceParams& device() const { return device_; }
  const PowerPlanRules& power_rules() const { return power_rules_; }

  const std::vector<MetalLayer>& layers() const { return layers_; }

  /// Find a layer by name ("FM3", "BM0", ...); nullptr if absent.
  const MetalLayer* find_layer(std::string_view name) const;

  /// Signal-routing layers on one side, in ascending index order.  Excludes
  /// M0 (cell-level) and PDN-only layers.
  std::vector<const MetalLayer*> routing_layers(Side side) const;

  int num_routing_layers(Side side) const;

  /// True iff standard cells can expose pins on the backside — the defining
  /// FFET capability.
  bool supports_backside_pins() const { return kind_ == TechKind::Ffet3p5T; }

  /// Restrict signal routing to layers FM1..FM<front_max> and
  /// BM1..BM<back_max>; layers above become unavailable (demoted out of the
  /// stack).  This implements the paper's "FM_x BM_y" routing-layer
  /// patterns.  back_max is ignored for technologies without backside
  /// signal layers.  Returns a modified copy.
  Technology with_routing_limit(int front_max, int back_max) const;

  /// Highest usable signal-routing layer index per side under the current
  /// limits.
  int max_routing_index(Side side) const;

  /// Short pattern string for reports, e.g. "FM12BM12", "FM12", "FM6BM6".
  std::string routing_pattern() const;

  // Factory functions are the only way to build a Technology.
  friend Technology make_cfet_4t();
  friend Technology make_ffet_3p5t();

 private:
  Technology() = default;

  TechKind kind_ = TechKind::Cfet4T;
  std::string name_;
  Nm cpp_ = 0;
  Nm track_pitch_ = 0;
  double cell_height_tracks_ = 0.0;
  Nm cell_height_ = 0;
  DeviceParams device_;
  PowerPlanRules power_rules_;
  std::vector<MetalLayer> layers_;
};

/// Build the 4T CFET technology of Table II (BPR + PDN-only BM1/BM2).
Technology make_cfet_4t();

/// Build the 3.5T FFET technology of Table II (symmetric FM/BM stacks).
Technology make_ffet_3p5t();

/// Derive R (ohm/µm), C (fF/µm) and via resistance from a layer pitch.
/// Exposed for tests and for the extraction module's documentation.
struct WireElectricals {
  double r_ohm_per_um;
  double c_ff_per_um;
  double via_down_r_ohm;
};
WireElectricals derive_electricals(Nm pitch);

}  // namespace ffet::tech
