// lef_reader.cpp — parse the project's LEF dialect back into a Library.

#include <cctype>
#include <sstream>
#include <stdexcept>

#include "io/def.h"

namespace ffet::io {

namespace {

/// Recover (function, drive) from a catalogue-style macro name.
std::pair<stdcell::Function, int> function_of_name(const std::string& name) {
  using stdcell::Function;
  static const std::pair<const char*, Function> kPrefixes[] = {
      // Longest-match order matters (CLKBUF before BUF, XNOR2 before NOR2,
      // DFFR before DFF, TIELO/TIEHI before anything short).
      {"CLKBUF", Function::ClkBuf}, {"XNOR2", Function::Xnor2},
      {"NAND2", Function::Nand2},   {"TIELO", Function::TieLo},
      {"TIEHI", Function::TieHi},   {"XOR2", Function::Xor2},
      {"NOR2", Function::Nor2},     {"AND2", Function::And2},
      {"AOI21", Function::Aoi21},   {"OAI21", Function::Oai21},
      {"AOI22", Function::Aoi22},   {"OAI22", Function::Oai22},
      {"MUX2", Function::Mux2},     {"DFFR", Function::DffR},
      {"DFF", Function::Dff},       {"FILLER", Function::Filler},
      {"TAPCELL", Function::Tap},   {"BUF", Function::Buf},
      {"INV", Function::Inv},       {"OR2", Function::Or2},
  };
  for (const auto& [prefix, func] : kPrefixes) {
    if (name.rfind(prefix, 0) == 0) {
      const std::string rest = name.substr(std::string(prefix).size());
      int drive = 1;
      if (!rest.empty() && rest[0] == 'D') {
        drive = std::atoi(rest.c_str() + 1);
        if (drive <= 0) drive = 1;
      }
      return {func, drive};
    }
  }
  throw std::runtime_error("LEF macro '" + name +
                           "' does not match the catalogue naming");
}

geom::Nm um_token_to_nm(const std::string& t) {
  return geom::from_um(std::stod(t));
}

}  // namespace

stdcell::Library read_lef(std::istream& is, const tech::Technology& tech) {
  stdcell::Library lib(&tech, {});

  std::string tok;
  std::string macro_name;
  std::unique_ptr<stdcell::CellType> macro;
  geom::Nm width = 0, height = 0;

  // Pin parsing state.
  std::string pin_name;
  stdcell::PinDir pin_dir = stdcell::PinDir::Input;
  bool pin_front = false, pin_back = false;
  geom::Point pin_offset{0, 0};

  auto finish_pin = [&]() {
    if (pin_name.empty() || !macro) return;
    stdcell::CellPin p;
    p.name = pin_name;
    p.dir = pin_dir;
    p.side = pin_front && pin_back ? stdcell::PinSide::Both
             : pin_back            ? stdcell::PinSide::Back
                                   : stdcell::PinSide::Front;
    p.offset = pin_offset;
    macro->add_pin(std::move(p));
    pin_name.clear();
  };

  while (is >> tok) {
    if (tok == "MACRO") {
      is >> macro_name;
      width = height = 0;
    } else if (tok == "SIZE" && !macro_name.empty()) {
      std::string w, by, h;
      is >> w >> by >> h;
      width = um_token_to_nm(w);
      height = um_token_to_nm(h);
      const auto [func, drive] = function_of_name(macro_name);
      stdcell::CellStructure st;
      st.drive = drive;
      // LEF carries no transistor-level structure; record what geometry
      // implies so areas stay exact.
      st.width_cpp_cfet = st.width_cpp_ffet =
          static_cast<int>(width / tech.cpp());
      macro = std::make_unique<stdcell::CellType>(macro_name, func, st,
                                                  width, height);
      if (func == stdcell::Function::Tap) lib.set_tap_cell_name(macro_name);
    } else if (tok == "PIN" && macro) {
      finish_pin();
      is >> pin_name;
      pin_dir = stdcell::PinDir::Input;
      pin_front = pin_back = false;
      pin_offset = {0, 0};
    } else if (tok == "DIRECTION" && macro) {
      std::string d;
      is >> d;
      if (d == "OUTPUT") pin_dir = stdcell::PinDir::Output;
    } else if (tok == "USE" && macro) {
      std::string u;
      is >> u;
      if (u == "CLOCK" && pin_dir == stdcell::PinDir::Input) {
        pin_dir = stdcell::PinDir::Clock;
      }
    } else if (tok == "LAYER" && macro && !pin_name.empty()) {
      std::string layer;
      is >> layer;
      if (layer == "FM0") pin_front = true;
      if (layer == "BM0") pin_back = true;
    } else if (tok == "RECT" && macro && !pin_name.empty()) {
      std::string x1, y1, x2, y2;
      is >> x1 >> y1 >> x2 >> y2;
      pin_offset = {(um_token_to_nm(x1) + um_token_to_nm(x2)) / 2,
                    (um_token_to_nm(y1) + um_token_to_nm(y2)) / 2};
    } else if (tok == "END" && macro) {
      std::string what;
      is >> what;
      if (what == macro_name) {
        finish_pin();
        lib.add_cell(std::move(macro));
        macro.reset();
        macro_name.clear();
      } else if (what == pin_name) {
        finish_pin();
      }
    }
  }
  if (lib.cells().empty()) {
    throw std::runtime_error("LEF contained no macros");
  }
  return lib;
}

stdcell::Library read_lef_string(const std::string& text,
                                 const tech::Technology& tech) {
  std::istringstream is(text);
  return read_lef(is, tech);
}

}  // namespace ffet::io
