// verilog.h — structural (gate-level) Verilog netlist exchange.
//
// The paper's flow moves netlists between synthesis and P&R as structural
// Verilog; this module writes the project's netlists in that form and
// parses the same subset back:
//
//   module <name> (ports...);
//     input a; output z; wire n1;
//     INVD1 u1 (.I(a), .ZN(n1));
//     ...
//   endmodule
//
// Supported subset: one module per file, scalar ports/wires (the generators
// bit-blast buses), named port connections, no assigns/behavioural code.
// Escaped identifiers are not needed because all generated names are plain.

#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.h"

namespace ffet::io {

/// Write `nl` as a structural Verilog module.
void write_verilog(const netlist::Netlist& nl, std::ostream& os);
std::string to_verilog_string(const netlist::Netlist& nl);

/// Parse a structural Verilog module against `lib` (cell names must
/// resolve).  Throws std::runtime_error on syntax errors, unknown cells or
/// unknown pins.
netlist::Netlist read_verilog(std::istream& is, const stdcell::Library& lib);
netlist::Netlist read_verilog_string(const std::string& text,
                                     const stdcell::Library& lib);

}  // namespace ffet::io
