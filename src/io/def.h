// def.h — minimal LEF/DEF exchange layer.
//
// The paper's flow hinges on DEF plumbing: the dual-sided router emits TWO
// DEF files (frontside layers FM*, backside layers BM*), and the RC
// extraction step "first merges the two DEFs into one DEF [which] contains
// the P&R information of all the frontside and backside layers" (Sec.
// III.C).  This module provides:
//
//   * an in-memory DEF model (components / pins / routed nets),
//   * builders from a placed+routed design, one DEF per wafer side,
//   * `merge_defs` — the paper's merge step,
//   * writers and a reader for a compact DEF 5.8 dialect (round-trippable),
//   * a LEF writer for the dual-sided cell library (pin side is encoded in
//     the pin's LAYER: FM0 for frontside pins, BM0 for backside pins, both
//     rects for dual-sided output pins).
//
// The RC extractor (src/extract) consumes the *merged* DEF, exactly like
// the paper's StarRC run.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "pnr/router.h"
#include "pnr/track_assign.h"

namespace ffet::io {

struct DefComponent {
  std::string name;
  std::string cell;
  geom::Point pos;
  bool fixed = false;
};

struct DefPort {
  std::string name;
  bool is_input = true;
  geom::Point pos;
};

/// One routed wire segment on a named layer; axis-parallel.
struct DefWire {
  std::string layer;
  geom::Point from;
  geom::Point to;
};

struct DefNetPin {
  std::string component;  ///< empty for a top-level PIN connection
  std::string pin;
};

struct DefNet {
  std::string name;
  std::vector<DefNetPin> pins;
  std::vector<DefWire> wires;
};

struct Def {
  std::string design;
  int dbu_per_micron = 1000;  ///< database units: 1 nm
  geom::Rect die;
  std::vector<DefComponent> components;
  std::vector<DefPort> ports;
  std::vector<DefNet> nets;
};

/// Build the DEF of one wafer side from a placed netlist and the routing
/// result: all components and all net pins appear (they are shared), but
/// only the wires of `side`'s layers.  With a TrackAssignment, wires are
/// emitted at their assigned track offsets (parallel runs instead of
/// coincident gcell centerlines).
Def build_def(const netlist::Netlist& nl, const pnr::RouteResult& routes,
              tech::Side side, const pnr::TrackAssignment* tracks = nullptr,
              int tracks_per_edge = 0);

/// The paper's merge step: combine the frontside and backside DEFs into one
/// model covering the full layer stack.  Both inputs must describe the same
/// design (same components and nets); throws std::invalid_argument
/// otherwise.
Def merge_defs(const Def& front, const Def& back);

void write_def(const Def& def, std::ostream& os);
std::string to_def_string(const Def& def);

/// Parse the dialect emitted by write_def.  Throws std::runtime_error on
/// malformed input.
Def read_def(std::istream& is);
Def read_def_string(const std::string& text);

/// Emit a LEF-flavoured description of the library (sites, macros, pin
/// sides via layer names).
void write_lef(const stdcell::Library& lib, std::ostream& os);
std::string to_lef_string(const stdcell::Library& lib);

/// Parse the dialect emitted by write_lef into a Library bound to `tech`.
/// LEF carries physical data only: macro sizes, pin names/directions and
/// sides (from the FM0/BM0 PORT layers).  Cell functions and drives are
/// recovered from the macro names (our catalogue naming, e.g. "NAND2D4");
/// unknown names throw.  The returned library is *uncharacterized* — run
/// liberty::characterize_library before timing it.
stdcell::Library read_lef(std::istream& is, const tech::Technology& tech);
stdcell::Library read_lef_string(const std::string& text,
                                 const tech::Technology& tech);

}  // namespace ffet::io
