#include "io/def.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <unordered_map>

#include "io/stream_writer.h"

namespace ffet::io {

using netlist::Netlist;
using pnr::NetRoute;
using pnr::RouteResult;
using tech::Side;

Def build_def(const Netlist& nl, const RouteResult& routes, Side side,
              const pnr::TrackAssignment* tracks, int tracks_per_edge) {
  Def def;
  def.design = nl.name();
  // Die spans the routing grid extent.
  def.die = geom::make_rect({0, 0}, routes.gcols * routes.gcell_w,
                            routes.grows * routes.gcell_h);

  def.components.reserve(static_cast<std::size_t>(nl.num_instances()));
  for (netlist::InstId i = 0; i < nl.num_instances(); ++i) {
    const netlist::Instance& inst = nl.instance(i);
    def.components.push_back(
        {nl.instance_name(i), inst.type->name(), inst.pos, inst.fixed});
  }
  for (const netlist::Port& p : nl.ports()) {
    def.ports.push_back({p.name, p.is_input, p.pos});
  }

  // Nets: connectivity always, wires only for this side's routes.  Slots
  // are NetId-indexed (def.nets is emitted in NetId order; `present` marks
  // fully unconnected nets, which are skipped).
  std::vector<DefNet> by_net(static_cast<std::size_t>(nl.num_nets()));
  std::vector<char> present(static_cast<std::size_t>(nl.num_nets()), 0);
  for (int n = 0; n < nl.num_nets(); ++n) {
    const netlist::Net& net = nl.net(n);
    if (net.driver.inst == netlist::kNoInst && net.sinks.empty()) continue;
    DefNet& dn = by_net[static_cast<std::size_t>(n)];
    present[static_cast<std::size_t>(n)] = 1;
    dn.name = nl.net_name(n);
    dn.pins.reserve(net.sinks.size() + 1 + (net.port >= 0 ? 1 : 0));
    if (net.port >= 0) {
      dn.pins.push_back({"", nl.port(net.port).name});
    }
    auto pin_name = [&](const netlist::PinRef& r) {
      const netlist::Instance& inst = nl.instance(r.inst);
      return DefNetPin{nl.instance_name(r.inst),
                       inst.type->pins()[static_cast<std::size_t>(r.pin)].name};
    };
    if (net.driver.inst != netlist::kNoInst) {
      dn.pins.push_back(pin_name(net.driver));
    }
    for (const netlist::PinRef& s : net.sinks) dn.pins.push_back(pin_name(s));
  }

  const char prefix = side == Side::Front ? 'F' : 'B';
  for (std::size_t ri = 0; ri < routes.routes.size(); ++ri) {
    const NetRoute& r = routes.routes[ri];
    if (r.side != side) continue;
    if (r.net < 0 || r.net >= nl.num_nets() ||
        !present[static_cast<std::size_t>(r.net)]) {
      continue;
    }
    DefNet& dn = by_net[static_cast<std::size_t>(r.net)];
    for (std::size_t ei = 0; ei < r.edges.size(); ++ei) {
      const pnr::GEdge& e = r.edges[ei];
      const int a = std::min(e.a, e.b);
      const int b = std::max(e.a, e.b);
      const int ca = a % routes.gcols, ra = a / routes.gcols;
      const int cb = b % routes.gcols, rb = b / routes.gcols;
      geom::Point pa{ca * routes.gcell_w + routes.gcell_w / 2,
                     ra * routes.gcell_h + routes.gcell_h / 2};
      geom::Point pb{cb * routes.gcell_w + routes.gcell_w / 2,
                     rb * routes.gcell_h + routes.gcell_h / 2};
      const bool horizontal = ra == rb;
      if (tracks && tracks_per_edge > 0) {
        // Offset perpendicular to the run direction by the assigned track.
        const geom::Nm off = pnr::track_offset_nm(
            tracks->track_of[ri][ei], tracks_per_edge,
            horizontal ? routes.gcell_h : routes.gcell_w);
        if (horizontal) {
          pa.y += off;
          pb.y += off;
        } else {
          pa.x += off;
          pb.x += off;
        }
      }
      const int layer_index = horizontal ? r.h_layer_index : r.v_layer_index;
      dn.wires.push_back(
          {std::string(1, prefix) + "M" + std::to_string(layer_index), pa,
           pb});
    }
  }

  def.nets.reserve(
      static_cast<std::size_t>(std::count(present.begin(), present.end(), 1)));
  for (std::size_t n = 0; n < by_net.size(); ++n) {
    if (present[n]) def.nets.push_back(std::move(by_net[n]));
  }
  return def;
}

Def merge_defs(const Def& front, const Def& back) {
  if (front.design != back.design ||
      front.components.size() != back.components.size() ||
      front.nets.size() != back.nets.size()) {
    throw std::invalid_argument(
        "front/back DEFs describe different designs and cannot be merged");
  }
  Def merged = front;
  merged.die = front.die.united(back.die);
  // Index back nets by name; append their wires to the front net.
  std::unordered_map<std::string_view, const DefNet*> back_nets;
  back_nets.reserve(back.nets.size());
  for (const DefNet& n : back.nets) back_nets.emplace(n.name, &n);
  for (DefNet& n : merged.nets) {
    auto it = back_nets.find(n.name);
    if (it == back_nets.end()) {
      throw std::invalid_argument("net " + n.name + " missing from back DEF");
    }
    if (it->second->pins.size() != n.pins.size()) {
      throw std::invalid_argument("net " + n.name +
                                  " has mismatched connectivity");
    }
    n.wires.insert(n.wires.end(), it->second->wires.begin(),
                   it->second->wires.end());
  }
  return merged;
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

void write_def(const Def& def, std::ostream& os) {
  StreamWriter w(os);
  w << "VERSION 5.8 ;\n";
  w << "DESIGN " << def.design << " ;\n";
  w << "UNITS DISTANCE MICRONS " << def.dbu_per_micron << " ;\n";
  w << "DIEAREA ( " << def.die.lo.x << ' ' << def.die.lo.y << " ) ( "
    << def.die.hi.x << ' ' << def.die.hi.y << " ) ;\n";

  w << "COMPONENTS " << def.components.size() << " ;\n";
  for (const DefComponent& c : def.components) {
    w << "- " << c.name << ' ' << c.cell << " + "
      << (c.fixed ? "FIXED" : "PLACED") << " ( " << c.pos.x << ' '
      << c.pos.y << " ) N ;\n";
  }
  w << "END COMPONENTS\n";

  w << "PINS " << def.ports.size() << " ;\n";
  for (const DefPort& p : def.ports) {
    w << "- " << p.name << " + DIRECTION "
      << (p.is_input ? "INPUT" : "OUTPUT") << " + PLACED ( " << p.pos.x
      << ' ' << p.pos.y << " ) ;\n";
  }
  w << "END PINS\n";

  w << "NETS " << def.nets.size() << " ;\n";
  for (const DefNet& n : def.nets) {
    w << "- " << n.name;
    for (const DefNetPin& p : n.pins) {
      if (p.component.empty()) {
        w << " ( PIN " << p.pin << " )";
      } else {
        w << " ( " << p.component << ' ' << p.pin << " )";
      }
    }
    for (std::size_t wi = 0; wi < n.wires.size(); ++wi) {
      w << "\n  " << (wi == 0 ? "+ ROUTED " : "NEW ") << n.wires[wi].layer
        << " ( " << n.wires[wi].from.x << ' ' << n.wires[wi].from.y
        << " ) ( " << n.wires[wi].to.x << ' ' << n.wires[wi].to.y << " )";
    }
    w << " ;\n";
  }
  w << "END NETS\n";
  w << "END DESIGN\n";
}

std::string to_def_string(const Def& def) {
  std::ostringstream os;
  write_def(def, os);
  return os.str();
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

namespace {

class Tokenizer {
 public:
  explicit Tokenizer(std::istream& is) : is_(is) {}

  std::string next() {
    std::string t;
    if (!(is_ >> t)) throw std::runtime_error("unexpected end of DEF");
    return t;
  }
  bool try_next(std::string& t) { return static_cast<bool>(is_ >> t); }

  long long next_int() {
    const std::string t = next();
    try {
      return std::stoll(t);
    } catch (...) {
      throw std::runtime_error("expected integer, got '" + t + "'");
    }
  }

  void expect(const std::string& want) {
    const std::string t = next();
    if (t != want) {
      throw std::runtime_error("expected '" + want + "', got '" + t + "'");
    }
  }

 private:
  std::istream& is_;
};

}  // namespace

Def read_def(std::istream& is) {
  Tokenizer tk(is);
  Def def;

  tk.expect("VERSION");
  tk.next();  // 5.8
  tk.expect(";");
  tk.expect("DESIGN");
  def.design = tk.next();
  tk.expect(";");
  tk.expect("UNITS");
  tk.expect("DISTANCE");
  tk.expect("MICRONS");
  def.dbu_per_micron = static_cast<int>(tk.next_int());
  tk.expect(";");
  tk.expect("DIEAREA");
  tk.expect("(");
  def.die.lo.x = tk.next_int();
  def.die.lo.y = tk.next_int();
  tk.expect(")");
  tk.expect("(");
  def.die.hi.x = tk.next_int();
  def.die.hi.y = tk.next_int();
  tk.expect(")");
  tk.expect(";");

  tk.expect("COMPONENTS");
  const auto ncomp = tk.next_int();
  tk.expect(";");
  for (long long i = 0; i < ncomp; ++i) {
    tk.expect("-");
    DefComponent c;
    c.name = tk.next();
    c.cell = tk.next();
    tk.expect("+");
    const std::string kind = tk.next();
    c.fixed = kind == "FIXED";
    tk.expect("(");
    c.pos.x = tk.next_int();
    c.pos.y = tk.next_int();
    tk.expect(")");
    tk.expect("N");
    tk.expect(";");
    def.components.push_back(std::move(c));
  }
  tk.expect("END");
  tk.expect("COMPONENTS");

  tk.expect("PINS");
  const auto npins = tk.next_int();
  tk.expect(";");
  for (long long i = 0; i < npins; ++i) {
    tk.expect("-");
    DefPort p;
    p.name = tk.next();
    tk.expect("+");
    tk.expect("DIRECTION");
    p.is_input = tk.next() == "INPUT";
    tk.expect("+");
    tk.expect("PLACED");
    tk.expect("(");
    p.pos.x = tk.next_int();
    p.pos.y = tk.next_int();
    tk.expect(")");
    tk.expect(";");
    def.ports.push_back(std::move(p));
  }
  tk.expect("END");
  tk.expect("PINS");

  tk.expect("NETS");
  const auto nnets = tk.next_int();
  tk.expect(";");
  for (long long i = 0; i < nnets; ++i) {
    tk.expect("-");
    DefNet n;
    n.name = tk.next();
    // Pins then optional routed segments, terminated by ';'.
    std::string t = tk.next();
    while (t == "(") {
      DefNetPin p;
      const std::string a = tk.next();
      if (a == "PIN") {
        p.pin = tk.next();
      } else {
        p.component = a;
        p.pin = tk.next();
      }
      tk.expect(")");
      n.pins.push_back(std::move(p));
      t = tk.next();
    }
    while (t == "+" || t == "NEW") {
      if (t == "+") tk.expect("ROUTED");
      DefWire w;
      w.layer = tk.next();
      tk.expect("(");
      w.from.x = tk.next_int();
      w.from.y = tk.next_int();
      tk.expect(")");
      tk.expect("(");
      w.to.x = tk.next_int();
      w.to.y = tk.next_int();
      tk.expect(")");
      n.wires.push_back(std::move(w));
      t = tk.next();
    }
    if (t != ";") {
      throw std::runtime_error("malformed net " + n.name + " near '" + t +
                               "'");
    }
    def.nets.push_back(std::move(n));
  }
  tk.expect("END");
  tk.expect("NETS");
  tk.expect("END");
  tk.expect("DESIGN");
  return def;
}

Def read_def_string(const std::string& text) {
  std::istringstream is(text);
  return read_def(is);
}

// ---------------------------------------------------------------------------
// LEF writer
// ---------------------------------------------------------------------------

void write_lef(const stdcell::Library& lib, std::ostream& os) {
  const tech::Technology& tech = lib.tech();
  os << "VERSION 5.8 ;\n";
  os << "BUSBITCHARS \"[]\" ;\n";
  os << "DIVIDERCHAR \"/\" ;\n";
  os << "UNITS\n  DATABASE MICRONS 1000 ;\nEND UNITS\n\n";
  for (const tech::MetalLayer& l : tech.layers()) {
    os << "LAYER " << l.name << "\n  TYPE ROUTING ;\n  DIRECTION "
       << (l.preferred_dir == geom::Dir::Horizontal ? "HORIZONTAL"
                                                    : "VERTICAL")
       << " ;\n  PITCH " << geom::to_um(l.pitch) << " ;\nEND " << l.name
       << "\n";
  }
  os << "\nSITE core\n  CLASS CORE ;\n  SIZE " << geom::to_um(tech.cpp())
     << " BY " << geom::to_um(tech.cell_height()) << " ;\nEND core\n\n";

  for (const auto& cell : lib.cells()) {
    os << "MACRO " << cell->name() << "\n";
    os << "  CLASS CORE ;\n";
    os << "  SIZE " << geom::to_um(cell->width()) << " BY "
       << geom::to_um(cell->height()) << " ;\n";
    os << "  SITE core ;\n";
    for (const stdcell::CellPin& p : cell->pins()) {
      os << "  PIN " << p.name << "\n    DIRECTION "
         << (p.dir == stdcell::PinDir::Output ? "OUTPUT" : "INPUT")
         << " ;\n";
      if (p.dir == stdcell::PinDir::Clock) os << "    USE CLOCK ;\n";
      auto emit_port = [&](const char* layer) {
        os << "    PORT\n      LAYER " << layer << " ;\n      RECT "
           << geom::to_um(p.offset.x - 10) << " "
           << geom::to_um(p.offset.y - 10) << " "
           << geom::to_um(p.offset.x + 10) << " "
           << geom::to_um(p.offset.y + 10) << " ;\n    END\n";
      };
      // Pin side encoding: frontside pins on FM0, backside pins on BM0,
      // dual-sided output pins carry a PORT on both.
      switch (p.side) {
        case stdcell::PinSide::Front: emit_port("FM0"); break;
        case stdcell::PinSide::Back: emit_port("BM0"); break;
        case stdcell::PinSide::Both:
          emit_port("FM0");
          emit_port("BM0");
          break;
      }
      os << "  END " << p.name << "\n";
    }
    os << "END " << cell->name() << "\n\n";
  }
  os << "END LIBRARY\n";
}

std::string to_lef_string(const stdcell::Library& lib) {
  std::ostringstream os;
  write_lef(lib, os);
  return os.str();
}

}  // namespace ffet::io
