#include "io/verilog.h"

#include <cctype>
#include <cstring>
#include <map>
#include <sstream>
#include <stdexcept>

namespace ffet::io {

using netlist::Netlist;

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

namespace {

/// Nets attached to a port are referenced by the PORT name (the module
/// interface) everywhere in the emitted Verilog.
std::string printed_net_name(const Netlist& nl, netlist::NetId id) {
  const netlist::Net& n = nl.net(id);
  if (n.port >= 0) return nl.port(n.port).name;
  return nl.net_name(id);
}

}  // namespace

void write_verilog(const Netlist& nl, std::ostream& os) {
  os << "// structural netlist emitted by OpenFFET\n";
  os << "module " << nl.name() << " (";
  for (int p = 0; p < nl.num_ports(); ++p) {
    if (p) os << ", ";
    os << nl.port(p).name;
  }
  os << ");\n";

  for (const netlist::Port& p : nl.ports()) {
    os << "  " << (p.is_input ? "input" : "output") << " " << p.name
       << ";\n";
  }
  // Wires: every net that is not a port net.
  for (netlist::NetId n = 0; n < nl.num_nets(); ++n) {
    if (nl.net(n).port >= 0) continue;
    os << "  wire " << nl.net_name(n) << ";\n";
  }
  os << "\n";
  for (netlist::InstId i = 0; i < nl.num_instances(); ++i) {
    const netlist::Instance& inst = nl.instance(i);
    os << "  " << inst.type->name() << " " << nl.instance_name(i) << " (";
    bool first = true;
    const auto pin_nets = nl.pin_nets(i);
    for (std::size_t p = 0; p < pin_nets.size(); ++p) {
      if (pin_nets[p] == netlist::kNoNet) continue;
      if (!first) os << ", ";
      first = false;
      os << "." << inst.type->pins()[p].name << "("
         << printed_net_name(nl, pin_nets[p]) << ")";
    }
    os << ");\n";
  }
  os << "endmodule\n";
}

std::string to_verilog_string(const Netlist& nl) {
  std::ostringstream os;
  write_verilog(nl, os);
  return os.str();
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

namespace {

class VTokenizer {
 public:
  explicit VTokenizer(std::istream& is) : is_(is) {}

  /// Next token: identifier, or a single punctuation char from "();,.".
  std::string next() {
    skip_space_and_comments();
    int c = is_.peek();
    if (c == EOF) throw std::runtime_error("unexpected end of Verilog");
    if (std::strchr("();,.", c)) {
      is_.get();
      return std::string(1, static_cast<char>(c));
    }
    std::string t;
    while (c != EOF && !std::isspace(c) && !std::strchr("();,.", c)) {
      t.push_back(static_cast<char>(is_.get()));
      c = is_.peek();
    }
    if (t.empty()) throw std::runtime_error("tokenizer stuck");
    return t;
  }

  bool at_end() {
    skip_space_and_comments();
    return is_.peek() == EOF;
  }

  void expect(const std::string& want) {
    const std::string t = next();
    if (t != want) {
      throw std::runtime_error("expected '" + want + "', got '" + t + "'");
    }
  }

 private:
  void skip_space_and_comments() {
    for (;;) {
      int c = is_.peek();
      while (c != EOF && std::isspace(c)) {
        is_.get();
        c = is_.peek();
      }
      if (c != '/') return;
      is_.get();
      const int c2 = is_.peek();
      if (c2 == '/') {
        std::string line;
        std::getline(is_, line);
      } else if (c2 == '*') {
        is_.get();
        int prev = 0;
        while (is_.good()) {
          const int cur = is_.get();
          if (prev == '*' && cur == '/') break;
          prev = cur;
        }
      } else {
        is_.unget();
        return;
      }
    }
  }

  std::istream& is_;
};

}  // namespace

Netlist read_verilog(std::istream& is, const stdcell::Library& lib) {
  VTokenizer tk(is);
  tk.expect("module");
  const std::string name = tk.next();
  Netlist nl(name, &lib);

  // Header port list (names only; directions come from declarations).
  std::vector<std::string> header_ports;
  tk.expect("(");
  for (;;) {
    const std::string t = tk.next();
    if (t == ")") break;
    if (t == ",") continue;
    header_ports.push_back(t);
  }
  tk.expect(";");

  // Body.
  std::map<std::string, netlist::NetId> nets;
  auto net_of = [&](const std::string& n) {
    auto it = nets.find(n);
    if (it != nets.end()) return it->second;
    const netlist::NetId id = nl.add_net(n);
    nets.emplace(n, id);
    return id;
  };

  for (;;) {
    const std::string t = tk.next();
    if (t == "endmodule") break;
    if (t == "input" || t == "output" || t == "wire") {
      for (;;) {
        const std::string n = tk.next();
        if (n == ";") break;
        if (n == ",") continue;
        if (t == "input") {
          nets.emplace(n, nl.port(nl.add_input(n)).net);
        } else if (t == "output") {
          // Output port net: create net now, attach port.
          const netlist::NetId id = net_of(n);
          nl.add_output_for_net(n, id);
        } else {
          net_of(n);
        }
      }
      continue;
    }
    // Otherwise: `<CELL> <inst> ( .PIN(net), ... ) ;`
    const stdcell::CellType* cell = lib.find(t);
    if (!cell) {
      throw std::runtime_error("unknown cell '" + t + "' in Verilog");
    }
    const std::string inst_name = tk.next();
    const netlist::InstId inst = nl.add_instance(inst_name, cell);
    tk.expect("(");
    for (;;) {
      const std::string p = tk.next();
      if (p == ")") break;
      if (p == ",") continue;
      if (p != ".") {
        throw std::runtime_error("expected named connection in " + inst_name);
      }
      const std::string pin = tk.next();
      tk.expect("(");
      const std::string net = tk.next();
      tk.expect(")");
      nl.connect(inst, pin, net_of(net));
    }
    tk.expect(";");
    // Preserve clock marking: nets driving CP pins become clock nets when
    // they are input ports named like clocks is NOT assumed; the caller
    // marks clocks explicitly after parsing.
  }

  // Sanity: all header ports declared.
  for (const std::string& p : header_ports) {
    if (!nl.find_port(p)) {
      throw std::runtime_error("port '" + p + "' missing a direction");
    }
  }
  return nl;
}

Netlist read_verilog_string(const std::string& text,
                            const stdcell::Library& lib) {
  std::istringstream is(text);
  return read_verilog(is, lib);
}

}  // namespace ffet::io
