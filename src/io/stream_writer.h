// stream_writer.h — buffered text emission for the streaming writers.
//
// The DEF/LEF/SPEF writers emit millions of short tokens on large designs;
// pushing each one through std::ostream's virtual sentry/locale machinery
// dominates their runtime.  StreamWriter batches output in a local buffer
// and formats numbers with std::to_chars (locale-free, and for doubles the
// shortest representation that round-trips exactly), flushing to the
// underlying stream in large writes.

#pragma once

#include <charconv>
#include <cstddef>
#include <ostream>
#include <string_view>
#include <type_traits>
#include <vector>

namespace ffet::io {

class StreamWriter {
 public:
  explicit StreamWriter(std::ostream& os, std::size_t capacity = 1 << 16)
      : os_(os) {
    buf_.reserve(capacity);
  }
  ~StreamWriter() { flush(); }
  StreamWriter(const StreamWriter&) = delete;
  StreamWriter& operator=(const StreamWriter&) = delete;

  StreamWriter& operator<<(std::string_view s) {
    if (buf_.size() + s.size() > buf_.capacity()) flush();
    if (s.size() >= buf_.capacity()) {
      os_.write(s.data(), static_cast<std::streamsize>(s.size()));
    } else {
      buf_.insert(buf_.end(), s.begin(), s.end());
    }
    return *this;
  }
  StreamWriter& operator<<(const char* s) {
    return *this << std::string_view(s);
  }
  StreamWriter& operator<<(char c) {
    if (buf_.size() == buf_.capacity()) flush();
    buf_.push_back(c);
    return *this;
  }

  template <typename T>
    requires std::is_integral_v<T>
  StreamWriter& operator<<(T v) {
    char tmp[24];
    const auto [p, ec] = std::to_chars(tmp, tmp + sizeof(tmp), v);
    return *this << std::string_view(tmp, static_cast<std::size_t>(p - tmp));
  }

  /// Shortest decimal form that parses back to exactly `v`.
  StreamWriter& operator<<(double v) {
    char tmp[32];
    const auto [p, ec] = std::to_chars(tmp, tmp + sizeof(tmp), v);
    return *this << std::string_view(tmp, static_cast<std::size_t>(p - tmp));
  }

  void flush() {
    if (!buf_.empty()) {
      os_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
      buf_.clear();
    }
  }

 private:
  std::ostream& os_;
  std::vector<char> buf_;
};

}  // namespace ffet::io
