// extract.h — dual-sided RC extraction (Sec. III.C).
//
// Consumes the **merged** DEF (front + back wires in one model, the paper's
// StarRC input) and produces per-net RC trees:
//
//   * wire segments contribute distributed RC from their layer's derived
//     electrical constants (pi-model: half the capacitance at each
//     endpoint, series resistance between them);
//   * layer changes and pin hookups contribute via-stack resistance;
//   * the frontside and backside subtrees of a dual-sided net are joined at
//     the driver through the Drain Merge (the dual-sided output pin) — its
//     link resistance is the only structure crossing the wafer;
//   * sink input-pin capacitances are attached at their hookup nodes;
//   * **coupling**: wire capacitance grows with the local routed-wire
//     density of its wafer side (neighboring tracks contribute Miller
//     coupling), computed from the merged DEF's own geometry the way a
//     field-solver-calibrated extractor derives coupling from neighborhood
//     occupancy.  This is the mechanism that makes congested single-sided
//     routing slower and hungrier than dual-sided routing at the same
//     utilization — the source of the paper's Table III gains.
//
// Elmore delays to every node are precomputed; STA consumes the driver's
// total load and the per-sink Elmore/slew-degradation terms.
//
// Storage: the design's RC lives in ONE flat node/elmore/sink arena inside
// RcNetlist, with a per-net span table — no per-net allocations.  `RcTree`
// remains as the scratch type one net is built into before being packed
// into the arena; STA/report consumers read nets through the lightweight
// `RcTreeView` spans (index-only traversals).

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "io/def.h"
#include "netlist/netlist.h"
#include "tech/tech.h"

namespace ffet::extract {

struct RcNode {
  geom::Point pos;
  double cap_ff = 0.0;        ///< lumped capacitance at this node
  double r_ohm = 0.0;         ///< resistance to parent
  std::int32_t parent = -1;   ///< tree parent (-1 for the driver root)
  tech::Side side = tech::Side::Front;
};

/// Scratch representation of one net's RC tree (the build/IO type; packed
/// designs store nets in the RcNetlist arena instead).
class RcTree {
 public:
  std::vector<RcNode> nodes;  ///< nodes[0] is the driver root
  /// Node index for each sink pin, parallel to the net's sink list.
  std::vector<std::int32_t> sink_nodes;

  double total_cap_ff = 0.0;  ///< wire + sink-pin capacitance seen by driver
  double wire_cap_ff = 0.0;   ///< wire-only share (for switching power)

  /// Elmore delay (ps) from the driver to each node.
  std::vector<double> elmore_ps;

  double elmore_to_sink(std::size_t sink_idx) const {
    return elmore_ps[static_cast<std::size_t>(sink_nodes[sink_idx])];
  }

  void clear() {
    nodes.clear();
    sink_nodes.clear();
    elmore_ps.clear();
    total_cap_ff = wire_cap_ff = 0.0;
  }
};

/// One net's location in the RcNetlist arena.  Node/sink indices inside a
/// span are span-local (sink_nodes values index the span's node range).
struct RcSpan {
  std::uint32_t first_node = 0;
  std::uint32_t num_nodes = 0;
  std::uint32_t first_sink = 0;
  std::uint32_t num_sinks = 0;
  double total_cap_ff = 0.0;
  double wire_cap_ff = 0.0;
};

/// Read-only view of one net's tree inside the arena; cheap to construct,
/// traversals are pure index arithmetic.
class RcTreeView {
 public:
  std::span<const RcNode> nodes;
  std::span<const double> elmore_ps;
  std::span<const std::int32_t> sink_nodes;
  double total_cap_ff = 0.0;
  double wire_cap_ff = 0.0;

  double elmore_to_sink(std::size_t sink_idx) const {
    return elmore_ps[static_cast<std::size_t>(sink_nodes[sink_idx])];
  }
};

/// All nets' parasitics in one flat arena (nodes, Elmore delays and sink
/// hookups), indexed by NetId through the span table.  Copyable — the ECO
/// engine snapshots it for revert.
class RcNetlist {
 public:
  double total_wire_cap_ff = 0.0;
  double total_wire_res_kohm = 0.0;

  std::size_t num_trees() const { return spans_.size(); }

  RcTreeView tree(netlist::NetId id) const {
    const RcSpan& s = spans_[static_cast<std::size_t>(id)];
    RcTreeView v;
    v.nodes = {nodes_.data() + s.first_node, s.num_nodes};
    v.elmore_ps = {elmore_.data() + s.first_node, s.num_nodes};
    v.sink_nodes = {sinks_.data() + s.first_sink, s.num_sinks};
    v.total_cap_ff = s.total_cap_ff;
    v.wire_cap_ff = s.wire_cap_ff;
    return v;
  }

  const std::vector<RcSpan>& spans() const { return spans_; }
  /// One net's span record (totals without constructing a view).
  const RcSpan& span_of(netlist::NetId id) const {
    return spans_[static_cast<std::size_t>(id)];
  }

  /// Grow (or shrink) the span table; new nets get empty trees.
  void resize_trees(std::size_t n) { spans_.resize(n); }

  /// Pack one net's scratch tree into the arena.  Rebuilt trees that fit
  /// their existing span are overwritten in place; larger ones are appended
  /// (the abandoned range becomes a hole — acceptable across ECO loops,
  /// which rebuild a handful of nets).
  void assign_tree(netlist::NetId id, const RcTree& t);

  /// Sum of per-net node counts (holes excluded) — the structure-size
  /// counter reports track.
  std::int64_t tree_node_count() const {
    std::int64_t n = 0;
    for (const RcSpan& s : spans_) n += s.num_nodes;
    return n;
  }
  /// Arena occupancy including holes left by incremental re-extraction.
  std::size_t arena_nodes() const { return nodes_.size(); }

  /// Pre-size the arenas (optional; the full extractor estimates totals).
  void reserve_arena(std::size_t nodes, std::size_t sinks) {
    nodes_.reserve(nodes);
    elmore_.reserve(nodes);
    sinks_.reserve(sinks);
  }

 private:
  std::vector<RcSpan> spans_;       ///< indexed by NetId
  std::vector<RcNode> nodes_;
  std::vector<double> elmore_;      ///< parallel to nodes_
  std::vector<std::int32_t> sinks_;
};

/// Extract RC for every net of `nl` from the merged DEF.  `merged` must
/// contain the union of front and back wires (see io::merge_defs); nets
/// present in the netlist but absent from the DEF get pin-only trees.
/// Per-net trees are independent, so `threads > 1` builds them in parallel
/// (bit-identical to serial: each net's tree is a pure function of its DEF
/// wires, built into a per-net scratch slot and packed into the arena
/// serially in net order; the totals are summed in net order too).
RcNetlist extract_rc(const io::Def& merged, const netlist::Netlist& nl,
                     const tech::Technology& tech, int threads = 1);

/// Incremental re-extraction: rebuild only the trees of `dirty_nets` from
/// the (re-merged) DEF and the current pin landscape, leaving every other
/// tree untouched, then recompute the aggregate totals.  The density grid
/// driving the coupling model is rebuilt from the current DEF (it is global
/// state); the dirty trees therefore see exactly the field a full
/// extraction would.  The span table is resized to the current netlist, so
/// nets added since the last extraction must be listed dirty.  The ECO
/// engine's extraction primitive.
void reextract_nets(RcNetlist& rc, const io::Def& merged,
                    const netlist::Netlist& nl, const tech::Technology& tech,
                    const std::vector<netlist::NetId>& dirty_nets);

/// Recompute a tree's total capacitance and per-node Elmore delays from its
/// node caps / parents / resistances (used by the extractor and by the
/// SPEF reader).
void finalize_rc_tree(RcTree& tree);

}  // namespace ffet::extract
