// extract.h — dual-sided RC extraction (Sec. III.C).
//
// Consumes the **merged** DEF (front + back wires in one model, the paper's
// StarRC input) and produces per-net RC trees:
//
//   * wire segments contribute distributed RC from their layer's derived
//     electrical constants (pi-model: half the capacitance at each
//     endpoint, series resistance between them);
//   * layer changes and pin hookups contribute via-stack resistance;
//   * the frontside and backside subtrees of a dual-sided net are joined at
//     the driver through the Drain Merge (the dual-sided output pin) — its
//     link resistance is the only structure crossing the wafer;
//   * sink input-pin capacitances are attached at their hookup nodes;
//   * **coupling**: wire capacitance grows with the local routed-wire
//     density of its wafer side (neighboring tracks contribute Miller
//     coupling), computed from the merged DEF's own geometry the way a
//     field-solver-calibrated extractor derives coupling from neighborhood
//     occupancy.  This is the mechanism that makes congested single-sided
//     routing slower and hungrier than dual-sided routing at the same
//     utilization — the source of the paper's Table III gains.
//
// Elmore delays to every node are precomputed; STA consumes the driver's
// total load and the per-sink Elmore/slew-degradation terms.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "io/def.h"
#include "netlist/netlist.h"
#include "tech/tech.h"

namespace ffet::extract {

struct RcNode {
  geom::Point pos;
  tech::Side side = tech::Side::Front;
  double cap_ff = 0.0;        ///< lumped capacitance at this node
  int parent = -1;            ///< tree parent (-1 for the driver root)
  double r_ohm = 0.0;         ///< resistance to parent
};

class RcTree {
 public:
  std::string net_name;
  std::vector<RcNode> nodes;  ///< nodes[0] is the driver root
  /// Node index for each sink pin, parallel to the net's sink list.
  std::vector<int> sink_nodes;

  double total_cap_ff = 0.0;  ///< wire + sink-pin capacitance seen by driver
  double wire_cap_ff = 0.0;   ///< wire-only share (for switching power)

  /// Elmore delay (ps) from the driver to each node.
  std::vector<double> elmore_ps;

  double elmore_to_sink(std::size_t sink_idx) const {
    return elmore_ps[static_cast<std::size_t>(sink_nodes[sink_idx])];
  }
};

struct RcNetlist {
  std::vector<RcTree> trees;          ///< indexed by NetId
  double total_wire_cap_ff = 0.0;
  double total_wire_res_kohm = 0.0;
};

/// Extract RC for every net of `nl` from the merged DEF.  `merged` must
/// contain the union of front and back wires (see io::merge_defs); nets
/// present in the netlist but absent from the DEF get pin-only trees.
/// Per-net trees are independent, so `threads > 1` builds them in parallel
/// (bit-identical to serial: each net's tree is a pure function of its DEF
/// wires, and the totals are summed serially in net order).
RcNetlist extract_rc(const io::Def& merged, const netlist::Netlist& nl,
                     const tech::Technology& tech, int threads = 1);

/// Incremental re-extraction: rebuild only the trees of `dirty_nets` from
/// the (re-merged) DEF and the current pin landscape, leaving every other
/// tree untouched, then recompute the aggregate totals.  The density grid
/// driving the coupling model is rebuilt from the current DEF (it is global
/// state); the dirty trees therefore see exactly the field a full
/// extraction would.  `rc.trees` is resized to the current netlist, so
/// nets added since the last extraction must be listed dirty.  The ECO
/// engine's extraction primitive.
void reextract_nets(RcNetlist& rc, const io::Def& merged,
                    const netlist::Netlist& nl, const tech::Technology& tech,
                    const std::vector<netlist::NetId>& dirty_nets);

/// Recompute a tree's total capacitance and per-node Elmore delays from its
/// node caps / parents / resistances (used by the extractor and by the
/// SPEF reader).
void finalize_rc_tree(RcTree& tree);

}  // namespace ffet::extract
