#include "extract/spef.h"

#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ffet::extract {

void write_spef(const RcNetlist& rc, const netlist::Netlist& nl,
                std::ostream& os) {
  os << "*SPEF \"IEEE 1481-1998\"\n";
  os << "*DESIGN \"" << nl.name() << "\"\n";
  os << "*PROGRAM \"OpenFFET dual-sided extractor\"\n";
  os << "*T_UNIT 1 PS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n*L_UNIT 1 HENRY\n\n";

  for (std::size_t net_id = 0; net_id < rc.trees.size(); ++net_id) {
    const RcTree& t = rc.trees[net_id];
    const netlist::Net& net = nl.net(static_cast<netlist::NetId>(net_id));
    if (net.driver.inst == netlist::kNoInst && net.sinks.empty()) continue;

    os << "*D_NET " << t.net_name << " " << t.total_cap_ff << "\n";
    os << "*CONN\n";
    if (net.driver.inst != netlist::kNoInst) {
      const netlist::Instance& d = nl.instance(net.driver.inst);
      os << "*I " << d.name << ":"
         << d.type->pins()[static_cast<std::size_t>(net.driver.pin)].name
         << " O\n";
    } else if (net.port >= 0) {
      os << "*P " << nl.port(net.port).name << " I\n";
    }
    for (const netlist::PinRef& s : net.sinks) {
      const netlist::Instance& i = nl.instance(s.inst);
      os << "*I " << i.name << ":"
         << i.type->pins()[static_cast<std::size_t>(s.pin)].name << " I\n";
    }

    // Convention consumed by read_spef: node 0 is the driver root and the
    // last |sinks| node indices are the sink pin nodes in netlist order.
    os << "*CAP\n";
    int cap_idx = 1;
    for (std::size_t n = 0; n < t.nodes.size(); ++n) {
      if (t.nodes[n].cap_ff <= 0.0) continue;
      os << cap_idx++ << " " << t.net_name << ":" << n << " "
         << t.nodes[n].cap_ff << " // side="
         << tech::to_string(t.nodes[n].side) << "\n";
    }
    os << "*RES\n";
    int res_idx = 1;
    for (std::size_t n = 1; n < t.nodes.size(); ++n) {
      if (t.nodes[n].parent < 0) continue;
      os << res_idx++ << " " << t.net_name << ":" << t.nodes[n].parent << " "
         << t.net_name << ":" << n << " " << t.nodes[n].r_ohm << "\n";
    }
    os << "*END\n\n";
  }
}

std::string to_spef_string(const RcNetlist& rc, const netlist::Netlist& nl) {
  std::ostringstream os;
  write_spef(rc, nl, os);
  return os.str();
}

namespace {

/// Parse "<net>:<k>" and return k.
int node_index_of(const std::string& token) {
  const auto pos = token.rfind(':');
  if (pos == std::string::npos) {
    throw std::runtime_error("malformed SPEF node '" + token + "'");
  }
  return std::stoi(token.substr(pos + 1));
}

}  // namespace

RcNetlist read_spef(std::istream& is, const netlist::Netlist& nl) {
  RcNetlist out;
  out.trees.resize(static_cast<std::size_t>(nl.num_nets()));

  // Pre-create pin-only trees for every net so nets absent from the file
  // still behave (root-only, no parasitics).
  for (int n = 0; n < nl.num_nets(); ++n) {
    RcTree& t = out.trees[static_cast<std::size_t>(n)];
    t.net_name = nl.net(n).name;
    t.nodes.push_back({});
  }

  std::string line;
  RcTree* cur = nullptr;
  netlist::NetId cur_net = netlist::kNoNet;
  enum class Section { None, Cap, Res } section = Section::None;
  // Collected entries per net; nodes may appear in any order.
  std::map<int, RcNode> nodes;

  auto flush = [&]() {
    if (!cur) return;
    int max_idx = 0;
    for (const auto& [k, nd] : nodes) max_idx = std::max(max_idx, k);
    cur->nodes.assign(static_cast<std::size_t>(max_idx) + 1, RcNode{});
    cur->nodes[0].parent = -1;
    for (const auto& [k, nd] : nodes) cur->nodes[static_cast<std::size_t>(k)] = nd;
    // Sink nodes: by the writer's construction, the last |sinks| node
    // indices are the sink pin nodes, in netlist sink order.
    const netlist::Net& net = nl.net(cur_net);
    cur->sink_nodes.clear();
    const int n_sinks = static_cast<int>(net.sinks.size());
    for (int i = 0; i < n_sinks; ++i) {
      cur->sink_nodes.push_back(max_idx - n_sinks + 1 + i);
    }
    finalize_rc_tree(*cur);
    double pin_cap = 0.0;
    for (const netlist::PinRef& s : net.sinks) pin_cap += nl.pin_cap_ff(s);
    cur->wire_cap_ff = std::max(0.0, cur->total_cap_ff - pin_cap);
    out.total_wire_cap_ff += cur->wire_cap_ff;
    for (std::size_t i = 1; i < cur->nodes.size(); ++i) {
      out.total_wire_res_kohm += cur->nodes[i].r_ohm / 1000.0;
    }
    nodes.clear();
    cur = nullptr;
    cur_net = netlist::kNoNet;
  };

  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok)) continue;
    if (tok == "*D_NET") {
      flush();
      std::string name;
      ls >> name;
      const auto id = nl.find_net(name);
      if (!id) {
        throw std::runtime_error("SPEF net '" + name + "' not in netlist");
      }
      cur_net = *id;
      cur = &out.trees[static_cast<std::size_t>(*id)];
      nodes[0] = RcNode{};
      nodes[0].parent = -1;
      section = Section::None;
    } else if (tok == "*CAP") {
      section = Section::Cap;
    } else if (tok == "*RES") {
      section = Section::Res;
    } else if (tok == "*CONN" || tok == "*I" || tok == "*P") {
      // Connectivity is re-derived from the netlist; skip.
    } else if (tok == "*END") {
      flush();
      section = Section::None;
    } else if (section == Section::Cap && cur) {
      // "<k> <net>:<n> <cap> // side=..."
      std::string node_tok;
      double cap = 0.0;
      std::string side_comment, side_val;
      ls >> node_tok >> cap >> side_comment >> side_val;
      const int idx = node_index_of(node_tok);
      nodes[idx].cap_ff = cap;
      if (side_val.rfind("side=", 0) == 0) {
        nodes[idx].side = side_val.substr(5) == "back" ? tech::Side::Back
                                                       : tech::Side::Front;
      }
    } else if (section == Section::Res && cur) {
      // "<k> <net>:<a> <net>:<b> <r>"  — a is b's parent by construction.
      std::string a_tok, b_tok;
      double r = 0.0;
      ls >> a_tok >> b_tok >> r;
      const int a = node_index_of(a_tok);
      const int b = node_index_of(b_tok);
      nodes[b].parent = a;
      nodes[b].r_ohm = r;
      nodes.try_emplace(a);
    }
  }
  flush();
  return out;
}

RcNetlist read_spef_string(const std::string& text,
                           const netlist::Netlist& nl) {
  std::istringstream is(text);
  return read_spef(is, nl);
}

}  // namespace ffet::extract
