#include "extract/spef.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "io/stream_writer.h"

namespace ffet::extract {

void write_spef(const RcNetlist& rc, const netlist::Netlist& nl,
                std::ostream& os) {
  io::StreamWriter w(os);
  w << "*SPEF \"IEEE 1481-1998\"\n";
  w << "*DESIGN \"" << nl.name() << "\"\n";
  w << "*PROGRAM \"OpenFFET dual-sided extractor\"\n";
  w << "*T_UNIT 1 PS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n*L_UNIT 1 HENRY\n\n";

  std::string net_name;
  std::string inst_name;
  for (std::size_t net_id = 0; net_id < rc.num_trees(); ++net_id) {
    const RcTreeView t = rc.tree(static_cast<netlist::NetId>(net_id));
    const netlist::Net& net = nl.net(static_cast<netlist::NetId>(net_id));
    if (net.driver.inst == netlist::kNoInst && net.sinks.empty()) continue;

    net_name.clear();
    nl.append_net_name(net_name, static_cast<netlist::NetId>(net_id));

    w << "*D_NET " << net_name << ' ' << t.total_cap_ff << '\n';
    w << "*CONN\n";
    if (net.driver.inst != netlist::kNoInst) {
      const netlist::Instance& d = nl.instance(net.driver.inst);
      inst_name.clear();
      nl.append_instance_name(inst_name, net.driver.inst);
      w << "*I " << inst_name << ':'
        << d.type->pins()[static_cast<std::size_t>(net.driver.pin)].name
        << " O\n";
    } else if (net.port >= 0) {
      w << "*P " << nl.port(net.port).name << " I\n";
    }
    for (const netlist::PinRef& s : net.sinks) {
      const netlist::Instance& i = nl.instance(s.inst);
      inst_name.clear();
      nl.append_instance_name(inst_name, s.inst);
      w << "*I " << inst_name << ':'
        << i.type->pins()[static_cast<std::size_t>(s.pin)].name << " I\n";
    }

    // Convention consumed by read_spef: node 0 is the driver root and the
    // last |sinks| node indices are the sink pin nodes in netlist order.
    w << "*CAP\n";
    int cap_idx = 1;
    for (std::size_t n = 0; n < t.nodes.size(); ++n) {
      if (t.nodes[n].cap_ff <= 0.0) continue;
      w << cap_idx++ << ' ' << net_name << ':' << n << ' '
        << t.nodes[n].cap_ff << " // side="
        << tech::to_string(t.nodes[n].side) << '\n';
    }
    w << "*RES\n";
    int res_idx = 1;
    for (std::size_t n = 1; n < t.nodes.size(); ++n) {
      if (t.nodes[n].parent < 0) continue;
      w << res_idx++ << ' ' << net_name << ':' << t.nodes[n].parent << ' '
        << net_name << ':' << n << ' ' << t.nodes[n].r_ohm << '\n';
    }
    w << "*END\n\n";
  }
}

std::string to_spef_string(const RcNetlist& rc, const netlist::Netlist& nl) {
  std::ostringstream os;
  write_spef(rc, nl, os);
  return os.str();
}

namespace {

/// Parse "<net>:<k>" and return k.
int node_index_of(const std::string& token) {
  const auto pos = token.rfind(':');
  if (pos == std::string::npos) {
    throw std::runtime_error("malformed SPEF node '" + token + "'");
  }
  return std::stoi(token.substr(pos + 1));
}

}  // namespace

RcNetlist read_spef(std::istream& is, const netlist::Netlist& nl) {
  RcNetlist out;
  out.resize_trees(static_cast<std::size_t>(nl.num_nets()));

  std::string line;
  netlist::NetId cur_net = netlist::kNoNet;
  enum class Section { None, Cap, Res } section = Section::None;
  // Collected entries per net; nodes may appear in any order, but their
  // indices are dense (the writer numbers 0..N-1), so a plain growable
  // vector replaces the former ordered map on this hot path.
  std::vector<RcNode> nodes;
  auto node_at = [&nodes](int idx) -> RcNode& {
    if (static_cast<std::size_t>(idx) >= nodes.size()) {
      nodes.resize(static_cast<std::size_t>(idx) + 1);
    }
    return nodes[static_cast<std::size_t>(idx)];
  };
  RcTree scratch;

  auto flush = [&]() {
    if (cur_net == netlist::kNoNet) return;
    scratch.clear();
    const int max_idx =
        nodes.empty() ? 0 : static_cast<int>(nodes.size()) - 1;
    scratch.nodes = nodes;
    if (scratch.nodes.empty()) scratch.nodes.emplace_back();
    scratch.nodes[0].parent = -1;
    // Sink nodes: by the writer's construction, the last |sinks| node
    // indices are the sink pin nodes, in netlist sink order.
    const netlist::Net& net = nl.net(cur_net);
    const int n_sinks = static_cast<int>(net.sinks.size());
    for (int i = 0; i < n_sinks; ++i) {
      scratch.sink_nodes.push_back(max_idx - n_sinks + 1 + i);
    }
    finalize_rc_tree(scratch);
    double pin_cap = 0.0;
    for (const netlist::PinRef& s : net.sinks) pin_cap += nl.pin_cap_ff(s);
    scratch.wire_cap_ff = std::max(0.0, scratch.total_cap_ff - pin_cap);
    out.assign_tree(cur_net, scratch);
    out.total_wire_cap_ff += scratch.wire_cap_ff;
    for (std::size_t i = 1; i < scratch.nodes.size(); ++i) {
      out.total_wire_res_kohm += scratch.nodes[i].r_ohm / 1000.0;
    }
    nodes.clear();
    cur_net = netlist::kNoNet;
  };

  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok)) continue;
    if (tok == "*D_NET") {
      flush();
      std::string name;
      ls >> name;
      const auto id = nl.find_net(name);
      if (!id) {
        throw std::runtime_error("SPEF net '" + name + "' not in netlist");
      }
      cur_net = *id;
      node_at(0) = RcNode{};
      nodes[0].parent = -1;
      section = Section::None;
    } else if (tok == "*CAP") {
      section = Section::Cap;
    } else if (tok == "*RES") {
      section = Section::Res;
    } else if (tok == "*CONN" || tok == "*I" || tok == "*P") {
      // Connectivity is re-derived from the netlist; skip.
    } else if (tok == "*END") {
      flush();
      section = Section::None;
    } else if (section == Section::Cap && cur_net != netlist::kNoNet) {
      // "<k> <net>:<n> <cap> // side=..."
      std::string node_tok;
      double cap = 0.0;
      std::string side_comment, side_val;
      ls >> node_tok >> cap >> side_comment >> side_val;
      RcNode& nd = node_at(node_index_of(node_tok));
      nd.cap_ff = cap;
      if (side_val.rfind("side=", 0) == 0) {
        nd.side = side_val.substr(5) == "back" ? tech::Side::Back
                                               : tech::Side::Front;
      }
    } else if (section == Section::Res && cur_net != netlist::kNoNet) {
      // "<k> <net>:<a> <net>:<b> <r>"  — a is b's parent by construction.
      std::string a_tok, b_tok;
      double r = 0.0;
      ls >> a_tok >> b_tok >> r;
      const int a = node_index_of(a_tok);
      const int b = node_index_of(b_tok);
      node_at(std::max(a, b));
      nodes[static_cast<std::size_t>(b)].parent = a;
      nodes[static_cast<std::size_t>(b)].r_ohm = r;
    }
  }
  flush();

  // Nets absent from the file still behave: give them root-only trees
  // (no parasitics) after the fact, so no arena holes are created when a
  // *D_NET would otherwise replace a pre-seeded stub.
  scratch.clear();
  scratch.nodes.push_back({});
  scratch.elmore_ps.assign(1, 0.0);
  for (netlist::NetId n = 0; n < nl.num_nets(); ++n) {
    if (out.spans()[static_cast<std::size_t>(n)].num_nodes == 0) {
      out.assign_tree(n, scratch);
    }
  }
  return out;
}

RcNetlist read_spef_string(const std::string& text,
                           const netlist::Netlist& nl) {
  std::istringstream is(text);
  return read_spef(is, nl);
}

}  // namespace ffet::extract
