// spef.h — Standard Parasitic Exchange Format emission.
//
// The paper's StarRC run produces parasitics as SPEF for the downstream
// STA/power tool; this writer emits the extractor's RC trees in IEEE
// 1481-style SPEF (*D_NET sections with *CAP and *RES lists), so the
// project's dual-sided extraction results can be consumed or inspected by
// standard tooling.  Node naming: `<net>:<k>` for internal nodes, with the
// driver node as `<net>:0`; a trailing comment per node records the wafer
// side — the one piece of information standard SPEF has no field for.

#pragma once

#include <iosfwd>
#include <string>

#include "extract/extract.h"

namespace ffet::extract {

/// Write all nets' parasitics.  Nets without wires produce pin-only
/// *D_NETs (total cap = pin caps).
void write_spef(const RcNetlist& rc, const netlist::Netlist& nl,
                std::ostream& os);
std::string to_spef_string(const RcNetlist& rc, const netlist::Netlist& nl);

/// Parse the dialect emitted by write_spef back into RC trees, re-deriving
/// tree structure and Elmore delays from the *CAP/*RES lists.  `nl` is
/// needed to order sink_nodes consistently with the netlist's sink lists.
/// Round-trip property: extract → write → read reproduces total/wire caps
/// and Elmore delays to numerical precision.
RcNetlist read_spef(std::istream& is, const netlist::Netlist& nl);
RcNetlist read_spef_string(const std::string& text,
                           const netlist::Netlist& nl);

}  // namespace ffet::extract
