#include "extract/extract.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>
#include <unordered_map>

#include "obs/obs.h"
#include "runtime/thread_pool.h"

namespace ffet::extract {

using netlist::Netlist;
using tech::Side;
using tech::Technology;

namespace {

/// Hookup resistance from a cell pin (M0) to the first routing layer:
/// a short via stack.
constexpr double kPinHookupOhm = 40.0;

/// Coupling model: wire capacitance scales with the local routed-wire
/// density of its side.  A wire surrounded by neighbors at minimum pitch
/// sees roughly +kMillerCoupling of its base capacitance in switching
/// coupling (Miller effect); an isolated wire sees none.  Density is
/// measured from the merged DEF itself, per side, on a coarse grid.
constexpr double kMillerCoupling = 1.2;
/// Bin edge for the density grid (µm).
constexpr double kDensityBinUm = 1.0;
/// Effective-capacity correction for the density normalization — same
/// rationale as RouteOptions::capacity_factor: our global placer's
/// wirelength runs high relative to a commercial flow, so raw track counts
/// understate how empty the routing fabric would really be.
constexpr double kDensityCapacityFactor = 2.0;

/// Per-side coarse wire-density grid derived from the merged DEF.
class DensityGrid {
 public:
  DensityGrid(const io::Def& def, const Technology& tech) {
    cols_ = std::max(1, static_cast<int>(geom::to_um(def.die.width()) /
                                         kDensityBinUm) +
                            1);
    rows_ = std::max(1, static_cast<int>(geom::to_um(def.die.height()) /
                                         kDensityBinUm) +
                            1);
    load_[0].assign(static_cast<std::size_t>(cols_) *
                        static_cast<std::size_t>(rows_),
                    0.0);
    load_[1].assign(static_cast<std::size_t>(cols_) *
                        static_cast<std::size_t>(rows_),
                    0.0);

    // Wire length per bin, per side.
    for (const io::DefNet& n : def.nets) {
      for (const io::DefWire& w : n.wires) {
        const int side = w.layer.empty() || w.layer[0] != 'B' ? 0 : 1;
        add_segment(side, w.from, w.to);
      }
    }

    // Wiring capacity per bin (µm of routable wire per µm² of die, per
    // side) from the technology's signal stacks.
    for (int side = 0; side < 2; ++side) {
      double tracks_per_um = 0.0;
      const auto layers = tech.routing_layers(
          side == 0 ? tech::Side::Front : tech::Side::Back);
      for (const tech::MetalLayer* l : layers) {
        tracks_per_um += 1000.0 / static_cast<double>(l->pitch);
      }
      capacity_um_per_um2_[side] =
          tracks_per_um * kDensityCapacityFactor;  // both dirs combined
    }
  }

  /// Local density ratio (0 = empty, 1 = every track occupied) around a
  /// point, for one side.
  double ratio(Side s, geom::Point p) const {
    const int side = s == Side::Front ? 0 : 1;
    if (capacity_um_per_um2_[side] <= 0.0) return 0.0;
    const int c = std::clamp(static_cast<int>(geom::to_um(p.x) / kDensityBinUm),
                             0, cols_ - 1);
    const int r = std::clamp(static_cast<int>(geom::to_um(p.y) / kDensityBinUm),
                             0, rows_ - 1);
    const double um_in_bin =
        load_[side][static_cast<std::size_t>(r * cols_ + c)];
    const double cap_um = capacity_um_per_um2_[side] * kDensityBinUm *
                          kDensityBinUm;
    return std::min(1.0, um_in_bin / cap_um);
  }

 private:
  void add_segment(int side, geom::Point a, geom::Point b) {
    // Distribute the segment's length along the bins it crosses (coarse:
    // sample every half bin).
    const double len_um = geom::to_um(geom::manhattan(a, b));
    const int samples = std::max(1, static_cast<int>(len_um / (kDensityBinUm / 2)));
    for (int i = 0; i < samples; ++i) {
      const double t = (i + 0.5) / samples;
      const geom::Point p{
          a.x + static_cast<geom::Nm>(t * static_cast<double>(b.x - a.x)),
          a.y + static_cast<geom::Nm>(t * static_cast<double>(b.y - a.y))};
      const int c = std::clamp(
          static_cast<int>(geom::to_um(p.x) / kDensityBinUm), 0, cols_ - 1);
      const int r = std::clamp(
          static_cast<int>(geom::to_um(p.y) / kDensityBinUm), 0, rows_ - 1);
      load_[side][static_cast<std::size_t>(r * cols_ + c)] +=
          len_um / samples;
    }
  }

  int cols_ = 1, rows_ = 1;
  std::array<std::vector<double>, 2> load_;
  std::array<double, 2> capacity_um_per_um2_{0.0, 0.0};
};

struct NodeKey {
  Side side;
  geom::Nm x;
  geom::Nm y;
  bool operator==(const NodeKey&) const = default;
};

struct NodeKeyHash {
  std::size_t operator()(const NodeKey& k) const noexcept {
    std::uint64_t h = static_cast<std::uint64_t>(k.side == Side::Back);
    h = h * 0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(k.x);
    h = h * 0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(k.y);
    return static_cast<std::size_t>(h ^ (h >> 32));
  }
};

Side side_of_layer(const std::string& layer) {
  return !layer.empty() && layer[0] == 'B' ? Side::Back : Side::Front;
}

struct Adj {
  int to;
  double r_ohm;
};

/// Build (or rebuild, resetting any prior contents) one net's RC tree from
/// its merged-DEF wires, the side density grids, and the current pin
/// landscape — the shared kernel of extract_rc and reextract_nets.
void build_net_tree(RcTree& tree, netlist::NetId net_id, const Netlist& nl,
                    const Technology& tech, const io::DefNet* dn,
                    const DensityGrid& density, double drain_merge_r) {
  FFET_TRACE_SCOPE("extract.net");
  tree.clear();
  const netlist::Net& net = nl.net(net_id);

  // Driver position.
  geom::Point drv_pos{0, 0};
  if (net.driver.inst != netlist::kNoInst) {
    drv_pos = nl.pin_position(net.driver);
  } else if (net.port >= 0) {
    drv_pos = nl.port(net.port).pos;
  }

  // Root node.
  tree.nodes.push_back({drv_pos, 0.0, 0.0, -1, Side::Front});

  // Wire graph.
  std::unordered_map<NodeKey, int, NodeKeyHash> node_of;
  std::vector<std::vector<Adj>> adj(1);
  auto get_node = [&](Side s, geom::Point p) {
    const NodeKey key{s, p.x, p.y};
    auto it = node_of.find(key);
    if (it != node_of.end()) return it->second;
    const int idx = static_cast<int>(tree.nodes.size());
    tree.nodes.push_back({p, 0.0, 0.0, -1, s});
    adj.emplace_back();
    node_of.emplace(key, idx);
    return idx;
  };

  if (dn) {
    node_of.reserve(dn->wires.size() * 2);
    for (const io::DefWire& w : dn->wires) {
      const Side s = side_of_layer(w.layer);
      const tech::MetalLayer* layer = tech.find_layer(w.layer);
      if (!layer) {
        throw std::runtime_error("merged DEF references unknown layer " +
                                 w.layer);
      }
      const double len_um = geom::to_um(geom::manhattan(w.from, w.to));
      const double r = std::max(1e-3, len_um * layer->r_ohm_per_um);
      // Coupling: neighbors at the segment midpoint raise the effective
      // capacitance (Miller factor on switching aggressors).
      const geom::Point mid{(w.from.x + w.to.x) / 2,
                            (w.from.y + w.to.y) / 2};
      const double coupling =
          1.0 + kMillerCoupling * density.ratio(s, mid);
      const double c = len_um * layer->c_ff_per_um * coupling;
      const int a = get_node(s, w.from);
      const int b = get_node(s, w.to);
      tree.nodes[static_cast<std::size_t>(a)].cap_ff += c / 2.0;
      tree.nodes[static_cast<std::size_t>(b)].cap_ff += c / 2.0;
      // Via stacks are charged at the pin hookups (kPinHookupOhm), not
      // per gcell segment — a route stays on its track between bends.
      adj[static_cast<std::size_t>(a)].push_back({b, r});
      adj[static_cast<std::size_t>(b)].push_back({a, r});
    }
  }

  // Join each side's nearest node to the driver root: the frontside via a
  // pin hookup stack; the backside through the Drain Merge (the net's
  // dual-sided output pin) — the only wafer-crossing structure.
  for (Side s : {Side::Front, Side::Back}) {
    int nearest = -1;
    geom::Nm best = std::numeric_limits<geom::Nm>::max();
    for (std::size_t i = 1; i < tree.nodes.size(); ++i) {
      if (tree.nodes[i].side != s) continue;
      const geom::Nm d = geom::manhattan(tree.nodes[i].pos, drv_pos);
      if (d < best) {
        best = d;
        nearest = static_cast<int>(i);
      }
    }
    if (nearest < 0) continue;
    const double joint_r = kPinHookupOhm +
                           (s == Side::Back ? drain_merge_r : 0.0);
    adj[0].push_back({nearest, joint_r});
    adj[static_cast<std::size_t>(nearest)].push_back({0, joint_r});
  }

  // Spanning tree by BFS from the root (drops redundant loop edges).
  std::vector<bool> seen(tree.nodes.size(), false);
  std::queue<int> q;
  q.push(0);
  seen[0] = true;
  while (!q.empty()) {
    const int n = q.front();
    q.pop();
    for (const Adj& e : adj[static_cast<std::size_t>(n)]) {
      if (seen[static_cast<std::size_t>(e.to)]) continue;
      seen[static_cast<std::size_t>(e.to)] = true;
      tree.nodes[static_cast<std::size_t>(e.to)].parent = n;
      tree.nodes[static_cast<std::size_t>(e.to)].r_ohm = e.r_ohm;
      q.push(e.to);
    }
  }

  // Sinks: nearest reachable node on the sink pin's side (root if none),
  // plus the hookup stack and the pin capacitance.
  tree.sink_nodes.reserve(net.sinks.size());
  for (const netlist::PinRef& sref : net.sinks) {
    const stdcell::PinSide ps = nl.pin_side(sref);
    const Side s = ps == stdcell::PinSide::Back ? Side::Back : Side::Front;
    const geom::Point pos = nl.pin_position(sref);
    int nearest = 0;
    geom::Nm best = std::numeric_limits<geom::Nm>::max();
    for (std::size_t i = 1; i < tree.nodes.size(); ++i) {
      if (!seen[i] || tree.nodes[i].side != s) continue;
      const geom::Nm d = geom::manhattan(tree.nodes[i].pos, pos);
      if (d < best) {
        best = d;
        nearest = static_cast<int>(i);
      }
    }
    // Attach the pin as its own node so per-sink Elmore includes the
    // hookup resistance.
    const int pin_node = static_cast<int>(tree.nodes.size());
    tree.nodes.push_back(
        {pos, nl.pin_cap_ff(sref), kPinHookupOhm, nearest, s});
    seen.push_back(true);
    tree.sink_nodes.push_back(pin_node);
  }

  finalize_rc_tree(tree);
  double pin_cap = 0.0;
  for (const netlist::PinRef& sref : net.sinks) {
    pin_cap += nl.pin_cap_ff(sref);
  }
  tree.wire_cap_ff = std::max(0.0, tree.total_cap_ff - pin_cap);
}

/// Per-net pointers into the merged DEF, indexed by NetId (null = the net
/// has no DEF record, i.e. no wires).
std::vector<const io::DefNet*> index_def_nets(const io::Def& merged,
                                              const Netlist& nl) {
  std::vector<const io::DefNet*> by_id(
      static_cast<std::size_t>(nl.num_nets()), nullptr);
  for (const io::DefNet& n : merged.nets) {
    if (const auto id = nl.find_net(n.name)) {
      by_id[static_cast<std::size_t>(*id)] = &n;
    }
  }
  return by_id;
}

/// Recompute the aggregate totals from scratch in net order (shared tail
/// of the full and incremental extractions; keeps them bit-identical).
void sum_totals(RcNetlist& out) {
  out.total_wire_cap_ff = 0.0;
  out.total_wire_res_kohm = 0.0;
  for (netlist::NetId n = 0; n < static_cast<netlist::NetId>(out.num_trees());
       ++n) {
    const RcTreeView t = out.tree(n);
    out.total_wire_cap_ff += t.wire_cap_ff;
    for (std::size_t i = 1; i < t.nodes.size(); ++i) {
      out.total_wire_res_kohm += t.nodes[i].r_ohm / 1000.0;
    }
  }
}

}  // namespace

void RcNetlist::assign_tree(netlist::NetId id, const RcTree& t) {
  RcSpan& s = spans_[static_cast<std::size_t>(id)];
  const auto n_nodes = static_cast<std::uint32_t>(t.nodes.size());
  const auto n_sinks = static_cast<std::uint32_t>(t.sink_nodes.size());
  if (n_nodes > s.num_nodes) {
    s.first_node = static_cast<std::uint32_t>(nodes_.size());
    nodes_.resize(nodes_.size() + n_nodes);
    elmore_.resize(elmore_.size() + n_nodes);
  }
  if (n_sinks > s.num_sinks) {
    s.first_sink = static_cast<std::uint32_t>(sinks_.size());
    sinks_.resize(sinks_.size() + n_sinks);
  }
  std::copy(t.nodes.begin(), t.nodes.end(), nodes_.begin() + s.first_node);
  std::copy(t.elmore_ps.begin(), t.elmore_ps.end(),
            elmore_.begin() + s.first_node);
  std::copy(t.sink_nodes.begin(), t.sink_nodes.end(),
            sinks_.begin() + s.first_sink);
  s.num_nodes = n_nodes;
  s.num_sinks = n_sinks;
  s.total_cap_ff = t.total_cap_ff;
  s.wire_cap_ff = t.wire_cap_ff;
}

RcNetlist extract_rc(const io::Def& merged, const Netlist& nl,
                     const Technology& tech, int threads) {
  FFET_TRACE_SCOPE("extract.rc");
  const auto num_nets = static_cast<std::size_t>(nl.num_nets());
  RcNetlist out;
  out.resize_trees(num_nets);

  const std::vector<const io::DefNet*> def_nets = index_def_nets(merged, nl);

  // Arena pre-sizing: root + per-sink pin node per net, plus at most two
  // endpoint nodes per DEF wire segment.
  {
    std::size_t sinks = 0, wires = 0;
    for (netlist::NetId n = 0; n < nl.num_nets(); ++n) {
      sinks += nl.net(n).sinks.size();
    }
    for (const io::DefNet& n : merged.nets) wires += n.wires.size();
    out.reserve_arena(num_nets + sinks + 2 * wires, sinks);
  }

  // Neighborhood wire density per side (coupling model).
  const DensityGrid density(merged, tech);

  const double drain_merge_r = tech.device().np_link_r_ohm;

  // Each net's tree is a pure function of read-only shared state (DEF
  // index, density grid, netlist), so a chunk of nets is built into
  // per-net scratch slots in parallel without synchronization, then packed
  // into the arena serially in net order — bit-identical to the serial
  // loop while bounding scratch memory to one chunk.
  constexpr std::size_t kChunk = 1024;
  std::vector<RcTree> scratch(std::min(kChunk, std::max<std::size_t>(
                                                   num_nets, 1)));
  for (std::size_t base = 0; base < num_nets; base += kChunk) {
    const std::size_t count = std::min(kChunk, num_nets - base);
    runtime::parallel_for(
        count,
        [&](std::size_t i) {
          build_net_tree(scratch[i],
                         static_cast<netlist::NetId>(base + i), nl, tech,
                         def_nets[base + i], density, drain_merge_r);
        },
        threads, 0);
    for (std::size_t i = 0; i < count; ++i) {
      out.assign_tree(static_cast<netlist::NetId>(base + i), scratch[i]);
    }
  }
  FFET_METRIC_ADD("extract.nets", nl.num_nets());

  sum_totals(out);
  return out;
}

void reextract_nets(RcNetlist& rc, const io::Def& merged,
                    const Netlist& nl, const Technology& tech,
                    const std::vector<netlist::NetId>& dirty_nets) {
  FFET_TRACE_SCOPE("extract.reextract");
  rc.resize_trees(static_cast<std::size_t>(nl.num_nets()));

  const std::vector<const io::DefNet*> def_nets = index_def_nets(merged, nl);

  // The density grid is global state: any rerouted wire shifts the coupling
  // neighborhoods, so it is rebuilt from the *current* merged DEF.  Only
  // the listed trees are rebuilt against it — the clean nets' DEF wires are
  // unchanged by reroute_nets, so their trees (built from the same wires
  // and density field) stay valid.
  const DensityGrid density(merged, tech);
  const double drain_merge_r = tech.device().np_link_r_ohm;

  long rebuilt = 0;
  RcTree scratch;
  for (const netlist::NetId n : dirty_nets) {
    if (n < 0 || n >= nl.num_nets()) continue;
    build_net_tree(scratch, n, nl, tech, def_nets[static_cast<std::size_t>(n)],
                   density, drain_merge_r);
    rc.assign_tree(n, scratch);
    ++rebuilt;
  }
  FFET_METRIC_ADD("extract.reextracted_nets", rebuilt);

  sum_totals(rc);
}

void finalize_rc_tree(RcTree& tree) {
  const std::size_t n_nodes = tree.nodes.size();
  std::vector<std::vector<int>> children(n_nodes);
  for (std::size_t i = 1; i < n_nodes; ++i) {
    const int p = tree.nodes[i].parent;
    if (p >= 0) {
      children[static_cast<std::size_t>(p)].push_back(static_cast<int>(i));
    }
  }
  // Subtree capacitance, post-order via explicit stack.
  std::vector<double> subtree_cap(n_nodes, 0.0);
  {
    std::vector<std::pair<int, std::size_t>> stack{{0, 0}};
    while (!stack.empty()) {
      const auto [n, ci] = stack.back();
      if (ci < children[static_cast<std::size_t>(n)].size()) {
        ++stack.back().second;  // must mutate before push (reallocation)
        stack.push_back({children[static_cast<std::size_t>(n)][ci], 0});
      } else {
        double c = tree.nodes[static_cast<std::size_t>(n)].cap_ff;
        for (int ch : children[static_cast<std::size_t>(n)]) {
          c += subtree_cap[static_cast<std::size_t>(ch)];
        }
        subtree_cap[static_cast<std::size_t>(n)] = c;
        stack.pop_back();
      }
    }
  }
  tree.total_cap_ff = subtree_cap[0];

  // Elmore: delay(n) = delay(parent) + R(n) * subtree_cap(n); ohm*fF = fs.
  tree.elmore_ps.assign(n_nodes, 0.0);
  std::vector<int> bfs{0};
  for (std::size_t qi = 0; qi < bfs.size(); ++qi) {
    const int n = bfs[qi];
    for (int c : children[static_cast<std::size_t>(n)]) {
      tree.elmore_ps[static_cast<std::size_t>(c)] =
          tree.elmore_ps[static_cast<std::size_t>(n)] +
          tree.nodes[static_cast<std::size_t>(c)].r_ohm *
              subtree_cap[static_cast<std::size_t>(c)] / 1000.0;
      bfs.push_back(c);
    }
  }
}

}  // namespace ffet::extract
