#include "netlist/builder.h"

#include <cassert>
#include <stdexcept>

namespace ffet::netlist {

using stdcell::PinDir;

Builder::Builder(std::string design_name, const stdcell::Library* lib)
    : nl_(std::move(design_name), lib), lib_(lib) {}

std::string Builder::fresh(std::string_view hint) {
  return std::string(hint) + "_" + std::to_string(counter_++);
}

NetId Builder::wire(const std::string& hint) {
  return anonymous_ ? nl_.add_net() : nl_.add_net(fresh(hint));
}

InstId Builder::place_gate(std::string_view cell,
                           std::initializer_list<NetId> data_inputs) {
  const stdcell::CellType& type = lib_->at(cell);
  const InstId inst = anonymous_
                          ? nl_.add_instance(&type)
                          : nl_.add_instance(fresh(type.name()), &type);
  // Wire data inputs in pin order (clock pins are not part of this list).
  auto it = data_inputs.begin();
  for (const stdcell::CellPin& p : type.pins()) {
    if (p.dir != PinDir::Input) continue;
    if (it == data_inputs.end()) {
      throw std::invalid_argument("too few inputs for " + type.name());
    }
    nl_.connect(inst, p.name, *it++);
  }
  if (it != data_inputs.end()) {
    throw std::invalid_argument("too many inputs for " + type.name());
  }
  return inst;
}

NetId Builder::gate(std::string_view cell,
                    std::initializer_list<NetId> data_inputs) {
  const InstId inst = place_gate(cell, data_inputs);
  const NetId out = anonymous_ ? nl_.add_net() : nl_.add_net(fresh("n"));
  nl_.connect(inst, nl_.instance(inst).type->output_pin()->name, out);
  return out;
}

void Builder::drive(NetId out, std::string_view cell,
                    std::initializer_list<NetId> data_inputs) {
  const InstId inst = place_gate(cell, data_inputs);
  nl_.connect(inst, nl_.instance(inst).type->output_pin()->name, out);
}

Bus Builder::wires(int bits, const std::string& hint) {
  Bus r(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i) r[static_cast<std::size_t>(i)] = wire(hint);
  return r;
}

Bus Builder::input_bus(const std::string& base, int bits) {
  Bus b(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i) {
    b[static_cast<std::size_t>(i)] = input(base + std::to_string(i));
  }
  return b;
}

void Builder::output_bus(const std::string& base, const Bus& b) {
  for (std::size_t i = 0; i < b.size(); ++i) {
    output(base + std::to_string(i), b[i]);
  }
}

NetId Builder::inv(NetId a) { return gate("INVD1", {a}); }
NetId Builder::buf(NetId a) { return gate("BUFD1", {a}); }
NetId Builder::nand2(NetId a, NetId b) { return gate("NAND2D1", {a, b}); }
NetId Builder::nor2(NetId a, NetId b) { return gate("NOR2D1", {a, b}); }
NetId Builder::and2(NetId a, NetId b) { return gate("AND2D1", {a, b}); }
NetId Builder::or2(NetId a, NetId b) { return gate("OR2D1", {a, b}); }
NetId Builder::xor2(NetId a, NetId b) { return gate("XOR2D1", {a, b}); }
NetId Builder::xnor2(NetId a, NetId b) { return gate("XNOR2D1", {a, b}); }
NetId Builder::aoi21(NetId a1, NetId a2, NetId b) {
  return gate("AOI21D1", {a1, a2, b});
}
NetId Builder::oai21(NetId a1, NetId a2, NetId b) {
  return gate("OAI21D1", {a1, a2, b});
}
NetId Builder::aoi22(NetId a1, NetId a2, NetId b1, NetId b2) {
  return gate("AOI22D1", {a1, a2, b1, b2});
}
NetId Builder::oai22(NetId a1, NetId a2, NetId b1, NetId b2) {
  return gate("OAI22D1", {a1, a2, b1, b2});
}
NetId Builder::mux2(NetId i0, NetId i1, NetId s) {
  return gate("MUX2D1", {i0, i1, s});
}

NetId Builder::dff(NetId d, NetId clk) {
  const stdcell::CellType& type = lib_->at("DFFD1");
  const InstId inst = anonymous_
                          ? nl_.add_instance(&type)
                          : nl_.add_instance(fresh("DFFD1"), &type);
  nl_.connect(inst, "D", d);
  nl_.connect(inst, "CP", clk);
  const NetId q = anonymous_ ? nl_.add_net() : nl_.add_net(fresh("q"));
  nl_.connect(inst, "Q", q);
  return q;
}

NetId Builder::dffr(NetId d, NetId clk, NetId rn) {
  const stdcell::CellType& type = lib_->at("DFFRD1");
  const InstId inst = anonymous_
                          ? nl_.add_instance(&type)
                          : nl_.add_instance(fresh("DFFRD1"), &type);
  nl_.connect(inst, "D", d);
  nl_.connect(inst, "RN", rn);
  nl_.connect(inst, "CP", clk);
  const NetId q = anonymous_ ? nl_.add_net() : nl_.add_net(fresh("q"));
  nl_.connect(inst, "Q", q);
  return q;
}

NetId Builder::zero() {
  if (tie_lo_ == kNoNet) tie_lo_ = gate("TIELOD1", {});
  return tie_lo_;
}

NetId Builder::one() {
  if (tie_hi_ == kNoNet) tie_hi_ = gate("TIEHID1", {});
  return tie_hi_;
}

NetId Builder::and_tree(const std::vector<NetId>& xs) {
  if (xs.empty()) return one();
  std::vector<NetId> level = xs;
  while (level.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(and2(level[i], level[i + 1]));
    }
    if (level.size() % 2) next.push_back(level.back());
    level = std::move(next);
  }
  return level.front();
}

NetId Builder::or_tree(const std::vector<NetId>& xs) {
  if (xs.empty()) return zero();
  std::vector<NetId> level = xs;
  while (level.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(or2(level[i], level[i + 1]));
    }
    if (level.size() % 2) next.push_back(level.back());
    level = std::move(next);
  }
  return level.front();
}

Bus Builder::not_bus(const Bus& a) {
  Bus r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = inv(a[i]);
  return r;
}

Bus Builder::and_bus(const Bus& a, const Bus& b) {
  assert(a.size() == b.size());
  Bus r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = and2(a[i], b[i]);
  return r;
}

Bus Builder::or_bus(const Bus& a, const Bus& b) {
  assert(a.size() == b.size());
  Bus r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = or2(a[i], b[i]);
  return r;
}

Bus Builder::xor_bus(const Bus& a, const Bus& b) {
  assert(a.size() == b.size());
  Bus r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = xor2(a[i], b[i]);
  return r;
}

Bus Builder::mux_bus(const Bus& i0, const Bus& i1, NetId s) {
  assert(i0.size() == i1.size());
  Bus r(i0.size());
  for (std::size_t i = 0; i < i0.size(); ++i) r[i] = mux2(i0[i], i1[i], s);
  return r;
}

Bus Builder::dff_bus(const Bus& d, NetId clk) {
  Bus r(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) r[i] = dff(d[i], clk);
  return r;
}

Bus Builder::dffr_bus(const Bus& d, NetId clk, NetId rn) {
  Bus r(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) r[i] = dffr(d[i], clk, rn);
  return r;
}

Bus Builder::mask_bus(const Bus& a, NetId en) {
  Bus r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = and2(a[i], en);
  return r;
}

std::pair<Bus, NetId> Builder::add(const Bus& a, const Bus& b, NetId cin) {
  assert(a.size() == b.size());
  Bus sum(a.size());
  NetId carry = cin;
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Full adder: p = a^b; sum = p^c; cout = !AOI22(a,b,p,c).
    const NetId p = xor2(a[i], b[i]);
    sum[i] = xor2(p, carry);
    carry = inv(aoi22(a[i], b[i], p, carry));
  }
  return {sum, carry};
}

std::pair<Bus, NetId> Builder::add_fast(const Bus& a, const Bus& b,
                                        NetId cin) {
  assert(a.size() == b.size());
  const std::size_t n = a.size();
  // Bitwise propagate/generate.
  Bus p(n), g(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = xor2(a[i], b[i]);
    g[i] = and2(a[i], b[i]);
  }
  // Sklansky prefix tree over (G, P): after the tree, G[i]/P[i] span bits
  // [0..i].  Combine rule: (G, P) ∘ (G', P') = (G | P·G', P·P').
  Bus G = g, P = p;
  for (std::size_t k = 1; k < n; k <<= 1) {
    Bus G2 = G, P2 = P;
    for (std::size_t i = 0; i < n; ++i) {
      if ((i & k) == 0) continue;
      const std::size_t m = (i & ~(k - 1)) - 1;  // rightmost bit of the
                                                 // lower block
      G2[i] = or2(G[i], and2(P[i], G[m]));
      P2[i] = and2(P[i], P[m]);
    }
    G = std::move(G2);
    P = std::move(P2);
  }
  // Carries: c0 = cin; c_{i+1} = G[i] | P[i]&cin.
  Bus sum(n);
  NetId carry = cin;
  for (std::size_t i = 0; i < n; ++i) {
    const NetId ci =
        (i == 0) ? cin : or2(G[i - 1], and2(P[i - 1], cin));
    sum[i] = xor2(p[i], ci);
    (void)carry;
  }
  const NetId cout = or2(G[n - 1], and2(P[n - 1], cin));
  return {sum, cout};
}

Bus Builder::multiply(const Bus& a, const Bus& b) {
  const std::size_t n = a.size();
  const std::size_t w = 2 * n;
  // Partial-product bit matrix: column c holds the bits of weight 2^c.
  std::vector<std::vector<NetId>> cols(w);
  for (std::size_t i = 0; i < b.size(); ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      cols[i + j].push_back(and2(a[j], b[i]));
    }
  }
  // Wallace reduction: 3:2 compress (full adder) and 2:2 (half adder)
  // until every column holds at most two bits.
  bool again = true;
  while (again) {
    again = false;
    std::vector<std::vector<NetId>> next(w);
    for (std::size_t c = 0; c < w; ++c) {
      auto& col = cols[c];
      std::size_t i = 0;
      while (col.size() - i >= 3) {
        const NetId x = col[i], y = col[i + 1], z = col[i + 2];
        i += 3;
        const NetId p = xor2(x, y);
        next[c].push_back(xor2(p, z));                   // sum
        if (c + 1 < w) {
          next[c + 1].push_back(inv(aoi22(x, y, p, z)));  // carry (majority)
        }
      }
      if (col.size() - i == 2 && col.size() > 2) {
        const NetId x = col[i], y = col[i + 1];
        i += 2;
        next[c].push_back(xor2(x, y));
        if (c + 1 < w) next[c + 1].push_back(and2(x, y));
      }
      while (i < col.size()) next[c].push_back(col[i++]);
    }
    cols = std::move(next);
    for (const auto& col : cols) {
      if (col.size() > 2) again = true;
    }
  }
  // Final carry-propagate add of the two remaining rows.
  Bus row0(w), row1(w);
  for (std::size_t c = 0; c < w; ++c) {
    row0[c] = cols[c].empty() ? zero() : cols[c][0];
    row1[c] = cols[c].size() > 1 ? cols[c][1] : zero();
  }
  return add_fast(row0, row1, zero()).first;
}

std::pair<Bus, NetId> Builder::sub(const Bus& a, const Bus& b) {
  return add(a, not_bus(b), one());
}

NetId Builder::equal(const Bus& a, const Bus& b) {
  assert(a.size() == b.size());
  std::vector<NetId> eqs(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) eqs[i] = xnor2(a[i], b[i]);
  return and_tree(eqs);
}

Bus Builder::shift_right(const Bus& a, const Bus& amount5, NetId arith) {
  assert(amount5.size() >= 1);
  const std::size_t n = a.size();
  // Fill bit: sign bit when arithmetic, 0 otherwise.
  const NetId fill = and2(a[n - 1], arith);
  Bus cur = a;
  for (std::size_t stage = 0; stage < amount5.size(); ++stage) {
    const std::size_t dist = std::size_t{1} << stage;
    Bus next(n);
    for (std::size_t i = 0; i < n; ++i) {
      const NetId shifted = (i + dist < n) ? cur[i + dist] : fill;
      next[i] = mux2(cur[i], shifted, amount5[stage]);
    }
    cur = std::move(next);
  }
  return cur;
}

Bus Builder::shift_left(const Bus& a, const Bus& amount5) {
  const std::size_t n = a.size();
  Bus cur = a;
  for (std::size_t stage = 0; stage < amount5.size(); ++stage) {
    const std::size_t dist = std::size_t{1} << stage;
    Bus next(n);
    for (std::size_t i = 0; i < n; ++i) {
      const NetId shifted = (i >= dist) ? cur[i - dist] : zero();
      next[i] = mux2(cur[i], shifted, amount5[stage]);
    }
    cur = std::move(next);
  }
  return cur;
}

Bus Builder::resize(const Bus& a, int bits) {
  Bus r(static_cast<std::size_t>(bits));
  for (std::size_t i = 0; i < r.size(); ++i) {
    r[i] = i < a.size() ? a[i] : zero();
  }
  return r;
}

}  // namespace ffet::netlist
