// workload.h — synthetic benchmark-netlist generator.
//
// The paper evaluates on one RISC-V core; framework users studying
// placement/routing behaviour want a family of circuits with controllable
// size and locality.  This generator produces random-logic netlists with a
// tunable locality bias (a Rent's-rule-flavoured knob): each new gate draws
// its inputs from recently created nets with probability `locality`, and
// uniformly from the whole net population otherwise.  Registers are
// sprinkled at a fixed ratio so the circuits are sequential and STA-able.
// Fixed-seed deterministic.

#pragma once

#include "netlist/netlist.h"

namespace ffet::netlist {

struct WorkloadOptions {
  int num_gates = 2000;      ///< combinational instances
  int num_flops = 200;       ///< sequential instances (DFF)
  int num_inputs = 32;
  int num_outputs = 32;
  double locality = 0.8;     ///< P(input drawn from the recent window)
  int window = 64;           ///< size of the "recent nets" window
  unsigned seed = 1;
};

/// Generate a random sequential netlist on `lib`.  The result validates
/// cleanly (no opens, single drivers, no combinational cycles) and has a
/// `clk` input marked as the clock net.
Netlist generate_workload(const stdcell::Library& lib,
                          const WorkloadOptions& options = {});

}  // namespace ffet::netlist
