// workload.h — synthetic benchmark-netlist generator.
//
// The paper evaluates on one RISC-V core; framework users studying
// placement/routing behaviour want a family of circuits with controllable
// size and locality.  This generator produces random-logic netlists with a
// tunable locality bias (a Rent's-rule-flavoured knob): each new gate draws
// its inputs from recently created nets with probability `locality`, and
// uniformly from the whole net population otherwise.  Registers are
// sprinkled at a fixed ratio so the circuits are sequential and STA-able.
// Fixed-seed deterministic.

#pragma once

#include "netlist/netlist.h"

namespace ffet::netlist {

struct WorkloadOptions {
  int num_gates = 2000;      ///< combinational instances (per tile)
  int num_flops = 200;       ///< sequential instances (DFF, per tile)
  int num_inputs = 32;
  int num_outputs = 32;
  double locality = 0.8;     ///< P(input drawn from the recent window)
  int window = 64;           ///< size of the "recent nets" window
  unsigned seed = 1;

  /// Mesh replication (the million-cell scale knob): the generated block is
  /// tiled `tile_cols` x `tile_rows` times — total cells ≈ tiles *
  /// (num_gates + num_flops).  Each non-origin tile draws its boundary
  /// inputs from the output frontier of its west and north neighbours, so
  /// the stitched design has the nearest-neighbour traffic of a mesh.
  /// 1x1 (the default) reproduces the untiled generator bit-for-bit.
  int tile_cols = 1;
  int tile_rows = 1;
  /// Create gates/internal nets anonymously (no name bytes; objects answer
  /// to the synthesized `_i<N>`/`_n<N>` spellings).  Ports stay named.
  bool anonymous = false;
};

/// Generate a random sequential netlist on `lib`.  The result validates
/// cleanly (no opens, single drivers, no combinational cycles) and has a
/// `clk` input marked as the clock net.
Netlist generate_workload(const stdcell::Library& lib,
                          const WorkloadOptions& options = {});

}  // namespace ffet::netlist
