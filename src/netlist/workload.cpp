#include "netlist/workload.h"

#include <algorithm>
#include <random>
#include <stdexcept>
#include <vector>

#include "netlist/builder.h"

namespace ffet::netlist {

namespace {

/// Number of boundary nets a tile exports to its east/south neighbours.
constexpr int kFrontier = 16;

/// Generate one tile's gates into `b`, drawing inputs from `nets` (which
/// already holds the tile's boundary/input nets) and appending every new
/// output.  Returns nothing; `nets` is the tile's net population afterwards.
void generate_tile(Builder& b, std::mt19937& rng, const WorkloadOptions& opt,
                   NetId clk, std::vector<NetId>& nets) {
  auto pick = [&]() {
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    if (coin(rng) < opt.locality &&
        nets.size() > static_cast<std::size_t>(opt.window)) {
      std::uniform_int_distribution<std::size_t> recent(
          nets.size() - static_cast<std::size_t>(opt.window),
          nets.size() - 1);
      return nets[recent(rng)];
    }
    std::uniform_int_distribution<std::size_t> uniform(0, nets.size() - 1);
    return nets[uniform(rng)];
  };

  // Interleave flops among the combinational gates so register stages
  // break long paths the way synthesized logic does.
  const int total = opt.num_gates + opt.num_flops;
  const int flop_every =
      opt.num_flops > 0 ? std::max(1, total / opt.num_flops) : total + 1;

  std::uniform_int_distribution<int> func(0, 7);
  for (int g = 0; g < total; ++g) {
    NetId out;
    if (opt.num_flops > 0 && g % flop_every == flop_every - 1) {
      out = b.dff(pick(), clk);
    } else {
      switch (func(rng)) {
        case 0: out = b.inv(pick()); break;
        case 1: out = b.nand2(pick(), pick()); break;
        case 2: out = b.nor2(pick(), pick()); break;
        case 3: out = b.xor2(pick(), pick()); break;
        case 4: out = b.aoi21(pick(), pick(), pick()); break;
        case 5: out = b.oai21(pick(), pick(), pick()); break;
        case 6: out = b.mux2(pick(), pick(), pick()); break;
        default: out = b.and2(pick(), pick()); break;
      }
    }
    nets.push_back(out);
  }
}

}  // namespace

Netlist generate_workload(const stdcell::Library& lib,
                          const WorkloadOptions& opt) {
  if (opt.num_inputs < 2 || opt.num_gates < 1) {
    throw std::invalid_argument("workload needs >= 2 inputs and >= 1 gate");
  }
  if (opt.tile_cols < 1 || opt.tile_rows < 1) {
    throw std::invalid_argument("workload tile mesh must be >= 1x1");
  }
  Builder b("workload", &lib);
  b.set_anonymous(opt.anonymous);
  std::mt19937 rng(opt.seed);

  const int tiles = opt.tile_cols * opt.tile_rows;
  const int per_tile = opt.num_gates + opt.num_flops;
  {
    // Arena pre-sizing: each gate is one instance plus one output net
    // (plus ports/ties); ~4 pins per instance covers the mix.
    const std::size_t insts = static_cast<std::size_t>(tiles) *
                              static_cast<std::size_t>(per_tile) + 8;
    b.reserve(insts, insts + static_cast<std::size_t>(opt.num_inputs) + 8,
              insts * 4);
  }

  const NetId clk = b.input("clk");
  b.netlist().mark_clock_net(clk);

  std::vector<NetId> primary;
  primary.reserve(static_cast<std::size_t>(opt.num_inputs));
  for (int i = 0; i < opt.num_inputs; ++i) {
    primary.push_back(b.input("in" + std::to_string(i)));
  }

  // Output frontier (last kFrontier nets) of each finished tile, row-major.
  std::vector<std::vector<NetId>> frontier(static_cast<std::size_t>(tiles));
  std::vector<NetId> nets;

  for (int tr = 0; tr < opt.tile_rows; ++tr) {
    for (int tc = 0; tc < opt.tile_cols; ++tc) {
      const int t = tr * opt.tile_cols + tc;
      nets.clear();
      nets.reserve(static_cast<std::size_t>(per_tile) + primary.size() +
                   2 * kFrontier);
      if (t == 0) {
        nets.insert(nets.end(), primary.begin(), primary.end());
      } else {
        // Boundary inputs: the west and north neighbours' frontiers (mesh
        // traffic); fall back to the primary inputs at the mesh edge.
        if (tc > 0) {
          const auto& west = frontier[static_cast<std::size_t>(t - 1)];
          nets.insert(nets.end(), west.begin(), west.end());
        }
        if (tr > 0) {
          const auto& north =
              frontier[static_cast<std::size_t>(t - opt.tile_cols)];
          nets.insert(nets.end(), north.begin(), north.end());
        }
        if (nets.empty()) {
          nets.insert(nets.end(), primary.begin(), primary.end());
        }
      }
      generate_tile(b, rng, opt, clk, nets);
      auto& f = frontier[static_cast<std::size_t>(t)];
      const std::size_t n_f =
          std::min<std::size_t>(kFrontier, nets.size());
      f.assign(nets.end() - static_cast<std::ptrdiff_t>(n_f), nets.end());
    }
  }

  // Outputs: tap the most recent gate outputs of the last tile (never
  // input-port nets, which already carry a port).
  const int n_out = std::min(opt.num_outputs, per_tile);
  for (int i = 0; i < n_out; ++i) {
    b.output("out" + std::to_string(i),
             nets[nets.size() - 1 - static_cast<std::size_t>(i)]);
  }
  return b.take();
}

}  // namespace ffet::netlist
