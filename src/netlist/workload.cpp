#include "netlist/workload.h"

#include <random>
#include <stdexcept>
#include <vector>

#include "netlist/builder.h"

namespace ffet::netlist {

Netlist generate_workload(const stdcell::Library& lib,
                          const WorkloadOptions& opt) {
  if (opt.num_inputs < 2 || opt.num_gates < 1) {
    throw std::invalid_argument("workload needs >= 2 inputs and >= 1 gate");
  }
  Builder b("workload", &lib);
  std::mt19937 rng(opt.seed);

  const NetId clk = b.input("clk");
  b.netlist().mark_clock_net(clk);

  std::vector<NetId> nets;
  nets.reserve(static_cast<std::size_t>(opt.num_gates + opt.num_inputs));
  for (int i = 0; i < opt.num_inputs; ++i) {
    nets.push_back(b.input("in" + std::to_string(i)));
  }

  auto pick = [&]() {
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    if (coin(rng) < opt.locality &&
        nets.size() > static_cast<std::size_t>(opt.window)) {
      std::uniform_int_distribution<std::size_t> recent(
          nets.size() - static_cast<std::size_t>(opt.window),
          nets.size() - 1);
      return nets[recent(rng)];
    }
    std::uniform_int_distribution<std::size_t> uniform(0, nets.size() - 1);
    return nets[uniform(rng)];
  };

  // Interleave flops among the combinational gates so register stages
  // break long paths the way synthesized logic does.
  const int total = opt.num_gates + opt.num_flops;
  const int flop_every =
      opt.num_flops > 0 ? std::max(1, total / opt.num_flops) : total + 1;

  std::uniform_int_distribution<int> func(0, 7);
  for (int g = 0; g < total; ++g) {
    NetId out;
    if (opt.num_flops > 0 && g % flop_every == flop_every - 1) {
      out = b.dff(pick(), clk);
    } else {
      switch (func(rng)) {
        case 0: out = b.inv(pick()); break;
        case 1: out = b.nand2(pick(), pick()); break;
        case 2: out = b.nor2(pick(), pick()); break;
        case 3: out = b.xor2(pick(), pick()); break;
        case 4: out = b.aoi21(pick(), pick(), pick()); break;
        case 5: out = b.oai21(pick(), pick(), pick()); break;
        case 6: out = b.mux2(pick(), pick(), pick()); break;
        default: out = b.and2(pick(), pick()); break;
      }
    }
    nets.push_back(out);
  }

  // Outputs: tap the most recent gate outputs (never input-port nets,
  // which already carry a port).
  const int n_out = std::min(opt.num_outputs, total);
  for (int i = 0; i < n_out; ++i) {
    b.output("out" + std::to_string(i),
             nets[nets.size() - 1 - static_cast<std::size_t>(i)]);
  }
  return b.take();
}

}  // namespace ffet::netlist
