#include "netlist/sim.h"

#include <stdexcept>

namespace ffet::netlist {

using stdcell::Function;
using stdcell::PinDir;

Simulator::Simulator(const Netlist* nl)
    : nl_(nl),
      values_(static_cast<std::size_t>(nl->num_nets()), false),
      ff_state_(static_cast<std::size_t>(nl->num_instances()), false),
      topo_(nl->topo_order()),
      toggles_(static_cast<std::size_t>(nl->num_nets()), 0) {}

void Simulator::set_net(NetId net, bool v) {
  auto idx = static_cast<std::size_t>(net);
  if (values_[idx] != v) {
    values_[idx] = v;
    ++toggles_[idx];
  }
}

void Simulator::set_input(PortId port, bool value) {
  const Port& p = nl_->port(port);
  if (!p.is_input) throw std::invalid_argument(p.name + " is not an input");
  set_net(p.net, value);
}

void Simulator::set_input(std::string_view port_name, bool value) {
  auto id = nl_->find_port(port_name);
  if (!id) throw std::invalid_argument("no port " + std::string(port_name));
  set_input(*id, value);
}

void Simulator::evaluate() {
  for (InstId id : topo_) {
    const Instance& inst = nl_->instance(id);
    const auto& pins = inst.type->pins();
    if (inst.type->sequential()) {
      // Q reflects stored state (DFFR clears asynchronously on RN == 0).
      bool q = ff_state_[static_cast<std::size_t>(id)];
      if (inst.type->function() == Function::DffR) {
        const int rn = inst.type->pin_index("RN");
        const NetId rn_net = nl_->pin_net(id, rn);
        if (rn_net != kNoNet && !values_[static_cast<std::size_t>(rn_net)]) {
          q = false;
        }
      }
      const auto pin_nets = nl_->pin_nets(id);
      for (std::size_t p = 0; p < pins.size(); ++p) {
        if (pins[p].dir == PinDir::Output && pin_nets[p] != kNoNet) {
          set_net(pin_nets[p], q);
        }
      }
      continue;
    }
    const auto pin_nets = nl_->pin_nets(id);
    std::vector<bool> in;
    in.reserve(pins.size());
    for (std::size_t p = 0; p < pins.size(); ++p) {
      if (pins[p].dir != PinDir::Input) continue;
      const NetId n = pin_nets[p];
      in.push_back(n == kNoNet ? false : values_[static_cast<std::size_t>(n)]);
    }
    const auto out = stdcell::evaluate(inst.type->function(), in);
    if (!out) continue;  // physical-only
    for (std::size_t p = 0; p < pins.size(); ++p) {
      if (pins[p].dir == PinDir::Output && pin_nets[p] != kNoNet) {
        set_net(pin_nets[p], *out);
      }
    }
  }
}

void Simulator::tick() {
  evaluate();
  // Capture D for every flip-flop simultaneously (master/slave semantics).
  for (std::size_t i = 0; i < ff_state_.size(); ++i) {
    const Instance& inst = nl_->instance(static_cast<InstId>(i));
    if (!inst.type->sequential()) continue;
    const int d = inst.type->pin_index("D");
    const NetId d_net = nl_->pin_net(static_cast<InstId>(i), d);
    bool next = d_net == kNoNet ? false
                                : values_[static_cast<std::size_t>(d_net)];
    if (inst.type->function() == Function::DffR) {
      const int rn = inst.type->pin_index("RN");
      const NetId rn_net = nl_->pin_net(static_cast<InstId>(i), rn);
      if (rn_net != kNoNet && !values_[static_cast<std::size_t>(rn_net)]) {
        next = false;
      }
    }
    ff_state_[i] = next;
  }
  ++cycles_;
  evaluate();
}

bool Simulator::output(std::string_view port_name) const {
  auto id = nl_->find_port(port_name);
  if (!id) throw std::invalid_argument("no port " + std::string(port_name));
  return values_[static_cast<std::size_t>(nl_->port(*id).net)];
}

std::uint64_t Simulator::read_bus(std::string_view base, int bits) const {
  std::uint64_t v = 0;
  for (int i = 0; i < bits; ++i) {
    const std::string name = std::string(base) + std::to_string(i);
    if (output(name)) v |= (std::uint64_t{1} << i);
  }
  return v;
}

void Simulator::set_bus(std::string_view base, int bits, std::uint64_t value) {
  for (int i = 0; i < bits; ++i) {
    set_input(std::string(base) + std::to_string(i),
              (value >> i) & 1u);
  }
}

void Simulator::reset_activity() {
  std::fill(toggles_.begin(), toggles_.end(), 0);
  cycles_ = 0;
}

double Simulator::toggle_rate(NetId net) const {
  if (cycles_ == 0) return 0.0;
  return static_cast<double>(toggles_[static_cast<std::size_t>(net)]) /
         static_cast<double>(cycles_);
}

}  // namespace ffet::netlist
