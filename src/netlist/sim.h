// sim.h — cycle-accurate gate-level simulator.
//
// Zero-delay two-valued simulation over the netlist: combinational logic is
// evaluated in topological order; `tick()` advances all flip-flops by one
// clock edge.  The framework uses it for two things:
//
//   1. functional verification of the structurally generated RV32I core
//      (the tests run real instruction sequences through the gate netlist);
//   2. measuring realistic per-net switching activity, which feeds the
//      power analyzer instead of a flat default activity factor.

#pragma once

#include <string_view>
#include <vector>

#include "netlist/netlist.h"

namespace ffet::netlist {

class Simulator {
 public:
  explicit Simulator(const Netlist* nl);

  /// Set a primary input (by port). Takes effect at the next evaluate().
  void set_input(PortId port, bool value);
  void set_input(std::string_view port_name, bool value);

  /// Settle combinational logic with current inputs and register state.
  void evaluate();

  /// One rising clock edge: captures D into every flip-flop (DFFR honors an
  /// active-low RN), then re-settles combinational logic.
  void tick();

  bool net_value(NetId net) const { return values_[static_cast<std::size_t>(net)]; }
  bool output(std::string_view port_name) const;

  /// Read a multi-bit value from ports named `<base>[msb..0]` or
  /// `<base><idx>`; bit i from port `base + std::to_string(i)`.
  std::uint64_t read_bus(std::string_view base, int bits) const;
  void set_bus(std::string_view base, int bits, std::uint64_t value);

  /// Per-net toggle counters accumulated across evaluate()/tick() calls;
  /// index = NetId.  reset_activity() zeroes them.
  const std::vector<std::uint64_t>& toggle_counts() const { return toggles_; }
  std::uint64_t cycles() const { return cycles_; }
  void reset_activity();

  /// Toggle rate of a net = toggles / cycles (0 if no cycles yet).
  double toggle_rate(NetId net) const;

 private:
  void set_net(NetId net, bool v);

  const Netlist* nl_;
  std::vector<bool> values_;       ///< current net values
  std::vector<bool> ff_state_;     ///< per-instance Q state (0 for non-FF)
  std::vector<InstId> topo_;
  std::vector<std::uint64_t> toggles_;
  std::uint64_t cycles_ = 0;
};

}  // namespace ffet::netlist
