#include "netlist/netlist.h"

#include <algorithm>
#include <charconv>
#include <queue>
#include <stdexcept>

namespace ffet::netlist {

using stdcell::PinDir;

namespace {

/// Parse a synthesized spelling "<prefix><N>" (prefix = "_i" or "_n");
/// returns -1 when `s` is not of that exact shape.
std::int32_t parse_synth_name(std::string_view s, char kind) {
  if (s.size() < 3 || s[0] != '_' || s[1] != kind) return -1;
  std::int32_t v = 0;
  const char* b = s.data() + 2;
  const char* e = s.data() + s.size();
  const auto [p, ec] = std::from_chars(b, e, v);
  if (ec != std::errc{} || p != e || v < 0) return -1;
  return v;
}

void append_synth_name(std::string& out, char kind, std::int32_t id) {
  char buf[16];
  buf[0] = '_';
  buf[1] = kind;
  const auto [p, ec] = std::to_chars(buf + 2, buf + sizeof(buf), id);
  (void)ec;
  out.append(buf, static_cast<std::size_t>(p - buf));
}

}  // namespace

Netlist::Netlist(std::string name, const stdcell::Library* lib)
    : name_(std::move(name)), lib_(lib) {}

Netlist::Netlist(const Netlist& other)
    : name_(other.name_),
      lib_(other.lib_),
      instances_(other.instances_),
      nets_(other.nets_),
      ports_(other.ports_),
      inst_first_pin_(other.inst_first_pin_),
      pin_net_arena_(other.pin_net_arena_),
      port_by_name_(other.port_by_name_),
      pin_side_override_(other.pin_side_override_) {
  // Re-intern names into this netlist's own pool and rebuild the by-name
  // maps (the source's views point into its pool).
  inst_names_.reserve(other.inst_names_.size());
  net_names_.reserve(other.net_names_.size());
  inst_by_name_.reserve(other.inst_by_name_.size());
  net_by_name_.reserve(other.net_by_name_.size());
  for (std::size_t i = 0; i < other.inst_names_.size(); ++i) {
    const std::string_view v = pool_.intern(other.inst_names_[i]);
    inst_names_.push_back(v);
    if (!v.empty()) inst_by_name_.emplace(v, static_cast<InstId>(i));
  }
  for (std::size_t n = 0; n < other.net_names_.size(); ++n) {
    const std::string_view v = pool_.intern(other.net_names_[n]);
    net_names_.push_back(v);
    if (!v.empty()) net_by_name_.emplace(v, static_cast<NetId>(n));
  }
}

Netlist& Netlist::operator=(const Netlist& other) {
  if (this != &other) {
    Netlist tmp(other);
    *this = std::move(tmp);
  }
  return *this;
}

void Netlist::reserve(std::size_t insts, std::size_t nets, std::size_t pins) {
  instances_.reserve(insts);
  inst_names_.reserve(insts);
  inst_first_pin_.reserve(insts + 1);
  nets_.reserve(nets);
  net_names_.reserve(nets);
  pin_net_arena_.reserve(pins);
}

InstId Netlist::add_instance(std::string_view inst_name,
                             std::string_view cell_name) {
  return add_instance(inst_name, &lib_->at(cell_name));
}

InstId Netlist::add_instance(std::string_view inst_name,
                             const stdcell::CellType* type) {
  if (inst_name.empty()) {
    throw std::invalid_argument("explicit instance name must be non-empty");
  }
  if (inst_by_name_.contains(inst_name)) {
    throw std::invalid_argument("duplicate instance " +
                                std::string(inst_name));
  }
  return add_instance_impl(inst_name, type);
}

InstId Netlist::add_instance(const stdcell::CellType* type) {
  return add_instance_impl({}, type);
}

InstId Netlist::add_instance_impl(std::string_view inst_name,
                                  const stdcell::CellType* type) {
  Instance inst;
  inst.type = type;
  const InstId id = static_cast<InstId>(instances_.size());
  const std::string_view interned = pool_.intern(inst_name);
  inst_names_.push_back(interned);
  if (!interned.empty()) inst_by_name_.emplace(interned, id);
  instances_.push_back(inst);
  pin_net_arena_.insert(pin_net_arena_.end(), type->pins().size(), kNoNet);
  inst_first_pin_.push_back(static_cast<std::uint32_t>(pin_net_arena_.size()));
  return id;
}

NetId Netlist::add_net(std::string_view net_name) {
  if (net_name.empty()) {
    throw std::invalid_argument("explicit net name must be non-empty");
  }
  if (net_by_name_.contains(net_name)) {
    throw std::invalid_argument("duplicate net " + std::string(net_name));
  }
  return add_net_impl(net_name);
}

NetId Netlist::add_net() { return add_net_impl({}); }

NetId Netlist::add_net_impl(std::string_view net_name) {
  const NetId id = static_cast<NetId>(nets_.size());
  const std::string_view interned = pool_.intern(net_name);
  net_names_.push_back(interned);
  if (!interned.empty()) net_by_name_.emplace(interned, id);
  nets_.emplace_back();
  return id;
}

std::string Netlist::instance_name(InstId id) const {
  std::string out;
  append_instance_name(out, id);
  return out;
}

std::string Netlist::net_name(NetId id) const {
  std::string out;
  append_net_name(out, id);
  return out;
}

void Netlist::append_instance_name(std::string& out, InstId id) const {
  const std::string_view v = inst_names_[static_cast<std::size_t>(id)];
  if (!v.empty()) {
    out.append(v);
  } else {
    append_synth_name(out, 'i', id);
  }
}

void Netlist::append_net_name(std::string& out, NetId id) const {
  const std::string_view v = net_names_[static_cast<std::size_t>(id)];
  if (!v.empty()) {
    out.append(v);
  } else {
    append_synth_name(out, 'n', id);
  }
}

PortId Netlist::add_input(std::string port_name) {
  const NetId net = add_net(port_name);
  Port p;
  p.name = std::move(port_name);
  p.is_input = true;
  p.net = net;
  const PortId id = static_cast<PortId>(ports_.size());
  port_by_name_.emplace(p.name, id);
  nets_[static_cast<std::size_t>(net)].port = id;
  ports_.push_back(std::move(p));
  return id;
}

PortId Netlist::add_output(std::string port_name) {
  const NetId net = add_net(port_name);
  Port p;
  p.name = std::move(port_name);
  p.is_input = false;
  p.net = net;
  const PortId id = static_cast<PortId>(ports_.size());
  port_by_name_.emplace(p.name, id);
  nets_[static_cast<std::size_t>(net)].port = id;
  ports_.push_back(std::move(p));
  return id;
}

PortId Netlist::add_output_for_net(std::string port_name, NetId net_id) {
  Net& n = net(net_id);
  if (n.port >= 0) {
    throw std::invalid_argument("net " + net_name(net_id) +
                                " already has a port");
  }
  Port p;
  p.name = std::move(port_name);
  p.is_input = false;
  p.net = net_id;
  const PortId id = static_cast<PortId>(ports_.size());
  if (port_by_name_.contains(p.name)) {
    throw std::invalid_argument("duplicate port " + p.name);
  }
  port_by_name_.emplace(p.name, id);
  n.port = id;
  ports_.push_back(std::move(p));
  return id;
}

void Netlist::connect(InstId inst, std::string_view pin_name, NetId net) {
  Instance& i = instance(inst);
  const int pin = i.type->pin_index(pin_name);
  if (pin < 0) {
    throw std::invalid_argument("instance " + instance_name(inst) + " (" +
                                i.type->name() + ") has no pin " +
                                std::string(pin_name));
  }
  const std::size_t slot =
      inst_first_pin_[static_cast<std::size_t>(inst)] +
      static_cast<std::size_t>(pin);
  if (pin_net_arena_[slot] != kNoNet) {
    throw std::invalid_argument("pin " + instance_name(inst) + "/" +
                                std::string(pin_name) + " already connected");
  }
  pin_net_arena_[slot] = net;
  Net& n = this->net(net);
  const PinDir dir = i.type->pins()[static_cast<std::size_t>(pin)].dir;
  if (dir == PinDir::Output) {
    if (n.driver.inst != kNoInst) {
      throw std::invalid_argument("net " + net_name(net) +
                                  " has two drivers");
    }
    n.driver = {inst, pin};
  } else {
    n.sinks.push_back({inst, pin});
  }
}

void Netlist::reconnect_sink(InstId inst, std::string_view pin_name,
                             NetId new_net) {
  Instance& i = instance(inst);
  const int pin = i.type->pin_index(pin_name);
  if (pin < 0) {
    throw std::invalid_argument("no pin " + std::string(pin_name));
  }
  const PinDir dir = i.type->pins()[static_cast<std::size_t>(pin)].dir;
  if (dir == PinDir::Output) {
    throw std::invalid_argument("reconnect_sink on driver pin " +
                                instance_name(inst) + "/" +
                                std::string(pin_name));
  }
  const std::size_t slot =
      inst_first_pin_[static_cast<std::size_t>(inst)] +
      static_cast<std::size_t>(pin);
  const NetId old = pin_net_arena_[slot];
  if (old != kNoNet) {
    auto& sinks = net(old).sinks;
    sinks.erase(std::remove(sinks.begin(), sinks.end(), PinRef{inst, pin}),
                sinks.end());
  }
  pin_net_arena_[slot] = new_net;
  net(new_net).sinks.push_back({inst, pin});
}

void Netlist::resize_instance(InstId inst, const stdcell::CellType* new_type) {
  Instance& i = instance(inst);
  if (i.type == new_type) return;
  if (i.type->function() != new_type->function() ||
      i.type->pins().size() != new_type->pins().size()) {
    throw std::invalid_argument("resize across incompatible types: " +
                                i.type->name() + " -> " + new_type->name());
  }
  for (std::size_t p = 0; p < i.type->pins().size(); ++p) {
    if (i.type->pins()[p].name != new_type->pins()[p].name) {
      throw std::invalid_argument("resize with mismatched pin order");
    }
  }
  i.type = new_type;
}

void Netlist::mark_clock_net(NetId net_id) {
  net(net_id).is_clock = true;
}

void Netlist::disconnect_pin(InstId inst, std::string_view pin_name) {
  Instance& i = instance(inst);
  const int pin = i.type->pin_index(pin_name);
  if (pin < 0) {
    throw std::invalid_argument("no pin " + std::string(pin_name));
  }
  const std::size_t slot =
      inst_first_pin_[static_cast<std::size_t>(inst)] +
      static_cast<std::size_t>(pin);
  const NetId old = pin_net_arena_[slot];
  if (old == kNoNet) return;
  Net& n = net(old);
  if (n.driver == PinRef{inst, pin}) {
    n.driver = {};
  } else {
    n.sinks.erase(std::remove(n.sinks.begin(), n.sinks.end(),
                              PinRef{inst, pin}),
                  n.sinks.end());
  }
  pin_net_arena_[slot] = kNoNet;
}

void Netlist::pop_instance() {
  if (instances_.empty()) {
    throw std::logic_error("pop_instance on empty netlist");
  }
  const auto id = static_cast<InstId>(instances_.size() - 1);
  for (const NetId n : pin_nets(id)) {
    if (n != kNoNet) {
      throw std::logic_error("pop_instance " + instance_name(id) +
                             ": pins still connected");
    }
  }
  if (!pin_side_override_.empty()) {
    const int pins = pin_count(id);
    for (int p = 0; p < pins; ++p) pin_side_override_.erase(pin_key(id, p));
  }
  const std::string_view nm = inst_names_.back();
  if (!nm.empty()) inst_by_name_.erase(nm);
  inst_names_.pop_back();
  instances_.pop_back();
  inst_first_pin_.pop_back();
  pin_net_arena_.resize(inst_first_pin_.back());
}

void Netlist::pop_net() {
  if (nets_.empty()) throw std::logic_error("pop_net on empty netlist");
  const Net& n = nets_.back();
  if (n.driver.inst != kNoInst || !n.sinks.empty() || n.port >= 0) {
    throw std::logic_error("pop_net " +
                           net_name(static_cast<NetId>(nets_.size() - 1)) +
                           ": still connected");
  }
  const std::string_view nm = net_names_.back();
  if (!nm.empty()) net_by_name_.erase(nm);
  net_names_.pop_back();
  nets_.pop_back();
}

void Netlist::set_pin_side(const PinRef& p, stdcell::PinSide side) {
  if (side == instance(p.inst)
                  .type->pins()[static_cast<std::size_t>(p.pin)]
                  .side) {
    pin_side_override_.erase(pin_key(p.inst, p.pin));
  } else {
    pin_side_override_[pin_key(p.inst, p.pin)] = side;
  }
}

void Netlist::clear_pin_side(const PinRef& p) {
  pin_side_override_.erase(pin_key(p.inst, p.pin));
}

std::optional<NetId> Netlist::find_net(std::string_view n) const {
  auto it = net_by_name_.find(n);
  if (it != net_by_name_.end()) return it->second;
  // Synthesized spelling of an anonymous net.
  const std::int32_t id = parse_synth_name(n, 'n');
  if (id >= 0 && id < num_nets() &&
      net_names_[static_cast<std::size_t>(id)].empty()) {
    return id;
  }
  return std::nullopt;
}

std::optional<InstId> Netlist::find_instance(std::string_view n) const {
  auto it = inst_by_name_.find(n);
  if (it != inst_by_name_.end()) return it->second;
  const std::int32_t id = parse_synth_name(n, 'i');
  if (id >= 0 && id < num_instances() &&
      inst_names_[static_cast<std::size_t>(id)].empty()) {
    return id;
  }
  return std::nullopt;
}

std::optional<PortId> Netlist::find_port(std::string_view n) const {
  auto it = port_by_name_.find(n);
  if (it == port_by_name_.end()) return std::nullopt;
  return it->second;
}

stdcell::PinSide Netlist::pin_side(const PinRef& p) const {
  if (!pin_side_override_.empty()) {
    const auto it = pin_side_override_.find(pin_key(p.inst, p.pin));
    if (it != pin_side_override_.end()) return it->second;
  }
  const Instance& i = instance(p.inst);
  return i.type->pins()[static_cast<std::size_t>(p.pin)].side;
}

geom::Point Netlist::pin_position(const PinRef& p) const {
  const Instance& i = instance(p.inst);
  return i.pos + i.type->pins()[static_cast<std::size_t>(p.pin)].offset;
}

double Netlist::pin_cap_ff(const PinRef& p) const {
  const Instance& i = instance(p.inst);
  return i.type->pins()[static_cast<std::size_t>(p.pin)].cap_ff;
}

NetlistStats Netlist::stats() const {
  NetlistStats s;
  s.num_instances = num_instances();
  s.num_nets = num_nets();
  double fanout_sum = 0.0;
  int driven = 0;
  for (const Instance& i : instances_) {
    s.total_cell_area_um2 += i.type->area_um2();
    if (i.type->sequential()) ++s.num_sequential;
  }
  for (const NetId n : pin_net_arena_) {
    if (n != kNoNet) ++s.num_pins;
  }
  for (const Net& n : nets_) {
    if (n.driver.inst != kNoInst) {
      fanout_sum += static_cast<double>(n.sinks.size());
      ++driven;
    }
  }
  s.avg_fanout = driven ? fanout_sum / driven : 0.0;
  return s;
}

std::vector<std::string> Netlist::validate() const {
  std::vector<std::string> problems;
  for (InstId id = 0; id < num_instances(); ++id) {
    const Instance& i = instance(id);
    if (i.type->physical_only()) continue;
    const std::span<const NetId> pins = pin_nets(id);
    for (std::size_t p = 0; p < pins.size(); ++p) {
      if (pins[p] == kNoNet) {
        problems.push_back("open pin " + instance_name(id) + "/" +
                           i.type->pins()[p].name);
      }
    }
  }
  for (NetId n = 0; n < num_nets(); ++n) {
    const Net& net = nets_[static_cast<std::size_t>(n)];
    const bool has_driver =
        net.driver.inst != kNoInst ||
        (net.port >= 0 && ports_[static_cast<std::size_t>(net.port)].is_input);
    if (!has_driver && !net.sinks.empty()) {
      problems.push_back("undriven net " + net_name(n));
    }
    for (const PinRef& s : net.sinks) {
      if (pin_net(s.inst, s.pin) != n) {
        problems.push_back("inconsistent sink list on net " + net_name(n));
      }
    }
  }
  return problems;
}

std::vector<InstId> Netlist::topo_order() const {
  // Kahn's algorithm over the combinational dependency graph: an edge
  // A -> B exists when A's output net feeds a *data* input of combinational
  // instance B.  Sequential instances are sources (their Q is available at
  // cycle start) and never depend on anything combinationally.
  std::vector<int> pending(instances_.size(), 0);
  for (std::size_t b = 0; b < instances_.size(); ++b) {
    const Instance& inst = instances_[b];
    if (inst.type->physical_only() || inst.type->sequential()) continue;
    const std::span<const NetId> pins = pin_nets(static_cast<InstId>(b));
    for (std::size_t p = 0; p < pins.size(); ++p) {
      const auto& pin = inst.type->pins()[p];
      if (pin.dir == stdcell::PinDir::Output) continue;
      const NetId n = pins[p];
      if (n == kNoNet) continue;
      const PinRef d = net(n).driver;
      if (d.inst == kNoInst) continue;  // PI-driven
      if (instance(d.inst).type->sequential()) continue;
      ++pending[b];
    }
  }

  std::queue<InstId> ready;
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    if (instances_[i].type->physical_only()) continue;
    if (pending[i] == 0) ready.push(static_cast<InstId>(i));
  }

  std::vector<InstId> order;
  order.reserve(instances_.size());
  while (!ready.empty()) {
    const InstId id = ready.front();
    ready.pop();
    order.push_back(id);
    const Instance& inst = instance(id);
    if (inst.type->sequential()) continue;  // Q feeds next cycle, not topo
    const std::span<const NetId> pins = pin_nets(id);
    for (std::size_t p = 0; p < pins.size(); ++p) {
      if (inst.type->pins()[p].dir != stdcell::PinDir::Output) continue;
      const NetId n = pins[p];
      if (n == kNoNet) continue;
      for (const PinRef& s : net(n).sinks) {
        const Instance& si = instance(s.inst);
        if (si.type->sequential() || si.type->physical_only()) continue;
        if (--pending[static_cast<std::size_t>(s.inst)] == 0) {
          ready.push(s.inst);
        }
      }
    }
  }

  std::size_t logic_count = 0;
  for (const Instance& i : instances_) {
    if (!i.type->physical_only()) ++logic_count;
  }
  if (order.size() != logic_count) {
    throw std::runtime_error("combinational cycle detected in " + name_);
  }
  return order;
}

}  // namespace ffet::netlist
