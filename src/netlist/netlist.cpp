#include "netlist/netlist.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace ffet::netlist {

using stdcell::PinDir;

Netlist::Netlist(std::string name, const stdcell::Library* lib)
    : name_(std::move(name)), lib_(lib) {}

InstId Netlist::add_instance(std::string inst_name,
                             std::string_view cell_name) {
  return add_instance(std::move(inst_name), &lib_->at(cell_name));
}

InstId Netlist::add_instance(std::string inst_name,
                             const stdcell::CellType* type) {
  if (inst_by_name_.contains(inst_name)) {
    throw std::invalid_argument("duplicate instance " + inst_name);
  }
  Instance inst;
  inst.name = std::move(inst_name);
  inst.type = type;
  inst.pin_nets.assign(type->pins().size(), kNoNet);
  const InstId id = static_cast<InstId>(instances_.size());
  inst_by_name_.emplace(inst.name, id);
  instances_.push_back(std::move(inst));
  return id;
}

NetId Netlist::add_net(std::string net_name) {
  if (net_by_name_.contains(net_name)) {
    throw std::invalid_argument("duplicate net " + net_name);
  }
  Net n;
  n.name = std::move(net_name);
  const NetId id = static_cast<NetId>(nets_.size());
  net_by_name_.emplace(n.name, id);
  nets_.push_back(std::move(n));
  return id;
}

PortId Netlist::add_input(std::string port_name) {
  const NetId net = add_net(port_name);
  Port p;
  p.name = std::move(port_name);
  p.is_input = true;
  p.net = net;
  const PortId id = static_cast<PortId>(ports_.size());
  port_by_name_.emplace(p.name, id);
  nets_[static_cast<std::size_t>(net)].port = id;
  ports_.push_back(std::move(p));
  return id;
}

PortId Netlist::add_output(std::string port_name) {
  const NetId net = add_net(port_name);
  Port p;
  p.name = std::move(port_name);
  p.is_input = false;
  p.net = net;
  const PortId id = static_cast<PortId>(ports_.size());
  port_by_name_.emplace(p.name, id);
  nets_[static_cast<std::size_t>(net)].port = id;
  ports_.push_back(std::move(p));
  return id;
}

PortId Netlist::add_output_for_net(std::string port_name, NetId net_id) {
  Net& n = net(net_id);
  if (n.port >= 0) {
    throw std::invalid_argument("net " + n.name + " already has a port");
  }
  Port p;
  p.name = std::move(port_name);
  p.is_input = false;
  p.net = net_id;
  const PortId id = static_cast<PortId>(ports_.size());
  if (port_by_name_.contains(p.name)) {
    throw std::invalid_argument("duplicate port " + p.name);
  }
  port_by_name_.emplace(p.name, id);
  n.port = id;
  ports_.push_back(std::move(p));
  return id;
}

void Netlist::connect(InstId inst, std::string_view pin_name, NetId net) {
  Instance& i = instance(inst);
  const int pin = i.type->pin_index(pin_name);
  if (pin < 0) {
    throw std::invalid_argument("instance " + i.name + " (" +
                                i.type->name() + ") has no pin " +
                                std::string(pin_name));
  }
  if (i.pin_nets[static_cast<std::size_t>(pin)] != kNoNet) {
    throw std::invalid_argument("pin " + i.name + "/" +
                                std::string(pin_name) + " already connected");
  }
  i.pin_nets[static_cast<std::size_t>(pin)] = net;
  Net& n = this->net(net);
  const PinDir dir = i.type->pins()[static_cast<std::size_t>(pin)].dir;
  if (dir == PinDir::Output) {
    if (n.driver.inst != kNoInst) {
      throw std::invalid_argument("net " + n.name + " has two drivers");
    }
    n.driver = {inst, pin};
  } else {
    n.sinks.push_back({inst, pin});
  }
}

void Netlist::reconnect_sink(InstId inst, std::string_view pin_name,
                             NetId new_net) {
  Instance& i = instance(inst);
  const int pin = i.type->pin_index(pin_name);
  if (pin < 0) {
    throw std::invalid_argument("no pin " + std::string(pin_name));
  }
  const PinDir dir = i.type->pins()[static_cast<std::size_t>(pin)].dir;
  if (dir == PinDir::Output) {
    throw std::invalid_argument("reconnect_sink on driver pin " + i.name +
                                "/" + std::string(pin_name));
  }
  const NetId old = i.pin_nets[static_cast<std::size_t>(pin)];
  if (old != kNoNet) {
    auto& sinks = net(old).sinks;
    sinks.erase(std::remove(sinks.begin(), sinks.end(), PinRef{inst, pin}),
                sinks.end());
  }
  i.pin_nets[static_cast<std::size_t>(pin)] = new_net;
  net(new_net).sinks.push_back({inst, pin});
}

void Netlist::resize_instance(InstId inst, const stdcell::CellType* new_type) {
  Instance& i = instance(inst);
  if (i.type == new_type) return;
  if (i.type->function() != new_type->function() ||
      i.type->pins().size() != new_type->pins().size()) {
    throw std::invalid_argument("resize across incompatible types: " +
                                i.type->name() + " -> " + new_type->name());
  }
  for (std::size_t p = 0; p < i.type->pins().size(); ++p) {
    if (i.type->pins()[p].name != new_type->pins()[p].name) {
      throw std::invalid_argument("resize with mismatched pin order");
    }
  }
  i.type = new_type;
}

void Netlist::mark_clock_net(NetId net_id) {
  net(net_id).is_clock = true;
}

void Netlist::disconnect_pin(InstId inst, std::string_view pin_name) {
  Instance& i = instance(inst);
  const int pin = i.type->pin_index(pin_name);
  if (pin < 0) {
    throw std::invalid_argument("no pin " + std::string(pin_name));
  }
  const NetId old = i.pin_nets[static_cast<std::size_t>(pin)];
  if (old == kNoNet) return;
  Net& n = net(old);
  if (n.driver == PinRef{inst, pin}) {
    n.driver = {};
  } else {
    n.sinks.erase(std::remove(n.sinks.begin(), n.sinks.end(),
                              PinRef{inst, pin}),
                  n.sinks.end());
  }
  i.pin_nets[static_cast<std::size_t>(pin)] = kNoNet;
}

void Netlist::pop_instance() {
  if (instances_.empty()) {
    throw std::logic_error("pop_instance on empty netlist");
  }
  const Instance& i = instances_.back();
  for (const NetId n : i.pin_nets) {
    if (n != kNoNet) {
      throw std::logic_error("pop_instance " + i.name +
                             ": pins still connected");
    }
  }
  const auto id = static_cast<InstId>(instances_.size() - 1);
  pin_side_override_.erase(
      pin_side_override_.lower_bound({id, 0}),
      pin_side_override_.lower_bound({id + 1, 0}));
  inst_by_name_.erase(i.name);
  instances_.pop_back();
}

void Netlist::pop_net() {
  if (nets_.empty()) throw std::logic_error("pop_net on empty netlist");
  const Net& n = nets_.back();
  if (n.driver.inst != kNoInst || !n.sinks.empty() || n.port >= 0) {
    throw std::logic_error("pop_net " + n.name + ": still connected");
  }
  net_by_name_.erase(n.name);
  nets_.pop_back();
}

void Netlist::set_pin_side(const PinRef& p, stdcell::PinSide side) {
  if (side == instance(p.inst)
                  .type->pins()[static_cast<std::size_t>(p.pin)]
                  .side) {
    pin_side_override_.erase({p.inst, p.pin});
  } else {
    pin_side_override_[{p.inst, p.pin}] = side;
  }
}

void Netlist::clear_pin_side(const PinRef& p) {
  pin_side_override_.erase({p.inst, p.pin});
}

std::optional<NetId> Netlist::find_net(std::string_view n) const {
  auto it = net_by_name_.find(n);
  if (it == net_by_name_.end()) return std::nullopt;
  return it->second;
}

std::optional<InstId> Netlist::find_instance(std::string_view n) const {
  auto it = inst_by_name_.find(n);
  if (it == inst_by_name_.end()) return std::nullopt;
  return it->second;
}

std::optional<PortId> Netlist::find_port(std::string_view n) const {
  auto it = port_by_name_.find(n);
  if (it == port_by_name_.end()) return std::nullopt;
  return it->second;
}

stdcell::PinSide Netlist::pin_side(const PinRef& p) const {
  if (!pin_side_override_.empty()) {
    const auto it = pin_side_override_.find({p.inst, p.pin});
    if (it != pin_side_override_.end()) return it->second;
  }
  const Instance& i = instance(p.inst);
  return i.type->pins()[static_cast<std::size_t>(p.pin)].side;
}

geom::Point Netlist::pin_position(const PinRef& p) const {
  const Instance& i = instance(p.inst);
  return i.pos + i.type->pins()[static_cast<std::size_t>(p.pin)].offset;
}

double Netlist::pin_cap_ff(const PinRef& p) const {
  const Instance& i = instance(p.inst);
  return i.type->pins()[static_cast<std::size_t>(p.pin)].cap_ff;
}

NetlistStats Netlist::stats() const {
  NetlistStats s;
  s.num_instances = num_instances();
  s.num_nets = num_nets();
  double fanout_sum = 0.0;
  int driven = 0;
  for (const Instance& i : instances_) {
    s.total_cell_area_um2 += i.type->area_um2();
    if (i.type->sequential()) ++s.num_sequential;
    for (NetId n : i.pin_nets) {
      if (n != kNoNet) ++s.num_pins;
    }
  }
  for (const Net& n : nets_) {
    if (n.driver.inst != kNoInst) {
      fanout_sum += static_cast<double>(n.sinks.size());
      ++driven;
    }
  }
  s.avg_fanout = driven ? fanout_sum / driven : 0.0;
  return s;
}

std::vector<std::string> Netlist::validate() const {
  std::vector<std::string> problems;
  for (const Instance& i : instances_) {
    if (i.type->physical_only()) continue;
    for (std::size_t p = 0; p < i.pin_nets.size(); ++p) {
      if (i.pin_nets[p] == kNoNet) {
        problems.push_back("open pin " + i.name + "/" + i.type->pins()[p].name);
      }
    }
  }
  for (std::size_t n = 0; n < nets_.size(); ++n) {
    const Net& net = nets_[n];
    const bool has_driver =
        net.driver.inst != kNoInst ||
        (net.port >= 0 && ports_[static_cast<std::size_t>(net.port)].is_input);
    if (!has_driver && !net.sinks.empty()) {
      problems.push_back("undriven net " + net.name);
    }
    for (const PinRef& s : net.sinks) {
      if (instance(s.inst).pin_nets[static_cast<std::size_t>(s.pin)] !=
          static_cast<NetId>(n)) {
        problems.push_back("inconsistent sink list on net " + net.name);
      }
    }
  }
  return problems;
}

std::vector<InstId> Netlist::topo_order() const {
  // Kahn's algorithm over the combinational dependency graph: an edge
  // A -> B exists when A's output net feeds a *data* input of combinational
  // instance B.  Sequential instances are sources (their Q is available at
  // cycle start) and never depend on anything combinationally.
  std::vector<int> pending(instances_.size(), 0);
  for (std::size_t b = 0; b < instances_.size(); ++b) {
    const Instance& inst = instances_[b];
    if (inst.type->physical_only() || inst.type->sequential()) continue;
    for (std::size_t p = 0; p < inst.pin_nets.size(); ++p) {
      const auto& pin = inst.type->pins()[p];
      if (pin.dir == stdcell::PinDir::Output) continue;
      const NetId n = inst.pin_nets[p];
      if (n == kNoNet) continue;
      const PinRef d = net(n).driver;
      if (d.inst == kNoInst) continue;  // PI-driven
      if (instance(d.inst).type->sequential()) continue;
      ++pending[b];
    }
  }

  std::queue<InstId> ready;
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    if (instances_[i].type->physical_only()) continue;
    if (pending[i] == 0) ready.push(static_cast<InstId>(i));
  }

  std::vector<InstId> order;
  order.reserve(instances_.size());
  while (!ready.empty()) {
    const InstId id = ready.front();
    ready.pop();
    order.push_back(id);
    const Instance& inst = instance(id);
    if (inst.type->sequential()) continue;  // Q feeds next cycle, not topo
    for (std::size_t p = 0; p < inst.pin_nets.size(); ++p) {
      if (inst.type->pins()[p].dir != stdcell::PinDir::Output) continue;
      const NetId n = inst.pin_nets[p];
      if (n == kNoNet) continue;
      for (const PinRef& s : net(n).sinks) {
        const Instance& si = instance(s.inst);
        if (si.type->sequential() || si.type->physical_only()) continue;
        if (--pending[static_cast<std::size_t>(s.inst)] == 0) {
          ready.push(s.inst);
        }
      }
    }
  }

  std::size_t logic_count = 0;
  for (const Instance& i : instances_) {
    if (!i.type->physical_only()) ++logic_count;
  }
  if (order.size() != logic_count) {
    throw std::runtime_error("combinational cycle detected in " + name_);
  }
  return order;
}

}  // namespace ffet::netlist
