// netlist.h — gate-level netlist database.
//
// The design representation flowing through the whole framework: produced by
// the RISC-V generator (src/riscv), resized by virtual synthesis
// (src/synth), annotated with positions by placement (src/pnr), decomposed
// into per-side nets by the dual-sided router, and traversed by STA
// (src/sta).
//
// Identifiers are dense integer indices (InstId / NetId) into flat vectors —
// the representation every serious P&R database uses; string names are kept
// for DEF emission and debugging only.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "geom/geom.h"
#include "stdcell/stdcell.h"

namespace ffet::netlist {

using InstId = std::int32_t;
using NetId = std::int32_t;
using PortId = std::int32_t;
inline constexpr InstId kNoInst = -1;
inline constexpr NetId kNoNet = -1;

/// A pin reference: instance + pin index within its cell type.
struct PinRef {
  InstId inst = kNoInst;
  int pin = -1;

  friend bool operator==(const PinRef&, const PinRef&) = default;
};

/// One placed cell instance.
struct Instance {
  std::string name;
  const stdcell::CellType* type = nullptr;
  /// Net bound to each cell pin, parallel to type->pins(); kNoNet = open.
  std::vector<NetId> pin_nets;
  /// Placement origin (lower-left), set by the placer.
  geom::Point pos;
  /// Fixed instances (Power Tap Cells, nTSV blockages) may not be moved.
  bool fixed = false;

  geom::Rect bbox() const {
    return geom::make_rect(pos, type->width(), type->height());
  }
};

/// A logical net: one driver, many sinks.  Primary inputs are modeled as
/// driverless nets attached to an input port; primary outputs as ports
/// listed among the sinks.
struct Net {
  std::string name;
  PinRef driver;               ///< invalid (inst == kNoInst) for PI nets
  std::vector<PinRef> sinks;   ///< cell input pins
  PortId port = -1;            ///< attached primary port, if any
  bool is_clock = false;       ///< marked by the clock definition / CTS
};

struct Port {
  std::string name;
  bool is_input = true;
  NetId net = kNoNet;
  /// IO placement on the core boundary, set during floorplan/IO planning.
  geom::Point pos;
};

/// Aggregate statistics used by reports and the floorplanner.
struct NetlistStats {
  int num_instances = 0;
  int num_sequential = 0;
  int num_nets = 0;
  int num_pins = 0;
  double total_cell_area_um2 = 0.0;
  double avg_fanout = 0.0;
};

class Netlist {
 public:
  explicit Netlist(std::string name, const stdcell::Library* lib);

  const std::string& name() const { return name_; }
  const stdcell::Library& library() const { return *lib_; }

  // --- construction -------------------------------------------------------

  InstId add_instance(std::string inst_name, std::string_view cell_name);
  InstId add_instance(std::string inst_name, const stdcell::CellType* type);
  NetId add_net(std::string net_name);
  PortId add_input(std::string port_name);   ///< creates and attaches a net
  PortId add_output(std::string port_name);  ///< creates and attaches a net
  /// Expose an existing (internally driven) net as a primary output.
  PortId add_output_for_net(std::string port_name, NetId net);

  /// Bind instance pin `pin_name` to `net`; registers the pin as driver or
  /// sink according to its direction.  A pin may be connected only once.
  void connect(InstId inst, std::string_view pin_name, NetId net);

  /// Rebind an already-connected input pin to a different net (used by
  /// synthesis buffering and CTS).  Driver pins cannot be moved this way.
  void reconnect_sink(InstId inst, std::string_view pin_name, NetId new_net);

  /// Replace the cell type of an instance with a same-footprint-family type
  /// (same function + pin names) — the gate-sizing primitive.
  void resize_instance(InstId inst, const stdcell::CellType* new_type);

  void mark_clock_net(NetId net);

  /// Detach a connected pin from its net, removing it from the net's
  /// driver or sink records (no-op on an open pin).  With pop_instance /
  /// pop_net this gives the ECO engine exact structural revert of a trial
  /// transform.
  void disconnect_pin(InstId inst, std::string_view pin_name);

  /// Remove the most recently added instance; all its pins must be
  /// disconnected.  LIFO-only removal keeps InstId/NetId dense, so a trial
  /// add_net/add_instance is undone by disconnect + pop in reverse order.
  void pop_instance();
  /// Remove the most recently added net; it must have no driver, no sinks,
  /// and no attached port.
  void pop_net();

  // --- per-instance pin sides ----------------------------------------------

  /// Override one instance pin's wafer side (the ECO dual-sided pin
  /// re-assignment).  Pin sides normally live on the shared cell master;
  /// the override reroutes just this instance's pin to the other side's
  /// copy without disturbing other instances of the same cell type.
  void set_pin_side(const PinRef& p, stdcell::PinSide side);
  /// Drop the override, reverting to the cell master's side.
  void clear_pin_side(const PinRef& p);

  // --- access --------------------------------------------------------------

  int num_instances() const { return static_cast<int>(instances_.size()); }
  int num_nets() const { return static_cast<int>(nets_.size()); }
  int num_ports() const { return static_cast<int>(ports_.size()); }

  Instance& instance(InstId id) { return instances_[static_cast<std::size_t>(id)]; }
  const Instance& instance(InstId id) const {
    return instances_[static_cast<std::size_t>(id)];
  }
  Net& net(NetId id) { return nets_[static_cast<std::size_t>(id)]; }
  const Net& net(NetId id) const { return nets_[static_cast<std::size_t>(id)]; }
  Port& port(PortId id) { return ports_[static_cast<std::size_t>(id)]; }
  const Port& port(PortId id) const { return ports_[static_cast<std::size_t>(id)]; }

  std::optional<NetId> find_net(std::string_view net_name) const;
  std::optional<InstId> find_instance(std::string_view inst_name) const;
  std::optional<PortId> find_port(std::string_view port_name) const;

  const std::vector<Instance>& instances() const { return instances_; }
  const std::vector<Net>& nets() const { return nets_; }
  const std::vector<Port>& ports() const { return ports_; }

  /// The pin's side: a per-instance override when set (set_pin_side),
  /// otherwise the instance's cell master.
  stdcell::PinSide pin_side(const PinRef& p) const;
  /// Absolute pin position = instance origin + pin offset.
  geom::Point pin_position(const PinRef& p) const;
  double pin_cap_ff(const PinRef& p) const;

  NetlistStats stats() const;

  /// Verify structural sanity: every non-physical pin connected, each net
  /// driven at most once, sink lists consistent.  Returns problem messages
  /// (empty == healthy).
  std::vector<std::string> validate() const;

  /// Instances in topological order of the combinational graph (PIs and
  /// register outputs are sources; register D pins and POs are sinks).
  /// Throws std::runtime_error on a combinational cycle.
  std::vector<InstId> topo_order() const;

 private:
  std::string name_;
  const stdcell::Library* lib_;
  std::vector<Instance> instances_;
  std::vector<Net> nets_;
  std::vector<Port> ports_;
  std::map<std::string, InstId, std::less<>> inst_by_name_;
  std::map<std::string, NetId, std::less<>> net_by_name_;
  std::map<std::string, PortId, std::less<>> port_by_name_;
  /// Sparse per-instance pin-side overrides (empty outside ECO flows).
  std::map<std::pair<InstId, int>, stdcell::PinSide> pin_side_override_;
};

}  // namespace ffet::netlist
